package shiftgears_test

import (
	"strings"
	"testing"

	"shiftgears"
)

func TestParseAlgorithm(t *testing.T) {
	cases := map[string]shiftgears.Algorithm{
		"exponential": shiftgears.Exponential,
		"exp":         shiftgears.Exponential,
		"A":           shiftgears.AlgorithmA,
		"a":           shiftgears.AlgorithmA,
		"B":           shiftgears.AlgorithmB,
		"C":           shiftgears.AlgorithmC,
		"hybrid":      shiftgears.Hybrid,
		"psl":         shiftgears.PSL,
		"phasequeen":  shiftgears.PhaseQueen,
		"queen":       shiftgears.PhaseQueen,
		"multivalued": shiftgears.Multivalued,
		"reduce":      shiftgears.Multivalued,
	}
	for in, want := range cases {
		got, err := shiftgears.ParseAlgorithm(in)
		if err != nil || got != want {
			t.Errorf("ParseAlgorithm(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := shiftgears.ParseAlgorithm("zab"); err == nil {
		t.Error("unknown algorithm name accepted")
	}
}

func TestAlgorithmString(t *testing.T) {
	for alg, want := range map[shiftgears.Algorithm]string{
		shiftgears.Exponential: "exponential",
		shiftgears.AlgorithmA:  "A",
		shiftgears.AlgorithmB:  "B",
		shiftgears.AlgorithmC:  "C",
		shiftgears.Hybrid:      "hybrid",
		shiftgears.PSL:         "psl",
		shiftgears.PhaseQueen:  "phasequeen",
		shiftgears.Multivalued: "multivalued",
	} {
		if alg.String() != want {
			t.Errorf("%v.String() = %q, want %q", int(alg), alg.String(), want)
		}
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	bad := []struct {
		name string
		cfg  shiftgears.Config
	}{
		{"unknown algorithm", shiftgears.Config{Algorithm: 0, N: 7, T: 2}},
		{"exp resilience", shiftgears.Config{Algorithm: shiftgears.Exponential, N: 6, T: 2}},
		{"A needs b", shiftgears.Config{Algorithm: shiftgears.AlgorithmA, N: 13, T: 4, B: 0}},
		{"B resilience", shiftgears.Config{Algorithm: shiftgears.AlgorithmB, N: 12, T: 3, B: 2}},
		{"C resilience", shiftgears.Config{Algorithm: shiftgears.AlgorithmC, N: 17, T: 3}},
		{"hybrid small t", shiftgears.Config{Algorithm: shiftgears.Hybrid, N: 7, T: 2, B: 3}},
		{"psl resilience", shiftgears.Config{Algorithm: shiftgears.PSL, N: 6, T: 2}},
		{"queen resilience", shiftgears.Config{Algorithm: shiftgears.PhaseQueen, N: 12, T: 3}},
		{"source range", shiftgears.Config{Algorithm: shiftgears.Exponential, N: 7, T: 2, Source: 9}},
		{"faulty range", shiftgears.Config{Algorithm: shiftgears.Exponential, N: 7, T: 2, Faulty: []int{7}}},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			if err := shiftgears.Validate(tc.cfg); err == nil {
				t.Fatalf("Validate(%+v) succeeded, want error", tc.cfg)
			}
		})
	}
}

func TestRunRejectsUnknownStrategy(t *testing.T) {
	_, err := shiftgears.Run(shiftgears.Config{
		Algorithm: shiftgears.Exponential, N: 7, T: 2,
		Faulty: []int{1}, Strategy: "nope",
	})
	if err == nil || !strings.Contains(err.Error(), "unknown strategy") {
		t.Fatalf("err = %v", err)
	}
}

func TestRunFaultFreeBasics(t *testing.T) {
	res, err := shiftgears.Run(shiftgears.Config{
		Algorithm: shiftgears.Hybrid, N: 13, T: 4, B: 3, SourceValue: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Agreement || !res.Validity || res.DecisionValue != 9 {
		t.Fatalf("result: %+v", res)
	}
	if res.Rounds != 10 || res.PaperRoundBound != 10 {
		t.Fatalf("rounds %d / bound %d, want 10", res.Rounds, res.PaperRoundBound)
	}
	if len(res.Processors) != 13 {
		t.Fatalf("%d processor results", len(res.Processors))
	}
	for _, pr := range res.Processors {
		if !pr.Correct || !pr.Decided || pr.Decision != 9 {
			t.Fatalf("processor %+v", pr)
		}
	}
	if res.MaxMessageBytes == 0 || res.TotalBytes == 0 || res.Messages == 0 {
		t.Fatal("traffic stats empty")
	}
	if res.ResolveOps == 0 || res.PeakTreeNodes == 0 {
		t.Fatal("local computation stats empty")
	}
	if len(res.GlobalDetections) != 0 {
		t.Fatalf("fault-free run detected %v", res.GlobalDetections)
	}
	if res.Events != nil {
		t.Fatal("events returned without CollectEvents")
	}
}

func TestRunReportsFaultyProcessors(t *testing.T) {
	res, err := shiftgears.Run(shiftgears.Config{
		Algorithm: shiftgears.AlgorithmA, N: 13, T: 4, B: 3, SourceValue: 1,
		Faulty: []int{0, 2, 5, 9}, Strategy: "splitbrain",
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Agreement {
		t.Fatal("agreement lost")
	}
	if !res.Validity {
		t.Fatal("validity must hold vacuously with a faulty source")
	}
	for _, pr := range res.Processors {
		wantCorrect := pr.ID != 0 && pr.ID != 2 && pr.ID != 5 && pr.ID != 9
		if pr.Correct != wantCorrect {
			t.Fatalf("processor %d correctness = %v", pr.ID, pr.Correct)
		}
	}
	// Split-brain equivocators get globally detected.
	if len(res.GlobalDetections) == 0 {
		t.Fatal("no global detections under splitbrain faults")
	}
	for p := range res.GlobalDetections {
		if p != 0 && p != 2 && p != 5 && p != 9 {
			t.Fatalf("global detection of correct processor %d", p)
		}
	}
}

func TestRunCollectEvents(t *testing.T) {
	res, err := shiftgears.Run(shiftgears.Config{
		Algorithm: shiftgears.AlgorithmB, N: 13, T: 3, B: 2, SourceValue: 1,
		Faulty: []int{1}, Strategy: "noise", CollectEvents: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Events) == 0 {
		t.Fatal("no events collected")
	}
	// Events are sorted by round.
	for i := 1; i < len(res.Events); i++ {
		if res.Events[i].Round < res.Events[i-1].Round {
			t.Fatal("events out of order")
		}
	}
}

func TestRunNonZeroSource(t *testing.T) {
	res, err := shiftgears.Run(shiftgears.Config{
		Algorithm: shiftgears.Exponential, N: 7, T: 2, Source: 4, SourceValue: 3,
		Faulty: []int{0, 1}, Strategy: "garbage",
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Agreement || !res.Validity || res.DecisionValue != 3 {
		t.Fatalf("agreement=%v validity=%v decision=%d", res.Agreement, res.Validity, res.DecisionValue)
	}
}

func TestRunDefaultStrategyIsSplitBrain(t *testing.T) {
	res, err := shiftgears.Run(shiftgears.Config{
		Algorithm: shiftgears.Exponential, N: 7, T: 2, SourceValue: 1,
		Faulty: []int{0},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Agreement {
		t.Fatal("agreement lost under the default strategy")
	}
}

func TestRunParallelEngineIdentical(t *testing.T) {
	cfg := shiftgears.Config{
		Algorithm: shiftgears.Hybrid, N: 13, T: 4, B: 3, SourceValue: 1,
		Faulty: []int{0, 3, 6, 9}, Strategy: "noise", Seed: 17,
	}
	seq, err := shiftgears.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Parallel = true
	par, err := shiftgears.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if seq.DecisionValue != par.DecisionValue || seq.Rounds != par.Rounds ||
		seq.TotalBytes != par.TotalBytes || seq.MaxMessageBytes != par.MaxMessageBytes {
		t.Fatalf("engines diverge: seq=%+v par=%+v", seq, par)
	}
	for i := range seq.Processors {
		if seq.Processors[i].Decision != par.Processors[i].Decision {
			t.Fatalf("processor %d decisions differ", i)
		}
	}
}

// TestRunStatefulStrategyPerProcessor: Run must build one strategy
// instance per faulty processor. A stateful strategy (stutter keeps the
// previous round's payload) shared across faulty processors races under
// the Parallel engine's concurrent PrepareRound calls — this test fails
// under -race against the shared-instance code — and mixes the
// processors' payload histories, so the engines would also diverge.
func TestRunStatefulStrategyPerProcessor(t *testing.T) {
	cfg := shiftgears.Config{
		Algorithm: shiftgears.Hybrid, N: 13, T: 4, B: 3, SourceValue: 1,
		Faulty: []int{1, 4, 7, 10}, Strategy: "stutter", Seed: 23,
	}
	seq, err := shiftgears.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Parallel = true
	par, err := shiftgears.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !seq.Agreement || !par.Agreement {
		t.Fatal("agreement lost under the stutter strategy")
	}
	if seq.DecisionValue != par.DecisionValue || seq.TotalBytes != par.TotalBytes {
		t.Fatalf("per-processor strategy state diverges across engines: seq=%+v par=%+v", seq, par)
	}
}

func TestRunExcessFaultsStillTerminates(t *testing.T) {
	// Beyond-resilience runs forfeit guarantees but must not wedge or error.
	res, err := shiftgears.Run(shiftgears.Config{
		Algorithm: shiftgears.Exponential, N: 7, T: 2, SourceValue: 1,
		Faulty: []int{0, 1, 2, 3}, Strategy: "splitbrain",
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, pr := range res.Processors {
		if pr.Correct && !pr.Decided {
			t.Fatalf("correct processor %d hung", pr.ID)
		}
	}
}

func TestPaperRoundBoundsByAlgorithm(t *testing.T) {
	// The Result's bound field must match the theorems.
	cases := []struct {
		cfg   shiftgears.Config
		bound int
	}{
		{shiftgears.Config{Algorithm: shiftgears.Exponential, N: 13, T: 4}, 5},
		{shiftgears.Config{Algorithm: shiftgears.AlgorithmA, N: 16, T: 5, B: 3}, 5 + 2 + 2*4},
		{shiftgears.Config{Algorithm: shiftgears.AlgorithmB, N: 21, T: 5, B: 3}, 5 + 1 + 2},
		{shiftgears.Config{Algorithm: shiftgears.AlgorithmC, N: 18, T: 3}, 4},
		{shiftgears.Config{Algorithm: shiftgears.PSL, N: 13, T: 4}, 5},
		{shiftgears.Config{Algorithm: shiftgears.PhaseQueen, N: 13, T: 3}, 9},
		{shiftgears.Config{Algorithm: shiftgears.Multivalued, N: 13, T: 3}, 11},
	}
	for _, tc := range cases {
		res, err := shiftgears.Run(tc.cfg)
		if err != nil {
			t.Fatalf("%v: %v", tc.cfg.Algorithm, err)
		}
		if res.PaperRoundBound != tc.bound {
			t.Errorf("%v: bound = %d, want %d", tc.cfg.Algorithm, res.PaperRoundBound, tc.bound)
		}
		if res.Rounds > tc.bound {
			t.Errorf("%v: ran %d rounds, beyond the paper bound %d", tc.cfg.Algorithm, res.Rounds, tc.bound)
		}
	}
}
