package shiftgears_test

import (
	"strings"
	"sync/atomic"
	"testing"

	"shiftgears"
)

// gearedWorkload builds a 13-replica log under a saturated workload with
// t silent Byzantine sources — the regime the built-in gear policies are
// written for — and runs it.
func gearedWorkload(t *testing.T, policy shiftgears.GearPolicy, tcp bool) *shiftgears.LogResult {
	t.Helper()
	cfg := shiftgears.LogConfig{
		N: 13, T: 3, B: 3,
		Slots: 39, Window: 4, BatchSize: 2,
		Faulty: []int{2, 5, 8}, Strategy: "silent", Seed: 7,
		TCP: tcp,
	}
	if policy == nil {
		cfg.Algorithm = shiftgears.Hybrid
	} else {
		cfg.GearPolicy = policy
	}
	l, err := shiftgears.NewReplicatedLog(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 52; c++ {
		if err := l.Submit(c%13, shiftgears.Value(1+c%255)); err != nil {
			t.Fatal(err)
		}
	}
	res, err := l.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Agreement {
		t.Fatal("correct replicas committed diverging logs")
	}
	return res
}

// TestGearPoliciesBeatStaticHybrid is the acceptance property: under
// Byzantine sources, both built-in gear policies finish the same workload
// in fewer ticks than the static Hybrid log while committing exactly the
// same commands per slot, and the TCP mesh reproduces the sim schedule
// tick for tick.
func TestGearPoliciesBeatStaticHybrid(t *testing.T) {
	static := gearedWorkload(t, nil, false)
	for _, tc := range []struct {
		name   string
		policy shiftgears.GearPolicy
	}{
		{"blacklist", shiftgears.Blacklist{}},
		{"downshift", shiftgears.Downshift{}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			sim := gearedWorkload(t, tc.policy, false)
			if sim.Ticks >= static.Ticks {
				t.Fatalf("%s used %d ticks, static hybrid %d", tc.name, sim.Ticks, static.Ticks)
			}
			if len(sim.Entries) != len(static.Entries) {
				t.Fatalf("committed %d slots, want %d", len(sim.Entries), len(static.Entries))
			}
			// The gear shift changes how fast slots agree, never on what:
			// every slot commits the same commands as the static log.
			for slot := range static.Entries {
				s, g := static.Entries[slot].Commands, sim.Entries[slot].Commands
				if len(s) != len(g) {
					t.Fatalf("slot %d: static commits %v, geared %v", slot, s, g)
				}
				for i := range s {
					if s[i] != g[i] {
						t.Fatalf("slot %d command %d: static %v, geared %v", slot, i, s, g)
					}
				}
			}
			tcp := gearedWorkload(t, tc.policy, true)
			if tcp.Ticks != sim.Ticks {
				t.Fatalf("TCP used %d ticks, sim %d", tcp.Ticks, sim.Ticks)
			}
			for slot := range sim.Entries {
				if len(tcp.Entries[slot].Commands) != len(sim.Entries[slot].Commands) {
					t.Fatalf("slot %d: TCP commits %v, sim %v", slot, tcp.Entries[slot].Commands, sim.Entries[slot].Commands)
				}
			}
		})
	}
}

// TestGearScheduleReported: LogResult.Gears records the per-slot picks —
// the static algorithm everywhere, or the policy's shifts.
func TestGearScheduleReported(t *testing.T) {
	static := gearedWorkload(t, nil, false)
	for slot, g := range static.Gears {
		if g != shiftgears.Hybrid {
			t.Fatalf("static slot %d reports gear %v", slot, g)
		}
	}

	bl := gearedWorkload(t, shiftgears.Blacklist{}, false)
	noops := 0
	for slot, g := range bl.Gears {
		switch g {
		case shiftgears.Hybrid:
		case shiftgears.NoOpSlot:
			noops++
			if src := slot % 13; src != 2 && src != 5 && src != 8 {
				t.Fatalf("correct source %d blacklisted at slot %d", src, slot)
			}
		default:
			t.Fatalf("blacklist picked unexpected gear %v for slot %d", g, slot)
		}
	}
	// Each faulty source's later slots (second and third of three) shift
	// once its first burned slot commits.
	if noops != 6 {
		t.Fatalf("blacklisted %d slots, want 6", noops)
	}

	ds := gearedWorkload(t, shiftgears.Downshift{}, false)
	shifted := -1
	for slot, g := range ds.Gears {
		if g == shiftgears.AlgorithmB && shifted < 0 {
			shifted = slot
		}
		if g == shiftgears.Hybrid && shifted >= 0 {
			t.Fatalf("downshift flapped back to hybrid at slot %d", slot)
		}
	}
	if shifted < 0 {
		t.Fatal("downshift never shifted")
	}
}

// TestGearPolicyPurity: the built-in policies are pure functions of their
// arguments — same prefix, same pick.
func TestGearPolicyPurity(t *testing.T) {
	prefix := []shiftgears.LogEntry{
		{Slot: 0, Source: 0, Batch: []shiftgears.Value{7}, Commands: []shiftgears.Value{7}},
		{Slot: 1, Source: 1, Batch: []shiftgears.Value{0}},
		{Slot: 2, Source: 2, Batch: []shiftgears.Value{0}},
	}
	for _, policy := range []shiftgears.GearPolicy{
		shiftgears.Downshift{}, shiftgears.Downshift{MinEvidence: 3},
		shiftgears.Blacklist{}, shiftgears.Blacklist{Base: shiftgears.PSL},
	} {
		a := policy.Pick(9, 1, prefix)
		b := policy.Pick(9, 1, prefix)
		if a != b {
			t.Fatalf("%s is impure: %v then %v", policy.Name(), a, b)
		}
	}
	// Semantics: source 1 burned slot 1, so Blacklist no-ops its slots and
	// Downshift (2 burned sources ≥ MinEvidence 1) picks the low gear.
	if g := (shiftgears.Blacklist{}).Pick(14, 1, prefix); g != shiftgears.NoOpSlot {
		t.Fatalf("burned source not blacklisted: %v", g)
	}
	if g := (shiftgears.Blacklist{}).Pick(13, 0, prefix); g != shiftgears.Hybrid {
		t.Fatalf("clean source blacklisted: %v", g)
	}
	if g := (shiftgears.Downshift{}).Pick(3, 3, prefix); g != shiftgears.AlgorithmB {
		t.Fatalf("downshift with evidence stayed high: %v", g)
	}
	if g := (shiftgears.Downshift{MinEvidence: 3}).Pick(3, 3, prefix); g != shiftgears.Hybrid {
		t.Fatalf("downshift shifted below MinEvidence: %v", g)
	}
}

// impurePolicy violates the determinism contract: its picks depend on a
// shared call counter, so different replicas resolve different gears.
type impurePolicy struct{ calls atomic.Int64 }

func (p *impurePolicy) Name() string { return "impure" }
func (p *impurePolicy) Pick(slot, source int, prefix []shiftgears.LogEntry) shiftgears.Algorithm {
	// Alternates between gears with different round counts (2 vs 5 at
	// n=5, t=1), so the replicas' slot schedules disagree.
	if p.calls.Add(1)%2 == 0 {
		return shiftgears.PhaseQueen
	}
	return shiftgears.Exponential
}

// TestImpureGearPolicyDetected: a policy that breaks the determinism
// contract surfaces as a schedule error — never as silently diverging
// committed logs.
func TestImpureGearPolicyDetected(t *testing.T) {
	l, err := shiftgears.NewReplicatedLog(shiftgears.LogConfig{
		GearPolicy: &impurePolicy{},
		N:          5, T: 1,
		Slots: 6, Window: 2, BatchSize: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Run(); err == nil {
		t.Fatal("impure gear policy not surfaced")
	} else if !strings.Contains(err.Error(), "divergence") && !strings.Contains(err.Error(), "mux is done") {
		t.Fatalf("impure-policy error unclear: %v", err)
	}
}

// TestParseGearPolicy covers the CLI surface.
func TestParseGearPolicy(t *testing.T) {
	for _, name := range []string{"blacklist", "downshift"} {
		p, err := shiftgears.ParseGearPolicy(name)
		if err != nil {
			t.Fatal(err)
		}
		if p.Name() != name {
			t.Fatalf("ParseGearPolicy(%q).Name() = %q", name, p.Name())
		}
	}
	if _, err := shiftgears.ParseGearPolicy("bogus"); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

// TestInadmissibleGearRejectedAtConstruction: a policy whose enumerated
// gears include one the cluster parameters cannot run (Downshift's
// default AlgorithmB low gear needs n ≥ 4t+1) must fail NewReplicatedLog
// — not abort mid-run, discarding committed work, when the shift first
// fires.
func TestInadmissibleGearRejectedAtConstruction(t *testing.T) {
	_, err := shiftgears.NewReplicatedLog(shiftgears.LogConfig{
		GearPolicy: shiftgears.Downshift{}, // high gear Hybrid fits n=11, t=3; low gear AlgorithmB needs n ≥ 4t+1 = 13
		N:          11, T: 3, B: 3, Slots: 11,
	})
	if err == nil {
		t.Fatal("inadmissible low gear accepted at construction")
	}
	if !strings.Contains(err.Error(), "inadmissible") || !strings.Contains(err.Error(), "4t+1") {
		t.Fatalf("inadmissible-gear error unclear: %v", err)
	}

	// The same cluster is fine once the gears fit its parameters.
	if _, err := shiftgears.NewReplicatedLog(shiftgears.LogConfig{
		GearPolicy: shiftgears.Downshift{High: shiftgears.Exponential, Low: shiftgears.PhaseQueen},
		N:          13, T: 3, Slots: 13,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := shiftgears.NewReplicatedLog(shiftgears.LogConfig{
		GearPolicy: shiftgears.Blacklist{Base: shiftgears.Exponential},
		N:          7, T: 2, Slots: 7,
	}); err != nil {
		t.Fatal(err)
	}
}

// TestNoOpSlotIsLogOnly: the NoOpSlot gear parses from the CLI but is
// rejected by single-shot Run.
func TestNoOpSlotIsLogOnly(t *testing.T) {
	alg, err := shiftgears.ParseAlgorithm("noop")
	if err != nil || alg != shiftgears.NoOpSlot {
		t.Fatalf("ParseAlgorithm(noop) = %v, %v", alg, err)
	}
	if alg.String() != "noop" {
		t.Fatalf("NoOpSlot.String() = %q", alg.String())
	}
	if _, err := shiftgears.Run(shiftgears.Config{Algorithm: shiftgears.NoOpSlot, N: 4, T: 1}); err == nil {
		t.Fatal("single-shot Run accepted the noop gear")
	}
	// Nor may it be a static log algorithm: every slot would discard its
	// source's commands while still reporting agreement.
	if _, err := shiftgears.NewReplicatedLog(shiftgears.LogConfig{
		Algorithm: shiftgears.NoOpSlot, N: 4, T: 1, Slots: 4,
	}); err == nil {
		t.Fatal("static log accepted the noop gear")
	}
	if _, err := shiftgears.NewReplicatedLog(shiftgears.LogConfig{
		Algorithm: shiftgears.Exponential, N: 4, T: 1, Slots: 4,
		SlotAlgorithm: func(slot int) shiftgears.Algorithm { return shiftgears.NoOpSlot },
	}); err == nil {
		t.Fatal("static SlotAlgorithm accepted the noop gear")
	}
}

// TestPendingReportsUncommittedCommands: commands that never get a slot
// — the log is too short, or a gear policy no-op'd the slots they were
// waiting for — must be visible in LogResult.Pending, since Agreement
// alone says nothing about their loss.
func TestPendingReportsUncommittedCommands(t *testing.T) {
	l, err := shiftgears.NewReplicatedLog(shiftgears.LogConfig{
		Algorithm: shiftgears.Exponential,
		N:         4, T: 1, Slots: 4, BatchSize: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Replica 0 sources exactly one slot with one batch position; two of
	// its three commands can never commit.
	for c := 0; c < 3; c++ {
		if err := l.Submit(0, shiftgears.Value(1+c)); err != nil {
			t.Fatal(err)
		}
	}
	res, err := l.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Agreement {
		t.Fatal("agreement lost")
	}
	if res.Committed != 1 || res.Pending != 2 {
		t.Fatalf("Committed=%d Pending=%d, want 1 and 2", res.Committed, res.Pending)
	}
}

// TestAllFaultyLogFails: a log with every replica faulty must fail with
// an explicit error, not report Agreement=false over a nil log.
func TestAllFaultyLogFails(t *testing.T) {
	l, err := shiftgears.NewReplicatedLog(shiftgears.LogConfig{
		Algorithm: shiftgears.Exponential,
		N:         4, T: 1, Slots: 2,
		Faulty: []int{0, 1, 2, 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Run(); err == nil {
		t.Fatal("all-faulty log ran without error")
	} else if !strings.Contains(err.Error(), "no correct replicas") {
		t.Fatalf("all-faulty error unclear: %v", err)
	}
}
