// Command bench runs the replicated log's throughput matrix — window ×
// batch × N × gear policy × fabric (the in-process router, the chaos
// network, a loopback TCP mesh) — and writes a BENCH_*.json trajectory
// file, so every change to the engine leaves a comparable perf record:
//
//	bench -out BENCH_6.json          # the full matrix (~seconds)
//	bench -short -out bench.json     # CI smoke: three small cases
//
// Per case it records committed commands, ticks, cmds/tick, wall time,
// message/byte totals, submit→commit latency percentiles (in ticks), and
// the heap allocation count across the run (runtime.MemStats.Mallocs
// delta) — the allocs/tick trend is the mux hot path's scorecard. Cases
// with "traced" run the same workload with the full flight-recorder sink
// stack installed, pricing the tracer against its untraced twin. See the
// README's Performance section for the schema and the current numbers.
//
// -guard compares two trajectory files and fails when the sim- or
// tcp-fabric allocs/tick regress, which is what CI runs on every change:
//
//	bench -guard BENCH_5.json -in BENCH_6.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"shiftgears"
)

// Case is one cell of the throughput matrix.
type Case struct {
	Name     string `json:"name"`
	Mode     string `json:"mode"` // fabric: "sim", "mem", or "tcp"
	Chaos    bool   `json:"chaos,omitempty"`
	N        int    `json:"n"`
	T        int    `json:"t"`
	Window   int    `json:"window"`
	Batch    int    `json:"batch"`
	Workers  int    `json:"workers,omitempty"`
	Alg      string `json:"alg"`
	Gears    string `json:"gears,omitempty"`
	Faulty   []int  `json:"faulty,omitempty"`
	Strategy string `json:"strategy,omitempty"`
	Cmds     int    `json:"cmds"`
	// Shards > 0 runs the case as a sharded MultiLog with that many
	// independent agreement groups (N, Window, Batch are then per shard);
	// 0 is the plain unsharded log.
	Shards int `json:"shards,omitempty"`
	// Traced runs the case with the flight recorder's full sink stack
	// (ring + metrics + JSONL to io.Discard) installed, so the matrix
	// prices tracing against the untraced twin case.
	Traced bool `json:"traced,omitempty"`
}

// Result is a Case plus its measurements.
type Result struct {
	Case
	Slots           int     `json:"slots"`
	Ticks           int     `json:"ticks"`
	SequentialTicks int     `json:"sequential_ticks"`
	Committed       int     `json:"committed"`
	CmdsPerTick     float64 `json:"cmds_per_tick"`
	Messages        int     `json:"messages"`
	Bytes           int     `json:"bytes"`
	MaxMessageBytes int     `json:"max_message_bytes"`
	Allocs          uint64  `json:"allocs"`
	AllocsPerTick   float64 `json:"allocs_per_tick"`
	WallMS          float64 `json:"wall_ms"`
	// Submit→commit latency in synchronous ticks, merged across the
	// correct replicas' source-side histograms.
	LatencyMean float64 `json:"latency_mean_ticks"`
	LatencyP50  int     `json:"latency_p50_ticks"`
	LatencyP90  int     `json:"latency_p90_ticks"`
	LatencyP99  int     `json:"latency_p99_ticks"`
	LatencyMax  int     `json:"latency_max_ticks"`
}

// File is the BENCH_*.json schema ("shiftgears-bench/v3": v2 plus
// commit-latency percentiles per case and the traced dimension —
// flight-recorder-on twin cases that price the tracer).
type File struct {
	Schema    string   `json:"schema"`
	Generated string   `json:"generated"`
	Go        string   `json:"go"`
	Results   []Result `json:"results"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
}

// matrix returns the cases to run. The full matrix sweeps the levers the
// engine claims matter — window (pipelining), batch (amortization), N
// (mesh size), workers (per-replica parallelism), gears (algorithm
// shifting), across the three fabrics; short mode is a three-case CI smoke.
func matrix(short bool) []Case {
	if short {
		return []Case{
			{Name: "smoke-sim", Mode: "sim", N: 4, T: 1, Window: 2, Batch: 2, Alg: "exponential", Cmds: 16},
			{Name: "smoke-mem", Mode: "mem", Chaos: true, N: 4, T: 1, Window: 2, Batch: 2, Alg: "exponential", Cmds: 16},
			{Name: "smoke-tcp", Mode: "tcp", N: 4, T: 1, Window: 2, Batch: 2, Alg: "exponential", Cmds: 16},
		}
	}
	cases := []Case{
		// The pipelining/batching ladder: same workload, wider gears.
		{Name: "seq", Mode: "sim", N: 7, T: 2, Window: 1, Batch: 1, Alg: "exponential", Cmds: 96},
		{Name: "batched", Mode: "sim", N: 7, T: 2, Window: 1, Batch: 4, Alg: "exponential", Cmds: 96},
		{Name: "pipelined", Mode: "sim", N: 7, T: 2, Window: 4, Batch: 1, Alg: "exponential", Cmds: 96},
		{Name: "both", Mode: "sim", N: 7, T: 2, Window: 4, Batch: 4, Alg: "exponential", Cmds: 96},
		{Name: "wide", Mode: "sim", N: 7, T: 2, Window: 8, Batch: 4, Alg: "exponential", Cmds: 192},
		{Name: "wide-workers", Mode: "sim", N: 7, T: 2, Window: 8, Batch: 4, Workers: 4, Alg: "exponential", Cmds: 192},
		// Mesh size.
		{Name: "n4", Mode: "sim", N: 4, T: 1, Window: 4, Batch: 4, Alg: "exponential", Cmds: 64},
		{Name: "n13", Mode: "sim", N: 13, T: 3, Window: 4, Batch: 4, Alg: "exponential", Cmds: 104},
		// Gear policies under faults: static hybrid vs shifting down.
		{Name: "hybrid-static", Mode: "sim", N: 13, T: 3, Window: 4, Batch: 2, Alg: "hybrid", Cmds: 52,
			Faulty: []int{2, 5, 8}, Strategy: "silent"},
		{Name: "hybrid-downshift", Mode: "sim", N: 13, T: 3, Window: 4, Batch: 2, Alg: "hybrid", Gears: "downshift", Cmds: 52,
			Faulty: []int{2, 5, 8}, Strategy: "silent"},
		// The mem fabric: the chaos network at zero faults must price like
		// sim (same drive loop, routing plus a fault filter), and with a
		// representative adverse schedule it prices the chaos machinery.
		{Name: "mem-both", Mode: "mem", N: 7, T: 2, Window: 4, Batch: 4, Alg: "exponential", Cmds: 96},
		{Name: "mem-chaos", Mode: "mem", Chaos: true, N: 7, T: 2, Window: 4, Batch: 4, Alg: "exponential", Cmds: 96},
		// The TCP mesh: every frame crosses a real socket.
		{Name: "tcp-seq", Mode: "tcp", N: 4, T: 1, Window: 1, Batch: 1, Alg: "exponential", Cmds: 32},
		{Name: "tcp-both", Mode: "tcp", N: 4, T: 1, Window: 4, Batch: 4, Alg: "exponential", Cmds: 32},
		{Name: "tcp-n7", Mode: "tcp", N: 7, T: 2, Window: 4, Batch: 4, Alg: "exponential", Cmds: 96},
		{Name: "tcp-wide", Mode: "tcp", N: 7, T: 2, Window: 8, Batch: 4, Alg: "exponential", Cmds: 192},
		// The shard ladder: the "wide" workload behind a router, then the
		// same per-shard workload times four. K=1 must price like "wide"
		// (the router and one drive goroutine are the only additions); K=4
		// aggregate cmds/tick should approach 4× on the sim fabric, where
		// shards only share the scheduler.
		{Name: "sharded-sim-k1", Mode: "sim", N: 7, T: 2, Window: 8, Batch: 4, Alg: "exponential", Cmds: 192, Shards: 1},
		{Name: "sharded-sim-k4", Mode: "sim", N: 7, T: 2, Window: 8, Batch: 4, Alg: "exponential", Cmds: 768, Shards: 4},
		{Name: "sharded-tcp-k1", Mode: "tcp", N: 7, T: 2, Window: 8, Batch: 4, Alg: "exponential", Cmds: 192, Shards: 1},
		{Name: "sharded-tcp-k4", Mode: "tcp", N: 7, T: 2, Window: 8, Batch: 4, Alg: "exponential", Cmds: 768, Shards: 4},
		// The flight recorder priced against its untraced twins: "both" and
		// "mem-chaos" rerun with every sink attached. The tracer's cost IS
		// these deltas; the nil-tracer overhead is bounded separately by
		// BenchmarkFabricTick staying at 0 allocs/tick.
		{Name: "both-traced", Mode: "sim", N: 7, T: 2, Window: 4, Batch: 4, Alg: "exponential", Cmds: 96, Traced: true},
		{Name: "mem-chaos-traced", Mode: "mem", Chaos: true, N: 7, T: 2, Window: 4, Batch: 4, Alg: "exponential", Cmds: 96, Traced: true},
	}
	return cases
}

// chaosPlan is the representative adverse schedule of the mem-chaos
// cases: one victim's outbound links drop frames and a partition
// isolates it for a window that heals.
func chaosPlan(n int) *shiftgears.Chaos {
	victim := n - 1
	return &shiftgears.Chaos{
		Seed:    1,
		Victims: []int{victim},
		Drop:    0.3,
		Partitions: []shiftgears.ChaosPartition{
			{From: 4, Until: 10, Group: []int{victim}},
		},
	}
}

// runShardedCase builds and runs one sharded multi-log and measures it.
// The workload is the same open-loop stream the unsharded cases submit
// (command i is Value(1+i%255)); the router is pure, so the case can
// pre-route the stream to size each shard's Slots exactly, and each
// shard's receivers rotate independently — at Shards=1 this reduces
// byte-for-byte to the unsharded sizing and submission pattern.
func runShardedCase(c Case) (Result, error) {
	const routerSeed = 1
	alg, err := shiftgears.ParseAlgorithm(c.Alg)
	if err != nil {
		return Result{}, err
	}
	counts := make([]int, c.Shards)
	for i := 0; i < c.Cmds; i++ {
		counts[shiftgears.ShardOf(routerSeed, c.Shards, shiftgears.Value(1+i%255))]++
	}
	slots := make([]int, c.Shards)
	totalSlots := 0
	for s, cnt := range counts {
		if cnt == 0 {
			cnt = 1 // a log needs ≥ 1 slot even if the router starved the shard
		}
		perReplica := (cnt + c.N - 1) / c.N
		slots[s] = c.N * ((perReplica + c.Batch - 1) / c.Batch)
		totalSlots += slots[s]
	}
	ml, err := shiftgears.NewMultiLog(shiftgears.MultiLogConfig{
		Shards:     c.Shards,
		RouterSeed: routerSeed,
		Log: shiftgears.LogConfig{
			Algorithm: alg,
			N:         c.N, T: c.T, B: 3,
			Window: c.Window, BatchSize: c.Batch, Workers: c.Workers,
			Fabric: c.Mode,
		},
		PerShard: func(s int, cfg *shiftgears.LogConfig) { cfg.Slots = slots[s] },
	})
	if err != nil {
		return Result{}, err
	}
	recv := make([]int, c.Shards)
	for i := 0; i < c.Cmds; i++ {
		cmd := shiftgears.Value(1 + i%255)
		s, err := ml.ShardOf(cmd)
		if err != nil {
			return Result{}, err
		}
		if err := ml.Submit(recv[s]%c.N, cmd); err != nil {
			return Result{}, err
		}
		recv[s]++
	}

	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	res, err := ml.Run()
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	if err != nil {
		return Result{}, err
	}
	if !res.Agreement {
		return Result{}, fmt.Errorf("case %s: correct replicas committed diverging logs", c.Name)
	}

	seq := 0
	for _, sr := range res.Shards {
		seq += sr.SequentialTicks
	}
	allocs := after.Mallocs - before.Mallocs
	return Result{
		Case:            c,
		Slots:           totalSlots,
		Ticks:           res.Ticks,
		SequentialTicks: seq,
		Committed:       res.Committed,
		CmdsPerTick:     res.CmdsPerTick(),
		Messages:        res.Messages,
		Bytes:           res.TotalBytes,
		MaxMessageBytes: res.MaxMessageBytes,
		Allocs:          allocs,
		AllocsPerTick:   float64(allocs) / float64(res.Ticks),
		WallMS:          float64(elapsed.Microseconds()) / 1000,
		LatencyMean:     res.Latency.Mean,
		LatencyP50:      res.Latency.P50,
		LatencyP90:      res.Latency.P90,
		LatencyP99:      res.Latency.P99,
		LatencyMax:      res.Latency.Max,
	}, nil
}

// runCase builds and runs one log and measures it.
func runCase(c Case) (Result, error) {
	if c.Shards > 0 {
		return runShardedCase(c)
	}
	// The busiest replica gets ⌈cmds/n⌉ commands and needs ⌈that/batch⌉
	// sourced slots; sources rotate, so the log is n times that (the
	// cmd/logload sizing rule).
	perReplica := (c.Cmds + c.N - 1) / c.N
	slots := c.N * ((perReplica + c.Batch - 1) / c.Batch)

	alg, err := shiftgears.ParseAlgorithm(c.Alg)
	if err != nil {
		return Result{}, err
	}
	lcfg := shiftgears.LogConfig{
		Algorithm: alg,
		N:         c.N, T: c.T, B: 3,
		Slots: slots, Window: c.Window, BatchSize: c.Batch, Workers: c.Workers,
		Faulty: c.Faulty, Strategy: c.Strategy,
		Fabric: c.Mode,
	}
	if c.Chaos {
		lcfg.Chaos = chaosPlan(c.N)
	}
	if c.Gears != "" {
		policy, err := shiftgears.ParseGearPolicy(c.Gears)
		if err != nil {
			return Result{}, err
		}
		lcfg.GearPolicy = shiftgears.GearPolicyWithBase(policy, alg)
	}
	if c.Traced {
		lcfg.Tracer = shiftgears.TraceTee(
			shiftgears.NewTraceRing(0),
			shiftgears.NewTraceMetrics(),
			shiftgears.NewTraceJSONL(io.Discard),
		)
	}
	log, err := shiftgears.NewReplicatedLog(lcfg)
	if err != nil {
		return Result{}, err
	}
	for i := 0; i < c.Cmds; i++ {
		if err := log.Submit(i%c.N, shiftgears.Value(1+i%255)); err != nil {
			return Result{}, err
		}
	}

	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	res, err := log.Run()
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	if err != nil {
		return Result{}, err
	}
	if !res.Agreement {
		return Result{}, fmt.Errorf("case %s: correct replicas committed diverging logs", c.Name)
	}

	allocs := after.Mallocs - before.Mallocs
	return Result{
		Case:            c,
		Slots:           slots,
		Ticks:           res.Ticks,
		SequentialTicks: res.SequentialTicks,
		Committed:       res.Committed,
		CmdsPerTick:     float64(res.Committed) / float64(res.Ticks),
		Messages:        res.Messages,
		Bytes:           res.TotalBytes,
		MaxMessageBytes: res.MaxMessageBytes,
		Allocs:          allocs,
		AllocsPerTick:   float64(allocs) / float64(res.Ticks),
		WallMS:          float64(elapsed.Microseconds()) / 1000,
		LatencyMean:     res.Latency.Mean,
		LatencyP50:      res.Latency.P50,
		LatencyP90:      res.Latency.P90,
		LatencyP99:      res.Latency.P99,
		LatencyMax:      res.Latency.Max,
	}, nil
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	var (
		outPath  = fs.String("out", "", "write the bench JSON to this file (default stdout only)")
		short    = fs.Bool("short", false, "CI smoke: three small cases")
		guardPth = fs.String("guard", "", "baseline BENCH_*.json: fail if sim allocs/tick regress against it")
		inPath   = fs.String("in", "", "with -guard: compare this trajectory file instead of running the matrix")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *inPath != "" && *guardPth == "" {
		return fmt.Errorf("-in only makes sense with -guard")
	}
	if *guardPth != "" && *inPath != "" {
		// Pure compare mode: no runs, just the two files.
		baseline, err := readFile(*guardPth)
		if err != nil {
			return err
		}
		candidate, err := readFile(*inPath)
		if err != nil {
			return err
		}
		return guard(out, *guardPth, baseline, *inPath, candidate)
	}

	file := File{
		Schema:    "shiftgears-bench/v3",
		Generated: time.Now().UTC().Format(time.RFC3339),
		Go:        runtime.Version(),
	}
	for _, c := range matrix(*short) {
		res, err := runCase(c)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "bench: %-18s %s n=%-2d window=%d batch=%d %6.2f cmds/tick %7d allocs %8.1fms\n",
			res.Name, res.Mode, res.N, res.Window, res.Batch, res.CmdsPerTick, res.Allocs, res.WallMS)
		file.Results = append(file.Results, res)
	}

	blob, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if *outPath != "" {
		if err := os.WriteFile(*outPath, blob, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "bench: wrote %s (%d cases)\n", *outPath, len(file.Results))
	} else if *guardPth == "" {
		if _, err := out.Write(blob); err != nil {
			return err
		}
	}
	if *guardPth != "" {
		baseline, err := readFile(*guardPth)
		if err != nil {
			return err
		}
		return guard(out, *guardPth, baseline, "this run", file)
	}
	return nil
}

func readFile(path string) (File, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return File{}, err
	}
	var f File
	if err := json.Unmarshal(blob, &f); err != nil {
		return File{}, fmt.Errorf("%s: %w", path, err)
	}
	return f, nil
}

// guard compares the candidate's allocation rates against the baseline's,
// case by case (matched by name), and fails on regression. Sim cases
// guard at 10% plus one alloc/tick: their allocs/tick is deterministic
// engine-owned work. Since the wire hot path went zero-copy (read
// arenas, vectored writes), tcp cases guard too — at a wider 25% plus
// sixteen allocs/tick, because they also count transport goroutines and
// wall-clock scheduling noise. Cases present only in the candidate (a
// growing matrix — e.g. the sharded cases against a pre-shard baseline)
// are reported as new and pass; they start guarding once a baseline
// records them.
func guard(out io.Writer, basePath string, baseline File, candPath string, candidate File) error {
	byName := make(map[string]Result, len(baseline.Results))
	for _, r := range baseline.Results {
		byName[r.Name] = r
	}
	compared, failed := 0, 0
	for _, r := range candidate.Results {
		if (r.Mode != "sim" && r.Mode != "tcp") || r.Traced {
			continue
		}
		base, ok := byName[r.Name]
		if !ok || base.Mode != r.Mode {
			fmt.Fprintf(out, "bench: guard %-18s %s %8.1f allocs/tick — new case, no baseline in %s\n",
				r.Name, r.Mode, r.AllocsPerTick, basePath)
			continue
		}
		compared++
		limit := base.AllocsPerTick*1.10 + 1
		if r.Mode == "tcp" {
			limit = base.AllocsPerTick*1.25 + 16
		}
		status := "ok"
		if r.AllocsPerTick > limit {
			status = "REGRESSED"
			failed++
		}
		fmt.Fprintf(out, "bench: guard %-18s %s %8.1f -> %8.1f allocs/tick (limit %8.1f) %s\n",
			r.Name, r.Mode, base.AllocsPerTick, r.AllocsPerTick, limit, status)
	}
	if compared == 0 {
		return fmt.Errorf("guard: no comparable sim/tcp cases between %s and %s", basePath, candPath)
	}
	if failed > 0 {
		return fmt.Errorf("guard: %d of %d cases regressed allocs/tick vs %s", failed, compared, basePath)
	}
	fmt.Fprintf(out, "bench: guard passed, %d cases within limits of %s\n", compared, basePath)
	return nil
}
