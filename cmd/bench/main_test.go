package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestBenchShortWritesValidJSON runs the CI smoke matrix end to end and
// validates the emitted trajectory file against the schema the README
// documents.
func TestBenchShortWritesValidJSON(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	var buf bytes.Buffer
	if err := run([]string{"-short", "-out", out}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "cmds/tick") {
		t.Fatalf("no per-case summary printed:\n%s", buf.String())
	}

	blob, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var file File
	if err := json.Unmarshal(blob, &file); err != nil {
		t.Fatalf("bench JSON does not parse: %v", err)
	}
	if file.Schema != "shiftgears-bench/v2" {
		t.Fatalf("schema = %q", file.Schema)
	}
	if len(file.Results) != 3 {
		t.Fatalf("short matrix ran %d cases, want 3", len(file.Results))
	}
	modes := map[string]bool{}
	for _, r := range file.Results {
		modes[r.Mode] = true
		if r.Chaos {
			// The chaos victim's dropped proposals become no-ops; the
			// rest of the workload must still land.
			if r.Committed == 0 || r.Committed > r.Cmds {
				t.Fatalf("chaos case %s committed %d of %d commands", r.Name, r.Committed, r.Cmds)
			}
		} else if r.Committed != r.Cmds {
			t.Fatalf("case %s committed %d of %d commands", r.Name, r.Committed, r.Cmds)
		}
		if r.Ticks < 1 || r.CmdsPerTick <= 0 {
			t.Fatalf("case %s has empty measurements: %+v", r.Name, r)
		}
		if r.Allocs == 0 || r.WallMS <= 0 {
			t.Fatalf("case %s has empty cost measurements: %+v", r.Name, r)
		}
	}
	if !modes["sim"] || !modes["mem"] || !modes["tcp"] {
		t.Fatalf("short matrix must cover all three fabrics, got %v", modes)
	}
}

// TestBenchRejectsBadFlags: flag errors surface instead of running a
// half-configured matrix.
func TestBenchRejectsBadFlags(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-definitely-not-a-flag"}, &buf); err == nil {
		t.Fatal("unknown flag accepted")
	}
}
