package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestBenchShortWritesValidJSON runs the CI smoke matrix end to end and
// validates the emitted trajectory file against the schema the README
// documents.
func TestBenchShortWritesValidJSON(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	var buf bytes.Buffer
	if err := run([]string{"-short", "-out", out}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "cmds/tick") {
		t.Fatalf("no per-case summary printed:\n%s", buf.String())
	}

	blob, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var file File
	if err := json.Unmarshal(blob, &file); err != nil {
		t.Fatalf("bench JSON does not parse: %v", err)
	}
	if file.Schema != "shiftgears-bench/v3" {
		t.Fatalf("schema = %q", file.Schema)
	}
	if len(file.Results) != 3 {
		t.Fatalf("short matrix ran %d cases, want 3", len(file.Results))
	}
	modes := map[string]bool{}
	for _, r := range file.Results {
		modes[r.Mode] = true
		if r.Chaos {
			// The chaos victim's dropped proposals become no-ops; the
			// rest of the workload must still land.
			if r.Committed == 0 || r.Committed > r.Cmds {
				t.Fatalf("chaos case %s committed %d of %d commands", r.Name, r.Committed, r.Cmds)
			}
		} else if r.Committed != r.Cmds {
			t.Fatalf("case %s committed %d of %d commands", r.Name, r.Committed, r.Cmds)
		}
		if r.Ticks < 1 || r.CmdsPerTick <= 0 {
			t.Fatalf("case %s has empty measurements: %+v", r.Name, r)
		}
		if r.Allocs == 0 || r.WallMS <= 0 {
			t.Fatalf("case %s has empty cost measurements: %+v", r.Name, r)
		}
		if r.Committed > 0 && (r.LatencyP50 < 1 || r.LatencyMax < r.LatencyP50 || r.LatencyP99 > r.LatencyMax) {
			t.Fatalf("case %s has implausible latency percentiles: %+v", r.Name, r)
		}
	}
	if !modes["sim"] || !modes["mem"] || !modes["tcp"] {
		t.Fatalf("short matrix must cover all three fabrics, got %v", modes)
	}
}

// TestBenchRejectsBadFlags: flag errors surface instead of running a
// half-configured matrix.
func TestBenchRejectsBadFlags(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-definitely-not-a-flag"}, &buf); err == nil {
		t.Fatal("unknown flag accepted")
	}
	if err := run([]string{"-in", "x.json"}, &buf); err == nil {
		t.Fatal("-in without -guard accepted")
	}
}

// TestBenchGuard: the compare mode passes identical trajectories, fails a
// sim allocs/tick regression beyond the tolerance, and ignores tcp noise.
func TestBenchGuard(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, f File) string {
		t.Helper()
		blob, err := json.Marshal(f)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, blob, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	mk := func(name, mode string, apt float64) Result {
		return Result{Case: Case{Name: name, Mode: mode}, AllocsPerTick: apt}
	}
	baseline := File{Schema: "shiftgears-bench/v3", Results: []Result{
		mk("seq", "sim", 100), mk("both", "sim", 50), mk("tcp-seq", "tcp", 500),
	}}
	basePath := write("base.json", baseline)

	same := write("same.json", baseline)
	var buf bytes.Buffer
	if err := run([]string{"-guard", basePath, "-in", same}, &buf); err != nil {
		t.Fatalf("identical trajectories failed the guard: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "guard passed") {
		t.Fatalf("no pass summary:\n%s", buf.String())
	}

	// A 50% sim regression fails; a huge tcp swing alone would not.
	regressed := write("regressed.json", File{Schema: "shiftgears-bench/v3", Results: []Result{
		mk("seq", "sim", 150), mk("both", "sim", 50), mk("tcp-seq", "tcp", 5000),
	}})
	buf.Reset()
	if err := run([]string{"-guard", basePath, "-in", regressed}, &buf); err == nil {
		t.Fatalf("regression passed the guard:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "REGRESSED") {
		t.Fatalf("no regression line:\n%s", buf.String())
	}

	tcpOnly := write("tcponly.json", File{Schema: "shiftgears-bench/v3", Results: []Result{
		mk("tcp-seq", "tcp", 5000),
	}})
	if err := run([]string{"-guard", basePath, "-in", tcpOnly}, &bytes.Buffer{}); err == nil {
		t.Fatal("guard passed with zero comparable sim cases")
	}
}

// TestBenchGuardToleratesNewCases: a candidate case absent from the
// baseline (a growing matrix, e.g. sharded cases guarded against a
// pre-shard file) is reported as new and passes, while a regression in a
// shared case still fails the same compare.
func TestBenchGuardToleratesNewCases(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, f File) string {
		t.Helper()
		blob, err := json.Marshal(f)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, blob, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	mk := func(name, mode string, shards int, apt float64) Result {
		return Result{Case: Case{Name: name, Mode: mode, Shards: shards}, AllocsPerTick: apt}
	}
	basePath := write("base.json", File{Schema: "shiftgears-bench/v3", Results: []Result{
		mk("wide", "sim", 0, 100),
	}})
	grown := write("grown.json", File{Schema: "shiftgears-bench/v3", Results: []Result{
		mk("wide", "sim", 0, 100),
		mk("sharded-sim-k4", "sim", 4, 400),
	}})

	var buf bytes.Buffer
	if err := run([]string{"-guard", basePath, "-in", grown}, &buf); err != nil {
		t.Fatalf("new case failed the guard: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "new case") {
		t.Fatalf("new case not reported:\n%s", buf.String())
	}

	// The shared case regressing must still fail even with new cases around.
	regressed := write("regressed.json", File{Schema: "shiftgears-bench/v3", Results: []Result{
		mk("wide", "sim", 0, 150),
		mk("sharded-sim-k4", "sim", 4, 400),
	}})
	buf.Reset()
	if err := run([]string{"-guard", basePath, "-in", regressed}, &buf); err == nil {
		t.Fatalf("shared-case regression passed the guard:\n%s", buf.String())
	}
}
