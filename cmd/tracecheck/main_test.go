package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"shiftgears"
)

// writeTrace runs a chaos-mem log with a JSONL tracer and returns the
// trace path plus the flags that reproduce its plan.
func writeTrace(t *testing.T) (string, []string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "run.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	jsonl := shiftgears.NewTraceJSONL(f)
	cfg := shiftgears.LogConfig{
		Algorithm: shiftgears.Exponential,
		N:         7, T: 2,
		Slots: 7, Window: 2, BatchSize: 2,
		Faulty: []int{5}, Strategy: "silent", Seed: 3,
		Fabric: "mem",
		Chaos: &shiftgears.Chaos{
			Seed: 3, Victims: []int{5}, Drop: 0.3, Late: 0.1, Delay: 0.2,
			Partitions: []shiftgears.ChaosPartition{{From: 4, Until: 6, Group: []int{5}}},
			Crashes:    []shiftgears.ChaosCrash{{Node: 5, From: 7, Until: 9}},
		},
		Tracer: jsonl,
	}
	l, err := shiftgears.NewReplicatedLog(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 14; c++ {
		if err := l.Submit(c%7, shiftgears.Value(1+c)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := l.Run(); err != nil {
		t.Fatal(err)
	}
	if err := jsonl.Close(); err != nil {
		t.Fatal(err)
	}
	planFlags := []string{
		"-n", "7", "-seed", "3", "-victims", "5",
		"-drop", "0.3", "-late", "0.1", "-delay", "0.2",
		"-partition", "5@4:6", "-crash", "5@7:9",
	}
	return path, planFlags
}

func TestTracecheckAuditsRealTrace(t *testing.T) {
	path, planFlags := writeTrace(t)

	// Structural pass, no plan.
	var buf bytes.Buffer
	if err := run([]string{path}, &buf); err != nil {
		t.Fatalf("structural audit failed: %v", err)
	}
	if !strings.Contains(buf.String(), "events over") {
		t.Fatalf("no summary:\n%s", buf.String())
	}

	// Full replay against the plan, chaos required.
	buf.Reset()
	args := append(append([]string{}, planFlags...), "-want-chaos", path)
	if err := run(args, &buf); err != nil {
		t.Fatalf("plan replay failed: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "all match") {
		t.Fatalf("no replay summary:\n%s", buf.String())
	}

	// The wrong seed must not replay: the decisions diverge.
	wrong := append([]string{"-n", "7", "-seed", "99", "-victims", "5",
		"-drop", "0.3", "-late", "0.1", "-delay", "0.2",
		"-partition", "5@4:6", "-crash", "5@7:9"}, path)
	if err := run(wrong, &bytes.Buffer{}); err == nil {
		t.Fatal("trace replayed under the wrong seed")
	}
}

func TestTracecheckRejectsBadInput(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	if err := run([]string{}, &buf); err == nil {
		t.Fatal("no file argument accepted")
	}
	garbage := filepath.Join(dir, "garbage.jsonl")
	if err := os.WriteFile(garbage, []byte("{\"ev\":\"nonsense\"}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{garbage}, &buf); err == nil {
		t.Fatal("unknown event type accepted")
	}
	empty := filepath.Join(dir, "empty.jsonl")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{empty}, &buf); err == nil {
		t.Fatal("empty trace accepted")
	}
}

// TestTracecheckWantChaos: a fault-free trace passes the audit but fails
// -want-chaos.
func TestTracecheckWantChaos(t *testing.T) {
	path := filepath.Join(t.TempDir(), "quiet.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	jsonl := shiftgears.NewTraceJSONL(f)
	l, err := shiftgears.NewReplicatedLog(shiftgears.LogConfig{
		Algorithm: shiftgears.Exponential, N: 4, T: 1,
		Slots: 4, Window: 2, BatchSize: 1, Tracer: jsonl,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Run(); err != nil {
		t.Fatal(err)
	}
	if err := jsonl.Close(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := run([]string{path}, &buf); err != nil {
		t.Fatalf("quiet trace failed the audit: %v", err)
	}
	if err := run([]string{"-want-chaos", path}, &buf); err == nil {
		t.Fatal("quiet trace passed -want-chaos")
	}
}
