// Command tracecheck audits a flight-recorder JSONL trace (what `logload
// -trace` or `logserver -trace` wrote): it validates every line parses,
// checks the structural invariants any trace must satisfy (ticks strictly
// increasing, commits in slot order per node, chaos events carrying their
// (tick, link, instance) keys), and prints a summary:
//
//	tracecheck run.jsonl
//	cat run.jsonl | tracecheck -
//
// Given the chaos plan the run used (the same flags logload takes), it
// replays every per-frame fault event through the plan's pure decision
// function and fails unless the trace matches decision for decision — the
// proof that a trace is a faithful record of the seeded schedule, not a
// narration of it:
//
//	logload -n 7 -t 2 -fabric mem -seed 1 -victims 5 -drop 0.3 -trace run.jsonl
//	tracecheck -n 7 -seed 1 -victims 5 -drop 0.3 run.jsonl
//
// -want-chaos additionally fails a trace with zero chaos events, which is
// how CI smokes the mem fabric's audit trail end to end.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"shiftgears"
	"shiftgears/internal/fabric"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tracecheck:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("tracecheck", flag.ContinueOnError)
	var (
		n         = fs.Int("n", 0, "replica count (enables chaos replay together with the plan flags)")
		seed      = fs.Int64("seed", 1, "chaos plan seed the traced run used")
		victims   = fs.String("victims", "", "chaos plan: comma-separated victim nodes")
		drop      = fs.Float64("drop", 0, "chaos plan: per-frame drop probability")
		late      = fs.Float64("late", 0, "chaos plan: per-frame late probability")
		delay     = fs.Float64("delay", 0, "chaos plan: per-frame delay probability")
		reorder   = fs.Bool("reorder", false, "chaos plan: within-tick reorder")
		partCS    = fs.String("partition", "", "chaos plan: partitions as ids@from:until, semicolon-separated")
		crashCS   = fs.String("crash", "", "chaos plan: crash windows as id@from:until, semicolon-separated")
		wantChaos = fs.Bool("want-chaos", false, "fail unless the trace records at least one chaos event")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("want exactly one trace file argument (or - for stdin)")
	}

	var r io.Reader = os.Stdin
	path := fs.Arg(0)
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer func() { _ = f.Close() }()
		r = f
	}
	events, err := shiftgears.ReadTrace(r)
	if err != nil {
		return err
	}
	if len(events) == 0 {
		return fmt.Errorf("%s: empty trace", path)
	}

	// Structural invariants every trace satisfies, plan or no plan.
	counts := map[shiftgears.TraceEventType]int{}
	lastTick := 0
	lastSlot := map[int]int{} // node -> last committed slot
	chaosEvents := 0
	for i, ev := range events {
		counts[ev.Type]++
		if ev.Tick < 1 {
			return fmt.Errorf("event %d: tick %d before the clock started: %+v", i, ev.Tick, ev)
		}
		if ev.Type.Chaos() {
			chaosEvents++
		}
		switch ev.Type {
		case shiftgears.TraceTickStart:
			if ev.Tick != lastTick+1 {
				return fmt.Errorf("event %d: tick %d follows tick %d — the clock must advance by one", i, ev.Tick, lastTick)
			}
			lastTick = ev.Tick
		case shiftgears.TraceSlotCommitted:
			if last, seen := lastSlot[ev.Node]; seen && ev.Slot != last+1 {
				return fmt.Errorf("event %d: node %d committed slot %d after slot %d — commits are in-order", i, ev.Node, ev.Slot, last)
			}
			lastSlot[ev.Node] = ev.Slot
		case shiftgears.TraceChaosDrop, shiftgears.TraceChaosLate,
			shiftgears.TraceChaosDelay, shiftgears.TraceChaosCut:
			if ev.From < 0 || ev.To < 0 || ev.Slot < 0 {
				return fmt.Errorf("event %d: chaos event missing its (link, instance) key: %+v", i, ev)
			}
		}
	}
	if *wantChaos && chaosEvents == 0 {
		return fmt.Errorf("%s: no chaos events recorded (-want-chaos)", path)
	}

	// With the plan in hand, replay every per-frame fault decision.
	replayed := 0
	if *n > 0 {
		plan, err := buildPlan(*seed, *victims, *drop, *late, *delay, *reorder, *partCS, *crashCS)
		if err != nil {
			return err
		}
		rep, err := fabric.NewReplayer(*n, *plan)
		if err != nil {
			return err
		}
		for i, ev := range events {
			switch ev.Type {
			case shiftgears.TraceChaosDrop, shiftgears.TraceChaosLate,
				shiftgears.TraceChaosDelay, shiftgears.TraceChaosCut:
				if got := rep.Decide(ev.Tick, ev.From, ev.To, ev.Slot); got != ev.Type {
					return fmt.Errorf("event %d does not replay: trace says %s, plan decides %s for tick %d link %d->%d instance %d",
						i, ev.Type, got, ev.Tick, ev.From, ev.To, ev.Slot)
				}
				replayed++
			}
		}
	}

	types := make([]shiftgears.TraceEventType, 0, len(counts))
	for t := range counts {
		types = append(types, t)
	}
	sort.Slice(types, func(i, j int) bool { return types[i] < types[j] })
	fmt.Fprintf(out, "tracecheck: %s: %d events over %d ticks OK\n", path, len(events), lastTick)
	for _, t := range types {
		fmt.Fprintf(out, "tracecheck:   %-16s %d\n", t, counts[t])
	}
	if replayed > 0 {
		fmt.Fprintf(out, "tracecheck: replayed %d chaos decisions against the plan, all match\n", replayed)
	}
	return nil
}

// buildPlan mirrors cmd/logload's chaos flags, so the flags that produced
// a trace are the flags that audit it.
func buildPlan(seed int64, victimsCS string, drop, late, delay float64, reorder bool, partCS, crashCS string) (*shiftgears.Chaos, error) {
	victims, err := parseIDs(victimsCS)
	if err != nil {
		return nil, fmt.Errorf("victims: %w", err)
	}
	plan := &shiftgears.Chaos{
		Seed: seed, Victims: victims,
		Drop: drop, Late: late, Delay: delay, Reorder: reorder,
	}
	for _, spec := range splitSpecs(partCS) {
		ids, from, until, err := parseWindowSpec(spec)
		if err != nil {
			return nil, fmt.Errorf("partition %q: %w", spec, err)
		}
		plan.Partitions = append(plan.Partitions, shiftgears.ChaosPartition{From: from, Until: until, Group: ids})
	}
	for _, spec := range splitSpecs(crashCS) {
		ids, from, until, err := parseWindowSpec(spec)
		if err != nil {
			return nil, fmt.Errorf("crash %q: %w", spec, err)
		}
		for _, id := range ids {
			plan.Crashes = append(plan.Crashes, shiftgears.ChaosCrash{Node: id, From: from, Until: until})
		}
	}
	return plan, nil
}

func splitSpecs(s string) []string {
	var out []string
	for _, field := range strings.Split(s, ";") {
		if field = strings.TrimSpace(field); field != "" {
			out = append(out, field)
		}
	}
	return out
}

// parseWindowSpec parses "ids@from:until" (e.g. "2,5@4:10").
func parseWindowSpec(spec string) (ids []int, from, until int, err error) {
	at := strings.SplitN(spec, "@", 2)
	if len(at) != 2 {
		return nil, 0, 0, fmt.Errorf("want ids@from:until")
	}
	ids, err = parseIDs(at[0])
	if err != nil || len(ids) == 0 {
		return nil, 0, 0, fmt.Errorf("bad ids %q", at[0])
	}
	var window [2]int
	ticks := strings.SplitN(at[1], ":", 2)
	if len(ticks) != 2 {
		return nil, 0, 0, fmt.Errorf("want ids@from:until")
	}
	for i, f := range ticks {
		window[i], err = strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, 0, 0, fmt.Errorf("tick %q: %w", f, err)
		}
	}
	return ids, window[0], window[1], nil
}

func parseIDs(s string) ([]int, error) {
	var ids []int
	for _, field := range strings.Split(s, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		id, err := strconv.Atoi(field)
		if err != nil {
			return nil, err
		}
		ids = append(ids, id)
	}
	return ids, nil
}
