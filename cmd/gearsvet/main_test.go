package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTool compiles gearsvet into a temp dir and returns its path —
// the vet protocol can only be exercised against a real executable
// (go vet fingerprints it with -V=full before every run).
func buildTool(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "gearsvet")
	cmd := exec.Command("go", "build", "-o", bin, "shiftgears/cmd/gearsvet")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("build gearsvet: %v\n%s", err, out)
	}
	return bin
}

// writeModule lays out a throwaway module named shiftgears (the
// analyzers scope by that module path) holding one policy package.
func writeModule(t *testing.T, policySrc string) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module shiftgears\n\ngo 1.24\n"), 0o666); err != nil {
		t.Fatal(err)
	}
	pkg := filepath.Join(dir, "internal", "policy")
	if err := os.MkdirAll(pkg, 0o777); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(pkg, "policy.go"), []byte(policySrc), 0o666); err != nil {
		t.Fatal(err)
	}
	return dir
}

func govet(t *testing.T, tool, dir string) (string, error) {
	t.Helper()
	cmd := exec.Command("go", "vet", "-vettool="+tool, "./...")
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	return string(out), err
}

const brokenPolicy = `package policy

import "time"

type LogEntry struct{ Slot int }

type WallClock struct{}

// Pick breaks the determinism contract: the schedule depends on when
// the replica computed it.
func (WallClock) Pick(slot, source int, prefix []LogEntry) int {
	return int(time.Now().Unix()) % 2
}
`

const cleanPolicy = `package policy

type LogEntry struct{ Slot int }

type Downshift struct{ Threshold int }

func (d Downshift) Pick(slot, source int, prefix []LogEntry) int {
	if len(prefix) >= d.Threshold {
		return 1
	}
	return 0
}
`

// TestVetToolFlagsBrokenPolicy is the acceptance fixture: go vet with
// the gearsvet vettool must fail a GearPolicy that calls time.Now.
func TestVetToolFlagsBrokenPolicy(t *testing.T) {
	tool := buildTool(t)
	out, err := govet(t, tool, writeModule(t, brokenPolicy))
	if err == nil {
		t.Fatalf("go vet passed a wall-clock policy; output:\n%s", out)
	}
	if !strings.Contains(out, "time.Now in the deterministic core") {
		t.Fatalf("missing gearsdeterminism diagnostic in vet output:\n%s", out)
	}
}

// TestVetToolPassesCleanPolicy pins the other direction: a pure policy
// package vets clean through the same protocol.
func TestVetToolPassesCleanPolicy(t *testing.T) {
	tool := buildTool(t)
	out, err := govet(t, tool, writeModule(t, cleanPolicy))
	if err != nil {
		t.Fatalf("go vet failed a pure policy: %v\n%s", err, out)
	}
}
