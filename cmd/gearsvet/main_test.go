package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTool compiles gearsvet into a temp dir and returns its path —
// the vet protocol can only be exercised against a real executable
// (go vet fingerprints it with -V=full before every run).
func buildTool(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "gearsvet")
	cmd := exec.Command("go", "build", "-o", bin, "shiftgears/cmd/gearsvet")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("build gearsvet: %v\n%s", err, out)
	}
	return bin
}

// writeModule lays out a throwaway module named shiftgears (the
// analyzers scope by that module path) holding one policy package.
func writeModule(t *testing.T, policySrc string) string {
	return writeModuleFiles(t, map[string]string{"internal/policy/policy.go": policySrc})
}

// writeModuleFiles lays out a throwaway shiftgears module from a
// relative-path → source map, so tests can build multi-package trees
// and exercise the cross-unit fact flow of a real vet run.
func writeModuleFiles(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module shiftgears\n\ngo 1.24\n"), 0o666); err != nil {
		t.Fatal(err)
	}
	for rel, src := range files {
		path := filepath.Join(dir, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func govet(t *testing.T, tool, dir string, extra ...string) (string, error) {
	t.Helper()
	args := append([]string{"vet", "-vettool=" + tool}, extra...)
	args = append(args, "./...")
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	return string(out), err
}

const brokenPolicy = `package policy

import "time"

type LogEntry struct{ Slot int }

type WallClock struct{}

// Pick breaks the determinism contract: the schedule depends on when
// the replica computed it.
func (WallClock) Pick(slot, source int, prefix []LogEntry) int {
	return int(time.Now().Unix()) % 2
}
`

const cleanPolicy = `package policy

type LogEntry struct{ Slot int }

type Downshift struct{ Threshold int }

func (d Downshift) Pick(slot, source int, prefix []LogEntry) int {
	if len(prefix) >= d.Threshold {
		return 1
	}
	return 0
}
`

// TestVetToolFlagsBrokenPolicy is the acceptance fixture: go vet with
// the gearsvet vettool must fail a GearPolicy that calls time.Now.
func TestVetToolFlagsBrokenPolicy(t *testing.T) {
	tool := buildTool(t)
	out, err := govet(t, tool, writeModule(t, brokenPolicy))
	if err == nil {
		t.Fatalf("go vet passed a wall-clock policy; output:\n%s", out)
	}
	if !strings.Contains(out, "time.Now in the deterministic core") {
		t.Fatalf("missing gearsdeterminism diagnostic in vet output:\n%s", out)
	}
}

// TestVetToolPassesCleanPolicy pins the other direction: a pure policy
// package vets clean through the same protocol.
func TestVetToolPassesCleanPolicy(t *testing.T) {
	tool := buildTool(t)
	out, err := govet(t, tool, writeModule(t, cleanPolicy))
	if err != nil {
		t.Fatalf("go vet failed a pure policy: %v\n%s", err, out)
	}
}

// TestVetToolCrossPackageArena is the inter-procedural acceptance
// fixture: the leak lives inside a helper in one package, the entry
// point in another, and the finding must surface at the entry point's
// call site — which only works if the helper's escape summary rode the
// vetx facts file between the two vet units.
func TestVetToolCrossPackageArena(t *testing.T) {
	tool := buildTool(t)
	dir := writeModuleFiles(t, map[string]string{
		"internal/sink/sink.go": `package sink

type Cache struct{ slots [][]byte }

// Store retains p beyond the call.
func (c *Cache) Store(p []byte) { c.slots = append(c.slots, p) }
`,
		"internal/entry/entry.go": `package entry

import "shiftgears/internal/sink"

type Entry struct{ c sink.Cache }

// Deliver hands the arena-backed payload to another package's sink.
func (e *Entry) Deliver(p []byte) {
	e.c.Store(p)
}
`,
	})
	out, err := govet(t, tool, dir)
	if err == nil {
		t.Fatalf("go vet passed a cross-package payload leak; output:\n%s", out)
	}
	if !strings.Contains(out, "passed to (sink.Cache).Store") {
		t.Fatalf("missing call-site arenalifetime diagnostic in vet output:\n%s", out)
	}
	if !strings.Contains(out, "entry.go") || strings.Contains(out, "sink.go:") {
		t.Fatalf("finding should anchor at the entry call site, not the sink:\n%s", out)
	}
}

// TestVetToolFlagsFabricDeadlock pins the fabricconc acceptance shape:
// an unguarded per-tick loop send toward a channel nobody receives —
// the writer-pool deadlock — must fail the vet run.
func TestVetToolFlagsFabricDeadlock(t *testing.T) {
	tool := buildTool(t)
	dir := writeModuleFiles(t, map[string]string{
		"internal/transport/pool.go": `package transport

type Pool struct{ stop chan struct{} }

// Exchange dispatches the tick with no select guard and no receiver.
func (p *Pool) Exchange(ticks []int) {
	for range ticks {
		p.stop <- struct{}{}
	}
}
`,
	})
	out, err := govet(t, tool, dir)
	if err == nil {
		t.Fatalf("go vet passed an unguarded loop send; output:\n%s", out)
	}
	if !strings.Contains(out, "unguarded channel send inside a loop") {
		t.Fatalf("missing fabricconc diagnostic in vet output:\n%s", out)
	}
}

// TestVetToolJSON pins the -json contract: one JSON object per line,
// suppressed findings included with their allow state and reason, and
// the exit code still reflecting only reported findings.
func TestVetToolJSON(t *testing.T) {
	tool := buildTool(t)
	dir := writeModule(t, `package policy

import "time"

// Reported: a bare wall-clock read.
func Bad() int64 { return time.Now().Unix() }

// Suppressed: the same read behind a reasoned allow.
func Logged() int64 {
	return time.Now().Unix() //gearsvet:allow metrics label only, never feeds a frame
}
`)
	out, err := govet(t, tool, dir, "-json")
	if err == nil {
		t.Fatalf("go vet -json passed a module with a reported finding; output:\n%s", out)
	}
	var reported, suppressed bool
	for _, line := range strings.Split(out, "\n") {
		line = strings.TrimSpace(line)
		if !strings.HasPrefix(line, "{") {
			continue
		}
		var f struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Analyzer string `json:"analyzer"`
			Message  string `json:"message"`
			Allow    string `json:"allow"`
			Reason   string `json:"reason"`
		}
		if jerr := json.Unmarshal([]byte(line), &f); jerr != nil {
			t.Fatalf("non-JSON finding line %q: %v", line, jerr)
		}
		if f.Analyzer != "gearsdeterminism" || !strings.HasSuffix(f.File, "policy.go") || f.Line == 0 {
			t.Fatalf("malformed finding: %+v", f)
		}
		switch f.Allow {
		case "reported":
			reported = true
		case "suppressed":
			suppressed = true
			if !strings.Contains(f.Reason, "metrics label") {
				t.Fatalf("suppressed finding lost its allow reason: %+v", f)
			}
		}
	}
	if !reported || !suppressed {
		t.Fatalf("want both a reported and a suppressed JSON finding, got reported=%v suppressed=%v in:\n%s", reported, suppressed, out)
	}
}
