// Command gearsvet is the repo's vet tool: a suite of analyzers that
// mechanically enforce three documented contracts — determinism in the
// gear-shifting core (gearsdeterminism), the wire hot path's one-tick
// payload lifetime (arenalifetime), and the flight recorder's
// zero-overhead / zero-alloc rule (zeroalloc).
//
// Run it through the standard vet driver:
//
//	go build -o /tmp/gearsvet ./cmd/gearsvet
//	go vet -vettool=/tmp/gearsvet ./...
//
// Findings are suppressed per line with //gearsvet:allow <reason>; a
// bare directive (no reason) is itself an error. See
// internal/analysis for the framework and each analyzer's package doc
// for the contract it enforces.
package main

import (
	"shiftgears/internal/analysis"
	"shiftgears/internal/analysis/arenalifetime"
	"shiftgears/internal/analysis/gearsdeterminism"
	"shiftgears/internal/analysis/zeroalloc"
)

func main() {
	analysis.Main(
		gearsdeterminism.Analyzer,
		arenalifetime.Analyzer,
		zeroalloc.Analyzer,
	)
}
