// Command gearsvet is the repo's vet tool: a suite of analyzers that
// mechanically enforce four documented contracts — determinism in the
// gear-shifting core (gearsdeterminism), the wire hot path's one-tick
// payload lifetime (arenalifetime), the flight recorder's
// zero-overhead / zero-alloc rule (zeroalloc), and the fabric layer's
// concurrency contract (fabricconc).
//
// Run it through the standard vet driver:
//
//	go build -o /tmp/gearsvet ./cmd/gearsvet
//	go vet -vettool=/tmp/gearsvet ./...
//
// The suite is inter-procedural: each unit exports per-function
// escape summaries (and other facts) into its vetx file, and
// importing units consult them — a payload that leaks inside a helper
// three packages away is flagged at the entry point's call site. Pass
// -json to emit one JSON object per finding (suppressed ones
// included, with their allow reasons) on stdout instead of text on
// stderr; the exit code is unchanged.
//
// Findings are suppressed per statement with //gearsvet:allow
// <reason>; a bare directive (no reason) is itself an error. See
// internal/analysis for the framework and each analyzer's package doc
// for the contract it enforces.
package main

import (
	"shiftgears/internal/analysis"
	"shiftgears/internal/analysis/arenalifetime"
	"shiftgears/internal/analysis/fabricconc"
	"shiftgears/internal/analysis/gearsdeterminism"
	"shiftgears/internal/analysis/zeroalloc"
)

func main() {
	analysis.Main(
		gearsdeterminism.Analyzer,
		arenalifetime.Analyzer,
		zeroalloc.Analyzer,
		fabricconc.Analyzer,
	)
}
