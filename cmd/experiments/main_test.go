package main

import (
	"strings"
	"testing"
)

func TestExperimentsList(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"E1", "E5", "E12", "F3"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("list missing %s:\n%s", want, out.String())
		}
	}
}

func TestExperimentsSingleID(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-id", "F2"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "### F2") {
		t.Errorf("F2 output wrong:\n%s", out.String())
	}
}

func TestExperimentsUnknownID(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-id", "E99"}, &out); err == nil {
		t.Error("unknown id accepted")
	}
}
