// Command experiments regenerates the paper-reproduction tables recorded in
// EXPERIMENTS.md: every theorem bound (E1–E5), the Coan/PSL/Phase-Queen
// comparisons (E6, E7, E9), the fault-detection dynamics (E8), the
// discovery/masking ablation (E10), and the paper's figures (F1–F3).
//
// Usage:
//
//	experiments            # run everything, print markdown
//	experiments -id E5     # one experiment
//	experiments -list      # list ids
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"shiftgears/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		id   = fs.String("id", "", "run a single experiment (E1..E10, F1..F3)")
		list = fs.Bool("list", false, "list experiment ids and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Fprintf(out, "%-4s %s\n", e.ID, e.Title)
		}
		return nil
	}

	if *id != "" {
		tab, err := experiments.RunByID(*id)
		if err != nil {
			return err
		}
		fmt.Fprint(out, tab.Markdown())
		return nil
	}

	for _, e := range experiments.All() {
		start := time.Now()
		tab, err := e.Run()
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		fmt.Fprint(out, tab.Markdown())
		fmt.Fprintf(out, "*(generated in %v)*\n\n", time.Since(start).Round(time.Millisecond))
	}
	return nil
}
