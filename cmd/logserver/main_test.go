package main

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"shiftgears/internal/obs"
)

// reservePorts grabs n ephemeral loopback ports and releases them, so the
// logserver processes (goroutines here) can re-bind them moments later.
func reservePorts(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	listeners := make([]net.Listener, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range listeners {
		_ = ln.Close()
	}
	return addrs
}

func TestLogServerEndToEnd(t *testing.T) {
	const n = 4
	addrs := reservePorts(t, n)
	list := strings.Join(addrs, ",")

	cmds := []string{"11,12,13", "21", "", ""}
	var wg sync.WaitGroup
	outs := make([]strings.Builder, n)
	errs := make([]error, n)
	for id := 0; id < n; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			args := []string{
				"-id", fmt.Sprint(id), "-n", "4", "-t", "1",
				"-slots", "8", "-window", "2", "-batch", "2",
				"-addrs", list, "-cmds", cmds[id],
			}
			if id == 3 {
				args = append(args, "-byzantine", "splitbrain")
			}
			errs[id] = run(args, &outs[id])
		}(id)
	}
	wg.Wait()
	for id, err := range errs {
		if err != nil {
			t.Fatalf("replica %d: %v\n%s", id, err, outs[id].String())
		}
	}

	// Correct replicas print identical snapshots carrying every command a
	// correct replica proposed.
	var snapshot string
	for id := 0; id < 3; id++ {
		out := outs[id].String()
		i := strings.Index(out, "snapshot")
		if i < 0 {
			t.Fatalf("replica %d printed no snapshot:\n%s", id, out)
		}
		if snapshot == "" {
			snapshot = out[i:]
			continue
		}
		if out[i:] != snapshot {
			t.Fatalf("replica %d snapshot %q diverges from %q", id, out[i:], snapshot)
		}
	}
	for _, cmd := range []string{"11", "12", "13", "21"} {
		if !strings.Contains(snapshot, cmd) {
			t.Errorf("snapshot %q misses command %s", snapshot, cmd)
		}
	}
	if !strings.Contains(outs[3].String(), "BYZANTINE (splitbrain)") {
		t.Error("byzantine banner missing")
	}
}

// TestLogServerDebugSurface: a replica started with -debug serves live
// metrics while the mesh runs, and -trace leaves a parseable JSONL
// flight record covering the whole schedule.
func TestLogServerDebugSurface(t *testing.T) {
	const n, slots = 4, 8
	addrs := reservePorts(t, n)
	debugAddr := reservePorts(t, 1)[0]
	tracePath := filepath.Join(t.TempDir(), "rep0.jsonl")
	list := strings.Join(addrs, ",")

	cmds := []string{"11,12,13", "21", "", ""}
	var wg sync.WaitGroup
	outs := make([]strings.Builder, n)
	errs := make([]error, n)
	for id := 0; id < n; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			args := []string{
				"-id", fmt.Sprint(id), "-n", "4", "-t", "1",
				"-slots", fmt.Sprint(slots), "-window", "2", "-batch", "2",
				"-addrs", list, "-cmds", cmds[id],
			}
			if id == 0 {
				args = append(args, "-debug", debugAddr, "-linger", "2s", "-trace", tracePath)
			}
			errs[id] = run(args, &outs[id])
		}(id)
	}

	// Scrape the surface while replica 0 is up (run + linger window).
	deadline := time.Now().Add(10 * time.Second)
	var metricsBody string
	for time.Now().Before(deadline) {
		resp, err := http.Get("http://" + debugAddr + "/metrics")
		if err == nil {
			b, _ := io.ReadAll(resp.Body)
			_ = resp.Body.Close()
			metricsBody = string(b)
			if strings.Contains(metricsBody, fmt.Sprintf("shiftgears_commits_total %d", slots)) {
				break
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !strings.Contains(metricsBody, fmt.Sprintf("shiftgears_commits_total %d", slots)) {
		t.Fatalf("/metrics never showed %d commits:\n%s", slots, metricsBody)
	}
	if !strings.Contains(metricsBody, "shiftgears_commit_latency_ticks_count") {
		t.Errorf("/metrics missing the latency histogram:\n%s", metricsBody)
	}
	resp, err := http.Get("http://" + debugAddr + "/debug/gears")
	if err != nil {
		t.Fatal(err)
	}
	gears, _ := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if !strings.Contains(string(gears), "gear exponential") {
		t.Errorf("/debug/gears missing the gear schedule:\n%s", gears)
	}

	wg.Wait()
	for id, err := range errs {
		if err != nil {
			t.Fatalf("replica %d: %v\n%s", id, err, outs[id].String())
		}
	}
	if !strings.Contains(outs[0].String(), "commit latency") {
		t.Errorf("replica 0 printed no latency summary:\n%s", outs[0].String())
	}

	f, err := os.Open(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = f.Close() }()
	events, err := obs.ReadJSONL(f)
	if err != nil {
		t.Fatal(err)
	}
	commits, ticks := 0, 0
	for _, ev := range events {
		switch ev.Type {
		case obs.SlotCommitted:
			commits++
		case obs.TickStart:
			ticks++
		}
	}
	if commits != slots || ticks == 0 {
		t.Fatalf("trace has %d commits over %d ticks, want %d commits over >0 ticks (%d events)", commits, ticks, slots, len(events))
	}
}

func TestLogServerValidation(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-alg", "bogus", "-addrs", "a,b,c,d"}, &out); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if err := run([]string{"-n", "4", "-addrs", "a,b"}, &out); err == nil {
		t.Error("addrs/n mismatch accepted")
	}
	if err := run([]string{"-addrs", "a,b,c,d", "-cmds", "300"}, &out); err == nil {
		t.Error("out-of-range command accepted")
	}
	if err := run([]string{"-addrs", "a,b,c,d", "-cmds", "0"}, &out); err == nil {
		t.Error("no-op command accepted")
	}
	if err := run([]string{"-addrs", "a,b,c,d", "-byzantine", "bogus"}, &out); err == nil {
		t.Error("unknown strategy accepted")
	}
}
