// Command logserver runs ONE replica of a replicated log over a real TCP
// mesh — one OS process (or machine) per replica. Every replica must be
// started with the same -n, -t, -b, -alg, -slots, -window, -batch, and
// -addrs list; replica i listens on addrs[i]. Slot s is sourced by
// replica s mod n, which batches the commands passed via -cmds.
//
// A 4-replica log on one host (4 terminals):
//
//	ADDRS=127.0.0.1:9000,127.0.0.1:9001,127.0.0.1:9002,127.0.0.1:9003
//	logserver -id 0 -n 4 -t 1 -slots 8 -window 2 -batch 2 -addrs $ADDRS -cmds 11,12,13
//	logserver -id 1 -n 4 -t 1 -slots 8 -window 2 -batch 2 -addrs $ADDRS -cmds 21
//	logserver -id 2 -n 4 -t 1 -slots 8 -window 2 -batch 2 -addrs $ADDRS
//	logserver -id 3 -n 4 -t 1 -slots 8 -window 2 -batch 2 -addrs $ADDRS -byzantine splitbrain
//
// Each process prints its committed log; correct replicas print identical
// logs, slot by slot.
//
// -debug serves the live observability surface while the replica runs —
// /metrics (Prometheus text), /debug/vars (expvar), /debug/pprof,
// /debug/gears (gear schedule + chaos history), /debug/trace (retained
// events) — and -linger keeps it up after the run so the final state can
// be scraped. -trace streams the same events to a JSONL file:
//
//	logserver -id 0 ... -debug 127.0.0.1:8080 -linger 1m -trace rep0.jsonl
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"shiftgears"
	"shiftgears/internal/fabric"
	"shiftgears/internal/obs"
	"shiftgears/internal/rsm"
	"shiftgears/internal/sim"
	"shiftgears/internal/transport"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "logserver:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("logserver", flag.ContinueOnError)
	var (
		id        = fs.Int("id", 0, "this replica's id")
		shard     = fs.Int("shard", -1, "this replica's shard id in a sharded deployment: tags traced events and the debug surface (-1 = unsharded)")
		n         = fs.Int("n", 4, "total replicas")
		t         = fs.Int("t", 1, "resilience")
		b         = fs.Int("b", 3, "block parameter (A/B/hybrid)")
		algName   = fs.String("alg", "exponential", "per-slot algorithm: exponential | A | B | C | hybrid | psl | phasequeen | multivalued")
		slots     = fs.Int("slots", 8, "log length in slots")
		window    = fs.Int("window", 2, "pipelining depth (concurrent slots)")
		batch     = fs.Int("batch", 2, "commands per slot")
		addrsCS   = fs.String("addrs", "", "comma-separated listen addresses, index = id")
		cmdsCS    = fs.String("cmds", "", "comma-separated command bytes (1..255) this replica proposes")
		byzantine = fs.String("byzantine", "", "run THIS replica Byzantine with the given strategy")
		seed      = fs.Int64("seed", 1, "adversary seed")
		retry     = fs.Duration("retry", 10*time.Second, "how long to retry dialing peers at startup")
		debug     = fs.String("debug", "", "serve the live debug surface (/metrics, /debug/...) on this address")
		linger    = fs.Duration("linger", 0, "keep the debug surface up this long after the run")
		tracePth  = fs.String("trace", "", "write the flight-recorder trace to this JSONL file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	alg, err := shiftgears.ParseAlgorithm(*algName)
	if err != nil {
		return err
	}
	addrs := strings.Split(*addrsCS, ",")
	if len(addrs) != *n {
		return fmt.Errorf("%d addresses for n=%d", len(addrs), *n)
	}

	// The flight recorder: ring + counting sinks back the -debug surface,
	// the JSONL sink streams to disk; all of it is off (nil tracer, zero
	// overhead) unless asked for.
	var (
		sinks   []obs.Tracer
		ring    *obs.Ring
		metrics *obs.Metrics
	)
	if *debug != "" {
		ring = obs.NewRing(0)
		metrics = obs.NewMetrics()
		sinks = append(sinks, ring, metrics)
	}
	if *tracePth != "" {
		f, err := os.Create(*tracePth)
		if err != nil {
			return err
		}
		jsonl := obs.NewJSONL(f) // owns f; Close flushes and closes it
		defer func() { _ = jsonl.Close() }()
		sinks = append(sinks, jsonl)
	}
	tracer := obs.Tee(sinks...)
	if *shard >= 0 {
		// One mesh per shard: each process of a sharded deployment stamps
		// its shard id so fleet-wide trace/metric collection can keep the
		// K streams apart.
		tracer = obs.WithShard(tracer, *shard)
	}

	// Slots with the same source share one compiled protocol.
	protos := make(map[int]rsm.Protocol)
	cfg := rsm.Config{
		N: *n, Slots: *slots, Window: *window, BatchSize: *batch,
		Tracer: tracer,
		Protocol: func(slot, source int) (rsm.Protocol, error) {
			if p, ok := protos[source]; ok {
				return p, nil
			}
			p, err := shiftgears.SlotProtocol(alg, *n, *t, *b, source)
			if err != nil {
				return nil, err
			}
			protos[source] = p
			return p, nil
		},
	}

	var opts []rsm.ReplicaOption
	if *byzantine != "" {
		opts = append(opts, rsm.WithByzantine(*byzantine, *seed))
		fmt.Fprintf(out, "replica %d: BYZANTINE (%s)\n", *id, *byzantine)
	}
	rep, err := rsm.NewReplica(cfg, *id, opts...)
	if err != nil {
		return err
	}
	for _, field := range strings.Split(*cmdsCS, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		v, err := strconv.ParseUint(field, 10, 8)
		if err != nil {
			return fmt.Errorf("command %q: %w", field, err)
		}
		if err := rep.Submit(rsm.Value(v)); err != nil {
			return err
		}
	}

	if *debug != "" {
		ln, err := net.Listen("tcp", *debug)
		if err != nil {
			return err
		}
		defer func() { _ = ln.Close() }()
		handler := obs.NewHandler(obs.DebugState{
			Metrics: metrics, Ring: ring, Latency: rep.Latency(),
			Info: func() map[string]any {
				info := map[string]any{
					"replica": *id, "n": *n, "t": *t, "alg": alg.String(),
					"slots": *slots, "window": *window, "batch": *batch,
					"fabric": "tcp", "addr": addrs[*id],
				}
				if *shard >= 0 {
					info["shard"] = *shard
				}
				return info
			},
		})
		go func() { _ = http.Serve(ln, handler) }()
		fmt.Fprintf(out, "replica %d: debug surface on http://%s/\n", *id, ln.Addr())
	}

	node, err := transport.ListenNode(*id, *n, addrs[*id], transport.WithDialRetry(*retry))
	if err != nil {
		return err
	}
	defer func() { _ = node.Close() }()
	fmt.Fprintf(out, "replica %d: listening on %s, connecting mesh...\n", *id, addrs[*id])
	if err := node.Connect(addrs); err != nil {
		return err
	}
	fmt.Fprintf(out, "replica %d: mesh up, running %d slots (%s, window %d, batch %d)\n",
		*id, *slots, alg, *window, *batch)

	// This process is one node of the mesh: the fabric runtime drives the
	// replica's schedule over it, exactly the loop every other fabric runs.
	mesh := transport.JoinMesh(node)
	defer func() { _ = mesh.Close() }()
	runOpts := []fabric.Option{fabric.WithMaxTicks(rep.TotalTicks())}
	if tracer != nil {
		runOpts = append(runOpts, fabric.WithTracer(tracer))
	}
	stats, err := fabric.Run(mesh, []*sim.Mux{rep.Mux()}, runOpts...)
	if err != nil {
		// Seal the replica so any Committed consumers unblock with the
		// log cut short, then surface the mesh error.
		rep.Abort(err)
		return err
	}
	rep.Abort(nil)
	if err := rep.Err(); err != nil {
		return err
	}
	for _, e := range rep.Entries() {
		fmt.Fprintf(out, "replica %d: slot %d (source %d) committed %v\n", *id, e.Slot, e.Source, e.Commands)
	}
	fmt.Fprintf(out, "replica %d: COMMITTED %d commands in %d slots over %d ticks (snapshot %v)\n",
		*id, len(rep.Snapshot()), *slots, stats.Rounds, rep.Snapshot())
	// Latency is per-replica (each samples the commands it sourced), so
	// only print it when observability was asked for — the default output
	// stays identical across correct replicas, snapshot line last.
	if *debug != "" || *tracePth != "" {
		if s := rep.Latency().Summarize(); s.Count > 0 {
			fmt.Fprintf(out, "replica %d: commit latency %s\n", *id, s)
		}
	}
	if *debug != "" && *linger > 0 {
		fmt.Fprintf(out, "replica %d: lingering %v for the debug surface\n", *id, *linger)
		time.Sleep(*linger)
	}
	return nil
}
