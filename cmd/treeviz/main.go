// Command treeviz renders an Information Gathering Tree in the style of the
// paper's Figure 1, built from a real execution of the Exponential
// Algorithm's gathering phase.
//
// Usage:
//
//	treeviz -n 5 -t 2                 # fault-free tree
//	treeviz -n 5 -t 2 -liar 3         # processor 3 relays zeros
//	treeviz -n 7 -t 2 -max 3 -values  # truncate fan-out, show stored values
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"shiftgears/internal/eigtree"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "treeviz:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("treeviz", flag.ContinueOnError)
	var (
		n      = fs.Int("n", 5, "number of processors")
		t      = fs.Int("t", 2, "tree height (gathering rounds after round 1)")
		liar   = fs.Int("liar", -1, "processor that relays zeros instead of the truth")
		maxKid = fs.Int("max", 0, "truncate rendering to this many children per node (0 = all)")
		values = fs.Bool("values", true, "show stored values")
		repeat = fs.Bool("repeat", false, "use Algorithm C's tree with repetitions")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	enum, err := eigtree.NewEnum(*n, 0, *repeat, *t)
	if err != nil {
		return err
	}
	tree := eigtree.NewTree(enum)
	tree.SetRoot(1)

	// Simulate the gathering rounds: every processor truthfully relays its
	// previous level, except the designated liar, which relays zeros.
	for h := 1; h <= *t; h++ {
		if _, err := tree.AddLevel(); err != nil {
			return err
		}
		prev := enum.Size(h - 1)
		truth := make([]eigtree.Value, prev)
		lies := make([]eigtree.Value, prev)
		for i := range truth {
			truth[i] = 1
		}
		for q := 0; q < *n; q++ {
			if q == 0 {
				continue // the source halts after round 1
			}
			claim := truth
			if q == *liar {
				claim = lies
			}
			if err := tree.StoreFrom(q, claim); err != nil {
				return err
			}
		}
	}

	fmt.Fprintf(out, "Information Gathering Tree after %d rounds (n=%d", *t+1, *n)
	if *liar >= 0 {
		fmt.Fprintf(out, ", p%d lies", *liar)
	}
	fmt.Fprintln(out, "):")
	fmt.Fprintln(out)
	fmt.Fprint(out, tree.Render(eigtree.RenderOptions{
		MaxChildren: *maxKid,
		ShowValues:  *values,
	}))

	res, err := tree.Resolve(eigtree.ResolveMajority, *t)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "\nresolve(s) = %d   (recursive majority over %d stored nodes)\n",
		res.Root().Value(), tree.NodeCount())
	return nil
}
