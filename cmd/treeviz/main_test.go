package main

import (
	"strings"
	"testing"
)

func TestTreevizDefault(t *testing.T) {
	var out strings.Builder
	if err := run(nil, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"Information Gathering Tree after 3 rounds", "the source said", "resolve(s) = 1"} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q in:\n%s", want, s)
		}
	}
}

func TestTreevizLiarAndTruncation(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-n", "7", "-t", "2", "-liar", "3", "-max", "2"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "p3 lies") || !strings.Contains(s, "more children") {
		t.Errorf("missing liar/truncation markers:\n%s", s)
	}
	if !strings.Contains(s, "resolve(s) = 1") {
		t.Errorf("one liar must not change the resolution:\n%s", s)
	}
}

func TestTreevizRepeatMode(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-n", "5", "-t", "2", "-repeat"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "the source said") {
		t.Error("repeat-mode render failed")
	}
}

func TestTreevizErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-n", "300"}, &out); err == nil {
		t.Error("n out of range accepted")
	}
	if err := run([]string{"-n", "5", "-t", "9"}, &out); err == nil {
		t.Error("tree deeper than n−1 accepted without repeat")
	}
}
