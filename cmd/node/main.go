// Command node runs ONE processor of a Byzantine agreement instance over a
// real TCP mesh — one OS process (or machine) per processor. Every node of
// the instance must be started with the same -n, -t, -b, -alg, and -addrs
// list; node i listens on addrs[i].
//
// A 4-node Exponential instance on one host (4 terminals):
//
//	ADDRS=127.0.0.1:9000,127.0.0.1:9001,127.0.0.1:9002,127.0.0.1:9003
//	node -id 0 -n 4 -t 1 -alg exponential -addrs $ADDRS -value 1   # the source
//	node -id 1 -n 4 -t 1 -alg exponential -addrs $ADDRS
//	node -id 2 -n 4 -t 1 -alg exponential -addrs $ADDRS
//	node -id 3 -n 4 -t 1 -alg exponential -addrs $ADDRS -byzantine splitbrain
//
// Each process prints its decision; correct nodes agree, and if node 0 is
// correct they decide its value.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"shiftgears"
	"shiftgears/internal/adversary"
	"shiftgears/internal/core"
	"shiftgears/internal/sim"
	"shiftgears/internal/trace"
	"shiftgears/internal/transport"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "node:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("node", flag.ContinueOnError)
	var (
		id        = fs.Int("id", 0, "this node's processor id")
		n         = fs.Int("n", 4, "total processors")
		t         = fs.Int("t", 1, "resilience")
		b         = fs.Int("b", 3, "block parameter (A/B/hybrid)")
		algName   = fs.String("alg", "exponential", "exponential | A | B | C | hybrid")
		source    = fs.Int("source", 0, "source processor id")
		value     = fs.Int("value", 1, "initial value (used by the source)")
		addrsCS   = fs.String("addrs", "", "comma-separated listen addresses, index = id")
		byzantine = fs.String("byzantine", "", "run THIS node Byzantine with the given strategy")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	alg, err := shiftgears.ParseAlgorithm(*algName)
	if err != nil {
		return err
	}
	var coreAlg core.Algorithm
	switch alg {
	case shiftgears.Exponential:
		coreAlg = core.Exponential
	case shiftgears.AlgorithmA:
		coreAlg = core.AlgorithmA
	case shiftgears.AlgorithmB:
		coreAlg = core.AlgorithmB
	case shiftgears.AlgorithmC:
		coreAlg = core.AlgorithmC
	case shiftgears.Hybrid:
		coreAlg = core.Hybrid
	default:
		return fmt.Errorf("algorithm %v is not supported over the mesh (use the paper's algorithms)", alg)
	}

	addrs := strings.Split(*addrsCS, ",")
	if len(addrs) != *n {
		return fmt.Errorf("%d addresses for n=%d", len(addrs), *n)
	}

	plan, err := core.NewPlan(coreAlg, *n, *t, *b, *source)
	if err != nil {
		return err
	}
	env, err := core.NewEnv(plan)
	if err != nil {
		return err
	}
	log := trace.NewLog(*id)
	rep, err := core.NewReplica(env, *id, shiftgears.Value(*value), log)
	if err != nil {
		return err
	}

	var proc sim.Processor = rep
	if *byzantine != "" {
		strat, err := adversary.New(*byzantine, plan.TotalRounds)
		if err != nil {
			return err
		}
		proc = adversary.NewProcessor(rep, strat, int64(*id), *n)
		fmt.Fprintf(out, "node %d: BYZANTINE (%s)\n", *id, *byzantine)
	}

	node, err := transport.Listen(proc, *n, addrs[*id])
	if err != nil {
		return err
	}
	defer func() { _ = node.Close() }()
	fmt.Fprintf(out, "node %d: listening on %s, connecting mesh...\n", *id, addrs[*id])
	if err := node.Connect(addrs); err != nil {
		return err
	}
	fmt.Fprintf(out, "node %d: mesh up, running %v for %d rounds\n", *id, coreAlg, plan.TotalRounds)

	stats, err := node.Run(plan.TotalRounds)
	if err != nil {
		return err
	}
	if err := rep.Err(); err != nil {
		return err
	}
	v, ok := rep.Decided()
	if !ok {
		return fmt.Errorf("node %d did not decide", *id)
	}
	fmt.Fprintf(out, "node %d: DECIDED %d  (rounds=%d, max message %dB, discovered faults %v)\n",
		*id, v, stats.Rounds, stats.MaxPayload, rep.Faults().Members())
	return nil
}
