package main

import (
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
)

// reservePorts grabs n ephemeral loopback ports and releases them, so the
// node processes (goroutines here) can re-bind them moments later.
func reservePorts(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	listeners := make([]net.Listener, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range listeners {
		_ = ln.Close()
	}
	return addrs
}

func TestNodeEndToEnd(t *testing.T) {
	const n = 4
	addrs := reservePorts(t, n)
	list := strings.Join(addrs, ",")

	var wg sync.WaitGroup
	outs := make([]strings.Builder, n)
	errs := make([]error, n)
	for id := 0; id < n; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			args := []string{
				"-id", fmt.Sprint(id), "-n", "4", "-t", "1",
				"-alg", "exponential", "-addrs", list, "-value", "7",
			}
			if id == 3 {
				args = append(args, "-byzantine", "splitbrain")
			}
			errs[id] = run(args, &outs[id])
		}(id)
	}
	wg.Wait()
	for id, err := range errs {
		if err != nil {
			t.Fatalf("node %d: %v\n%s", id, err, outs[id].String())
		}
	}
	for id := 0; id < 3; id++ { // the correct nodes
		if !strings.Contains(outs[id].String(), "DECIDED 7") {
			t.Errorf("node %d did not decide 7:\n%s", id, outs[id].String())
		}
	}
	if !strings.Contains(outs[3].String(), "BYZANTINE (splitbrain)") {
		t.Error("byzantine banner missing")
	}
}

func TestNodeValidation(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-alg", "psl", "-addrs", "a,b,c,d"}, &out); err == nil {
		t.Error("non-mesh algorithm accepted")
	}
	if err := run([]string{"-alg", "exponential", "-n", "4", "-addrs", "a,b"}, &out); err == nil {
		t.Error("addrs/n mismatch accepted")
	}
	if err := run([]string{"-alg", "bogus"}, &out); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if err := run([]string{"-alg", "exponential", "-n", "5", "-t", "2",
		"-addrs", "a,b,c,d,e"}, &out); err == nil {
		t.Error("bad resilience accepted")
	}
}
