package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"shiftgears"
)

func TestLogLoadSim(t *testing.T) {
	var out strings.Builder
	err := run([]string{
		"-n", "7", "-t", "2", "-cmds", "28", "-window", "4", "-batch", "2",
		"-faulty", "2,5",
	}, &out)
	if err != nil {
		t.Fatalf("%v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "commands/tick") {
		t.Fatalf("no throughput report:\n%s", out.String())
	}
	// 28 commands over 7 replicas: the 20 received by correct replicas
	// must commit; the Byzantine receivers' may not.
	if !strings.Contains(out.String(), "speedup") {
		t.Fatalf("no speedup report:\n%s", out.String())
	}
}

func TestLogLoadTCP(t *testing.T) {
	var out strings.Builder
	err := run([]string{
		"-n", "4", "-t", "1", "-cmds", "8", "-window", "2", "-batch", "2", "-tcp",
	}, &out)
	if err != nil {
		t.Fatalf("%v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "tcp") {
		t.Fatalf("tcp mode not reported:\n%s", out.String())
	}
}

func TestLogLoadValidation(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-alg", "bogus"}, &out); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if err := run([]string{"-cmds", "0"}, &out); err == nil {
		t.Error("zero commands accepted")
	}
	if err := run([]string{"-faulty", "x"}, &out); err == nil {
		t.Error("malformed faulty list accepted")
	}
	if err := run([]string{"-faulty", "9"}, &out); err == nil {
		t.Error("out-of-range faulty id accepted")
	}
}

func TestLogLoadMemFabric(t *testing.T) {
	var out strings.Builder
	err := run([]string{
		"-n", "7", "-t", "2", "-cmds", "28", "-window", "4", "-batch", "2",
		"-fabric", "mem", "-seed", "1", "-victims", "5", "-drop", "0.3",
		"-partition", "5@4:10",
	}, &out)
	if err != nil {
		t.Fatalf("%v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "mem") {
		t.Fatalf("mem mode not reported:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "chaos victims [5]") {
		t.Fatalf("chaos victims not reported:\n%s", out.String())
	}
}

// TestLogLoadTrace: -trace leaves a parseable JSONL flight record whose
// chaos events are nonzero under a lossy plan, and the latency summary
// line is printed.
func TestLogLoadTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	var out strings.Builder
	err := run([]string{
		"-n", "7", "-t", "2", "-cmds", "28", "-window", "4", "-batch", "2",
		// The victim must not be the silent Byzantine replica — silence
		// leaves no outbound frames to drop, hence no chaos events.
		"-fabric", "mem", "-seed", "1", "-victims", "4", "-drop", "0.3",
		"-faulty", "5", "-strategy", "silent",
		"-trace", path,
	}, &out)
	if err != nil {
		t.Fatalf("%v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "commit latency") {
		t.Fatalf("no latency summary:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "chaos events") {
		t.Fatalf("no trace summary:\n%s", out.String())
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = f.Close() }()
	events, err := shiftgears.ReadTrace(f)
	if err != nil {
		t.Fatal(err)
	}
	chaos := 0
	for _, ev := range events {
		if ev.Type.Chaos() {
			chaos++
		}
	}
	if chaos == 0 {
		t.Fatalf("lossy plan left no chaos events in %d-event trace", len(events))
	}
}

func TestLogLoadChaosFlagValidation(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-drop", "0.5"}, &out); err == nil {
		t.Error("chaos flags without -fabric mem accepted")
	}
	if err := run([]string{"-fabric", "mem", "-partition", "5@4"}, &out); err == nil {
		t.Error("malformed partition spec accepted")
	}
	if err := run([]string{"-fabric", "mem", "-crash", "x@1:2"}, &out); err == nil {
		t.Error("malformed crash spec accepted")
	}
	if err := run([]string{"-fabric", "bogus"}, &out); err == nil {
		t.Error("unknown fabric accepted")
	}
}

func TestLogLoadTCPFabricConflict(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-tcp", "-fabric", "mem"}, &out); err == nil {
		t.Error("-tcp with -fabric mem accepted")
	}
}
