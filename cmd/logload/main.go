// Command logload is the replicated log's load generator: it synthesizes
// a stream of client commands, spreads them round-robin over the
// replicas, runs the full pipeline (in-process, or over a loopback TCP
// mesh with -tcp), and reports throughput — committed commands per
// synchronous tick and per wall-clock second — so the effect of -window
// and -batch is directly measurable:
//
//	logload -n 7 -t 2 -cmds 96 -window 1 -batch 1    # sequential single-shot
//	logload -n 7 -t 2 -cmds 96 -window 4 -batch 4    # pipelined + batched
//
// With -gears the log shifts algorithms on the fly: each slot's protocol
// is picked when the slot enters the pipeline window, from what the
// committed prefix has revealed about the adversary:
//
//	logload -n 13 -t 3 -alg hybrid -gears downshift -faulty 2 -strategy silent
//	logload -n 13 -t 3 -alg hybrid -gears blacklist -faulty 2,5,8 -strategy silent
//
// -fabric selects the substrate (sim, mem, tcp). The mem fabric runs the
// same drive loop over a deterministic chaos network — seeded drops on
// victim links, partitions that heal, crash windows — so adverse
// schedules are reproducible load tests:
//
//	logload -n 7 -t 2 -fabric mem -seed 1 -victims 5 -drop 0.3 -partition 5@4:10
//
// -trace streams the run's flight-recorder events (ticks, gear
// decisions, commits, per-link traffic, every seeded fault) to a JSONL
// file that cmd/tracecheck can audit:
//
//	logload -fabric mem -victims 5 -drop 0.3 -trace run.jsonl
//
// -shards K partitions the command space across K independent agreement
// groups (each its own fabric instance, -n/-window/-batch sized) behind
// a deterministic router and drives them concurrently; aggregate
// commands/tick scales with K. Chaos flags apply per shard, reseeded to
// seed+shard; traced events carry a shard id:
//
//	logload -shards 4 -n 7 -t 2 -cmds 768 -window 8 -batch 4
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"shiftgears"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "logload:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("logload", flag.ContinueOnError)
	var (
		n        = fs.Int("n", 7, "replicas")
		t        = fs.Int("t", 2, "resilience")
		b        = fs.Int("b", 3, "block parameter (A/B/hybrid)")
		algName  = fs.String("alg", "exponential", "per-slot algorithm")
		gears    = fs.String("gears", "", "gear policy (blacklist, downshift): pick each slot's algorithm on the fly; -alg is the base/high gear")
		cmds     = fs.Int("cmds", 96, "commands to submit")
		shards   = fs.Int("shards", 0, "shard the log across this many independent agreement groups (0 = unsharded; -n, -window, -batch are then per shard)")
		window   = fs.Int("window", 4, "pipelining depth")
		batch    = fs.Int("batch", 4, "commands per slot")
		faultyCS = fs.String("faulty", "", "comma-separated Byzantine replica ids")
		strategy = fs.String("strategy", "splitbrain", "adversary strategy")
		seed     = fs.Int64("seed", 1, "adversary seed")
		parallel = fs.Bool("parallel", false, "goroutine-per-replica drive loop")
		workers  = fs.Int("workers", 0, "per-replica slot worker pool (0 = sequential)")
		fabricCS = fs.String("fabric", "sim", "fabric to run over: sim | mem | tcp")
		tcp      = fs.Bool("tcp", false, "shorthand for -fabric tcp")
		victims  = fs.String("victims", "", "mem fabric: comma-separated nodes whose outbound links lose frames")
		drop     = fs.Float64("drop", 0, "mem fabric: per-frame drop probability on victim links")
		late     = fs.Float64("late", 0, "mem fabric: per-frame probability a victim frame misses the synchrony bound")
		delay    = fs.Float64("delay", 0, "mem fabric: per-frame within-bound delay probability (must be invisible)")
		reorder  = fs.Bool("reorder", false, "mem fabric: shuffle within-tick delivery order (must be invisible)")
		partCS   = fs.String("partition", "", "mem fabric: partitions as ids@from:until (e.g. 2,5@4:10), comma-free ranges, semicolon-separated")
		crashCS  = fs.String("crash", "", "mem fabric: crash windows as id@from:until, semicolon-separated")
		tracePth = fs.String("trace", "", "write the flight-recorder trace to this JSONL file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	alg, err := shiftgears.ParseAlgorithm(*algName)
	if err != nil {
		return err
	}
	if alg == shiftgears.NoOpSlot {
		return fmt.Errorf("noop is a policy-assigned gear, not a base algorithm (it would discard every command)")
	}
	if *cmds < 1 {
		return fmt.Errorf("need at least 1 command")
	}
	if *shards < 0 {
		return fmt.Errorf("-shards %d: want 0 (unsharded) or a positive shard count", *shards)
	}
	faulty, err := parseIDs(*faultyCS)
	if err != nil {
		return fmt.Errorf("faulty ids %q: %w", *faultyCS, err)
	}

	// Round-robin distribution: the busiest replica gets ⌈cmds/n⌉
	// commands and needs ⌈that/batch⌉ sourced slots; sources rotate, so
	// the log length is n times that.
	perReplica := (*cmds + *n - 1) / *n
	slotsPerSource := (perReplica + *batch - 1) / *batch
	slots := *n * slotsPerSource

	fabricName := *fabricCS
	if *tcp {
		if fabricName != "sim" && fabricName != "tcp" {
			return fmt.Errorf("-tcp conflicts with -fabric %s", fabricName)
		}
		fabricName = "tcp"
	}
	lcfg := shiftgears.LogConfig{
		Algorithm: alg,
		N:         *n, T: *t, B: *b,
		Slots: slots, Window: *window, BatchSize: *batch, Workers: *workers,
		Faulty: faulty, Strategy: *strategy, Seed: *seed,
		Parallel: *parallel, Fabric: fabricName,
	}
	if fabricName == "mem" {
		chaos, err := parseChaos(*seed, *victims, *drop, *late, *delay, *reorder, *partCS, *crashCS)
		if err != nil {
			return err
		}
		lcfg.Chaos = chaos
	} else if *victims != "" || *drop != 0 || *late != 0 || *delay != 0 || *reorder || *partCS != "" || *crashCS != "" {
		return fmt.Errorf("chaos flags need -fabric mem")
	}
	if *gears != "" {
		policy, err := shiftgears.ParseGearPolicy(*gears)
		if err != nil {
			return err
		}
		// -alg is the gear the log starts in; the policy picks the rest.
		lcfg.GearPolicy = shiftgears.GearPolicyWithBase(policy, alg)
	}
	// -trace installs the flight recorder: a JSONL sink on the file, plus
	// a counting sink so the summary line below has totals.
	var (
		traceJSONL   *shiftgears.TraceJSONL
		traceMetrics *shiftgears.TraceMetrics
	)
	if *tracePth != "" {
		traceFile, err := os.Create(*tracePth)
		if err != nil {
			return err
		}
		// The JSONL sink owns the file: its Close closes the writer too.
		traceJSONL = shiftgears.NewTraceJSONL(traceFile)
		defer func() { _ = traceJSONL.Close() }()
		traceMetrics = shiftgears.NewTraceMetrics()
		lcfg.Tracer = shiftgears.TraceTee(traceJSONL, traceMetrics)
	}
	if *shards > 0 {
		return runSharded(out, *shards, lcfg, alg, *gears, *cmds, traceJSONL, traceMetrics, *tracePth)
	}
	log, err := shiftgears.NewReplicatedLog(lcfg)
	if err != nil {
		return err
	}
	for i := 0; i < *cmds; i++ {
		if err := log.Submit(i%*n, shiftgears.Value(1+i%255)); err != nil {
			return err
		}
	}

	mode := fabricName
	algDesc := alg.String()
	if *gears != "" {
		algDesc = fmt.Sprintf("%s gears from %s", *gears, alg)
	}
	fmt.Fprintf(out, "logload: %d commands over %d replicas (%s, %s), %d slots, window %d, batch %d\n",
		*cmds, *n, algDesc, mode, slots, *window, *batch)

	start := time.Now()
	res, err := log.Run()
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	if !res.Agreement {
		return fmt.Errorf("correct replicas committed diverging logs")
	}

	perTick := float64(res.Committed) / float64(res.Ticks)
	perSec := float64(res.Committed) / elapsed.Seconds()
	speedup := float64(res.SequentialTicks) / float64(res.Ticks)
	fmt.Fprintf(out, "logload: committed %d commands in %d ticks (sequential bound %d, speedup %.2fx)\n",
		res.Committed, res.Ticks, res.SequentialTicks, speedup)
	fmt.Fprintf(out, "logload: %.2f commands/tick, %.0f commands/sec, %d msgs, %d bytes, max frame %dB, wall %v\n",
		perTick, perSec, res.Messages, res.TotalBytes, res.MaxMessageBytes, elapsed.Round(time.Millisecond))
	if res.Latency.Count > 0 {
		fmt.Fprintf(out, "logload: commit latency %s\n", res.Latency)
	}
	if traceJSONL != nil {
		if err := traceJSONL.Close(); err != nil {
			return fmt.Errorf("trace %s: %w", *tracePth, err)
		}
		var chaosEvents uint64
		for _, c := range traceMetrics.ChaosCounts() {
			chaosEvents += c
		}
		fmt.Fprintf(out, "logload: trace %s: %d commits, %d gear decisions, %d chaos events over %d ticks\n",
			*tracePth, traceMetrics.Commits(), traceMetrics.CountOf(shiftgears.TraceGearResolved), chaosEvents, traceMetrics.Ticks())
	}
	if *gears != "" {
		fmt.Fprintf(out, "logload: gear schedule %s\n", shiftgears.GearRuns(res.Gears))
	}
	if len(res.ChaosVictims) > 0 {
		fmt.Fprintf(out, "logload: chaos victims %v excluded from the agreement check (their links were faulted)\n", res.ChaosVictims)
	}
	if res.Pending > 0 {
		fmt.Fprintf(out, "logload: WARNING: %d commands never got a slot (log too short, or a gear policy no-op'd their slots)\n", res.Pending)
	}
	return nil
}

// runSharded drives the sharded multi-log: the same open-loop command
// stream, pre-routed (the router is a pure function of the command, so
// sizing and submission agree) to size each shard's log exactly, with
// receivers rotating independently within each shard. Every shard gets
// its own fabric instance; with -fabric mem, shard s runs the chaos
// template reseeded to seed+s, so shards draw distinct but reproducible
// fault schedules from one flag set.
func runSharded(out io.Writer, k int, lcfg shiftgears.LogConfig, alg shiftgears.Algorithm, gears string, cmds int,
	traceJSONL *shiftgears.TraceJSONL, traceMetrics *shiftgears.TraceMetrics, tracePth string) error {
	n, batch := lcfg.N, lcfg.BatchSize
	routerSeed := uint64(lcfg.Seed)
	counts := make([]int, k)
	for i := 0; i < cmds; i++ {
		counts[shiftgears.ShardOf(routerSeed, k, shiftgears.Value(1+i%255))]++
	}
	slots := make([]int, k)
	total := 0
	for s, cnt := range counts {
		if cnt == 0 {
			cnt = 1 // a log needs ≥ 1 slot even if the router starved the shard
		}
		perReplica := (cnt + n - 1) / n
		slots[s] = n * ((perReplica + batch - 1) / batch)
		total += slots[s]
	}
	ml, err := shiftgears.NewMultiLog(shiftgears.MultiLogConfig{
		Shards: k,
		Log:    lcfg,
		PerShard: func(s int, cfg *shiftgears.LogConfig) {
			cfg.Slots = slots[s]
			if cfg.Chaos != nil {
				plan := *cfg.Chaos
				plan.Seed += int64(s)
				cfg.Chaos = &plan
			}
		},
	})
	if err != nil {
		return err
	}
	recv := make([]int, k)
	for i := 0; i < cmds; i++ {
		cmd := shiftgears.Value(1 + i%255)
		s, err := ml.ShardOf(cmd)
		if err != nil {
			return err
		}
		if err := ml.Submit(recv[s]%n, cmd); err != nil {
			return err
		}
		recv[s]++
	}

	algDesc := alg.String()
	if gears != "" {
		algDesc = fmt.Sprintf("%s gears from %s", gears, alg)
	}
	fmt.Fprintf(out, "logload: %d commands over %d shards × %d replicas (%s, %s), %d slots total, window %d, batch %d\n",
		cmds, k, n, algDesc, lcfg.Fabric, total, lcfg.Window, batch)

	start := time.Now()
	res, err := ml.Run()
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	if !res.Agreement {
		return fmt.Errorf("correct replicas committed diverging logs")
	}

	perSec := float64(res.Committed) / elapsed.Seconds()
	fmt.Fprintf(out, "logload: committed %d commands in %d ticks, %.2f commands/tick aggregate, %.0f commands/sec, wall %v\n",
		res.Committed, res.Ticks, res.CmdsPerTick(), perSec, elapsed.Round(time.Millisecond))
	fmt.Fprintf(out, "logload: %d msgs, %d bytes, max frame %dB\n", res.Messages, res.TotalBytes, res.MaxMessageBytes)
	if res.Latency.Count > 0 {
		fmt.Fprintf(out, "logload: commit latency %s\n", res.Latency)
	}
	for s, sr := range res.Shards {
		line := fmt.Sprintf("logload: shard %d: %d commands, %d ticks, %.2f cmds/tick", s, sr.Committed, sr.Ticks,
			float64(sr.Committed)/float64(sr.Ticks))
		if gears != "" {
			line += fmt.Sprintf(", gears %s", shiftgears.GearRuns(sr.Gears))
		}
		if len(sr.ChaosVictims) > 0 {
			line += fmt.Sprintf(", chaos victims %v excluded from the agreement check", sr.ChaosVictims)
		}
		fmt.Fprintln(out, line)
	}
	if traceJSONL != nil {
		if err := traceJSONL.Close(); err != nil {
			return fmt.Errorf("trace %s: %w", tracePth, err)
		}
		var chaosEvents uint64
		for _, c := range traceMetrics.ChaosCounts() {
			chaosEvents += c
		}
		fmt.Fprintf(out, "logload: trace %s: %d commits, %d gear decisions, %d chaos events over %d ticks across %d shards\n",
			tracePth, traceMetrics.Commits(), traceMetrics.CountOf(shiftgears.TraceGearResolved), chaosEvents,
			traceMetrics.Ticks(), len(traceMetrics.Shards()))
	}
	if res.Pending > 0 {
		fmt.Fprintf(out, "logload: WARNING: %d commands never got a slot (log too short, or a gear policy no-op'd their slots)\n", res.Pending)
	}
	return nil
}

// parseChaos assembles the mem fabric's fault plan from the chaos flags.
func parseChaos(seed int64, victimsCS string, drop, late, delay float64, reorder bool, partCS, crashCS string) (*shiftgears.Chaos, error) {
	victims, err := parseIDs(victimsCS)
	if err != nil {
		return nil, fmt.Errorf("victims: %w", err)
	}
	chaos := &shiftgears.Chaos{
		Seed: seed, Victims: victims,
		Drop: drop, Late: late, Delay: delay, Reorder: reorder,
	}
	for _, spec := range splitSpecs(partCS) {
		ids, from, until, err := parseWindowSpec(spec)
		if err != nil {
			return nil, fmt.Errorf("partition %q: %w", spec, err)
		}
		chaos.Partitions = append(chaos.Partitions, shiftgears.ChaosPartition{From: from, Until: until, Group: ids})
	}
	for _, spec := range splitSpecs(crashCS) {
		ids, from, until, err := parseWindowSpec(spec)
		if err != nil {
			return nil, fmt.Errorf("crash %q: %w", spec, err)
		}
		for _, id := range ids {
			chaos.Crashes = append(chaos.Crashes, shiftgears.ChaosCrash{Node: id, From: from, Until: until})
		}
	}
	return chaos, nil
}

func splitSpecs(s string) []string {
	var out []string
	for _, field := range strings.Split(s, ";") {
		if field = strings.TrimSpace(field); field != "" {
			out = append(out, field)
		}
	}
	return out
}

// parseWindowSpec parses "ids@from:until" (e.g. "2,5@4:10").
func parseWindowSpec(spec string) (ids []int, from, until int, err error) {
	at := strings.SplitN(spec, "@", 2)
	if len(at) != 2 {
		return nil, 0, 0, fmt.Errorf("want ids@from:until")
	}
	ids, err = parseIDs(at[0])
	if err != nil || len(ids) == 0 {
		return nil, 0, 0, fmt.Errorf("bad ids %q", at[0])
	}
	var window [2]int
	ticks := strings.SplitN(at[1], ":", 2)
	if len(ticks) != 2 {
		return nil, 0, 0, fmt.Errorf("want ids@from:until")
	}
	for i, f := range ticks {
		window[i], err = strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, 0, 0, fmt.Errorf("tick %q: %w", f, err)
		}
	}
	return ids, window[0], window[1], nil
}

func parseIDs(s string) ([]int, error) {
	var ids []int
	for _, field := range strings.Split(s, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		id, err := strconv.Atoi(field)
		if err != nil {
			return nil, err
		}
		ids = append(ids, id)
	}
	return ids, nil
}
