// Command logload is the replicated log's load generator: it synthesizes
// a stream of client commands, spreads them round-robin over the
// replicas, runs the full pipeline (in-process, or over a loopback TCP
// mesh with -tcp), and reports throughput — committed commands per
// synchronous tick and per wall-clock second — so the effect of -window
// and -batch is directly measurable:
//
//	logload -n 7 -t 2 -cmds 96 -window 1 -batch 1    # sequential single-shot
//	logload -n 7 -t 2 -cmds 96 -window 4 -batch 4    # pipelined + batched
//
// With -gears the log shifts algorithms on the fly: each slot's protocol
// is picked when the slot enters the pipeline window, from what the
// committed prefix has revealed about the adversary:
//
//	logload -n 13 -t 3 -alg hybrid -gears downshift -faulty 2 -strategy silent
//	logload -n 13 -t 3 -alg hybrid -gears blacklist -faulty 2,5,8 -strategy silent
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"shiftgears"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "logload:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("logload", flag.ContinueOnError)
	var (
		n        = fs.Int("n", 7, "replicas")
		t        = fs.Int("t", 2, "resilience")
		b        = fs.Int("b", 3, "block parameter (A/B/hybrid)")
		algName  = fs.String("alg", "exponential", "per-slot algorithm")
		gears    = fs.String("gears", "", "gear policy (blacklist, downshift): pick each slot's algorithm on the fly; -alg is the base/high gear")
		cmds     = fs.Int("cmds", 96, "commands to submit")
		window   = fs.Int("window", 4, "pipelining depth")
		batch    = fs.Int("batch", 4, "commands per slot")
		faultyCS = fs.String("faulty", "", "comma-separated Byzantine replica ids")
		strategy = fs.String("strategy", "splitbrain", "adversary strategy")
		seed     = fs.Int64("seed", 1, "adversary seed")
		parallel = fs.Bool("parallel", false, "goroutine-per-processor sim engine")
		workers  = fs.Int("workers", 0, "per-replica slot worker pool (0 = sequential)")
		tcp      = fs.Bool("tcp", false, "run over a loopback TCP mesh")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	alg, err := shiftgears.ParseAlgorithm(*algName)
	if err != nil {
		return err
	}
	if alg == shiftgears.NoOpSlot {
		return fmt.Errorf("noop is a policy-assigned gear, not a base algorithm (it would discard every command)")
	}
	if *cmds < 1 {
		return fmt.Errorf("need at least 1 command")
	}
	var faulty []int
	for _, field := range strings.Split(*faultyCS, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		id, err := strconv.Atoi(field)
		if err != nil {
			return fmt.Errorf("faulty id %q: %w", field, err)
		}
		faulty = append(faulty, id)
	}

	// Round-robin distribution: the busiest replica gets ⌈cmds/n⌉
	// commands and needs ⌈that/batch⌉ sourced slots; sources rotate, so
	// the log length is n times that.
	perReplica := (*cmds + *n - 1) / *n
	slotsPerSource := (perReplica + *batch - 1) / *batch
	slots := *n * slotsPerSource

	lcfg := shiftgears.LogConfig{
		Algorithm: alg,
		N:         *n, T: *t, B: *b,
		Slots: slots, Window: *window, BatchSize: *batch, Workers: *workers,
		Faulty: faulty, Strategy: *strategy, Seed: *seed,
		Parallel: *parallel, TCP: *tcp,
	}
	if *gears != "" {
		policy, err := shiftgears.ParseGearPolicy(*gears)
		if err != nil {
			return err
		}
		// -alg is the gear the log starts in; the policy picks the rest.
		lcfg.GearPolicy = shiftgears.GearPolicyWithBase(policy, alg)
	}
	log, err := shiftgears.NewReplicatedLog(lcfg)
	if err != nil {
		return err
	}
	for i := 0; i < *cmds; i++ {
		if err := log.Submit(i%*n, shiftgears.Value(1+i%255)); err != nil {
			return err
		}
	}

	mode := "sim"
	if *tcp {
		mode = "tcp"
	}
	algDesc := alg.String()
	if *gears != "" {
		algDesc = fmt.Sprintf("%s gears from %s", *gears, alg)
	}
	fmt.Fprintf(out, "logload: %d commands over %d replicas (%s, %s), %d slots, window %d, batch %d\n",
		*cmds, *n, algDesc, mode, slots, *window, *batch)

	start := time.Now()
	res, err := log.Run()
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	if !res.Agreement {
		return fmt.Errorf("correct replicas committed diverging logs")
	}

	perTick := float64(res.Committed) / float64(res.Ticks)
	perSec := float64(res.Committed) / elapsed.Seconds()
	speedup := float64(res.SequentialTicks) / float64(res.Ticks)
	fmt.Fprintf(out, "logload: committed %d commands in %d ticks (sequential bound %d, speedup %.2fx)\n",
		res.Committed, res.Ticks, res.SequentialTicks, speedup)
	fmt.Fprintf(out, "logload: %.2f commands/tick, %.0f commands/sec, %d msgs, %d bytes, max frame %dB, wall %v\n",
		perTick, perSec, res.Messages, res.TotalBytes, res.MaxMessageBytes, elapsed.Round(time.Millisecond))
	if *gears != "" {
		fmt.Fprintf(out, "logload: gear schedule %s\n", shiftgears.GearRuns(res.Gears))
	}
	if res.Pending > 0 {
		fmt.Fprintf(out, "logload: WARNING: %d commands never got a slot (log too short, or a gear policy no-op'd their slots)\n", res.Pending)
	}
	return nil
}
