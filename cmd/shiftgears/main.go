// Command shiftgears runs one Byzantine agreement instance and reports the
// outcome: decisions, agreement/validity, rounds against the paper bound,
// message sizes, and the fault-discovery timeline.
//
// Examples:
//
//	shiftgears -alg hybrid -n 13 -t 4 -b 3 -value 1 -faulty 0,2,5,9 -strategy splitbrain
//	shiftgears -alg C -n 18 -t 3 -value 1 -faulty 4,7 -strategy noise -events
//	shiftgears -alg B -n 21 -t 5 -b 2 -value 1
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"shiftgears"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "shiftgears:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("shiftgears", flag.ContinueOnError)
	var (
		algName  = fs.String("alg", "hybrid", "algorithm: exponential | A | B | C | hybrid | psl | phasequeen | multivalued")
		n        = fs.Int("n", 13, "number of processors")
		t        = fs.Int("t", 4, "resilience (max faults tolerated)")
		b        = fs.Int("b", 3, "block parameter for A/B/hybrid")
		source   = fs.Int("source", 0, "source processor id")
		value    = fs.Int("value", 1, "source's initial value (0-255)")
		faultyCS = fs.String("faulty", "", "comma-separated faulty processor ids (may include the source)")
		strategy = fs.String("strategy", "splitbrain", "adversary strategy for faulty processors")
		seed     = fs.Int64("seed", 0, "adversary randomness seed")
		parallel = fs.Bool("parallel", false, "use the goroutine-per-processor engine")
		events   = fs.Bool("events", false, "print the full protocol event timeline")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	alg, err := shiftgears.ParseAlgorithm(*algName)
	if err != nil {
		return err
	}
	var faulty []int
	if *faultyCS != "" {
		for _, part := range strings.Split(*faultyCS, ",") {
			id, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				return fmt.Errorf("bad faulty id %q: %w", part, err)
			}
			faulty = append(faulty, id)
		}
	}

	res, err := shiftgears.Run(shiftgears.Config{
		Algorithm:     alg,
		N:             *n,
		T:             *t,
		B:             *b,
		Source:        *source,
		SourceValue:   shiftgears.Value(*value),
		Faulty:        faulty,
		Strategy:      *strategy,
		Seed:          *seed,
		Parallel:      *parallel,
		CollectEvents: *events,
	})
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "algorithm      %v  (n=%d, t=%d", res.Algorithm, res.N, res.T)
	if res.B > 0 {
		fmt.Fprintf(out, ", b=%d", res.B)
	}
	fmt.Fprintln(out, ")")
	fmt.Fprintf(out, "rounds         %d  (paper bound %d)\n", res.Rounds, res.PaperRoundBound)
	fmt.Fprintf(out, "agreement      %v\n", res.Agreement)
	fmt.Fprintf(out, "validity       %v\n", res.Validity)
	if res.Agreement {
		fmt.Fprintf(out, "decision       %d\n", res.DecisionValue)
	}
	fmt.Fprintf(out, "max message    %d bytes\n", res.MaxMessageBytes)
	fmt.Fprintf(out, "total traffic  %d messages, %d bytes\n", res.Messages, res.TotalBytes)
	fmt.Fprintf(out, "local work     %d resolve ops, %d discovery reads, peak tree %d nodes\n",
		res.ResolveOps, res.DiscoveryReads, res.PeakTreeNodes)

	if len(res.GlobalDetections) > 0 {
		ids := make([]int, 0, len(res.GlobalDetections))
		for id := range res.GlobalDetections {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		fmt.Fprint(out, "globally detected faults:")
		for _, id := range ids {
			fmt.Fprintf(out, "  p%d@r%d", id, res.GlobalDetections[id])
		}
		fmt.Fprintln(out)
	}

	fmt.Fprintln(out, "\nper-processor decisions:")
	for _, pr := range res.Processors {
		role := "correct"
		if !pr.Correct {
			role = "FAULTY "
		}
		if pr.ID == *source {
			role += " (source)"
		}
		decision := "-"
		if pr.Decided {
			decision = strconv.Itoa(int(pr.Decision))
		}
		fmt.Fprintf(out, "  p%-3d %-18s decision=%s", pr.ID, role, decision)
		if len(pr.Discovered) > 0 {
			fmt.Fprintf(out, "  L=%v", pr.Discovered)
		}
		fmt.Fprintln(out)
	}

	if *events {
		fmt.Fprintln(out, "\nevent timeline:")
		for _, ev := range res.Events {
			fmt.Fprintf(out, "  round %2d  p%-3d %-9s target=%d %s\n", ev.Round, ev.PID, ev.Kind, ev.Target, ev.Note)
		}
	}
	return nil
}
