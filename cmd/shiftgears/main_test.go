package main

import (
	"strings"
	"testing"
)

func TestRunCLIBasic(t *testing.T) {
	var out strings.Builder
	err := run([]string{
		"-alg", "hybrid", "-n", "13", "-t", "4", "-b", "3",
		"-value", "1", "-faulty", "0,2,5,9", "-strategy", "splitbrain",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"algorithm      hybrid", "agreement      true", "validity       true",
		"rounds         10", "globally detected faults", "per-processor decisions",
		"FAULTY  (source)",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunCLIEvents(t *testing.T) {
	var out strings.Builder
	err := run([]string{
		"-alg", "B", "-n", "13", "-t", "3", "-b", "2", "-value", "1",
		"-faulty", "1", "-strategy", "noise", "-events",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "event timeline:") {
		t.Errorf("missing timeline:\n%s", out.String())
	}
}

func TestRunCLIErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-alg", "bogus"}, &out); err == nil {
		t.Error("bad algorithm accepted")
	}
	if err := run([]string{"-alg", "B", "-n", "12", "-t", "3", "-b", "2"}, &out); err == nil {
		t.Error("bad resilience accepted")
	}
	if err := run([]string{"-faulty", "x,y"}, &out); err == nil {
		t.Error("unparsable faulty list accepted")
	}
	if err := run([]string{"-badflag"}, &out); err == nil {
		t.Error("unknown flag accepted")
	}
}
