package shiftgears_test

import (
	"bytes"
	"reflect"
	"testing"

	"shiftgears"
	"shiftgears/internal/fabric"
)

// traceTestConfig is one static log under faults the tracer must record
// without perturbing: two Byzantine replicas, and (on the mem fabric) a
// chaos plan exercising every fault class against the same two nodes.
func traceTestConfig(fabricName string) shiftgears.LogConfig {
	cfg := shiftgears.LogConfig{
		Algorithm: shiftgears.Exponential,
		N:         7, T: 2,
		Slots: 8, Window: 2, BatchSize: 2,
		Faulty: []int{2, 5}, Strategy: "silent", Seed: 11,
		Fabric: fabricName,
	}
	if fabricName == "mem" {
		cfg.Chaos = &shiftgears.Chaos{
			Seed:    41,
			Victims: []int{2},
			Drop:    0.3, Late: 0.2, Delay: 0.5,
			Reorder:    true,
			Partitions: []shiftgears.ChaosPartition{{From: 3, Until: 5, Group: []int{2, 5}}},
			Crashes:    []shiftgears.ChaosCrash{{Node: 5, From: 2, Until: 4}},
		}
	}
	return cfg
}

func runTraced(t *testing.T, cfg shiftgears.LogConfig) *shiftgears.LogResult {
	t.Helper()
	l, err := shiftgears.NewReplicatedLog(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 16; c++ {
		if err := l.Submit(c%cfg.N, shiftgears.Value(1+c%255)); err != nil {
			t.Fatal(err)
		}
	}
	res, err := l.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Agreement {
		t.Fatalf("correct replicas diverged on fabric %q", cfg.Fabric)
	}
	return res
}

// TestPropertyTracerZeroInterference is the zero-overhead contract's
// correctness half, end to end: on every fabric, running with the full
// sink stack installed (ring + metrics + JSONL through a Tee) produces a
// byte-identical committed log, gear schedule, tick count, traffic
// totals, and latency summary to the untraced run — and the trace the
// sinks captured is internally consistent.
func TestPropertyTracerZeroInterference(t *testing.T) {
	for _, fabricName := range []string{"sim", "mem", "tcp"} {
		t.Run(fabricName, func(t *testing.T) {
			plain := runTraced(t, traceTestConfig(fabricName))

			ring := shiftgears.NewTraceRing(1 << 18)
			metrics := shiftgears.NewTraceMetrics()
			var buf bytes.Buffer
			jsonl := shiftgears.NewTraceJSONL(&buf)
			cfg := traceTestConfig(fabricName)
			cfg.Tracer = shiftgears.TraceTee(ring, metrics, jsonl)
			traced := runTraced(t, cfg)
			if err := jsonl.Close(); err != nil {
				t.Fatal(err)
			}

			if !reflect.DeepEqual(traced.Entries, plain.Entries) {
				t.Fatal("tracer changed the committed log")
			}
			if got, want := shiftgears.GearRuns(traced.Gears), shiftgears.GearRuns(plain.Gears); got != want {
				t.Fatalf("tracer changed the gear schedule: %s vs %s", got, want)
			}
			if traced.Ticks != plain.Ticks || traced.TotalBytes != plain.TotalBytes || traced.Messages != plain.Messages {
				t.Fatalf("tracer changed traffic: ticks %d/%d bytes %d/%d msgs %d/%d",
					traced.Ticks, plain.Ticks, traced.TotalBytes, plain.TotalBytes, traced.Messages, plain.Messages)
			}
			if traced.Latency != plain.Latency {
				t.Fatalf("tracer changed latency: %v vs %v", traced.Latency, plain.Latency)
			}

			// All three sinks saw the same stream: the JSONL round-trips to
			// exactly the ring's contents, and the counting sink agrees with
			// the run's own results.
			events, err := shiftgears.ReadTrace(&buf)
			if err != nil {
				t.Fatal(err)
			}
			if ring.Total() != uint64(len(events)) || !reflect.DeepEqual(ring.Events(), events) {
				t.Fatalf("JSONL (%d events) and ring (%d) diverge", len(events), ring.Total())
			}
			if metrics.Ticks() != traced.Ticks {
				t.Fatalf("metrics saw %d ticks, run took %d", metrics.Ticks(), traced.Ticks)
			}
			if want := uint64(cfg.N * cfg.Slots); metrics.Commits() != want {
				t.Fatalf("metrics saw %d commits, want %d (%d replicas × %d slots)", metrics.Commits(), want, cfg.N, cfg.Slots)
			}

			if fabricName != "mem" {
				return
			}
			// On the mem fabric the trace must be a faithful record of the
			// seeded chaos schedule: every per-frame fault event replays to
			// the same decision through the plan's pure decision function.
			rep, err := fabric.NewReplayer(cfg.N, *cfg.Chaos)
			if err != nil {
				t.Fatal(err)
			}
			chaosFrames := 0
			for _, ev := range events {
				switch ev.Type {
				case shiftgears.TraceChaosDrop, shiftgears.TraceChaosLate,
					shiftgears.TraceChaosDelay, shiftgears.TraceChaosCut:
					chaosFrames++
					if got := rep.Decide(ev.Tick, ev.From, ev.To, ev.Slot); got != ev.Type {
						t.Fatalf("chaos event %+v does not replay: Decide = %v", ev, got)
					}
				}
			}
			if chaosFrames == 0 {
				t.Fatal("mem trace recorded no chaos frame events under a lossy plan")
			}
		})
	}
}
