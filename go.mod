module shiftgears

go 1.24
