package shiftgears_test

// One benchmark per experiment table/figure of DESIGN.md. Each bench runs
// the workload that regenerates its table's headline row and reports the
// paper's observables (rounds, message bytes, local ops) as custom metrics,
// so `go test -bench=. -benchmem` reproduces the evaluation's shape.

import (
	"fmt"
	"testing"

	"shiftgears"
	"shiftgears/internal/baseline"
	"shiftgears/internal/core"
	"shiftgears/internal/experiments"
)

// runBench executes one configuration b.N times and reports paper metrics.
func runBench(b *testing.B, cfg shiftgears.Config) {
	b.Helper()
	var last *shiftgears.Result
	for i := 0; i < b.N; i++ {
		res, err := shiftgears.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Agreement || !res.Validity {
			b.Fatalf("agreement=%v validity=%v", res.Agreement, res.Validity)
		}
		last = res
	}
	b.ReportMetric(float64(last.Rounds), "rounds")
	b.ReportMetric(float64(last.MaxMessageBytes), "maxMsgB")
	b.ReportMetric(float64(last.ResolveOps+last.DiscoveryReads), "localOps")
}

// BenchmarkE1Exponential — Proposition 1: t+1 rounds, exponential messages.
func BenchmarkE1Exponential(b *testing.B) {
	runBench(b, shiftgears.Config{
		Algorithm: shiftgears.Exponential, N: 13, T: 4, SourceValue: 1,
		Faulty: []int{0, 2, 5, 9}, Strategy: "splitbrain",
	})
}

// BenchmarkE2AlgorithmB — Theorem 3: t+1+⌊(t−1)/(b−1)⌋ rounds, O(n^b) bits.
func BenchmarkE2AlgorithmB(b *testing.B) {
	runBench(b, shiftgears.Config{
		Algorithm: shiftgears.AlgorithmB, N: 21, T: 5, B: 3, SourceValue: 1,
		Faulty: []int{0, 2, 5, 9, 12}, Strategy: "splitbrain",
	})
}

// BenchmarkE3AlgorithmA — Theorem 2: t+2+2⌊(t−1)/(b−2)⌋ rounds, O(n^b) bits.
func BenchmarkE3AlgorithmA(b *testing.B) {
	runBench(b, shiftgears.Config{
		Algorithm: shiftgears.AlgorithmA, N: 16, T: 5, B: 3, SourceValue: 1,
		Faulty: []int{0, 2, 5, 9, 12}, Strategy: "splitbrain",
	})
}

// BenchmarkE4AlgorithmC — Theorem 4: t+1 rounds, O(n)-byte messages.
func BenchmarkE4AlgorithmC(b *testing.B) {
	runBench(b, shiftgears.Config{
		Algorithm: shiftgears.AlgorithmC, N: 32, T: 4, SourceValue: 1,
		Faulty: []int{0, 7, 14, 21}, Strategy: "splitbrain",
	})
}

// BenchmarkE5Hybrid — Theorem 1: the headline hybrid at full resilience.
func BenchmarkE5Hybrid(b *testing.B) {
	runBench(b, shiftgears.Config{
		Algorithm: shiftgears.Hybrid, N: 16, T: 5, B: 3, SourceValue: 1,
		Faulty: []int{0, 2, 5, 9, 12}, Strategy: "splitbrain",
	})
}

// BenchmarkE5HybridVsA reports the Main Theorem's round saving directly.
func BenchmarkE5HybridVsA(b *testing.B) {
	var saved int
	for i := 0; i < b.N; i++ {
		h, err := shiftgears.Run(shiftgears.Config{Algorithm: shiftgears.Hybrid, N: 31, T: 10, B: 3, SourceValue: 1})
		if err != nil {
			b.Fatal(err)
		}
		a, err := shiftgears.Run(shiftgears.Config{Algorithm: shiftgears.AlgorithmA, N: 31, T: 10, B: 3, SourceValue: 1})
		if err != nil {
			b.Fatal(err)
		}
		saved = a.Rounds - h.Rounds
	}
	b.ReportMetric(float64(saved), "roundsSaved")
}

// BenchmarkE6Tradeoff — one sweep of the rounds/message trade-off point
// (b=4) plus the Coan-model comparison.
func BenchmarkE6Tradeoff(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		res, err := shiftgears.Run(shiftgears.Config{Algorithm: shiftgears.AlgorithmB, N: 21, T: 5, B: 4, SourceValue: 1})
		if err != nil {
			b.Fatal(err)
		}
		coan := baseline.CoanModel(21, 5, 4)
		ratio = float64(res.ResolveOps+res.DiscoveryReads) / float64(20) / coan.LocalOps
	}
	b.ReportMetric(ratio, "opsVsCoan")
}

// BenchmarkE7PSL — the original Pease–Shostak–Lamport baseline OM(t).
func BenchmarkE7PSL(b *testing.B) {
	runBench(b, shiftgears.Config{
		Algorithm: shiftgears.PSL, N: 10, T: 3, SourceValue: 1,
		Faulty: []int{2, 5, 8}, Strategy: "crash",
	})
}

// BenchmarkE7PSLVsExponential contrasts wire formats on the same tree.
func BenchmarkE7PSLVsExponential(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		eig, err := shiftgears.Run(shiftgears.Config{Algorithm: shiftgears.Exponential, N: 10, T: 3, SourceValue: 1})
		if err != nil {
			b.Fatal(err)
		}
		psl, err := shiftgears.Run(shiftgears.Config{Algorithm: shiftgears.PSL, N: 10, T: 3, SourceValue: 1})
		if err != nil {
			b.Fatal(err)
		}
		ratio = float64(psl.MaxMessageBytes) / float64(eig.MaxMessageBytes)
	}
	b.ReportMetric(ratio, "pslMsgOverhead")
}

// BenchmarkE8FaultDetection — the adversarial run behind the per-block
// detection accounting (Propositions 2/3).
func BenchmarkE8FaultDetection(b *testing.B) {
	var detections int
	for i := 0; i < b.N; i++ {
		res, err := shiftgears.Run(shiftgears.Config{
			Algorithm: shiftgears.AlgorithmB, N: 21, T: 5, B: 3, SourceValue: 1,
			Faulty: []int{0, 5, 8, 11, 14}, Strategy: "splitbrain",
		})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Agreement {
			b.Fatal("agreement lost")
		}
		detections = len(res.GlobalDetections)
	}
	b.ReportMetric(float64(detections), "globalDetections")
}

// BenchmarkE9PhaseQueen — the Section 5 constant-message-size comparison.
func BenchmarkE9PhaseQueen(b *testing.B) {
	runBench(b, shiftgears.Config{
		Algorithm: shiftgears.PhaseQueen, N: 21, T: 5, SourceValue: 1,
		Faulty: []int{0, 3, 6, 9, 12}, Strategy: "splitbrain",
	})
}

// BenchmarkE10Ablation measures the full rules against the
// discovery-disabled variant (the ablation's cost side: the rules' overhead
// is what buys the block-progress guarantee).
func BenchmarkE10Ablation(b *testing.B) {
	plan, err := core.NewPlan(core.AlgorithmB, 17, 4, 3, 0)
	if err != nil {
		b.Fatal(err)
	}
	_ = plan
	for _, variant := range []struct {
		name string
		opts core.Options
	}{
		{"full-rules", core.Options{}},
		{"no-discovery", core.Options{DisableDiscovery: true}},
	} {
		b.Run(variant.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := experiments.RunCoreScenario(plan, variant.opts, []int{0, 4, 8, 12}, "splitbrain", int64(i)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE11Vector — interactive consistency: n multiplexed broadcast
// instances (the PSL 1980 goal) under split-brain faults.
func BenchmarkE11Vector(b *testing.B) {
	inputs := make([]shiftgears.Value, 10)
	for i := range inputs {
		inputs[i] = shiftgears.Value(i % 3)
	}
	var last *shiftgears.VectorResult
	for i := 0; i < b.N; i++ {
		res, err := shiftgears.RunVector(shiftgears.VectorConfig{
			Algorithm: shiftgears.Exponential, N: 10, T: 3,
			Inputs: inputs, Faulty: []int{0, 4, 8}, Strategy: "splitbrain",
		})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Agreement || !res.SlotValidity {
			b.Fatal("interactive consistency violated")
		}
		last = res
	}
	b.ReportMetric(float64(last.Rounds), "rounds")
	b.ReportMetric(float64(last.MaxMessageBytes), "maxMsgB")
}

// BenchmarkE12Multivalued — the Section 2 remark: a large value domain
// reduced to a bit at the cost of two rounds.
func BenchmarkE12Multivalued(b *testing.B) {
	runBench(b, shiftgears.Config{
		Algorithm: shiftgears.Multivalued, N: 17, T: 4, SourceValue: 201,
		Faulty: []int{0, 4, 8, 12}, Strategy: "splitbrain",
	})
}

// BenchmarkF1TreeBuild — the Figure 1 artifact: building and resolving one
// processor's Information Gathering Tree for a full Exponential run.
func BenchmarkF1TreeBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiments.F1Tree()
		if err != nil {
			b.Fatal(err)
		}
		if len(tab.Text) == 0 {
			b.Fatal("empty rendering")
		}
	}
}

// BenchmarkF2PlanB — compiling Algorithm B schedules across the (t, b) grid.
func BenchmarkF2PlanB(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for t := 2; t <= 12; t++ {
			for bb := 2; bb <= t; bb++ {
				if _, err := core.NewPlan(core.AlgorithmB, 4*t+1, t, bb, 0); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}

// BenchmarkF3PlanHybrid — deriving Main Theorem parameters and schedules.
func BenchmarkF3PlanHybrid(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for t := 3; t <= 15; t++ {
			for bb := 3; bb <= t; bb++ {
				if _, err := core.NewPlan(core.Hybrid, 3*t+1, t, bb, 0); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}

// BenchmarkRSMThroughput sweeps the replicated log's two amortization
// knobs — pipelining window and batch size — over a fixed 84-command
// workload (n=7, t=2, two Byzantine replicas) and reports committed
// commands per synchronous tick. window=1/batch=1 is the sequential
// single-shot baseline (one agreement per command); the pipelined+batched
// corners demonstrate the multiplicative win: cmds/tick grows with both
// knobs while ns/op shrinks.
func BenchmarkRSMThroughput(b *testing.B) {
	const (
		n, t     = 7, 2
		commands = 84
	)
	for _, mode := range []struct{ window, batch int }{
		{1, 1}, {1, 4}, {4, 1}, {4, 4}, {7, 4},
	} {
		name := fmt.Sprintf("window=%d/batch=%d", mode.window, mode.batch)
		b.Run(name, func(b *testing.B) {
			perReplica := (commands + n - 1) / n
			slots := n * ((perReplica + mode.batch - 1) / mode.batch)
			var last *shiftgears.LogResult
			for i := 0; i < b.N; i++ {
				log, err := shiftgears.NewReplicatedLog(shiftgears.LogConfig{
					Algorithm: shiftgears.Exponential,
					N:         n, T: t,
					Slots: slots, Window: mode.window, BatchSize: mode.batch,
					Faulty: []int{2, 5}, Strategy: "splitbrain", Seed: 7,
				})
				if err != nil {
					b.Fatal(err)
				}
				for c := 0; c < commands; c++ {
					if err := log.Submit(c%n, shiftgears.Value(1+c%255)); err != nil {
						b.Fatal(err)
					}
				}
				res, err := log.Run()
				if err != nil {
					b.Fatal(err)
				}
				if !res.Agreement {
					b.Fatal("agreement lost")
				}
				last = res
			}
			b.ReportMetric(float64(last.Committed)/float64(last.Ticks), "cmds/tick")
			b.ReportMetric(float64(last.Ticks), "ticks")
			b.ReportMetric(float64(last.SequentialTicks)/float64(last.Ticks), "pipelineSpeedup")
		})
	}
}

// BenchmarkRSMThroughputTCP measures the pipelined log with every frame
// crossing a loopback socket: the wall-clock side of the window knob (the
// mesh pays one latency barrier per tick, so fewer ticks = faster log).
func BenchmarkRSMThroughputTCP(b *testing.B) {
	for _, window := range []int{1, 4} {
		b.Run(fmt.Sprintf("window=%d", window), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				log, err := shiftgears.NewReplicatedLog(shiftgears.LogConfig{
					Algorithm: shiftgears.Exponential,
					N:         4, T: 1,
					Slots: 8, Window: window, BatchSize: 2,
					TCP: true,
				})
				if err != nil {
					b.Fatal(err)
				}
				for c := 0; c < 16; c++ {
					if err := log.Submit(c%4, shiftgears.Value(1+c)); err != nil {
						b.Fatal(err)
					}
				}
				res, err := log.Run()
				if err != nil {
					b.Fatal(err)
				}
				if !res.Agreement {
					b.Fatal("agreement lost")
				}
			}
		})
	}
}

// BenchmarkGearedThroughput pits the static Hybrid log against the two
// built-in gear policies on an identical Byzantine workload (n=13, t=3,
// three silent sources, saturated queues). The static log pays Hybrid's 7
// rounds for every slot; Downshift drops to Algorithm B's 4 rounds once a
// burned slot convicts a source, and Blacklist gives convicted sources
// one-round no-op slots — so both geared logs commit the same commands in
// fewer synchronous ticks, which the "ticks" metric (and the asserted
// comparison) makes visible.
func BenchmarkGearedThroughput(b *testing.B) {
	const (
		n, t, blk     = 13, 3, 3
		slots         = 39
		window, batch = 4, 2
		commands      = 52
	)
	run := func(b *testing.B, policy shiftgears.GearPolicy) *shiftgears.LogResult {
		cfg := shiftgears.LogConfig{
			N: n, T: t, B: blk,
			Slots: slots, Window: window, BatchSize: batch,
			Faulty: []int{2, 5, 8}, Strategy: "silent", Seed: 7,
		}
		if policy == nil {
			cfg.Algorithm = shiftgears.Hybrid
		} else {
			cfg.GearPolicy = policy
		}
		log, err := shiftgears.NewReplicatedLog(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for c := 0; c < commands; c++ {
			if err := log.Submit(c%n, shiftgears.Value(1+c%255)); err != nil {
				b.Fatal(err)
			}
		}
		res, err := log.Run()
		if err != nil {
			b.Fatal(err)
		}
		if !res.Agreement {
			b.Fatal("agreement lost")
		}
		return res
	}
	staticTicks := 0
	for _, mode := range []struct {
		name   string
		policy shiftgears.GearPolicy
	}{
		{"static-hybrid", nil},
		{"downshift", shiftgears.Downshift{}},
		{"blacklist", shiftgears.Blacklist{}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			var last *shiftgears.LogResult
			for i := 0; i < b.N; i++ {
				last = run(b, mode.policy)
			}
			if mode.policy == nil {
				staticTicks = last.Ticks
			} else if staticTicks > 0 && last.Ticks >= staticTicks {
				b.Fatalf("%s saved nothing: %d ticks vs static %d", mode.name, last.Ticks, staticTicks)
			}
			b.ReportMetric(float64(last.Ticks), "ticks")
			b.ReportMetric(float64(last.Committed)/float64(last.Ticks), "cmds/tick")
		})
	}
}

// BenchmarkEngineParallelVsSequential contrasts the two round engines on
// the same workload (the goroutine engine pays synchronization for
// per-processor parallelism).
func BenchmarkEngineParallelVsSequential(b *testing.B) {
	for _, mode := range []struct {
		name     string
		parallel bool
	}{{"sequential", false}, {"parallel", true}} {
		b.Run(mode.name, func(b *testing.B) {
			runBench(b, shiftgears.Config{
				Algorithm: shiftgears.AlgorithmA, N: 16, T: 5, B: 4, SourceValue: 1,
				Faulty: []int{1, 3, 5, 7, 9}, Strategy: "noise", Parallel: mode.parallel,
			})
		})
	}
}
