package shiftgears

import (
	"fmt"

	"shiftgears/internal/adversary"
	"shiftgears/internal/consensus"
	"shiftgears/internal/sim"
)

// VectorConfig describes an interactive-consistency run: n simultaneous
// broadcast-agreement instances (one per source) multiplexed over the same
// rounds, after which all correct processors hold the same vector of
// initial values.
type VectorConfig struct {
	// Algorithm must be one of the paper's algorithms (Exponential,
	// AlgorithmA, AlgorithmB, AlgorithmC, Hybrid).
	Algorithm Algorithm
	// N, T, B as in Config; every instance shares them.
	N, T, B int
	// Inputs holds each processor's initial value (length N).
	Inputs []Value
	// Faulty, Strategy, Seed, Parallel as in Config.
	Faulty   []int
	Strategy string
	Seed     int64
	Parallel bool
}

// VectorResult reports an interactive-consistency run.
type VectorResult struct {
	// Vectors maps each correct processor to its decided vector.
	Vectors map[int][]Value
	// Agreement: all correct processors decided the same vector.
	Agreement bool
	// SlotValidity: in the agreed vector, every correct processor's slot
	// equals its input (interactive consistency's validity condition).
	SlotValidity bool
	// AgreedVector is the common vector when Agreement holds.
	AgreedVector []Value
	// Consensus is Reduce(AgreedVector): the most frequent value — a
	// multi-valued consensus decision with standard validity.
	Consensus Value

	Rounds          int
	MaxMessageBytes int
	TotalBytes      int
}

// RunVector executes an interactive-consistency instance.
func RunVector(cfg VectorConfig) (*VectorResult, error) {
	switch cfg.Algorithm {
	case Exponential, AlgorithmA, AlgorithmB, AlgorithmC, Hybrid:
	default:
		return nil, fmt.Errorf("shiftgears: RunVector supports the paper's algorithms, not %v", cfg.Algorithm)
	}
	if len(cfg.Inputs) != cfg.N {
		return nil, fmt.Errorf("shiftgears: %d inputs for %d processors", len(cfg.Inputs), cfg.N)
	}
	for _, f := range cfg.Faulty {
		if f < 0 || f >= cfg.N {
			return nil, fmt.Errorf("shiftgears: faulty id %d out of range [0, %d)", f, cfg.N)
		}
	}
	env, err := consensus.NewEnv(coreAlgorithm(cfg.Algorithm), cfg.N, cfg.T, cfg.B)
	if err != nil {
		return nil, err
	}

	faulty := make(map[int]bool, len(cfg.Faulty))
	for _, f := range cfg.Faulty {
		faulty[f] = true
	}
	stratName := cfg.Strategy
	if stratName == "" {
		stratName = "splitbrain"
	}
	replicas := make([]*consensus.VectorReplica, cfg.N)
	procs := make([]sim.Processor, cfg.N)
	for id := 0; id < cfg.N; id++ {
		rep, err := consensus.NewVectorReplica(env, id, cfg.Inputs[id], nil)
		if err != nil {
			return nil, err
		}
		replicas[id] = rep
		if faulty[id] {
			// One strategy instance per faulty processor: stateful
			// strategies (stutter) carry per-processor state, and sharing
			// one instance would mix the processors' payload histories —
			// and race under the parallel engine.
			strat, err := adversary.New(stratName, env.Rounds())
			if err != nil {
				return nil, err
			}
			procs[id] = consensus.NewFaultyVector(rep, strat, cfg.Seed)
		} else {
			procs[id] = rep
		}
	}

	var opts []sim.Option
	if cfg.Parallel {
		opts = append(opts, sim.Parallel())
	}
	nw, err := sim.NewNetwork(procs, opts...)
	if err != nil {
		return nil, err
	}
	stats, err := nw.Run(env.Rounds())
	if err != nil {
		return nil, err
	}

	res := &VectorResult{
		Vectors:         make(map[int][]Value),
		Agreement:       true,
		SlotValidity:    true,
		Rounds:          stats.Rounds,
		MaxMessageBytes: stats.MaxPayload,
		TotalBytes:      stats.Bytes,
	}
	var common consensus.Vector
	for id, rep := range replicas {
		if faulty[id] {
			continue
		}
		if err := rep.Err(); err != nil {
			return nil, fmt.Errorf("shiftgears: internal protocol error: %w", err)
		}
		vec, ok := rep.Decided()
		if !ok {
			res.Agreement = false
			continue
		}
		res.Vectors[id] = append([]Value(nil), vec...)
		if common == nil {
			common = vec
		} else if !equalVectors(common, vec) {
			res.Agreement = false
		}
	}
	if !res.Agreement || common == nil {
		res.Agreement = false
		res.SlotValidity = false
		return res, nil
	}
	res.AgreedVector = append([]Value(nil), common...)
	res.Consensus = common.Reduce()
	for id := range replicas {
		if !faulty[id] && common[id] != cfg.Inputs[id] {
			res.SlotValidity = false
		}
	}
	return res, nil
}

func equalVectors(a, b consensus.Vector) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
