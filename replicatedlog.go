package shiftgears

import (
	"fmt"
	"runtime"
	"sync"

	"shiftgears/internal/baseline"
	"shiftgears/internal/core"
	"shiftgears/internal/eigtree"
	"shiftgears/internal/extensions"
	"shiftgears/internal/fabric"
	"shiftgears/internal/rsm"
	"shiftgears/internal/sim"
)

// LogEntry is one committed slot of a replicated log.
type LogEntry = rsm.Entry

// Chaos is a deterministic fault schedule for the "mem" fabric: seeded
// per-link drops and late frames on victim nodes, within-bound delivery
// jitter, partitions that heal, and crash/restart windows. See
// fabric.Plan for the semantics and the fault-model caveats.
type Chaos = fabric.Plan

// ChaosPartition is one tick-ranged network split of a Chaos plan.
type ChaosPartition = fabric.Partition

// ChaosCrash is one tick-ranged single-node outage of a Chaos plan.
type ChaosCrash = fabric.Crash

// LogConfig describes a replicated log: a pipeline of agreement slots,
// each slot batching client commands under a rotating source, executed by
// any of the package's algorithms.
type LogConfig struct {
	// Algorithm runs every slot; SlotAlgorithm, when non-nil, overrides it
	// per slot (the pipeline handles mixed round counts).
	Algorithm     Algorithm
	SlotAlgorithm func(slot int) Algorithm
	// GearPolicy, when non-nil, overrides both: each slot's algorithm is
	// picked dynamically, at the tick the slot enters the pipeline
	// window, as a pure function of the committed prefix (see GearPolicy
	// for the determinism contract). Built-in policies: Downshift,
	// Blacklist.
	GearPolicy GearPolicy
	// N, T, B as in Config; every slot shares them.
	N, T, B int
	// Slots is the log length; Window the pipelining depth (default 1);
	// BatchSize the commands per slot (default 1).
	Slots, Window, BatchSize int
	// Workers bounds each replica's per-tick slot worker pool: the
	// window's active slots prepare and consume their rounds concurrently
	// (1 = sequential). Wire bytes and schedules are identical at any
	// worker count. Zero picks a default: sequential on the in-process
	// fabrics (where the replicas already run concurrently and more
	// goroutines just contend), and GOMAXPROCS/N per replica — at least
	// 1, at most Window — on the "tcp" fabric, where real sockets leave
	// cores idle during the exchange.
	Workers int
	// Faulty lists Byzantine replicas; Strategy and Seed drive them as in
	// Config. Faulty replicas are Byzantine in every slot, including the
	// slots they source.
	Faulty   []int
	Strategy string
	Seed     int64
	// Parallel fans the drive loop's per-replica work across goroutines.
	Parallel bool
	// Fabric selects the substrate the pipeline runs over: "sim" (or
	// empty — the in-process fabric), "mem" (the fault-injecting
	// in-memory fabric, configured by Chaos), or "tcp" (a loopback TCP
	// mesh). All fabrics run the same drive loop and commit the same
	// logs on fault-free schedules.
	Fabric string
	// TCP is the legacy spelling of Fabric: "tcp".
	TCP bool
	// Chaos is the "mem" fabric's fault plan (nil = fault-free, which is
	// byte-identical to "sim"). Replicas the plan's omission-class
	// faults touch (Chaos.Affected) are degraded beyond the fault
	// model's guarantee, so they are excluded from the agreement check
	// like Byzantine replicas and reported in LogResult.ChaosVictims;
	// keeping len(Affected ∪ Faulty) ≤ T keeps the run inside the
	// paper's model, where the remaining replicas must agree. On a
	// gear-scheduled log every affected replica must also be listed in
	// Faulty: an honest replica with a degraded prefix would resolve
	// divergent gears.
	Chaos *Chaos
	// Tracer, if non-nil, installs the flight recorder on the run: the
	// drive runtime's tick and traffic events, every replica's gear and
	// commit events, and — on the mem fabric — every seeded fault
	// decision stream into it (see the obs sinks re-exported by this
	// package: TraceRing, TraceJSONL, TraceMetrics). Nil is tracing off:
	// the hot paths run their untraced instructions (zero overhead, see
	// doc.go).
	Tracer Tracer
}

// LogResult reports a completed replicated-log run.
type LogResult struct {
	// Entries is the committed log of a correct replica (all correct
	// replicas hold the same one when Agreement is true).
	Entries []LogEntry
	// Agreement: every correct replica committed an identical log.
	Agreement bool
	// Committed counts the commands in the agreed log.
	Committed int
	// Ticks is the number of global synchronous rounds the pipeline used;
	// SequentialTicks is what window 1 would have used (the sum of every
	// slot's round count) — the pipelining denominator.
	Ticks, SequentialTicks int
	// Gears is the per-slot algorithm the log actually ran: the static
	// configuration, or the gear policy's resolved picks.
	Gears []Algorithm
	// Pending counts commands still queued at correct replicas when the
	// log ended: they never got a slot, because the log ran out of slots
	// — or because a gear policy no-op'd the slots they were waiting for
	// (Blacklist convicts any source whose sourced slot committed all
	// no-ops, so outside its saturated-workload regime a correct but
	// momentarily idle source loses its later commands). Agreement is
	// about the committed prefix; check Pending for liveness.
	Pending int

	// ChaosVictims lists the replicas the Chaos plan's omission-class
	// faults touched: their local logs are degraded beyond the fault
	// model's guarantee, so Agreement is checked over the rest.
	ChaosVictims []int

	// Traffic counters, fabric-uniform: every fabric counts the
	// per-instance frames delivered to the replicas it hosts
	// (cluster-wide on sim/mem/loopback-tcp), so the fabrics' numbers
	// are directly comparable.
	MaxMessageBytes, TotalBytes, Messages int

	// Latency summarizes submit→commit latency in global ticks, merged
	// over the correct, unaffected replicas (each replica samples the
	// commands it sourced — the submit tick is only known there). Always
	// measured; Count is 0 when no commands were submitted.
	Latency LatencySummary
}

// ReplicatedLog is multi-shot agreement as a service: Submit commands to
// any replica, Run the pipeline, read the identical committed logs.
type ReplicatedLog struct {
	cfg      LogConfig
	faulty   map[int]bool
	affected []int // chaos victims, excluded from the agreement check
	mem      *fabric.Mem
	replicas []*rsm.Replica
	ran      bool

	gearMu sync.Mutex
	gears  []Algorithm // per-slot resolved algorithm (replica 0's picks)

	// lat is the run's merged submit→commit histogram, kept on the struct
	// (not a Run local) so MultiLog can fold shard histograms together —
	// LogResult.Latency is its summarized, no-longer-mergeable view.
	lat Histogram
}

// LogOption configures a ReplicatedLog.
type LogOption func(*logOptions)

type logOptions struct {
	apply func(replica int, e LogEntry)
}

// WithLogApply installs a state-machine callback invoked once per replica
// per committed entry, in slot order (Byzantine replicas included — their
// shadow state is equally deterministic; filter by replica id if
// unwanted).
func WithLogApply(f func(replica int, e LogEntry)) LogOption {
	return func(o *logOptions) { o.apply = f }
}

// SlotProtocol builds the rsm agreement machinery for one slot: the given
// algorithm with the given parameters and source. It is the bridge
// between this package's algorithm catalog and internal/rsm, exported for
// cmd/logserver-style deployments that wire rsm.Config directly.
func SlotProtocol(alg Algorithm, n, t, b, source int) (rsm.Protocol, error) {
	proto, err := slotProtocol(alg, n, t, b, source)
	if err != nil {
		return nil, err
	}
	// The wrapper carries the algorithm's name to the flight recorder
	// (rsm.GearNamer): GearResolved events name the gear a slot actually
	// ran, which is the trace's whole point on a gear-scheduled log.
	return namedProtocol{Protocol: proto, name: alg.String()}, nil
}

func slotProtocol(alg Algorithm, n, t, b, source int) (rsm.Protocol, error) {
	if alg == NoOpSlot {
		return noopSlotProtocol{}, nil
	}
	info, err := buildPlanInfo(Config{Algorithm: alg, N: n, T: t, B: b, Source: source})
	if err != nil {
		return nil, err
	}
	switch alg {
	case PSL:
		enum, err := baseline.NewPSLEnum(n, source, t)
		if err != nil {
			return nil, err
		}
		return pslSlotProtocol{enum: enum, t: t, rounds: info.rounds}, nil
	case PhaseQueen:
		return queenSlotProtocol{n: n, t: t, source: source, rounds: info.rounds}, nil
	case Multivalued:
		return reducerSlotProtocol{n: n, t: t, source: source, rounds: info.rounds}, nil
	default:
		env, err := core.NewEnv(info.plan)
		if err != nil {
			return nil, err
		}
		return coreSlotProtocol{env: env, rounds: info.rounds}, nil
	}
}

// namedProtocol decorates a slot protocol with its algorithm name for
// the flight recorder.
type namedProtocol struct {
	rsm.Protocol
	name string
}

// GearName implements rsm.GearNamer.
func (p namedProtocol) GearName() string { return p.name }

type coreSlotProtocol struct {
	env    *core.Env
	rounds int
}

func (p coreSlotProtocol) Rounds() int { return p.rounds }
func (p coreSlotProtocol) NewReplica(id int, initial Value) (rsm.InstanceReplica, error) {
	// GetReplica draws from the Env's pool: slots released at finishSlot
	// donate their whole allocation footprint (tree arena, fault list,
	// outbox scratch) to the slots that follow them through the window.
	return p.env.GetReplica(id, initial, nil)
}

// Prewarm implements prewarmer by stocking the Env's replica pool.
func (p coreSlotProtocol) Prewarm(n int) error { return p.env.Prewarm(n) }

// prewarmer is the optional pool hook a slot protocol exposes so
// NewReplicatedLog can pay pool-warmup allocations at construction
// instead of during the first window's ticks. Only the core (tree-based)
// protocols pool today; the baseline and extension replicas are small
// enough that per-slot construction stays cheap.
type prewarmer interface{ Prewarm(n int) error }

type pslSlotProtocol struct {
	enum      *eigtree.Enum
	t, rounds int
}

func (p pslSlotProtocol) Rounds() int { return p.rounds }
func (p pslSlotProtocol) NewReplica(id int, initial Value) (rsm.InstanceReplica, error) {
	return baseline.NewPSLReplica(p.enum, id, p.t, initial, nil)
}

type queenSlotProtocol struct {
	n, t, source, rounds int
}

func (p queenSlotProtocol) Rounds() int { return p.rounds }
func (p queenSlotProtocol) NewReplica(id int, initial Value) (rsm.InstanceReplica, error) {
	return extensions.NewQueenReplica(p.n, p.t, p.source, id, initial, nil)
}

type reducerSlotProtocol struct {
	n, t, source, rounds int
}

func (p reducerSlotProtocol) Rounds() int { return p.rounds }
func (p reducerSlotProtocol) NewReplica(id int, initial Value) (rsm.InstanceReplica, error) {
	return extensions.NewReducerReplica(p.n, p.t, p.source, id, initial, nil)
}

// NewReplicatedLog validates the configuration and builds every replica's
// engine. Submit commands, then Run.
func NewReplicatedLog(cfg LogConfig, opts ...LogOption) (*ReplicatedLog, error) {
	if cfg.Window == 0 {
		cfg.Window = 1
	}
	if cfg.BatchSize == 0 {
		cfg.BatchSize = 1
	}
	if cfg.Slots < 1 {
		return nil, fmt.Errorf("shiftgears: log needs at least 1 slot, have %d", cfg.Slots)
	}
	if cfg.SlotAlgorithm == nil && cfg.Algorithm == 0 && cfg.GearPolicy == nil {
		return nil, fmt.Errorf("shiftgears: log needs an Algorithm, SlotAlgorithm, or GearPolicy")
	}
	// A policy that enumerates its gears gets them validated now: an
	// inadmissible gear (Downshift's default AlgorithmB low gear needs
	// n ≥ 4t+1) is a configuration error, not something to discover
	// mid-run when the shift first fires.
	if gl, ok := cfg.GearPolicy.(GearLister); ok {
		for _, alg := range gl.Gears() {
			if alg == NoOpSlot {
				continue
			}
			if _, err := buildPlanInfo(Config{Algorithm: alg, N: cfg.N, T: cfg.T, B: cfg.B}); err != nil {
				return nil, fmt.Errorf("shiftgears: gear policy %s: gear %v inadmissible: %w", cfg.GearPolicy.Name(), alg, err)
			}
		}
	}
	faulty := make(map[int]bool, len(cfg.Faulty))
	for _, f := range cfg.Faulty {
		if f < 0 || f >= cfg.N {
			return nil, fmt.Errorf("shiftgears: faulty id %d out of range [0, %d)", f, cfg.N)
		}
		faulty[f] = true
	}
	stratName := cfg.Strategy
	if stratName == "" {
		stratName = "splitbrain"
	}

	// Normalize and validate the fabric selection.
	fabricName := cfg.Fabric
	if fabricName == "" {
		fabricName = "sim"
	}
	if cfg.TCP {
		if cfg.Fabric != "" && cfg.Fabric != "tcp" {
			return nil, fmt.Errorf("shiftgears: TCP conflicts with Fabric %q", cfg.Fabric)
		}
		fabricName = "tcp"
	}
	switch fabricName {
	case "sim", "mem", "tcp":
	default:
		return nil, fmt.Errorf("shiftgears: unknown fabric %q (want sim, mem, or tcp)", fabricName)
	}
	if cfg.Chaos != nil && fabricName != "mem" {
		return nil, fmt.Errorf("shiftgears: Chaos requires the mem fabric, not %q", fabricName)
	}
	cfg.Fabric = fabricName

	var o logOptions
	for _, opt := range opts {
		opt(&o)
	}

	l := &ReplicatedLog{
		cfg: cfg, faulty: faulty,
		replicas: make([]*rsm.Replica, cfg.N),
		gears:    make([]Algorithm, cfg.Slots),
	}
	if fabricName == "mem" {
		plan := Chaos{}
		if cfg.Chaos != nil {
			plan = *cfg.Chaos
		}
		mem, err := fabric.NewMem(cfg.N, plan)
		if err != nil {
			return nil, fmt.Errorf("shiftgears: %w", err)
		}
		l.mem = mem
		l.affected = plan.Affected()
		unaffectedCorrect := 0
		for id := 0; id < cfg.N; id++ {
			hit := faulty[id]
			for _, v := range l.affected {
				if v == id {
					hit = true
				}
			}
			if !hit {
				unaffectedCorrect++
			}
		}
		if unaffectedCorrect == 0 {
			return nil, fmt.Errorf("shiftgears: chaos plan and faulty set cover all %d replicas: no unaffected correct replica left to agree", cfg.N)
		}
		// A chaos-degraded but honest replica holds a degraded committed
		// prefix; on a gear-scheduled log it would resolve divergent gears
		// and kill the run, so the plan's victims must be Byzantine-
		// configured (whose gear handling already runs on shadow state).
		if cfg.GearPolicy != nil {
			for _, v := range l.affected {
				if !faulty[v] {
					return nil, fmt.Errorf("shiftgears: gear-scheduled log: chaos victim %d must also be in Faulty (a degraded honest prefix diverges the gear schedule)", v)
				}
			}
		}
	}

	rcfg := rsm.Config{
		N: cfg.N, Slots: cfg.Slots, Window: cfg.Window, BatchSize: cfg.BatchSize,
		Workers: cfg.Workers, Tracer: cfg.Tracer,
	}
	if rcfg.Workers == 0 && cfg.Fabric == "tcp" {
		// All N replicas share this process, so split the cores among
		// them; more workers than window slots cannot be used.
		w := runtime.GOMAXPROCS(0) / cfg.N
		if w < 1 {
			w = 1
		}
		if w > cfg.Window {
			w = cfg.Window
		}
		rcfg.Workers = w
	}
	if l.mem != nil && cfg.Tracer != nil {
		l.mem.SetTracer(cfg.Tracer)
	}
	type protoKey struct {
		alg    Algorithm
		source int
	}
	if cfg.GearPolicy == nil {
		algFor := func(slot int) Algorithm {
			if cfg.SlotAlgorithm != nil {
				return cfg.SlotAlgorithm(slot)
			}
			return cfg.Algorithm
		}
		// One protocol per slot, shared by all in-process replicas (the
		// compiled plans and enumerations are read-only); slots with the
		// same (algorithm, source) pair share one compilation.
		protos := make([]rsm.Protocol, cfg.Slots)
		cache := make(map[protoKey]rsm.Protocol)
		// firstUse counts each key's slots in the first pipeline window —
		// the pool-prewarm demand (× N nodes × BatchSize instances each).
		warmWin := cfg.Window
		if cfg.Slots < warmWin {
			warmWin = cfg.Slots
		}
		firstUse := make(map[protoKey]int)
		for slot := 0; slot < cfg.Slots; slot++ {
			key := protoKey{algFor(slot), slot % cfg.N}
			// A statically no-op'd slot silently discards its source's
			// commands while the run still reports agreement; only a gear
			// policy, reacting to evidence in the prefix, may assign it.
			if key.alg == NoOpSlot {
				return nil, fmt.Errorf("shiftgears: slot %d: noop is a policy-assigned gear, not a static algorithm; use a GearPolicy (Blacklist) to assign it", slot)
			}
			proto, ok := cache[key]
			if !ok {
				var err error
				proto, err = SlotProtocol(key.alg, cfg.N, cfg.T, cfg.B, key.source)
				if err != nil {
					return nil, fmt.Errorf("shiftgears: slot %d: %w", slot, err)
				}
				cache[key] = proto
			}
			protos[slot] = proto
			l.gears[slot] = key.alg
			if slot < warmWin {
				firstUse[key]++
			}
		}
		// Stock each pooled protocol with its first window's instance
		// demand: every node builds BatchSize instance replicas per slot,
		// all drawn from the key's one shared Env pool. Gear-scheduled logs
		// skip this — their protocols are resolved lazily, mid-run, so
		// there is nothing to warm at construction.
		for key, slots := range firstUse {
			np, ok := cache[key].(namedProtocol)
			if !ok {
				continue
			}
			if pw, ok := np.Protocol.(prewarmer); ok {
				if err := pw.Prewarm(slots * cfg.N * cfg.BatchSize); err != nil {
					return nil, fmt.Errorf("shiftgears: prewarm %v: %w", key.alg, err)
				}
			}
		}
		rcfg.Protocol = func(slot, source int) (rsm.Protocol, error) { return protos[slot], nil }
	}

	// mkGearProtocol builds one replica's lazy slot resolver. The cache is
	// per replica (replicas resolve concurrently under the parallel and
	// TCP engines); compilations stay cheap because slots repeating an
	// (algorithm, source) pair share them within the replica. Replica 0's
	// picks are recorded as the log's gear schedule — the policy is a pure
	// function of the committed prefix, so every correct replica picks
	// identically.
	mkGearProtocol := func(id int) func(slot, source int, prefix []rsm.Entry) (rsm.Protocol, error) {
		cache := make(map[protoKey]rsm.Protocol)
		return func(slot, source int, prefix []rsm.Entry) (rsm.Protocol, error) {
			alg := cfg.GearPolicy.Pick(slot, source, prefix)
			if id == 0 {
				l.gearMu.Lock()
				l.gears[slot] = alg
				l.gearMu.Unlock()
			}
			key := protoKey{alg, source}
			proto, ok := cache[key]
			if !ok {
				var err error
				proto, err = SlotProtocol(alg, cfg.N, cfg.T, cfg.B, source)
				if err != nil {
					return nil, fmt.Errorf("shiftgears: slot %d gear %v: %w", slot, alg, err)
				}
				cache[key] = proto
			}
			return proto, nil
		}
	}

	for id := 0; id < cfg.N; id++ {
		idcfg := rcfg
		if cfg.GearPolicy != nil {
			idcfg.GearProtocol = mkGearProtocol(id)
		}
		var ropts []rsm.ReplicaOption
		if o.apply != nil {
			id := id
			ropts = append(ropts, rsm.WithApply(func(e LogEntry) { o.apply(id, e) }))
		}
		if faulty[id] {
			ropts = append(ropts, rsm.WithByzantine(stratName, cfg.Seed))
		}
		rep, err := rsm.NewReplica(idcfg, id, ropts...)
		if err != nil {
			return nil, err
		}
		l.replicas[id] = rep
	}
	return l, nil
}

// Submit queues a command at the given replica — the replica that
// "received the client request". It rides in the next slot that replica
// sources with a free batch position.
func (l *ReplicatedLog) Submit(receiver int, cmd Value) error {
	if receiver < 0 || receiver >= l.cfg.N {
		return fmt.Errorf("shiftgears: receiver %d out of range [0, %d)", receiver, l.cfg.N)
	}
	return l.replicas[receiver].Submit(cmd)
}

// Replica exposes one replica's engine (its Committed channel, Snapshot,
// and Pending count).
func (l *ReplicatedLog) Replica(id int) *rsm.Replica { return l.replicas[id] }

// Run executes the full pipeline over the configured fabric — the
// in-process router, the chaos network, or a loopback TCP mesh, all
// through the same drive loop — and reports the committed logs. It can
// run once.
func (l *ReplicatedLog) Run() (*LogResult, error) {
	if l.ran {
		return nil, fmt.Errorf("shiftgears: log already ran")
	}
	if len(l.faulty) == l.cfg.N {
		return nil, fmt.Errorf("shiftgears: no correct replicas: all %d replicas are configured faulty", l.cfg.N)
	}
	l.ran = true

	var stats *sim.Stats
	var err error
	switch l.cfg.Fabric {
	case "tcp":
		stats, err = rsm.RunTCP(l.replicas)
	case "mem":
		stats, err = rsm.Run(l.mem, l.replicas, l.cfg.Parallel)
	default:
		stats, err = rsm.RunSim(l.replicas, l.cfg.Parallel)
	}
	if err != nil {
		return nil, err
	}

	res := &LogResult{
		Agreement:       true,
		ChaosVictims:    append([]int(nil), l.affected...),
		Ticks:           stats.Rounds,
		MaxMessageBytes: stats.MaxPayload,
		TotalBytes:      stats.Bytes,
		Messages:        stats.Messages,
	}
	// SequentialTicks is the window-1 schedule: slots back to back. Every
	// slot is resolved once the run completes, so SlotRounds is exact for
	// geared logs too.
	seq := 0
	for slot := 0; slot < l.cfg.Slots; slot++ {
		seq += l.replicas[0].SlotRounds(slot)
	}
	res.SequentialTicks = seq
	l.gearMu.Lock()
	res.Gears = append([]Algorithm(nil), l.gears...)
	l.gearMu.Unlock()

	affected := make(map[int]bool, len(l.affected))
	for _, v := range l.affected {
		affected[v] = true
	}
	var ref []LogEntry
	for id, rep := range l.replicas {
		// Byzantine replicas run shadow state; chaos victims run honest
		// state over a network degraded beyond the fault model's
		// guarantee. Neither's log is checked.
		if l.faulty[id] || affected[id] {
			continue
		}
		if err := rep.Err(); err != nil {
			return nil, fmt.Errorf("shiftgears: replica %d: %w", id, err)
		}
		res.Pending += rep.Pending()
		// Each correct replica holds the latency samples of the commands
		// it sourced; fixed buckets make the merge a vector addition.
		l.lat.Merge(rep.Latency())
		entries := rep.Entries()
		if ref == nil {
			ref = entries
			continue
		}
		if !equalLogs(ref, entries) {
			res.Agreement = false
		}
	}
	res.Entries = ref
	res.Latency = l.lat.Summarize()
	for _, e := range ref {
		res.Committed += len(e.Commands)
	}
	if len(ref) != l.cfg.Slots {
		res.Agreement = false
	}
	return res, nil
}

func equalLogs(a, b []LogEntry) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Slot != b[i].Slot || a[i].Source != b[i].Source || len(a[i].Batch) != len(b[i].Batch) {
			return false
		}
		for p := range a[i].Batch {
			if a[i].Batch[p] != b[i].Batch[p] {
				return false
			}
		}
	}
	return true
}
