package shiftgears

// The flight recorder's public face: internal/obs re-exported as type
// aliases (the same pattern that exposes fabric.Plan as Chaos), so
// drivers install tracers and read traces without importing internals.

import (
	"io"
	"net/http"

	"shiftgears/internal/obs"
)

// Tracer receives flight-recorder events; install one via
// LogConfig.Tracer. Implementations must be safe for concurrent Emit —
// the parallel drive loop shares one tracer across goroutines. The
// package's sinks (TraceRing, TraceJSONL, TraceMetrics) all are.
type Tracer = obs.Tracer

// TraceEvent is one flight-recorder record. Unused id fields (Node,
// Slot, From, To, Shard) are -1, so 0 always means processor 0 (and
// shard 0 of a sharded run).
type TraceEvent = obs.Event

// TraceEventType classifies a TraceEvent; the names below mirror
// internal/obs.
type TraceEventType = obs.Type

// Event types: the run's anatomy (ticks, window motion, gear decisions,
// commits, per-link traffic, terminal outcomes) and the mem fabric's
// chaos audit trail.
const (
	TraceTickStart      = obs.TickStart
	TraceWindowAdvance  = obs.WindowAdvance
	TraceSlotOpen       = obs.SlotOpen
	TraceGearResolved   = obs.GearResolved
	TraceSlotCommitted  = obs.SlotCommitted
	TraceFrameBatch     = obs.FrameBatch
	TraceDiverged       = obs.Diverged
	TraceWedged         = obs.Wedged
	TraceAborted        = obs.Aborted
	TraceChaosDrop      = obs.ChaosDrop
	TraceChaosLate      = obs.ChaosLate
	TraceChaosDelay     = obs.ChaosDelay
	TraceChaosCut       = obs.ChaosCut
	TraceChaosReorder   = obs.ChaosReorder
	TracePartitionStart = obs.PartitionStart
	TracePartitionHeal  = obs.PartitionHeal
	TraceCrashStart     = obs.CrashStart
	TraceCrashEnd       = obs.CrashEnd
)

// TraceRing is the bounded in-memory sink (tests, /debug surface).
type TraceRing = obs.Ring

// TraceJSONL streams events as JSON lines (`logload -trace`).
type TraceJSONL = obs.JSONL

// TraceMetrics is the counting sink behind the Prometheus/expvar
// surface: event counts, gear-shift counters, per-link traffic.
type TraceMetrics = obs.Metrics

// Histogram is the fixed-bucket latency store; LatencySummary its
// rendered percentile view (LogResult.Latency).
type Histogram = obs.Histogram

// LatencySummary reports count, mean, p50/p90/p99, and max in ticks.
type LatencySummary = obs.LatencySummary

// DebugState feeds the live HTTP surface (NewDebugHandler).
type DebugState = obs.DebugState

// NewTraceRing builds a ring sink retaining the last cap events
// (cap ≤ 0 uses the default, obs.DefaultRingCap).
func NewTraceRing(cap int) *TraceRing { return obs.NewRing(cap) }

// NewTraceJSONL builds a JSONL sink over w. Close (or Flush) it when the
// run ends — the tail of the trace is buffered.
func NewTraceJSONL(w io.Writer) *TraceJSONL { return obs.NewJSONL(w) }

// NewTraceMetrics builds a counting sink.
func NewTraceMetrics() *TraceMetrics { return obs.NewMetrics() }

// ReadTrace parses a JSONL trace, validating every line.
func ReadTrace(r io.Reader) ([]TraceEvent, error) { return obs.ReadJSONL(r) }

// TraceTee fans events to every non-nil tracer; nil when none survive.
func TraceTee(tracers ...Tracer) Tracer { return obs.Tee(tracers...) }

// TraceWithShard stamps a shard id onto every event flowing to tr, so K
// shards can share one sink without their streams blurring (events
// already stamped keep their id). MultiLog applies it to each shard's
// tracer automatically; it is exported for drivers that add their own
// out-of-band events to a sharded trace. A nil tracer stays nil.
func TraceWithShard(tr Tracer, shard int) Tracer { return obs.WithShard(tr, shard) }

// NewDebugHandler builds the live observability surface (/metrics,
// /debug/vars, /debug/pprof, /debug/gears, /debug/trace) over the given
// state — what cmd/logserver mounts with -debug.
func NewDebugHandler(st DebugState) http.Handler { return obs.NewHandler(st) }
