package shiftgears

import (
	"fmt"
	"sort"

	"shiftgears/internal/adversary"
	"shiftgears/internal/baseline"
	"shiftgears/internal/core"
	"shiftgears/internal/eigtree"
	"shiftgears/internal/extensions"
	"shiftgears/internal/sim"
	"shiftgears/internal/trace"
)

// Value is an element of the agreement value set V; 0 is the default value.
type Value = eigtree.Value

// Algorithm selects the protocol a Run executes.
type Algorithm int

const (
	// Exponential is the paper's Section 3 algorithm (n ≥ 3t+1).
	Exponential Algorithm = iota + 1
	// AlgorithmA is the Theorem 2 family (n ≥ 3t+1, parameter B).
	AlgorithmA
	// AlgorithmB is the Theorem 3 family (n ≥ 4t+1, parameter B).
	AlgorithmB
	// AlgorithmC is the Theorem 4 algorithm (t ≤ ⌊√(n/2)⌋).
	AlgorithmC
	// Hybrid is the Main Theorem algorithm: A, then B, then C.
	Hybrid
	// PSL is the Pease–Shostak–Lamport oral-messages baseline OM(t).
	PSL
	// PhaseQueen is the Berman–Garay–Perry style extension (n ≥ 4t+1).
	PhaseQueen
	// Multivalued is the paper's Section 2 remark made concrete: a
	// Turpin–Coan-style two-round reduction from a large value domain to
	// one bit, decided by the phase protocol (n ≥ 4t+1). Messages after
	// the reduction are one byte regardless of |V|.
	Multivalued
	// NoOpSlot is the replicated log's degenerate gear: a one-round,
	// zero-message slot in which every replica decides the no-op without
	// agreement machinery. Gear policies assign it to slots whose source
	// the committed prefix has already convicted (Blacklist); it is not a
	// single-shot agreement algorithm and Run rejects it.
	NoOpSlot
)

// String names the algorithm.
func (a Algorithm) String() string {
	switch a {
	case Exponential:
		return "exponential"
	case AlgorithmA:
		return "A"
	case AlgorithmB:
		return "B"
	case AlgorithmC:
		return "C"
	case Hybrid:
		return "hybrid"
	case PSL:
		return "psl"
	case PhaseQueen:
		return "phasequeen"
	case Multivalued:
		return "multivalued"
	case NoOpSlot:
		return "noop"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// ParseAlgorithm resolves a CLI name to an Algorithm.
func ParseAlgorithm(s string) (Algorithm, error) {
	switch s {
	case "exponential", "exp":
		return Exponential, nil
	case "A", "a":
		return AlgorithmA, nil
	case "B", "b":
		return AlgorithmB, nil
	case "C", "c":
		return AlgorithmC, nil
	case "hybrid":
		return Hybrid, nil
	case "psl":
		return PSL, nil
	case "phasequeen", "queen":
		return PhaseQueen, nil
	case "multivalued", "reduce":
		return Multivalued, nil
	case "noop":
		return NoOpSlot, nil
	default:
		return 0, fmt.Errorf("shiftgears: unknown algorithm %q", s)
	}
}

// Config describes one agreement instance.
type Config struct {
	// Algorithm is the protocol to run.
	Algorithm Algorithm
	// N is the number of processors; T the resilience parameter.
	N, T int
	// B is the block parameter of Algorithms A, B, and Hybrid (rounds of
	// information gathering per block after round 1); ignored otherwise.
	B int
	// Source is the distinguished source processor (default 0).
	Source int
	// SourceValue is the source's initial value.
	SourceValue Value
	// Faulty lists the adversary-controlled processors. It may include the
	// source and may exceed T (for over-resilience experiments; the
	// paper's guarantees then no longer apply).
	Faulty []int
	// Strategy is the adversary strategy name (see adversary.Names);
	// defaults to "splitbrain" when Faulty is non-empty.
	Strategy string
	// Seed drives all adversary randomness deterministically.
	Seed int64
	// Parallel selects the goroutine-per-processor engine; results are
	// identical to the sequential engine.
	Parallel bool
	// CollectEvents includes the merged protocol event timeline in the
	// Result.
	CollectEvents bool
}

// ProcessorResult is one processor's outcome.
type ProcessorResult struct {
	ID       int
	Correct  bool
	Decided  bool
	Decision Value
	// Discovered lists the processors this replica put in its list L_p
	// (core algorithms only).
	Discovered []int
}

// Result reports a completed run.
type Result struct {
	Algorithm Algorithm
	N, T, B   int

	// Rounds actually executed; equals the plan schedule exactly.
	Rounds int
	// PaperRoundBound is the round count the corresponding theorem states.
	PaperRoundBound int

	Processors []ProcessorResult
	// Agreement: all correct processors decided on one common value.
	Agreement bool
	// Validity: the source is correct and all correct processors decided
	// its value, or the source is faulty (vacuously true).
	Validity bool
	// DecisionValue is the common decision when Agreement holds.
	DecisionValue Value

	// MaxMessageBytes is the largest single payload (the paper's message
	// length); TotalBytes and Messages aggregate traffic.
	MaxMessageBytes int
	TotalBytes      int
	Messages        int

	// ResolveOps, DiscoveryReads, PeakTreeNodes sum/maximize the local
	// computation and space counters over correct replicas.
	ResolveOps     int
	DiscoveryReads int
	PeakTreeNodes  int

	// GlobalDetections maps each faulty processor discovered by every
	// correct replica to the round its detection became global.
	GlobalDetections map[int]int

	// Events is the merged protocol timeline (with CollectEvents).
	Events []trace.Event
}

// protocol is what Run needs from every replica implementation.
type protocol interface {
	sim.Processor
	Decided() (Value, bool)
	Err() error
}

// Validate checks a configuration against the paper's constraints without
// running it.
func Validate(cfg Config) error {
	_, err := buildPlanInfo(cfg)
	return err
}

// planInfo captures the per-algorithm schedule facts Run needs.
type planInfo struct {
	rounds     int
	paperBound int
	plan       *core.Plan // nil for PSL / PhaseQueen
}

func buildPlanInfo(cfg Config) (planInfo, error) {
	if cfg.Source < 0 || cfg.Source >= cfg.N {
		return planInfo{}, fmt.Errorf("shiftgears: source %d out of range [0, %d)", cfg.Source, cfg.N)
	}
	for _, f := range cfg.Faulty {
		if f < 0 || f >= cfg.N {
			return planInfo{}, fmt.Errorf("shiftgears: faulty id %d out of range [0, %d)", f, cfg.N)
		}
	}
	switch cfg.Algorithm {
	case PSL:
		if cfg.N < 3*cfg.T+1 {
			return planInfo{}, fmt.Errorf("shiftgears: PSL requires n ≥ 3t+1 (n=%d, t=%d)", cfg.N, cfg.T)
		}
		if cfg.T < 1 {
			return planInfo{}, fmt.Errorf("shiftgears: t must be ≥ 1")
		}
		return planInfo{rounds: cfg.T + 1, paperBound: cfg.T + 1}, nil
	case PhaseQueen:
		if cfg.N < 4*cfg.T+1 {
			return planInfo{}, fmt.Errorf("shiftgears: PhaseQueen requires n ≥ 4t+1 (n=%d, t=%d)", cfg.N, cfg.T)
		}
		if cfg.T < 1 {
			return planInfo{}, fmt.Errorf("shiftgears: t must be ≥ 1")
		}
		return planInfo{rounds: 1 + 2*(cfg.T+1), paperBound: 1 + 2*(cfg.T+1)}, nil
	case Multivalued:
		if cfg.N < 4*cfg.T+1 {
			return planInfo{}, fmt.Errorf("shiftgears: Multivalued requires n ≥ 4t+1 (n=%d, t=%d)", cfg.N, cfg.T)
		}
		if cfg.T < 1 {
			return planInfo{}, fmt.Errorf("shiftgears: t must be ≥ 1")
		}
		return planInfo{rounds: 3 + 2*(cfg.T+1), paperBound: 3 + 2*(cfg.T+1)}, nil
	case Exponential, AlgorithmA, AlgorithmB, AlgorithmC, Hybrid:
		plan, err := core.NewPlan(coreAlgorithm(cfg.Algorithm), cfg.N, cfg.T, cfg.B, cfg.Source)
		if err != nil {
			return planInfo{}, err
		}
		return planInfo{rounds: plan.TotalRounds, paperBound: plan.PaperRoundBound(), plan: plan}, nil
	case NoOpSlot:
		return planInfo{}, fmt.Errorf("shiftgears: noop is a replicated-log gear, not a single-shot algorithm")
	default:
		return planInfo{}, fmt.Errorf("shiftgears: unknown algorithm %v", cfg.Algorithm)
	}
}

func coreAlgorithm(a Algorithm) core.Algorithm {
	switch a {
	case Exponential:
		return core.Exponential
	case AlgorithmA:
		return core.AlgorithmA
	case AlgorithmB:
		return core.AlgorithmB
	case AlgorithmC:
		return core.AlgorithmC
	case Hybrid:
		return core.Hybrid
	default:
		return 0
	}
}

// Run executes one agreement instance and reports the outcome.
func Run(cfg Config) (*Result, error) {
	info, err := buildPlanInfo(cfg)
	if err != nil {
		return nil, err
	}

	faulty := make(map[int]bool, len(cfg.Faulty))
	for _, f := range cfg.Faulty {
		faulty[f] = true
	}

	stratName := cfg.Strategy
	if stratName == "" {
		stratName = "splitbrain"
	}

	// Build replicas; faulty ones are wrapped shadow copies.
	replicas := make([]protocol, cfg.N)
	logs := make([]*trace.Log, cfg.N)
	procs := make([]sim.Processor, cfg.N)
	var env *core.Env
	if info.plan != nil {
		env, err = core.NewEnv(info.plan)
		if err != nil {
			return nil, err
		}
	}
	var pslEnum *eigtree.Enum
	if cfg.Algorithm == PSL {
		pslEnum, err = baseline.NewPSLEnum(cfg.N, cfg.Source, cfg.T)
		if err != nil {
			return nil, err
		}
	}
	for id := 0; id < cfg.N; id++ {
		logs[id] = trace.NewLog(id)
		var rep protocol
		switch cfg.Algorithm {
		case PSL:
			rep, err = baseline.NewPSLReplica(pslEnum, id, cfg.T, cfg.SourceValue, logs[id])
		case PhaseQueen:
			rep, err = extensions.NewQueenReplica(cfg.N, cfg.T, cfg.Source, id, cfg.SourceValue, logs[id])
		case Multivalued:
			rep, err = extensions.NewReducerReplica(cfg.N, cfg.T, cfg.Source, id, cfg.SourceValue, logs[id])
		default:
			rep, err = core.NewReplica(env, id, cfg.SourceValue, logs[id])
		}
		if err != nil {
			return nil, err
		}
		replicas[id] = rep
		if faulty[id] {
			// One strategy instance per faulty processor: stateful
			// strategies (stutter) keep per-processor state and never race
			// under the Parallel engine's concurrent PrepareRound calls.
			strat, err := adversary.New(stratName, info.rounds)
			if err != nil {
				return nil, err
			}
			procs[id] = adversary.NewProcessor(rep, strat, cfg.Seed, cfg.N)
		} else {
			procs[id] = rep
		}
	}

	var opts []sim.Option
	if cfg.Parallel {
		opts = append(opts, sim.Parallel())
	}
	nw, err := sim.NewNetwork(procs, opts...)
	if err != nil {
		return nil, err
	}
	stats, err := nw.Run(info.rounds)
	if err != nil {
		return nil, err
	}

	return assemble(cfg, info, replicas, logs, stats, faulty)
}

func assemble(cfg Config, info planInfo, replicas []protocol, logs []*trace.Log, stats *sim.Stats, faulty map[int]bool) (*Result, error) {
	res := &Result{
		Algorithm:       cfg.Algorithm,
		N:               cfg.N,
		T:               cfg.T,
		B:               cfg.B,
		Rounds:          stats.Rounds,
		PaperRoundBound: info.paperBound,
		MaxMessageBytes: stats.MaxPayload,
		TotalBytes:      stats.Bytes,
		Messages:        stats.Messages,
	}

	var correctLogs []*trace.Log
	agreement := true
	var common Value
	haveCommon := false
	for id, rep := range replicas {
		if err := rep.Err(); err != nil && !faulty[id] {
			return nil, fmt.Errorf("shiftgears: internal protocol error: %w", err)
		}
		v, ok := rep.Decided()
		pr := ProcessorResult{ID: id, Correct: !faulty[id], Decided: ok, Decision: v}
		if cr, isCore := rep.(*core.Replica); isCore {
			pr.Discovered = cr.Faults().Members()
			res.ResolveOps += boolInt(pr.Correct) * cr.Counters().ResolveOps
			res.DiscoveryReads += boolInt(pr.Correct) * cr.Counters().DiscoveryReads
			if pr.Correct && cr.Counters().PeakTreeNodes > res.PeakTreeNodes {
				res.PeakTreeNodes = cr.Counters().PeakTreeNodes
			}
		}
		if psl, isPSL := rep.(*baseline.PSLReplica); isPSL && pr.Correct {
			res.ResolveOps += psl.ResolveOps()
		}
		res.Processors = append(res.Processors, pr)

		if pr.Correct {
			correctLogs = append(correctLogs, logs[id])
			if !ok {
				agreement = false
				continue
			}
			if !haveCommon {
				common, haveCommon = v, true
			} else if v != common {
				agreement = false
			}
		}
	}
	res.Agreement = agreement && haveCommon
	if res.Agreement {
		res.DecisionValue = common
	}
	res.Validity = true
	if !faulty[cfg.Source] {
		res.Validity = res.Agreement && common == cfg.SourceValue
	}

	// Global detections: faulty processors present in every correct L_p,
	// excluding the source's replica log (the source halts immediately and
	// keeps no list).
	nonSourceCorrect := make([]*trace.Log, 0, len(correctLogs))
	for id := range replicas {
		if !faulty[id] && id != cfg.Source {
			nonSourceCorrect = append(nonSourceCorrect, logs[id])
		}
	}
	res.GlobalDetections = trace.GlobalDetections(nonSourceCorrect)

	if cfg.CollectEvents {
		res.Events = trace.Merge(logs...)
	}
	sort.Slice(res.Processors, func(i, j int) bool { return res.Processors[i].ID < res.Processors[j].ID })
	return res, nil
}

func boolInt(b bool) int {
	if b {
		return 1
	}
	return 0
}
