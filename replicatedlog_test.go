package shiftgears_test

import (
	"reflect"
	"sync"
	"testing"

	"shiftgears"
)

// TestReplicatedLogEndToEnd is the bank example as a test: seven replicas,
// two Byzantine (one of them a slot source), batched and pipelined, with a
// per-replica state machine fed by the apply callback.
func TestReplicatedLogEndToEnd(t *testing.T) {
	var mu sync.Mutex
	balances := make(map[int][]int) // replica → account balances
	log, err := shiftgears.NewReplicatedLog(shiftgears.LogConfig{
		Algorithm: shiftgears.Exponential,
		N:         7, T: 2,
		Slots: 14, Window: 4, BatchSize: 3,
		Faulty:   []int{2, 5},
		Strategy: "splitbrain",
		Seed:     7,
	}, shiftgears.WithLogApply(func(replica int, e shiftgears.LogEntry) {
		mu.Lock()
		defer mu.Unlock()
		if balances[replica] == nil {
			balances[replica] = make([]int, 16)
		}
		for _, cmd := range e.Commands {
			balances[replica][int(cmd)>>4] += int(cmd) & 0x0f
		}
	}))
	if err != nil {
		t.Fatal(err)
	}

	deposit := func(account, amount int) shiftgears.Value {
		return shiftgears.Value(account<<4 | amount)
	}
	submissions := map[int][]shiftgears.Value{
		0: {deposit(1, 5), deposit(1, 3)},
		1: {deposit(2, 9)},
		2: {deposit(2, 1)}, // received by a Byzantine replica
		3: {deposit(3, 7), deposit(1, 2), deposit(3, 4), deposit(2, 2)},
		6: {deposit(4, 8)},
	}
	for receiver, cmds := range submissions {
		for _, cmd := range cmds {
			if err := log.Submit(receiver, cmd); err != nil {
				t.Fatal(err)
			}
		}
	}

	res, err := log.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Agreement {
		t.Fatal("correct replicas committed diverging logs")
	}
	if len(res.Entries) != 14 {
		t.Fatalf("committed %d slots, want 14", len(res.Entries))
	}
	if res.Ticks >= res.SequentialTicks {
		t.Fatalf("pipeline used %d ticks, sequential bound is %d", res.Ticks, res.SequentialTicks)
	}

	// Commands received by correct replicas all commit (enough slots and
	// batch positions for every queue).
	correctSubmitted := 0
	for receiver, cmds := range submissions {
		if receiver != 2 && receiver != 5 {
			correctSubmitted += len(cmds)
		}
	}
	if res.Committed < correctSubmitted {
		t.Fatalf("committed %d commands, want ≥ %d", res.Committed, correctSubmitted)
	}

	// Every correct replica's state machine ended identical.
	var ref []int
	for id := 0; id < 7; id++ {
		if id == 2 || id == 5 {
			continue
		}
		if ref == nil {
			ref = balances[id]
			continue
		}
		if !reflect.DeepEqual(ref, balances[id]) {
			t.Fatalf("replica %d balances %v diverge from %v", id, balances[id], ref)
		}
	}
}

// TestReplicatedLogOverTCP runs the same engine with every frame crossing
// a loopback socket.
func TestReplicatedLogOverTCP(t *testing.T) {
	log, err := shiftgears.NewReplicatedLog(shiftgears.LogConfig{
		Algorithm: shiftgears.Exponential,
		N:         4, T: 1,
		Slots: 4, Window: 2, BatchSize: 2,
		Faulty: []int{3},
		TCP:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, cmd := range []shiftgears.Value{10, 20, 30} {
		if err := log.Submit(i%3, cmd); err != nil {
			t.Fatal(err)
		}
	}
	res, err := log.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Agreement || len(res.Entries) != 4 {
		t.Fatalf("agreement=%v slots=%d", res.Agreement, len(res.Entries))
	}
	if res.Committed < 3 {
		t.Fatalf("committed %d commands, want ≥ 3", res.Committed)
	}
}

// TestReplicatedLogTCPWorkersArenaLifetime pushes a pipelined, batched
// log over TCP with an explicit multi-worker pool. Inbound payloads
// slice into per-peer read arenas that the reader goroutine rewinds
// every tick, and outbound payloads slice into per-slot encode arenas
// reset every PrepareRound — so if any consumer retained a pooled
// payload past its tick, the worker goroutines re-reading it while the
// owner overwrites would be a data race. Run under -race (CI does) this
// is the lifetime regression test for the zero-copy wire path; without
// -race it still checks the multi-worker TCP stack commits correctly.
func TestReplicatedLogTCPWorkersArenaLifetime(t *testing.T) {
	log, err := shiftgears.NewReplicatedLog(shiftgears.LogConfig{
		Algorithm: shiftgears.Exponential,
		N:         7, T: 2,
		Slots: 14, Window: 4, BatchSize: 2, Workers: 4,
		Fabric: "tcp",
	})
	if err != nil {
		t.Fatal(err)
	}
	const cmds = 28
	for i := 0; i < cmds; i++ {
		if err := log.Submit(i%7, shiftgears.Value(1+i%255)); err != nil {
			t.Fatal(err)
		}
	}
	res, err := log.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Agreement || res.Committed != cmds {
		t.Fatalf("agreement=%v committed=%d want %d", res.Agreement, res.Committed, cmds)
	}
}

// TestReplicatedLogMixedAlgorithms shifts gears across the log itself:
// different slots run different algorithms (with different round counts),
// and the pipeline staggers them correctly.
func TestReplicatedLogMixedAlgorithms(t *testing.T) {
	algs := []shiftgears.Algorithm{
		shiftgears.Exponential, shiftgears.PSL, shiftgears.PhaseQueen,
		shiftgears.Multivalued, shiftgears.Exponential, shiftgears.PhaseQueen,
	}
	log, err := shiftgears.NewReplicatedLog(shiftgears.LogConfig{
		SlotAlgorithm: func(slot int) shiftgears.Algorithm { return algs[slot] },
		Algorithm:     shiftgears.Exponential, // unused when SlotAlgorithm is set
		N:             5, T: 1,
		Slots: 6, Window: 2, BatchSize: 2,
		Faulty: []int{4},
	})
	if err != nil {
		t.Fatal(err)
	}
	for receiver := 0; receiver < 4; receiver++ {
		if err := log.Submit(receiver, shiftgears.Value(100+receiver)); err != nil {
			t.Fatal(err)
		}
	}
	res, err := log.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Agreement || len(res.Entries) != 6 {
		t.Fatalf("agreement=%v slots=%d", res.Agreement, len(res.Entries))
	}
	// Slots 0..3 are sourced by correct replicas 0..3: each must commit
	// its receiver's command.
	for slot := 0; slot < 4; slot++ {
		e := res.Entries[slot]
		if len(e.Commands) != 1 || e.Commands[0] != shiftgears.Value(100+slot) {
			t.Fatalf("slot %d committed %v, want [%d]", slot, e.Commands, 100+slot)
		}
	}
}

func TestReplicatedLogValidation(t *testing.T) {
	if _, err := shiftgears.NewReplicatedLog(shiftgears.LogConfig{N: 4, T: 1}); err == nil {
		t.Error("zero slots accepted")
	}
	if _, err := shiftgears.NewReplicatedLog(shiftgears.LogConfig{N: 4, T: 1, Slots: 2}); err == nil {
		t.Error("missing algorithm accepted")
	}
	if _, err := shiftgears.NewReplicatedLog(shiftgears.LogConfig{
		Algorithm: shiftgears.Exponential, N: 4, T: 1, Slots: 2, Faulty: []int{9},
	}); err == nil {
		t.Error("out-of-range faulty id accepted")
	}
	if _, err := shiftgears.NewReplicatedLog(shiftgears.LogConfig{
		Algorithm: shiftgears.Exponential, N: 4, T: 1, Slots: 2, Faulty: []int{1}, Strategy: "bogus",
	}); err == nil {
		t.Error("unknown strategy accepted")
	}
	log, err := shiftgears.NewReplicatedLog(shiftgears.LogConfig{
		Algorithm: shiftgears.Exponential, N: 4, T: 1, Slots: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := log.Submit(9, 1); err == nil {
		t.Error("out-of-range receiver accepted")
	}
	if _, err := log.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := log.Run(); err == nil {
		t.Error("second Run accepted")
	}
}

// TestReplicatedLogChaosFabric is the chaos acceptance run at the public
// API: a seeded mem-fabric plan drops frames from one victim and
// partitions it away for a window that heals mid-log. Every slot still
// commits, the unaffected correct replicas agree, and the victim is
// reported rather than silently trusted.
func TestReplicatedLogChaosFabric(t *testing.T) {
	cfg := shiftgears.LogConfig{
		Algorithm: shiftgears.Exponential,
		N:         7, T: 2,
		Slots: 14, Window: 4, BatchSize: 2,
		Fabric: "mem",
		Chaos: &shiftgears.Chaos{
			Seed:    1,
			Victims: []int{5},
			Drop:    0.3,
			Partitions: []shiftgears.ChaosPartition{
				{From: 4, Until: 10, Group: []int{5}},
			},
		},
	}
	l, err := shiftgears.NewReplicatedLog(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 28; c++ {
		if err := l.Submit(c%7, shiftgears.Value(1+c%255)); err != nil {
			t.Fatal(err)
		}
	}
	res, err := l.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Agreement {
		t.Fatal("unaffected correct replicas committed diverging logs under chaos")
	}
	if len(res.Entries) != cfg.Slots {
		t.Fatalf("committed %d slots under chaos, want %d", len(res.Entries), cfg.Slots)
	}
	if len(res.ChaosVictims) != 1 || res.ChaosVictims[0] != 5 {
		t.Fatalf("ChaosVictims = %v, want [5]", res.ChaosVictims)
	}
	// Slots sourced outside the victim must carry their commands despite
	// the ambient chaos.
	for _, e := range res.Entries {
		if e.Source != 5 && len(e.Commands) == 0 {
			t.Fatalf("slot %d (source %d) lost its commands to chaos aimed at node 5", e.Slot, e.Source)
		}
	}
}

// TestReplicatedLogFabricValidation pins the fabric-selection rules.
func TestReplicatedLogFabricValidation(t *testing.T) {
	base := shiftgears.LogConfig{Algorithm: shiftgears.Exponential, N: 4, T: 1, Slots: 2}

	cfg := base
	cfg.Fabric = "carrier-pigeon"
	if _, err := shiftgears.NewReplicatedLog(cfg); err == nil {
		t.Error("unknown fabric accepted")
	}
	cfg = base
	cfg.TCP = true
	cfg.Fabric = "mem"
	if _, err := shiftgears.NewReplicatedLog(cfg); err == nil {
		t.Error("TCP + Fabric=mem conflict accepted")
	}
	cfg = base
	cfg.Chaos = &shiftgears.Chaos{Seed: 1}
	if _, err := shiftgears.NewReplicatedLog(cfg); err == nil {
		t.Error("Chaos without the mem fabric accepted")
	}
	cfg = base
	cfg.Fabric = "mem"
	cfg.Chaos = &shiftgears.Chaos{Victims: []int{0, 1, 2, 3}, Drop: 0.5}
	if _, err := shiftgears.NewReplicatedLog(cfg); err == nil {
		t.Error("chaos plan covering every replica accepted")
	}
	cfg = base
	cfg.Fabric = "mem"
	cfg.GearPolicy = shiftgears.GearPolicyWithBase(shiftgears.Blacklist{}, shiftgears.Exponential)
	cfg.Algorithm = 0
	cfg.Chaos = &shiftgears.Chaos{Victims: []int{1}, Drop: 0.5}
	if _, err := shiftgears.NewReplicatedLog(cfg); err == nil {
		t.Error("gear-scheduled log with an honest chaos victim accepted")
	}
	// The same victim Byzantine-configured is fine: its gear handling
	// already runs on shadow state.
	cfg.Faulty = []int{1}
	if _, err := shiftgears.NewReplicatedLog(cfg); err != nil {
		t.Errorf("gear-scheduled log with a Byzantine chaos victim rejected: %v", err)
	}
	// Fabric "mem" with no plan is the zero-fault chaos fabric.
	cfg = base
	cfg.Fabric = "mem"
	log, err := shiftgears.NewReplicatedLog(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res, err := log.Run(); err != nil || !res.Agreement {
		t.Fatalf("zero-fault mem run: res=%+v err=%v", res, err)
	}
}
