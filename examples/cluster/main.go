// Cluster runs Byzantine agreement over a real loopback TCP mesh — every
// message crosses an actual socket — using the same replicas as the
// in-process engine. For a multi-process (or multi-machine) deployment of
// the same thing, see cmd/node.
package main

import (
	"fmt"
	"log"

	"shiftgears"
	"shiftgears/internal/adversary"
	"shiftgears/internal/core"
	"shiftgears/internal/sim"
	"shiftgears/internal/transport"
)

func main() {
	const (
		n = 13
		t = 4
		b = 3
	)
	plan, err := core.NewPlan(core.Hybrid, n, t, b, 0)
	if err != nil {
		log.Fatal(err)
	}
	env, err := core.NewEnv(plan)
	if err != nil {
		log.Fatal(err)
	}
	strat, err := adversary.New("splitbrain", plan.TotalRounds)
	if err != nil {
		log.Fatal(err)
	}

	faulty := map[int]bool{0: true, 3: true, 6: true, 9: true}
	procs := make([]sim.Processor, n)
	reps := make([]*core.Replica, n)
	for id := 0; id < n; id++ {
		rep, err := core.NewReplica(env, id, shiftgears.Value(1), nil)
		if err != nil {
			log.Fatal(err)
		}
		reps[id] = rep
		if faulty[id] {
			procs[id] = adversary.NewProcessor(rep, strat, 7, n)
		} else {
			procs[id] = rep
		}
	}

	cluster, err := transport.NewCluster(procs)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	fmt.Printf("running the hybrid algorithm (n=%d, t=%d, b=%d) over %d TCP nodes,\n", n, t, b, n)
	fmt.Printf("with a split-brain source and three colluders...\n\n")
	stats, err := cluster.Run(plan.TotalRounds)
	if err != nil {
		log.Fatal(err)
	}

	var common shiftgears.Value
	first := true
	agreed := true
	for id, rep := range reps {
		if faulty[id] {
			continue
		}
		v, ok := rep.Decided()
		if !ok {
			log.Fatalf("node %d did not decide", id)
		}
		if first {
			common, first = v, false
		} else if v != common {
			agreed = false
		}
	}
	fmt.Printf("agreement over real sockets: %v (decision %d)\n", agreed, common)
	fmt.Printf("rounds: %d, max message: %dB, node-0 traffic: %d messages / %d bytes\n",
		stats.Rounds, stats.MaxPayload, stats.Messages, stats.Bytes)
	fmt.Println("\nSame replicas, same guarantees as the in-process engine — the lockstep")
	fmt.Println("barrier over TCP realizes the paper's synchronous model on real I/O.")
}
