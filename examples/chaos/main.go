// Chaos drives the replicated log over the fault-injecting in-memory
// fabric: the same engine, the same drive loop, but the network drops a
// victim's frames and partitions it away for a window that heals mid-log
// — the adverse schedules DBFT- and King–Saia-style evaluations run
// agreement under. The run demonstrates the fault-model boundary the
// paper draws: as long as the apparently-faulty set (chaos victims plus
// Byzantine replicas) stays within the resilience t, every slot still
// commits and the unaffected replicas agree byte for byte; the victim's
// own log is degraded and excluded, exactly like a faulty processor's.
//
// The plan is seeded and per-link deterministic, so this adverse run is
// exactly reproducible — rerun it and the same frames drop at the same
// ticks.
package main

import (
	"fmt"
	"log"

	"shiftgears"
)

func main() {
	const (
		n      = 7
		t      = 2
		slots  = 14
		victim = 5
	)

	// Node 5 is honest but unlucky: 30% of its outbound frames drop, and
	// ticks 4-9 it is partitioned away entirely. One Byzantine replica
	// (node 2) misbehaves at the payload layer at the same time — chaos
	// at the network layer composes with the paper's adversary, and
	// together they stay within t = 2.
	chaos := &shiftgears.Chaos{
		Seed:    1,
		Victims: []int{victim},
		Drop:    0.3,
		Partitions: []shiftgears.ChaosPartition{
			{From: 4, Until: 10, Group: []int{victim}},
		},
	}

	rlog, err := shiftgears.NewReplicatedLog(shiftgears.LogConfig{
		Algorithm: shiftgears.Exponential,
		N:         n, T: t,
		Slots: slots, Window: 4, BatchSize: 2,
		Faulty: []int{2}, Strategy: "splitbrain", Seed: 7,
		Fabric: "mem",
		Chaos:  chaos,
	})
	if err != nil {
		log.Fatal(err)
	}
	for c := 0; c < 28; c++ {
		if err := rlog.Submit(c%n, shiftgears.Value(1+c)); err != nil {
			log.Fatal(err)
		}
	}

	res, err := rlog.Run()
	if err != nil {
		log.Fatal(err)
	}
	if !res.Agreement {
		log.Fatal("chaos broke agreement among unaffected correct replicas")
	}
	if len(res.Entries) != slots {
		log.Fatalf("committed %d of %d slots", len(res.Entries), slots)
	}

	fmt.Printf("chaos fabric: %d slots committed in %d ticks, %d commands survived\n",
		len(res.Entries), res.Ticks, res.Committed)
	fmt.Printf("chaos victims %v excluded from the agreement check (Byzantine: [2])\n",
		res.ChaosVictims)
	for _, e := range res.Entries {
		marker := ""
		switch {
		case e.Source == victim:
			marker = "  <- chaos victim's slot: whatever survived its links"
		case e.Source == 2:
			marker = "  <- Byzantine source: burned"
		}
		fmt.Printf("  slot %2d (source %d) committed %v%s\n", e.Slot, e.Source, e.Commands, marker)
	}
	fmt.Println("every slot committed; the fault model held with chaos inside the bound")
}
