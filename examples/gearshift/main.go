// Gearshift demonstrates the paper's thesis — changing algorithms on the
// fly as faults are discovered — applied to the replicated log: the same
// Byzantine workload is run on a static Hybrid log and on two gear
// policies that pick each slot's algorithm at the moment the slot enters
// the pipeline window, from what the committed prefix has revealed.
//
//   - Downshift starts in Hybrid (7 rounds per slot at n=13, t=3, b=3)
//     and drops to Algorithm B (4 rounds) once a burned slot convicts a
//     source.
//   - Blacklist keeps Hybrid but gives convicted sources one-round no-op
//     slots thereafter — "a node caught cheating is ignored".
//
// All three logs commit the same commands; the geared ones finish in
// fewer synchronous ticks. The program fails loudly if agreement breaks,
// the logs diverge, or the gears save nothing.
package main

import (
	"fmt"
	"log"

	"shiftgears"
)

const (
	n, t, b       = 13, 3, 3
	slots         = 39
	window, batch = 4, 2
	commands      = 52
)

var faulty = []int{2, 5, 8} // t faulty sources, omission-style

func runLog(policy shiftgears.GearPolicy) *shiftgears.LogResult {
	cfg := shiftgears.LogConfig{
		N: n, T: t, B: b,
		Slots: slots, Window: window, BatchSize: batch,
		Faulty: faulty, Strategy: "silent", Seed: 7,
	}
	if policy == nil {
		cfg.Algorithm = shiftgears.Hybrid
	} else {
		cfg.GearPolicy = policy
	}
	l, err := shiftgears.NewReplicatedLog(cfg)
	if err != nil {
		log.Fatal(err)
	}
	// Saturated workload: every replica keeps commands queued, so an
	// all-no-op slot convicts its source (the built-in policies' rule).
	for c := 0; c < commands; c++ {
		if err := l.Submit(c%n, shiftgears.Value(1+c%255)); err != nil {
			log.Fatal(err)
		}
	}
	res, err := l.Run()
	if err != nil {
		log.Fatal(err)
	}
	if !res.Agreement {
		log.Fatal("correct replicas committed diverging logs")
	}
	return res
}

// gearRounds is an algorithm's per-slot round count at this cluster's
// parameters, straight from the compiled slot protocol.
func gearRounds(alg shiftgears.Algorithm) int {
	p, err := shiftgears.SlotProtocol(alg, n, t, b, 0)
	if err != nil {
		log.Fatal(err)
	}
	return p.Rounds()
}

func main() {
	fmt.Printf("replicated log: n=%d t=%d b=%d, %d slots, window %d, batch %d, faulty sources %v (silent)\n\n",
		n, t, b, slots, window, batch, faulty)

	static := runLog(nil)
	fmt.Printf("static hybrid:  %3d ticks   gears %s\n", static.Ticks, shiftgears.GearRuns(static.Gears))

	blacklist := runLog(shiftgears.Blacklist{})
	fmt.Printf("blacklist:      %3d ticks   gears %s\n", blacklist.Ticks, shiftgears.GearRuns(blacklist.Gears))

	downshift := runLog(shiftgears.Downshift{})
	fmt.Printf("downshift:      %3d ticks   gears %s\n\n", downshift.Ticks, shiftgears.GearRuns(downshift.Gears))

	// The gear shift must not change WHAT commits — only how fast. Every
	// slot must carry the same commands in all three logs.
	for slot := range static.Entries {
		s, bl, ds := static.Entries[slot], blacklist.Entries[slot], downshift.Entries[slot]
		if len(s.Commands) != len(bl.Commands) || len(s.Commands) != len(ds.Commands) {
			log.Fatalf("slot %d commits diverge across policies: %v / %v / %v",
				slot, s.Commands, bl.Commands, ds.Commands)
		}
		for i := range s.Commands {
			if s.Commands[i] != bl.Commands[i] || s.Commands[i] != ds.Commands[i] {
				log.Fatalf("slot %d command %d diverges across policies", slot, i)
			}
		}
	}
	if blacklist.Ticks >= static.Ticks || downshift.Ticks >= static.Ticks {
		log.Fatalf("gears saved nothing: static %d, blacklist %d, downshift %d",
			static.Ticks, blacklist.Ticks, downshift.Ticks)
	}

	// Narrate the shifts the policies actually made.
	for slot, g := range downshift.Gears {
		if g != downshift.Gears[0] {
			fmt.Printf("downshift: slot %d entered the window after a burned slot convicted a source\n", slot)
			fmt.Printf("           → shifted %s (%d rounds) down to %s (%d rounds) for the rest of the log\n",
				downshift.Gears[0], gearRounds(downshift.Gears[0]), g, gearRounds(g))
			break
		}
	}
	noops := 0
	for _, g := range blacklist.Gears {
		if g == shiftgears.NoOpSlot {
			noops++
		}
	}
	fmt.Printf("blacklist: %d convicted-source slots ran as one-round no-ops instead of %d-round hybrid\n",
		noops, gearRounds(shiftgears.Hybrid))
	fmt.Printf("\nsame committed commands in every slot; ticks: static %d → blacklist %d → downshift %d\n",
		static.Ticks, blacklist.Ticks, downshift.Ticks)
}
