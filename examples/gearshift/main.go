// Gearshift traces the hybrid algorithm's mid-execution algorithm changes —
// the paper's Figure 3 schedule — on a live adversarial run, and shows the
// round advantage over running Algorithm A alone at the same resilience.
package main

import (
	"fmt"
	"log"

	"shiftgears"
)

func main() {
	const (
		n = 16
		t = 5
		b = 3
	)
	faulty := []int{0, 3, 6, 9, 12} // t faults, source included

	hybrid, err := shiftgears.Run(shiftgears.Config{
		Algorithm: shiftgears.Hybrid, N: n, T: t, B: b,
		SourceValue: 1, Faulty: faulty, Strategy: "splitbrain",
		CollectEvents: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	pureA, err := shiftgears.Run(shiftgears.Config{
		Algorithm: shiftgears.AlgorithmA, N: n, T: t, B: b,
		SourceValue: 1, Faulty: faulty, Strategy: "splitbrain",
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("hybrid(n=%d, t=%d, b=%d) under a split-brain source + %d colluders\n\n", n, t, b, t-1)

	// Reconstruct the gear shifts from processor 1's event log.
	fmt.Println("processor 1's execution:")
	for _, ev := range hybrid.Events {
		if ev.PID != 1 {
			continue
		}
		switch ev.Kind.String() {
		case "root":
			fmt.Printf("  round %2d  stored the source's value %d — Algorithm A, first gear\n", ev.Round, ev.Target)
		case "shift":
			fmt.Printf("  round %2d  shift: tree(s) = %s(s) = %d, tree collapses to the root\n", ev.Round, ev.Note, ev.Target)
		case "phase":
			fmt.Printf("  round %2d  *** GEAR CHANGE: %s with preferred value %d ***\n", ev.Round, ev.Note, ev.Target)
		case "discover":
			fmt.Printf("  round %2d  discovered p%d faulty (%s) — its messages are masked from now on\n", ev.Round, ev.Target, ev.Note)
		case "decide":
			fmt.Printf("  round %2d  DECIDE %d\n", ev.Round, ev.Target)
		}
	}

	fmt.Printf("\nagreement=%v validity=%v decision=%d\n", hybrid.Agreement, hybrid.Validity, hybrid.DecisionValue)
	fmt.Printf("\nrounds: hybrid %d vs pure Algorithm A %d — %d round(s) saved at identical\n",
		hybrid.Rounds, pureA.Rounds, pureA.Rounds-hybrid.Rounds)
	fmt.Printf("resilience (⌊(n−1)/3⌋ = %d) and message budget (max %dB vs %dB)\n",
		(n-1)/3, hybrid.MaxMessageBytes, pureA.MaxMessageBytes)
}
