// Adversaries sweeps the whole Byzantine strategy library against
// Algorithm B and prints, for each strategy, whether agreement and validity
// held, how fast the faults were globally detected, and how the Fault
// Discovery Rule saw through each kind of lie.
package main

import (
	"fmt"
	"log"
	"sort"

	"shiftgears"
)

func main() {
	const (
		n = 17
		t = 4
		b = 3
	)
	strategies := []string{
		"silent", "crash", "omit", "garbage", "splitbrain",
		"flip", "noise", "sleeper", "seesaw", "collude",
	}
	faulty := []int{0, 4, 8, 12} // the source and three colluders

	fmt.Printf("Algorithm B(b=%d), n=%d, t=%d, faulty=%v (source included)\n\n", b, n, t, faulty)
	fmt.Printf("%-11s %-6s %-6s %-8s %s\n", "strategy", "agree", "valid", "decision", "global detections (processor@round)")
	for _, strat := range strategies {
		res, err := shiftgears.Run(shiftgears.Config{
			Algorithm: shiftgears.AlgorithmB, N: n, T: t, B: b,
			SourceValue: 1, Faulty: faulty, Strategy: strat,
		})
		if err != nil {
			log.Fatal(err)
		}
		ids := make([]int, 0, len(res.GlobalDetections))
		for id := range res.GlobalDetections {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		detections := ""
		for _, id := range ids {
			detections += fmt.Sprintf("p%d@r%d ", id, res.GlobalDetections[id])
		}
		if detections == "" {
			detections = "none (lies were consistent or silent — indistinguishable from crashes)"
		}
		fmt.Printf("%-11s %-6v %-6v %-8d %s\n", strat, res.Agreement, res.Validity, res.DecisionValue, detections)
	}

	fmt.Println("\nEvery strategy row must show agree=true: the paper's guarantees do not")
	fmt.Println("depend on *how* the t processors misbehave. Equivocators (splitbrain,")
	fmt.Println("noise, collude) get caught by the Fault Discovery Rule and masked;")
	fmt.Println("consistent or silent liars never trigger it — and never need to.")
}
