// Replicatedlog shows the classic downstream use of Byzantine agreement —
// state-machine replication — on the real engine: shiftgears.ReplicatedLog
// pipelines the log's slots (window 4) and batches commands (3 per slot),
// so seven bank replicas commit a whole client workload in a fraction of
// the rounds the one-agreement-per-command loop would need. Each slot is
// sourced by a rotating replica; two replicas — sometimes including the
// slot's source — are Byzantine, and every correct replica still applies
// the same commands in the same order.
package main

import (
	"fmt"
	"log"

	"shiftgears"
)

// command encodes a tiny banking operation in one value byte:
// upper nibble = account (0..15), lower nibble = amount (0..15).
// Value 0 (the agreement default) is the no-op: Byzantine slots that fail
// to propose anything coherent burn their slot harmlessly.
type command = shiftgears.Value

func deposit(account, amount int) command {
	return command(account<<4 | amount)
}

func main() {
	const (
		n     = 7
		t     = 2
		slots = 14
	)
	byzantine := map[int]bool{2: true, 5: true}

	// Each replica maintains its own balances, fed by the engine's apply
	// callback as entries commit.
	balances := make([][]int, n)
	for i := range balances {
		balances[i] = make([]int, 16)
	}

	rlog, err := shiftgears.NewReplicatedLog(shiftgears.LogConfig{
		Algorithm: shiftgears.Exponential,
		N:         n, T: t,
		Slots: slots, Window: 4, BatchSize: 3,
		Faulty:   []int{2, 5},
		Strategy: "splitbrain",
		Seed:     7,
	}, shiftgears.WithLogApply(func(replica int, e shiftgears.LogEntry) {
		for _, c := range e.Commands {
			balances[replica][int(c)>>4] += int(c) & 0x0f
		}
	}))
	if err != nil {
		log.Fatal(err)
	}

	// The client workload: which replica received which command. Replicas
	// 2 and 5 receive requests too — they are Byzantine, so those
	// commands may be burned (the clients would retry elsewhere).
	requests := []struct {
		receiver int
		cmd      command
	}{
		{0, deposit(1, 5)},
		{1, deposit(1, 3)},
		{2, deposit(2, 9)}, // received by a Byzantine replica!
		{3, deposit(2, 1)},
		{4, deposit(3, 7)},
		{5, deposit(1, 2)}, // Byzantine again
		{6, deposit(3, 4)},
		{0, deposit(4, 6)},
		{3, deposit(4, 1)},
		{6, deposit(1, 1)},
	}
	for _, req := range requests {
		if err := rlog.Submit(req.receiver, req.cmd); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Printf("replicated bank over pipelined Byzantine agreement (n=%d, t=%d, replicas 2 and 5 Byzantine)\n\n", n, t)
	res, err := rlog.Run()
	if err != nil {
		log.Fatal(err)
	}
	if !res.Agreement {
		log.Fatal("correct replicas committed diverging logs — agreement broken!")
	}

	for _, e := range res.Entries {
		status := fmt.Sprintf("committed %v", e.Commands)
		if len(e.Commands) == 0 {
			status = "no-op (empty or burned batch)"
		}
		marker := ""
		if byzantine[e.Source] {
			marker = "  [Byzantine source]"
		}
		fmt.Printf("slot %2d: source=replica %d  -> %s%s\n", e.Slot, e.Source, status, marker)
	}

	fmt.Printf("\n%d commands committed in %d ticks; one agreement per command would need %d ticks (%.1fx speedup)\n",
		res.Committed, res.Ticks, res.SequentialTicks, float64(res.SequentialTicks)/float64(res.Ticks))

	// Every correct replica must hold identical balances.
	fmt.Println("\nfinal balances at each correct replica (account: amount):")
	ref := ""
	for id := 0; id < n; id++ {
		if byzantine[id] {
			continue
		}
		line := ""
		for acct, bal := range balances[id] {
			if bal != 0 {
				line += fmt.Sprintf(" a%d:%d", acct, bal)
			}
		}
		fmt.Printf("  replica %d:%s\n", id, line)
		if ref == "" {
			ref = line
		} else if line != ref {
			log.Fatal("replica state divergence — agreement broken!")
		}
	}
	fmt.Println("\nall correct replicas agree on every slot, hence on the full state —")
	fmt.Println("even slots whose source equivocated commit one common batch (often the no-op).")
}
