// Replicatedlog shows the classic downstream use of Byzantine agreement:
// state-machine replication. Seven bank replicas apply a log of client
// commands; each log slot is one Byzantine-agreement instance whose source
// is the replica that received the command (rotating), so every replica
// applies the same commands in the same order even though two replicas —
// sometimes including the slot's source — are Byzantine.
package main

import (
	"fmt"
	"log"

	"shiftgears"
)

// command encodes a tiny banking operation in one value byte:
// upper nibble = account (0..15), lower nibble = amount (0..15).
// Value 0 (the agreement default) is the no-op: Byzantine slots that fail
// to propose anything coherent burn their slot harmlessly.
type command = shiftgears.Value

func deposit(account, amount int) command {
	return command(account<<4 | amount)
}

func apply(balances []int, c command) {
	if c == 0 {
		return // no-op slot
	}
	balances[int(c)>>4] += int(c) & 0x0f
}

func main() {
	const (
		n = 7
		t = 2
	)
	byzantine := map[int]bool{2: true, 5: true}

	// The client workload: which replica received which command.
	type request struct {
		receiver int
		cmd      command
	}
	requests := []request{
		{0, deposit(1, 5)},
		{1, deposit(1, 3)},
		{2, deposit(2, 9)}, // received by a Byzantine replica!
		{3, deposit(2, 1)},
		{4, deposit(3, 7)},
		{5, deposit(1, 2)}, // Byzantine again
		{6, deposit(3, 4)},
	}

	// Each replica maintains its own balances and applies the agreed value
	// of every slot.
	balances := make([][]int, n)
	for i := range balances {
		balances[i] = make([]int, 16)
	}

	fmt.Printf("replicated bank over Byzantine agreement (n=%d, t=%d, replicas 2 and 5 Byzantine)\n\n", n, t)
	for slot, req := range requests {
		var faulty []int
		for id := range byzantine {
			faulty = append(faulty, id)
		}
		res, err := shiftgears.Run(shiftgears.Config{
			Algorithm:   shiftgears.Exponential,
			N:           n,
			T:           t,
			Source:      req.receiver,
			SourceValue: req.cmd,
			Faulty:      faulty,
			Strategy:    "splitbrain",
			Seed:        int64(slot),
		})
		if err != nil {
			log.Fatal(err)
		}
		if !res.Agreement {
			log.Fatalf("slot %d lost agreement", slot)
		}
		for id := 0; id < n; id++ {
			if !byzantine[id] {
				apply(balances[id], res.DecisionValue)
			}
		}
		status := "committed"
		if res.DecisionValue != req.cmd {
			status = fmt.Sprintf("replaced by agreed value %d (source %d is Byzantine)", res.DecisionValue, req.receiver)
		}
		fmt.Printf("slot %d: source=replica %d  cmd=%3d  -> %s\n", slot, req.receiver, req.cmd, status)
	}

	// Every correct replica must hold identical balances.
	fmt.Println("\nfinal balances at each correct replica (account: amount):")
	ref := ""
	for id := 0; id < n; id++ {
		if byzantine[id] {
			continue
		}
		line := ""
		for acct, bal := range balances[id] {
			if bal != 0 {
				line += fmt.Sprintf(" a%d:%d", acct, bal)
			}
		}
		fmt.Printf("  replica %d:%s\n", id, line)
		if ref == "" {
			ref = line
		} else if line != ref {
			log.Fatal("replica state divergence — agreement broken!")
		}
	}
	fmt.Println("\nall correct replicas agree on every slot, hence on the full state —")
	fmt.Println("even for slots whose source equivocated (those commit a common no-op).")
}
