// Vector demonstrates interactive consistency — the original goal of
// Pease, Shostak, and Lamport that the paper's introduction builds on: all
// correct processors agree on the entire vector of initial values, by
// running one broadcast-agreement instance per processor over the same
// synchronous rounds. Reducing the agreed vector yields multi-valued
// consensus with each processor contributing its own input.
package main

import (
	"fmt"
	"log"

	"shiftgears"
)

func main() {
	// Seven database replicas vote on which snapshot id to compact to.
	// Replicas 1 and 4 are compromised and equivocate.
	votes := []shiftgears.Value{12, 99, 12, 12, 7, 12, 11}
	faulty := []int{1, 4}

	res, err := shiftgears.RunVector(shiftgears.VectorConfig{
		Algorithm: shiftgears.Exponential,
		N:         7,
		T:         2,
		Inputs:    votes,
		Faulty:    faulty,
		Strategy:  "splitbrain",
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("vector agreement: %v (every correct replica holds the same 7 slots)\n", res.Agreement)
	fmt.Printf("slot validity:    %v (correct replicas' slots equal their votes)\n\n", res.SlotValidity)
	fmt.Println("agreed vote vector:")
	for id, v := range res.AgreedVector {
		marker := ""
		if id == 1 || id == 4 {
			marker = "  <- Byzantine: slot agreed anyway (any common value is fine)"
		}
		fmt.Printf("  replica %d voted %3d%s\n", id, v, marker)
	}
	fmt.Printf("\nconsensus (most frequent vote): compact to snapshot %d\n", res.Consensus)
	fmt.Printf("cost: %d rounds, max message %d bytes (n instances multiplexed per round)\n",
		res.Rounds, res.MaxMessageBytes)
}
