// Quickstart: reach Byzantine agreement among 13 processors, 4 of which —
// including the source — are two-faced, using the paper's hybrid algorithm
// (start in Algorithm A, shift into B, finish in C).
package main

import (
	"fmt"
	"log"

	"shiftgears"
)

func main() {
	res, err := shiftgears.Run(shiftgears.Config{
		Algorithm:   shiftgears.Hybrid,
		N:           13,
		T:           4,
		B:           3,
		SourceValue: 1,
		Faulty:      []int{0, 2, 5, 9}, // processor 0 is the source
		Strategy:    "splitbrain",
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("agreement: %v, validity: %v\n", res.Agreement, res.Validity)
	fmt.Printf("decision:  %d (source equivocated, so any common value is correct)\n", res.DecisionValue)
	fmt.Printf("rounds:    %d — exactly the Main Theorem's k_AB+k_BC+t−t_AC+1\n", res.Rounds)
	fmt.Printf("messages:  max %d bytes (the O(n^b) budget; the pure Exponential\n", res.MaxMessageBytes)
	fmt.Printf("           Algorithm would have needed %d-value messages at t=4)\n", 12*11*10)
	fmt.Printf("faults globally detected (processor → round): %v\n", res.GlobalDetections)
}
