// Tradeoff sweeps the block parameter b and prints the rounds-versus-
// message-length trade-off of Theorems 2 and 3 — the curve the paper shares
// with Coan's families — together with the local-computation comparison
// that motivates the paper: polynomial here, exponential for Coan.
package main

import (
	"fmt"
	"log"

	"shiftgears"
	"shiftgears/internal/baseline"
)

func main() {
	const t = 5

	fmt.Println("Algorithm A (n = 3t+1): optimal resilience")
	printSweep(shiftgears.AlgorithmA, 3*t+1, t, 3)

	fmt.Println("\nAlgorithm B (n = 4t+1): fewer rounds, more processors")
	printSweep(shiftgears.AlgorithmB, 4*t+1, t, 2)

	fmt.Println("\nAlgorithm A at fixed b = 3, growing t: the Coan separation")
	fmt.Printf("%3s %4s %8s %14s %18s %18s\n", "t", "n", "rounds", "max msg (B)", "ops/processor", "Coan model ops")
	for _, tt := range []int{4, 5, 6, 7, 8} {
		n := 3*tt + 1
		res, err := shiftgears.Run(shiftgears.Config{
			Algorithm: shiftgears.AlgorithmA, N: n, T: tt, B: 3, SourceValue: 1,
		})
		if err != nil {
			log.Fatal(err)
		}
		coan := baseline.CoanModel(n, tt, 3)
		fmt.Printf("%3d %4d %8d %14d %18d %18.0f\n",
			tt, n, res.Rounds, res.MaxMessageBytes,
			(res.ResolveOps+res.DiscoveryReads)/(n-1), coan.LocalOps)
	}

	fmt.Println("\nReading the curves: growing b buys rounds (towards the optimal t+1) and")
	fmt.Println("pays in message length (O(n^b)) — the same trade-off as Coan's families.")
	fmt.Println("But at fixed b and growing t, our per-processor work stays polynomial")
	fmt.Println("while the Coan model's O(n^t) local simulation explodes. That gap is the")
	fmt.Println("paper's contribution over Coan (Section 1).")
}

func printSweep(alg shiftgears.Algorithm, n, t, minB int) {
	fmt.Printf("%3s %8s %14s %18s\n", "b", "rounds", "max msg (B)", "ops/processor")
	for b := minB; b <= t; b++ {
		res, err := shiftgears.Run(shiftgears.Config{
			Algorithm: alg, N: n, T: t, B: b, SourceValue: 1,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%3d %8d %14d %18d\n",
			b, res.Rounds, res.MaxMessageBytes, (res.ResolveOps+res.DiscoveryReads)/(n-1))
	}
}
