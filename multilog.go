package shiftgears

// The sharded multi-log: many gear-shifted replicated logs side by side.
// One ReplicatedLog is one n-node agreement group with a hard throughput
// ceiling (BENCH_7's 9.14 cmds/tick at n=7 w=8 b=4, on sim and tcp
// alike); a MultiLog partitions the command space across K independent
// groups — each with its own fabric instance, gear policy, and
// window/batch settings — and drives them concurrently, so aggregate
// cmds/tick scales ~linearly with K. The router, the drive harness, and
// the cross-shard ordering barrier live in internal/shard; this file
// composes them with the public log.

import (
	"fmt"

	"shiftgears/internal/shard"
)

// ShardFunc maps one command to its shard in [0, Shards). It must be a
// pure function of the command value — the same determinism contract as
// GearPolicy, for the same reason: every client, sizing tool, and replay
// must agree on where a command lives. The default (a nil ShardFunc) is
// a seeded SplitMix64 mix of the command byte.
type ShardFunc = shard.Func

// ShardOf returns the shard the default router assigns cmd to — exported
// so drivers (cmd/logload, cmd/bench) can pre-route a workload and size
// each shard's Slots before the MultiLog exists.
func ShardOf(seed uint64, shards int, cmd Value) int {
	return shard.DefaultFunc(seed, shards)(cmd)
}

// MultiLogConfig describes a sharded multi-log: K independent
// ReplicatedLogs behind a deterministic command router.
type MultiLogConfig struct {
	// Shards is K, the number of independent agreement groups (≥ 1).
	Shards int
	// Log is the per-shard configuration template: every shard gets its
	// own fabric instance, gear policy state, and replica set built from
	// it. Slots is per shard. A non-nil Tracer is shared by all shards,
	// with each shard's events stamped with its shard id (TraceEvent.
	// Shard) so one sink can tell the streams apart.
	Log LogConfig
	// PerShard, when non-nil, edits one shard's configuration after the
	// template is copied — per-shard gear policies, window/batch
	// settings, slot counts, or chaos plans. With Barrier set it is also
	// called for the meta shard, with s == Shards.
	PerShard func(s int, cfg *LogConfig)
	// ShardFunc overrides the default router (see ShardFunc).
	ShardFunc ShardFunc
	// RouterSeed seeds the default router; 0 falls back to Log.Seed. It
	// is ignored when ShardFunc is set.
	RouterSeed uint64
	// Barrier enables the cross-shard ordering barrier: an extra meta
	// shard (index Shards) sequences multi-key commands (SubmitMulti),
	// and its committed entries fence the affected shards — a fenced
	// shard's window does not open until the meta shard's log has fully
	// committed, so every meta entry orders before every entry of the
	// shards it touches.
	Barrier bool
}

// MultiLogResult reports a completed multi-log run: the per-shard
// results plus the aggregate view.
type MultiLogResult struct {
	// Shards holds each shard's LogResult, indexed by shard id; with
	// Barrier, the final entry (index Meta) is the meta shard's.
	Shards []*LogResult
	// Meta is the meta shard's index in Shards, or -1 without Barrier.
	Meta int
	// Agreement: every shard's correct replicas agreed.
	Agreement bool
	// Committed and Pending aggregate the shards' counts.
	Committed, Pending int
	// Ticks is the run's synchronous duration: shards run concurrently,
	// so it is the maximum over shards of each shard's tick count — with
	// a fenced shard charged the meta shard's ticks first, since its
	// window cannot open until the barrier lifts.
	Ticks int
	// Traffic totals across shards (each shard is its own fabric; the
	// per-fabric counters are in Shards).
	MaxMessageBytes, TotalBytes, Messages int
	// Latency merges every shard's submit→commit histogram — fixed
	// buckets make the fold a vector addition.
	Latency LatencySummary
}

// CmdsPerTick is the aggregate throughput: total committed commands over
// the concurrent duration. This is the number that should scale
// ~linearly with K on the sim fabric.
func (r *MultiLogResult) CmdsPerTick() float64 {
	if r.Ticks == 0 {
		return 0
	}
	return float64(r.Committed) / float64(r.Ticks)
}

// MultiLog is K independent gear-shifted replicated logs behind one
// deterministic command router. Submit routes each command to its shard;
// Run drives every shard concurrently (one drive goroutine per shard
// over the shard's own fabric) and merges the results.
type MultiLog struct {
	cfg    MultiLogConfig
	router *shard.Router
	logs   []*ReplicatedLog // Shards of them, +1 meta shard with Barrier
	meta   int              // index of the meta shard in logs, -1 without Barrier
	fenced []bool           // per shard: must wait for the meta shard
	ran    bool
}

// NewMultiLog validates the configuration and builds every shard's log.
// Submit (and, with Barrier, SubmitMulti) commands, then Run.
func NewMultiLog(cfg MultiLogConfig) (*MultiLog, error) {
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("shiftgears: multi-log needs at least 1 shard, have %d", cfg.Shards)
	}
	seed := cfg.RouterSeed
	if seed == 0 {
		seed = uint64(cfg.Log.Seed)
	}
	router, err := shard.NewRouter(cfg.Shards, seed, cfg.ShardFunc)
	if err != nil {
		return nil, fmt.Errorf("shiftgears: %w", err)
	}
	m := &MultiLog{cfg: cfg, router: router, meta: -1}
	total := cfg.Shards
	if cfg.Barrier {
		m.meta = cfg.Shards
		total++
	}
	m.logs = make([]*ReplicatedLog, total)
	m.fenced = make([]bool, total)
	for s := 0; s < total; s++ {
		scfg := cfg.Log
		if cfg.PerShard != nil {
			cfg.PerShard(s, &scfg)
		}
		// Every shard's events carry its shard id, so one sink (ring,
		// JSONL, metrics — and through them /debug/gears) can keep K
		// concurrent streams apart.
		scfg.Tracer = TraceWithShard(scfg.Tracer, s)
		l, err := NewReplicatedLog(scfg)
		if err != nil {
			if cfg.Barrier && s == m.meta {
				return nil, fmt.Errorf("shiftgears: meta shard: %w", err)
			}
			return nil, fmt.Errorf("shiftgears: shard %d: %w", s, err)
		}
		m.logs[s] = l
	}
	return m, nil
}

// Shards returns K (the meta shard, when present, is not counted).
func (m *MultiLog) Shards() int { return m.cfg.Shards }

// ShardOf returns the shard the router assigns cmd to.
func (m *MultiLog) ShardOf(cmd Value) (int, error) { return m.router.Route(cmd) }

// Shard exposes one shard's log (index Shards() is the meta shard when
// Barrier is set) — its replicas, their Committed channels, Pending.
func (m *MultiLog) Shard(s int) *ReplicatedLog { return m.logs[s] }

// Submit routes cmd to its shard and queues it at that shard's receiver
// replica — the replica that "received the client request"; receiver
// indexes within the shard's N replicas.
func (m *MultiLog) Submit(receiver int, cmd Value) error {
	s, err := m.router.Route(cmd)
	if err != nil {
		return fmt.Errorf("shiftgears: %w", err)
	}
	if err := m.logs[s].Submit(receiver, cmd); err != nil {
		return fmt.Errorf("shard %d: %w", s, err)
	}
	return nil
}

// SubmitMulti queues a multi-key command: cmd is sequenced through the
// meta shard (requires Barrier), and the shards owning each key are
// fenced — their windows open only after the meta shard's log has fully
// committed, so this command (and every other meta entry) orders before
// everything those shards commit. Keys route through the same router as
// Submit; a command whose keys all live in one shard does not need the
// barrier — plain Submit keeps it ordered for free.
func (m *MultiLog) SubmitMulti(receiver int, cmd Value, keys ...Value) error {
	if m.meta < 0 {
		return fmt.Errorf("shiftgears: SubmitMulti requires MultiLogConfig.Barrier")
	}
	if len(keys) == 0 {
		return fmt.Errorf("shiftgears: SubmitMulti needs at least one key")
	}
	for _, k := range keys {
		s, err := m.router.Route(k)
		if err != nil {
			return fmt.Errorf("shiftgears: %w", err)
		}
		m.fenced[s] = true
	}
	if err := m.logs[m.meta].Submit(receiver, cmd); err != nil {
		return fmt.Errorf("meta shard: %w", err)
	}
	return nil
}

// Run drives every shard concurrently — one goroutine per shard, each
// over the shard's own fabric instance through the one drive runtime —
// and merges the per-shard results. With Barrier, the meta shard runs
// first and fenced shards wait for it (see SubmitMulti); unfenced shards
// overlap it. It can run once.
func (m *MultiLog) Run() (*MultiLogResult, error) {
	if m.ran {
		return nil, fmt.Errorf("shiftgears: multi-log already ran")
	}
	m.ran = true

	results := make([]*LogResult, len(m.logs))
	errs := shard.Drive(len(m.logs), m.meta, m.fenced, func(s int) error {
		res, err := m.logs[s].Run()
		if err != nil {
			return err
		}
		results[s] = res
		return nil
	})
	for s, err := range errs {
		if err != nil {
			if s == m.meta {
				return nil, fmt.Errorf("shiftgears: meta shard: %w", err)
			}
			return nil, fmt.Errorf("shiftgears: shard %d: %w", s, err)
		}
	}

	agg := &MultiLogResult{Shards: results, Meta: m.meta, Agreement: true}
	var lat Histogram
	for s, r := range results {
		dur := r.Ticks
		if m.meta >= 0 && s != m.meta && m.fenced[s] {
			// The barrier serializes this shard behind the meta shard: its
			// first tick happened after the meta shard's last.
			dur += results[m.meta].Ticks
		}
		if dur > agg.Ticks {
			agg.Ticks = dur
		}
		if !r.Agreement {
			agg.Agreement = false
		}
		agg.Committed += r.Committed
		agg.Pending += r.Pending
		agg.Messages += r.Messages
		agg.TotalBytes += r.TotalBytes
		if r.MaxMessageBytes > agg.MaxMessageBytes {
			agg.MaxMessageBytes = r.MaxMessageBytes
		}
		lat.Merge(&m.logs[s].lat)
	}
	agg.Latency = lat.Summarize()
	return agg, nil
}
