package shiftgears_test

import (
	"testing"

	"shiftgears"
)

func TestRunVectorValidation(t *testing.T) {
	if _, err := shiftgears.RunVector(shiftgears.VectorConfig{
		Algorithm: shiftgears.PSL, N: 7, T: 2, Inputs: make([]shiftgears.Value, 7),
	}); err == nil {
		t.Error("PSL accepted for vector runs")
	}
	if _, err := shiftgears.RunVector(shiftgears.VectorConfig{
		Algorithm: shiftgears.Exponential, N: 7, T: 2, Inputs: make([]shiftgears.Value, 5),
	}); err == nil {
		t.Error("wrong input count accepted")
	}
	if _, err := shiftgears.RunVector(shiftgears.VectorConfig{
		Algorithm: shiftgears.Exponential, N: 7, T: 2,
		Inputs: make([]shiftgears.Value, 7), Faulty: []int{9},
	}); err == nil {
		t.Error("out-of-range faulty id accepted")
	}
}

func TestRunVectorInteractiveConsistency(t *testing.T) {
	inputs := []shiftgears.Value{3, 1, 4, 1, 5, 9, 2}
	res, err := shiftgears.RunVector(shiftgears.VectorConfig{
		Algorithm: shiftgears.Exponential, N: 7, T: 2,
		Inputs: inputs, Faulty: []int{1, 4}, Strategy: "splitbrain",
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Agreement || !res.SlotValidity {
		t.Fatalf("agreement=%v slotValidity=%v", res.Agreement, res.SlotValidity)
	}
	for _, id := range []int{0, 2, 3, 5, 6} {
		if res.AgreedVector[id] != inputs[id] {
			t.Errorf("slot %d = %d, want %d", id, res.AgreedVector[id], inputs[id])
		}
	}
	if len(res.Vectors) != 5 {
		t.Errorf("%d correct vectors", len(res.Vectors))
	}
	if res.Rounds != 3 {
		t.Errorf("rounds = %d, want t+1", res.Rounds)
	}
}

func TestRunVectorConsensusValidity(t *testing.T) {
	// All correct processors input 6 → consensus must be 6.
	inputs := make([]shiftgears.Value, 7)
	for i := range inputs {
		inputs[i] = 6
	}
	res, err := shiftgears.RunVector(shiftgears.VectorConfig{
		Algorithm: shiftgears.Exponential, N: 7, T: 2,
		Inputs: inputs, Faulty: []int{2, 5}, Strategy: "garbage", Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Agreement || res.Consensus != 6 {
		t.Fatalf("consensus = %d (agreement %v), want 6", res.Consensus, res.Agreement)
	}
}

func TestRunVectorParallelEngine(t *testing.T) {
	inputs := []shiftgears.Value{1, 0, 1, 0, 1, 0, 1}
	cfg := shiftgears.VectorConfig{
		Algorithm: shiftgears.Exponential, N: 7, T: 2,
		Inputs: inputs, Faulty: []int{3}, Strategy: "noise", Seed: 9,
	}
	seq, err := shiftgears.RunVector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Parallel = true
	par, err := shiftgears.RunVector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !seq.Agreement || !par.Agreement {
		t.Fatal("agreement lost")
	}
	for i := range seq.AgreedVector {
		if seq.AgreedVector[i] != par.AgreedVector[i] {
			t.Fatalf("engines diverge at slot %d", i)
		}
	}
}

func TestRunVectorWithHybrid(t *testing.T) {
	n := 10
	inputs := make([]shiftgears.Value, n)
	for i := range inputs {
		inputs[i] = shiftgears.Value(i % 2)
	}
	res, err := shiftgears.RunVector(shiftgears.VectorConfig{
		Algorithm: shiftgears.Hybrid, N: n, T: 3, B: 3,
		Inputs: inputs, Faulty: []int{0, 4, 8}, Strategy: "collude", Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Agreement || !res.SlotValidity {
		t.Fatalf("hybrid vector run: agreement=%v slotValidity=%v", res.Agreement, res.SlotValidity)
	}
}
