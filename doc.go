// Package shiftgears is a full Go reproduction of Bar-Noy, Dolev, Dwork,
// and Strong, "Shifting Gears: Changing Algorithms on the Fly to Expedite
// Byzantine Agreement" (PODC 1987; Information and Computation 97, 1992).
//
// The package runs synchronous Byzantine agreement among n processors, up
// to t of which behave arbitrarily, using any of the paper's algorithms:
//
//   - Exponential: information gathering with recursive majority voting
//     (Section 3) — t+1 rounds, exponential messages, n ≥ 3t+1.
//   - AlgorithmA: the Theorem 2 family — rounds t+2+2⌊(t−1)/(b−2)⌋,
//     messages O(n^b), n ≥ 3t+1.
//   - AlgorithmB: the Theorem 3 family — rounds t+1+⌊(t−1)/(b−1)⌋,
//     messages O(n^b), n ≥ 4t+1.
//   - AlgorithmC: the Dolev–Reischuk–Strong adaptation (Theorem 4) —
//     t+1 rounds, O(n) messages, t ≤ ⌊√(n/2)⌋.
//   - Hybrid: the Main Theorem — starts in A, shifts mid-execution into B
//     and then into C, tolerating ⌊(n−1)/3⌋ faults at near-optimal rounds.
//   - PSL: the original Pease–Shostak–Lamport oral-messages baseline.
//   - PhaseQueen: the Berman–Garay–Perry style constant-message-size
//     protocol referenced by the paper's Section 5.
//
// A minimal run:
//
//	res, err := shiftgears.Run(shiftgears.Config{
//		Algorithm:   shiftgears.Hybrid,
//		N:           13,
//		T:           4,
//		B:           3,
//		SourceValue: 1,
//		Faulty:      []int{2, 5, 7, 11},
//		Strategy:    "splitbrain",
//	})
//
// The Result reports every processor's decision, whether agreement and
// validity held, exact round counts against the paper's bounds, message
// sizes, and the fault-discovery timeline.
//
// # Multi-shot agreement: the replicated log
//
// Beyond single instances, the package serves streams of agreement as a
// replicated state machine (internal/rsm): a log of slots, each slot one
// agreement on a batch of client commands under a rotating source,
// pipelined over a shared synchronous network. Any of the algorithms
// above can run any slot:
//
//	rlog, err := shiftgears.NewReplicatedLog(shiftgears.LogConfig{
//		Algorithm: shiftgears.Exponential,
//		N:         7, T: 2,
//		Slots: 14, Window: 4, BatchSize: 3,
//		Faulty: []int{2, 5},
//	})
//	rlog.Submit(0, cmd) // queue a command at replica 0
//	res, err := rlog.Run()
//
// Window pipelines that many slots concurrently (sim.Mux multiplexes
// them over one network; over TCP, the frame header's instance id lets
// one mesh carry the whole pipeline) and BatchSize amortizes each slot's
// rounds over several commands, so throughput in commands per round
// scales with both knobs. Every correct replica commits an identical log
// even when slot sources are Byzantine. cmd/logserver deploys one
// replica per process; cmd/logload generates synthetic load and reports
// throughput; cmd/bench records the full throughput matrix as a
// BENCH_*.json trajectory file.
//
// # Many logs, one universe
//
// A single log totalizes — every command crosses every replica — so its
// throughput ceiling is one pipeline's commits per tick. MultiLog
// partitions the command space across K independent gear-shifted logs
// (internal/shard) and drives them concurrently, scaling aggregate
// commits per tick linearly in K (the bench matrix's sharded cases
// record 4.0x at K=4 on both the sim and tcp fabrics, with K=1 pricing
// exactly like the plain log). The partition itself needs no agreement:
// a pure seeded hash (ShardFunc, default splitmix64) maps each command
// to its shard, so every client and every replica computes the same
// assignment locally — the same move King and Saia's committee-sampling
// line uses to break the O(n²) bit barrier, where a shared seed replaces
// coordination about who handles what. Each shard keeps its own fabric,
// gear policy, window, and batch (MultiLogConfig.PerShard); trace events
// carry their shard id; and cross-shard ordering, when one command must
// be sequenced against shards it does not live on, is an explicit
// opt-in: SubmitMulti routes the command to a meta-shard whose
// completion fences the shards owning its keys (MultiLogConfig.Barrier).
//
// # One mux, many fabrics
//
// The pipeline runs over interchangeable substrates behind a single
// drive loop. internal/fabric splits the responsibilities:
//
//   - The runtime (fabric.Run) owns everything schedule-shaped: window
//     advance and lazy gear resolution through sim.Mux.Outboxes and
//     Deliver, cross-node frame validation, completion and divergence
//     detection, teardown on error, traffic statistics, and the
//     reusable per-tick scratch that keeps the hot path
//     allocation-free. It is the only mux drive loop in the tree.
//   - A fabric (the fabric.Fabric interface) owns one tick's message
//     motion: given every hosted node's frames it fills every hosted
//     node's inboxes and returns — the lockstep barrier. Ordering
//     within the tick is fabric business and must be invisible;
//     positional delivery, error promptness, and never deadlocking on a
//     partial failure are the fabric's obligations.
//
// Three fabrics ship: fabric.Sim (the in-process router — zero-copy
// positional routing, the reference behavior), fabric.Mem (Sim plus a
// deterministic, seeded per-link fault plan: drops and late frames on
// victim links, partitions that heal, crash windows, plus
// within-bound delay and reordering that the barrier must provably
// absorb), and transport.Mesh (a real TCP mesh — every node of the
// cluster over loopback via NewMesh, or one node per OS process via
// JoinMesh, which is how cmd/logserver deploys). Writing a new fabric
// means implementing four methods; the drive loop, gear shifting,
// abort semantics, and statistics come for free. LogConfig.Fabric
// ("sim", "mem", "tcp") and LogConfig.Chaos select the substrate at the
// public API; a zero-fault mem run is byte-identical to sim (asserted
// by the fabric-equivalence property test).
//
// # Ordering on the concurrent TCP exchange
//
// The TCP paths (transport.Node.Run and the Mesh fabric's per-tick
// exchange) overlap their send and receive halves: one writer goroutine
// per peer pushes the tick's frames while the node's reader collects,
// so the mesh cannot deadlock when a tick's payload exceeds the kernel
// socket buffers. The bytes are unchanged: within a tick each peer
// connection carries the frames in increasing instance order with a
// single flush, and tick t's writes complete before tick t+1's begin,
// so receivers read exactly the sequential loop's stream — only the
// interleaving across connections differs. The lockstep barrier (finish
// tick t only once every peer's tick-t frames arrived) is untouched.
//
// # Wire hot path
//
// The TCP exchange moves a tick without per-frame heap work, resting on
// one ownership rule that holds across the whole stack: a payload is
// valid for exactly one tick. Outbound, each writer goroutine packs its
// peer's frame headers into a contiguous scratch, points a net.Buffers
// at the headers and the payload slices in place, and issues the whole
// tick as a single vectored write (writev) — one syscall per peer per
// tick, no assembly buffer, and the one-flush-per-peer guarantee above
// becomes structural rather than a Flush discipline. Inbound, each peer
// connection owns a read arena: the reader slices every payload of the
// tick out of it and rewinds it at the next tick's start. When a tick
// outgrows the arena, a larger block is installed without copying — the
// already-handed-out payloads keep referencing the old block, which
// stays intact until the rewind.
//
// Consumers therefore must use or copy an inbound payload within the
// tick that delivered it; that is the same contract the sim.Processor
// interface already imposes (sim's router hands instances its own
// per-tick scratch) and the encode side mirrors (rsm slot payloads
// slice into per-slot arenas reset every PrepareRound). Retaining a
// payload across ticks is a use-after-rewind and shows up under the
// race detector: the reader goroutine overwrites the arena while the
// retainer reads it (see TestReplicatedLogTCPWorkersArenaLifetime).
// The one-tick rule is also enforced statically, and
// inter-procedurally: the arenalifetime analyzer in cmd/gearsvet seeds
// the payload parameters of the Exchange/Deliver/DeliverRound entry
// points and follows them through per-function escape summaries
// (internal/analysis/summary) that each vet unit exports as facts in
// its .vetx file — so a payload handed to a helper that stores it in a
// field is flagged at the entry point's call site, even when the
// helper lives in another package. Stores the engine proves
// within-tick (documented holders, fields reset at the top of the
// function, scratch refilled in place, sends on channels whose
// receivers finish with the value inside the tick) are exempt; prefer
// restructuring toward one of those proofs over adding a
// //gearsvet:allow, because a proof tracks the code and an annotation
// goes stale silently.
// Everything above the fabrics pools the rest of a slot's footprint —
// consensus instances (core.Env.GetReplica/Release), their trees and
// fault lists, and the codec scratch — so steady-state ticks on every
// fabric run within a few hundred allocations at n=7 (see the README's
// Performance section and cmd/bench's -guard gate).
//
// # Concurrency contract of the fabric layer
//
// The transport and fabric packages are the only place the tree spawns
// goroutines on the data path, and they do it under one discipline:
// every goroutine has a bounded join visible in its package (a
// Wait()ed sync.WaitGroup, a worker loop ranging over a channel the
// package closes, or a result send the package receives), a channel
// send issued inside a per-tick loop is either a select comm clause or
// aimed at a channel the package demonstrably drains, and no teardown
// path sends on a channel while holding a lock. Each rule is the
// static shadow of a failure the wire layer has actually hit — the
// distributed flush deadlock that motivated the per-peer writer pool,
// and the lock-across-send teardown hang its first implementation
// risked. The fabricconc analyzer in cmd/gearsvet enforces all three
// (go vet -vettool, see internal/analysis/fabricconc).
//
// # Gear policies: shifting algorithms across the log
//
// A LogConfig.GearPolicy makes the per-slot algorithm a runtime
// decision: each slot's gear is picked when the slot enters the pipeline
// window, as a function of the committed prefix at that tick. Downshift
// starts in a high gear and drops to a cheaper one once committed
// entries evidence enough faulty sources; Blacklist gives sources
// convicted by the prefix (a sourced slot committed all no-ops despite a
// saturated workload) one-round NoOpSlot slots thereafter.
//
// The determinism contract: Pick must be pure in (slot, source, prefix).
// Correct replicas hold identical committed prefixes at a slot's start
// tick under the lockstep schedule, so a pure policy produces the same
// gear schedule on every correct replica; an impure or replica-dependent
// policy diverges and is surfaced, never masked: the fabric runtime
// compares the hosted schedules every tick and stops with a
// schedule-divergence error, and in a multi-process mesh — where no
// runtime sees more than its own schedule — the wire-level frame
// instance/round mismatch check catches it instead. The contract is
// also enforced statically: the gearsdeterminism analyzer in
// cmd/gearsvet flags wall-clock reads, unproven PRNG seeds, escaping
// map-iteration order, and global mutable state anywhere in the
// library packages (go vet -vettool, see
// internal/analysis/gearsdeterminism).
//
// # The flight recorder
//
// LogConfig.Tracer installs zero-overhead event tracing over the whole
// stack: the drive runtime's ticks and per-link frame batches, every
// replica's slot openings, gear resolutions, and commits, terminal
// outcomes, and — on the mem fabric — every seeded fault decision
// (drops, late frames, delays, partition cuts, crash windows) keyed by
// (tick, link, instance) so a trace replays against its chaos plan
// decision for decision (cmd/tracecheck automates the audit). Sinks
// compose through TraceTee: TraceRing retains recent history, TraceJSONL
// streams to disk, TraceMetrics counts in O(1) space and feeds the live
// HTTP surface (NewDebugHandler: Prometheus-text /metrics, expvar,
// pprof, and a human-readable /debug/gears). Derived from the same
// stream, every LogResult carries submit→commit latency percentiles in
// ticks (LogResult.Latency), measured at each command's source replica
// and merged across the correct ones.
//
// The zero-overhead contract: a nil Tracer is tracing off, and off means
// off — every emission site is guarded by a nil check on a plain struct
// field, events are flat values passed without boxing, and the drive
// loop's hot path stays at zero allocations per tick (enforced by
// BenchmarkFabricTick and the CI alloc guard). With a tracer installed,
// the run's observable behavior must not change: committed logs, gear
// schedules, tick counts, traffic totals, and fault decisions are
// byte-identical to the untraced run (enforced by the tracer
// zero-interference property test across all three fabrics). The
// guard discipline is also enforced statically: the zeroalloc analyzer
// in cmd/gearsvet flags unguarded tracer emissions and per-tick
// allocation idioms in the hot-path packages (go vet -vettool, see
// internal/analysis/zeroalloc).
package shiftgears
