package shiftgears_test

import (
	"fmt"
	"testing"

	"shiftgears"
)

// integrationCase is one (algorithm, n, t, b) point of the sweep.
type integrationCase struct {
	alg     shiftgears.Algorithm
	n, t, b int
}

func sweepCases(short bool) []integrationCase {
	cases := []integrationCase{
		{shiftgears.Exponential, 7, 2, 0},
		{shiftgears.AlgorithmB, 13, 3, 2},
		{shiftgears.AlgorithmA, 13, 4, 3},
		{shiftgears.AlgorithmC, 18, 3, 0},
		{shiftgears.Hybrid, 13, 4, 3},
		{shiftgears.PSL, 7, 2, 0},
		{shiftgears.PhaseQueen, 13, 3, 0},
		{shiftgears.Multivalued, 13, 3, 0},
	}
	if short {
		return cases
	}
	return append(cases,
		integrationCase{shiftgears.Exponential, 10, 3, 0},
		integrationCase{shiftgears.AlgorithmB, 17, 4, 3},
		integrationCase{shiftgears.AlgorithmB, 21, 5, 2},
		integrationCase{shiftgears.AlgorithmA, 16, 5, 3},
		integrationCase{shiftgears.AlgorithmA, 16, 5, 4},
		integrationCase{shiftgears.AlgorithmC, 9, 2, 0},
		integrationCase{shiftgears.AlgorithmC, 32, 4, 0},
		integrationCase{shiftgears.Hybrid, 10, 3, 3},
		integrationCase{shiftgears.Hybrid, 16, 5, 3},
		integrationCase{shiftgears.Hybrid, 16, 5, 4},
		integrationCase{shiftgears.Hybrid, 19, 6, 3},
		integrationCase{shiftgears.PSL, 10, 3, 0},
		integrationCase{shiftgears.PhaseQueen, 17, 4, 0},
		integrationCase{shiftgears.Multivalued, 17, 4, 0},
	)
}

// faultSets builds the interesting fault placements for a case: none, a
// single mid-ring fault, t faults avoiding the source, and t faults
// including the source.
func faultSets(n, t int) [][]int {
	sets := [][]int{nil, {1}}
	excl := make([]int, 0, t)
	for i := 0; len(excl) < t; i++ {
		id := (2*i + 1) % n
		if id != 0 && !containsInt(excl, id) {
			excl = append(excl, id)
		}
	}
	incl := []int{0}
	for i := 1; len(incl) < t; i++ {
		id := (3*i + 2) % n
		if id != 0 && !containsInt(incl, id) {
			incl = append(incl, id)
		}
	}
	return append(sets, excl, incl)
}

func containsInt(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

var allStrategies = []string{
	"silent", "crash", "omit", "garbage", "splitbrain",
	"flip", "noise", "sleeper", "seesaw", "collude",
}

// TestAgreementAndValidityAcrossTheBoard is the headline integration test:
// every algorithm × every adversary strategy × every fault placement ×
// several seeds must reach Byzantine agreement (all correct processors
// decide one value) with validity (a correct source's value wins).
func TestAgreementAndValidityAcrossTheBoard(t *testing.T) {
	seeds := []int64{0, 1, 2}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, tc := range sweepCases(testing.Short()) {
		tc := tc
		t.Run(fmt.Sprintf("%v_n%d_t%d_b%d", tc.alg, tc.n, tc.t, tc.b), func(t *testing.T) {
			for _, faulty := range faultSets(tc.n, tc.t) {
				for _, strat := range allStrategies {
					for _, seed := range seeds {
						res, err := shiftgears.Run(shiftgears.Config{
							Algorithm: tc.alg, N: tc.n, T: tc.t, B: tc.b,
							SourceValue: 1, Faulty: faulty, Strategy: strat, Seed: seed,
						})
						if err != nil {
							t.Fatalf("faulty=%v strat=%s seed=%d: %v", faulty, strat, seed, err)
						}
						if !res.Agreement {
							t.Fatalf("faulty=%v strat=%s seed=%d: agreement violated", faulty, strat, seed)
						}
						if !res.Validity {
							t.Fatalf("faulty=%v strat=%s seed=%d: validity violated (decision %d)",
								faulty, strat, seed, res.DecisionValue)
						}
						if res.Rounds != res.PaperRoundBound && res.Rounds > res.PaperRoundBound {
							t.Fatalf("faulty=%v strat=%s: %d rounds exceeds bound %d",
								faulty, strat, res.Rounds, res.PaperRoundBound)
						}
					}
				}
			}
		})
	}
}

// TestNoCorrectProcessorEverAccused asserts the soundness half of the Fault
// Discovery Rule at the system level: across the sweep, every processor in
// any correct replica's list is genuinely faulty.
func TestNoCorrectProcessorEverAccused(t *testing.T) {
	for _, tc := range sweepCases(true) {
		if tc.alg == shiftgears.PSL || tc.alg == shiftgears.PhaseQueen || tc.alg == shiftgears.Multivalued {
			continue // no fault lists in the baselines/extensions
		}
		for _, faulty := range faultSets(tc.n, tc.t) {
			for _, strat := range allStrategies {
				res, err := shiftgears.Run(shiftgears.Config{
					Algorithm: tc.alg, N: tc.n, T: tc.t, B: tc.b,
					SourceValue: 1, Faulty: faulty, Strategy: strat, Seed: 3,
				})
				if err != nil {
					t.Fatal(err)
				}
				isFaulty := map[int]bool{}
				for _, f := range faulty {
					isFaulty[f] = true
				}
				for _, pr := range res.Processors {
					if !pr.Correct {
						continue
					}
					for _, accused := range pr.Discovered {
						if !isFaulty[accused] {
							t.Fatalf("%v strat=%s: correct %d accused correct %d",
								tc.alg, strat, pr.ID, accused)
						}
					}
				}
			}
		}
	}
}

// TestMessageSizeScaling verifies the paper's message-length claims on the
// wire: Algorithm B's biggest payload is exactly the leaf count of its
// round-b tree, Algorithm C's is n, PhaseQueen's is 1.
func TestMessageSizeScaling(t *testing.T) {
	for _, tc := range []struct {
		cfg  shiftgears.Config
		want int
	}{
		{shiftgears.Config{Algorithm: shiftgears.AlgorithmB, N: 13, T: 3, B: 2}, 12},
		{shiftgears.Config{Algorithm: shiftgears.AlgorithmB, N: 17, T: 4, B: 3}, 16 * 15},
		{shiftgears.Config{Algorithm: shiftgears.AlgorithmA, N: 13, T: 4, B: 3}, 12 * 11},
		{shiftgears.Config{Algorithm: shiftgears.AlgorithmC, N: 18, T: 3}, 18},
		{shiftgears.Config{Algorithm: shiftgears.PhaseQueen, N: 13, T: 3}, 1},
		{shiftgears.Config{Algorithm: shiftgears.Exponential, N: 10, T: 3}, 9 * 8},
	} {
		res, err := shiftgears.Run(tc.cfg)
		if err != nil {
			t.Fatalf("%v: %v", tc.cfg.Algorithm, err)
		}
		if res.MaxMessageBytes != tc.want {
			t.Errorf("%v n=%d: max message %dB, want %dB", tc.cfg.Algorithm, tc.cfg.N, res.MaxMessageBytes, tc.want)
		}
	}
}

// TestHybridRoundAdvantage measures the Main Theorem's point: at equal
// resilience and message budget, the hybrid needs fewer rounds than
// Algorithm A, and the advantage grows with t.
func TestHybridRoundAdvantage(t *testing.T) {
	prevSaving := -1
	for _, tt := range []int{4, 6, 8, 10} {
		n := 3*tt + 1
		a, err := shiftgears.Run(shiftgears.Config{Algorithm: shiftgears.AlgorithmA, N: n, T: tt, B: 3, SourceValue: 1})
		if err != nil {
			t.Fatal(err)
		}
		h, err := shiftgears.Run(shiftgears.Config{Algorithm: shiftgears.Hybrid, N: n, T: tt, B: 3, SourceValue: 1})
		if err != nil {
			t.Fatal(err)
		}
		saving := a.Rounds - h.Rounds
		if saving < 0 {
			t.Errorf("t=%d: hybrid slower than A (%d vs %d)", tt, h.Rounds, a.Rounds)
		}
		if saving < prevSaving {
			t.Errorf("t=%d: saving %d shrank from %d", tt, saving, prevSaving)
		}
		prevSaving = saving
		if h.MaxMessageBytes > a.MaxMessageBytes {
			t.Errorf("t=%d: hybrid messages larger than A's", tt)
		}
	}
}

// TestExponentialMatchesPSLDecisions cross-checks the paper's Exponential
// Algorithm against the original PSL baseline on identical crash-fault
// executions (differential testing of two independent implementations).
func TestExponentialMatchesPSLDecisions(t *testing.T) {
	for _, strat := range []string{"silent", "crash", "sleeper"} {
		for seed := int64(0); seed < 3; seed++ {
			a, err := shiftgears.Run(shiftgears.Config{
				Algorithm: shiftgears.Exponential, N: 10, T: 3, SourceValue: 1,
				Faulty: []int{2, 5, 8}, Strategy: strat, Seed: seed,
			})
			if err != nil {
				t.Fatal(err)
			}
			b, err := shiftgears.Run(shiftgears.Config{
				Algorithm: shiftgears.PSL, N: 10, T: 3, SourceValue: 1,
				Faulty: []int{2, 5, 8}, Strategy: strat, Seed: seed,
			})
			if err != nil {
				t.Fatal(err)
			}
			if a.DecisionValue != b.DecisionValue {
				t.Errorf("strat=%s seed=%d: Exponential decided %d, PSL %d",
					strat, seed, a.DecisionValue, b.DecisionValue)
			}
		}
	}
}
