package shiftgears_test

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"shiftgears"
)

// TestPropertyRandomizedAgreement is the randomized system-level property:
// for random parameters, fault sets, strategies, and seeds within each
// algorithm's resilience, agreement and validity always hold.
func TestPropertyRandomizedAgreement(t *testing.T) {
	algorithms := []shiftgears.Algorithm{
		shiftgears.Exponential, shiftgears.AlgorithmA, shiftgears.AlgorithmB,
		shiftgears.AlgorithmC, shiftgears.Hybrid, shiftgears.PSL, shiftgears.PhaseQueen,
		shiftgears.Multivalued,
	}
	maxCount := 60
	if testing.Short() {
		maxCount = 15
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		alg := algorithms[rng.Intn(len(algorithms))]

		var n, tt, b int
		switch alg {
		case shiftgears.Exponential, shiftgears.PSL:
			tt = 1 + rng.Intn(3) // 1..3
			n = 3*tt + 1 + rng.Intn(2)
		case shiftgears.AlgorithmA:
			tt = 3 + rng.Intn(3) // 3..5
			n = 3*tt + 1 + rng.Intn(2)
			b = 3 + rng.Intn(tt-2) // 3..t
		case shiftgears.AlgorithmB:
			tt = 2 + rng.Intn(3) // 2..4
			n = 4*tt + 1 + rng.Intn(2)
			b = 2 + rng.Intn(tt-1) // 2..t
		case shiftgears.AlgorithmC:
			tt = 1 + rng.Intn(3) // 1..3
			n = 2*tt*tt + rng.Intn(3)
			if n <= 4*tt {
				n = 4*tt + 1
			}
			if n < 2*tt*tt {
				n = 2 * tt * tt
			}
		case shiftgears.Hybrid:
			tt = 3 + rng.Intn(3) // 3..5
			n = 3*tt + 1 + rng.Intn(2)
			b = 3 + rng.Intn(tt-2)
		case shiftgears.PhaseQueen, shiftgears.Multivalued:
			tt = 1 + rng.Intn(3)
			n = 4*tt + 1 + rng.Intn(2)
		}

		// Random fault set of size ≤ t (may include the source).
		perm := rng.Perm(n)
		faulty := perm[:rng.Intn(tt+1)]
		strat := allStrategies[rng.Intn(len(allStrategies))]

		res, err := shiftgears.Run(shiftgears.Config{
			Algorithm: alg, N: n, T: tt, B: b,
			SourceValue: shiftgears.Value(rng.Intn(4)),
			Faulty:      faulty, Strategy: strat, Seed: rng.Int63(),
			Parallel: rng.Intn(2) == 0,
		})
		if err != nil {
			t.Logf("config rejected: alg=%v n=%d t=%d b=%d: %v", alg, n, tt, b, err)
			return false
		}
		if !res.Agreement || !res.Validity {
			t.Logf("violation: alg=%v n=%d t=%d b=%d faulty=%v strat=%s", alg, n, tt, b, faulty, strat)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: maxCount}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyParallelSequentialEquivalence: both engines produce the same
// decisions and traffic on random configurations.
func TestPropertyParallelSequentialEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tt := 3 + rng.Intn(2)
		n := 3*tt + 1
		faulty := rng.Perm(n)[:rng.Intn(tt+1)]
		strat := allStrategies[rng.Intn(len(allStrategies))]
		cfg := shiftgears.Config{
			Algorithm: shiftgears.Hybrid, N: n, T: tt, B: 3,
			SourceValue: 1, Faulty: faulty, Strategy: strat, Seed: rng.Int63(),
		}
		seq, err1 := shiftgears.Run(cfg)
		cfg.Parallel = true
		par, err2 := shiftgears.Run(cfg)
		if err1 != nil || err2 != nil {
			return false
		}
		if seq.DecisionValue != par.DecisionValue || seq.TotalBytes != par.TotalBytes {
			return false
		}
		for i := range seq.Processors {
			if seq.Processors[i].Decision != par.Processors[i].Decision ||
				seq.Processors[i].Decided != par.Processors[i].Decided {
				return false
			}
		}
		return true
	}
	count := 25
	if testing.Short() {
		count = 8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: count}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyDecisionDependsOnlyOnExecution: repeated runs of the same
// configuration are bit-identical (the whole stack is deterministic).
func TestPropertyDeterminism(t *testing.T) {
	f := func(seed int64, stratIdx uint8) bool {
		strat := allStrategies[int(stratIdx)%len(allStrategies)]
		cfg := shiftgears.Config{
			Algorithm: shiftgears.AlgorithmA, N: 13, T: 4, B: 3,
			SourceValue: 2, Faulty: []int{0, 4, 8, 12}, Strategy: strat, Seed: seed,
		}
		a, err1 := shiftgears.Run(cfg)
		b, err2 := shiftgears.Run(cfg)
		if err1 != nil || err2 != nil {
			return false
		}
		if a.DecisionValue != b.DecisionValue || a.TotalBytes != b.TotalBytes || a.Messages != b.Messages {
			return false
		}
		return true
	}
	count := 20
	if testing.Short() {
		count = 5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: count}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyMemFabricMatchesSim is the fabric-equivalence property:
// the mem fabric with a zero-fault plan — and even with its
// invisible-by-construction stress (within-bound delay, within-tick
// reorder) at full probability — produces byte-identical committed
// logs, gear schedules (GearRuns output), tick counts, and traffic
// totals to the sim fabric, across window × batch × gear-policy
// combinations. The synchronous barrier must absorb everything the
// zero-loss plan throws. The tcp fabric runs the same equivalence over
// real loopback sockets — with the zero-copy wire path (per-peer read
// arenas, vectored writes) the frames cross a kernel boundary and come
// back byte-identical.
func TestPropertyMemFabricMatchesSim(t *testing.T) {
	policies := []struct {
		name   string
		policy shiftgears.GearPolicy
	}{
		{"static", nil},
		{"downshift", shiftgears.Downshift{}},
		{"blacklist", shiftgears.Blacklist{}},
	}
	plans := []struct {
		name string
		plan *shiftgears.Chaos
	}{
		{"zero-fault", &shiftgears.Chaos{Seed: 9}},
		{"delay+reorder", &shiftgears.Chaos{Seed: 9, Delay: 1.0, Reorder: true}},
	}
	run := func(fabricName string, plan *shiftgears.Chaos, policy shiftgears.GearPolicy, window, batch int) *shiftgears.LogResult {
		t.Helper()
		cfg := shiftgears.LogConfig{
			N: 13, T: 3, B: 3,
			Slots: 13, Window: window, BatchSize: batch,
			Faulty: []int{2, 5}, Strategy: "silent", Seed: 7,
			Fabric: fabricName,
		}
		if fabricName == "mem" {
			cfg.Chaos = plan
		}
		if policy == nil {
			cfg.Algorithm = shiftgears.Exponential
		} else {
			cfg.GearPolicy = shiftgears.GearPolicyWithBase(policy, shiftgears.Exponential)
		}
		l, err := shiftgears.NewReplicatedLog(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for c := 0; c < 26; c++ {
			if err := l.Submit(c%13, shiftgears.Value(1+c%255)); err != nil {
				t.Fatal(err)
			}
		}
		res, err := l.Run()
		if err != nil {
			t.Fatal(err)
		}
		if !res.Agreement {
			t.Fatal("correct replicas committed diverging logs")
		}
		return res
	}
	for _, window := range []int{1, 4} {
		for _, batch := range []int{1, 2} {
			for _, pc := range policies {
				sim := run("sim", nil, pc.policy, window, batch)
				for _, pl := range plans {
					name := fmt.Sprintf("w%d/b%d/%s/%s", window, batch, pc.name, pl.name)
					mem := run("mem", pl.plan, pc.policy, window, batch)
					if !reflect.DeepEqual(mem.Entries, sim.Entries) {
						t.Fatalf("%s: mem fabric committed a different log than sim", name)
					}
					if got, want := shiftgears.GearRuns(mem.Gears), shiftgears.GearRuns(sim.Gears); got != want {
						t.Fatalf("%s: gear schedules diverge: mem %s vs sim %s", name, got, want)
					}
					if mem.Ticks != sim.Ticks || mem.TotalBytes != sim.TotalBytes || mem.Messages != sim.Messages {
						t.Fatalf("%s: mem stats diverge: ticks %d/%d bytes %d/%d msgs %d/%d",
							name, mem.Ticks, sim.Ticks, mem.TotalBytes, sim.TotalBytes, mem.Messages, sim.Messages)
					}
				}
				name := fmt.Sprintf("w%d/b%d/%s/tcp", window, batch, pc.name)
				tcp := run("tcp", nil, pc.policy, window, batch)
				if !reflect.DeepEqual(tcp.Entries, sim.Entries) {
					t.Fatalf("%s: tcp fabric committed a different log than sim", name)
				}
				if got, want := shiftgears.GearRuns(tcp.Gears), shiftgears.GearRuns(sim.Gears); got != want {
					t.Fatalf("%s: gear schedules diverge: tcp %s vs sim %s", name, got, want)
				}
				if tcp.Ticks != sim.Ticks || tcp.TotalBytes != sim.TotalBytes || tcp.Messages != sim.Messages {
					t.Fatalf("%s: tcp stats diverge: ticks %d/%d bytes %d/%d msgs %d/%d",
						name, tcp.Ticks, sim.Ticks, tcp.TotalBytes, sim.TotalBytes, tcp.Messages, sim.Messages)
				}
			}
		}
	}
}
