package shiftgears

// Gear policies: dynamic per-slot algorithm selection for the replicated
// log — the paper's thesis applied to the log itself. A static log fixes
// every slot's algorithm when the log is built; a geared log picks each
// slot's algorithm at the moment the slot enters the pipeline window,
// from what the committed prefix has revealed about the adversary. Early
// slots run a conservative gear; once faults expose themselves in the
// committed log, later slots shift down to cheaper gears and the whole
// log finishes in fewer synchronous ticks.

import (
	"fmt"
	"strings"

	"shiftgears/internal/rsm"
)

// GearPolicy picks a slot's algorithm when the slot enters the pipeline
// window.
//
// Determinism contract: Pick must be a pure function of its arguments —
// no clocks, randomness, counters, or per-replica state — because every
// replica evaluates it independently. Under the lockstep schedule all
// correct replicas hold identical committed prefixes at a slot's start
// tick, so a pure Pick yields identical gear schedules on every correct
// replica and the pipeline never desynchronizes. A divergent (impure or
// replica-dependent) policy is detected, not masked: over TCP the mesh
// fails fast with the frame round-mismatch protocol error ("peer sent
// frame (instance, round), want ..."), and the in-process engines stop
// with a schedule-divergence error as soon as one replica's pipeline
// finishes while another's is still running.
type GearPolicy interface {
	// Name identifies the policy in configs and reports.
	Name() string
	// Pick returns the algorithm for slot. prefix is the log's committed
	// prefix at the slot's start tick: entries 0..k-1 for some k ≤ slot,
	// in slot order.
	Pick(slot, source int, prefix []LogEntry) Algorithm
}

// GearLister is an optional GearPolicy extension: a policy that can
// enumerate every algorithm it might return implements it so that
// NewReplicatedLog rejects an inadmissible gear at construction time —
// e.g. Downshift's default AlgorithmB low gear needs n ≥ 4t+1 — instead
// of failing mid-run, with committed work discarded, when the shift
// first fires. Both built-in policies implement it.
type GearLister interface {
	Gears() []Algorithm
}

// burnedSources returns the sources the committed prefix convicts: those
// with at least one sourced slot that committed all no-ops. Under a
// saturated workload (every correct replica has commands queued — the
// regime the built-in policies are written for) a correct source always
// fills at least one batch position, so an all-no-op slot convicts its
// source as faulty.
func burnedSources(prefix []LogEntry) map[int]bool {
	burned := make(map[int]bool)
	for _, e := range prefix {
		if len(e.Commands) == 0 {
			burned[e.Source] = true
		}
	}
	return burned
}

// Downshift starts every slot in a high gear and drops to a cheaper low
// gear once the committed prefix evidences enough faulty sources. It is
// the paper's shift applied across slots instead of within one instance:
// the high gear pays for resilience against a still-hidden adversary;
// once MinEvidence sources have burned a slot (committed all no-ops
// despite the saturated workload — see burnedSources), the adversary is
// out in the open and the remaining slots run the low gear's shorter
// round schedule.
//
// The zero value downshifts from Hybrid to AlgorithmB after one burned
// source; at n=13, t=3, b=3 that is 7 rounds down to 4 per slot. Both
// gears must be admissible at the log's (N, T) — AlgorithmB needs
// n ≥ 4t+1 — or slot construction fails.
type Downshift struct {
	// High is the gear before enough faults are evidenced (default Hybrid).
	High Algorithm
	// Low is the gear after (default AlgorithmB).
	Low Algorithm
	// MinEvidence is the number of distinct burned sources that triggers
	// the shift (default 1).
	MinEvidence int
}

// Name implements GearPolicy.
func (Downshift) Name() string { return "downshift" }

// gears resolves the zero-value defaults.
func (d Downshift) gears() (high, low Algorithm, min int) {
	high, low, min = d.High, d.Low, d.MinEvidence
	if high == 0 {
		high = Hybrid
	}
	if low == 0 {
		low = AlgorithmB
	}
	if min == 0 {
		min = 1
	}
	return high, low, min
}

// Gears implements GearLister.
func (d Downshift) Gears() []Algorithm {
	high, low, _ := d.gears()
	return []Algorithm{high, low}
}

// Pick implements GearPolicy.
func (d Downshift) Pick(slot, source int, prefix []LogEntry) Algorithm {
	high, low, min := d.gears()
	if len(burnedSources(prefix)) >= min {
		return low
	}
	return high
}

// Blacklist runs the base gear everywhere except slots sourced by a
// processor the committed prefix has already convicted (a sourced slot
// committed all no-ops despite the saturated workload — see
// burnedSources): convicted sources get NoOpSlot, a one-round
// zero-message slot, thereafter. This is Ben-Or–Dolev–Hoch's "a node
// caught cheating is ignored thereafter" carried across log slots: the
// log stops paying agreement rounds for sources that have proven they
// propose nothing.
//
// The zero value blacklists against a Hybrid base gear.
type Blacklist struct {
	// Base is the gear for unconvicted sources (default Hybrid).
	Base Algorithm
}

// Name implements GearPolicy.
func (Blacklist) Name() string { return "blacklist" }

// gears resolves the zero-value default.
func (b Blacklist) gears() (base Algorithm) {
	base = b.Base
	if base == 0 {
		base = Hybrid
	}
	return base
}

// Gears implements GearLister.
func (b Blacklist) Gears() []Algorithm {
	return []Algorithm{b.gears(), NoOpSlot}
}

// Pick implements GearPolicy.
func (b Blacklist) Pick(slot, source int, prefix []LogEntry) Algorithm {
	if burnedSources(prefix)[source] {
		return NoOpSlot
	}
	return b.gears()
}

// GearRuns compresses a per-slot gear schedule (LogResult.Gears) into
// run-length form: "hybrid×4 B×35" for a downshift at slot 4.
func GearRuns(gears []Algorithm) string {
	var b strings.Builder
	for i := 0; i < len(gears); {
		j := i
		for j < len(gears) && gears[j] == gears[i] {
			j++
		}
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s×%d", gears[i], j-i)
		i = j
	}
	return b.String()
}

// ParseGearPolicy resolves a CLI name to a built-in gear policy with its
// default gears.
func ParseGearPolicy(s string) (GearPolicy, error) {
	switch s {
	case "downshift":
		return Downshift{}, nil
	case "blacklist":
		return Blacklist{}, nil
	default:
		return nil, fmt.Errorf("shiftgears: unknown gear policy %q (known: blacklist, downshift)", s)
	}
}

// GearPolicyWithBase returns the policy with its base/high gear replaced
// by alg — the "-alg is the gear the log starts in" convention the CLIs
// share. Policies without a base-gear knob are returned unchanged.
func GearPolicyWithBase(policy GearPolicy, alg Algorithm) GearPolicy {
	switch p := policy.(type) {
	case Downshift:
		p.High = alg
		return p
	case Blacklist:
		p.Base = alg
		return p
	default:
		return policy
	}
}

// noopSlotProtocol is the NoOpSlot gear's rsm machinery: one round, no
// messages, every replica decides the no-op.
type noopSlotProtocol struct{}

func (noopSlotProtocol) Rounds() int { return 1 }
func (noopSlotProtocol) NewReplica(id int, initial Value) (rsm.InstanceReplica, error) {
	return &noopReplica{id: id}, nil
}

// noopReplica trivially satisfies agreement: all replicas decide NoOp
// regardless of traffic (its inbox is ignored, so Byzantine senders
// cannot influence it).
type noopReplica struct{ id int }

func (r *noopReplica) ID() int                                { return r.id }
func (r *noopReplica) PrepareRound(round int) [][]byte        { return nil }
func (r *noopReplica) DeliverRound(round int, inbox [][]byte) {}
func (r *noopReplica) Decided() (Value, bool)                 { return rsm.NoOp, true }
func (r *noopReplica) Err() error                             { return nil }
