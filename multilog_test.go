package shiftgears_test

import (
	"fmt"
	"reflect"
	"testing"

	"shiftgears"
)

// submitPattern is the canonical open-loop workload every driver uses:
// command i is Value(1+i%255), received round-robin — by the whole log
// when unsharded, within each shard when sharded.
func submitPattern(cmds, n int) []shiftgears.Value {
	out := make([]shiftgears.Value, cmds)
	for i := range out {
		out[i] = shiftgears.Value(1 + i%255)
	}
	_ = n
	return out
}

// sizeSlots is the rotating-source sizing rule from cmd/logload.
func sizeSlots(cmds, n, batch int) int {
	perReplica := (cmds + n - 1) / n
	return n * ((perReplica + batch - 1) / batch)
}

// TestMultiLogK1MatchesPlainLog: a 1-shard MultiLog is the plain
// ReplicatedLog behind a router that has nothing to decide — entries,
// gear schedule, tick count, and traffic must be byte-identical across
// window × batch × policy.
func TestMultiLogK1MatchesPlainLog(t *testing.T) {
	type combo struct {
		n, t, b       int
		window, batch int
		gears         string
		faulty        []int
		strategy      string
	}
	combos := []combo{
		{n: 7, t: 2, b: 3, window: 1, batch: 1},
		{n: 7, t: 2, b: 3, window: 1, batch: 4},
		{n: 7, t: 2, b: 3, window: 4, batch: 1},
		{n: 7, t: 2, b: 3, window: 4, batch: 4},
		// Downshift's low gear (Algorithm B) needs n ≥ 4t+1 and 1 < b ≤ t.
		{n: 9, t: 2, b: 2, window: 4, batch: 2, gears: "downshift", faulty: []int{2}, strategy: "silent"},
		{n: 9, t: 2, b: 2, window: 4, batch: 2, gears: "blacklist", faulty: []int{2}, strategy: "silent"},
	}
	const cmds = 56
	for _, c := range combos {
		c := c
		name := fmt.Sprintf("w%d_b%d_%s", c.window, c.batch, c.gears)
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			n := c.n
			mk := func() shiftgears.LogConfig {
				cfg := shiftgears.LogConfig{
					Algorithm: shiftgears.Exponential,
					N:         c.n, T: c.t, B: c.b,
					Slots:  sizeSlots(cmds, c.n, c.batch),
					Window: c.window, BatchSize: c.batch,
					Faulty: c.faulty, Strategy: c.strategy, Seed: 1,
				}
				if c.gears != "" {
					policy, err := shiftgears.ParseGearPolicy(c.gears)
					if err != nil {
						t.Fatal(err)
					}
					cfg.GearPolicy = shiftgears.GearPolicyWithBase(policy, shiftgears.Exponential)
				}
				return cfg
			}
			workload := submitPattern(cmds, n)

			plain, err := shiftgears.NewReplicatedLog(mk())
			if err != nil {
				t.Fatal(err)
			}
			for i, cmd := range workload {
				if err := plain.Submit(i%n, cmd); err != nil {
					t.Fatal(err)
				}
			}
			want, err := plain.Run()
			if err != nil {
				t.Fatal(err)
			}

			ml, err := shiftgears.NewMultiLog(shiftgears.MultiLogConfig{Shards: 1, Log: mk()})
			if err != nil {
				t.Fatal(err)
			}
			// With one shard the router routes everything to shard 0, and
			// the per-shard receiver rotation reduces to the plain i%n.
			for i, cmd := range workload {
				if err := ml.Submit(i%n, cmd); err != nil {
					t.Fatal(err)
				}
			}
			res, err := ml.Run()
			if err != nil {
				t.Fatal(err)
			}

			got := res.Shards[0]
			if !reflect.DeepEqual(got.Entries, want.Entries) {
				t.Errorf("entries diverge:\n sharded %v\n plain   %v", got.Entries, want.Entries)
			}
			if !reflect.DeepEqual(got.Gears, want.Gears) {
				t.Errorf("gear schedules diverge: sharded %v plain %v", got.Gears, want.Gears)
			}
			if got.Ticks != want.Ticks || res.Ticks != want.Ticks {
				t.Errorf("ticks diverge: shard %d agg %d plain %d", got.Ticks, res.Ticks, want.Ticks)
			}
			if got.Messages != want.Messages || got.TotalBytes != want.TotalBytes ||
				got.MaxMessageBytes != want.MaxMessageBytes {
				t.Errorf("traffic diverges: sharded %d msgs %dB (max %d), plain %d msgs %dB (max %d)",
					got.Messages, got.TotalBytes, got.MaxMessageBytes,
					want.Messages, want.TotalBytes, want.MaxMessageBytes)
			}
			if res.Committed != want.Committed || res.Pending != want.Pending {
				t.Errorf("commit counts diverge: sharded %d/%d pending, plain %d/%d",
					res.Committed, res.Pending, want.Committed, want.Pending)
			}
			if res.Latency != want.Latency {
				t.Errorf("latency diverges: sharded %v plain %v", res.Latency, want.Latency)
			}
		})
	}
}

// TestMultiLogK4Deterministic: two K=4 runs from the same seed commit
// identical per-shard logs with identical schedules and traffic.
func TestMultiLogK4Deterministic(t *testing.T) {
	run := func() *shiftgears.MultiLogResult {
		const k, n, batch, cmds = 4, 4, 2, 64
		counts := make([]int, k)
		for i := 0; i < cmds; i++ {
			counts[shiftgears.ShardOf(1, k, shiftgears.Value(1+i%255))]++
		}
		slots := make([]int, k)
		for s, cnt := range counts {
			if cnt == 0 {
				cnt = 1
			}
			slots[s] = sizeSlots(cnt, n, batch)
		}
		ml, err := shiftgears.NewMultiLog(shiftgears.MultiLogConfig{
			Shards:     k,
			RouterSeed: 1,
			Log: shiftgears.LogConfig{
				Algorithm: shiftgears.Exponential,
				N:         n, T: 1, B: 3,
				Window: 2, BatchSize: batch, Seed: 1,
			},
			PerShard: func(s int, cfg *shiftgears.LogConfig) { cfg.Slots = slots[s] },
		})
		if err != nil {
			t.Fatal(err)
		}
		recv := make([]int, k)
		for i := 0; i < cmds; i++ {
			cmd := shiftgears.Value(1 + i%255)
			s, err := ml.ShardOf(cmd)
			if err != nil {
				t.Fatal(err)
			}
			if err := ml.Submit(recv[s]%n, cmd); err != nil {
				t.Fatal(err)
			}
			recv[s]++
		}
		res, err := ml.Run()
		if err != nil {
			t.Fatal(err)
		}
		if !res.Agreement {
			t.Fatal("agreement lost")
		}
		return res
	}
	a, b := run(), run()
	if len(a.Shards) != len(b.Shards) {
		t.Fatalf("shard counts diverge: %d vs %d", len(a.Shards), len(b.Shards))
	}
	for s := range a.Shards {
		if !reflect.DeepEqual(a.Shards[s].Entries, b.Shards[s].Entries) {
			t.Errorf("shard %d logs diverge across identical runs", s)
		}
		if a.Shards[s].Ticks != b.Shards[s].Ticks || a.Shards[s].Messages != b.Shards[s].Messages {
			t.Errorf("shard %d schedule diverges: %d ticks %d msgs vs %d ticks %d msgs",
				s, a.Shards[s].Ticks, a.Shards[s].Messages, b.Shards[s].Ticks, b.Shards[s].Messages)
		}
	}
	if a.Ticks != b.Ticks || a.Committed != b.Committed || a.TotalBytes != b.TotalBytes {
		t.Errorf("aggregates diverge: %+v vs %+v", a, b)
	}
}

// TestMultiLogBarrier: a multi-key command sequences through the meta
// shard, the shards owning its keys are fenced behind it (their ticks
// are charged after the meta shard's), and everyone still agrees.
func TestMultiLogBarrier(t *testing.T) {
	const n = 4
	evenOdd := func(cmd shiftgears.Value) int { return int(cmd) % 2 }
	ml, err := shiftgears.NewMultiLog(shiftgears.MultiLogConfig{
		Shards:    2,
		ShardFunc: evenOdd,
		Barrier:   true,
		Log: shiftgears.LogConfig{
			Algorithm: shiftgears.Exponential,
			N:         n, T: 1, B: 3,
			Slots: n, Window: 2, BatchSize: 1,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := ml.Submit(0, 2); err != nil { // even → shard 0
		t.Fatal(err)
	}
	if err := ml.Submit(0, 3); err != nil { // odd → shard 1
		t.Fatal(err)
	}
	// Cross-shard command touching keys in both shards: rides the meta
	// shard, fences shards 0 and 1.
	if err := ml.SubmitMulti(0, 9, 2, 3); err != nil {
		t.Fatal(err)
	}
	res, err := ml.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Agreement {
		t.Fatal("agreement lost")
	}
	if res.Meta != 2 || len(res.Shards) != 3 {
		t.Fatalf("meta shard bookkeeping: Meta=%d len(Shards)=%d", res.Meta, len(res.Shards))
	}
	metaRes := res.Shards[res.Meta]
	found := false
	for _, e := range metaRes.Entries {
		for _, cmd := range e.Commands {
			if cmd == 9 {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("multi-key command missing from the meta shard's log")
	}
	// Both data shards were fenced, so the aggregate duration charges the
	// meta shard's ticks before theirs.
	wantTicks := metaRes.Ticks
	maxShard := 0
	for s := 0; s < 2; s++ {
		if res.Shards[s].Ticks > maxShard {
			maxShard = res.Shards[s].Ticks
		}
	}
	wantTicks += maxShard
	if res.Ticks != wantTicks {
		t.Fatalf("fenced duration: got %d ticks, want meta %d + max shard %d = %d",
			res.Ticks, metaRes.Ticks, maxShard, wantTicks)
	}
}

// TestMultiLogValidation: configuration and routing errors surface with
// shard context instead of panicking mid-run.
func TestMultiLogValidation(t *testing.T) {
	tmpl := shiftgears.LogConfig{
		Algorithm: shiftgears.Exponential,
		N:         4, T: 1, B: 3, Slots: 4,
	}
	if _, err := shiftgears.NewMultiLog(shiftgears.MultiLogConfig{Shards: 0, Log: tmpl}); err == nil {
		t.Fatal("0-shard multi-log built")
	}

	bad, err := shiftgears.NewMultiLog(shiftgears.MultiLogConfig{
		Shards:    2,
		ShardFunc: func(shiftgears.Value) int { return 5 },
		Log:       tmpl,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := bad.Submit(0, 1); err == nil {
		t.Fatal("out-of-range ShardFunc result not surfaced")
	}

	ml, err := shiftgears.NewMultiLog(shiftgears.MultiLogConfig{Shards: 2, Log: tmpl})
	if err != nil {
		t.Fatal(err)
	}
	if err := ml.SubmitMulti(0, 1, 2); err == nil {
		t.Fatal("SubmitMulti allowed without Barrier")
	}
	if _, err := ml.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := ml.Run(); err == nil {
		t.Fatal("multi-log ran twice")
	}

	withBarrier, err := shiftgears.NewMultiLog(shiftgears.MultiLogConfig{Shards: 2, Barrier: true, Log: tmpl})
	if err != nil {
		t.Fatal(err)
	}
	if err := withBarrier.SubmitMulti(0, 1); err == nil {
		t.Fatal("SubmitMulti allowed with zero keys")
	}
}

// TestMultiLogTracerShardIds: K shards sharing one sink stamp every
// event with their shard id, so the streams stay distinguishable.
func TestMultiLogTracerShardIds(t *testing.T) {
	ring := shiftgears.NewTraceRing(0)
	ml, err := shiftgears.NewMultiLog(shiftgears.MultiLogConfig{
		Shards: 2,
		Log: shiftgears.LogConfig{
			Algorithm: shiftgears.Exponential,
			N:         4, T: 1, B: 3, Slots: 4, Window: 2,
			Tracer: ring,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		cmd := shiftgears.Value(1 + i)
		s, err := ml.ShardOf(cmd)
		if err != nil {
			t.Fatal(err)
		}
		if err := ml.Submit(0, cmd); err != nil {
			t.Fatal(err)
		}
		_ = s
	}
	if _, err := ml.Run(); err != nil {
		t.Fatal(err)
	}
	seen := map[int]int{}
	for _, ev := range ring.Events() {
		if ev.Shard < 0 || ev.Shard > 1 {
			t.Fatalf("event with unstamped/out-of-range shard id: %+v", ev)
		}
		seen[ev.Shard]++
	}
	if len(seen) != 2 {
		t.Fatalf("expected events from both shards, saw %v", seen)
	}
}
