package adversary

import (
	"bytes"
	"math/rand"
	"testing"
)

func rng() *rand.Rand { return rand.New(rand.NewSource(1)) }

func honest(n int, payload []byte) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = payload
	}
	return out
}

func TestNewKnowsAllNames(t *testing.T) {
	for _, name := range Names() {
		s, err := New(name, 10)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if s.Name() != name {
			t.Errorf("New(%q).Name() = %q", name, s.Name())
		}
	}
	if _, err := New("definitely-not-a-strategy", 10); err == nil {
		t.Fatal("unknown strategy accepted")
	}
}

func TestStrategiesNeverMutateHonestPayload(t *testing.T) {
	orig := []byte{1, 0, 1, 1, 0}
	for _, name := range Names() {
		s, err := New(name, 8)
		if err != nil {
			t.Fatal(err)
		}
		payload := append([]byte(nil), orig...)
		h := honest(5, payload)
		for round := 1; round <= 8; round++ {
			s.Mutate(round, 2, 5, h, rng())
		}
		if !bytes.Equal(payload, orig) {
			t.Fatalf("%s mutated the honest payload in place: %v", name, payload)
		}
	}
}

func TestStrategiesHandleNilHonest(t *testing.T) {
	for _, name := range Names() {
		s, err := New(name, 8)
		if err != nil {
			t.Fatal(err)
		}
		out := s.Mutate(2, 0, 5, nil, rng())
		for i, p := range out {
			if p != nil {
				t.Fatalf("%s invented payload %v for dest %d from nil honest outbox", name, p, i)
			}
		}
	}
}

func TestSilent(t *testing.T) {
	if out := (Silent{}).Mutate(1, 0, 4, honest(4, []byte{1}), rng()); out != nil {
		t.Fatalf("silent sent %v", out)
	}
}

func TestCrashPhases(t *testing.T) {
	c := Crash{Round: 3}
	h := honest(6, []byte{9})
	if out := c.Mutate(2, 0, 6, h, rng()); &out[0] == nil || out[0] == nil {
		t.Fatal("crash must be honest before its round")
	}
	out := c.Mutate(3, 0, 6, h, rng())
	for j := 0; j < 3; j++ {
		if out[j] == nil {
			t.Fatalf("crash round: lower half dest %d missing", j)
		}
	}
	for j := 3; j < 6; j++ {
		if out[j] != nil {
			t.Fatalf("crash round: upper half dest %d got %v", j, out[j])
		}
	}
	if out := c.Mutate(4, 0, 6, h, rng()); out != nil {
		t.Fatal("crash must be silent after its round")
	}
}

func TestOmitSendsToOddOnly(t *testing.T) {
	out := (Omit{}).Mutate(1, 0, 6, honest(6, []byte{5}), rng())
	for j, p := range out {
		if (j%2 == 1) != (p != nil) {
			t.Fatalf("omit dest %d: payload %v", j, p)
		}
	}
}

func TestSplitBrainHalves(t *testing.T) {
	out := (SplitBrain{}).Mutate(1, 0, 4, honest(4, []byte{1, 0}), rng())
	if !bytes.Equal(out[0], []byte{1, 0}) || !bytes.Equal(out[2], []byte{1, 0}) {
		t.Fatalf("even dests should get honest payload: %v", out)
	}
	if !bytes.Equal(out[1], []byte{0, 1}) || !bytes.Equal(out[3], []byte{0, 1}) {
		t.Fatalf("odd dests should get flipped payload: %v", out)
	}
}

func TestFlipConsistentLie(t *testing.T) {
	out := (Flip{}).Mutate(1, 0, 3, honest(3, []byte{1, 1, 0}), rng())
	want := []byte{0, 0, 1}
	for j := range out {
		if !bytes.Equal(out[j], want) {
			t.Fatalf("flip dest %d = %v, want %v", j, out[j], want)
		}
	}
}

func TestGarbageKeepsLengthMostly(t *testing.T) {
	g := Garbage{}
	base := make([]byte, 32)
	sameLen := 0
	total := 0
	r := rng()
	for round := 0; round < 50; round++ {
		out := g.Mutate(round, 0, 4, honest(4, base), r)
		for _, p := range out {
			total++
			if len(p) == len(base) {
				sameLen++
			}
		}
	}
	if sameLen < total*3/4 {
		t.Fatalf("garbage changed length too often: %d/%d kept", sameLen, total)
	}
}

func TestNoiseFlipsSomeBits(t *testing.T) {
	n := Noise{P: 0.5}
	base := make([]byte, 64)
	out := n.Mutate(1, 0, 2, honest(2, base), rng())
	flipped := 0
	for _, b := range out[0] {
		if b == 1 {
			flipped++
		}
	}
	if flipped == 0 || flipped == 64 {
		t.Fatalf("noise flipped %d/64 bits", flipped)
	}
}

func TestSleeperHonestThenByzantine(t *testing.T) {
	s := Sleeper{WakeRound: 4}
	h := honest(4, []byte{1})
	if out := s.Mutate(3, 0, 4, h, rng()); !bytes.Equal(out[1], []byte{1}) {
		t.Fatal("sleeper must be honest before waking")
	}
	if out := s.Mutate(4, 0, 4, h, rng()); !bytes.Equal(out[1], []byte{0}) {
		t.Fatal("sleeper must split after waking")
	}
}

func TestSeesawAlternates(t *testing.T) {
	s := Seesaw{}
	h := honest(3, []byte{1, 1})
	even := s.Mutate(2, 0, 3, h, rng())
	odd := s.Mutate(3, 0, 3, h, rng())
	if !bytes.Equal(even[0], []byte{0, 0}) || !bytes.Equal(odd[0], []byte{1, 1}) {
		t.Fatalf("seesaw rounds: even=%v odd=%v", even[0], odd[0])
	}
}

func TestColludeThirds(t *testing.T) {
	out := (Collude{}).Mutate(1, 0, 9, honest(9, []byte{1}), rng())
	for j := 0; j < 3; j++ {
		if !bytes.Equal(out[j], []byte{1}) {
			t.Fatalf("first third dest %d = %v", j, out[j])
		}
	}
	for j := 3; j < 6; j++ {
		if !bytes.Equal(out[j], []byte{0}) {
			t.Fatalf("second third dest %d = %v", j, out[j])
		}
	}
	for j := 6; j < 9; j++ {
		if out[j] != nil {
			t.Fatalf("last third dest %d = %v", j, out[j])
		}
	}
}

// fakeShadow is a minimal sim.Processor recording delivered rounds.
type fakeShadow struct {
	id        int
	delivered int
}

func (f *fakeShadow) ID() int { return f.id }
func (f *fakeShadow) PrepareRound(round int) [][]byte {
	return [][]byte{{byte(round)}, {byte(round)}, {byte(round)}}
}
func (f *fakeShadow) DeliverRound(round int, inbox [][]byte) { f.delivered++ }

func TestProcessorWrapsShadow(t *testing.T) {
	sh := &fakeShadow{id: 1}
	p := NewProcessor(sh, Flip{}, 7, 3)
	if p.ID() != 1 {
		t.Fatalf("ID = %d", p.ID())
	}
	if p.Strategy().Name() != "flip" {
		t.Fatalf("strategy = %q", p.Strategy().Name())
	}
	out := p.PrepareRound(2)
	if !bytes.Equal(out[0], []byte{3}) { // 2^1 = 3
		t.Fatalf("flipped payload = %v", out[0])
	}
	p.DeliverRound(2, make([][]byte, 3))
	if sh.delivered != 1 {
		t.Fatal("shadow did not receive the round")
	}
}

func TestProcessorRNGDeterministicPerID(t *testing.T) {
	mk := func(id int) []byte {
		p := NewProcessor(&fakeShadow{id: id}, Garbage{}, 99, 3)
		return p.PrepareRound(1)[0]
	}
	if !bytes.Equal(mk(1), mk(1)) {
		t.Fatal("same id and seed must give identical adversary randomness")
	}
	if bytes.Equal(mk(1), mk(2)) {
		t.Fatal("different ids should diverge (seed mixing)")
	}
}

func TestHonestPayloadHelper(t *testing.T) {
	if honestPayload(nil) != nil {
		t.Error("nil outbox")
	}
	if honestPayload([][]byte{nil, {4}}) == nil {
		t.Error("skips nil entries")
	}
}
