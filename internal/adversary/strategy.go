// Package adversary supplies Byzantine behaviors for fault injection.
//
// The paper's adversary is unrestricted: "There is no restriction on the
// behavior of faulty processors". Worst-case adversaries exist only inside
// the proofs, so the reproduction substitutes a library of concrete
// strategies (see DESIGN.md, substitution 2). Each faulty processor runs a
// shadow copy of the honest protocol and a Strategy that transforms the
// shadow's outgoing broadcast into arbitrary — including two-faced —
// per-destination payloads. Driving strategies from the honest payload
// keeps the lies "protocol-shaped": they parse correctly at receivers and
// therefore exercise the Fault Discovery Rule rather than just the
// missing-message default.
package adversary

import (
	"fmt"
	"math/rand"
	"sort"

	"shiftgears/internal/sim"
)

// Strategy decides what a faulty processor actually sends.
type Strategy interface {
	// Name identifies the strategy in configs and reports.
	Name() string
	// Mutate transforms the honest outbox into the Byzantine one for this
	// round. honest is what the shadow protocol would broadcast (nil when
	// it would send nothing); self is the faulty processor's id. Mutate
	// must not modify the honest payloads in place — they are shared with
	// the shadow's internal state.
	Mutate(round, self, n int, honest [][]byte, rng *rand.Rand) [][]byte
}

// Processor wraps a shadow protocol instance and a strategy into a
// sim.Processor. The shadow receives every round normally, so its state
// stays plausible; only its outgoing messages are corrupted.
type Processor struct {
	shadow sim.Processor
	strat  Strategy
	rng    *rand.Rand
	n      int
}

var _ sim.Processor = (*Processor)(nil)

// NewProcessor builds a faulty processor. The RNG is seeded from (seed,
// shadow id) so executions are deterministic in both engine modes.
func NewProcessor(shadow sim.Processor, strat Strategy, seed int64, n int) *Processor {
	return &Processor{
		shadow: shadow,
		strat:  strat,
		rng:    rand.New(rand.NewSource(seed ^ int64(shadow.ID()+1)*0x9e3779b9)), //gearsvet:allow seed derives from the run seed and the shadow's ID (golden-ratio mixed), so the stream replays identically per configuration
		n:      n,
	}
}

// ID implements sim.Processor.
func (f *Processor) ID() int { return f.shadow.ID() }

// Strategy returns the active strategy.
func (f *Processor) Strategy() Strategy { return f.strat }

// PrepareRound implements sim.Processor: it lets the shadow prepare its
// honest broadcast, then hands it to the strategy.
func (f *Processor) PrepareRound(round int) [][]byte {
	honest := f.shadow.PrepareRound(round)
	return f.strat.Mutate(round, f.shadow.ID(), f.n, honest, f.rng)
}

// DeliverRound implements sim.Processor.
func (f *Processor) DeliverRound(round int, inbox [][]byte) {
	f.shadow.DeliverRound(round, inbox)
}

// clone copies a payload so strategies can rewrite bytes freely.
func clone(p []byte) []byte {
	if p == nil {
		return nil
	}
	return append([]byte(nil), p...)
}

// honestPayload extracts the broadcast payload from an honest outbox
// (correct processors send the same payload everywhere).
func honestPayload(honest [][]byte) []byte {
	if honest == nil {
		return nil
	}
	for _, p := range honest {
		if p != nil {
			return p
		}
	}
	return nil
}

// flip returns a copy of the payload with every value byte XOR'ed with 1,
// turning each value v into the different value v^1 (0↔1 on the binary
// domain).
func flip(p []byte) []byte {
	out := clone(p)
	for i := range out {
		out[i] ^= 1
	}
	return out
}

// New constructs a strategy by name. totalRounds lets round-dependent
// strategies (crash, sleeper) scale to the plan length and must be ≥ 1 —
// a strategy built against a nonsensical round count would silently
// never fire. Use Names for the full catalog.
func New(name string, totalRounds int) (Strategy, error) {
	if totalRounds < 1 {
		return nil, fmt.Errorf("adversary: strategy %q needs a round count ≥ 1, have %d", name, totalRounds)
	}
	mid := totalRounds/2 + 1
	if mid < 2 {
		mid = 2
	}
	wake := (2*totalRounds)/3 + 1
	if wake < 2 {
		wake = 2
	}
	switch name {
	case "silent":
		return Silent{}, nil
	case "crash":
		return Crash{Round: mid}, nil
	case "omit":
		return Omit{}, nil
	case "garbage":
		return Garbage{}, nil
	case "splitbrain":
		return SplitBrain{}, nil
	case "flip":
		return Flip{}, nil
	case "noise":
		return Noise{P: 0.3}, nil
	case "sleeper":
		return Sleeper{WakeRound: wake}, nil
	case "stutter":
		return &Stutter{}, nil
	case "seesaw":
		return Seesaw{}, nil
	case "collude":
		return Collude{}, nil
	default:
		return nil, fmt.Errorf("adversary: unknown strategy %q (known: %v)", name, Names())
	}
}

// Names lists the registered strategy names.
func Names() []string {
	names := []string{
		"silent", "crash", "omit", "garbage", "splitbrain",
		"flip", "noise", "sleeper", "stutter", "seesaw", "collude",
	}
	sort.Strings(names)
	return names
}
