package adversary

import (
	"math/rand"

	"shiftgears/internal/sim"
)

// Silent sends nothing at all: a pure omission fault. Receivers fall back
// to the paper's default value, so Silent probes the default-value path.
type Silent struct{}

// Name implements Strategy.
func (Silent) Name() string { return "silent" }

// Mutate implements Strategy.
func (Silent) Mutate(round, self, n int, honest [][]byte, rng *rand.Rand) [][]byte {
	return nil
}

// Crash behaves honestly until its crash round, delivers that round's
// message to only the lower half of the processors (the classic "crash in
// the middle of a broadcast"), and is silent afterwards.
type Crash struct {
	// Round is the crash round.
	Round int
}

// Name implements Strategy.
func (c Crash) Name() string { return "crash" }

// Mutate implements Strategy.
func (c Crash) Mutate(round, self, n int, honest [][]byte, rng *rand.Rand) [][]byte {
	switch {
	case round < c.Round:
		return honest
	case round > c.Round || honest == nil:
		return nil
	default:
		p := honestPayload(honest)
		out := make([][]byte, n)
		for j := 0; j < n/2; j++ {
			out[j] = p
		}
		return out
	}
}

// Omit delivers each round's honest message to odd destinations only, a
// persistent partial-omission fault that makes receivers permanently
// disagree about what it said.
type Omit struct{}

// Name implements Strategy.
func (Omit) Name() string { return "omit" }

// Mutate implements Strategy.
func (Omit) Mutate(round, self, n int, honest [][]byte, rng *rand.Rand) [][]byte {
	if honest == nil {
		return nil
	}
	p := honestPayload(honest)
	out := make([][]byte, n)
	for j := 1; j < n; j += 2 {
		out[j] = p
	}
	return out
}

// Garbage replaces each payload with random bytes — usually of the correct
// length (parsing succeeds, contents are junk values), occasionally of a
// wrong length (exercising the "inappropriate message → default" rule).
type Garbage struct{}

// Name implements Strategy.
func (Garbage) Name() string { return "garbage" }

// Mutate implements Strategy.
func (Garbage) Mutate(round, self, n int, honest [][]byte, rng *rand.Rand) [][]byte {
	if honest == nil {
		return nil
	}
	base := honestPayload(honest)
	out := make([][]byte, n)
	for j := range out {
		ln := len(base)
		if rng.Intn(10) == 0 {
			ln = rng.Intn(2*ln + 2)
		}
		p := make([]byte, ln)
		for i := range p {
			p[i] = byte(rng.Intn(256))
		}
		out[j] = p
	}
	return out
}

// SplitBrain is the classic two-faced adversary: even destinations get the
// honest payload, odd destinations get every value flipped. A split-brain
// source is the canonical driver of disagreement.
type SplitBrain struct{}

// Name implements Strategy.
func (SplitBrain) Name() string { return "splitbrain" }

// Mutate implements Strategy.
func (SplitBrain) Mutate(round, self, n int, honest [][]byte, rng *rand.Rand) [][]byte {
	if honest == nil {
		return nil
	}
	p := honestPayload(honest)
	q := flip(p)
	out := make([][]byte, n)
	for j := range out {
		if j%2 == 0 {
			out[j] = p
		} else {
			out[j] = q
		}
	}
	return out
}

// Flip lies consistently: everyone receives the honest payload with every
// value flipped. Consistent lies are the hardest to discover (the Fault
// Discovery Rule sees agreement), probing the masking-free paths.
type Flip struct{}

// Name implements Strategy.
func (Flip) Name() string { return "flip" }

// Mutate implements Strategy.
func (Flip) Mutate(round, self, n int, honest [][]byte, rng *rand.Rand) [][]byte {
	if honest == nil {
		return nil
	}
	return sim.Broadcast(n, flip(honestPayload(honest)))
}

// Noise flips each value byte independently with probability P, separately
// per destination: incoherent lying that triggers fault discovery quickly.
type Noise struct {
	// P is the per-byte flip probability.
	P float64
}

// Name implements Strategy.
func (Noise) Name() string { return "noise" }

// Mutate implements Strategy.
func (s Noise) Mutate(round, self, n int, honest [][]byte, rng *rand.Rand) [][]byte {
	if honest == nil {
		return nil
	}
	base := honestPayload(honest)
	out := make([][]byte, n)
	for j := range out {
		p := clone(base)
		for i := range p {
			if rng.Float64() < s.P {
				p[i] ^= 1
			}
		}
		out[j] = p
	}
	return out
}

// Sleeper behaves perfectly until WakeRound and then turns two-faced. It
// probes the persistence machinery: faults that appear only after a
// persistent value should have been obtained must not be able to destroy
// it (Persistence Lemma).
type Sleeper struct {
	// WakeRound is the first Byzantine round.
	WakeRound int
}

// Name implements Strategy.
func (Sleeper) Name() string { return "sleeper" }

// Mutate implements Strategy.
func (s Sleeper) Mutate(round, self, n int, honest [][]byte, rng *rand.Rand) [][]byte {
	if round < s.WakeRound {
		return honest
	}
	return SplitBrain{}.Mutate(round, self, n, honest, rng)
}

// Seesaw alternates each round between claiming all zeros and all ones
// (correct length, uniform but wrong content): a coherent-per-round,
// incoherent-over-time liar.
type Seesaw struct{}

// Name implements Strategy.
func (Seesaw) Name() string { return "seesaw" }

// Mutate implements Strategy.
func (Seesaw) Mutate(round, self, n int, honest [][]byte, rng *rand.Rand) [][]byte {
	if honest == nil {
		return nil
	}
	p := clone(honestPayload(honest))
	v := byte(round % 2)
	for i := range p {
		p[i] = v
	}
	return sim.Broadcast(n, p)
}

// Stutter replays with a one-round lag: every round it broadcasts the
// honest payload of the round before (silence in the first round it acts
// in). Receivers see well-formed but stale protocol messages — the
// adversarial analogue of a node stuck one round behind the lockstep.
//
// Stutter is stateful: it remembers the previous honest payload, so one
// instance must serve exactly one faulty processor in one protocol
// instance. Sharing an instance across processors (or across pipelined
// slots) mixes their payload histories and races under concurrent
// engines — construct via New per processor, per slot.
type Stutter struct {
	prev []byte
}

// Name implements Strategy.
func (*Stutter) Name() string { return "stutter" }

// Mutate implements Strategy.
func (s *Stutter) Mutate(round, self, n int, honest [][]byte, rng *rand.Rand) [][]byte {
	p := s.prev
	s.prev = clone(honestPayload(honest))
	if p == nil {
		return nil
	}
	return sim.Broadcast(n, p)
}

// Collude splits destinations by thirds: the first third receives the
// honest payload, the second third receives flipped values, the last third
// receives nothing. Several colluding processors using this strategy keep
// the correct processors' samples maximally unbalanced.
type Collude struct{}

// Name implements Strategy.
func (Collude) Name() string { return "collude" }

// Mutate implements Strategy.
func (Collude) Mutate(round, self, n int, honest [][]byte, rng *rand.Rand) [][]byte {
	if honest == nil {
		return nil
	}
	p := honestPayload(honest)
	q := flip(p)
	out := make([][]byte, n)
	for j := range out {
		switch (3 * j) / n {
		case 0:
			out[j] = p
		case 1:
			out[j] = q
		}
	}
	return out
}
