// Package fabric is the transport-agnostic drive runtime for multiplexed
// lockstep schedules: one mux drive loop (Run) written once against a
// small exchange contract (Fabric), with interchangeable substrates
// underneath — the in-process router (Sim), a fault-injecting chaos
// network (Mem), and the TCP mesh (transport.Mesh).
//
// The split of responsibilities:
//
//   - The runtime (Run) owns the schedule: window advance and lazy gear
//     resolution via sim.Mux.Outboxes/Deliver, cross-node frame
//     validation, teardown on error, per-tick statistics, and the
//     reusable per-tick scratch that keeps the hot path allocation-free.
//   - A Fabric owns one tick's message motion: given every local node's
//     framed outboxes, it fills every local node's inboxes and returns —
//     the lockstep barrier. It guarantees nothing about ordering beyond
//     the positional contract below; delivery order within a tick is
//     fabric business and must be invisible to the runtime.
//
// A fabric may host every node of the cluster in-process (Sim, Mem, the
// loopback transport.NewMesh) or a single node of a multi-process
// deployment (transport.JoinMesh); Local reports which. Writing a new
// fabric means implementing the four methods — no drive loop.
package fabric

import (
	"errors"

	"shiftgears/internal/sim"
)

// Fabric is one lockstep exchange substrate.
//
// The Exchange contract, per tick:
//
//   - outs[k] holds local node Local()[k]'s frames for this tick, in
//     increasing instance order. outs[k] == nil means node k is wedged
//     (its schedule stopped advancing but the cluster's has not): an
//     in-process fabric delivers silence on its behalf; a fabric that
//     physically cannot carry a silent node (a real mesh, whose peers
//     block waiting for its frames) fails the tick with ErrWedged.
//   - The fabric fills ins[k][i][f] with the payload sender i addressed
//     to node k's f-th frame — writing every slot, nil for silence — and
//     returns only when node k holds the complete tick (the synchronous
//     barrier). ins[k][i] may instead be set to nil when sender i was
//     silent everywhere.
//   - Errors surface promptly: a fabric whose tick cannot complete (a
//     peer died, a read failed) must tear itself down far enough that
//     every local node's Exchange returns, never deadlock.
//
// The runtime validates frame alignment across local nodes before
// Exchange, so in-process fabrics may route positionally; a distributed
// fabric must validate the frames it reads off the wire against the
// local schedule itself (the transport mesh's instance/round check).
type Fabric interface {
	// N returns the cluster size.
	N() int
	// Local returns the globally-identified nodes this fabric exchanges
	// for, in ascending order: all of 0..N-1 for in-process fabrics, a
	// single id for one node of a multi-process mesh.
	Local() []int
	// Exchange runs one lockstep tick as described above.
	Exchange(tick int, outs [][]sim.MuxFrame, ins [][][][]byte) error
	// Close tears the fabric down; it must be safe to call twice and
	// must unblock any Exchange still in flight.
	Close() error
}

// ErrDiverged tags errors caused by local nodes disagreeing on the
// lockstep schedule — frames misaligned across nodes within a tick, or
// one node's schedule finishing while another's still runs. Under the
// mux determinism contract this is always a bug in the caller's lazy
// round resolution (an impure gear policy), never message corruption.
var ErrDiverged = errors.New("lockstep schedules diverged across nodes")

// ErrWedged tags a tick that failed because a wedged node (outs[k] ==
// nil) cannot be carried by this fabric: a real mesh's peers would block
// forever waiting for frames the node will never produce.
var ErrWedged = errors.New("wedged node on a fabric that cannot mute")
