package fabric_test

import (
	"reflect"
	"testing"

	"shiftgears/internal/fabric"
	"shiftgears/internal/obs"
	"shiftgears/internal/sim"
)

// chaosTracePlan exercises every fault class at once: victim-link drop
// and late loss, within-bound delay on every link, per-receiver reorder,
// one partition window, one crash window.
func chaosTracePlan() fabric.Plan {
	return fabric.Plan{
		Seed:       41,
		Victims:    []int{1},
		Drop:       0.4,
		Late:       0.2,
		Delay:      0.3,
		Reorder:    true,
		Partitions: []fabric.Partition{{From: 3, Until: 5, Group: []int{0, 1}}},
		Crashes:    []fabric.Crash{{Node: 3, From: 2, Until: 4}},
	}
}

// TestMemTraceMatchesPlanDecisions is the chaos audit-trail contract:
// a traced chaos run emits exactly one event per fault the plan
// inflicted — counts equal to the fabric's own MemStats counters — and
// every per-frame event's (tick, link, instance) key replays to the
// same decision through the pure Replayer. The trace IS the seeded
// schedule.
func TestMemTraceMatchesPlanDecisions(t *testing.T) {
	const n, window = 4, 2
	rounds := []int{3, 2, 3, 2, 3}
	plan := chaosTracePlan()

	mem := newMem(t, n, plan)
	ring := obs.NewRing(1 << 16)
	mem.SetTracer(ring)
	muxes, _, _ := buildMuxes(t, n, window, 0, rounds)
	if _, err := fabric.Run(mem, muxes, fabric.WithTracer(ring)); err != nil {
		t.Fatal(err)
	}

	st := mem.Stats()
	if st.Dropped == 0 || st.Late == 0 || st.Delayed == 0 || st.Cut == 0 {
		t.Fatalf("plan exercised nothing: %+v", st)
	}

	counts := map[obs.Type]int{}
	for _, ev := range ring.Events() {
		counts[ev.Type]++
	}
	for _, c := range []struct {
		typ  obs.Type
		want int
	}{
		{obs.ChaosDrop, st.Dropped},
		{obs.ChaosLate, st.Late},
		{obs.ChaosDelay, st.Delayed},
		{obs.ChaosCut, st.Cut},
		{obs.PartitionStart, 1},
		{obs.PartitionHeal, 1},
		{obs.CrashStart, 1},
		{obs.CrashEnd, 1},
	} {
		if counts[c.typ] != c.want {
			t.Errorf("%v events: %d, want %d (MemStats %+v)", c.typ, counts[c.typ], c.want, st)
		}
	}

	// Every per-frame chaos event must replay: the pure decision function
	// of (Seed, tick, link, instance) yields the same fault the trace
	// recorded. This is what makes a JSONL trace a faithful record of the
	// seeded schedule rather than a narration of it.
	rep, err := fabric.NewReplayer(n, plan)
	if err != nil {
		t.Fatal(err)
	}
	frames := 0
	for _, ev := range ring.Events() {
		switch ev.Type {
		case obs.ChaosDrop, obs.ChaosLate, obs.ChaosDelay, obs.ChaosCut:
			frames++
			if ev.From < 0 || ev.To < 0 || ev.Slot < 0 || ev.Tick < 1 {
				t.Fatalf("chaos event missing its key: %+v", ev)
			}
			if got := rep.Decide(ev.Tick, ev.From, ev.To, ev.Slot); got != ev.Type {
				t.Fatalf("event %+v does not replay: Decide = %v", ev, got)
			}
		case obs.PartitionStart:
			if ev.Tick != plan.Partitions[0].From {
				t.Fatalf("partition start at tick %d, want %d", ev.Tick, plan.Partitions[0].From)
			}
		case obs.PartitionHeal:
			if ev.Tick != plan.Partitions[0].Until {
				t.Fatalf("partition heal at tick %d, want %d", ev.Tick, plan.Partitions[0].Until)
			}
		case obs.CrashStart:
			if ev.Tick != plan.Crashes[0].From || ev.Node != plan.Crashes[0].Node {
				t.Fatalf("crash start %+v, want node %d tick %d", ev, plan.Crashes[0].Node, plan.Crashes[0].From)
			}
		case obs.CrashEnd:
			if ev.Tick != plan.Crashes[0].Until || ev.Node != plan.Crashes[0].Node {
				t.Fatalf("crash end %+v, want node %d tick %d", ev, plan.Crashes[0].Node, plan.Crashes[0].Until)
			}
		}
	}
	if frames != st.Dropped+st.Late+st.Delayed+st.Cut {
		t.Fatalf("per-frame chaos events %d, MemStats total %d", frames, st.Dropped+st.Late+st.Delayed+st.Cut)
	}

	// Reorder fires once per receiver per tick, unconditionally.
	ticks := 0
	for _, ev := range ring.Events() {
		if ev.Type == obs.TickStart {
			ticks++
		}
	}
	if want := ticks * n; counts[obs.ChaosReorder] != want {
		t.Errorf("reorder events %d, want %d (%d ticks × %d receivers)", counts[obs.ChaosReorder], want, ticks, n)
	}
}

// TestMemTracerOnOffIdentical: installing a tracer must not change a
// single delivered byte, tick, or fault decision — the zero-interference
// half of the zero-overhead contract, at the fabric level.
func TestMemTracerOnOffIdentical(t *testing.T) {
	const n, window = 4, 2
	rounds := []int{3, 2, 3, 2, 3}
	plan := chaosTracePlan()

	plain := newMem(t, n, plan)
	plainInsts, plainStats := runTags(t, plain, n, window, rounds)

	traced := newMem(t, n, plan)
	traced.SetTracer(obs.NewRing(1 << 16))
	muxes, tracedInsts, _ := buildMuxes(t, n, window, 0, rounds)
	tracedStats, err := fabric.Run(traced, muxes, fabric.WithTracer(obs.NewMetrics()))
	if err != nil {
		t.Fatal(err)
	}

	if plain.Stats() != traced.Stats() {
		t.Fatalf("tracer changed the fault schedule: %+v vs %+v", traced.Stats(), plain.Stats())
	}
	if plainStats.Rounds != tracedStats.Rounds || plainStats.Bytes != tracedStats.Bytes || plainStats.Messages != tracedStats.Messages {
		t.Fatalf("tracer changed traffic: %+v vs %+v", tracedStats, plainStats)
	}
	for id := range plainInsts {
		for inst := range plainInsts[id] {
			if !reflect.DeepEqual(plainInsts[id][inst].seen, tracedInsts[id][inst].seen) {
				t.Fatalf("node %d instance %d: tracer changed delivered bytes", id, inst)
			}
		}
	}
}

// TestRunTraceSchedule: the runtime's own events — one TickStart per
// tick, per-link FrameBatch totals equal to the run's traffic counters,
// SlotOpen/WindowAdvance bracketing every instance on every node.
func TestRunTraceSchedule(t *testing.T) {
	const n, window = 4, 2
	rounds := []int{3, 2, 3, 2, 3}

	ring := obs.NewRing(1 << 16)
	muxes := make([]*sim.Mux, n)
	for id := 0; id < n; id++ {
		m, err := sim.NewMux(sim.MuxConfig{
			ID: id, N: n, Window: window, Rounds: rounds, Tracer: ring,
			Start: func(inst int) (sim.Instance, error) {
				return &tagInstance{inst: inst, n: n}, nil
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		muxes[id] = m
	}
	stats, err := fabric.Run(newSim(t, n), muxes, fabric.WithTracer(ring))
	if err != nil {
		t.Fatal(err)
	}

	tickEvents, frames, bytes := 0, 0, 0
	opens := map[int]map[int]bool{}  // node -> slot opened
	closes := map[int]map[int]bool{} // node -> slot retired
	for _, ev := range ring.Events() {
		switch ev.Type {
		case obs.TickStart:
			tickEvents++
		case obs.FrameBatch:
			frames += ev.Frames
			bytes += ev.Bytes
			if ev.From < 0 || ev.To < 0 {
				t.Fatalf("frame batch missing its link: %+v", ev)
			}
		case obs.SlotOpen:
			if opens[ev.Node] == nil {
				opens[ev.Node] = map[int]bool{}
			}
			opens[ev.Node][ev.Slot] = true
		case obs.WindowAdvance:
			if closes[ev.Node] == nil {
				closes[ev.Node] = map[int]bool{}
			}
			closes[ev.Node][ev.Slot] = true
			if ev.Round != rounds[ev.Slot] {
				t.Fatalf("instance %d retired after %d rounds, want %d", ev.Slot, ev.Round, rounds[ev.Slot])
			}
		}
	}
	if tickEvents != stats.Rounds {
		t.Fatalf("TickStart events %d, run ticks %d", tickEvents, stats.Rounds)
	}
	if frames != stats.Messages || bytes != stats.Bytes {
		t.Fatalf("frame batches total %d frames/%d bytes, stats %d/%d", frames, bytes, stats.Messages, stats.Bytes)
	}
	for id := 0; id < n; id++ {
		for inst := range rounds {
			if !opens[id][inst] || !closes[id][inst] {
				t.Fatalf("node %d instance %d missing open/retire events (open %v, retire %v)", id, inst, opens[id][inst], closes[id][inst])
			}
		}
	}
}
