package fabric

import (
	"fmt"

	"shiftgears/internal/sim"
)

// Sim is the in-process fabric: a fully reliable, complete network over
// which every node of the cluster runs in one process. Exchange is pure
// routing — frame f of sender i lands in receiver k's inbox slot [i][f]
// with no copy and no allocation — which makes it both the fastest
// substrate and the reference behavior every other fabric must match on
// a fault-free schedule (the Mem zero-fault property test).
type Sim struct {
	n     int
	local []int
}

var _ Fabric = (*Sim)(nil)

// NewSim builds the in-process fabric for an n-node cluster.
func NewSim(n int) (*Sim, error) {
	if n < 2 {
		return nil, fmt.Errorf("fabric: need at least 2 nodes, have %d", n)
	}
	local := make([]int, n)
	for i := range local {
		local[i] = i
	}
	return &Sim{n: n, local: local}, nil
}

// N implements Fabric.
func (s *Sim) N() int { return s.n }

// Local implements Fabric: the Sim fabric hosts every node.
func (s *Sim) Local() []int { return s.local }

// Exchange implements Fabric by positional routing (the runtime already
// validated cross-node frame alignment). A nil outs[i] — a wedged node —
// delivers silence everywhere.
func (s *Sim) Exchange(tick int, outs [][]sim.MuxFrame, ins [][][][]byte) error {
	for k := range ins {
		inbox := ins[k]
		for i := 0; i < s.n; i++ {
			slots := inbox[i]
			src := outs[i]
			if src == nil {
				for f := range slots {
					slots[f] = nil
				}
				continue
			}
			for f := range src {
				if src[f].Outbox != nil {
					slots[f] = src[f].Outbox[k]
				} else {
					slots[f] = nil
				}
			}
		}
	}
	return nil
}

// Close implements Fabric; the Sim fabric holds no resources.
func (s *Sim) Close() error { return nil }
