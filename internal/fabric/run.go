package fabric

import (
	"errors"
	"fmt"
	"sync"

	"shiftgears/internal/obs"
	"shiftgears/internal/sim"
)

// Option configures a Run.
type Option func(*runner)

// WithParallel fans each tick's Outboxes and Deliver calls across one
// goroutine per local node — the multi-node analogue of the old
// goroutine-per-processor engine. Schedules and bytes are identical to
// the sequential loop (asserted by tests); only wall-clock changes.
func WithParallel() Option { return func(r *runner) { r.parallel = true } }

// WithPerRoundStats records a RoundStats entry per tick in the run's
// Stats. Off by default: aggregates are always-on and O(1), while the
// per-round trail grows with the schedule — unbounded memory on long
// logs. Cap the trail with WithPerRoundStatsCap.
func WithPerRoundStats() Option { return func(r *runner) { r.perRound = true } }

// WithPerRoundStatsCap records per-round stats like WithPerRoundStats
// but keeps only the last k entries (a ring), bounding memory on
// schedules whose length is the log's whole lifetime. k ≤ 0 means
// unbounded (identical to WithPerRoundStats). Implies per-round
// recording.
func WithPerRoundStatsCap(k int) Option {
	return func(r *runner) {
		r.perRound = true
		r.perRoundCap = k
	}
}

// WithTracer installs a flight recorder on the run: tick starts,
// per-link frame batches, and terminal outcomes (diverged / wedged /
// aborted) are emitted to tr. A nil tr is tracing-off — the loop runs
// its untraced instructions (the zero-overhead contract pinned by
// BenchmarkFabricTick's 0 allocs/tick).
func WithTracer(tr obs.Tracer) Option { return func(r *runner) { r.tracer = tr } }

// WithMaxTicks bounds the run (0 = unbounded): a run that exhausts the
// bound stops cleanly with whatever progress it made, and the caller
// inspects each mux's Done. Static schedules pass their known length so
// a wedged node cannot spin the loop past it.
func WithMaxTicks(n int) Option { return func(r *runner) { r.maxTicks = n } }

// WithTickHook installs a callback invoked after each completed tick
// (all deliveries done). A non-nil return stops the run with that error
// after fabric teardown. Drivers use it to surface application-level
// errors promptly and to shape divergence reporting before the runtime's
// generic ErrDiverged fires at the top of the next tick.
func WithTickHook(h func(tick int) error) Option {
	return func(r *runner) { r.hook = h }
}

// WithAdvisoryErrors marks local nodes (by position in the muxes slice)
// whose mux errors are advisory rather than fatal: a fault-injected
// replica's schedule runs shadow state, and its failure must not kill
// the correct nodes' run. An advisory node that errors is muted — its
// outboxes become nil (the Fabric contract's wedged marker) and it stops
// being delivered to or counted toward completion — and the run
// continues; the caller inspects its mux afterwards. Fabrics that cannot
// carry a silent node fail the tick with ErrWedged instead.
func WithAdvisoryErrors(advisory []bool) Option {
	return func(r *runner) { r.advisory = advisory }
}

// runner holds one Run's configuration and reusable per-tick scratch.
type runner struct {
	parallel    bool
	perRound    bool
	perRoundCap int
	maxTicks    int
	hook        func(tick int) error
	advisory    []bool
	tracer      obs.Tracer
}

// Run is the mux drive loop — the only one: every fabric (in-process,
// chaos, TCP mesh) executes multiplexed schedules through this function.
// It drives one sim.Mux per local node of the fabric in lockstep until
// every (non-muted) mux completes, the tick bound runs out, or an error
// surfaces; on error it closes the fabric (teardown-on-error, so no
// peer is left blocked in the barrier) and returns. Statistics count the
// frames delivered to local nodes, self-delivery included — cluster-wide
// totals on an in-process fabric, this node's traffic on a distributed
// one.
func Run(f Fabric, muxes []*sim.Mux, opts ...Option) (*sim.Stats, error) {
	r := &runner{}
	for _, opt := range opts {
		opt(r)
	}
	local := f.Local()
	n := f.N()
	if len(local) == 0 || len(local) > n {
		return nil, fmt.Errorf("fabric: %d local nodes on a fabric of %d", len(local), n)
	}
	if len(muxes) != len(local) {
		return nil, fmt.Errorf("fabric: %d muxes for %d local nodes", len(muxes), len(local))
	}
	for k, m := range muxes {
		if m == nil {
			return nil, fmt.Errorf("fabric: mux for local node %d is nil", local[k])
		}
		if m.ID() != local[k] {
			return nil, fmt.Errorf("fabric: mux at position %d reports id %d, fabric hosts node %d", k, m.ID(), local[k])
		}
	}
	if r.advisory != nil && len(r.advisory) != len(muxes) {
		return nil, fmt.Errorf("fabric: advisory mask has %d entries for %d muxes", len(r.advisory), len(muxes))
	}

	L := len(local)
	outs := make([][]sim.MuxFrame, L)
	ins := make([][][][]byte, L)
	for k := range ins {
		ins[k] = make([][][]byte, n)
	}
	errs := make([]error, L)
	muted := make([]bool, L)

	var stats sim.Stats
	prOldest := 0 // ring cursor into stats.PerRound when capped
	curTick := 0
	fail := func(err error) (*sim.Stats, error) {
		if r.tracer != nil {
			typ := obs.Aborted
			switch {
			case errors.Is(err, ErrDiverged):
				typ = obs.Diverged
			case errors.Is(err, ErrWedged):
				typ = obs.Wedged
			}
			ev := obs.At(typ, curTick)
			ev.Note = err.Error()
			r.tracer.Emit(ev)
		}
		_ = f.Close()
		return nil, err
	}
	// The per-node halves are built once: closing over the loop state
	// inside the tick would put heap allocations per tick on the hot path.
	prepare := func(k int) {
		if muted[k] {
			outs[k] = nil
			errs[k] = nil
			return
		}
		outs[k], errs[k] = muxes[k].Outboxes()
	}
	deliver := func(k int) {
		if muted[k] {
			errs[k] = nil
			return
		}
		errs[k] = muxes[k].Deliver(ins[k])
	}

	for tick := 1; ; tick++ {
		// Completion and divergence bookkeeping. Under the lockstep
		// contract every non-muted mux finishes on the same tick; a mix of
		// done and running schedules means they diverged (the tick hook,
		// which ran first, may already have shaped a more specific error).
		active, done := 0, 0
		for k, m := range muxes {
			if muted[k] {
				continue
			}
			active++
			if m.Done() {
				done++
			}
		}
		if active == 0 {
			return fail(fmt.Errorf("fabric: every local node wedged: %w", ErrWedged))
		}
		if done == active {
			break
		}
		if done > 0 {
			return fail(fmt.Errorf("fabric: tick %d: %d of %d local nodes finished while the rest still run: %w", tick-1, done, active, ErrDiverged))
		}
		if r.maxTicks > 0 && tick > r.maxTicks {
			break
		}
		curTick = tick
		if r.tracer != nil {
			r.tracer.Emit(obs.At(obs.TickStart, tick))
		}

		// Send half: every local mux prepares its tick's frames. Advisory
		// nodes that fail are muted (nil outboxes from here on); anyone
		// else's failure tears the run down.
		r.forEach(L, prepare)
		for k, err := range errs {
			if err == nil {
				continue
			}
			if r.advisory != nil && r.advisory[k] {
				muted[k] = true
				outs[k] = nil
				continue
			}
			return fail(err)
		}

		// Cross-node frame validation: all live schedules must agree on
		// the tick's active set before anything moves. In-process fabrics
		// route positionally on the strength of this check; a mismatch is
		// a divergent lazy-rounds resolution surfacing at the first
		// possible tick.
		ref := -1
		for k := range muxes {
			if !muted[k] {
				ref = k
				break
			}
		}
		if ref < 0 {
			return fail(fmt.Errorf("fabric: tick %d: every local node wedged: %w", tick, ErrWedged))
		}
		for k := range muxes {
			if muted[k] || k == ref {
				continue
			}
			if len(outs[k]) != len(outs[ref]) {
				return fail(fmt.Errorf("fabric: tick %d: node %d runs %d instances, node %d runs %d: %w",
					tick, local[k], len(outs[k]), local[ref], len(outs[ref]), ErrDiverged))
			}
			for fi := range outs[k] {
				a, b := outs[k][fi], outs[ref][fi]
				if a.Instance != b.Instance || a.Round != b.Round {
					return fail(fmt.Errorf("fabric: tick %d: node %d frame %d is (instance %d, round %d), node %d has (instance %d, round %d): %w",
						tick, local[k], fi, a.Instance, a.Round, local[ref], b.Instance, b.Round, ErrDiverged))
				}
			}
		}
		frames := len(outs[ref])

		// Barrier: the fabric moves the frames and fills every local
		// node's inboxes (scratch reused across ticks).
		for k := range ins {
			for i := range ins[k] {
				ins[k][i] = growSlots(ins[k][i], frames)
			}
		}
		if err := f.Exchange(tick, outs, ins); err != nil {
			return fail(err)
		}

		// Traffic accounting over what local nodes received. The per-link
		// counters ride the same pass; with a tracer installed each live
		// link (sender i → local node k) emits one FrameBatch per tick —
		// the fabric-uniform traffic trail (identical shape on sim, mem,
		// and TCP, because it is measured here, not in the fabrics).
		rs := sim.RoundStats{Round: tick}
		for k := range ins {
			if muted[k] {
				continue
			}
			for i := range ins[k] {
				sent := false
				linkFrames, linkBytes := 0, 0
				for _, p := range ins[k][i] {
					if p == nil {
						continue
					}
					sent = true
					linkFrames++
					linkBytes += len(p)
					rs.Messages++
					rs.Bytes += len(p)
					if len(p) > rs.MaxPayload {
						rs.MaxPayload = len(p)
					}
				}
				if sent && k == ref {
					rs.DistinctSrc++
				}
				if sent && r.tracer != nil {
					ev := obs.At(obs.FrameBatch, tick)
					ev.From, ev.To = i, local[k]
					ev.Frames, ev.Bytes = linkFrames, linkBytes
					r.tracer.Emit(ev)
				}
			}
		}

		// Receive half: deliver the complete tick, advance local rounds.
		r.forEach(L, deliver)
		for k, err := range errs {
			if err == nil {
				continue
			}
			if r.advisory != nil && r.advisory[k] {
				muted[k] = true
				continue
			}
			return fail(err)
		}

		stats.Rounds = tick
		stats.Messages += rs.Messages
		stats.Bytes += rs.Bytes
		if rs.MaxPayload > stats.MaxPayload {
			stats.MaxPayload = rs.MaxPayload
		}
		if r.perRound {
			if r.perRoundCap > 0 && len(stats.PerRound) >= r.perRoundCap {
				stats.PerRound[prOldest] = rs
				prOldest = (prOldest + 1) % r.perRoundCap
			} else {
				stats.PerRound = append(stats.PerRound, rs)
			}
		}

		if r.hook != nil {
			if err := r.hook(tick); err != nil {
				return fail(err)
			}
		}
	}
	out := stats
	out.PerRound = make([]sim.RoundStats, 0, len(stats.PerRound))
	out.PerRound = append(out.PerRound, stats.PerRound[prOldest:]...)
	out.PerRound = append(out.PerRound, stats.PerRound[:prOldest]...)
	return &out, nil
}

// forEach applies fn to 0..l-1, concurrently under WithParallel. fn must
// touch only its own slot's state.
func (r *runner) forEach(l int, fn func(k int)) {
	if !r.parallel || l == 1 {
		for k := 0; k < l; k++ {
			fn(k)
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(l)
	for k := 0; k < l; k++ {
		go func(k int) {
			defer wg.Done()
			fn(k)
		}(k)
	}
	wg.Wait()
}

// growSlots reslices s to length n, keeping its backing array so the
// per-tick inbox matrices stay allocation-free at steady state.
func growSlots(s [][]byte, n int) [][]byte {
	if cap(s) < n {
		return make([][]byte, n)
	}
	return s[:n]
}
