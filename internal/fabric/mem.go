package fabric

import (
	"fmt"
	"sort"

	"shiftgears/internal/obs"
	"shiftgears/internal/sim"
)

// Plan is a deterministic, seeded per-link fault schedule for the Mem
// fabric. Every decision is a pure function of (Seed, tick, link,
// instance), so two runs of the same plan — and the same plan replayed
// against a different engine configuration — fault exactly the same
// frames regardless of iteration order.
//
// The faults split into two classes:
//
//   - Omission-class loss (Drop, Late, Partitions, Crashes): frames that
//     never reach their receiver. Within the paper's synchronous model a
//     lost or too-late message is read as silence — the "inappropriate
//     message → default" rule — so a node whose outbound links lose
//     frames is indistinguishable from an omission-faulty processor.
//     Agreement is guaranteed only while the apparently-faulty set
//     (Affected, plus any Byzantine-configured replicas) stays within
//     the protocol's resilience t; schedules beyond that explore the
//     model's edge and the engine must still terminate and report
//     rather than wedge.
//   - Invisible-by-construction stress (Delay, Reorder): frames held to
//     the end of the tick's exchange or delivered in shuffled order.
//     The synchrony bound is the tick barrier, so any delay within it —
//     and any within-tick reordering — must not change a single
//     committed byte. The Mem property tests assert exactly that, which
//     is what makes these knobs useful: they flush hidden dependencies
//     on arrival order out of the stack.
type Plan struct {
	// Seed drives every probabilistic decision below.
	Seed int64
	// Victims are the nodes whose outbound links suffer Drop and Late
	// loss. Keeping the victim set (plus partitioned and crashed nodes)
	// within the protocol's resilience t keeps the run inside the
	// paper's fault model.
	Victims []int
	// Drop is the per-frame probability that a victim's outbound frame
	// is lost outright.
	Drop float64
	// Late is the per-frame probability that a victim's outbound frame
	// misses the synchrony bound: the bytes "arrive" after the round
	// closed, which the synchronous model reads as absence.
	Late float64
	// Delay is the per-frame probability (on every link) that a frame is
	// held to the end of the tick's exchange — within the bound, so the
	// barrier absorbs it and nothing observable may change.
	Delay float64
	// Reorder shuffles each receiver's within-tick delivery order
	// (deterministically from Seed). Delivery is positional, so this too
	// must be invisible.
	Reorder bool
	// Partitions cut the network into sides for tick ranges; frames
	// crossing a cut are lost. A partition heals when its window ends.
	Partitions []Partition
	// Crashes sever single nodes — every inbound and outbound link —
	// for tick ranges. The node's local computation keeps running (the
	// synchronous automaton never halts), so when the window ends it
	// resumes speaking from its own state: peers experience the gap as
	// omission faults, the node itself as total isolation.
	Crashes []Crash
}

// Partition is one tick-ranged network split: during ticks [From, Until)
// the Group nodes and the remaining nodes cannot exchange frames. Nodes
// within the same side communicate normally.
type Partition struct {
	From, Until int
	Group       []int
}

// Crash is one tick-ranged single-node outage: during ticks [From,
// Until) node Node neither sends nor receives (self-delivery excepted —
// a node always hears itself).
type Crash struct {
	Node        int
	From, Until int
}

// Affected returns the sorted set of nodes the plan's omission-class
// faults touch: Victims, every partitioned Group member, and every
// crashed node. These nodes' own views of the run are degraded beyond
// the fault model's guarantee (a fully isolated node sees n-1 silent
// peers), so callers checking agreement should treat them like faulty
// processors and compare the remaining replicas only.
func (p Plan) Affected() []int {
	set := map[int]bool{}
	for _, v := range p.Victims {
		set[v] = true
	}
	for _, part := range p.Partitions {
		for _, v := range part.Group {
			set[v] = true
		}
	}
	for _, c := range p.Crashes {
		set[c.Node] = true
	}
	out := make([]int, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// validate checks the plan against the cluster size.
func (p Plan) validate(n int) error {
	for _, prob := range []struct {
		name string
		v    float64
	}{{"Drop", p.Drop}, {"Late", p.Late}, {"Delay", p.Delay}} {
		if prob.v < 0 || prob.v > 1 {
			return fmt.Errorf("fabric: mem plan %s probability %v outside [0, 1]", prob.name, prob.v)
		}
	}
	if (p.Drop > 0 || p.Late > 0) && len(p.Victims) == 0 {
		return fmt.Errorf("fabric: mem plan has Drop/Late but no Victims to apply them to")
	}
	for _, v := range p.Victims {
		if v < 0 || v >= n {
			return fmt.Errorf("fabric: mem plan victim %d out of range [0, %d)", v, n)
		}
	}
	for i, part := range p.Partitions {
		if part.From < 1 || part.Until < part.From {
			return fmt.Errorf("fabric: mem plan partition %d window [%d, %d) invalid (ticks are 1-based)", i, part.From, part.Until)
		}
		if len(part.Group) == 0 || len(part.Group) >= n {
			return fmt.Errorf("fabric: mem plan partition %d group of %d does not split %d nodes", i, len(part.Group), n)
		}
		for _, v := range part.Group {
			if v < 0 || v >= n {
				return fmt.Errorf("fabric: mem plan partition %d member %d out of range [0, %d)", i, v, n)
			}
		}
	}
	for i, c := range p.Crashes {
		if c.From < 1 || c.Until < c.From {
			return fmt.Errorf("fabric: mem plan crash %d window [%d, %d) invalid (ticks are 1-based)", i, c.From, c.Until)
		}
		if c.Node < 0 || c.Node >= n {
			return fmt.Errorf("fabric: mem plan crash %d node %d out of range [0, %d)", i, c.Node, n)
		}
	}
	return nil
}

// MemStats counts what the plan did to a run's frames.
type MemStats struct {
	// Delivered counts frames that reached their receiver on time
	// (delayed-within-bound frames included).
	Delivered int
	// Dropped and Late count victim-link losses by cause; Cut counts
	// frames lost to partitions and crashes.
	Dropped, Late, Cut int
	// Delayed counts frames held to the end of their tick — delivered,
	// but through the second pass.
	Delayed int
}

// Mem is the fault-injecting in-memory fabric: Sim's routing with a
// deterministic adverse schedule layered on every link. A zero-value
// Plan makes it byte-identical to Sim.
type Mem struct {
	n     int
	local []int
	plan  Plan
	sides []map[int]bool // per partition, membership of Group
	stats MemStats

	order   []int     // per-receiver sender visit order (Reorder scratch)
	held    []heldRef // Delay second-pass scratch
	victims map[int]bool
	tracer  obs.Tracer
}

// heldRef is one delayed frame waiting for its tick's second pass.
type heldRef struct {
	recv, sender, frame int
	payload             []byte
}

var _ Fabric = (*Mem)(nil)

// NewMem validates the plan and builds the chaos fabric for an n-node
// cluster.
func NewMem(n int, plan Plan) (*Mem, error) {
	if n < 2 {
		return nil, fmt.Errorf("fabric: need at least 2 nodes, have %d", n)
	}
	if err := plan.validate(n); err != nil {
		return nil, err
	}
	local := make([]int, n)
	for i := range local {
		local[i] = i
	}
	m := &Mem{n: n, local: local, plan: plan, victims: map[int]bool{}}
	for _, v := range plan.Victims {
		m.victims[v] = true
	}
	for _, part := range plan.Partitions {
		side := make(map[int]bool, len(part.Group))
		for _, v := range part.Group {
			side[v] = true
		}
		m.sides = append(m.sides, side)
	}
	return m, nil
}

// N implements Fabric.
func (m *Mem) N() int { return m.n }

// Local implements Fabric: the Mem fabric hosts every node.
func (m *Mem) Local() []int { return m.local }

// Stats returns what the plan has done so far. Read it after the run;
// Exchange updates it without locking.
func (m *Mem) Stats() MemStats { return m.stats }

// SetTracer installs a flight recorder on the fabric: every fault
// decision the plan makes — drops, late losses, within-bound delays,
// partition cuts, reorders, and the window boundaries of partitions and
// crashes — is emitted as a chaos event carrying its (tick, link,
// instance) coordinates, so a trace replays the seeded schedule exactly.
// A nil tracer (the default) keeps Exchange on its untraced path.
func (m *Mem) SetTracer(tr obs.Tracer) { m.tracer = tr }

// Exchange implements Fabric: Sim's positional routing, filtered and
// scheduled by the plan.
func (m *Mem) Exchange(tick int, outs [][]sim.MuxFrame, ins [][][][]byte) error {
	if cap(m.order) < m.n {
		m.order = make([]int, m.n)
	}
	order := m.order[:m.n]
	m.held = m.held[:0]

	if m.tracer != nil {
		m.emitBoundaries(tick)
	}

	for k := range ins {
		inbox := ins[k]
		for i := range order {
			order[i] = i
		}
		if m.plan.Reorder {
			m.shuffle(order, tick, k)
			if m.tracer != nil {
				ev := obs.At(obs.ChaosReorder, tick)
				ev.To = k
				m.tracer.Emit(ev)
			}
		}
		for _, i := range order {
			slots := inbox[i]
			src := outs[i]
			if src == nil {
				for f := range slots {
					slots[f] = nil
				}
				continue
			}
			cut := m.cut(tick, i, k)
			for f := range src {
				var p []byte
				if src[f].Outbox != nil {
					p = src[f].Outbox[k]
				}
				if p != nil && i != k {
					switch {
					case cut:
						p = nil
						m.stats.Cut++
						if m.tracer != nil {
							m.emitFrame(obs.ChaosCut, tick, i, k, src[f].Instance)
						}
					case m.victims[i] && m.plan.Drop > 0 && m.chance(1, tick, i, k, src[f].Instance) < m.plan.Drop:
						p = nil
						m.stats.Dropped++
						if m.tracer != nil {
							m.emitFrame(obs.ChaosDrop, tick, i, k, src[f].Instance)
						}
					case m.victims[i] && m.plan.Late > 0 && m.chance(2, tick, i, k, src[f].Instance) < m.plan.Late:
						p = nil
						m.stats.Late++
						if m.tracer != nil {
							m.emitFrame(obs.ChaosLate, tick, i, k, src[f].Instance)
						}
					}
				}
				if p != nil {
					m.stats.Delivered++
					if m.plan.Delay > 0 && m.chance(3, tick, i, k, src[f].Instance) < m.plan.Delay {
						// Held within the synchrony bound: route it in the
						// second pass below, before the barrier opens.
						slots[f] = nil
						m.held = append(m.held, heldRef{recv: k, sender: i, frame: f, payload: p})
						m.stats.Delayed++
						if m.tracer != nil {
							m.emitFrame(obs.ChaosDelay, tick, i, k, src[f].Instance)
						}
						continue
					}
				}
				slots[f] = p
			}
		}
	}

	// Second pass: delayed frames arrive late but in time — the barrier
	// (this function returning) absorbs the jitter, which is exactly the
	// synchronous model's claim.
	for _, h := range m.held {
		ins[h.recv][h.sender][h.frame] = h.payload
	}
	return nil
}

// Close implements Fabric; the Mem fabric holds no resources.
func (m *Mem) Close() error { return nil }

// emitFrame emits one per-frame chaos event with its full (tick, link,
// instance) key. Only called with a tracer installed.
func (m *Mem) emitFrame(t obs.Type, tick, sender, recv, instance int) {
	ev := obs.At(t, tick)
	ev.From, ev.To, ev.Slot = sender, recv, instance
	m.tracer.Emit(ev)
}

// emitBoundaries emits the partition and crash window edges that land on
// this tick: Start when the window opens (tick == From), Heal/End on the
// first tick after it closed (tick == Until — windows are [From, Until)).
// Only called with a tracer installed.
func (m *Mem) emitBoundaries(tick int) {
	for _, part := range m.plan.Partitions {
		if tick == part.From {
			ev := obs.At(obs.PartitionStart, tick)
			ev.Note = fmt.Sprintf("group %v until tick %d", part.Group, part.Until)
			m.tracer.Emit(ev)
		}
		if tick == part.Until {
			ev := obs.At(obs.PartitionHeal, tick)
			ev.Note = fmt.Sprintf("group %v", part.Group)
			m.tracer.Emit(ev)
		}
	}
	for _, c := range m.plan.Crashes {
		if tick == c.From {
			ev := obs.At(obs.CrashStart, tick)
			ev.Node = c.Node
			ev.Note = fmt.Sprintf("until tick %d", c.Until)
			m.tracer.Emit(ev)
		}
		if tick == c.Until {
			ev := obs.At(obs.CrashEnd, tick)
			ev.Node = c.Node
			m.tracer.Emit(ev)
		}
	}
}

// Replayer recomputes a plan's fault decisions as a pure function of
// frame coordinates — the audit hook behind trace verification: given a
// chaos event's (tick, link, instance) key, Decide reports exactly which
// fault the plan inflicts there, using the same decision chain (and the
// same keyed draws) Exchange runs. Because every decision is
// order-independent, a Replayer built from the plan alone replays the
// schedule of any run of that plan.
type Replayer struct {
	m *Mem
}

// NewReplayer builds the audit view of a plan for an n-node cluster.
func NewReplayer(n int, plan Plan) (*Replayer, error) {
	m, err := NewMem(n, plan)
	if err != nil {
		return nil, err
	}
	return &Replayer{m: m}, nil
}

// Decide returns the fault the plan inflicts on a frame crossing
// sender→recv at tick for the given instance: obs.ChaosCut,
// obs.ChaosDrop, obs.ChaosLate, obs.ChaosDelay, or 0 for clean
// delivery. The chain mirrors Exchange exactly: cuts dominate, then
// victim-link drop and late loss, then within-bound delay (which also
// applies to self-links).
func (r *Replayer) Decide(tick, sender, recv, instance int) obs.Type {
	m := r.m
	if sender != recv {
		switch {
		case m.cut(tick, sender, recv):
			return obs.ChaosCut
		case m.victims[sender] && m.plan.Drop > 0 && m.chance(1, tick, sender, recv, instance) < m.plan.Drop:
			return obs.ChaosDrop
		case m.victims[sender] && m.plan.Late > 0 && m.chance(2, tick, sender, recv, instance) < m.plan.Late:
			return obs.ChaosLate
		}
	}
	if m.plan.Delay > 0 && m.chance(3, tick, sender, recv, instance) < m.plan.Delay {
		return obs.ChaosDelay
	}
	return 0
}

// cut reports whether the link sender→recv is severed at tick by a
// partition or crash. Self-links never cut: a node always hears itself.
func (m *Mem) cut(tick, sender, recv int) bool {
	if sender == recv {
		return false
	}
	for _, c := range m.plan.Crashes {
		if tick >= c.From && tick < c.Until && (sender == c.Node || recv == c.Node) {
			return true
		}
	}
	for i, part := range m.plan.Partitions {
		if tick >= part.From && tick < part.Until && m.sides[i][sender] != m.sides[i][recv] {
			return true
		}
	}
	return false
}

// chance returns a uniform [0, 1) draw that is a pure function of the
// plan seed and the frame's coordinates — order-independent, so the
// schedule is identical however Exchange iterates.
func (m *Mem) chance(kind uint64, tick, sender, recv, instance int) float64 {
	h := mix(uint64(m.plan.Seed), kind, uint64(tick), uint64(sender), uint64(recv), uint64(instance))
	return float64(h>>11) / float64(1<<53)
}

// shuffle Fisher-Yates-shuffles order deterministically per (tick, recv).
func (m *Mem) shuffle(order []int, tick, recv int) {
	state := mix(uint64(m.plan.Seed), 4, uint64(tick), uint64(recv))
	for i := len(order) - 1; i > 0; i-- {
		state = splitmix64(state)
		j := int(state % uint64(i+1))
		order[i], order[j] = order[j], order[i]
	}
}

// mix chains the coordinates through splitmix64 into one draw, so
// distinct coordinate tuples cannot collide the way shifted XOR packing
// would.
func mix(seed uint64, coords ...uint64) uint64 {
	h := splitmix64(seed)
	for _, c := range coords {
		h = splitmix64(h ^ c)
	}
	return h
}

// splitmix64 is the SplitMix64 finalizer — a tiny, high-quality bit
// mixer, here the whole PRNG since every draw is keyed by coordinates.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ x>>30) * 0xbf58476d1ce4e5b9
	x = (x ^ x>>27) * 0x94d049bb133111eb
	return x ^ x>>31
}
