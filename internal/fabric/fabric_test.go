package fabric_test

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"shiftgears/internal/fabric"
	"shiftgears/internal/sim"
)

// tagInstance broadcasts [instance, round] every local round and records
// every inbox it receives.
type tagInstance struct {
	mu     sync.Mutex
	inst   int
	n      int
	rounds []int    // local rounds delivered, in order
	seen   [][]byte // flattened inbox per local round
}

func (ti *tagInstance) PrepareRound(round int) [][]byte {
	return sim.Broadcast(ti.n, []byte{byte(ti.inst), byte(round)})
}

func (ti *tagInstance) DeliverRound(round int, inbox [][]byte) {
	ti.mu.Lock()
	defer ti.mu.Unlock()
	ti.rounds = append(ti.rounds, round)
	var flat []byte
	for _, p := range inbox {
		flat = append(flat, p...)
	}
	ti.seen = append(ti.seen, flat)
}

// buildMuxes wires n muxes over the same schedule and returns the per-node
// instance tables for inspection.
func buildMuxes(t *testing.T, n, window, workers int, rounds []int) ([]*sim.Mux, [][]*tagInstance, [][]int) {
	t.Helper()
	muxes := make([]*sim.Mux, n)
	insts := make([][]*tagInstance, n)
	finished := make([][]int, n)
	for id := 0; id < n; id++ {
		id := id
		insts[id] = make([]*tagInstance, len(rounds))
		m, err := sim.NewMux(sim.MuxConfig{
			ID: id, N: n, Window: window, Rounds: rounds, Workers: workers,
			Start: func(inst int) (sim.Instance, error) {
				ti := &tagInstance{inst: inst, n: n}
				insts[id][inst] = ti
				return ti, nil
			},
			Finish: func(inst int) { finished[id] = append(finished[id], inst) },
		})
		if err != nil {
			t.Fatal(err)
		}
		muxes[id] = m
	}
	return muxes, insts, finished
}

func newSim(t *testing.T, n int) *fabric.Sim {
	t.Helper()
	f, err := fabric.NewSim(n)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestRunPipelinesInstances(t *testing.T) {
	const n, window = 4, 2
	rounds := []int{3, 3, 3, 3, 3, 3}
	muxes, insts, finished := buildMuxes(t, n, window, 0, rounds)

	ticks := sim.MuxTicks(rounds, window)
	stats, err := fabric.Run(newSim(t, n), muxes)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rounds != ticks {
		t.Fatalf("ran %d ticks, want %d", stats.Rounds, ticks)
	}

	for id := 0; id < n; id++ {
		if m := muxes[id]; !m.Done() || m.Err() != nil {
			t.Fatalf("node %d: done=%v err=%v", id, m.Done(), m.Err())
		}
		if len(finished[id]) != len(rounds) {
			t.Fatalf("node %d finished %v", id, finished[id])
		}
		for k, inst := range finished[id] {
			if inst != k {
				t.Fatalf("node %d finish order %v, want identity", id, finished[id])
			}
		}
		for inst, ti := range insts[id] {
			if len(ti.rounds) != rounds[inst] {
				t.Fatalf("node %d instance %d ran rounds %v", id, inst, ti.rounds)
			}
			for r := 0; r < rounds[inst]; r++ {
				if ti.rounds[r] != r+1 {
					t.Fatalf("node %d instance %d local rounds %v", id, inst, ti.rounds)
				}
				// Every sender's broadcast for this instance and round must
				// arrive intact: n copies of [instance, round].
				want := bytes.Repeat([]byte{byte(inst), byte(r + 1)}, n)
				if !bytes.Equal(ti.seen[r], want) {
					t.Fatalf("node %d instance %d round %d inbox %v, want %v", id, inst, r+1, ti.seen[r], want)
				}
			}
		}
	}
}

// TestRunStaggeredWindow checks the greedy schedule with unequal round
// counts: short instances retire and later ones slide into the window.
func TestRunStaggeredWindow(t *testing.T) {
	const n, window = 3, 2
	rounds := []int{4, 1, 2, 1}
	muxes, insts, _ := buildMuxes(t, n, window, 0, rounds)
	if _, err := fabric.Run(newSim(t, n), muxes); err != nil {
		t.Fatal(err)
	}
	for id := 0; id < n; id++ {
		for inst, ti := range insts[id] {
			if len(ti.rounds) != rounds[inst] {
				t.Fatalf("node %d instance %d delivered %d rounds, want %d", id, inst, len(ti.rounds), rounds[inst])
			}
		}
	}
}

func TestRunParallelMatchesSequential(t *testing.T) {
	rounds := []int{2, 2, 2, 2}
	run := func(parallel bool) [][]*tagInstance {
		muxes, insts, _ := buildMuxes(t, 3, 2, 0, rounds)
		var opts []fabric.Option
		if parallel {
			opts = append(opts, fabric.WithParallel())
		}
		if _, err := fabric.Run(newSim(t, 3), muxes, opts...); err != nil {
			t.Fatal(err)
		}
		return insts
	}
	seq, par := run(false), run(true)
	for id := range seq {
		for inst := range seq[id] {
			for r := range seq[id][inst].seen {
				if !bytes.Equal(seq[id][inst].seen[r], par[id][inst].seen[r]) {
					t.Fatalf("node %d instance %d round %d: engines diverge", id, inst, r+1)
				}
			}
		}
	}
}

// TestRunLazyRounds: RoundsFor resolves an instance's round count at the
// moment the instance enters the window — not before — and the resulting
// schedule is byte-identical to the equivalent static Rounds schedule.
func TestRunLazyRounds(t *testing.T) {
	const n, window = 3, 2
	rounds := []int{4, 1, 2, 3}

	build := func(lazy bool, resolved *[][]int) []*sim.Mux {
		muxes := make([]*sim.Mux, n)
		for id := 0; id < n; id++ {
			id := id
			cfg := sim.MuxConfig{
				ID: id, N: n, Window: window,
				Start: func(inst int) (sim.Instance, error) {
					return &tagInstance{inst: inst, n: n}, nil
				},
			}
			if lazy {
				cfg.Instances = len(rounds)
				cfg.RoundsFor = func(inst int) int {
					(*resolved)[id] = append((*resolved)[id], inst)
					return rounds[inst]
				}
			} else {
				cfg.Rounds = rounds
			}
			m, err := sim.NewMux(cfg)
			if err != nil {
				t.Fatal(err)
			}
			muxes[id] = m
		}
		return muxes
	}

	resolved := make([][]int, n)
	lazyMuxes := build(true, &resolved)

	// Nothing resolves before the first tick (lazy, not eager).
	for id := range resolved {
		if len(resolved[id]) != 0 {
			t.Fatalf("node %d resolved %v before any tick", id, resolved[id])
		}
	}
	want := sim.MuxTicks(rounds, window)
	stats, err := fabric.Run(newSim(t, n), lazyMuxes)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rounds != want {
		t.Fatalf("lazy schedule ran %d ticks, want %d", stats.Rounds, want)
	}
	for id := 0; id < n; id++ {
		m := lazyMuxes[id]
		if !m.Done() || m.Err() != nil {
			t.Fatalf("node %d: done=%v err=%v", id, m.Done(), m.Err())
		}
		// Instances resolve in schedule order, each exactly once.
		if len(resolved[id]) != len(rounds) {
			t.Fatalf("node %d resolved %v", id, resolved[id])
		}
		for k, inst := range resolved[id] {
			if inst != k {
				t.Fatalf("node %d resolution order %v, want identity", id, resolved[id])
			}
		}
		if m.TotalTicks() != 0 {
			t.Fatalf("lazy mux claims TotalTicks %d, want 0 (unknown)", m.TotalTicks())
		}
	}

	// The wire behavior must match the static schedule exactly.
	staticMuxes := build(false, nil)
	stats2, err := fabric.Run(newSim(t, n), staticMuxes)
	if err != nil {
		t.Fatal(err)
	}
	if stats2.Rounds != stats.Rounds || stats2.Bytes != stats.Bytes || stats2.Messages != stats.Messages {
		t.Fatalf("lazy and static schedules diverge: %+v vs %+v", stats, stats2)
	}
}

// TestRunWorkersMatchSequential: the per-instance worker pool is purely an
// execution detail — the same schedule at Workers 0 and Workers 3, over
// the parallel runtime, must deliver byte-identical inboxes. Run with
// -race this also exercises concurrent PrepareRound/DeliverRound across
// the window's instances.
func TestRunWorkersMatchSequential(t *testing.T) {
	const n, window = 4, 3
	rounds := []int{2, 3, 1, 4, 2, 3}
	run := func(workers int) [][]*tagInstance {
		muxes, insts, _ := buildMuxes(t, n, window, workers, rounds)
		if _, err := fabric.Run(newSim(t, n), muxes, fabric.WithParallel()); err != nil {
			t.Fatal(err)
		}
		return insts
	}
	seq, par := run(0), run(3)
	for id := range seq {
		for inst := range seq[id] {
			if len(seq[id][inst].seen) != len(par[id][inst].seen) {
				t.Fatalf("node %d instance %d: %d vs %d rounds", id, inst, len(seq[id][inst].seen), len(par[id][inst].seen))
			}
			for r := range seq[id][inst].seen {
				if !bytes.Equal(seq[id][inst].seen[r], par[id][inst].seen[r]) {
					t.Fatalf("node %d instance %d round %d: worker pool diverges from sequential", id, inst, r+1)
				}
			}
		}
	}
}

// TestRunDivergenceSurfaces: local schedules disagreeing on an
// instance's round count fail with ErrDiverged — at the first misaligned
// tick (mid-schedule) or at the first partial finish (tail divergence).
func TestRunDivergenceSurfaces(t *testing.T) {
	for _, c := range []struct {
		name     string
		rounds   int // node 0's resolved count for instance 1 (others: 3)
		followup int // trailing third instance's count, 0 = none
	}{
		{"mid-schedule mismatch", 1, 3},
		{"early finish", 1, 0},
	} {
		t.Run(c.name, func(t *testing.T) {
			const n = 3
			instances := 2
			if c.followup > 0 {
				instances = 3
			}
			muxes := make([]*sim.Mux, n)
			for id := 0; id < n; id++ {
				id := id
				m, err := sim.NewMux(sim.MuxConfig{
					ID: id, N: n, Window: 1, Instances: instances,
					RoundsFor: func(inst int) int {
						switch {
						case inst == 1 && id == 0:
							return c.rounds
						case inst == 2:
							return c.followup
						default:
							return 3
						}
					},
					Start: func(inst int) (sim.Instance, error) {
						return &tagInstance{inst: inst, n: n}, nil
					},
				})
				if err != nil {
					t.Fatal(err)
				}
				muxes[id] = m
			}
			_, err := fabric.Run(newSim(t, n), muxes)
			if !errors.Is(err, fabric.ErrDiverged) {
				t.Fatalf("divergence not classified: %v", err)
			}
		})
	}
}

// TestRunAdvisoryErrorsMute: an advisory node whose mux wedges is muted —
// the run continues and completes for everyone else, the wedged mux
// keeps its error, and nothing deadlocks. A non-advisory wedge kills the
// run with the factory's error.
func TestRunAdvisoryErrorsMute(t *testing.T) {
	const n = 4
	rounds := []int{2, 2, 2}
	build := func(failNode int) []*sim.Mux {
		muxes := make([]*sim.Mux, n)
		for id := 0; id < n; id++ {
			id := id
			m, err := sim.NewMux(sim.MuxConfig{
				ID: id, N: n, Window: 1, Rounds: rounds,
				Start: func(inst int) (sim.Instance, error) {
					if id == failNode && inst == 1 {
						return nil, fmt.Errorf("boom")
					}
					return &tagInstance{inst: inst, n: n}, nil
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			muxes[id] = m
		}
		return muxes
	}

	// Advisory: the run completes for the other three nodes.
	muxes := build(2)
	advisory := []bool{false, false, true, false}
	stats, err := fabric.Run(newSim(t, n), muxes, fabric.WithAdvisoryErrors(advisory))
	if err != nil {
		t.Fatal(err)
	}
	if want := sim.MuxTicks(rounds, 1); stats.Rounds != want {
		t.Fatalf("muted run took %d ticks, want %d", stats.Rounds, want)
	}
	for id, m := range muxes {
		if id == 2 {
			if m.Err() == nil || m.Done() {
				t.Fatalf("muted node lost its wedge: done=%v err=%v", m.Done(), m.Err())
			}
			continue
		}
		if !m.Done() || m.Err() != nil {
			t.Fatalf("node %d: done=%v err=%v", id, m.Done(), m.Err())
		}
	}

	// Non-advisory: the wedge is fatal and carries the factory error.
	muxes = build(2)
	_, err = fabric.Run(newSim(t, n), muxes)
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("non-advisory wedge not surfaced with its cause: %v", err)
	}
}

// TestRunMaxTicksStopsWedgedSchedule: a bounded run whose schedule
// cannot complete (every node's last instance wedged... here simulated by
// muting all-but-running) stops at the bound instead of spinning.
func TestRunMaxTicksStopsWedgedSchedule(t *testing.T) {
	const n = 3
	// Instances that run 5 rounds against a bound of 3 ticks.
	muxes, _, _ := buildMuxes(t, n, 1, 0, []int{5})
	stats, err := fabric.Run(newSim(t, n), muxes, fabric.WithMaxTicks(3))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rounds != 3 {
		t.Fatalf("bounded run took %d ticks, want 3", stats.Rounds)
	}
	for _, m := range muxes {
		if m.Done() {
			t.Fatal("5-round schedule done after 3 ticks")
		}
	}
}

// TestRunTickHookStopsRun: a hook error stops the run after its tick.
func TestRunTickHookStopsRun(t *testing.T) {
	const n = 3
	muxes, _, _ := buildMuxes(t, n, 1, 0, []int{5})
	sentinel := errors.New("stop here")
	ticks := 0
	_, err := fabric.Run(newSim(t, n), muxes, fabric.WithTickHook(func(tick int) error {
		ticks = tick
		if tick == 2 {
			return sentinel
		}
		return nil
	}))
	if !errors.Is(err, sentinel) {
		t.Fatalf("hook error not surfaced: %v", err)
	}
	if ticks != 2 {
		t.Fatalf("hook last saw tick %d, want 2", ticks)
	}
}

// TestRunValidatesInputs: mux/local mismatches are rejected up front.
func TestRunValidatesInputs(t *testing.T) {
	muxes, _, _ := buildMuxes(t, 3, 1, 0, []int{1})
	f := newSim(t, 3)
	if _, err := fabric.Run(f, muxes[:2]); err == nil {
		t.Error("short mux list accepted")
	}
	if _, err := fabric.Run(f, []*sim.Mux{muxes[1], muxes[0], muxes[2]}); err == nil {
		t.Error("misordered muxes accepted")
	}
	if _, err := fabric.Run(f, muxes, fabric.WithAdvisoryErrors([]bool{true})); err == nil {
		t.Error("short advisory mask accepted")
	}
}
