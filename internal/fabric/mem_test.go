package fabric_test

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"shiftgears/internal/fabric"
	"shiftgears/internal/sim"
)

func newMem(t *testing.T, n int, plan fabric.Plan) *fabric.Mem {
	t.Helper()
	f, err := fabric.NewMem(n, plan)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// runTags drives a fresh tag-mux cluster over the given fabric and
// returns every instance's observed inboxes plus the run stats.
func runTags(t *testing.T, f fabric.Fabric, n, window int, rounds []int) ([][]*tagInstance, *sim.Stats) {
	t.Helper()
	muxes, insts, _ := buildMuxes(t, n, window, 0, rounds)
	stats, err := fabric.Run(f, muxes)
	if err != nil {
		t.Fatal(err)
	}
	return insts, stats
}

// TestMemZeroFaultMatchesSim: with an empty plan the chaos fabric is the
// Sim fabric, byte for byte — inboxes, tick counts, traffic totals.
func TestMemZeroFaultMatchesSim(t *testing.T) {
	const n, window = 4, 2
	rounds := []int{3, 1, 2, 3, 2}
	simInsts, simStats := runTags(t, newSim(t, n), n, window, rounds)
	memInsts, memStats := runTags(t, newMem(t, n, fabric.Plan{Seed: 7}), n, window, rounds)

	if simStats.Rounds != memStats.Rounds || simStats.Bytes != memStats.Bytes || simStats.Messages != memStats.Messages {
		t.Fatalf("zero-fault mem stats diverge: %+v vs %+v", memStats, simStats)
	}
	for id := range simInsts {
		for inst := range simInsts[id] {
			if !reflect.DeepEqual(simInsts[id][inst].seen, memInsts[id][inst].seen) {
				t.Fatalf("node %d instance %d: zero-fault mem inboxes diverge from sim", id, inst)
			}
		}
	}
}

// TestMemDelayAndReorderInvisible: within-bound delay and within-tick
// reordering are absorbed by the synchronous barrier — the whole point
// of the synchrony claim — so even at 100% delay probability with
// shuffled delivery the run is byte-identical to Sim.
func TestMemDelayAndReorderInvisible(t *testing.T) {
	const n, window = 4, 2
	rounds := []int{3, 1, 2, 3, 2}
	simInsts, simStats := runTags(t, newSim(t, n), n, window, rounds)
	mem := newMem(t, n, fabric.Plan{Seed: 3, Delay: 1.0, Reorder: true})
	memInsts, memStats := runTags(t, mem, n, window, rounds)

	if simStats.Rounds != memStats.Rounds || simStats.Bytes != memStats.Bytes {
		t.Fatalf("delayed/reordered stats diverge: %+v vs %+v", memStats, simStats)
	}
	for id := range simInsts {
		for inst := range simInsts[id] {
			if !reflect.DeepEqual(simInsts[id][inst].seen, memInsts[id][inst].seen) {
				t.Fatalf("node %d instance %d: delay/reorder changed delivered bytes", id, inst)
			}
		}
	}
	if mem.Stats().Delayed == 0 {
		t.Fatal("Delay=1.0 delayed nothing")
	}
}

// TestMemDeterministic: the same plan produces the same faults — and the
// same delivered bytes — on every run.
func TestMemDeterministic(t *testing.T) {
	const n, window = 4, 2
	rounds := []int{3, 2, 3, 2}
	plan := fabric.Plan{Seed: 11, Victims: []int{1}, Drop: 0.5, Late: 0.2}
	a := newMem(t, n, plan)
	aInsts, _ := runTags(t, a, n, window, rounds)
	b := newMem(t, n, plan)
	bInsts, _ := runTags(t, b, n, window, rounds)

	if a.Stats() != b.Stats() {
		t.Fatalf("same plan, different fault schedule: %+v vs %+v", a.Stats(), b.Stats())
	}
	if a.Stats().Dropped == 0 || a.Stats().Late == 0 {
		t.Fatalf("plan injected nothing: %+v", a.Stats())
	}
	for id := range aInsts {
		for inst := range aInsts[id] {
			if !reflect.DeepEqual(aInsts[id][inst].seen, bInsts[id][inst].seen) {
				t.Fatalf("node %d instance %d: runs diverge under the same plan", id, inst)
			}
		}
	}
}

// TestMemDropsSilenceVictimLinks: a victim's outbound frames vanish for
// others while its self-delivery — and every non-victim link — stays
// intact.
func TestMemDropsSilenceVictimLinks(t *testing.T) {
	const n = 3
	mem := newMem(t, n, fabric.Plan{Seed: 5, Victims: []int{1}, Drop: 1.0})
	insts, _ := runTags(t, mem, n, 1, []int{2})
	for id := 0; id < n; id++ {
		for r := 0; r < 2; r++ {
			seen := insts[id][0].seen[r]
			// Each round every live sender contributes [0, round].
			var want []byte
			for sender := 0; sender < n; sender++ {
				if sender == 1 && id != 1 {
					continue // dropped on every victim link, kept on self
				}
				want = append(want, 0, byte(r+1))
			}
			if !reflect.DeepEqual(seen, want) {
				t.Fatalf("node %d round %d inbox %v, want %v", id, r+1, seen, want)
			}
		}
	}
	if got := mem.Stats().Dropped; got != 2*2 { // 2 rounds × 2 non-self receivers
		t.Fatalf("dropped %d frames, want 4", got)
	}
}

// TestMemPartitionHealsOnSchedule: frames cross a partition in neither
// direction during its window and flow again after it heals.
func TestMemPartitionHealsOnSchedule(t *testing.T) {
	const n = 4
	// One instance, 6 rounds; ticks 3-4 partition {0, 1} | {2, 3}.
	mem := newMem(t, n, fabric.Plan{
		Partitions: []fabric.Partition{{From: 3, Until: 5, Group: []int{0, 1}}},
	})
	insts, _ := runTags(t, mem, n, 1, []int{6})
	for id := 0; id < n; id++ {
		for r := 0; r < 6; r++ {
			tick := r + 1
			var want []byte
			for sender := 0; sender < n; sender++ {
				sameSide := (sender <= 1) == (id <= 1)
				if tick >= 3 && tick < 5 && !sameSide {
					continue // cut
				}
				want = append(want, 0, byte(tick))
			}
			if got := insts[id][0].seen[r]; !reflect.DeepEqual(got, want) {
				t.Fatalf("node %d tick %d inbox %v, want %v", id, tick, got, want)
			}
		}
	}
	if mem.Stats().Cut != 2*2*2*2 { // 2 ticks × 2×2 cross pairs × both directions
		t.Fatalf("cut %d frames, want 16", mem.Stats().Cut)
	}
}

// TestMemCrashSeversNode: a crashed node neither sends nor receives
// (self-delivery excepted) during its window and resumes after restart.
func TestMemCrashSeversNode(t *testing.T) {
	const n = 3
	mem := newMem(t, n, fabric.Plan{
		Crashes: []fabric.Crash{{Node: 2, From: 2, Until: 4}},
	})
	insts, _ := runTags(t, mem, n, 1, []int{5})
	for id := 0; id < n; id++ {
		for r := 0; r < 5; r++ {
			tick := r + 1
			var want []byte
			for sender := 0; sender < n; sender++ {
				crashed := tick >= 2 && tick < 4 && (sender == 2 || id == 2) && sender != id
				if crashed {
					continue
				}
				want = append(want, 0, byte(tick))
			}
			if got := insts[id][0].seen[r]; !reflect.DeepEqual(got, want) {
				t.Fatalf("node %d tick %d inbox %v, want %v", id, tick, got, want)
			}
		}
	}
}

// TestMemPlanValidation rejects malformed plans.
func TestMemPlanValidation(t *testing.T) {
	bad := []fabric.Plan{
		{Drop: 1.5, Victims: []int{0}},
		{Drop: 0.5},         // loss without victims
		{Victims: []int{9}}, // out of range
		{Late: -0.1, Victims: []int{0}},
		{Partitions: []fabric.Partition{{From: 0, Until: 2, Group: []int{0}}}},          // 0-based tick
		{Partitions: []fabric.Partition{{From: 1, Until: 2, Group: []int{0, 1, 2, 3}}}}, // no split
		{Crashes: []fabric.Crash{{Node: 4, From: 1, Until: 2}}},
	}
	for i, plan := range bad {
		if _, err := fabric.NewMem(4, plan); err == nil {
			t.Errorf("plan %d accepted: %+v", i, plan)
		}
	}
	if _, err := fabric.NewMem(4, fabric.Plan{}); err != nil {
		t.Errorf("empty plan rejected: %v", err)
	}
}

// TestMemAffected aggregates victims, partitioned nodes, and crashed
// nodes — the set a caller excludes from agreement checks.
func TestMemAffected(t *testing.T) {
	plan := fabric.Plan{
		Victims:    []int{5, 1},
		Partitions: []fabric.Partition{{From: 1, Until: 2, Group: []int{2}}},
		Crashes:    []fabric.Crash{{Node: 1, From: 1, Until: 2}},
	}
	if got := plan.Affected(); !reflect.DeepEqual(got, []int{1, 2, 5}) {
		t.Fatalf("Affected() = %v, want [1 2 5]", got)
	}
	if got := (fabric.Plan{}).Affected(); len(got) != 0 {
		t.Fatalf("empty plan affects %v", got)
	}
}

// TestMemWedgeErrorMentionsWedged: documentation-level pin for the
// runtime error classes surfaced through the chaos fabric path.
func TestMemWedgeErrorMentionsWedged(t *testing.T) {
	if !strings.Contains(fabric.ErrWedged.Error(), "wedged") {
		t.Fatal("ErrWedged lost its name")
	}
}

// BenchmarkFabricTick measures one global tick of the full in-process
// hot path — every node's Outboxes, the fabric route, every node's
// Deliver — at a steady-state window. allocs/op is allocs per tick per
// cluster and must stay in single digits (the PR 4 scorecard, now
// without the section codec on the path at all).
func BenchmarkFabricTick(b *testing.B) {
	for _, bc := range []struct{ n, window, payload int }{
		{4, 4, 64},
		{7, 8, 64},
		{7, 8, 1024},
	} {
		b.Run(fmt.Sprintf("n=%d/window=%d/payload=%d", bc.n, bc.window, bc.payload), func(b *testing.B) {
			muxes := make([]*sim.Mux, bc.n)
			for id := 0; id < bc.n; id++ {
				out := sim.Broadcast(bc.n, make([]byte, bc.payload))
				m, err := sim.NewMux(sim.MuxConfig{
					ID: id, N: bc.n, Window: bc.window,
					Rounds: repeatRounds(bc.window, b.N+1),
					Start: func(inst int) (sim.Instance, error) {
						return &benchInstance{out: out}, nil
					},
				})
				if err != nil {
					b.Fatal(err)
				}
				muxes[id] = m
			}
			f, err := fabric.NewSim(bc.n)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			if _, err := fabric.Run(f, muxes, fabric.WithMaxTicks(b.N)); err != nil {
				b.Fatal(err)
			}
		})
	}
}

func repeatRounds(k, rounds int) []int {
	out := make([]int, k)
	for i := range out {
		out[i] = rounds
	}
	return out
}

// benchInstance broadcasts a fixed prebuilt outbox every round and reads
// its inbox without allocating — so the benchmark measures the
// runtime/fabric machinery, not the instances.
type benchInstance struct {
	out  [][]byte
	sink int
}

func (bi *benchInstance) PrepareRound(round int) [][]byte { return bi.out }

func (bi *benchInstance) DeliverRound(round int, inbox [][]byte) {
	for _, p := range inbox {
		bi.sink += len(p)
	}
}
