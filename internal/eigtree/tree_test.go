package eigtree

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func buildTree(t *testing.T, n, source int, repeat bool, maxLevel int) *Tree {
	t.Helper()
	return NewTree(mustEnum(t, n, source, repeat, maxLevel))
}

func TestTreeLifecycle(t *testing.T) {
	tr := buildTree(t, 7, 0, false, 3)
	if tr.Height() != -1 {
		t.Fatalf("empty tree height = %d, want -1 (paper's convention)", tr.Height())
	}
	if tr.Root() != Default {
		t.Fatalf("empty tree root = %d, want default", tr.Root())
	}
	tr.SetRoot(5)
	if tr.Height() != 0 || tr.Root() != 5 {
		t.Fatalf("after SetRoot: height=%d root=%d", tr.Height(), tr.Root())
	}
	if _, err := tr.AddLevel(); err != nil {
		t.Fatalf("AddLevel: %v", err)
	}
	if tr.Height() != 1 || tr.Levels() != 2 {
		t.Fatalf("after AddLevel: height=%d levels=%d", tr.Height(), tr.Levels())
	}
	// New level starts at defaults.
	for i, v := range tr.LevelValues(1) {
		if v != Default {
			t.Fatalf("fresh level value[%d] = %d, want default", i, v)
		}
	}
}

func TestAddLevelErrors(t *testing.T) {
	tr := buildTree(t, 5, 0, false, 1)
	if _, err := tr.AddLevel(); err == nil {
		t.Fatal("AddLevel on empty tree should fail")
	}
	tr.SetRoot(1)
	if _, err := tr.AddLevel(); err != nil {
		t.Fatalf("first AddLevel: %v", err)
	}
	if _, err := tr.AddLevel(); err == nil {
		t.Fatal("AddLevel past enumeration depth should fail")
	}
}

func TestStoreFromPlacesClaimsAtOwnChild(t *testing.T) {
	// Processor r's claim for node α lands exactly at child α·r.
	tr := buildTree(t, 6, 0, false, 2)
	tr.SetRoot(9)
	mustAdd(t, tr)
	e := tr.Enum()
	for r := 1; r < 6; r++ {
		claims := []Value{Value(10 + r)}
		if err := tr.StoreFrom(r, claims); err != nil {
			t.Fatalf("StoreFrom(%d): %v", r, err)
		}
	}
	for r := 1; r < 6; r++ {
		idx, ok := e.ChildIndex(0, 0, r)
		if !ok {
			t.Fatalf("no child for %d", r)
		}
		if got := tr.ValueAt(1, idx); got != Value(10+r) {
			t.Errorf("child of %d = %d, want %d", r, got, 10+r)
		}
	}
}

func TestStoreFromNilKeepsDefaults(t *testing.T) {
	tr := buildTree(t, 5, 0, false, 2)
	tr.SetRoot(1)
	mustAdd(t, tr)
	if err := tr.StoreFrom(2, nil); err != nil {
		t.Fatalf("StoreFrom(nil): %v", err)
	}
	for i, v := range tr.LevelValues(1) {
		if v != Default {
			t.Fatalf("value[%d] = %d after nil claim, want default", i, v)
		}
	}
}

func TestStoreFromLengthMismatch(t *testing.T) {
	tr := buildTree(t, 5, 0, false, 2)
	tr.SetRoot(1)
	mustAdd(t, tr)
	if err := tr.StoreFrom(2, []Value{1, 2}); err == nil {
		t.Fatal("StoreFrom with wrong claim length should fail")
	}
	if err := tr.StoreFrom(2, nil); err != nil {
		t.Fatalf("nil claim must be accepted: %v", err)
	}
}

func TestStoreFromSkipsIllegalChildren(t *testing.T) {
	// At level 2, r's claim is only stored under nodes whose path does not
	// already contain r.
	tr := buildTree(t, 5, 0, false, 2)
	tr.SetRoot(1)
	mustAdd(t, tr)
	mustAdd(t, tr)
	e := tr.Enum()
	claims := make([]Value, e.Size(1))
	for i := range claims {
		claims[i] = 7
	}
	if err := tr.StoreFrom(3, claims); err != nil {
		t.Fatalf("StoreFrom: %v", err)
	}
	for i, seq := range e.Level(2) {
		want := Default
		if int(seq[len(seq)-1]) == 3 {
			want = 7
		}
		if got := tr.ValueAt(2, i); got != want {
			t.Errorf("node %v = %d, want %d", seq.Labels(), got, want)
		}
	}
}

func TestZeroSender(t *testing.T) {
	tr := buildTree(t, 5, 0, false, 2)
	tr.SetRoot(1)
	mustAdd(t, tr)
	for r := 1; r < 5; r++ {
		if err := tr.StoreFrom(r, []Value{Value(r)}); err != nil {
			t.Fatalf("StoreFrom: %v", err)
		}
	}
	tr.ZeroSender(3)
	e := tr.Enum()
	for r := 1; r < 5; r++ {
		idx, _ := e.ChildIndex(0, 0, r)
		want := Value(r)
		if r == 3 {
			want = Default
		}
		if got := tr.ValueAt(1, idx); got != want {
			t.Errorf("child %d = %d, want %d", r, got, want)
		}
	}
}

func TestLeafPayloadAndDecodeRoundTrip(t *testing.T) {
	tr := buildTree(t, 6, 1, false, 2)
	tr.SetRoot(4)
	payload := tr.LeafPayload()
	if len(payload) != 1 || payload[0] != 4 {
		t.Fatalf("root payload = %v", payload)
	}
	mustAdd(t, tr)
	for r := 0; r < 6; r++ {
		if r == 1 {
			continue
		}
		_ = tr.StoreFrom(r, []Value{Value(r + 1)})
	}
	payload = tr.LeafPayload()
	decoded := DecodeClaim(payload, len(payload))
	if decoded == nil {
		t.Fatal("DecodeClaim rejected a valid payload")
	}
	for i, v := range decoded {
		if v != tr.ValueAt(1, i) {
			t.Fatalf("decoded[%d] = %d, want %d", i, v, tr.ValueAt(1, i))
		}
	}
}

func TestDecodeClaimRejects(t *testing.T) {
	if DecodeClaim(nil, 3) != nil {
		t.Error("nil payload should decode to nil")
	}
	if DecodeClaim([]byte{1, 2}, 3) != nil {
		t.Error("short payload should decode to nil")
	}
	if DecodeClaim([]byte{1, 2, 3, 4}, 3) != nil {
		t.Error("long payload should decode to nil")
	}
	if got := DecodeClaim([]byte{1, 2, 3}, 3); got == nil {
		t.Error("exact payload rejected")
	}
}

func TestDecodeClaimProperty(t *testing.T) {
	f := func(payload []byte) bool {
		got := DecodeClaim(payload, 5)
		if len(payload) != 5 {
			return got == nil
		}
		for i := range payload {
			if got[i] != Value(payload[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReorderSwapsTransposedLeaves(t *testing.T) {
	// Reorder swaps tree(s·p·q) and tree(s·q·p) (paper Section 4.3).
	n := 5
	tr := buildTree(t, n, 0, true, 2)
	tr.SetRoot(1)
	mustAdd(t, tr)
	mustAdd(t, tr)
	// Fill leaves with a recognizable pattern: value(p, q) = p*n+q.
	e := tr.Enum()
	for q := 0; q < n; q++ {
		claims := make([]Value, e.Size(1))
		for p := 0; p < n; p++ {
			claims[p] = Value(p*n + q)
		}
		if err := tr.StoreFrom(q, claims); err != nil {
			t.Fatalf("StoreFrom: %v", err)
		}
	}
	if err := tr.Reorder(); err != nil {
		t.Fatalf("Reorder: %v", err)
	}
	for p := 0; p < n; p++ {
		for q := 0; q < n; q++ {
			if got, want := tr.ValueAt(2, p*n+q), Value(q*n+p); got != want {
				t.Fatalf("post-reorder leaf (%d,%d) = %d, want %d", p, q, got, want)
			}
		}
	}
	// After reordering, the subtree rooted at s·q holds exactly the vector
	// received from q ("the leaves in the subtree rooted at sq contain the
	// values received from q").
	for q := 0; q < n; q++ {
		for p := 0; p < n; p++ {
			if got, want := tr.ValueAt(2, q*n+p), Value(p*n+q); got != want {
				t.Fatalf("subtree s·%d slot %d = %d, want q's claim %d", q, p, got, want)
			}
		}
	}
}

func TestReorderErrors(t *testing.T) {
	noRepeat := buildTree(t, 5, 0, false, 2)
	noRepeat.SetRoot(1)
	if err := noRepeat.Reorder(); err == nil {
		t.Error("Reorder on a tree without repetitions should fail")
	}
	twoLevels := buildTree(t, 5, 0, true, 2)
	twoLevels.SetRoot(1)
	mustAdd(t, twoLevels)
	if err := twoLevels.Reorder(); err == nil {
		t.Error("Reorder on a two-level tree should fail")
	}
}

func TestReorderIsInvolution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(4)
		e, err := NewEnum(n, rng.Intn(n), true, 2)
		if err != nil {
			return false
		}
		tr := NewTree(e)
		tr.SetRoot(Value(rng.Intn(256)))
		_, _ = tr.AddLevel()
		_, _ = tr.AddLevel()
		orig := make([]Value, e.Size(2))
		for i := range orig {
			orig[i] = Value(rng.Intn(256))
			tr.LevelValues(2)[i] = orig[i]
		}
		if tr.Reorder() != nil || tr.Reorder() != nil {
			return false
		}
		for i, v := range tr.LevelValues(2) {
			if v != orig[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDropLeavesAndSetLevelValues(t *testing.T) {
	tr := buildTree(t, 5, 0, true, 2)
	tr.SetRoot(1)
	mustAdd(t, tr)
	mustAdd(t, tr)
	if tr.Levels() != 3 {
		t.Fatalf("levels = %d", tr.Levels())
	}
	vals := make([]Value, 5)
	for i := range vals {
		vals[i] = Value(i)
	}
	if err := tr.SetLevelValues(1, vals); err != nil {
		t.Fatalf("SetLevelValues: %v", err)
	}
	vals[0] = 99 // caller's slice must have been copied
	if tr.ValueAt(1, 0) == 99 {
		t.Fatal("SetLevelValues aliased the caller's slice")
	}
	tr.DropLeaves()
	if tr.Levels() != 2 {
		t.Fatalf("levels after DropLeaves = %d", tr.Levels())
	}
	if err := tr.SetLevelValues(1, vals[:2]); err == nil {
		t.Fatal("SetLevelValues with wrong size should fail")
	}
	tr.DropLeaves()
	tr.DropLeaves() // dropping at the root is a no-op
	if tr.Levels() != 1 {
		t.Fatalf("levels = %d, want 1", tr.Levels())
	}
}

func TestCloneIndependence(t *testing.T) {
	tr := buildTree(t, 5, 0, false, 2)
	tr.SetRoot(3)
	mustAdd(t, tr)
	c := tr.Clone()
	tr.ZeroSender(1)
	tr.SetRoot(7)
	if c.Root() != 3 {
		t.Fatalf("clone root changed to %d", c.Root())
	}
}

func TestNodeCount(t *testing.T) {
	tr := buildTree(t, 5, 0, false, 2)
	tr.SetRoot(1)
	if tr.NodeCount() != 1 {
		t.Fatalf("NodeCount = %d, want 1", tr.NodeCount())
	}
	mustAdd(t, tr)
	if tr.NodeCount() != 1+4 {
		t.Fatalf("NodeCount = %d, want 5", tr.NodeCount())
	}
	mustAdd(t, tr)
	if tr.NodeCount() != 1+4+12 {
		t.Fatalf("NodeCount = %d, want 17", tr.NodeCount())
	}
}

func TestCollapseViaSetRoot(t *testing.T) {
	tr := buildTree(t, 5, 0, false, 2)
	tr.SetRoot(1)
	mustAdd(t, tr)
	mustAdd(t, tr)
	tr.SetRoot(2) // the shift operator's collapse
	if tr.Levels() != 1 || tr.Root() != 2 {
		t.Fatalf("after collapse: levels=%d root=%d", tr.Levels(), tr.Root())
	}
	// The tree can grow again from the collapsed state.
	mustAdd(t, tr)
	if tr.Levels() != 2 {
		t.Fatalf("levels = %d", tr.Levels())
	}
}

func mustAdd(t *testing.T, tr *Tree) {
	t.Helper()
	if _, err := tr.AddLevel(); err != nil {
		t.Fatalf("AddLevel: %v", err)
	}
}
