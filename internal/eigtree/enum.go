package eigtree

import (
	"errors"
	"fmt"
)

// maxEnumNodes bounds the total number of tree nodes an Enum will
// materialize. It protects callers from accidentally requesting an
// Information Gathering Tree too large to fit in memory (the tree of the
// Exponential Algorithm grows as O(n^t), paper Section 3).
const maxEnumNodes = 1 << 26

// ErrTooLarge is returned when an enumeration would exceed maxEnumNodes.
var ErrTooLarge = errors.New("eigtree: enumeration exceeds node budget")

// Seq is a node of the Information Gathering Tree, identified by the
// sequence of processor labels on the path from the root: the byte at
// position 0 is always the source, and each subsequent byte is a processor
// id. Using an immutable string keeps sequences usable as map keys and
// cheap to slice.
type Seq string

// Labels returns the processor ids in the sequence.
func (s Seq) Labels() []int {
	out := make([]int, len(s))
	for i := 0; i < len(s); i++ {
		out[i] = int(s[i])
	}
	return out
}

// contains reports whether label p occurs in the sequence.
func (s Seq) contains(p int) bool {
	for i := 0; i < len(s); i++ {
		if int(s[i]) == p {
			return true
		}
	}
	return false
}

// Enum is the canonical enumeration of the nodes of an Information
// Gathering Tree for n processors with a fixed source. Nodes at level h
// (sequences of length h+1) are listed in depth-first lexicographic order,
// which has two properties the protocols rely on:
//
//   - every processor computes the identical ordering, so a tree level can
//     be shipped as a bare array of values with no per-node labels; and
//   - the children of the node at index i of level h occupy the contiguous
//     index range [i*c, (i+1)*c) of level h+1, where c = ChildCount(h),
//     because every node at a level has the same number of children.
//
// With repeat=false the tree is "without repetitions" (paper Section 3): no
// label occurs twice on a root-to-leaf path and the source never occurs
// below the root, so a node at level h has n-1-h children. With repeat=true
// (Algorithm C, Section 4.3) every internal node has exactly n children,
// one per processor name.
//
// An Enum is immutable after construction and safe for concurrent use.
type Enum struct {
	n      int
	source int
	repeat bool
	levels [][]Seq
}

// NewEnum builds the enumeration of levels 0..maxLevel for an n-processor
// tree rooted at source. It returns ErrTooLarge if the total node count
// would exceed the package budget.
func NewEnum(n, source int, repeat bool, maxLevel int) (*Enum, error) {
	switch {
	case n < 2 || n > 255:
		return nil, fmt.Errorf("eigtree: n = %d out of range [2, 255]", n)
	case source < 0 || source >= n:
		return nil, fmt.Errorf("eigtree: source %d out of range [0, %d)", source, n)
	case maxLevel < 0:
		return nil, fmt.Errorf("eigtree: negative max level %d", maxLevel)
	case !repeat && maxLevel > n-1:
		return nil, fmt.Errorf("eigtree: max level %d exceeds tree height %d without repetitions", maxLevel, n-1)
	}

	total := 1
	size := 1
	for h := 0; h < maxLevel; h++ {
		c := n
		if !repeat {
			c = n - 1 - h
		}
		size *= c
		total += size
		if total > maxEnumNodes {
			return nil, fmt.Errorf("%w: n=%d maxLevel=%d", ErrTooLarge, n, maxLevel)
		}
	}

	e := &Enum{n: n, source: source, repeat: repeat}
	e.levels = make([][]Seq, maxLevel+1)
	e.levels[0] = []Seq{Seq([]byte{byte(source)})}
	for h := 0; h < maxLevel; h++ {
		cur := e.levels[h]
		next := make([]Seq, 0, len(cur)*e.ChildCount(h))
		for _, seq := range cur {
			for p := 0; p < n; p++ {
				if !repeat && (p == source || seq.contains(p)) {
					continue
				}
				next = append(next, seq+Seq([]byte{byte(p)}))
			}
		}
		e.levels[h+1] = next
	}
	return e, nil
}

// N returns the number of processors.
func (e *Enum) N() int { return e.n }

// Source returns the source processor id (the root label).
func (e *Enum) Source() int { return e.source }

// Repeat reports whether the tree allows repeated labels on a path.
func (e *Enum) Repeat() bool { return e.repeat }

// MaxLevel returns the deepest enumerated level.
func (e *Enum) MaxLevel() int { return len(e.levels) - 1 }

// TotalNodes returns the node count of a fully grown tree — the sum of
// every level's size. Tree uses it to size its value arena once.
func (e *Enum) TotalNodes() int {
	total := 0
	for _, lvl := range e.levels {
		total += len(lvl)
	}
	return total
}

// Size returns the number of nodes at level h.
func (e *Enum) Size(h int) int { return len(e.levels[h]) }

// Level returns the sequences at level h in canonical order. The returned
// slice is shared and must not be modified.
func (e *Enum) Level(h int) []Seq { return e.levels[h] }

// ChildCount returns the number of children of every node at level h.
func (e *Enum) ChildCount(h int) int {
	if e.repeat {
		return e.n
	}
	return e.n - 1 - h
}

// LastLabel returns the processor corresponding to the node at index idx of
// level h, i.e. the last label of its sequence.
func (e *Enum) LastLabel(h, idx int) int {
	seq := e.levels[h][idx]
	return int(seq[len(seq)-1])
}

// ChildLabel returns the label of the k-th child (0-based, in ascending
// label order) of the node at index idx of level h.
func (e *Enum) ChildLabel(h, idx, k int) int {
	if e.repeat {
		return k
	}
	seq := e.levels[h][idx]
	// The k-th allowed label: ascending ids, skipping the source and the
	// labels already on the path.
	rank := 0
	for p := 0; p < e.n; p++ {
		if p == e.source || seq.contains(p) {
			continue
		}
		if rank == k {
			return p
		}
		rank++
	}
	return -1
}

// ChildIndex returns the index in level h+1 of the child of node idx
// (level h) labelled p, and whether such a child exists. In a tree without
// repetitions the child does not exist when p is the source or already on
// the path.
func (e *Enum) ChildIndex(h, idx, p int) (int, bool) {
	c := e.ChildCount(h)
	if e.repeat {
		return idx*c + p, true
	}
	seq := e.levels[h][idx]
	if p == e.source || seq.contains(p) {
		return 0, false
	}
	// Rank of p among allowed labels: ids below p, minus the source if it is
	// below p, minus path labels below p.
	rank := p
	if e.source < p {
		rank--
	}
	for i := 1; i < len(seq); i++ { // position 0 is the source, already counted
		if int(seq[i]) < p {
			rank--
		}
	}
	return idx*c + rank, true
}

// ParentIndex returns the index in level h-1 of the parent of node idx at
// level h (h ≥ 1).
func (e *Enum) ParentIndex(h, idx int) int {
	return idx / e.ChildCount(h-1)
}
