package eigtree

import (
	"math/rand"
	"testing"
)

// benchTree builds a full random tree of the given shape.
func benchTree(b *testing.B, n, depth int, repeat bool) *Tree {
	b.Helper()
	e, err := NewEnum(n, 0, repeat, depth)
	if err != nil {
		b.Fatal(err)
	}
	tr := NewTree(e)
	tr.SetRoot(1)
	rng := rand.New(rand.NewSource(1))
	for h := 1; h <= depth; h++ {
		if _, err := tr.AddLevel(); err != nil {
			b.Fatal(err)
		}
		lvl := tr.LevelValues(h)
		for i := range lvl {
			lvl[i] = Value(rng.Intn(3))
		}
	}
	return tr
}

func BenchmarkEnumBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := NewEnum(21, 0, false, 3); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkResolveMajority(b *testing.B) {
	tr := benchTree(b, 21, 3, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := tr.Resolve(ResolveMajority, 5)
		if err != nil {
			b.Fatal(err)
		}
		_ = res.Root()
	}
	b.ReportMetric(float64(tr.NodeCount()), "nodes")
}

func BenchmarkResolveSupport(b *testing.B) {
	tr := benchTree(b, 21, 3, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := tr.Resolve(ResolveSupport, 5)
		if err != nil {
			b.Fatal(err)
		}
		_ = res.Root()
	}
}

func BenchmarkStoreFrom(b *testing.B) {
	e, err := NewEnum(21, 0, false, 3)
	if err != nil {
		b.Fatal(err)
	}
	tr := NewTree(e)
	tr.SetRoot(1)
	_, _ = tr.AddLevel()
	_, _ = tr.AddLevel()
	_, _ = tr.AddLevel()
	claims := make([]Value, e.Size(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tr.StoreFrom(1+i%20, claims); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLeafPayload(b *testing.B) {
	tr := benchTree(b, 21, 3, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if p := tr.LeafPayload(); len(p) == 0 {
			b.Fatal("empty payload")
		}
	}
}

func BenchmarkReorder(b *testing.B) {
	tr := benchTree(b, 32, 2, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tr.Reorder(); err != nil {
			b.Fatal(err)
		}
	}
}
