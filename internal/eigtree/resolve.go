package eigtree

import "fmt"

// ResolveKind selects one of the paper's two data conversion functions.
type ResolveKind int

const (
	// ResolveMajority is `resolve` (Section 3): a leaf converts to its
	// stored value; an internal node converts to the strict majority of its
	// children's converted values, or to the default value when no majority
	// exists. It is used by the Exponential Algorithm, Algorithm B, and
	// Algorithm C.
	ResolveMajority ResolveKind = iota + 1
	// ResolveSupport is `resolve'` (Section 4.2): an internal node converts
	// to the unique value of V occurring at least t+1 times among its
	// children's converted values, or to ⊥ when no such unique value
	// exists. It is used by Algorithm A.
	ResolveSupport
)

// String returns the paper's name for the conversion function.
func (k ResolveKind) String() string {
	switch k {
	case ResolveMajority:
		return "resolve"
	case ResolveSupport:
		return "resolve'"
	default:
		return fmt.Sprintf("ResolveKind(%d)", int(k))
	}
}

// Resolution holds the converted value of every node of a tree, computed
// bottom-up in one pass. Keeping all intermediate converted values (rather
// than just the root) serves Algorithm A's Fault Discovery Rule During
// Conversion and Algorithm C's per-subtree shifts.
//
// A Resolution returned by Tree.Resolve is owned by the tree and reused
// by that tree's next Resolve call: consume it (or copy what you need)
// before resolving again.
type Resolution struct {
	kind   ResolveKind
	enum   *Enum
	vals   [][]CValue
	carena []CValue // vals backing store, grown once per tree shape
	ops    int
}

// Resolve applies the conversion function to the whole tree and returns the
// converted values of every node. tparam is the protocol resilience t,
// used only by ResolveSupport's t+1 threshold. The returned Resolution is
// scratch owned by the tree, valid until the tree's next Resolve.
func (t *Tree) Resolve(kind ResolveKind, tparam int) (*Resolution, error) {
	if len(t.levels) == 0 {
		return nil, fmt.Errorf("eigtree: Resolve on empty tree")
	}
	if kind != ResolveMajority && kind != ResolveSupport {
		return nil, fmt.Errorf("eigtree: unknown resolve kind %d", int(kind))
	}
	res := &t.res
	res.kind, res.enum, res.ops = kind, t.enum, 0
	if need := t.NodeCount(); cap(res.carena) < need {
		res.carena = make([]CValue, need)
	}
	if cap(res.vals) < len(t.levels) {
		res.vals = make([][]CValue, len(t.levels))
	}
	res.vals = res.vals[:len(t.levels)]
	coff := 0

	// Leaves convert to their stored values.
	deepest := len(t.levels) - 1
	leafVals := res.carena[coff : coff+len(t.levels[deepest]) : coff+len(t.levels[deepest])]
	coff += len(leafVals)
	for i, v := range t.levels[deepest] {
		leafVals[i] = CV(v)
	}
	res.vals[deepest] = leafVals
	res.ops += len(leafVals)

	// Internal levels, bottom-up. counts is reused across nodes and reset
	// via the touched list to keep conversion allocation-free per node.
	var counts [256]int
	for h := deepest - 1; h >= 0; h-- {
		cc := t.enum.ChildCount(h)
		children := res.vals[h+1]
		out := res.carena[coff : coff+t.enum.Size(h) : coff+t.enum.Size(h)]
		coff += len(out)
		for i := range out {
			var touched [8]int
			tn := 0
			bottom := 0
			for k := 0; k < cc; k++ {
				cv := children[i*cc+k]
				if cv == Bottom {
					bottom++
					continue
				}
				if counts[cv] == 0 {
					if tn < len(touched) {
						touched[tn] = int(cv)
					}
					tn++
				}
				counts[cv]++
			}
			res.ops += cc

			var cv CValue
			switch kind {
			case ResolveMajority:
				cv = CV(Default)
				for j := 0; j < tn && j < len(touched); j++ {
					if 2*counts[touched[j]] > cc {
						cv = CValue(touched[j])
						break
					}
				}
				if tn > len(touched) { // rare: many distinct values, rescan
					cv = majorityRescan(children[i*cc:(i+1)*cc], cc)
				}
			case ResolveSupport:
				cv = Bottom
				found := 0
				for j := 0; j < tn && j < len(touched); j++ {
					if counts[touched[j]] >= tparam+1 {
						found++
						cv = CValue(touched[j])
					}
				}
				if tn > len(touched) {
					cv = supportRescan(children[i*cc:(i+1)*cc], tparam)
				} else if found != 1 {
					cv = Bottom
				}
			}
			out[i] = cv

			// Reset counts for the next node.
			if tn <= len(touched) {
				for j := 0; j < tn; j++ {
					counts[touched[j]] = 0
				}
			} else {
				for k := 0; k < cc; k++ {
					if cv := children[i*cc+k]; cv != Bottom {
						counts[cv] = 0
					}
				}
			}
		}
		res.vals[h] = out
	}
	return res, nil
}

// majorityRescan recomputes the strict-majority winner for a node with many
// distinct child values (slow path).
func majorityRescan(children []CValue, cc int) CValue {
	var counts [256]int
	for _, cv := range children {
		if cv != Bottom {
			counts[cv]++
		}
	}
	for v, c := range counts {
		if 2*c > cc {
			return CValue(v)
		}
	}
	return CV(Default)
}

// supportRescan recomputes the resolve' winner on the slow path.
func supportRescan(children []CValue, tparam int) CValue {
	var counts [256]int
	for _, cv := range children {
		if cv != Bottom {
			counts[cv]++
		}
	}
	winner := Bottom
	found := 0
	for v, c := range counts {
		if c >= tparam+1 {
			found++
			winner = CValue(v)
		}
	}
	if found != 1 {
		return Bottom
	}
	return winner
}

// Kind returns the conversion function that produced this resolution.
func (r *Resolution) Kind() ResolveKind { return r.kind }

// Enum returns the enumeration of the tree this resolution was computed on.
func (r *Resolution) Enum() *Enum { return r.enum }

// Root returns the converted value of the root, resolve(s).
func (r *Resolution) Root() CValue { return r.vals[0][0] }

// At returns the converted value of node idx at level h.
func (r *Resolution) At(h, idx int) CValue { return r.vals[h][idx] }

// Levels returns the number of levels in the resolution.
func (r *Resolution) Levels() int { return len(r.vals) }

// LevelValues returns the converted values of level h. The slice is the
// resolution's backing storage; callers treat it as read-only.
func (r *Resolution) LevelValues(h int) []CValue { return r.vals[h] }

// Ops returns the number of child-value examinations performed, the
// package's unit of local computation (it scales as nodes × fan-out, the
// quantity behind the paper's O(n^{b+1}(t-1)/(b-2)) bounds).
func (r *Resolution) Ops() int { return r.ops }
