package eigtree

import "fmt"

// Tree is one processor's Information Gathering Tree (paper Section 3).
// Level h holds the values stored at sequences of length h+1 in the order
// fixed by the Enum; level 0 is the root, whose value is the processor's
// preferred value.
//
// A Tree grows one level per round of Information Gathering and collapses
// back to a single root when a shift operator is applied (Section 4).
//
// Level storage is carved from a single arena sized by the enumeration
// (Enum.TotalNodes), grabbed in level order and rewound by SetRoot's
// collapse and DropLeaves — so a tree's whole grow/shift/regrow life
// costs one value allocation, however many segments the plan runs.
type Tree struct {
	enum   *Enum
	levels [][]Value
	arena  []Value // level backing store; levels slice into it in order
	aoff   int     // arena bytes handed out to the current levels
	res    Resolution
}

// NewTree returns an empty tree (height -1 by the paper's convention: not
// even the root has been stored yet).
func NewTree(enum *Enum) *Tree {
	return &Tree{enum: enum}
}

// grab carves the next size values off the arena, cleared to the default
// value. Levels are grabbed in level order and released LIFO (DropLeaves,
// SetRoot), so the arena — sized for the fully grown tree — always fits;
// the defensive fallback never triggers for enum-conforming growth.
func (t *Tree) grab(size int) []Value {
	if t.arena == nil {
		total := t.enum.TotalNodes()
		if total < size {
			total = size
		}
		t.arena = make([]Value, total)
	}
	if t.aoff+size > len(t.arena) {
		return make([]Value, size)
	}
	lvl := t.arena[t.aoff : t.aoff+size : t.aoff+size]
	t.aoff += size
	for i := range lvl {
		lvl[i] = Default
	}
	return lvl
}

// Enum returns the enumeration that fixes this tree's shape.
func (t *Tree) Enum() *Enum { return t.enum }

// Reset empties the tree back to its NewTree state (height -1) while
// keeping the arena and resolution scratch, so a pooled tree's next run
// allocates nothing.
func (t *Tree) Reset() {
	t.levels = t.levels[:0]
	t.aoff = 0
}

// Levels returns the number of stored levels (root counts as one).
func (t *Tree) Levels() int { return len(t.levels) }

// Height returns the height of the tree: -1 when empty, 0 when only the
// root is stored, and so on.
func (t *Tree) Height() int { return len(t.levels) - 1 }

// SetRoot stores the root value, resetting the tree to a single level.
// It is used both for round 1 (the value received from the source) and for
// the shift operator's collapse back to a one-level tree.
func (t *Tree) SetRoot(v Value) {
	t.levels = t.levels[:0]
	t.aoff = 0
	lvl := t.grab(1)
	lvl[0] = v
	t.levels = append(t.levels, lvl)
}

// Root returns the root value (the preferred value). It is Default on an
// empty tree.
func (t *Tree) Root() Value {
	if len(t.levels) == 0 {
		return Default
	}
	return t.levels[0][0]
}

// AddLevel appends a new deepest level initialized to the default value.
// Entries are then filled in per sender with StoreFrom. It returns the new
// level's index.
func (t *Tree) AddLevel() (int, error) {
	h := len(t.levels)
	if h == 0 {
		return 0, fmt.Errorf("eigtree: AddLevel on empty tree (root not set)")
	}
	if h > t.enum.MaxLevel() {
		return 0, fmt.Errorf("eigtree: level %d exceeds enumeration depth %d", h, t.enum.MaxLevel())
	}
	t.levels = append(t.levels, t.grab(t.enum.Size(h)))
	return h, nil
}

// StoreFrom records processor r's round message into the deepest level:
// claimed[i] is the value r claims to have stored at the node with index i
// of the previous level, and it is written to the child labelled r of that
// node (when that child exists). claimed must have exactly Size(H-1)
// entries, where H is the deepest level; a nil claimed stands for a missing
// or masked message and leaves the default values in place (the paper's
// "default value is used if an inappropriate message is received").
func (t *Tree) StoreFrom(r int, claimed []Value) error {
	hNew := len(t.levels) - 1
	if hNew < 1 {
		return fmt.Errorf("eigtree: StoreFrom before AddLevel")
	}
	if claimed == nil {
		return nil // missing message: keep defaults
	}
	if len(claimed) != t.enum.Size(hNew-1) {
		return fmt.Errorf("eigtree: claim length %d, want %d", len(claimed), t.enum.Size(hNew-1))
	}
	level := t.levels[hNew]
	for i := range claimed {
		if ci, ok := t.enum.ChildIndex(hNew-1, i, r); ok {
			level[ci] = claimed[i]
		}
	}
	return nil
}

// ZeroSender overwrites with the default value every entry of the deepest
// level that was contributed by processor r. It implements the Fault
// Masking Rule for a processor discovered faulty in the round whose
// messages were just stored ("the round k messages of these newly
// discovered processors are also masked", Section 3).
func (t *Tree) ZeroSender(r int) {
	hNew := len(t.levels) - 1
	if hNew < 1 {
		return
	}
	level := t.levels[hNew]
	for i := 0; i < t.enum.Size(hNew-1); i++ {
		if ci, ok := t.enum.ChildIndex(hNew-1, i, r); ok {
			level[ci] = Default
		}
	}
}

// ValueAt returns the stored value of node idx at level h.
func (t *Tree) ValueAt(h, idx int) Value { return t.levels[h][idx] }

// LevelValues returns the stored values of level h. The returned slice is
// the tree's backing storage: callers within this module treat it as
// read-only.
func (t *Tree) LevelValues(h int) []Value { return t.levels[h] }

// LeafPayload encodes the deepest level as a wire payload, one byte per
// node in canonical order. This is exactly what a processor broadcasts in
// the next round of Information Gathering, so payload length equals the
// number of leaves — making the paper's message-length bounds observable.
func (t *Tree) LeafPayload() []byte {
	return t.AppendLeafPayload(nil)
}

// AppendLeafPayload appends the LeafPayload encoding to dst and returns
// it — the zero-alloc variant for callers that reuse a payload buffer
// across rounds (the payload is consumed within its tick, so a
// per-replica scratch is safe).
func (t *Tree) AppendLeafPayload(dst []byte) []byte {
	leaves := t.levels[len(t.levels)-1]
	for _, v := range leaves {
		dst = append(dst, byte(v))
	}
	return dst
}

// DecodeClaim decodes a received payload that should describe `want` tree
// nodes. It returns nil (missing message) when the payload is absent or of
// the wrong length, per the paper's default-value rule.
func DecodeClaim(payload []byte, want int) []Value {
	if payload == nil || len(payload) != want {
		return nil
	}
	out := make([]Value, want)
	for i, b := range payload {
		out[i] = Value(b)
	}
	return out
}

// StoreFromPayload is StoreFrom reading values straight off the wire
// payload — DecodeClaim fused with the store, so the hot gather path
// materializes no intermediate claim slice. A nil or wrong-length payload
// stands for a missing message and leaves the default values in place
// (the paper's "default value is used if an inappropriate message is
// received").
func (t *Tree) StoreFromPayload(r int, payload []byte) error {
	hNew := len(t.levels) - 1
	if hNew < 1 {
		return fmt.Errorf("eigtree: StoreFrom before AddLevel")
	}
	if payload == nil || len(payload) != t.enum.Size(hNew-1) {
		return nil // missing or inappropriate message: keep defaults
	}
	level := t.levels[hNew]
	for i, b := range payload {
		if ci, ok := t.enum.ChildIndex(hNew-1, i, r); ok {
			level[ci] = Value(b)
		}
	}
	return nil
}

// Reorder applies Algorithm C's leaf reordering (Section 4.3): in a
// three-level tree with repetitions it swaps the values stored at s·p·q and
// s·q·p for all p ≠ q, so that afterwards the leaves of the subtree rooted
// at s·q hold exactly the values received from q this round.
func (t *Tree) Reorder() error {
	if !t.enum.repeat {
		return fmt.Errorf("eigtree: Reorder requires a tree with repetitions")
	}
	if len(t.levels) != 3 {
		return fmt.Errorf("eigtree: Reorder requires exactly 3 levels, have %d", len(t.levels))
	}
	n := t.enum.n
	leaves := t.levels[2]
	for p := 0; p < n; p++ {
		for q := p + 1; q < n; q++ {
			leaves[p*n+q], leaves[q*n+p] = leaves[q*n+p], leaves[p*n+q]
		}
	}
	return nil
}

// DropLeaves removes the deepest level (used by Algorithm C's shift from a
// three-level to a two-level tree after conversion).
func (t *Tree) DropLeaves() {
	if len(t.levels) > 1 {
		dropped := t.levels[len(t.levels)-1]
		t.levels = t.levels[:len(t.levels)-1]
		// The deepest level was the last arena grab: rewind so the next
		// AddLevel reuses its space. (Guarded for the defensive non-arena
		// fallback, whose levels never advanced aoff.)
		if t.aoff >= len(dropped) {
			t.aoff -= len(dropped)
		}
	}
}

// SetLevelValues replaces the values of level h (used by Algorithm C to
// install the converted intermediate values). The slice is copied.
func (t *Tree) SetLevelValues(h int, vals []Value) error {
	if h >= len(t.levels) || len(vals) != len(t.levels[h]) {
		return fmt.Errorf("eigtree: SetLevelValues level %d size %d mismatch", h, len(vals))
	}
	copy(t.levels[h], vals)
	return nil
}

// Clone returns a deep copy of the tree (used by adversary shadows and by
// tests). The copy has its own arena and resolution scratch.
func (t *Tree) Clone() *Tree {
	c := NewTree(t.enum)
	for _, lvl := range t.levels {
		cl := c.grab(len(lvl))
		copy(cl, lvl)
		c.levels = append(c.levels, cl)
	}
	return c
}

// NodeCount returns the total number of stored nodes, the paper's measure
// of local space.
func (t *Tree) NodeCount() int {
	total := 0
	for _, lvl := range t.levels {
		total += len(lvl)
	}
	return total
}
