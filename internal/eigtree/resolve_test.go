package eigtree

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCValue(t *testing.T) {
	if !Bottom.IsBottom() {
		t.Error("Bottom.IsBottom() = false")
	}
	if CV(7).IsBottom() {
		t.Error("CV(7).IsBottom() = true")
	}
	if Bottom.Value() != Default {
		t.Errorf("Bottom.Value() = %d, want default", Bottom.Value())
	}
	if CV(9).Value() != 9 {
		t.Errorf("CV(9).Value() = %d", CV(9).Value())
	}
}

func TestResolveKindString(t *testing.T) {
	if ResolveMajority.String() != "resolve" || ResolveSupport.String() != "resolve'" {
		t.Fatalf("names: %q, %q", ResolveMajority, ResolveSupport)
	}
}

func TestResolveErrors(t *testing.T) {
	tr := buildTree(t, 5, 0, false, 2)
	if _, err := tr.Resolve(ResolveMajority, 1); err == nil {
		t.Error("Resolve on empty tree should fail")
	}
	tr.SetRoot(1)
	if _, err := tr.Resolve(ResolveKind(0), 1); err == nil {
		t.Error("Resolve with unknown kind should fail")
	}
}

func TestResolveRootOnly(t *testing.T) {
	// resolve of a leaf is the stored value (the one-level tree after a
	// shift resolves to its root).
	tr := buildTree(t, 5, 0, false, 2)
	tr.SetRoot(3)
	res, err := tr.Resolve(ResolveMajority, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Root() != CV(3) {
		t.Fatalf("resolve(root) = %v, want 3", res.Root())
	}
}

// fillLevel writes vals into the deepest level directly.
func fillLevel(t *testing.T, tr *Tree, vals []Value) {
	t.Helper()
	lvl := tr.LevelValues(tr.Levels() - 1)
	if len(lvl) != len(vals) {
		t.Fatalf("level size %d, fill size %d", len(lvl), len(vals))
	}
	copy(lvl, vals)
}

func TestResolveMajorityTwoLevels(t *testing.T) {
	// n=5, root has 4 children.
	cases := []struct {
		leaves []Value
		want   CValue
	}{
		{[]Value{1, 1, 1, 0}, CV(1)}, // strict majority 3/4
		{[]Value{1, 1, 0, 0}, CV(0)}, // tie: no majority → default
		{[]Value{2, 2, 2, 2}, CV(2)}, // unanimity
		{[]Value{1, 2, 3, 4}, CV(0)}, // all distinct → default
		{[]Value{5, 5, 0, 0}, CV(0)}, // tie with default present
		{[]Value{0, 0, 0, 9}, CV(0)}, // majority happens to be default
	}
	for _, tc := range cases {
		tr := buildTree(t, 5, 0, false, 1)
		tr.SetRoot(7)
		mustAdd(t, tr)
		fillLevel(t, tr, tc.leaves)
		res, err := tr.Resolve(ResolveMajority, 1)
		if err != nil {
			t.Fatal(err)
		}
		if res.Root() != tc.want {
			t.Errorf("leaves %v: resolve = %v, want %v", tc.leaves, res.Root(), tc.want)
		}
	}
}

func TestResolveSupportTwoLevels(t *testing.T) {
	// n=7 (root has 6 children), t=2: resolve' picks the unique value with
	// ≥ t+1 = 3 occurrences, else ⊥.
	cases := []struct {
		leaves []Value
		want   CValue
	}{
		{[]Value{1, 1, 1, 0, 0, 2}, CV(1)},  // only 1 reaches 3
		{[]Value{1, 1, 1, 0, 0, 0}, Bottom}, // two values reach 3 → not unique
		{[]Value{1, 1, 2, 2, 3, 3}, Bottom}, // nothing reaches 3
		{[]Value{4, 4, 4, 4, 4, 4}, CV(4)},  // unanimity
		{[]Value{0, 0, 0, 0, 1, 1}, CV(0)},  // default can win support too
	}
	for _, tc := range cases {
		tr := buildTree(t, 7, 0, false, 1)
		tr.SetRoot(9)
		mustAdd(t, tr)
		fillLevel(t, tr, tc.leaves)
		res, err := tr.Resolve(ResolveSupport, 2)
		if err != nil {
			t.Fatal(err)
		}
		if res.Root() != tc.want {
			t.Errorf("leaves %v: resolve' = %v, want %v", tc.leaves, res.Root(), tc.want)
		}
	}
}

func TestResolveSupportBottomPropagation(t *testing.T) {
	// ⊥ children do not count toward any value's support, and a node whose
	// children are mostly ⊥ converts to ⊥.
	// Build a 3-level tree with n=7, t=2: root, 6 children, 30 grandchildren.
	tr := buildTree(t, 7, 0, false, 2)
	tr.SetRoot(0)
	mustAdd(t, tr)
	mustAdd(t, tr)
	// Each level-1 node has 5 children. Give every level-1 node the leaf
	// pattern {1,1,2,2,3}: no value reaches t+1=3 → all level-1 convert to ⊥.
	leaves := make([]Value, tr.Enum().Size(2))
	for i := range leaves {
		switch i % 5 {
		case 0, 1:
			leaves[i] = 1
		case 2, 3:
			leaves[i] = 2
		default:
			leaves[i] = 3
		}
	}
	fillLevel(t, tr, leaves)
	res, err := tr.Resolve(ResolveSupport, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < tr.Enum().Size(1); i++ {
		if !res.At(1, i).IsBottom() {
			t.Fatalf("level-1 node %d = %v, want ⊥", i, res.At(1, i))
		}
	}
	if !res.Root().IsBottom() {
		t.Fatalf("root = %v, want ⊥ (all children ⊥)", res.Root())
	}
	if res.Root().Value() != Default {
		t.Fatalf("⊥ must fall back to the default preferred value")
	}
}

func TestResolveRecursiveMajority(t *testing.T) {
	// Three levels, n=6: root (5 children), each with 4 grandchildren.
	// Give 3 of the 5 subtrees unanimous value 1, the rest value 2:
	// resolve(s) must be 1.
	tr := buildTree(t, 6, 0, false, 2)
	tr.SetRoot(0)
	mustAdd(t, tr)
	mustAdd(t, tr)
	e := tr.Enum()
	leaves := make([]Value, e.Size(2))
	cc := e.ChildCount(1)
	for i := 0; i < e.Size(1); i++ {
		v := Value(2)
		if i < 3 {
			v = 1
		}
		for k := 0; k < cc; k++ {
			leaves[i*cc+k] = v
		}
	}
	fillLevel(t, tr, leaves)
	res, err := tr.Resolve(ResolveMajority, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Root() != CV(1) {
		t.Fatalf("resolve(s) = %v, want 1", res.Root())
	}
	if res.Levels() != 3 {
		t.Fatalf("resolution levels = %d", res.Levels())
	}
	if res.Kind() != ResolveMajority || res.Enum() != e {
		t.Fatal("resolution metadata wrong")
	}
}

func TestResolveManyDistinctValuesSlowPath(t *testing.T) {
	// More than 8 distinct child values forces the rescan path; results
	// must match a straightforward recount.
	tr := buildTree(t, 14, 0, false, 1)
	tr.SetRoot(0)
	mustAdd(t, tr)
	leaves := make([]Value, 13)
	for i := range leaves {
		leaves[i] = Value(i) // 13 distinct values, no majority
	}
	fillLevel(t, tr, leaves)
	res, err := tr.Resolve(ResolveMajority, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Root() != CV(Default) {
		t.Fatalf("no-majority slow path = %v, want default", res.Root())
	}

	// Same for resolve': 13 distinct values, none reaches t+1=2... make one.
	leaves[12] = 0
	fillLevel(t, tr, leaves)
	res, err = tr.Resolve(ResolveSupport, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Root() != CV(0) {
		t.Fatalf("support slow path = %v, want 0", res.Root())
	}
}

// TestResolveMatchesNaive cross-checks the optimized bottom-up pass against
// a direct recursive implementation on random trees.
func TestResolveMatchesNaive(t *testing.T) {
	var naive func(e *Enum, levels [][]Value, kind ResolveKind, tparam, h, idx int) CValue
	naive = func(e *Enum, levels [][]Value, kind ResolveKind, tparam, h, idx int) CValue {
		if h == len(levels)-1 {
			return CV(levels[h][idx])
		}
		cc := e.ChildCount(h)
		counts := map[CValue]int{}
		for k := 0; k < cc; k++ {
			counts[naive(e, levels, kind, tparam, h+1, idx*cc+k)]++
		}
		if kind == ResolveMajority {
			for v, c := range counts {
				if 2*c > cc && !v.IsBottom() {
					return v
				}
			}
			// A ⊥ "majority" cannot occur for ResolveMajority inputs, but
			// guard anyway.
			return CV(Default)
		}
		winner, found := Bottom, 0
		for v, c := range counts {
			if !v.IsBottom() && c >= tparam+1 {
				found++
				winner = v
			}
		}
		if found != 1 {
			return Bottom
		}
		return winner
	}

	f := func(seed int64, kindBit bool) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(5)
		depth := 1 + rng.Intn(2)
		e, err := NewEnum(n, rng.Intn(n), false, depth)
		if err != nil {
			return false
		}
		tr := NewTree(e)
		tr.SetRoot(Value(rng.Intn(4)))
		levels := [][]Value{{tr.Root()}}
		for h := 1; h <= depth; h++ {
			if _, err := tr.AddLevel(); err != nil {
				return false
			}
			lvl := tr.LevelValues(h)
			for i := range lvl {
				lvl[i] = Value(rng.Intn(4))
			}
			levels = append(levels, append([]Value(nil), lvl...))
		}
		kind := ResolveMajority
		tparam := 1 + rng.Intn(3)
		if kindBit {
			kind = ResolveSupport
		}
		res, err := tr.Resolve(kind, tparam)
		if err != nil {
			return false
		}
		for h := 0; h <= depth; h++ {
			for i := 0; i < e.Size(h); i++ {
				if res.At(h, i) != naive(e, levels, kind, tparam, h, i) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestResolveOpsAccounting(t *testing.T) {
	// Ops = leaves + Σ internal-node fan-out: for n=6, depth 2:
	// 20 leaves + 5 nodes × 4 + 1 root × 5 = 45.
	tr := buildTree(t, 6, 0, false, 2)
	tr.SetRoot(0)
	mustAdd(t, tr)
	mustAdd(t, tr)
	res, err := tr.Resolve(ResolveMajority, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops() != 20+20+5 {
		t.Fatalf("Ops = %d, want 45", res.Ops())
	}
}

func TestResolveDeterminism(t *testing.T) {
	f := func(leafSeed int64) bool {
		rng := rand.New(rand.NewSource(leafSeed))
		tr := NewTree(mustEnumQuick(7, 0, false, 2))
		tr.SetRoot(1)
		_, _ = tr.AddLevel()
		_, _ = tr.AddLevel()
		lvl := tr.LevelValues(2)
		for i := range lvl {
			lvl[i] = Value(rng.Intn(3))
		}
		a, err1 := tr.Resolve(ResolveSupport, 2)
		b, err2 := tr.Resolve(ResolveSupport, 2)
		return err1 == nil && err2 == nil && a.Root() == b.Root()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func mustEnumQuick(n, source int, repeat bool, maxLevel int) *Enum {
	e, err := NewEnum(n, source, repeat, maxLevel)
	if err != nil {
		panic(err)
	}
	return e
}
