// Package eigtree implements the Information Gathering Tree of Bar-Noy,
// Dolev, Dwork, and Strong, "Shifting Gears: Changing Algorithms on the Fly
// to Expedite Byzantine Agreement" (Information and Computation 97, 1992).
//
// The package provides the tree data structure itself (with and without
// label repetitions), the canonical enumeration of tree levels used as the
// wire format for round messages, and the two data-conversion functions of
// the paper: resolve (recursive majority voting, Section 3) and resolve'
// (unique value with at least t+1 support, Section 4.2).
package eigtree

// Value is an element of the finite value set V of the agreement problem.
// The paper assumes 0 ∈ V and uses 0 as the default value stored for
// missing or inappropriate messages; Default plays that role here.
//
// Values are one byte wide so that a tree level serializes to exactly one
// byte per node, which makes the O(n^b) message-length bounds of Theorems
// 2 and 3 directly observable as payload byte counts.
type Value byte

// Default is the distinguished default value 0 ∈ V (paper Section 2).
const Default Value = 0

// CValue is a converted value: either an ordinary Value or Bottom (⊥).
// Bottom arises only during data conversion with resolve' (Section 4.2);
// it is never stored in a tree and never sent in a message.
type CValue int16

// Bottom is ⊥, the "no unique supported value" result of resolve'.
const Bottom CValue = -1

// CV converts a plain value to a converted value.
func CV(v Value) CValue { return CValue(v) }

// IsBottom reports whether c is ⊥.
func (c CValue) IsBottom() bool { return c == Bottom }

// Value maps a converted value back into V, turning ⊥ into the default
// value as prescribed by the paper ("if resolve'(s) = ⊥ for some correct
// processor p, then p uses the default value as its new preferred value").
func (c CValue) Value() Value {
	if c == Bottom {
		return Default
	}
	return Value(c)
}
