package eigtree

import (
	"testing"
	"testing/quick"
)

func mustEnum(t *testing.T, n, source int, repeat bool, maxLevel int) *Enum {
	t.Helper()
	e, err := NewEnum(n, source, repeat, maxLevel)
	if err != nil {
		t.Fatalf("NewEnum(%d, %d, %v, %d): %v", n, source, repeat, maxLevel, err)
	}
	return e
}

func TestNewEnumValidation(t *testing.T) {
	cases := []struct {
		name     string
		n, src   int
		repeat   bool
		maxLevel int
	}{
		{"n too small", 1, 0, false, 1},
		{"n too large", 300, 0, false, 1},
		{"source negative", 7, -1, false, 1},
		{"source too large", 7, 7, false, 1},
		{"negative level", 7, 0, false, -1},
		{"level beyond norepeat height", 5, 0, false, 5},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewEnum(tc.n, tc.src, tc.repeat, tc.maxLevel); err == nil {
				t.Fatalf("NewEnum(%d, %d, %v, %d) succeeded, want error", tc.n, tc.src, tc.repeat, tc.maxLevel)
			}
		})
	}
}

func TestNewEnumTooLarge(t *testing.T) {
	if _, err := NewEnum(50, 0, false, 8); err == nil {
		t.Fatal("expected node-budget error for n=50, maxLevel=8")
	}
}

func TestEnumLevelSizesNoRepeat(t *testing.T) {
	// Level h of the tree without repetitions has (n-1)(n-2)...(n-h) nodes
	// (paper Section 3: the root's children are the n-1 non-source names,
	// and each node at level h has n-1-h children).
	for _, n := range []int{4, 7, 10} {
		e := mustEnum(t, n, 0, false, 3)
		want := 1
		for h := 0; h <= 3; h++ {
			if got := e.Size(h); got != want {
				t.Errorf("n=%d: Size(%d) = %d, want %d", n, h, got, want)
			}
			want *= n - 1 - h
		}
	}
}

func TestEnumLevelSizesRepeat(t *testing.T) {
	// With repetitions every node has exactly n children.
	e := mustEnum(t, 6, 2, true, 2)
	for h, want := range []int{1, 6, 36} {
		if got := e.Size(h); got != want {
			t.Errorf("Size(%d) = %d, want %d", h, got, want)
		}
	}
}

func TestEnumRootSequence(t *testing.T) {
	e := mustEnum(t, 5, 3, false, 1)
	root := e.Level(0)[0]
	if len(root) != 1 || int(root[0]) != 3 {
		t.Fatalf("root sequence = %v, want [3]", root.Labels())
	}
}

func TestEnumNoRepetitionProperty(t *testing.T) {
	// No label appears twice on any path, and the source never appears
	// below the root.
	e := mustEnum(t, 7, 2, false, 3)
	for h := 0; h <= 3; h++ {
		for _, seq := range e.Level(h) {
			seen := make(map[byte]bool)
			for i := 0; i < len(seq); i++ {
				if seen[seq[i]] {
					t.Fatalf("level %d: sequence %v repeats label %d", h, seq.Labels(), seq[i])
				}
				seen[seq[i]] = true
				if i > 0 && int(seq[i]) == 2 {
					t.Fatalf("level %d: sequence %v has source below root", h, seq.Labels())
				}
			}
		}
	}
}

func TestEnumSequencesUniqueAndSorted(t *testing.T) {
	for _, repeat := range []bool{false, true} {
		e := mustEnum(t, 6, 0, repeat, 2)
		for h := 0; h <= 2; h++ {
			lvl := e.Level(h)
			for i := 1; i < len(lvl); i++ {
				if lvl[i-1] >= lvl[i] {
					t.Fatalf("repeat=%v level %d: sequences not strictly increasing at %d: %q ≥ %q",
						repeat, h, i, lvl[i-1], lvl[i])
				}
			}
		}
	}
}

func TestEnumChildrenContiguous(t *testing.T) {
	// The children of node i at level h occupy [i*c, (i+1)*c) of level h+1,
	// in ascending label order.
	for _, repeat := range []bool{false, true} {
		e := mustEnum(t, 6, 1, repeat, 2)
		for h := 0; h < 2; h++ {
			cc := e.ChildCount(h)
			for i, seq := range e.Level(h) {
				for k := 0; k < cc; k++ {
					child := e.Level(h + 1)[i*cc+k]
					if string(child[:len(child)-1]) != string(seq) {
						t.Fatalf("repeat=%v: child %q of %q has wrong prefix", repeat, child, seq)
					}
					if got, want := int(child[len(child)-1]), e.ChildLabel(h, i, k); got != want {
						t.Fatalf("repeat=%v: child %d of node %d has label %d, ChildLabel says %d",
							repeat, k, i, got, want)
					}
				}
			}
		}
	}
}

func TestChildIndexRoundTrip(t *testing.T) {
	// ChildIndex(h, i, ChildLabel(h, i, k)) == i*cc+k for every node/child.
	for _, repeat := range []bool{false, true} {
		e := mustEnum(t, 7, 0, repeat, 2)
		for h := 0; h < 2; h++ {
			cc := e.ChildCount(h)
			for i := 0; i < e.Size(h); i++ {
				for k := 0; k < cc; k++ {
					label := e.ChildLabel(h, i, k)
					idx, ok := e.ChildIndex(h, i, label)
					if !ok {
						t.Fatalf("repeat=%v: ChildIndex rejects label %d of node %d", repeat, label, i)
					}
					if idx != i*cc+k {
						t.Fatalf("repeat=%v: ChildIndex(%d,%d,%d) = %d, want %d", repeat, h, i, label, idx, i*cc+k)
					}
					if got := e.ParentIndex(h+1, idx); got != i {
						t.Fatalf("repeat=%v: ParentIndex(%d,%d) = %d, want %d", repeat, h+1, idx, got, i)
					}
				}
			}
		}
	}
}

func TestChildIndexRejectsIllegalLabels(t *testing.T) {
	e := mustEnum(t, 6, 2, false, 2)
	// The source is never a child.
	if _, ok := e.ChildIndex(0, 0, 2); ok {
		t.Error("ChildIndex allowed the source as a child of the root")
	}
	// A label already on the path is never a child.
	for i := 0; i < e.Size(1); i++ {
		last := e.LastLabel(1, i)
		if _, ok := e.ChildIndex(1, i, last); ok {
			t.Errorf("ChildIndex allowed repeated label %d under node %d", last, i)
		}
	}
}

func TestChildIndexRepeatAllowsEverything(t *testing.T) {
	e := mustEnum(t, 5, 0, true, 2)
	for p := 0; p < 5; p++ {
		if _, ok := e.ChildIndex(0, 0, p); !ok {
			t.Errorf("repeat tree: ChildIndex rejected label %d", p)
		}
	}
}

func TestLastLabel(t *testing.T) {
	e := mustEnum(t, 5, 0, false, 2)
	if got := e.LastLabel(0, 0); got != 0 {
		t.Errorf("root LastLabel = %d, want 0 (the source)", got)
	}
	for i, seq := range e.Level(2) {
		if got := e.LastLabel(2, i); got != int(seq[len(seq)-1]) {
			t.Errorf("LastLabel(2, %d) = %d, want %d", i, got, seq[len(seq)-1])
		}
	}
}

func TestEnumAccessors(t *testing.T) {
	e := mustEnum(t, 9, 4, true, 2)
	if e.N() != 9 || e.Source() != 4 || !e.Repeat() || e.MaxLevel() != 2 {
		t.Fatalf("accessors: N=%d Source=%d Repeat=%v MaxLevel=%d", e.N(), e.Source(), e.Repeat(), e.MaxLevel())
	}
}

// TestChildIndexRankProperty cross-checks ChildIndex's closed-form rank
// computation against a brute-force scan, over random (n, source, node).
func TestChildIndexRankProperty(t *testing.T) {
	f := func(nRaw, srcRaw, idxRaw, labelRaw uint8) bool {
		n := 4 + int(nRaw)%8 // 4..11
		src := int(srcRaw) % n
		e, err := NewEnum(n, src, false, 2)
		if err != nil {
			return false
		}
		h := 1
		idx := int(idxRaw) % e.Size(h)
		p := int(labelRaw) % n
		got, ok := e.ChildIndex(h, idx, p)
		// Brute force: scan the level for the sequence seq+p.
		seq := e.Level(h)[idx]
		var want int
		var found bool
		for j, cand := range e.Level(h + 1) {
			if cand == seq+Seq([]byte{byte(p)}) {
				want, found = j, true
				break
			}
		}
		if ok != found {
			return false
		}
		return !ok || got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSeqLabels(t *testing.T) {
	s := Seq([]byte{3, 1, 4})
	labels := s.Labels()
	if len(labels) != 3 || labels[0] != 3 || labels[1] != 1 || labels[2] != 4 {
		t.Fatalf("Labels() = %v, want [3 1 4]", labels)
	}
}
