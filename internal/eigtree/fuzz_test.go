package eigtree

import "testing"

// FuzzDecodeClaim: DecodeClaim must never panic and must accept exactly the
// payloads of the expected length.
func FuzzDecodeClaim(f *testing.F) {
	f.Add([]byte{1, 2, 3}, 3)
	f.Add([]byte{}, 0)
	f.Add([]byte{255}, 2)
	f.Add([]byte(nil), 5)
	f.Fuzz(func(t *testing.T, payload []byte, want int) {
		if want < 0 || want > 1<<16 {
			t.Skip()
		}
		got := DecodeClaim(payload, want)
		if payload == nil || len(payload) != want {
			if got != nil {
				t.Fatalf("malformed payload accepted: len=%d want=%d", len(payload), want)
			}
			return
		}
		if len(got) != want {
			t.Fatalf("decoded %d values, want %d", len(got), want)
		}
		for i := range got {
			if byte(got[i]) != payload[i] {
				t.Fatalf("value %d mangled", i)
			}
		}
	})
}

// FuzzResolveOnArbitraryLeaves: conversion must be total and in-range for
// any leaf contents.
func FuzzResolveOnArbitraryLeaves(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6}, true)
	f.Add([]byte{0, 0, 0, 0, 0, 0}, false)
	f.Fuzz(func(t *testing.T, leaves []byte, support bool) {
		e, err := NewEnum(7, 0, false, 1)
		if err != nil {
			t.Fatal(err)
		}
		tr := NewTree(e)
		tr.SetRoot(1)
		if _, err := tr.AddLevel(); err != nil {
			t.Fatal(err)
		}
		lvl := tr.LevelValues(1)
		for i := range lvl {
			if i < len(leaves) {
				lvl[i] = Value(leaves[i])
			}
		}
		kind := ResolveMajority
		if support {
			kind = ResolveSupport
		}
		res, err := tr.Resolve(kind, 2)
		if err != nil {
			t.Fatal(err)
		}
		if cv := res.Root(); cv != Bottom && (cv < 0 || cv > 255) {
			t.Fatalf("converted value %d out of range", cv)
		}
		if kind == ResolveMajority && res.Root() == Bottom {
			t.Fatal("resolve (majority) can never produce ⊥")
		}
	})
}
