package eigtree

import (
	"fmt"
	"strings"
)

// RenderOptions control tree rendering.
type RenderOptions struct {
	// Name maps a processor id to a display name; nil uses "p<i>" with the
	// source rendered as "s", matching the paper's Figure 1 convention.
	Name func(id int) string
	// MaxChildren truncates each node's child list in the rendering
	// (0 = no limit); an ellipsis line marks the cut, as in Figure 1.
	MaxChildren int
	// ShowValues appends the stored value to each node.
	ShowValues bool
}

// Render draws the Information Gathering Tree in the style of the paper's
// Figure 1: every node reads as a chain of attributions ending in "the
// source said".
//
//	└─ b said
//	   └─ a said
//	      └─ the source said  = 1
func (t *Tree) Render(opts RenderOptions) string {
	if len(t.levels) == 0 {
		return "(empty tree)\n"
	}
	name := opts.Name
	if name == nil {
		src := t.enum.Source()
		name = func(id int) string {
			if id == src {
				return "the source"
			}
			return fmt.Sprintf("p%d", id)
		}
	}
	var b strings.Builder
	if opts.ShowValues {
		fmt.Fprintf(&b, "%s said  = %d\n", name(t.enum.Source()), t.levels[0][0])
	} else {
		fmt.Fprintf(&b, "%s said\n", name(t.enum.Source()))
	}
	t.render(&b, opts, name, 0, 0, "")
	return b.String()
}

func (t *Tree) render(b *strings.Builder, opts RenderOptions, name func(int) string, h, idx int, indent string) {
	if h+1 >= len(t.levels) {
		return
	}
	cc := t.enum.ChildCount(h)
	limit := cc
	if opts.MaxChildren > 0 && opts.MaxChildren < cc {
		limit = opts.MaxChildren
	}
	for k := 0; k < limit; k++ {
		childIdx := idx*cc + k
		label := t.enum.ChildLabel(h, idx, k)
		connector, childIndent := "├─ ", indent+"│  "
		if k == limit-1 && limit == cc {
			connector, childIndent = "└─ ", indent+"   "
		}
		if opts.ShowValues {
			fmt.Fprintf(b, "%s%s%s said  = %d\n", indent, connector, name(label), t.levels[h+1][childIdx])
		} else {
			fmt.Fprintf(b, "%s%s%s said\n", indent, connector, name(label))
		}
		t.render(b, opts, name, h+1, childIdx, childIndent)
	}
	if limit < cc {
		fmt.Fprintf(b, "%s└─ … %d more children\n", indent, cc-limit)
	}
}
