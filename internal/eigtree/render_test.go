package eigtree

import (
	"strings"
	"testing"
)

func TestRenderEmptyTree(t *testing.T) {
	tr := buildTree(t, 5, 0, false, 2)
	if got := tr.Render(RenderOptions{}); got != "(empty tree)\n" {
		t.Fatalf("Render = %q", got)
	}
}

func TestRenderRootOnly(t *testing.T) {
	tr := buildTree(t, 5, 2, false, 2)
	tr.SetRoot(4)
	out := tr.Render(RenderOptions{ShowValues: true})
	if !strings.Contains(out, "the source said  = 4") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestRenderFigureOneShape(t *testing.T) {
	// A two-level tree renders one "X said" line per child, each chaining
	// back to the source as in Figure 1.
	tr := buildTree(t, 5, 0, false, 2)
	tr.SetRoot(1)
	mustAdd(t, tr)
	for r := 1; r < 5; r++ {
		_ = tr.StoreFrom(r, []Value{Value(r)})
	}
	out := tr.Render(RenderOptions{ShowValues: true})
	for _, want := range []string{"p1 said  = 1", "p2 said  = 2", "p3 said  = 3", "p4 said  = 4"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	if lines := strings.Count(out, "\n"); lines != 5 { // root + 4 children
		t.Fatalf("%d lines:\n%s", lines, out)
	}
}

func TestRenderTruncation(t *testing.T) {
	tr := buildTree(t, 10, 0, false, 1)
	tr.SetRoot(0)
	mustAdd(t, tr)
	out := tr.Render(RenderOptions{MaxChildren: 3})
	if !strings.Contains(out, "… 6 more children") {
		t.Fatalf("no ellipsis in:\n%s", out)
	}
	if got := strings.Count(out, "said"); got != 4 { // root + 3 children
		t.Fatalf("%d 'said' lines:\n%s", got, out)
	}
}

func TestRenderCustomNames(t *testing.T) {
	tr := buildTree(t, 4, 0, false, 1)
	tr.SetRoot(0)
	mustAdd(t, tr)
	names := []string{"s", "a", "b", "z"}
	out := tr.Render(RenderOptions{Name: func(id int) string { return names[id] }})
	for _, want := range []string{"s said", "a said", "b said", "z said"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestRenderThreeLevelsNesting(t *testing.T) {
	tr := buildTree(t, 5, 0, false, 2)
	tr.SetRoot(0)
	mustAdd(t, tr)
	mustAdd(t, tr)
	out := tr.Render(RenderOptions{})
	// Deepest entries are indented twice (two tree connectors deep).
	if !strings.Contains(out, "│  ├─") && !strings.Contains(out, "   ├─") {
		t.Fatalf("no nested indentation:\n%s", out)
	}
}
