package obs

import (
	"bytes"
	"encoding/json"
	"reflect"
	"sync"
	"testing"
)

func TestTypeTextRoundTrip(t *testing.T) {
	for typ := Type(1); typ < numTypes; typ++ {
		b, err := typ.MarshalText()
		if err != nil {
			t.Fatalf("marshal %d: %v", typ, err)
		}
		var back Type
		if err := back.UnmarshalText(b); err != nil {
			t.Fatalf("unmarshal %q: %v", b, err)
		}
		if back != typ {
			t.Fatalf("round trip %d -> %q -> %d", typ, b, back)
		}
	}
	var bad Type
	if err := bad.UnmarshalText([]byte("nope")); err == nil {
		t.Fatal("unknown type name must be an error")
	}
	if _, err := Type(0).MarshalText(); err == nil {
		t.Fatal("zero type must not marshal")
	}
}

func TestAtSentinels(t *testing.T) {
	ev := At(FrameBatch, 7)
	if ev.Tick != 7 || ev.Node != -1 || ev.Slot != -1 || ev.From != -1 || ev.To != -1 || ev.Shard != -1 {
		t.Fatalf("At() sentinel mismatch: %+v", ev)
	}
	if ev.Round != 0 || ev.Frames != 0 || ev.Bytes != 0 || ev.Gear != "" || ev.Note != "" {
		t.Fatalf("At() non-id fields must be zero: %+v", ev)
	}
}

func TestChaosClassification(t *testing.T) {
	chaos := []Type{ChaosDrop, ChaosLate, ChaosDelay, ChaosCut, ChaosReorder,
		PartitionStart, PartitionHeal, CrashStart, CrashEnd}
	for _, typ := range chaos {
		if !typ.Chaos() {
			t.Errorf("%v should classify as chaos", typ)
		}
	}
	for _, typ := range []Type{TickStart, SlotOpen, GearResolved, SlotCommitted, FrameBatch, Diverged} {
		if typ.Chaos() {
			t.Errorf("%v should not classify as chaos", typ)
		}
	}
}

func TestRingBounded(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 10; i++ {
		ev := At(TickStart, i)
		r.Emit(ev)
	}
	if got := r.Total(); got != 10 {
		t.Fatalf("total = %d, want 10", got)
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	for i, ev := range evs {
		if want := 6 + i; ev.Tick != want {
			t.Fatalf("event %d tick = %d, want %d (oldest-first ordering)", i, ev.Tick, want)
		}
	}
}

func TestRingConcurrent(t *testing.T) {
	r := NewRing(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Emit(At(TickStart, i))
			}
		}()
	}
	wg.Wait()
	if got := r.Total(); got != 800 {
		t.Fatalf("total = %d, want 800", got)
	}
	if got := len(r.Events()); got != 64 {
		t.Fatalf("retained = %d, want 64", got)
	}
}

func TestTee(t *testing.T) {
	if Tee() != nil || Tee(nil, nil) != nil {
		t.Fatal("empty tee must be nil (tracing off)")
	}
	a, b := NewRing(8), NewRing(8)
	if got := Tee(nil, a); got != Tracer(a) {
		t.Fatal("single live member should be returned directly")
	}
	tr := Tee(a, nil, b)
	tr.Emit(At(TickStart, 1))
	if a.Total() != 1 || b.Total() != 1 {
		t.Fatalf("tee fan-out: a=%d b=%d, want 1/1", a.Total(), b.Total())
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	j := NewJSONL(&buf)
	want := []Event{
		At(TickStart, 1),
		{Type: ChaosDrop, Tick: 3, Node: -1, Slot: 5, From: 2, To: 6},
		{Type: GearResolved, Tick: 4, Node: 0, Slot: 2, Round: 5, From: -1, To: -1, Gear: "exp"},
		{Type: Aborted, Tick: 9, Node: -1, Slot: -1, From: -1, To: -1, Note: "boom"},
	}
	for _, ev := range want {
		j.Emit(ev)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\ngot  %+v\nwant %+v", got, want)
	}
}

func TestJSONLFieldNames(t *testing.T) {
	var buf bytes.Buffer
	j := NewJSONL(&buf)
	j.Emit(Event{Type: ChaosDrop, Tick: 3, Node: -1, Slot: 5, From: 2, To: 6})
	if err := j.Flush(); err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatal(err)
	}
	if m["ev"] != "drop" {
		t.Fatalf(`ev = %v, want "drop"`, m["ev"])
	}
	for _, k := range []string{"tick", "slot", "from", "to"} {
		if _, ok := m[k]; !ok {
			t.Fatalf("field %q missing from %s", k, buf.String())
		}
	}
	if _, ok := m["gear"]; ok {
		t.Fatal("empty gear should be omitted")
	}
}

func TestReadJSONLRejectsGarbage(t *testing.T) {
	if _, err := ReadJSONL(bytes.NewBufferString("{\"ev\":\"nope\",\"tick\":1}\n")); err == nil {
		t.Fatal("unknown event type must fail the parse")
	}
	if _, err := ReadJSONL(bytes.NewBufferString("not json\n")); err == nil {
		t.Fatal("malformed line must fail the parse")
	}
	if _, err := ReadJSONL(bytes.NewBufferString("{\"tick\":1}\n")); err == nil {
		t.Fatal("missing type must fail the parse")
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 || h.Count() != 0 {
		t.Fatal("empty histogram must read zero")
	}
	for i := 0; i < 100; i++ {
		h.Observe(4)
	}
	h.Observe(1000)
	if got := h.Quantile(0.5); got != 4 {
		t.Fatalf("p50 = %d, want 4", got)
	}
	if got := h.Quantile(0.99); got != 4 {
		t.Fatalf("p99 = %d, want 4 (100/101 samples at 4)", got)
	}
	s := h.Summarize()
	if s.Count != 101 || s.Max != 1000 {
		t.Fatalf("summary = %+v", s)
	}
	if s.P50 != 4 {
		t.Fatalf("summary p50 = %d, want 4", s.P50)
	}
}

func TestHistogramOverflowAndMerge(t *testing.T) {
	var h Histogram
	h.Observe(5000) // beyond the last bound
	if got := h.Quantile(0.99); got != 5000 {
		t.Fatalf("overflow quantile = %d, want observed max 5000", got)
	}
	var other Histogram
	for i := 0; i < 9; i++ {
		other.Observe(2)
	}
	h.Merge(&other)
	if h.Count() != 10 {
		t.Fatalf("merged count = %d, want 10", h.Count())
	}
	if got := h.Quantile(0.5); got != 2 {
		t.Fatalf("merged p50 = %d, want 2", got)
	}
	bounds, cum, total := h.Buckets()
	if len(bounds) != NumBuckets || len(cum) != NumBuckets {
		t.Fatal("bucket view shape mismatch")
	}
	if total != 10 {
		t.Fatalf("bucket total = %d, want 10", total)
	}
	if cum[NumBuckets-1] != 9 {
		t.Fatalf("finite cumulative = %d, want 9 (one overflow sample)", cum[NumBuckets-1])
	}
	h.Merge(nil) // no-op
	h.Merge(&h)  // self-merge no-op
	if h.Count() != 10 {
		t.Fatal("nil/self merge must not change counts")
	}
}

func TestMetricsSink(t *testing.T) {
	m := NewMetrics()
	m.Emit(At(TickStart, 1))
	m.Emit(At(TickStart, 2))
	ev := At(GearResolved, 1)
	ev.Node, ev.Slot, ev.Gear = 0, 0, "exp"
	m.Emit(ev)
	ev.Slot, ev.Gear = 1, "algA"
	m.Emit(ev)
	ev.Slot = 2
	m.Emit(ev)
	// Another node's resolution must not double-count shifts.
	ev.Node, ev.Slot, ev.Gear = 3, 3, "exp"
	m.Emit(ev)

	fb := At(FrameBatch, 1)
	fb.From, fb.To, fb.Frames, fb.Bytes = 0, 1, 3, 90
	m.Emit(fb)
	m.Emit(fb)
	c := At(SlotCommitted, 2)
	c.Node, c.Slot = 0, 0
	m.Emit(c)
	d := At(ChaosDrop, 2)
	d.From, d.To, d.Slot = 1, 2, 0
	m.Emit(d)

	if got := m.Ticks(); got != 2 {
		t.Fatalf("ticks = %d, want 2", got)
	}
	if got := m.Commits(); got != 1 {
		t.Fatalf("commits = %d, want 1", got)
	}
	if got := m.GearShifts(); got != 1 {
		t.Fatalf("shifts = %d, want 1 (exp->algA once at node 0)", got)
	}
	gears := m.Gears()
	if gears["exp"] != 1 || gears["algA"] != 2 {
		t.Fatalf("gear counts = %v", gears)
	}
	links := m.Links()
	if len(links) != 1 || links[0].Frames != 6 || links[0].Bytes != 180 {
		t.Fatalf("links = %+v", links)
	}
	chaos := m.ChaosCounts()
	if chaos["drop"] != 1 || len(chaos) != 1 {
		t.Fatalf("chaos counts = %v", chaos)
	}
	if got := m.CountOf(TickStart); got != 2 {
		t.Fatalf("CountOf(TickStart) = %d, want 2", got)
	}
}
