package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func debugFixture() DebugState {
	m := NewMetrics()
	r := NewRing(64)
	emit := func(ev Event) { m.Emit(ev); r.Emit(ev) }

	emit(At(TickStart, 1))
	emit(At(TickStart, 2))
	g := At(GearResolved, 1)
	g.Node, g.Slot, g.Round, g.Gear = 0, 0, 5, "exp"
	emit(g)
	g2 := At(GearResolved, 2)
	g2.Node, g2.Slot, g2.Round, g2.Gear = 0, 1, 3, "algA"
	emit(g2)
	fb := At(FrameBatch, 1)
	fb.From, fb.To, fb.Frames, fb.Bytes = 0, 1, 2, 64
	emit(fb)
	c := At(SlotCommitted, 2)
	c.Node, c.Slot = 0, 0
	emit(c)
	d := At(ChaosDrop, 2)
	d.From, d.To, d.Slot = 1, 2, 0
	emit(d)
	p := At(PartitionStart, 3)
	p.Note = "{0 1}|{2 3}"
	emit(p)
	m.Latency().Observe(6)
	m.Latency().Observe(9)
	return DebugState{
		Metrics: m,
		Ring:    r,
		Info:    func() map[string]any { return map[string]any{"fabric": "mem", "n": 4} },
	}
}

func TestHandlerMetricsEndpoint(t *testing.T) {
	h := NewHandler(debugFixture())
	srv := httptest.NewServer(h)
	defer srv.Close()

	body := get(t, srv.URL+"/metrics")
	for _, want := range []string{
		"shiftgears_ticks 2",
		"shiftgears_commits_total 1",
		"shiftgears_gear_shifts_total 1",
		`shiftgears_gear_slots_total{gear="algA"} 1`,
		`shiftgears_events_total{ev="drop"} 1`,
		`shiftgears_link_bytes_total{from="0",to="1"} 64`,
		"shiftgears_commit_latency_ticks_count 2",
		`shiftgears_commit_latency_ticks_bucket{le="+Inf"} 2`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q in:\n%s", want, body)
		}
	}
}

func TestHandlerGearsEndpoint(t *testing.T) {
	h := NewHandler(debugFixture())
	srv := httptest.NewServer(h)
	defer srv.Close()

	body := get(t, srv.URL+"/debug/gears")
	for _, want := range []string{
		"gear schedule", "exp", "algA", "shifts: 1",
		"chaos history", "drop", "partition_start", "fabric", "mem",
		"commit latency",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/debug/gears missing %q in:\n%s", want, body)
		}
	}
}

func TestHandlerTraceEndpoint(t *testing.T) {
	h := NewHandler(debugFixture())
	srv := httptest.NewServer(h)
	defer srv.Close()

	body := get(t, srv.URL+"/debug/trace")
	var evs []Event
	if err := json.Unmarshal([]byte(body), &evs); err != nil {
		t.Fatalf("/debug/trace is not an event array: %v", err)
	}
	if len(evs) != 8 {
		t.Fatalf("retained %d events, want 8", len(evs))
	}
	if evs[0].Type != TickStart || evs[len(evs)-1].Type != PartitionStart {
		t.Fatalf("event order wrong: first %v last %v", evs[0].Type, evs[len(evs)-1].Type)
	}
}

func TestHandlerExpvarRebinds(t *testing.T) {
	// Install one state, then another: /debug/vars must reflect the
	// latest without an expvar duplicate-publish panic.
	_ = NewHandler(debugFixture())
	st2 := debugFixture()
	st2.Metrics.Emit(At(TickStart, 99))
	h := NewHandler(st2)
	srv := httptest.NewServer(h)
	defer srv.Close()

	body := get(t, srv.URL+"/debug/vars")
	var vars map[string]json.RawMessage
	if err := json.Unmarshal([]byte(body), &vars); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v", err)
	}
	var sg struct {
		Ticks      int    `json:"ticks"`
		Commits    uint64 `json:"commits"`
		EventsSeen uint64 `json:"events_seen"`
	}
	if err := json.Unmarshal(vars["shiftgears"], &sg); err != nil {
		t.Fatalf("shiftgears expvar: %v", err)
	}
	if sg.Ticks != 99 {
		t.Fatalf("expvar ticks = %d, want 99 (latest handler wins)", sg.Ticks)
	}
}

func TestHandlerPprofAndIndex(t *testing.T) {
	h := NewHandler(debugFixture())
	srv := httptest.NewServer(h)
	defer srv.Close()

	if body := get(t, srv.URL+"/debug/pprof/"); !strings.Contains(body, "goroutine") {
		t.Error("/debug/pprof/ index should list profiles")
	}
	if body := get(t, srv.URL+"/"); !strings.Contains(body, "/debug/gears") {
		t.Error("index should advertise /debug/gears")
	}
}

func get(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}
