package obs

import "testing"

func TestWithShardStamps(t *testing.T) {
	ring := NewRing(0)
	tr := WithShard(ring, 3)
	tr.Emit(At(TickStart, 1))
	pre := At(SlotCommitted, 2)
	pre.Shard = 1 // a nested wrap already stamped it
	tr.Emit(pre)
	evs := ring.Events()
	if len(evs) != 2 {
		t.Fatalf("ring holds %d events, want 2", len(evs))
	}
	if evs[0].Shard != 3 {
		t.Fatalf("unstamped event got shard %d, want 3", evs[0].Shard)
	}
	if evs[1].Shard != 1 {
		t.Fatalf("pre-stamped event rewritten to shard %d, want 1", evs[1].Shard)
	}
	if WithShard(nil, 0) != nil {
		t.Fatal("WithShard(nil) must stay nil (zero-overhead contract)")
	}
}

func TestMetricsShardStats(t *testing.T) {
	m := NewMetrics()
	stamp := func(ev Event, shard int) Event {
		ev.Shard = shard
		return ev
	}
	m.Emit(stamp(At(TickStart, 3), 0))
	m.Emit(stamp(At(SlotCommitted, 3), 0))
	m.Emit(stamp(At(SlotCommitted, 4), 0))
	gear := At(GearResolved, 2)
	gear.Node, gear.Gear = 0, "Exponential"
	m.Emit(stamp(gear, 1))
	m.Emit(stamp(At(TickStart, 5), 1))
	m.Emit(At(SlotCommitted, 9)) // unsharded: must not create a shard row

	shards := m.Shards()
	if len(shards) != 2 {
		t.Fatalf("got %d shard rows, want 2: %+v", len(shards), shards)
	}
	if shards[0].Shard != 0 || shards[0].Ticks != 3 || shards[0].Commits != 2 {
		t.Fatalf("shard 0 stats %+v", shards[0])
	}
	if shards[1].Shard != 1 || shards[1].Ticks != 5 || shards[1].LastGear != "Exponential" {
		t.Fatalf("shard 1 stats %+v", shards[1])
	}
	if got := m.Commits(); got != 3 {
		t.Fatalf("global commits %d, want 3 (sharded and unsharded alike)", got)
	}
}
