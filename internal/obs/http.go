package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net/http"
	"net/http/pprof"
	"sort"
	"sync"
	"sync/atomic"
)

// DebugState is what the live /debug surface renders: the counting sink,
// the bounded event history, and optional run description hooks. All
// fields are optional; absent pieces render as empty sections.
type DebugState struct {
	// Metrics backs /metrics and the counters on /debug/gears.
	Metrics *Metrics
	// Ring backs /debug/trace and the histories on /debug/gears.
	Ring *Ring
	// Latency backs the commit-latency histogram series; when nil,
	// Metrics.Latency() is used.
	Latency *Histogram
	// Info contributes free-form run description (n, t, fabric, ...)
	// rendered on /debug/gears and exported under expvar.
	Info func() map[string]any
}

func (st DebugState) latency() *Histogram {
	if st.Latency != nil {
		return st.Latency
	}
	if st.Metrics != nil {
		return st.Metrics.Latency()
	}
	return nil
}

// current is the DebugState snapshot the process-wide expvar hooks read.
// expvar.Publish is append-only (re-publishing a name panics), so the
// published Funcs indirect through this pointer and NewHandler swaps it —
// tests and successive runs each install their own state without
// tripping the expvar registry.
var (
	current     atomic.Pointer[DebugState]
	expvarOnce  sync.Once
	expvarNames = "shiftgears"
)

func publishExpvars() {
	expvar.Publish(expvarNames, expvar.Func(func() any {
		st := current.Load()
		if st == nil {
			return nil
		}
		out := map[string]any{}
		if st.Metrics != nil {
			out["ticks"] = st.Metrics.Ticks()
			out["commits"] = st.Metrics.Commits()
			out["gear_shifts"] = st.Metrics.GearShifts()
			out["gears"] = st.Metrics.Gears()
			out["chaos"] = st.Metrics.ChaosCounts()
			if shards := st.Metrics.Shards(); len(shards) > 0 {
				out["shards"] = shards
			}
		}
		if h := st.latency(); h != nil {
			out["latency"] = h.Summarize()
		}
		if st.Ring != nil {
			out["events_seen"] = st.Ring.Total()
		}
		if st.Info != nil {
			out["run"] = st.Info()
		}
		return out
	}))
}

// NewHandler builds the live observability surface:
//
//	/metrics          Prometheus text exposition of the Metrics sink
//	/debug/vars       expvar JSON (includes the "shiftgears" tree)
//	/debug/pprof/...  net/http/pprof
//	/debug/gears      human-readable gear schedule + chaos history
//	/debug/trace      retained flight-recorder events as JSON
//
// The state is also installed as the process-wide expvar source; calling
// NewHandler again rebinds expvar to the newest state (last one wins).
func NewHandler(st DebugState) http.Handler {
	stCopy := st
	current.Store(&stCopy)
	expvarOnce.Do(publishExpvars)

	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		writePrometheus(w, stCopy)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/debug/gears", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		writeGears(w, stCopy)
	})
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		var evs []Event
		if stCopy.Ring != nil {
			evs = stCopy.Ring.Events()
		}
		_ = json.NewEncoder(w).Encode(evs)
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "shiftgears debug surface")
		fmt.Fprintln(w, "  /metrics       Prometheus text metrics")
		fmt.Fprintln(w, "  /debug/vars    expvar JSON")
		fmt.Fprintln(w, "  /debug/pprof/  runtime profiles")
		fmt.Fprintln(w, "  /debug/gears   gear schedule + chaos history")
		fmt.Fprintln(w, "  /debug/trace   retained flight-recorder events")
	})
	return mux
}

func writePrometheus(w http.ResponseWriter, st DebugState) {
	m := st.Metrics
	if m == nil {
		fmt.Fprintln(w, "# no metrics sink installed")
		return
	}
	fmt.Fprintln(w, "# HELP shiftgears_ticks Highest global tick observed.")
	fmt.Fprintln(w, "# TYPE shiftgears_ticks gauge")
	fmt.Fprintf(w, "shiftgears_ticks %d\n", m.Ticks())

	fmt.Fprintln(w, "# HELP shiftgears_commits_total Slots committed (node-scoped events).")
	fmt.Fprintln(w, "# TYPE shiftgears_commits_total counter")
	fmt.Fprintf(w, "shiftgears_commits_total %d\n", m.Commits())

	fmt.Fprintln(w, "# HELP shiftgears_gear_shifts_total Consecutive-slot gear changes at node 0.")
	fmt.Fprintln(w, "# TYPE shiftgears_gear_shifts_total counter")
	fmt.Fprintf(w, "shiftgears_gear_shifts_total %d\n", m.GearShifts())

	gears := m.Gears()
	names := make([]string, 0, len(gears))
	for g := range gears {
		names = append(names, g)
	}
	sort.Strings(names)
	fmt.Fprintln(w, "# HELP shiftgears_gear_slots_total Slots resolved per gear at node 0.")
	fmt.Fprintln(w, "# TYPE shiftgears_gear_slots_total counter")
	for _, g := range names {
		fmt.Fprintf(w, "shiftgears_gear_slots_total{gear=%q} %d\n", g, gears[g])
	}

	fmt.Fprintln(w, "# HELP shiftgears_events_total Flight-recorder events by type.")
	fmt.Fprintln(w, "# TYPE shiftgears_events_total counter")
	for t := Type(1); t < numTypes; t++ {
		if c := m.CountOf(t); c > 0 {
			fmt.Fprintf(w, "shiftgears_events_total{ev=%q} %d\n", t.String(), c)
		}
	}

	if shards := m.Shards(); len(shards) > 0 {
		fmt.Fprintln(w, "# HELP shiftgears_shard_commits_total Slots committed per shard.")
		fmt.Fprintln(w, "# TYPE shiftgears_shard_commits_total counter")
		for _, ss := range shards {
			fmt.Fprintf(w, "shiftgears_shard_commits_total{shard=\"%d\"} %d\n", ss.Shard, ss.Commits)
		}
		fmt.Fprintln(w, "# HELP shiftgears_shard_ticks Highest tick observed per shard.")
		fmt.Fprintln(w, "# TYPE shiftgears_shard_ticks gauge")
		for _, ss := range shards {
			fmt.Fprintf(w, "shiftgears_shard_ticks{shard=\"%d\"} %d\n", ss.Shard, ss.Ticks)
		}
	}

	links := m.Links()
	fmt.Fprintln(w, "# HELP shiftgears_link_frames_total Frames delivered per directed link.")
	fmt.Fprintln(w, "# TYPE shiftgears_link_frames_total counter")
	for _, lt := range links {
		fmt.Fprintf(w, "shiftgears_link_frames_total{from=\"%d\",to=\"%d\"} %d\n", lt.From, lt.To, lt.Frames)
	}
	fmt.Fprintln(w, "# HELP shiftgears_link_bytes_total Bytes delivered per directed link.")
	fmt.Fprintln(w, "# TYPE shiftgears_link_bytes_total counter")
	for _, lt := range links {
		fmt.Fprintf(w, "shiftgears_link_bytes_total{from=\"%d\",to=\"%d\"} %d\n", lt.From, lt.To, lt.Bytes)
	}

	if h := st.latency(); h != nil && h.Count() > 0 {
		bounds, cum, total := h.Buckets()
		fmt.Fprintln(w, "# HELP shiftgears_commit_latency_ticks Submit-to-commit latency in ticks.")
		fmt.Fprintln(w, "# TYPE shiftgears_commit_latency_ticks histogram")
		for i, b := range bounds {
			fmt.Fprintf(w, "shiftgears_commit_latency_ticks_bucket{le=\"%d\"} %d\n", b, cum[i])
		}
		fmt.Fprintf(w, "shiftgears_commit_latency_ticks_bucket{le=\"+Inf\"} %d\n", total)
		fmt.Fprintf(w, "shiftgears_commit_latency_ticks_sum %d\n", h.Sum())
		fmt.Fprintf(w, "shiftgears_commit_latency_ticks_count %d\n", total)
	}
}

func writeGears(w http.ResponseWriter, st DebugState) {
	fmt.Fprintln(w, "== gear schedule ==")
	if st.Info != nil {
		info := st.Info()
		keys := make([]string, 0, len(info))
		for k := range info {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(w, "%-10s %v\n", k, info[k])
		}
		fmt.Fprintln(w)
	}
	if m := st.Metrics; m != nil {
		gears := m.Gears()
		names := make([]string, 0, len(gears))
		for g := range gears {
			names = append(names, g)
		}
		sort.Strings(names)
		for _, g := range names {
			fmt.Fprintf(w, "gear %-14s %d slots\n", g, gears[g])
		}
		fmt.Fprintf(w, "shifts: %d  commits: %d  ticks: %d\n", m.GearShifts(), m.Commits(), m.Ticks())
		if h := st.latency(); h != nil && h.Count() > 0 {
			fmt.Fprintf(w, "commit latency: %s\n", h.Summarize())
		}
		if shards := m.Shards(); len(shards) > 0 {
			fmt.Fprintln(w, "\n== shards ==")
			for _, ss := range shards {
				gear := ss.LastGear
				if gear == "" {
					gear = "-"
				}
				fmt.Fprintf(w, "shard %3d  ticks %4d  commits %5d  gear %s\n", ss.Shard, ss.Ticks, ss.Commits, gear)
			}
		}
	}
	if st.Ring != nil {
		fmt.Fprintln(w, "\n== recent gear decisions ==")
		for _, ev := range st.Ring.Events() {
			if ev.Type == GearResolved && ev.Node <= 0 {
				fmt.Fprintf(w, "tick %4d  slot %3d  -> %s (%d rounds)\n", ev.Tick, ev.Slot, ev.Gear, ev.Round)
			}
		}
		fmt.Fprintln(w, "\n== chaos history ==")
		seen := false
		for _, ev := range st.Ring.Events() {
			if !ev.Type.Chaos() {
				continue
			}
			seen = true
			switch ev.Type {
			case PartitionStart, PartitionHeal:
				fmt.Fprintf(w, "tick %4d  %-15s %s\n", ev.Tick, ev.Type, ev.Note)
			case CrashStart, CrashEnd:
				fmt.Fprintf(w, "tick %4d  %-15s node %d\n", ev.Tick, ev.Type, ev.Node)
			case ChaosReorder:
				fmt.Fprintf(w, "tick %4d  %-15s recv %d\n", ev.Tick, ev.Type, ev.To)
			default:
				fmt.Fprintf(w, "tick %4d  %-15s link %d->%d slot %d\n", ev.Tick, ev.Type, ev.From, ev.To, ev.Slot)
			}
		}
		if !seen {
			fmt.Fprintln(w, "(none retained)")
		}
	}
}
