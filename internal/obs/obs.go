// Package obs is the engine's flight recorder: a structured, typed event
// stream threaded through the one drive loop (fabric.Run), the mux
// schedule, the replicated-log engine, and the chaos fabric, so the
// paper's central artifact — the runtime decision of which algorithm each
// slot runs, and the fault evidence that drove it — is auditable while
// the system runs instead of reconstructable only post mortem.
//
// The zero-overhead contract: tracing is off by default (a nil Tracer
// everywhere), and every emission site guards with a nil check before
// building its Event, so the traced hot paths — fabric.Run's tick loop,
// sim.Mux's window machinery, fabric.Mem's per-frame fault filter — run
// the exact instructions they ran before this package existed.
// BenchmarkFabricTick pins the consequence: 0 allocs/tick with tracing
// disabled. With a tracer installed, Event values are flat structs passed
// by value (no boxing, no per-event allocation in the runtime itself);
// whatever a sink allocates is the sink's honest, opt-in cost.
//
// Sinks: Ring (bounded in-memory history, for tests and the /debug
// surface), JSONL (one event per line, for `logload -trace` and offline
// replay), Metrics (counters, per-link traffic, gear shifts — the
// Prometheus/expvar substrate), composed with Tee. Histogram is the
// fixed-bucket latency store behind commit-latency percentiles.
package obs

import (
	"fmt"
	"sync"
)

// Type classifies an Event. The taxonomy follows the run's anatomy:
// schedule events (tick and window motion), slot events (the gear
// decision trail), traffic events (per-link frame batches), terminal
// events (how a run died), and chaos events (every seeded fault decision
// the Mem fabric makes, keyed so a trace replays the plan exactly).
type Type uint8

const (
	// TickStart opens global tick Tick in the drive runtime.
	TickStart Type = iota + 1
	// WindowAdvance records an instance retiring from a node's pipeline
	// window: Node finished Slot after Round local rounds, making room
	// for the next instance at the following fill.
	WindowAdvance
	// SlotOpen records Slot entering Node's window with Round resolved
	// local rounds — for gear-scheduled logs, the moment the gear
	// decision took effect.
	SlotOpen
	// GearResolved records the engine resolving Slot's protocol at Node:
	// Round is the resolved round count, Gear the algorithm's name when
	// the protocol exposes one (shiftgears protocols all do).
	GearResolved
	// SlotCommitted records Node committing Slot (in log order) at Tick.
	SlotCommitted
	// FrameBatch aggregates one link's delivery for one tick: From's
	// frames into To — Frames of them, Bytes total. Links silent in a
	// tick emit nothing.
	FrameBatch
	// Diverged, Wedged, and Aborted are terminal: the run died with a
	// schedule divergence, a wedged node on a fabric that cannot mute,
	// or any other error (Note carries the message).
	Diverged
	Wedged
	Aborted
	// ChaosDrop: the Mem plan lost From→To's frame for Slot outright.
	ChaosDrop
	// ChaosLate: the frame missed the synchrony bound (read as silence).
	ChaosLate
	// ChaosDelay: the frame was held to the end of the tick's exchange —
	// within the bound, so delivery happened and nothing observable may
	// change.
	ChaosDelay
	// ChaosCut: the frame was severed by an active partition or crash
	// window on the From→To link.
	ChaosCut
	// ChaosReorder: receiver To's within-tick delivery order was
	// shuffled this tick (must be invisible; one event per receiver).
	ChaosReorder
	// PartitionStart and PartitionHeal bracket one Partition window
	// (Note names the group); CrashStart and CrashEnd bracket one
	// crash window (Node is the crashed node).
	PartitionStart
	PartitionHeal
	CrashStart
	CrashEnd

	numTypes
)

var typeNames = [numTypes]string{
	TickStart:      "tick",
	WindowAdvance:  "window",
	SlotOpen:       "slot_open",
	GearResolved:   "gear",
	SlotCommitted:  "commit",
	FrameBatch:     "frames",
	Diverged:       "diverged",
	Wedged:         "wedged",
	Aborted:        "aborted",
	ChaosDrop:      "drop",
	ChaosLate:      "late",
	ChaosDelay:     "delay",
	ChaosCut:       "cut",
	ChaosReorder:   "reorder",
	PartitionStart: "partition_start",
	PartitionHeal:  "partition_heal",
	CrashStart:     "crash_start",
	CrashEnd:       "crash_end",
}

// String names the type (the JSONL "ev" field).
func (t Type) String() string {
	if int(t) < len(typeNames) && typeNames[t] != "" {
		return typeNames[t]
	}
	return fmt.Sprintf("Type(%d)", int(t))
}

// MarshalText encodes the type as its name.
func (t Type) MarshalText() ([]byte, error) {
	if int(t) >= len(typeNames) || typeNames[t] == "" {
		return nil, fmt.Errorf("obs: unknown event type %d", int(t))
	}
	return []byte(typeNames[t]), nil
}

// UnmarshalText decodes a type name; unknown names are an error, which is
// what makes a JSONL trace checkable line by line.
func (t *Type) UnmarshalText(b []byte) error {
	s := string(b)
	for typ, name := range typeNames {
		if name != "" && name == s {
			*t = Type(typ)
			return nil
		}
	}
	return fmt.Errorf("obs: unknown event type %q", s)
}

// Chaos reports whether the type is one of the Mem fabric's fault-plan
// events — the audit trail a chaos trace must carry.
func (t Type) Chaos() bool {
	switch t {
	case ChaosDrop, ChaosLate, ChaosDelay, ChaosCut, ChaosReorder,
		PartitionStart, PartitionHeal, CrashStart, CrashEnd:
		return true
	}
	return false
}

// Event is one flight-recorder record: a flat value (no pointers, no
// boxing) so emitting costs nothing beyond the sink's own work. Fields
// not named by the event's Type documentation are -1 (ids) or zero
// (counts); At builds the canonical blank.
// Fields are ordered pointer-bearing first (fieldalignment): the GC
// scans only the leading 32 pointer bytes of an Event instead of the
// whole 112, which matters for a Ring holding tens of thousands.
type Event struct {
	// Gear is the resolved algorithm name of a GearResolved event.
	Gear string `json:"gear,omitempty"`
	// Note carries free-form detail (terminal errors, partition groups).
	Note string `json:"note,omitempty"`
	// Tick is the 1-based global tick the event belongs to.
	Tick int `json:"tick"`
	// Node is the emitting/affected node id, -1 when not node-scoped.
	Node int `json:"node"`
	// Slot is the instance (log slot) id, -1 when not slot-scoped.
	Slot int `json:"slot"`
	// Round is a round count or local round, 0 when unused.
	Round int `json:"round,omitempty"`
	// From and To are the link endpoints (sender, receiver) of traffic
	// and chaos events, -1 otherwise.
	From int `json:"from"`
	To   int `json:"to"`
	// Frames and Bytes aggregate a FrameBatch.
	Frames int `json:"frames,omitempty"`
	Bytes  int `json:"bytes,omitempty"`
	// Shard tags the shard (agreement group) the event came from in a
	// sharded multi-log, -1 for an unsharded run. Emission sites never
	// set it; WithShard stamps it at the tracer boundary.
	Shard int  `json:"shard"`
	Type  Type `json:"ev"`
}

// At returns the canonical blank event of a type at a tick: every
// id field -1, counts zero. Emission sites fill in what their type
// defines.
func At(t Type, tick int) Event {
	return Event{Type: t, Tick: tick, Node: -1, Slot: -1, From: -1, To: -1, Shard: -1}
}

// Tracer receives the event stream. Implementations must be safe for
// concurrent Emit calls: under parallel drive loops, every hosted node's
// half-tick runs on its own goroutine and they all share one tracer. A
// nil Tracer means tracing is off; emission sites must check before
// building events (the zero-overhead contract).
type Tracer interface {
	Emit(Event)
}

// tee fans events out to several tracers in order.
type tee []Tracer

func (t tee) Emit(ev Event) {
	for _, tr := range t {
		tr.Emit(ev) //gearsvet:allow Tee drops nil members at construction, so every tracer here is non-nil by invariant
	}
}

// Tee composes tracers: every event goes to each non-nil tracer in
// order. Nil members are dropped; zero live members yield a nil Tracer
// (tracing off), one yields it directly.
func Tee(tracers ...Tracer) Tracer {
	live := make(tee, 0, len(tracers))
	for _, tr := range tracers {
		if tr != nil {
			live = append(live, tr)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return live
}

// withShard stamps a shard id onto every event flowing to the wrapped
// tracer, so K shards can share one sink without their streams blurring.
type withShard struct {
	tr    Tracer
	shard int
}

func (w withShard) Emit(ev Event) {
	if ev.Shard < 0 {
		ev.Shard = w.shard
	}
	w.tr.Emit(ev) //gearsvet:allow WithShard returns nil for a nil inner tracer, so tr is non-nil by invariant
}

// WithShard wraps a tracer so every event it sees carries the shard id
// (events already stamped — e.g. by a nested wrap — keep their id). A
// nil tracer stays nil, preserving the zero-overhead contract.
func WithShard(tr Tracer, shard int) Tracer {
	if tr == nil {
		return nil
	}
	return withShard{tr: tr, shard: shard}
}

// Ring is a bounded in-memory sink: it keeps the last cap events and
// counts everything it ever saw. It is the test and /debug substrate —
// cheap enough to leave on, bounded so long runs cannot grow it.
type Ring struct {
	mu    sync.Mutex
	buf   []Event
	cap   int
	next  int
	total uint64
}

// DefaultRingCap bounds a Ring built with NewRing(0).
const DefaultRingCap = 4096

// NewRing builds a ring keeping the last cap events (cap ≤ 0 =
// DefaultRingCap).
func NewRing(cap int) *Ring {
	if cap <= 0 {
		cap = DefaultRingCap
	}
	return &Ring{cap: cap}
}

// Emit implements Tracer.
func (r *Ring) Emit(ev Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.total++
	if len(r.buf) < r.cap {
		r.buf = append(r.buf, ev)
		return
	}
	r.buf[r.next] = ev
	r.next = (r.next + 1) % r.cap
}

// Events returns the retained events, oldest first.
func (r *Ring) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Total returns how many events the ring has seen (retained or evicted).
func (r *Ring) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}
