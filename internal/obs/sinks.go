package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
)

// JSONL streams events as one JSON object per line — the offline trace
// format `logload -trace` writes and cmd/tracecheck audits. Writes are
// buffered and serialized; call Close (or at least Flush) when the run
// ends or the tail of the trace stays in the buffer.
type JSONL struct {
	mu  sync.Mutex
	w   *bufio.Writer
	c   io.Closer
	err error
}

// NewJSONL wraps w in a line-buffered JSONL sink. If w is also an
// io.Closer, Close closes it.
func NewJSONL(w io.Writer) *JSONL {
	j := &JSONL{w: bufio.NewWriter(w)}
	if c, ok := w.(io.Closer); ok {
		j.c = c
	}
	return j
}

// Emit implements Tracer. The first write error sticks and suppresses
// further writes; Err / Close report it.
func (j *JSONL) Emit(ev Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return
	}
	b, err := json.Marshal(ev)
	if err != nil {
		j.err = err
		return
	}
	if _, err := j.w.Write(b); err != nil {
		j.err = err
		return
	}
	j.err = j.w.WriteByte('\n')
}

// Err returns the first write error, if any.
func (j *JSONL) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Flush drains the buffer.
func (j *JSONL) Flush() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return j.err
	}
	j.err = j.w.Flush()
	return j.err
}

// Close flushes and closes the underlying writer when it is closable.
func (j *JSONL) Close() error {
	err := j.Flush()
	j.mu.Lock()
	c := j.c
	j.c = nil
	j.mu.Unlock()
	if c != nil {
		if cerr := c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// ReadJSONL parses a JSONL trace back into events, validating every
// line (unknown event types and malformed JSON are errors). It is the
// replay half of the trace contract: what JSONL wrote, ReadJSONL
// returns verbatim.
func ReadJSONL(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var evs []Event
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(b, &ev); err != nil {
			return nil, fmt.Errorf("obs: trace line %d: %w", line, err)
		}
		if ev.Type == 0 {
			return nil, fmt.Errorf("obs: trace line %d: missing event type", line)
		}
		evs = append(evs, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: reading trace: %w", err)
	}
	return evs, nil
}

// Link identifies one directed link (sender→receiver).
type Link struct {
	From, To int
}

// LinkTraffic aggregates one link's lifetime traffic.
type LinkTraffic struct {
	Link
	Frames int
	Bytes  int
}

// ShardStats aggregates one shard's slice of a sharded run's event
// stream: how far its clock got, how much it committed, and the gear it
// last resolved (at its node 0).
type ShardStats struct {
	Shard    int
	Ticks    int
	Commits  uint64
	LastGear string
}

// Metrics is the counting sink: O(1) state per event type, gear, link,
// and shard, regardless of run length. It backs the Prometheus/expvar
// surface and the gear-shift counters, and is safe to share across the
// parallel drive loop's goroutines.
type Metrics struct {
	mu        sync.Mutex
	byType    [numTypes]uint64
	ticks     int
	commits   uint64
	gearCount map[string]uint64 // resolved gear name → slots
	shifts    uint64            // GearResolved events whose gear != previous slot's (per node 0)
	lastGear  string
	links     map[Link]*LinkTraffic
	shards    map[int]*ShardStats // shard id → stats, only for stamped (Shard ≥ 0) events
	latency   Histogram
}

// NewMetrics builds an empty metrics sink.
func NewMetrics() *Metrics {
	return &Metrics{
		gearCount: make(map[string]uint64),
		links:     make(map[Link]*LinkTraffic),
		shards:    make(map[int]*ShardStats),
	}
}

// shardOf returns (lazily creating) the stats row for a stamped event's
// shard. Callers hold m.mu.
func (m *Metrics) shardOf(id int) *ShardStats {
	ss := m.shards[id]
	if ss == nil {
		ss = &ShardStats{Shard: id}
		m.shards[id] = ss
	}
	return ss
}

// Emit implements Tracer.
func (m *Metrics) Emit(ev Event) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if int(ev.Type) < len(m.byType) {
		m.byType[ev.Type]++
	}
	switch ev.Type {
	case TickStart:
		if ev.Tick > m.ticks {
			m.ticks = ev.Tick
		}
		if ev.Shard >= 0 {
			if ss := m.shardOf(ev.Shard); ev.Tick > ss.Ticks {
				ss.Ticks = ev.Tick
			}
		}
	case SlotCommitted:
		m.commits++
		if ev.Shard >= 0 {
			m.shardOf(ev.Shard).Commits++
		}
	case GearResolved:
		// Count shifts from one node's perspective (node 0 when present)
		// so an N-node run doesn't count each shift N times.
		if ev.Node <= 0 {
			m.gearCount[ev.Gear]++
			if m.lastGear != "" && ev.Gear != m.lastGear {
				m.shifts++
			}
			m.lastGear = ev.Gear
			if ev.Shard >= 0 {
				m.shardOf(ev.Shard).LastGear = ev.Gear
			}
		}
	case FrameBatch:
		k := Link{From: ev.From, To: ev.To}
		lt := m.links[k]
		if lt == nil {
			lt = &LinkTraffic{Link: k}
			m.links[k] = lt
		}
		lt.Frames += ev.Frames
		lt.Bytes += ev.Bytes
	}
}

// Latency returns the sink's commit-latency histogram, for drivers that
// want to Observe into the same store the HTTP surface renders.
func (m *Metrics) Latency() *Histogram { return &m.latency }

// CountOf returns how many events of one type were seen.
func (m *Metrics) CountOf(t Type) uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if int(t) < len(m.byType) {
		return m.byType[t]
	}
	return 0
}

// Ticks returns the highest tick observed.
func (m *Metrics) Ticks() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ticks
}

// Commits returns the number of SlotCommitted events.
func (m *Metrics) Commits() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.commits
}

// GearShifts returns how many times consecutive slots (as resolved at
// node 0) changed gear.
func (m *Metrics) GearShifts() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.shifts
}

// Gears returns the per-gear slot counts (resolved at node 0), as a
// copied map.
func (m *Metrics) Gears() map[string]uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]uint64, len(m.gearCount))
	for k, v := range m.gearCount {
		out[k] = v
	}
	return out
}

// Links returns per-link lifetime traffic, sorted by (From, To).
func (m *Metrics) Links() []LinkTraffic {
	m.mu.Lock()
	out := make([]LinkTraffic, 0, len(m.links))
	for _, lt := range m.links {
		out = append(out, *lt)
	}
	m.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

// Shards returns per-shard stats (for sharded runs, whose tracers stamp
// a shard id onto every event), sorted by shard id. Unsharded runs — no
// stamped events — return an empty slice.
func (m *Metrics) Shards() []ShardStats {
	m.mu.Lock()
	out := make([]ShardStats, 0, len(m.shards))
	for _, ss := range m.shards {
		out = append(out, *ss)
	}
	m.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Shard < out[j].Shard })
	return out
}

// ChaosCounts returns the per-type counts of chaos events, keyed by
// type name — the audit summary a chaos smoke asserts on.
func (m *Metrics) ChaosCounts() map[string]uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]uint64)
	for t := Type(1); t < numTypes; t++ {
		if t.Chaos() && m.byType[t] > 0 {
			out[t.String()] = m.byType[t]
		}
	}
	return out
}
