package obs

import (
	"fmt"
	"sync"
)

// latencyBuckets are the fixed upper bounds (inclusive, in ticks) of the
// commit-latency histogram. The domain is submit→commit distance in
// synchronous ticks: single digits for an uncontended fast gear, tens
// under pipelining depth, hundreds when chaos forces the heavy gear on a
// long queue. Fixed buckets keep Observe O(1) and allocation-free, make
// histograms mergeable across replicas by simple addition, and render
// directly as Prometheus cumulative buckets.
var latencyBuckets = [...]int{
	1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64, 96, 128, 192, 256, 384, 512, 768, 1024,
}

// NumBuckets is the number of finite histogram buckets; an extra
// overflow bucket catches anything beyond the last bound.
const NumBuckets = len(latencyBuckets)

// Histogram is a fixed-bucket latency histogram over ticks. The zero
// value is ready to use. All methods are safe for concurrent use.
type Histogram struct {
	mu     sync.Mutex
	counts [NumBuckets + 1]uint64
	total  uint64
	sum    uint64
	max    int
}

// Observe records one latency sample (in ticks).
func (h *Histogram) Observe(ticks int) {
	if ticks < 0 {
		ticks = 0
	}
	i := 0
	for i < NumBuckets && ticks > latencyBuckets[i] {
		i++
	}
	h.mu.Lock()
	h.counts[i]++
	h.total++
	h.sum += uint64(ticks)
	if ticks > h.max {
		h.max = ticks
	}
	h.mu.Unlock()
}

// Merge adds other's samples into h. Fixed shared buckets make this a
// plain vector addition, which is what lets per-replica histograms fold
// into one log-level view.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil || other == h {
		return
	}
	other.mu.Lock()
	counts, total, sum, max := other.counts, other.total, other.sum, other.max
	other.mu.Unlock()
	h.mu.Lock()
	for i := range counts {
		h.counts[i] += counts[i]
	}
	h.total += total
	h.sum += sum
	if max > h.max {
		h.max = max
	}
	h.mu.Unlock()
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.total
}

// Sum returns the sum of all recorded samples, in ticks (the Prometheus
// histogram _sum series).
func (h *Histogram) Sum() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Quantile returns the latency (in ticks) at quantile q in [0, 1],
// resolved to the upper bound of the bucket holding the q-th sample —
// a conservative (never underestimating) read, the convention fixed
// buckets afford. Returns 0 with no samples.
func (h *Histogram) Quantile(q float64) int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.quantileLocked(q)
}

func (h *Histogram) quantileLocked(q float64) int {
	if h.total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(h.total))
	if rank >= h.total {
		rank = h.total - 1
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum > rank {
			if i < NumBuckets {
				return latencyBuckets[i]
			}
			return h.max // overflow bucket: report the observed max
		}
	}
	return h.max
}

// LatencySummary is the rendered view of a Histogram: sample count,
// mean, and the percentile ladder the bench and load tools print.
type LatencySummary struct {
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean_ticks"`
	P50   int     `json:"p50_ticks"`
	P90   int     `json:"p90_ticks"`
	P99   int     `json:"p99_ticks"`
	Max   int     `json:"max_ticks"`
}

// Summarize renders the histogram.
func (h *Histogram) Summarize() LatencySummary {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := LatencySummary{Count: h.total, Max: h.max}
	if h.total > 0 {
		s.Mean = float64(h.sum) / float64(h.total)
		s.P50 = h.quantileLocked(0.50)
		s.P90 = h.quantileLocked(0.90)
		s.P99 = h.quantileLocked(0.99)
	}
	return s
}

// String renders the summary on one line, e.g.
// "n=26 mean=8.4 p50=8 p90=12 p99=16 max=14 ticks".
func (s LatencySummary) String() string {
	if s.Count == 0 {
		return "n=0"
	}
	return fmt.Sprintf("n=%d mean=%.1f p50=%d p90=%d p99=%d max=%d ticks",
		s.Count, s.Mean, s.P50, s.P90, s.P99, s.Max)
}

// Buckets returns the cumulative bucket view: for each finite bucket,
// its upper bound (in ticks) and the count of samples ≤ that bound,
// plus the total (which includes the overflow bucket). This is exactly
// the Prometheus histogram contract (le-labeled cumulative counts with
// +Inf = total).
func (h *Histogram) Buckets() (bounds []int, cumulative []uint64, total uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	bounds = make([]int, NumBuckets)
	cumulative = make([]uint64, NumBuckets)
	var cum uint64
	for i := 0; i < NumBuckets; i++ {
		cum += h.counts[i]
		bounds[i] = latencyBuckets[i]
		cumulative[i] = cum
	}
	return bounds, cumulative, h.total
}
