package sim

import (
	"fmt"
	"testing"
)

// tagInstance is a minimal Instance for configuration-level tests; the
// schedule-behavior tests (pipelining, lazy rounds, worker pools) drive
// real muxes through the fabric runtime and live in internal/fabric.
type tagInstance struct {
	inst int
	n    int
}

func (ti *tagInstance) PrepareRound(round int) [][]byte {
	return Broadcast(ti.n, []byte{byte(ti.inst), byte(round)})
}

func (ti *tagInstance) DeliverRound(round int, inbox [][]byte) {}

func TestMuxTicks(t *testing.T) {
	cases := []struct {
		rounds []int
		window int
		want   int
	}{
		{[]int{3, 3, 3, 3}, 1, 12}, // sequential
		{[]int{3, 3, 3, 3}, 2, 6},  // two at a time
		{[]int{3, 3, 3, 3}, 4, 3},  // all at once
		{[]int{3, 3, 3, 3}, 8, 3},  // window larger than load
		{[]int{5, 1, 2}, 2, 5},     // staggered: 1 finishes, 2 slides in
		{[]int{2}, 3, 2},
	}
	for _, c := range cases {
		if got := MuxTicks(c.rounds, c.window); got != c.want {
			t.Errorf("MuxTicks(%v, %d) = %d, want %d", c.rounds, c.window, got, c.want)
		}
	}
}

func TestMuxValidation(t *testing.T) {
	start := func(int) (Instance, error) { return &tagInstance{n: 2}, nil }
	roundsFor := func(int) int { return 1 }
	bad := []MuxConfig{
		{ID: 0, N: 2, Window: 0, Rounds: []int{1}, Start: start},
		{ID: 2, N: 2, Window: 1, Rounds: []int{1}, Start: start},
		{ID: 0, N: 2, Window: 1, Rounds: nil, Start: start},
		{ID: 0, N: 2, Window: 1, Rounds: []int{0}, Start: start},
		{ID: 0, N: 2, Window: 1, Rounds: []int{1}},
		{ID: 0, N: 2, Window: 1, Rounds: []int{1}, RoundsFor: roundsFor, Instances: 1, Start: start},
		{ID: 0, N: 2, Window: 1, RoundsFor: roundsFor, Start: start}, // missing Instances
	}
	for i, cfg := range bad {
		if _, err := NewMux(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
	if _, err := NewMux(MuxConfig{ID: 0, N: 2, Window: 1, RoundsFor: roundsFor, Instances: 3, Start: start}); err != nil {
		t.Errorf("lazy-rounds config rejected: %v", err)
	}
}

// TestMuxLazyRoundsInvalid: a RoundsFor returning < 1 fails the tick with
// a schedule error rather than wedging the window.
func TestMuxLazyRoundsInvalid(t *testing.T) {
	m, err := NewMux(MuxConfig{
		ID: 0, N: 2, Window: 1, Instances: 2,
		RoundsFor: func(inst int) int { return -inst }, // instance 0 → 0: invalid
		Start:     func(inst int) (Instance, error) { return &tagInstance{inst: inst, n: 2}, nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Outboxes(); err == nil {
		t.Fatal("invalid resolved round count not surfaced")
	}
	if m.Err() == nil {
		t.Fatal("Err() empty after invalid resolution")
	}
}

func TestMuxStartFailureSurfaces(t *testing.T) {
	m, err := NewMux(MuxConfig{
		ID: 0, N: 2, Window: 1, Rounds: []int{1},
		Start: func(inst int) (Instance, error) { return nil, fmt.Errorf("boom") },
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Outboxes(); err == nil {
		t.Fatal("factory failure not surfaced")
	}
	if m.Err() == nil {
		t.Fatal("Err() empty after factory failure")
	}
}

// TestMuxTickProtocol: Outboxes twice without a Deliver, or Deliver
// without Outboxes, is a driver bug and fails loudly.
func TestMuxTickProtocol(t *testing.T) {
	mk := func() *Mux {
		m, err := NewMux(MuxConfig{
			ID: 0, N: 2, Window: 1, Rounds: []int{2},
			Start: func(inst int) (Instance, error) { return &tagInstance{inst: inst, n: 2}, nil },
		})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	m := mk()
	if err := m.Deliver(make([][][]byte, 2)); err == nil {
		t.Fatal("Deliver before Outboxes accepted")
	}
	m = mk()
	if _, err := m.Outboxes(); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Outboxes(); err == nil {
		t.Fatal("double Outboxes accepted")
	}
}
