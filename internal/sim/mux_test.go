package sim

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

// tagInstance broadcasts [instance, round] every local round and records
// every inbox it receives.
type tagInstance struct {
	mu     sync.Mutex
	inst   int
	n      int
	rounds []int    // local rounds delivered, in order
	seen   [][]byte // flattened inbox per local round
}

func (ti *tagInstance) PrepareRound(round int) [][]byte {
	return Broadcast(ti.n, []byte{byte(ti.inst), byte(round)})
}

func (ti *tagInstance) DeliverRound(round int, inbox [][]byte) {
	ti.mu.Lock()
	defer ti.mu.Unlock()
	ti.rounds = append(ti.rounds, round)
	var flat []byte
	for _, p := range inbox {
		flat = append(flat, p...)
	}
	ti.seen = append(ti.seen, flat)
}

// buildMuxes wires n muxes over the same schedule and returns the per-node
// instance tables for inspection.
func buildMuxes(t *testing.T, n, window int, rounds []int) ([]Processor, [][]*tagInstance, [][]int) {
	t.Helper()
	procs := make([]Processor, n)
	insts := make([][]*tagInstance, n)
	finished := make([][]int, n)
	for id := 0; id < n; id++ {
		id := id
		insts[id] = make([]*tagInstance, len(rounds))
		m, err := NewMux(MuxConfig{
			ID: id, N: n, Window: window, Rounds: rounds,
			Start: func(inst int) (Instance, error) {
				ti := &tagInstance{inst: inst, n: n}
				insts[id][inst] = ti
				return ti, nil
			},
			Finish: func(inst int) { finished[id] = append(finished[id], inst) },
		})
		if err != nil {
			t.Fatal(err)
		}
		procs[id] = m
	}
	return procs, insts, finished
}

func TestMuxTicks(t *testing.T) {
	cases := []struct {
		rounds []int
		window int
		want   int
	}{
		{[]int{3, 3, 3, 3}, 1, 12}, // sequential
		{[]int{3, 3, 3, 3}, 2, 6},  // two at a time
		{[]int{3, 3, 3, 3}, 4, 3},  // all at once
		{[]int{3, 3, 3, 3}, 8, 3},  // window larger than load
		{[]int{5, 1, 2}, 2, 5},     // staggered: 1 finishes, 2 slides in
		{[]int{2}, 3, 2},
	}
	for _, c := range cases {
		if got := MuxTicks(c.rounds, c.window); got != c.want {
			t.Errorf("MuxTicks(%v, %d) = %d, want %d", c.rounds, c.window, got, c.want)
		}
	}
}

func TestMuxPipelinesInstances(t *testing.T) {
	const n, window = 4, 2
	rounds := []int{3, 3, 3, 3, 3, 3}
	procs, insts, finished := buildMuxes(t, n, window, rounds)

	nw, err := NewNetwork(procs)
	if err != nil {
		t.Fatal(err)
	}
	ticks := MuxTicks(rounds, window)
	stats, err := nw.Run(ticks)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rounds != ticks {
		t.Fatalf("ran %d ticks, want %d", stats.Rounds, ticks)
	}

	for id := 0; id < n; id++ {
		if mux := procs[id].(*Mux); !mux.Done() || mux.Err() != nil {
			t.Fatalf("node %d: done=%v err=%v", id, mux.Done(), mux.Err())
		}
		if len(finished[id]) != len(rounds) {
			t.Fatalf("node %d finished %v", id, finished[id])
		}
		for k, inst := range finished[id] {
			if inst != k {
				t.Fatalf("node %d finish order %v, want identity", id, finished[id])
			}
		}
		for inst, ti := range insts[id] {
			if len(ti.rounds) != rounds[inst] {
				t.Fatalf("node %d instance %d ran rounds %v", id, inst, ti.rounds)
			}
			for r := 0; r < rounds[inst]; r++ {
				if ti.rounds[r] != r+1 {
					t.Fatalf("node %d instance %d local rounds %v", id, inst, ti.rounds)
				}
				// Every sender's broadcast for this instance and round must
				// arrive intact: n copies of [instance, round].
				want := bytes.Repeat([]byte{byte(inst), byte(r + 1)}, n)
				if !bytes.Equal(ti.seen[r], want) {
					t.Fatalf("node %d instance %d round %d inbox %v, want %v", id, inst, r+1, ti.seen[r], want)
				}
			}
		}
	}
}

// TestMuxStaggeredWindow checks the greedy schedule with unequal round
// counts: short instances retire and later ones slide into the window.
func TestMuxStaggeredWindow(t *testing.T) {
	const n, window = 3, 2
	rounds := []int{4, 1, 2, 1}
	procs, insts, _ := buildMuxes(t, n, window, rounds)
	nw, err := NewNetwork(procs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nw.Run(MuxTicks(rounds, window)); err != nil {
		t.Fatal(err)
	}
	for id := 0; id < n; id++ {
		for inst, ti := range insts[id] {
			if len(ti.rounds) != rounds[inst] {
				t.Fatalf("node %d instance %d delivered %d rounds, want %d", id, inst, len(ti.rounds), rounds[inst])
			}
		}
	}
}

func TestMuxParallelMatchesSequential(t *testing.T) {
	rounds := []int{2, 2, 2, 2}
	run := func(parallel bool) [][]*tagInstance {
		procs, insts, _ := buildMuxes(t, 3, 2, rounds)
		var opts []Option
		if parallel {
			opts = append(opts, Parallel())
		}
		nw, err := NewNetwork(procs, opts...)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := nw.Run(MuxTicks(rounds, 2)); err != nil {
			t.Fatal(err)
		}
		return insts
	}
	seq, par := run(false), run(true)
	for id := range seq {
		for inst := range seq[id] {
			for r := range seq[id][inst].seen {
				if !bytes.Equal(seq[id][inst].seen[r], par[id][inst].seen[r]) {
					t.Fatalf("node %d instance %d round %d: engines diverge", id, inst, r+1)
				}
			}
		}
	}
}

func TestMuxSectionCodec(t *testing.T) {
	var buf []byte
	buf = AppendMuxSection(buf, 7, 2, []byte{1, 2, 3})
	buf = AppendMuxSection(buf, 8, 1, nil)
	buf = AppendMuxSection(buf, 9, 4, []byte{})

	m := &Mux{cfg: MuxConfig{N: 2}, active: []*running{
		{inst: 7, round: 2}, {inst: 8, round: 1}, {inst: 9, round: 4},
	}}
	got := m.decodeSections(make([][]byte, len(m.active)), buf)
	if got == nil {
		t.Fatal("well-formed sections rejected")
	}
	if !bytes.Equal(got[0], []byte{1, 2, 3}) {
		t.Fatalf("section 0 = %v", got[0])
	}
	if got[1] != nil {
		t.Fatalf("nil payload not preserved: %v", got[1])
	}
	if got[2] == nil || len(got[2]) != 0 {
		t.Fatalf("empty payload not preserved: %v", got[2])
	}

	// Instance mismatch, round mismatch, truncation, trailing garbage: all
	// must read as silence.
	bad := [][]byte{
		AppendMuxSection(AppendMuxSection(nil, 6, 2, []byte{1}), 8, 1, nil), // wrong instance
		AppendMuxSection(AppendMuxSection(nil, 7, 3, []byte{1}), 8, 1, nil), // wrong round
		buf[:len(buf)-1],                       // truncated
		append(append([]byte{}, buf...), 0xff), // trailing byte
		{0xff},                                 // truncated uvarint
		AppendMuxSection(nil, 7, 2, []byte{1}), // too few sections
	}
	for i, p := range bad {
		if res := m.decodeSections(make([][]byte, len(m.active)), p); res != nil {
			t.Errorf("malformed payload %d accepted: %v", i, res)
		}
	}
	if m.decodeSections(make([][]byte, len(m.active)), nil) != nil {
		t.Error("nil payload must decode to silence")
	}
}

func TestMuxValidation(t *testing.T) {
	start := func(int) (Instance, error) { return &tagInstance{n: 2}, nil }
	roundsFor := func(int) int { return 1 }
	bad := []MuxConfig{
		{ID: 0, N: 2, Window: 0, Rounds: []int{1}, Start: start},
		{ID: 2, N: 2, Window: 1, Rounds: []int{1}, Start: start},
		{ID: 0, N: 2, Window: 1, Rounds: nil, Start: start},
		{ID: 0, N: 2, Window: 1, Rounds: []int{0}, Start: start},
		{ID: 0, N: 2, Window: 1, Rounds: []int{1}},
		{ID: 0, N: 2, Window: 1, Rounds: []int{1}, RoundsFor: roundsFor, Instances: 1, Start: start},
		{ID: 0, N: 2, Window: 1, RoundsFor: roundsFor, Start: start}, // missing Instances
	}
	for i, cfg := range bad {
		if _, err := NewMux(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
	if _, err := NewMux(MuxConfig{ID: 0, N: 2, Window: 1, RoundsFor: roundsFor, Instances: 3, Start: start}); err != nil {
		t.Errorf("lazy-rounds config rejected: %v", err)
	}
}

// TestMuxLazyRounds: RoundsFor resolves an instance's round count at the
// moment the instance enters the window — not before — and the resulting
// schedule is byte-identical to the equivalent static Rounds schedule.
func TestMuxLazyRounds(t *testing.T) {
	const n, window = 3, 2
	rounds := []int{4, 1, 2, 3}

	build := func(lazy bool, resolved *[][]int) []Processor {
		procs := make([]Processor, n)
		for id := 0; id < n; id++ {
			id := id
			cfg := MuxConfig{
				ID: id, N: n, Window: window,
				Start: func(inst int) (Instance, error) {
					return &tagInstance{inst: inst, n: n}, nil
				},
			}
			if lazy {
				cfg.Instances = len(rounds)
				cfg.RoundsFor = func(inst int) int {
					(*resolved)[id] = append((*resolved)[id], inst)
					return rounds[inst]
				}
			} else {
				cfg.Rounds = rounds
			}
			m, err := NewMux(cfg)
			if err != nil {
				t.Fatal(err)
			}
			procs[id] = m
		}
		return procs
	}

	resolved := make([][]int, n)
	lazyProcs := build(true, &resolved)

	// Nothing resolves before the first tick (lazy, not eager).
	for id := range resolved {
		if len(resolved[id]) != 0 {
			t.Fatalf("node %d resolved %v before any tick", id, resolved[id])
		}
	}
	nw, err := NewNetwork(lazyProcs)
	if err != nil {
		t.Fatal(err)
	}
	want := MuxTicks(rounds, window)
	stats, err := nw.Run(want)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rounds != want {
		t.Fatalf("lazy schedule ran %d ticks, want %d", stats.Rounds, want)
	}
	for id := 0; id < n; id++ {
		m := lazyProcs[id].(*Mux)
		if !m.Done() || m.Err() != nil {
			t.Fatalf("node %d: done=%v err=%v", id, m.Done(), m.Err())
		}
		// Instances resolve in schedule order, each exactly once.
		if len(resolved[id]) != len(rounds) {
			t.Fatalf("node %d resolved %v", id, resolved[id])
		}
		for k, inst := range resolved[id] {
			if inst != k {
				t.Fatalf("node %d resolution order %v, want identity", id, resolved[id])
			}
		}
		if m.TotalTicks() != 0 {
			t.Fatalf("lazy mux claims TotalTicks %d, want 0 (unknown)", m.TotalTicks())
		}
	}

	// With RoundsFor resolving lazily, instance 2's count could have
	// depended on instance 1's outcome: it resolves strictly after
	// instance 1 finished (rounds[1]=1, window 2 → instance 2 enters at
	// tick 2).
	// The wire behavior must match the static schedule exactly.
	staticProcs := build(false, nil)
	nw2, err := NewNetwork(staticProcs)
	if err != nil {
		t.Fatal(err)
	}
	stats2, err := nw2.Run(want)
	if err != nil {
		t.Fatal(err)
	}
	if stats2.Rounds != stats.Rounds || stats2.Bytes != stats.Bytes || stats2.Messages != stats.Messages {
		t.Fatalf("lazy and static schedules diverge: %+v vs %+v", stats, stats2)
	}
}

// TestMuxLazyRoundsInvalid: a RoundsFor returning < 1 fails the tick with
// a schedule error rather than wedging the window.
func TestMuxLazyRoundsInvalid(t *testing.T) {
	m, err := NewMux(MuxConfig{
		ID: 0, N: 2, Window: 1, Instances: 2,
		RoundsFor: func(inst int) int { return -inst }, // instance 0 → 0: invalid
		Start:     func(inst int) (Instance, error) { return &tagInstance{inst: inst, n: 2}, nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Outboxes(); err == nil {
		t.Fatal("invalid resolved round count not surfaced")
	}
	if m.Err() == nil {
		t.Fatal("Err() empty after invalid resolution")
	}
}

func TestMuxStartFailureSurfaces(t *testing.T) {
	m, err := NewMux(MuxConfig{
		ID: 0, N: 2, Window: 1, Rounds: []int{1},
		Start: func(inst int) (Instance, error) { return nil, fmt.Errorf("boom") },
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Outboxes(); err == nil {
		t.Fatal("factory failure not surfaced")
	}
	if m.Err() == nil {
		t.Fatal("Err() empty after factory failure")
	}
}

// TestMuxWorkersMatchSequential: the per-instance worker pool is purely an
// execution detail — the same schedule at Workers 0 and Workers 3, over
// the parallel network engine, must deliver byte-identical inboxes. Run
// with -race this also exercises concurrent PrepareRound/DeliverRound
// across the window's instances.
func TestMuxWorkersMatchSequential(t *testing.T) {
	const n, window = 4, 3
	rounds := []int{2, 3, 1, 4, 2, 3}
	run := func(workers int) [][]*tagInstance {
		procs := make([]Processor, n)
		insts := make([][]*tagInstance, n)
		for id := 0; id < n; id++ {
			id := id
			insts[id] = make([]*tagInstance, len(rounds))
			m, err := NewMux(MuxConfig{
				ID: id, N: n, Window: window, Rounds: rounds, Workers: workers,
				Start: func(inst int) (Instance, error) {
					ti := &tagInstance{inst: inst, n: n}
					insts[id][inst] = ti
					return ti, nil
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			procs[id] = m
		}
		nw, err := NewNetwork(procs, Parallel())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := nw.Run(MuxTicks(rounds, window)); err != nil {
			t.Fatal(err)
		}
		return insts
	}
	seq, par := run(0), run(3)
	for id := range seq {
		for inst := range seq[id] {
			if len(seq[id][inst].seen) != len(par[id][inst].seen) {
				t.Fatalf("node %d instance %d: %d vs %d rounds", id, inst, len(seq[id][inst].seen), len(par[id][inst].seen))
			}
			for r := range seq[id][inst].seen {
				if !bytes.Equal(seq[id][inst].seen[r], par[id][inst].seen[r]) {
					t.Fatalf("node %d instance %d round %d: worker pool diverges from sequential", id, inst, r+1)
				}
			}
		}
	}
}
