// Package sim provides the synchronous system model of the paper's
// Section 2: n processors on a fully reliable, complete network, computing
// in lockstep rounds, where every correct processor can identify the sender
// of each message it receives (ids are positions in the inbox).
//
// The engine has two execution modes that produce byte-identical runs: a
// deterministic sequential mode, and a concurrent mode with one goroutine
// per processor and a barrier between the send and receive halves of each
// round. The concurrent mode is the "goroutines simulate synchronous
// rounds" substrate; equality of the two modes is asserted by tests.
package sim

import (
	"fmt"
	"sync"
)

// Processor is one participant in the synchronous protocol. Implementations
// must not retain or mutate the inbox slices they are handed; payloads may
// be shared between receivers (the network is reliable, so one broadcast
// buffer serves all destinations).
type Processor interface {
	// ID returns the processor's identifier in [0, n).
	ID() int
	// PrepareRound returns the payloads the processor sends in the given
	// round (1-based): element j is the payload delivered to processor j,
	// nil meaning no message. A nil outbox means no messages at all.
	// A correct processor broadcasts, i.e. uses one payload for every
	// destination; only faulty processors send diverging payloads.
	PrepareRound(round int) [][]byte
	// DeliverRound hands the processor everything sent to it this round:
	// inbox[i] is the payload from processor i (nil if i sent nothing).
	DeliverRound(round int, inbox [][]byte)
}

// RoundStats aggregates message traffic for one round.
type RoundStats struct {
	Round       int // 1-based round number
	Messages    int // payloads delivered (self-delivery included)
	Bytes       int // sum of payload lengths
	MaxPayload  int // largest single payload, the paper's "message length"
	DistinctSrc int // processors that sent at least one payload
}

// Stats aggregates message traffic over a run. PerRound is populated only
// when the driver asked for it (WithPerRoundStats, or the transport's
// option of the same name): the aggregate counters are always-on and
// O(1), while a per-round trail grows with the schedule — unbounded
// memory on long logs.
type Stats struct {
	Rounds     int
	Messages   int
	Bytes      int
	MaxPayload int
	PerRound   []RoundStats
}

// Network executes processors in synchronous rounds.
type Network struct {
	procs       []Processor
	parallel    bool
	perRound    bool
	perRoundCap int
	hook        func(round int)
	stats       Stats
	prOldest    int // ring cursor into stats.PerRound when capped
}

// Option configures a Network.
type Option func(*Network)

// Parallel selects the goroutine-per-processor engine.
func Parallel() Option { return func(nw *Network) { nw.parallel = true } }

// WithPerRoundStats records a RoundStats entry per round in the run's
// Stats. Off by default: aggregate totals are always maintained, but the
// per-round trail is one entry per tick forever — unbounded memory when
// the schedule is long (a replicated log's whole lifetime). Cap the
// trail with WithPerRoundStatsCap.
func WithPerRoundStats() Option { return func(nw *Network) { nw.perRound = true } }

// WithPerRoundStatsCap records per-round stats like WithPerRoundStats
// but retains only the last k rounds (a keep-last-K ring), so opt-in
// per-round visibility no longer implies unbounded growth on long runs.
// k ≤ 0 means unbounded. Implies per-round recording.
func WithPerRoundStatsCap(k int) Option {
	return func(nw *Network) {
		nw.perRound = true
		nw.perRoundCap = k
	}
}

// WithRoundHook installs a callback invoked after each round completes
// (all deliveries done). Used by traces and lemma-level tests to snapshot
// protocol state at round boundaries.
func WithRoundHook(h func(round int)) Option {
	return func(nw *Network) { nw.hook = h }
}

// NewNetwork builds a network over the given processors, whose IDs must be
// exactly 0..len(procs)-1 in order.
func NewNetwork(procs []Processor, opts ...Option) (*Network, error) {
	if len(procs) < 2 {
		return nil, fmt.Errorf("sim: need at least 2 processors, have %d", len(procs))
	}
	for i, p := range procs {
		if p == nil {
			return nil, fmt.Errorf("sim: processor %d is nil", i)
		}
		if p.ID() != i {
			return nil, fmt.Errorf("sim: processor at index %d reports id %d", i, p.ID())
		}
	}
	nw := &Network{procs: procs}
	for _, opt := range opts {
		opt(nw)
	}
	return nw, nil
}

// Run executes rounds 1..rounds and returns traffic statistics.
func (nw *Network) Run(rounds int) (*Stats, error) {
	if rounds < 1 {
		return nil, fmt.Errorf("sim: round count %d must be positive", rounds)
	}
	return nw.run(rounds, nil)
}

// RunUntil executes rounds until stop reports true, checked after every
// completed round (all deliveries done). maxRounds bounds the run as a
// safety net against a stop predicate that never fires; maxRounds ≤ 0
// means unbounded. Drive loops whose length is not known up front — a
// mux whose round counts resolve lazily — use this instead of Run.
func (nw *Network) RunUntil(maxRounds int, stop func(round int) bool) (*Stats, error) {
	if stop == nil {
		return nil, fmt.Errorf("sim: RunUntil needs a stop predicate")
	}
	return nw.run(maxRounds, stop)
}

func (nw *Network) run(maxRounds int, stop func(round int) bool) (*Stats, error) {
	n := len(nw.procs)
	outboxes := make([][][]byte, n)
	inboxes := make([][][]byte, n)
	for i := range inboxes {
		inboxes[i] = make([][]byte, n)
	}

	nw.stats = Stats{}
	nw.prOldest = 0
	if nw.perRound && maxRounds > 0 {
		capHint := maxRounds
		if nw.perRoundCap > 0 && nw.perRoundCap < capHint {
			capHint = nw.perRoundCap
		}
		nw.stats.PerRound = make([]RoundStats, 0, capHint)
	}
	for r := 1; maxRounds <= 0 || r <= maxRounds; r++ {
		// Send half: collect every processor's outbox for this round.
		if nw.parallel {
			var wg sync.WaitGroup
			for i, p := range nw.procs {
				wg.Add(1)
				go func(i int, p Processor) {
					defer wg.Done()
					outboxes[i] = p.PrepareRound(r)
				}(i, p)
			}
			wg.Wait()
		} else {
			for i, p := range nw.procs {
				outboxes[i] = p.PrepareRound(r)
			}
		}

		rs := RoundStats{Round: r}
		for i, out := range outboxes {
			if out == nil {
				for j := range nw.procs {
					inboxes[j][i] = nil
				}
				continue
			}
			if len(out) != n {
				return nil, fmt.Errorf("sim: round %d: processor %d outbox has %d entries, want %d", r, i, len(out), n)
			}
			sent := false
			for j, payload := range out {
				inboxes[j][i] = payload
				if payload != nil {
					sent = true
					rs.Messages++
					rs.Bytes += len(payload)
					if len(payload) > rs.MaxPayload {
						rs.MaxPayload = len(payload)
					}
				}
			}
			if sent {
				rs.DistinctSrc++
			}
		}

		// Receive half: deliver the complete round to every processor.
		if nw.parallel {
			var wg sync.WaitGroup
			for i, p := range nw.procs {
				wg.Add(1)
				go func(i int, p Processor) {
					defer wg.Done()
					p.DeliverRound(r, inboxes[i])
				}(i, p)
			}
			wg.Wait()
		} else {
			for i, p := range nw.procs {
				p.DeliverRound(r, inboxes[i])
			}
		}

		nw.stats.Rounds = r
		nw.stats.Messages += rs.Messages
		nw.stats.Bytes += rs.Bytes
		if rs.MaxPayload > nw.stats.MaxPayload {
			nw.stats.MaxPayload = rs.MaxPayload
		}
		if nw.perRound {
			if nw.perRoundCap > 0 && len(nw.stats.PerRound) >= nw.perRoundCap {
				nw.stats.PerRound[nw.prOldest] = rs
				nw.prOldest = (nw.prOldest + 1) % nw.perRoundCap
			} else {
				nw.stats.PerRound = append(nw.stats.PerRound, rs)
			}
		}

		if nw.hook != nil {
			nw.hook(r)
		}
		if stop != nil && stop(r) {
			break
		}
	}
	out := nw.stats
	out.PerRound = make([]RoundStats, 0, len(nw.stats.PerRound))
	out.PerRound = append(out.PerRound, nw.stats.PerRound[nw.prOldest:]...)
	out.PerRound = append(out.PerRound, nw.stats.PerRound[:nw.prOldest]...)
	return &out, nil
}

// Broadcast builds an outbox that sends the same payload to all n
// destinations (the behavior of a correct processor).
func Broadcast(n int, payload []byte) [][]byte {
	if payload == nil {
		return nil
	}
	out := make([][]byte, n)
	for j := range out {
		out[j] = payload
	}
	return out
}
