package sim

import (
	"fmt"
	"testing"
)

// benchInstance broadcasts a fixed prebuilt outbox every round and reads
// its inbox without allocating — so the benchmarks below measure the
// mux/network machinery, not the instances.
type benchInstance struct {
	out  [][]byte
	sink int
}

func (bi *benchInstance) PrepareRound(round int) [][]byte { return bi.out }

func (bi *benchInstance) DeliverRound(round int, inbox [][]byte) {
	for _, p := range inbox {
		bi.sink += len(p)
	}
}

// buildBenchMuxes builds n muxes running `window` concurrent instances of
// `rounds` local rounds each, every instance broadcasting a payload of
// the given size.
func buildBenchMuxes(n, window, instances, rounds, payload, workers int) ([]Processor, error) {
	roundCounts := make([]int, instances)
	for i := range roundCounts {
		roundCounts[i] = rounds
	}
	procs := make([]Processor, n)
	for id := 0; id < n; id++ {
		out := Broadcast(n, make([]byte, payload))
		m, err := NewMux(MuxConfig{
			ID: id, N: n, Window: window, Rounds: roundCounts, Workers: workers,
			Start: func(inst int) (Instance, error) {
				return &benchInstance{out: out}, nil
			},
		})
		if err != nil {
			return nil, err
		}
		procs[id] = m
	}
	return procs, nil
}

// BenchmarkMuxTick measures one global tick of the full in-process hot
// path — every node's PrepareRound (window × AppendMuxSection into the
// reused backing array) plus every node's DeliverRound (decodeSections
// into reused scratch, per-instance routing) — at a steady-state window.
// allocs/op is allocs per tick per cluster; before the scratch-buffer
// reuse it grew with O(N·window) fresh buffers per tick.
func BenchmarkMuxTick(b *testing.B) {
	for _, bc := range []struct{ n, window, payload int }{
		{4, 4, 64},
		{7, 8, 64},
		{7, 8, 1024},
	} {
		b.Run(fmt.Sprintf("n=%d/window=%d/payload=%d", bc.n, bc.window, bc.payload), func(b *testing.B) {
			// One instance per window lane, each living b.N rounds, so the
			// active set is stable and every iteration is one tick.
			procs, err := buildBenchMuxes(bc.n, bc.window, bc.window, b.N, bc.payload, 0)
			if err != nil {
				b.Fatal(err)
			}
			nw, err := NewNetwork(procs)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			if _, err := nw.Run(b.N); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkMuxTickWorkers is BenchmarkMuxTick with the per-instance
// worker pool engaged — the wall-clock comparison for wide windows.
func BenchmarkMuxTickWorkers(b *testing.B) {
	procs, err := buildBenchMuxes(7, 8, 8, b.N, 1024, 4)
	if err != nil {
		b.Fatal(err)
	}
	nw, err := NewNetwork(procs)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	if _, err := nw.Run(b.N); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkAppendMuxSection measures the section encoder against a
// reused backing array — steady state must be zero-alloc.
func BenchmarkAppendMuxSection(b *testing.B) {
	payload := make([]byte, 256)
	buf := AppendMuxSection(nil, 12, 3, payload) // pre-grow
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = AppendMuxSection(buf[:0], 12, 3, payload)
	}
	_ = buf
}

// BenchmarkMuxDecodeSections measures the section decoder against reused
// scratch — steady state must be zero-alloc (sections alias the payload).
func BenchmarkMuxDecodeSections(b *testing.B) {
	m := &Mux{cfg: MuxConfig{N: 3}, active: []*running{
		{inst: 0, round: 2}, {inst: 1, round: 1}, {inst: 2, round: 4},
	}}
	var payload []byte
	payload = AppendMuxSection(payload, 0, 2, make([]byte, 128))
	payload = AppendMuxSection(payload, 1, 1, nil)
	payload = AppendMuxSection(payload, 2, 4, make([]byte, 256))
	scratch := make([][]byte, len(m.active))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if m.decodeSections(scratch, payload) == nil {
			b.Fatal("well-formed payload rejected")
		}
	}
}
