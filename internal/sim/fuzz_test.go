package sim

import (
	"bytes"
	"testing"
)

// gearMixedMux builds a mux decode target whose active window mixes gears:
// instances at very different local rounds and round counts, the shape a
// gear-scheduled log (1-round no-op slots interleaved with 7-round hybrid
// slots) puts on the wire.
func gearMixedMux() *Mux {
	return &Mux{cfg: MuxConfig{N: 3}, active: []*running{
		{inst: 4, round: 5, rounds: 7},
		{inst: 6, round: 1, rounds: 1},
		{inst: 7, round: 2, rounds: 4},
	}}
}

// FuzzMuxDecodeSections hammers the section decoder with arbitrary
// payloads against a gear-mixed active set: it must never panic, must
// reject anything that is not exactly one well-formed section per active
// instance (in order, matching ids and rounds), and must round-trip what
// it accepts.
func FuzzMuxDecodeSections(f *testing.F) {
	// Seed 1: the canonical well-formed gear-mixed stream.
	good := AppendMuxSection(nil, 4, 5, []byte{1, 2, 3})
	good = AppendMuxSection(good, 6, 1, nil)
	good = AppendMuxSection(good, 7, 2, []byte{})
	f.Add(good)
	// Seed 2: sections in the wrong order (a divergent schedule's wire
	// shape: the sender ran the no-op slot first).
	swapped := AppendMuxSection(nil, 6, 1, nil)
	swapped = AppendMuxSection(swapped, 4, 5, []byte{1, 2, 3})
	swapped = AppendMuxSection(swapped, 7, 2, []byte{})
	f.Add(swapped)
	// Seed 3: right instances, wrong local rounds (the sender's gear gave
	// the slot a different round count).
	lagged := AppendMuxSection(nil, 4, 6, []byte{1, 2, 3})
	lagged = AppendMuxSection(lagged, 6, 2, nil)
	lagged = AppendMuxSection(lagged, 7, 3, []byte{})
	f.Add(lagged)
	// Seed 4: truncated mid-payload; Seed 5: trailing garbage.
	f.Add(good[:len(good)-2])
	f.Add(append(append([]byte{}, good...), 0x01))
	// Seed 6: huge declared length (len+1 overflow probe).
	f.Add([]byte{4, 5, 0xff, 0xff, 0xff, 0xff, 0x0f})

	f.Fuzz(func(t *testing.T, payload []byte) {
		m := gearMixedMux()
		out := m.decodeSections(make([][]byte, len(m.active)), payload)
		if out == nil {
			return // rejected as silence: always legal
		}
		if len(out) != len(m.active) {
			t.Fatalf("accepted payload decoded to %d sections, want %d", len(out), len(m.active))
		}
		// Round-trip: re-encoding the decoded sections against the same
		// active set must reproduce an accepted, equal decoding.
		var re []byte
		for k, ru := range m.active {
			re = AppendMuxSection(re, ru.inst, ru.round, out[k])
		}
		again := m.decodeSections(make([][]byte, len(m.active)), re)
		if again == nil {
			t.Fatalf("re-encoded accepted payload rejected: %x", re)
		}
		for k := range out {
			if !bytes.Equal(out[k], again[k]) {
				t.Fatalf("section %d round-trip mismatch: %x vs %x", k, out[k], again[k])
			}
		}
	})
}
