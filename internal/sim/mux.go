// Instance-multiplexed execution: one fabric drives many concurrent
// protocol instances. The Mux schedules instances with a pipelining
// window — at every global tick the first `window` unfinished instances
// each advance one local round — exposing the tick as Outboxes (one
// MuxFrame per active instance, tagged with instance id and local round)
// and Deliver (the per-instance inbox matrix). The drive loop lives in
// internal/fabric.Run, written once for every substrate; over TCP each
// frame's (instance, round) tag rides in the wire header (one frame per
// instance per tick). The schedule is a pure function of the instance
// round counts and the window, so every correct node runs instances in
// lockstep without coordination.
package sim

import (
	"fmt"
	"sync"
	"sync/atomic"

	"shiftgears/internal/obs"
)

// Instance is one multiplexed sub-protocol: a processor-like participant
// that runs for a fixed number of local rounds. Every sim.Processor is an
// Instance.
type Instance interface {
	// PrepareRound returns the instance's outbox for its local round
	// (1-based): nil, or one payload per destination as in Processor.
	PrepareRound(round int) [][]byte
	// DeliverRound hands the instance its local round's inbox.
	DeliverRound(round int, inbox [][]byte)
}

// MuxConfig describes a processor's multiplexed schedule.
type MuxConfig struct {
	// ID is this processor's id; N the processor count.
	ID, N int
	// Window is the maximum number of concurrently running instances
	// (1 = strictly sequential execution).
	Window int
	// Rounds holds every instance's local round count, indexed by instance
	// id; its length is the total instance count. All processors must use
	// identical Rounds and Window or the lockstep schedules diverge.
	// Exactly one of Rounds and RoundsFor must be set.
	Rounds []int
	// RoundsFor resolves an instance's local round count lazily, when the
	// instance enters the window — the gear-shifting hook: the count may
	// depend on state established by already-finished instances (e.g. a
	// replicated log's committed prefix). It must return ≥ 1 and must be
	// the same pure function on every node, or the lockstep schedules
	// diverge: over TCP the mesh fails fast with the frame instance/round
	// mismatch error; in sim mode the drive loop stops with a divergence
	// error when one node's schedule finishes before another's.
	RoundsFor func(instance int) int
	// Instances is the total instance count when RoundsFor is set; ignored
	// with Rounds (len(Rounds) is the count).
	Instances int
	// Start lazily constructs an instance when it enters the window. A
	// late construction point lets instances capture state (e.g. a command
	// queue) at their scheduled start rather than at setup time.
	Start func(instance int) (Instance, error)
	// Finish, if non-nil, is invoked when an instance completes its last
	// round (before any later instance starts).
	Finish func(instance int)
	// Tracer, if non-nil, receives the mux's schedule events: SlotOpen
	// when an instance enters the window (its resolved round count in
	// hand) and WindowAdvance when it retires. Nil means tracing off —
	// the schedule runs its untraced instructions.
	Tracer obs.Tracer
	// Workers bounds the worker pool that fans the per-instance
	// PrepareRound/DeliverRound calls of a tick across goroutines (0 or 1
	// = sequential). Instances are independent — the schedule, ordering
	// callbacks (Start, Finish), and the wire format stay strictly
	// sequential — so parallelism here changes wall-clock only, never
	// bytes. It pays only when the per-instance round work is heavy
	// enough to amortize the per-tick goroutine coordination (wide
	// windows of expensive protocol computation); for light instances the
	// sequential loop is faster — measure with cmd/bench before turning
	// it on.
	Workers int
}

// running is one in-flight instance.
type running struct {
	inst   int
	round  int // current local round, 1-based
	rounds int // total local rounds (static or lazily resolved)
	proc   Instance
	out    [][]byte // outbox for the current tick (nil = silent)
}

// MuxFrame is one active instance's contribution to a tick.
type MuxFrame struct {
	Instance int
	Round    int // local round, 1-based
	// Outbox is nil (silent) or has one payload per destination.
	Outbox [][]byte
}

// Mux multiplexes instances over a single node's synchronous stream,
// exposing each tick as Outboxes (frames out) and Deliver (inboxes in)
// for the fabric drive loop.
type Mux struct {
	cfg       MuxConfig
	instances int // total instance count
	next      int // next instance id not yet started
	active    []*running
	ticks     int
	prepared  bool
	err       error

	// Per-tick scratch, owned by the Mux and reused across ticks so the
	// hot path stays allocation-free at steady state. Receivers must not
	// retain payloads past their DeliverRound (the sim.Processor
	// contract), which is exactly what makes the reuse sound. The two
	// worker callbacks are built once here: closing over the Mux inside
	// the tick would put one heap allocation per tick on the hot path.
	frames    []MuxFrame // Outboxes result
	inboxes   [][][]byte // Deliver scratch, one inbox per active slot
	free      []*running // retired running headers, reused by fill
	prepareFn func(k int, ru *running)
	deliverFn func(k int, ru *running)
}

// NewMux validates the configuration and builds the multiplexer.
func NewMux(cfg MuxConfig) (*Mux, error) {
	if cfg.ID < 0 || cfg.ID >= cfg.N || cfg.N < 2 {
		return nil, fmt.Errorf("sim: mux id/n out of range: %d/%d", cfg.ID, cfg.N)
	}
	if cfg.Window < 1 {
		return nil, fmt.Errorf("sim: mux window %d must be ≥ 1", cfg.Window)
	}
	instances := len(cfg.Rounds)
	if cfg.RoundsFor != nil {
		if cfg.Rounds != nil {
			return nil, fmt.Errorf("sim: mux takes Rounds or RoundsFor, not both")
		}
		instances = cfg.Instances
	}
	if instances < 1 {
		return nil, fmt.Errorf("sim: mux needs at least one instance")
	}
	for inst, r := range cfg.Rounds {
		if r < 1 {
			return nil, fmt.Errorf("sim: instance %d has round count %d, want ≥ 1", inst, r)
		}
	}
	if cfg.Start == nil {
		return nil, fmt.Errorf("sim: mux needs a Start factory")
	}
	if cfg.Workers < 0 {
		return nil, fmt.Errorf("sim: mux worker count %d must be ≥ 0", cfg.Workers)
	}
	m := &Mux{cfg: cfg, instances: instances}
	m.prepareFn = func(k int, ru *running) { ru.out = ru.proc.PrepareRound(ru.round) }
	m.deliverFn = func(k int, ru *running) { ru.proc.DeliverRound(ru.round, m.inboxes[k]) }
	return m, nil
}

// forEachActive applies fn to every active instance: sequentially, or —
// with Workers > 1 — fanned across a bounded pool of goroutines pulling
// slots from a shared counter. fn must touch only its own slot's state.
func (m *Mux) forEachActive(fn func(k int, ru *running)) {
	workers := m.cfg.Workers
	if workers > len(m.active) {
		workers = len(m.active)
	}
	if workers <= 1 {
		for k, ru := range m.active {
			fn(k, ru)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				k := int(next.Add(1)) - 1
				if k >= len(m.active) {
					return
				}
				fn(k, m.active[k])
			}
		}()
	}
	wg.Wait()
}

// MuxTicks returns the number of global ticks the greedy window schedule
// needs: at every tick the first `window` unfinished instances advance one
// round. With S equal-length instances of R rounds and window W this is
// R·⌈S/W⌉ versus the sequential S·R.
func MuxTicks(rounds []int, window int) int {
	if window < 1 {
		return 0
	}
	var active []int
	next, ticks := 0, 0
	for next < len(rounds) || len(active) > 0 {
		for len(active) < window && next < len(rounds) {
			active = append(active, rounds[next])
			next++
		}
		ticks++
		keep := active[:0]
		for _, left := range active {
			if left > 1 {
				keep = append(keep, left-1)
			}
		}
		active = keep
	}
	return ticks
}

// ID returns the node id the mux schedules for.
func (m *Mux) ID() int { return m.cfg.ID }

// Ticks returns the number of completed global ticks.
func (m *Mux) Ticks() int { return m.ticks }

// TotalTicks returns the tick count the full schedule needs, or 0 when
// round counts resolve lazily (the schedule is not known up front; drive
// the mux until Done instead).
func (m *Mux) TotalTicks() int {
	if m.cfg.RoundsFor != nil {
		return 0
	}
	return MuxTicks(m.cfg.Rounds, m.cfg.Window)
}

// Done reports whether every instance has completed.
func (m *Mux) Done() bool { return m.next == m.instances && len(m.active) == 0 }

// Err returns the first schedule or instance-construction error.
func (m *Mux) Err() error { return m.err }

// fill starts instances until the window is full or none remain. With
// RoundsFor, an instance's round count is resolved here — at the moment
// the instance enters the window, before its factory runs.
func (m *Mux) fill() error {
	for len(m.active) < m.cfg.Window && m.next < m.instances {
		var rounds int
		if m.cfg.RoundsFor != nil {
			rounds = m.cfg.RoundsFor(m.next)
			if rounds < 1 {
				return fmt.Errorf("sim: instance %d resolved round count %d, want ≥ 1", m.next, rounds)
			}
		} else {
			rounds = m.cfg.Rounds[m.next]
		}
		proc, err := m.cfg.Start(m.next)
		if err != nil {
			return fmt.Errorf("sim: start instance %d: %w", m.next, err)
		}
		if m.cfg.Tracer != nil {
			ev := obs.At(obs.SlotOpen, m.ticks+1)
			ev.Node, ev.Slot, ev.Round = m.cfg.ID, m.next, rounds
			m.cfg.Tracer.Emit(ev)
		}
		ru := &running{}
		if n := len(m.free); n > 0 {
			ru = m.free[n-1]
			m.free = m.free[:n-1]
		}
		*ru = running{inst: m.next, round: 1, rounds: rounds, proc: proc}
		m.active = append(m.active, ru)
		m.next++
	}
	return nil
}

// Outboxes begins a tick: it fills the window (lazily constructing
// instances) and prepares every active instance's outbox. Frames are in
// increasing instance order — the canonical wire order. The returned
// slice is scratch owned by the Mux, valid until the next Outboxes call
// (drivers finish a tick — including any concurrent sends — before
// beginning the next, so the reuse is invisible to them).
func (m *Mux) Outboxes() ([]MuxFrame, error) {
	if m.err != nil {
		return nil, m.err
	}
	if m.prepared {
		return nil, m.fail(fmt.Errorf("sim: Outboxes called twice in tick %d", m.ticks+1))
	}
	if err := m.fill(); err != nil {
		return nil, m.fail(err)
	}
	if len(m.active) == 0 {
		return nil, m.fail(fmt.Errorf("sim: mux is done after %d ticks", m.ticks))
	}
	m.forEachActive(m.prepareFn)
	if cap(m.frames) < len(m.active) {
		m.frames = make([]MuxFrame, len(m.active))
	}
	frames := m.frames[:len(m.active)]
	for k, ru := range m.active {
		if ru.out != nil && len(ru.out) != m.cfg.N {
			return nil, m.fail(fmt.Errorf("sim: instance %d round %d: outbox has %d entries, want %d", ru.inst, ru.round, len(ru.out), m.cfg.N))
		}
		frames[k] = MuxFrame{Instance: ru.inst, Round: ru.round, Outbox: ru.out}
	}
	m.prepared = true
	return frames, nil
}

// Deliver completes a tick: in[sender][k] is the payload sender addressed
// to the k-th active instance (in Outboxes order); in[sender] may be nil
// when the sender was silent everywhere. It routes every instance's inbox,
// advances local rounds, and retires finished instances.
func (m *Mux) Deliver(in [][][]byte) error {
	if m.err != nil {
		return m.err
	}
	if !m.prepared {
		return m.fail(fmt.Errorf("sim: Deliver without Outboxes in tick %d", m.ticks+1))
	}
	if len(in) != m.cfg.N {
		return m.fail(fmt.Errorf("sim: Deliver got %d senders, want %d", len(in), m.cfg.N))
	}
	for i, payloads := range in {
		if payloads != nil && len(payloads) != len(m.active) {
			return m.fail(fmt.Errorf("sim: sender %d delivered %d instance payloads, want %d", i, len(payloads), len(m.active)))
		}
	}
	if len(m.inboxes) < len(m.active) {
		grown := make([][][]byte, len(m.active))
		copy(grown, m.inboxes)
		m.inboxes = grown
	}
	for k := range m.active {
		if len(m.inboxes[k]) != m.cfg.N {
			m.inboxes[k] = make([][]byte, m.cfg.N)
		}
		inbox := m.inboxes[k]
		for i, payloads := range in {
			if payloads != nil {
				inbox[i] = payloads[k]
			} else {
				inbox[i] = nil
			}
		}
	}
	m.forEachActive(m.deliverFn)

	// Advance: bump local rounds, retire finished instances in order.
	keep := m.active[:0]
	for _, ru := range m.active {
		ru.round++
		ru.out = nil
		if ru.round > ru.rounds {
			if m.cfg.Finish != nil {
				m.cfg.Finish(ru.inst)
			}
			if m.cfg.Tracer != nil {
				ev := obs.At(obs.WindowAdvance, m.ticks+1)
				ev.Node, ev.Slot, ev.Round = m.cfg.ID, ru.inst, ru.rounds
				m.cfg.Tracer.Emit(ev)
			}
			ru.proc = nil // release the instance; the header is recycled
			m.free = append(m.free, ru)
			continue
		}
		keep = append(keep, ru)
	}
	m.active = keep
	m.ticks++
	m.prepared = false
	return nil
}

func (m *Mux) fail(err error) error {
	if m.err == nil {
		m.err = err
	}
	return err
}
