package sim

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"
)

// echoProc broadcasts its id as a 1-byte payload every round and records
// everything it receives.
type echoProc struct {
	id       int
	n        int
	mu       sync.Mutex
	received [][]int // per round: sender ids whose payloads arrived
	payloads [][]byte
}

func (p *echoProc) ID() int { return p.id }

func (p *echoProc) PrepareRound(round int) [][]byte {
	return Broadcast(p.n, []byte{byte(p.id), byte(round)})
}

func (p *echoProc) DeliverRound(round int, inbox [][]byte) {
	var senders []int
	var payloads []byte
	for i, payload := range inbox {
		if payload != nil {
			senders = append(senders, i)
			payloads = append(payloads, payload...)
		}
	}
	p.mu.Lock()
	p.received = append(p.received, senders)
	p.payloads = append(p.payloads, payloads)
	p.mu.Unlock()
}

func TestNetworkValidation(t *testing.T) {
	if _, err := NewNetwork(nil); err == nil {
		t.Error("empty processor list accepted")
	}
	if _, err := NewNetwork([]Processor{&echoProc{id: 0, n: 2}, nil}); err == nil {
		t.Error("nil processor accepted")
	}
	if _, err := NewNetwork([]Processor{&echoProc{id: 1, n: 2}, &echoProc{id: 0, n: 2}}); err == nil {
		t.Error("out-of-order ids accepted")
	}
	procs := []Processor{&echoProc{id: 0, n: 2}, &echoProc{id: 1, n: 2}}
	nw, err := NewNetwork(procs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nw.Run(0); err == nil {
		t.Error("zero rounds accepted")
	}
}

func TestNetworkDeliversAllToAll(t *testing.T) {
	n := 5
	procs := make([]Processor, n)
	raw := make([]*echoProc, n)
	for i := range procs {
		raw[i] = &echoProc{id: i, n: n}
		procs[i] = raw[i]
	}
	nw, err := NewNetwork(procs, WithPerRoundStats())
	if err != nil {
		t.Fatal(err)
	}
	stats, err := nw.Run(3)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range raw {
		if len(p.received) != 3 {
			t.Fatalf("proc %d saw %d rounds", p.id, len(p.received))
		}
		for r, senders := range p.received {
			if len(senders) != n {
				t.Fatalf("proc %d round %d: %d senders (self-delivery must be included)", p.id, r+1, len(senders))
			}
		}
	}
	if stats.Rounds != 3 || stats.Messages != 3*n*n || stats.Bytes != 3*n*n*2 || stats.MaxPayload != 2 {
		t.Fatalf("stats = %+v", stats)
	}
	if len(stats.PerRound) != 3 || stats.PerRound[1].Round != 2 || stats.PerRound[0].DistinctSrc != n {
		t.Fatalf("per-round stats = %+v", stats.PerRound)
	}
}

// silentProc sends nothing.
type silentProc struct{ id int }

func (p *silentProc) ID() int                    { return p.id }
func (p *silentProc) PrepareRound(int) [][]byte  { return nil }
func (p *silentProc) DeliverRound(int, [][]byte) {}

func TestNetworkNilOutboxes(t *testing.T) {
	procs := []Processor{&silentProc{0}, &silentProc{1}, &silentProc{2}}
	nw, err := NewNetwork(procs)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := nw.Run(2)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Messages != 0 || stats.Bytes != 0 || stats.MaxPayload != 0 {
		t.Fatalf("stats = %+v, want all zero", stats)
	}
}

// badProc returns a malformed outbox.
type badProc struct{ id int }

func (p *badProc) ID() int { return p.id }
func (p *badProc) PrepareRound(int) [][]byte {
	return [][]byte{{1}} // wrong length: n is 2
}
func (p *badProc) DeliverRound(int, [][]byte) {}

func TestNetworkRejectsMalformedOutbox(t *testing.T) {
	nw, err := NewNetwork([]Processor{&badProc{0}, &badProc{1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nw.Run(1); err == nil {
		t.Fatal("malformed outbox not rejected")
	}
}

func TestRoundHook(t *testing.T) {
	var rounds []int
	procs := []Processor{&silentProc{0}, &silentProc{1}}
	nw, err := NewNetwork(procs, WithRoundHook(func(r int) { rounds = append(rounds, r) }))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nw.Run(4); err != nil {
		t.Fatal(err)
	}
	if len(rounds) != 4 || rounds[0] != 1 || rounds[3] != 4 {
		t.Fatalf("hook rounds = %v", rounds)
	}
}

// perDestProc sends a distinct payload to each destination.
type perDestProc struct {
	id, n int
	got   []byte
}

func (p *perDestProc) ID() int { return p.id }
func (p *perDestProc) PrepareRound(round int) [][]byte {
	out := make([][]byte, p.n)
	for j := range out {
		out[j] = []byte{byte(p.id*10 + j)}
	}
	return out
}
func (p *perDestProc) DeliverRound(round int, inbox [][]byte) {
	p.got = nil
	for _, payload := range inbox {
		p.got = append(p.got, payload...)
	}
}

func TestPerDestinationDelivery(t *testing.T) {
	n := 3
	raw := make([]*perDestProc, n)
	procs := make([]Processor, n)
	for i := range procs {
		raw[i] = &perDestProc{id: i, n: n}
		procs[i] = raw[i]
	}
	nw, err := NewNetwork(procs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nw.Run(1); err != nil {
		t.Fatal(err)
	}
	for j, p := range raw {
		want := []byte{byte(0*10 + j), byte(1*10 + j), byte(2*10 + j)}
		if fmt.Sprint(p.got) != fmt.Sprint(want) {
			t.Fatalf("proc %d got %v, want %v", j, p.got, want)
		}
	}
}

func TestBroadcastHelper(t *testing.T) {
	if Broadcast(3, nil) != nil {
		t.Error("Broadcast(nil) should be nil")
	}
	out := Broadcast(3, []byte{7})
	if len(out) != 3 {
		t.Fatalf("len = %d", len(out))
	}
	for _, p := range out {
		if len(p) != 1 || p[0] != 7 {
			t.Fatalf("payload = %v", p)
		}
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	run := func(parallel bool, rounds, n int) []string {
		raw := make([]*echoProc, n)
		procs := make([]Processor, n)
		for i := range procs {
			raw[i] = &echoProc{id: i, n: n}
			procs[i] = raw[i]
		}
		var opts []Option
		if parallel {
			opts = append(opts, Parallel())
		}
		nw, err := NewNetwork(procs, opts...)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := nw.Run(rounds); err != nil {
			t.Fatal(err)
		}
		out := make([]string, n)
		for i, p := range raw {
			out[i] = fmt.Sprint(p.payloads)
		}
		return out
	}
	f := func(roundsRaw, nRaw uint8) bool {
		rounds := 1 + int(roundsRaw)%4
		n := 2 + int(nRaw)%5
		seqRes := run(false, rounds, n)
		parRes := run(true, rounds, n)
		for i := range seqRes {
			if seqRes[i] != parRes[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestStatsCopySafety(t *testing.T) {
	procs := []Processor{&echoProc{id: 0, n: 2}, &echoProc{id: 1, n: 2}}
	nw, err := NewNetwork(procs, WithPerRoundStats())
	if err != nil {
		t.Fatal(err)
	}
	s1, err := nw.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	s1.PerRound[0].Messages = -1
	s2, err := nw.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	if s2.PerRound[0].Messages == -1 {
		t.Fatal("stats alias internal state across runs")
	}
}

// TestRunUntil: the open-ended drive loop stops the round after its
// predicate fires, honors the maxRounds safety bound, and rejects a nil
// predicate.
func TestRunUntil(t *testing.T) {
	mk := func() (*Network, *echoProc) {
		a, b := &echoProc{id: 0, n: 2}, &echoProc{id: 1, n: 2}
		nw, err := NewNetwork([]Processor{a, b})
		if err != nil {
			t.Fatal(err)
		}
		return nw, a
	}

	nw, a := mk()
	stats, err := nw.RunUntil(0, func(round int) bool { return round == 5 })
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rounds != 5 || len(a.received) != 5 {
		t.Fatalf("ran %d rounds (proc saw %d), want 5", stats.Rounds, len(a.received))
	}

	// The predicate runs after deliveries: round 1's inbox is complete
	// even when stopping immediately.
	nw, a = mk()
	if _, err := nw.RunUntil(0, func(int) bool { return true }); err != nil {
		t.Fatal(err)
	}
	if len(a.received) != 1 || len(a.received[0]) != 2 {
		t.Fatalf("first round not fully delivered before stop: %v", a.received)
	}

	// maxRounds bounds a predicate that never fires.
	nw, _ = mk()
	stats, err = nw.RunUntil(3, func(int) bool { return false })
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rounds != 3 {
		t.Fatalf("unbounded predicate ran %d rounds, want maxRounds=3", stats.Rounds)
	}

	nw, _ = mk()
	if _, err := nw.RunUntil(0, nil); err == nil {
		t.Fatal("nil stop predicate accepted")
	}
}

// TestPerRoundStatsOptIn: the per-round trail is opt-in — it grows one
// entry per tick forever, unbounded memory on long logs — while the
// aggregate counters are always on.
func TestPerRoundStatsOptIn(t *testing.T) {
	run := func(opts ...Option) *Stats {
		procs := []Processor{&echoProc{id: 0, n: 2}, &echoProc{id: 1, n: 2}}
		nw, err := NewNetwork(procs, opts...)
		if err != nil {
			t.Fatal(err)
		}
		stats, err := nw.Run(3)
		if err != nil {
			t.Fatal(err)
		}
		return stats
	}
	off := run()
	if len(off.PerRound) != 0 {
		t.Fatalf("per-round stats recorded by default: %d entries", len(off.PerRound))
	}
	if off.Rounds != 3 || off.Messages == 0 || off.Bytes == 0 {
		t.Fatalf("aggregates missing without the per-round trail: %+v", off)
	}
	on := run(WithPerRoundStats())
	if len(on.PerRound) != 3 {
		t.Fatalf("opt-in per-round stats carried %d entries, want 3", len(on.PerRound))
	}
	if on.Messages != off.Messages || on.Bytes != off.Bytes {
		t.Fatalf("aggregates differ with the trail on: %+v vs %+v", on, off)
	}
}
