package sim

import (
	"testing"

	"shiftgears/internal/obs"
)

// TestPerRoundStatsCapKeepsLastK: the capped per-round trail retains
// exactly the last K rounds, oldest first, with identical entries to the
// uncapped run's tail — bounded memory without changing what is kept.
func TestPerRoundStatsCapKeepsLastK(t *testing.T) {
	const n, rounds, cap = 3, 12, 5
	build := func(opts ...Option) *Stats {
		procs := make([]Processor, n)
		for i := range procs {
			procs[i] = &echoProc{id: i, n: n}
		}
		nw, err := NewNetwork(procs, opts...)
		if err != nil {
			t.Fatal(err)
		}
		st, err := nw.Run(rounds)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}

	full := build(WithPerRoundStats())
	capped := build(WithPerRoundStatsCap(cap))

	if len(full.PerRound) != rounds {
		t.Fatalf("uncapped trail has %d entries, want %d", len(full.PerRound), rounds)
	}
	if len(capped.PerRound) != cap {
		t.Fatalf("capped trail has %d entries, want %d", len(capped.PerRound), cap)
	}
	for i, rs := range capped.PerRound {
		want := full.PerRound[rounds-cap+i]
		if rs != want {
			t.Fatalf("capped entry %d = %+v, want %+v (last-%d window, oldest first)", i, rs, want, cap)
		}
	}
	// Aggregates are unaffected by the cap.
	if capped.Messages != full.Messages || capped.Bytes != full.Bytes || capped.Rounds != full.Rounds {
		t.Fatalf("cap changed aggregates: %+v vs %+v", capped, full)
	}
}

// TestPerRoundStatsCapShorterRun: a run shorter than the cap keeps every
// round; cap ≤ 0 is unbounded.
func TestPerRoundStatsCapShorterRun(t *testing.T) {
	procs := make([]Processor, 3)
	for i := range procs {
		procs[i] = &echoProc{id: i, n: 3}
	}
	nw, err := NewNetwork(procs, WithPerRoundStatsCap(10))
	if err != nil {
		t.Fatal(err)
	}
	st, err := nw.Run(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.PerRound) != 4 {
		t.Fatalf("short run trail has %d entries, want 4", len(st.PerRound))
	}
	for i, rs := range st.PerRound {
		if rs.Round != i+1 {
			t.Fatalf("entry %d is round %d, want %d", i, rs.Round, i+1)
		}
	}
}

// TestMuxTracerEmitsSchedule: the mux-level SlotOpen/WindowAdvance trail
// covers every instance with its resolved round count.
func TestMuxTracerEmitsSchedule(t *testing.T) {
	const n, window = 2, 2
	rounds := []int{2, 1, 3}
	ring := obs.NewRing(0)
	mk := func(id int, tr obs.Tracer) *Mux {
		m, err := NewMux(MuxConfig{
			ID: id, N: n, Window: window, Rounds: rounds, Tracer: tr,
			Start: func(inst int) (Instance, error) {
				return &countInstance{n: n}, nil
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	a, b := mk(0, ring), mk(1, nil)
	for !a.Done() {
		outs := make([][]MuxFrame, 2)
		var err error
		if outs[0], err = a.Outboxes(); err != nil {
			t.Fatal(err)
		}
		if outs[1], err = b.Outboxes(); err != nil {
			t.Fatal(err)
		}
		for _, m := range []*Mux{a, b} {
			ins := make([][][]byte, n)
			for s := range ins {
				ins[s] = make([][]byte, len(outs[s]))
				for f := range outs[s] {
					if outs[s][f].Outbox != nil {
						ins[s][f] = outs[s][f].Outbox[m.ID()]
					}
				}
			}
			if err := m.Deliver(ins); err != nil {
				t.Fatal(err)
			}
		}
	}
	opened, retired := map[int]int{}, map[int]int{}
	for _, ev := range ring.Events() {
		switch ev.Type {
		case obs.SlotOpen:
			opened[ev.Slot] = ev.Round
		case obs.WindowAdvance:
			retired[ev.Slot] = ev.Round
		}
	}
	for inst, r := range rounds {
		if opened[inst] != r {
			t.Errorf("instance %d opened with %d rounds, want %d", inst, opened[inst], r)
		}
		if retired[inst] != r {
			t.Errorf("instance %d retired with %d rounds, want %d", inst, retired[inst], r)
		}
	}
}

// countInstance broadcasts one byte per round.
type countInstance struct{ n int }

func (c *countInstance) PrepareRound(round int) [][]byte {
	return Broadcast(c.n, []byte{byte(round)})
}
func (c *countInstance) DeliverRound(round int, inbox [][]byte) {}
