package baseline

import "math"

// CoanPoint is one point of Coan's rounds-versus-message-length trade-off
// (Coan 1986, 1987), the comparator of the paper's introduction: for a
// message-size budget of O(n^b) bits, Coan's families achieve roughly the
// same round counts as Algorithms A and B, but at the cost of local
// computation (and space) exponential in t, because each processor locally
// simulates the full exponential-information protocol between compression
// points.
//
// The paper compares trade-off curves, not implementations, so the
// comparator is reproduced analytically (DESIGN.md substitution 3): Rounds
// and MessageNodes mirror the shared trade-off, LocalOps carries the
// exponential term that Algorithms A and B eliminate.
type CoanPoint struct {
	N, T, B int
	// Rounds is the trade-off's round count at message budget O(n^b):
	// t + O(t/b) + O(1), instantiated as the same closed form Algorithm B
	// achieves (Theorem 3) — the paper's claim is that the families
	// "obtain the same rounds to message length trade-off".
	Rounds int
	// MessageNodes is the message budget in values, n^b.
	MessageNodes float64
	// LocalOps models the exponential local computation: the processor
	// reconstructs O(n^t) information-gathering state per block, times the
	// number of blocks.
	LocalOps float64
}

// CoanModel evaluates the analytic comparator at (n, t, b), b ≥ 2.
func CoanModel(n, t, b int) CoanPoint {
	rounds := t + 1
	if b < t {
		rounds = t + 1 + (t-1)/(b-1)
	}
	blocks := 1
	if b < t {
		blocks = (t-1)/(b-1) + 1
	}
	return CoanPoint{
		N: n, T: t, B: b,
		Rounds:       rounds,
		MessageNodes: math.Pow(float64(n), float64(b)),
		LocalOps:     float64(blocks) * math.Pow(float64(n), float64(t)),
	}
}
