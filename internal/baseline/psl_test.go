package baseline

import (
	"testing"

	"shiftgears/internal/adversary"
	"shiftgears/internal/eigtree"
	"shiftgears/internal/sim"
)

func runPSL(t *testing.T, n, tt int, val eigtree.Value, faulty []int, strat string, seed int64) []*PSLReplica {
	t.Helper()
	enum, err := NewPSLEnum(n, 0, tt)
	if err != nil {
		t.Fatal(err)
	}
	isFaulty := map[int]bool{}
	for _, f := range faulty {
		isFaulty[f] = true
	}
	var st adversary.Strategy
	if len(faulty) > 0 {
		st, err = adversary.New(strat, tt+1)
		if err != nil {
			t.Fatal(err)
		}
	}
	reps := make([]*PSLReplica, n)
	procs := make([]sim.Processor, n)
	for id := 0; id < n; id++ {
		rep, err := NewPSLReplica(enum, id, tt, val, nil)
		if err != nil {
			t.Fatal(err)
		}
		reps[id] = rep
		if isFaulty[id] {
			procs[id] = adversary.NewProcessor(rep, st, seed, n)
		} else {
			procs[id] = rep
		}
	}
	nw, err := sim.NewNetwork(procs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nw.Run(tt + 1); err != nil {
		t.Fatal(err)
	}
	for id, rep := range reps {
		if !isFaulty[id] {
			if err := rep.Err(); err != nil {
				t.Fatalf("replica %d: %v", id, err)
			}
		}
	}
	return reps
}

func checkPSL(t *testing.T, reps []*PSLReplica, faulty []int, sourceVal eigtree.Value) {
	t.Helper()
	isFaulty := map[int]bool{}
	for _, f := range faulty {
		isFaulty[f] = true
	}
	var common eigtree.Value
	first := true
	for id, rep := range reps {
		if isFaulty[id] {
			continue
		}
		v, ok := rep.Decided()
		if !ok {
			t.Fatalf("correct replica %d undecided", id)
		}
		if first {
			common, first = v, false
		} else if v != common {
			t.Fatalf("disagreement: %d decided %d vs %d", id, v, common)
		}
	}
	if !isFaulty[0] && common != sourceVal {
		t.Fatalf("validity: decided %d, source sent %d", common, sourceVal)
	}
}

func TestPSLValidation(t *testing.T) {
	enum, err := NewPSLEnum(7, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewPSLReplica(enum, 0, 2, 0, nil); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	if _, err := NewPSLReplica(enum, 7, 2, 0, nil); err == nil {
		t.Error("id out of range accepted")
	}
	if _, err := NewPSLReplica(enum, 0, 3, 0, nil); err == nil {
		t.Error("n < 3t+1 accepted")
	}
}

func TestPSLFaultFree(t *testing.T) {
	reps := runPSL(t, 7, 2, 4, nil, "", 0)
	checkPSL(t, reps, nil, 4)
	if reps[1].Rounds() != 3 {
		t.Fatalf("OM(2) rounds = %d, want t+1 = 3", reps[1].Rounds())
	}
	if reps[1].ResolveOps() == 0 {
		t.Fatal("resolve ops not counted")
	}
}

func TestPSLAgreementUnderAllStrategies(t *testing.T) {
	for _, strat := range adversary.Names() {
		for _, faulty := range [][]int{{0, 3}, {2, 5}, {1}} {
			for seed := int64(0); seed < 3; seed++ {
				reps := runPSL(t, 7, 2, 1, faulty, strat, seed)
				checkPSL(t, reps, faulty, 1)
			}
		}
	}
}

func TestPSLThreeFaults(t *testing.T) {
	for _, faulty := range [][]int{{0, 1, 2}, {3, 6, 9}} {
		reps := runPSL(t, 10, 3, 1, faulty, "splitbrain", 7)
		checkPSL(t, reps, faulty, 1)
	}
}

func TestPSLExplicitWireFormatIsLarger(t *testing.T) {
	// PSL's historical path-labelled encoding costs (h+2) bytes per node
	// versus 1 for the paper's canonical encoding — the "comparable
	// complexity" with a worse constant. Compare max payloads.
	enum, err := NewPSLEnum(7, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := NewPSLReplica(enum, 1, 2, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Feed round 1 then inspect round 2's broadcast: one node (the root),
	// path length 1 → 3 bytes vs 1 byte canonical.
	inbox := make([][]byte, 7)
	inbox[0] = []byte{3}
	rep.DeliverRound(1, inbox)
	out := rep.PrepareRound(2)
	if len(out[0]) != 3 {
		t.Fatalf("round-2 payload = %d bytes, want 3 (len+path+value)", len(out[0]))
	}
}

func TestPSLMalformedMessagesBecomeDefaults(t *testing.T) {
	enum, err := NewPSLEnum(7, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := NewPSLReplica(enum, 1, 2, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	inbox := make([][]byte, 7)
	inbox[0] = []byte{9}
	rep.DeliverRound(1, inbox)
	// Round 2: processor 2 sends garbage; 3 sends a truncated record.
	inbox2 := make([][]byte, 7)
	inbox2[2] = []byte{255, 1, 2, 3}
	inbox2[3] = []byte{1, 0} // claims path len 1 but record is short
	rep.DeliverRound(2, inbox2)
	if err := rep.Err(); err != nil {
		t.Fatalf("malformed messages caused an error: %v", err)
	}
}

func TestCoanModel(t *testing.T) {
	p := CoanModel(13, 4, 3)
	if p.Rounds != 4+1+(4-1)/(3-1) {
		t.Fatalf("Coan rounds = %d", p.Rounds)
	}
	if p.MessageNodes != 13*13*13 {
		t.Fatalf("Coan message nodes = %f", p.MessageNodes)
	}
	// The local computation is exponential in t: growing t by one at fixed
	// b multiplies LocalOps by ~n.
	p5 := CoanModel(13, 5, 3)
	if p5.LocalOps <= p.LocalOps*10 {
		t.Fatalf("Coan local ops not exponential: t=4 → %g, t=5 → %g", p.LocalOps, p5.LocalOps)
	}
	// b = t collapses to the exponential algorithm's t+1 rounds.
	if CoanModel(13, 4, 4).Rounds != 5 {
		t.Fatal("b=t should give t+1 rounds")
	}
}
