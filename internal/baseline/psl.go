// Package baseline implements the comparison points of the paper's
// introduction: the original Byzantine agreement algorithm of Pease,
// Shostak, and Lamport (1980) — the algorithm the paper's Exponential
// Algorithm simplifies — and an analytic model of Coan's families, whose
// rounds-versus-message-length trade-off Algorithms A and B match without
// exponential local computation.
package baseline

import (
	"fmt"

	"shiftgears/internal/eigtree"
	"shiftgears/internal/sim"
	"shiftgears/internal/trace"
)

// PSLReplica runs the oral-messages algorithm OM(t) of Pease, Shostak, and
// Lamport in its exponential information-gathering form: t+1 rounds of
// relaying, then a recursive majority vote in which — unlike the paper's
// resolve — an internal node's own stored value votes alongside its
// children's resolved values (lieutenant i's v_i in OM(m) is the value it
// received directly from the sub-commander).
//
// The wire format is the historical, explicit one: each relayed value is
// sent together with its full path of labels, so a round h+1 message costs
// (h+2) bytes per tree node instead of the 1 byte of the paper's canonical
// encoding. This is the "comparable complexity, cumbersome bookkeeping"
// the paper contrasts itself against.
type PSLReplica struct {
	id      int
	n, t    int
	source  int
	initial eigtree.Value

	enum  *eigtree.Enum
	tree  *eigtree.Tree
	index []map[eigtree.Seq]int // per-level Seq → canonical index
	log   *trace.Log

	round    int
	decided  bool
	decision eigtree.Value
	err      error

	resolveOps int
}

var _ sim.Processor = (*PSLReplica)(nil)

// NewPSLReplica builds one OM(t) participant. All replicas of a run may
// share the enum (see NewPSLEnum).
func NewPSLReplica(enum *eigtree.Enum, id, t int, initial eigtree.Value, log *trace.Log) (*PSLReplica, error) {
	n := enum.N()
	if n < 3*t+1 {
		return nil, fmt.Errorf("baseline: OM(t) requires n ≥ 3t+1 (n=%d, t=%d)", n, t)
	}
	if id < 0 || id >= n {
		return nil, fmt.Errorf("baseline: id %d out of range [0, %d)", id, n)
	}
	r := &PSLReplica{
		id:      id,
		n:       n,
		t:       t,
		source:  enum.Source(),
		initial: initial,
		enum:    enum,
		log:     log,
	}
	if id != r.source {
		r.tree = eigtree.NewTree(enum)
		r.index = make([]map[eigtree.Seq]int, enum.MaxLevel()+1)
		for h := 0; h <= enum.MaxLevel(); h++ {
			m := make(map[eigtree.Seq]int, enum.Size(h))
			for i, seq := range enum.Level(h) {
				m[seq] = i
			}
			r.index[h] = m
		}
	}
	return r, nil
}

// NewPSLEnum builds the enumeration OM(t) needs (levels 0..t, without
// repetitions).
func NewPSLEnum(n, source, t int) (*eigtree.Enum, error) {
	return eigtree.NewEnum(n, source, false, t)
}

// ID implements sim.Processor.
func (r *PSLReplica) ID() int { return r.id }

// Decided returns the decision once made.
func (r *PSLReplica) Decided() (eigtree.Value, bool) { return r.decision, r.decided }

// Err reports an internal error (protocol bug, not Byzantine input).
func (r *PSLReplica) Err() error { return r.err }

// ResolveOps returns the recursive-majority work counter.
func (r *PSLReplica) ResolveOps() int { return r.resolveOps }

// Rounds returns the total rounds OM(t) runs: t+1.
func (r *PSLReplica) Rounds() int { return r.t + 1 }

// PrepareRound implements sim.Processor.
func (r *PSLReplica) PrepareRound(round int) [][]byte {
	if r.id == r.source {
		if round != 1 {
			return nil
		}
		r.decided, r.decision = true, r.initial
		r.log.Add(1, trace.KindDecision, int(r.initial), "psl source")
		return sim.Broadcast(r.n, []byte{byte(r.initial)})
	}
	if round == 1 || round > r.t+1 || r.decided || r.err != nil {
		return nil
	}
	return sim.Broadcast(r.n, r.encodeLeaves())
}

// encodeLeaves serializes the deepest level with explicit paths:
// [pathLen, path..., value] per node.
func (r *PSLReplica) encodeLeaves() []byte {
	h := r.tree.Levels() - 1
	seqs := r.enum.Level(h)
	vals := r.tree.LevelValues(h)
	out := make([]byte, 0, len(seqs)*(h+3))
	for i, seq := range seqs {
		out = append(out, byte(len(seq)))
		out = append(out, seq...)
		out = append(out, byte(vals[i]))
	}
	return out
}

// DeliverRound implements sim.Processor.
func (r *PSLReplica) DeliverRound(round int, inbox [][]byte) {
	if r.id == r.source || r.decided || r.err != nil {
		return
	}
	switch {
	case round == 1:
		v := eigtree.Default
		if p := inbox[r.source]; len(p) == 1 {
			v = eigtree.Value(p[0])
		}
		r.tree.SetRoot(v)
		r.log.Add(1, trace.KindRootStored, int(v), "psl")
	case round <= r.t+1:
		if _, err := r.tree.AddLevel(); err != nil {
			r.err = err
			return
		}
		for q := 0; q < r.n; q++ {
			if q == r.source {
				continue
			}
			r.storeClaims(q, inbox[q])
		}
	}
	if round == r.t+1 {
		r.decideNow(round)
	}
}

// storeClaims parses q's explicit-path message and stores each well-formed
// claim at the child labelled q of the claimed node. Malformed records are
// skipped (default values remain), per the original algorithm's treatment
// of absent or improper messages.
func (r *PSLReplica) storeClaims(q int, payload []byte) {
	hNew := r.tree.Levels() - 1
	hPrev := hNew - 1
	claims := make([]eigtree.Value, r.enum.Size(hPrev))
	seen := make([]bool, len(claims))
	i := 0
	for i < len(payload) {
		pl := int(payload[i])
		if pl != hPrev+1 || i+pl+2 > len(payload) {
			break // malformed record: stop parsing, keep defaults
		}
		seq := eigtree.Seq(payload[i+1 : i+1+pl])
		v := eigtree.Value(payload[i+1+pl])
		if idx, ok := r.index[hPrev][seq]; ok && !seen[idx] {
			claims[idx] = v
			seen[idx] = true
		}
		i += pl + 2
	}
	complete := true
	for _, s := range seen {
		if !s {
			complete = false
			break
		}
	}
	if !complete && i == 0 {
		return // nothing usable; leave defaults in place
	}
	if err := r.tree.StoreFrom(q, claims); err != nil {
		r.err = err
	}
}

// decideNow performs OM's recursive majority. For lieutenant p evaluating
// internal node α, the vote set is the children's recursively resolved
// values — except that p's own branch α·p (p does not relay to itself in
// OM) is replaced by the value p received directly from α's commander,
// tree_p(α). The strict majority of those n−|α| votes wins; no majority
// yields the default. The recursion only descends through labels ≠ p, so
// nodes whose path contains p are never consulted.
func (r *PSLReplica) decideNow(round int) {
	deepest := r.tree.Levels() - 1
	cur := make([]eigtree.Value, r.enum.Size(deepest))
	copy(cur, r.tree.LevelValues(deepest))
	for h := deepest - 1; h >= 0; h-- {
		cc := r.enum.ChildCount(h)
		stored := r.tree.LevelValues(h)
		next := make([]eigtree.Value, r.enum.Size(h))
		var counts [256]int
		for i := range next {
			selfChild, hasSelf := r.enum.ChildIndex(h, i, r.id)
			if !hasSelf {
				// p is on this node's path; the value is never consulted.
				next[i] = eigtree.Default
				continue
			}
			vote := func(k int) eigtree.Value {
				if i*cc+k == selfChild {
					return stored[i] // p's direct value from the commander
				}
				return cur[i*cc+k]
			}
			for k := 0; k < cc; k++ {
				counts[vote(k)]++
			}
			r.resolveOps += cc
			win := eigtree.Default
			for k := 0; k < cc; k++ {
				if 2*counts[vote(k)] > cc {
					win = vote(k)
					break
				}
			}
			for k := 0; k < cc; k++ {
				counts[vote(k)] = 0
			}
			next[i] = win
		}
		cur = next
	}
	r.decided, r.decision = true, cur[0]
	r.log.Add(round, trace.KindDecision, int(cur[0]), "psl")
}
