package extensions

import (
	"testing"

	"shiftgears/internal/adversary"
	"shiftgears/internal/eigtree"
	"shiftgears/internal/sim"
)

func runQueen(t *testing.T, n, tt int, val eigtree.Value, faulty []int, strat string, seed int64) []*QueenReplica {
	t.Helper()
	isFaulty := map[int]bool{}
	for _, f := range faulty {
		isFaulty[f] = true
	}
	reps := make([]*QueenReplica, n)
	procs := make([]sim.Processor, n)
	rounds := 1 + 2*(tt+1)
	var st adversary.Strategy
	var err error
	if len(faulty) > 0 {
		st, err = adversary.New(strat, rounds)
		if err != nil {
			t.Fatal(err)
		}
	}
	for id := 0; id < n; id++ {
		rep, err := NewQueenReplica(n, tt, 0, id, val, nil)
		if err != nil {
			t.Fatal(err)
		}
		reps[id] = rep
		if isFaulty[id] {
			procs[id] = adversary.NewProcessor(rep, st, seed, n)
		} else {
			procs[id] = rep
		}
	}
	nw, err := sim.NewNetwork(procs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nw.Run(rounds); err != nil {
		t.Fatal(err)
	}
	return reps
}

func checkQueen(t *testing.T, reps []*QueenReplica, faulty []int, sourceVal eigtree.Value) {
	t.Helper()
	isFaulty := map[int]bool{}
	for _, f := range faulty {
		isFaulty[f] = true
	}
	var common eigtree.Value
	first := true
	for id, rep := range reps {
		if isFaulty[id] {
			continue
		}
		v, ok := rep.Decided()
		if !ok {
			t.Fatalf("correct replica %d undecided", id)
		}
		if first {
			common, first = v, false
		} else if v != common {
			t.Fatalf("disagreement: replica %d decided %d vs %d", id, v, common)
		}
	}
	if !isFaulty[0] && common != sourceVal {
		t.Fatalf("validity: decided %d, source sent %d", common, sourceVal)
	}
}

func TestQueenValidation(t *testing.T) {
	if _, err := NewQueenReplica(12, 3, 0, 0, 0, nil); err == nil {
		t.Error("n < 4t+1 accepted")
	}
	if _, err := NewQueenReplica(13, 0, 0, 0, 0, nil); err == nil {
		t.Error("t = 0 accepted")
	}
	if _, err := NewQueenReplica(13, 3, 13, 0, 0, nil); err == nil {
		t.Error("source out of range accepted")
	}
	rep, err := NewQueenReplica(13, 3, 0, 5, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rounds() != 1+2*4 {
		t.Fatalf("rounds = %d, want 9", rep.Rounds())
	}
	if rep.Err() != nil {
		t.Fatal("Err must be nil")
	}
}

func TestQueenQueensExcludeSource(t *testing.T) {
	rep, err := NewQueenReplica(13, 3, 2, 0, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range rep.queens {
		if q == 2 {
			t.Fatal("the source must not be a queen (it may already be the equivocator)")
		}
	}
	if len(rep.queens) != 4 {
		t.Fatalf("%d queens, want t+1 = 4", len(rep.queens))
	}
}

func TestQueenFaultFree(t *testing.T) {
	reps := runQueen(t, 13, 3, 5, nil, "", 0)
	checkQueen(t, reps, nil, 5)
}

func TestQueenConstantMessageSize(t *testing.T) {
	n, tt := 13, 3
	reps := make([]*QueenReplica, n)
	procs := make([]sim.Processor, n)
	for id := 0; id < n; id++ {
		rep, err := NewQueenReplica(n, tt, 0, id, 1, nil)
		if err != nil {
			t.Fatal(err)
		}
		reps[id] = rep
		procs[id] = rep
	}
	nw, err := sim.NewNetwork(procs)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := nw.Run(reps[0].Rounds())
	if err != nil {
		t.Fatal(err)
	}
	if stats.MaxPayload != 1 {
		t.Fatalf("max payload = %d bytes, want 1 (constant-size messages)", stats.MaxPayload)
	}
}

func TestQueenAgreementUnderAllStrategies(t *testing.T) {
	for _, strat := range adversary.Names() {
		for _, faulty := range [][]int{{0, 3, 7}, {1, 2, 3}, {5}} {
			for seed := int64(0); seed < 3; seed++ {
				reps := runQueen(t, 13, 3, 1, faulty, strat, seed)
				checkQueen(t, reps, faulty, 1)
			}
		}
	}
}

func TestQueenFaultyQueensCannotBreakUnanimity(t *testing.T) {
	// All t faulty processors are queens of the early phases; with a
	// correct source, unanimity must survive their reigns (persistence:
	// n ≥ 4t+1 makes the keep-threshold unreachable by lies).
	reps := runQueen(t, 13, 3, 1, []int{1, 2, 3}, "splitbrain", 3)
	checkQueen(t, reps, []int{1, 2, 3}, 1)
}

func TestQueenSourceEquivocates(t *testing.T) {
	// A split-brain source divides initial preferences; the first correct
	// queen's phase must still force agreement.
	for seed := int64(0); seed < 5; seed++ {
		reps := runQueen(t, 13, 3, 1, []int{0, 1, 4}, "splitbrain", seed)
		checkQueen(t, reps, []int{0, 1, 4}, 1)
	}
}
