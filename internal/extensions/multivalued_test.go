package extensions

import (
	"testing"

	"shiftgears/internal/adversary"
	"shiftgears/internal/eigtree"
	"shiftgears/internal/sim"
)

func runReducer(t *testing.T, n, tt int, val eigtree.Value, faulty []int, strat string, seed int64) []*ReducerReplica {
	t.Helper()
	isFaulty := map[int]bool{}
	for _, f := range faulty {
		isFaulty[f] = true
	}
	reps := make([]*ReducerReplica, n)
	procs := make([]sim.Processor, n)
	var st adversary.Strategy
	var err error
	rounds := 3 + 2*(tt+1)
	if len(faulty) > 0 {
		st, err = adversary.New(strat, rounds)
		if err != nil {
			t.Fatal(err)
		}
	}
	for id := 0; id < n; id++ {
		rep, err := NewReducerReplica(n, tt, 0, id, val, nil)
		if err != nil {
			t.Fatal(err)
		}
		reps[id] = rep
		if isFaulty[id] {
			procs[id] = adversary.NewProcessor(rep, st, seed, n)
		} else {
			procs[id] = rep
		}
	}
	nw, err := sim.NewNetwork(procs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nw.Run(rounds); err != nil {
		t.Fatal(err)
	}
	return reps
}

func checkReducer(t *testing.T, reps []*ReducerReplica, faulty []int, sourceVal eigtree.Value) eigtree.Value {
	t.Helper()
	isFaulty := map[int]bool{}
	for _, f := range faulty {
		isFaulty[f] = true
	}
	var common eigtree.Value
	first := true
	for id, rep := range reps {
		if isFaulty[id] {
			continue
		}
		v, ok := rep.Decided()
		if !ok {
			t.Fatalf("correct replica %d undecided", id)
		}
		if first {
			common, first = v, false
		} else if v != common {
			t.Fatalf("disagreement: %d decided %d vs %d", id, v, common)
		}
	}
	if !isFaulty[0] && common != sourceVal {
		t.Fatalf("validity: decided %d, source sent %d", common, sourceVal)
	}
	return common
}

func TestReducerValidation(t *testing.T) {
	if _, err := NewReducerReplica(12, 3, 0, 0, 0, nil); err == nil {
		t.Error("n < 4t+1 accepted")
	}
	if _, err := NewReducerReplica(13, 0, 0, 0, 0, nil); err == nil {
		t.Error("t = 0 accepted")
	}
	rep, err := NewReducerReplica(13, 3, 0, 1, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rounds() != 3+2*4 {
		t.Fatalf("rounds = %d, want 11", rep.Rounds())
	}
}

func TestReducerLargeDomainValidity(t *testing.T) {
	// The whole point: the source value can be any byte, and after the two
	// reduction rounds every message is one byte.
	for _, v := range []eigtree.Value{0, 1, 77, 200, 255} {
		reps := runReducer(t, 13, 3, v, nil, "", 0)
		if got := checkReducer(t, reps, nil, v); got != v {
			t.Fatalf("decided %d, want %d", got, v)
		}
	}
}

func TestReducerAgreementUnderAllStrategies(t *testing.T) {
	for _, strat := range adversary.Names() {
		for _, faulty := range [][]int{{0, 3, 7}, {1, 2, 3}, {5}} {
			for seed := int64(0); seed < 3; seed++ {
				reps := runReducer(t, 13, 3, 142, faulty, strat, seed)
				checkReducer(t, reps, faulty, 142)
			}
		}
	}
}

func TestReducerEquivocatingSourceYieldsCommonValue(t *testing.T) {
	// A split-brain source with a large-domain value: correct processors
	// must converge on SOME common byte (often the default, since no value
	// reaches the n−t anchor quorum).
	for seed := int64(0); seed < 5; seed++ {
		reps := runReducer(t, 13, 3, 99, []int{0, 2, 4}, "splitbrain", seed)
		checkReducer(t, reps, []int{0, 2, 4}, 99)
	}
}

func TestReducerConstantMessagesAfterReduction(t *testing.T) {
	n, tt := 13, 3
	reps := make([]*ReducerReplica, n)
	procs := make([]sim.Processor, n)
	for id := 0; id < n; id++ {
		rep, err := NewReducerReplica(n, tt, 0, id, 231, nil)
		if err != nil {
			t.Fatal(err)
		}
		reps[id] = rep
		procs[id] = rep
	}
	nw, err := sim.NewNetwork(procs, sim.WithPerRoundStats())
	if err != nil {
		t.Fatal(err)
	}
	stats, err := nw.Run(reps[0].Rounds())
	if err != nil {
		t.Fatal(err)
	}
	// The anchor round costs 2 bytes; everything else is 1 byte.
	if stats.MaxPayload != anchorFrameLen {
		t.Fatalf("max payload = %d, want %d", stats.MaxPayload, anchorFrameLen)
	}
	for _, rs := range stats.PerRound {
		if rs.Round != 3 && rs.MaxPayload > 1 {
			t.Fatalf("round %d payload %d > 1 byte", rs.Round, rs.MaxPayload)
		}
	}
}

func TestReducerAnchorQuorumIntersection(t *testing.T) {
	// Two correct processors can never anchor different values: drive many
	// adversarial runs and inspect the anchors after round 3.
	for seed := int64(0); seed < 10; seed++ {
		n, tt := 13, 3
		faulty := map[int]bool{0: true, 5: true, 9: true}
		reps := make([]*ReducerReplica, n)
		procs := make([]sim.Processor, n)
		st, err := adversary.New("splitbrain", 11)
		if err != nil {
			t.Fatal(err)
		}
		for id := 0; id < n; id++ {
			rep, err := NewReducerReplica(n, tt, 0, id, 50, nil)
			if err != nil {
				t.Fatal(err)
			}
			reps[id] = rep
			if faulty[id] {
				procs[id] = adversary.NewProcessor(rep, st, seed, n)
			} else {
				procs[id] = rep
			}
		}
		nw, err := sim.NewNetwork(procs)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := nw.Run(3); err != nil { // just through the anchor round
			t.Fatal(err)
		}
		var anchored *eigtree.Value
		for id, rep := range reps {
			if faulty[id] || !rep.hasAnchor {
				continue
			}
			if anchored == nil {
				v := rep.anchor
				anchored = &v
			} else if rep.anchor != *anchored {
				t.Fatalf("seed %d: correct anchors differ: %d vs %d", seed, rep.anchor, *anchored)
			}
		}
	}
}
