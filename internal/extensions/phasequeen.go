// Package extensions implements follow-on protocols the paper's Section 5
// ("Recent Results") points at — here the constant-message-size phase
// protocol of Berman, Garay, and Perry, in its two-round-per-phase
// n ≥ 4t+1 form (often called Phase Queen). It serves as the modern
// comparison point: t+1 phases of two rounds with one-byte messages,
// versus Algorithm C's t+1 rounds with O(n)-byte messages.
package extensions

import (
	"fmt"

	"shiftgears/internal/eigtree"
	"shiftgears/internal/sim"
	"shiftgears/internal/trace"
)

// QueenReplica is one participant of the broadcast variant of the phase
// protocol: in round 1 the source broadcasts its value; every processor
// (the source included — the phase protocol is a consensus protocol, so
// unlike the paper's algorithms the source keeps participating) adopts the
// received value as its preference and runs t+1 phases of two rounds each.
//
// Phase k has a designated queen (the k-th non-source processor id).
// Round 1 of the phase: broadcast the preference; each processor computes
// the most frequent value among the n slots (missing senders count as the
// default) and its count. Round 2: the queen broadcasts her most frequent
// value; a processor keeps its own value when its count exceeds n/2 + t,
// and adopts the queen's otherwise. With n ≥ 4t+1, unanimity among correct
// processors persists through any phase, and a phase with a correct queen
// creates it; after t+1 phases some queen was correct.
type QueenReplica struct {
	id      int
	n, t    int
	source  int
	initial eigtree.Value
	queens  []int
	log     *trace.Log

	pref     eigtree.Value
	maj      eigtree.Value
	cnt      int
	decided  bool
	decision eigtree.Value
}

var _ sim.Processor = (*QueenReplica)(nil)

// NewQueenReplica validates n ≥ 4t+1 and builds a participant.
func NewQueenReplica(n, t, source, id int, initial eigtree.Value, log *trace.Log) (*QueenReplica, error) {
	if n < 4*t+1 {
		return nil, fmt.Errorf("extensions: phase protocol requires n ≥ 4t+1 (n=%d, t=%d)", n, t)
	}
	if t < 1 || source < 0 || source >= n || id < 0 || id >= n {
		return nil, fmt.Errorf("extensions: bad parameters n=%d t=%d source=%d id=%d", n, t, source, id)
	}
	queens := make([]int, 0, t+1)
	for p := 0; len(queens) < t+1; p++ {
		if p != source {
			queens = append(queens, p)
		}
	}
	return &QueenReplica{
		id: id, n: n, t: t, source: source,
		initial: initial, queens: queens, log: log,
	}, nil
}

// Rounds returns the protocol length: 1 + 2(t+1).
func (r *QueenReplica) Rounds() int { return 1 + 2*(r.t+1) }

// ID implements sim.Processor.
func (r *QueenReplica) ID() int { return r.id }

// Decided returns the decision once made.
func (r *QueenReplica) Decided() (eigtree.Value, bool) { return r.decision, r.decided }

// Err exists for interface parity with the other replicas; the phase
// protocol has no internal failure modes.
func (r *QueenReplica) Err() error { return nil }

// phase returns, for a communication round ≥ 2, the phase index (0-based)
// and whether the round is the exchange (first) round of the phase.
func (r *QueenReplica) phase(round int) (int, bool) {
	k := round - 2
	return k / 2, k%2 == 0
}

// PrepareRound implements sim.Processor.
func (r *QueenReplica) PrepareRound(round int) [][]byte {
	if round == 1 {
		if r.id == r.source {
			return sim.Broadcast(r.n, []byte{byte(r.initial)})
		}
		return nil
	}
	if round > r.Rounds() || r.decided {
		return nil
	}
	ph, exchange := r.phase(round)
	if exchange {
		return sim.Broadcast(r.n, []byte{byte(r.pref)})
	}
	if r.queens[ph] == r.id {
		return sim.Broadcast(r.n, []byte{byte(r.maj)})
	}
	return nil
}

// DeliverRound implements sim.Processor.
func (r *QueenReplica) DeliverRound(round int, inbox [][]byte) {
	if r.decided {
		return
	}
	if round == 1 {
		r.pref = eigtree.Default
		if p := inbox[r.source]; len(p) == 1 {
			r.pref = eigtree.Value(p[0])
		}
		r.log.Add(1, trace.KindRootStored, int(r.pref), "queen")
		return
	}
	if round > r.Rounds() {
		return
	}
	ph, exchange := r.phase(round)
	if exchange {
		var counts [256]int
		for q := 0; q < r.n; q++ {
			v := eigtree.Default
			if p := inbox[q]; len(p) == 1 {
				v = eigtree.Value(p[0])
			}
			counts[v]++
		}
		r.maj, r.cnt = eigtree.Default, -1
		for v := 0; v < 256; v++ {
			if counts[v] > r.cnt {
				r.maj, r.cnt = eigtree.Value(v), counts[v]
			}
		}
		return
	}
	queenVal := eigtree.Default
	if p := inbox[r.queens[ph]]; len(p) == 1 {
		queenVal = eigtree.Value(p[0])
	}
	if 2*r.cnt > r.n+2*r.t { // cnt > n/2 + t
		r.pref = r.maj
	} else {
		r.pref = queenVal
	}
	if round == r.Rounds() {
		r.decided, r.decision = true, r.pref
		r.log.Add(round, trace.KindDecision, int(r.pref), "queen")
	}
}
