package extensions

import (
	"fmt"

	"shiftgears/internal/eigtree"
	"shiftgears/internal/sim"
	"shiftgears/internal/trace"
)

// ReducerReplica implements the paper's Section 2 remark — "If |V| is very
// large we may apply techniques of Coan (1987) to convert the set to two
// elements, at the cost of two rounds" — as a Turpin–Coan-style reduction
// from agreement over an arbitrary value domain to agreement on one bit,
// composed with the phase protocol as the binary engine.
//
// Schedule (source s, value v ∈ V):
//
//	round 1          s broadcasts v; everyone adopts the received value.
//	round 2          broadcast the adopted value; a processor that sees
//	                 some value w on at least n−t of the n slots anchors
//	                 w, otherwise anchors ⊥.
//	round 3          broadcast the anchor (⊥ encoded separately). Any two
//	                 correct anchors are equal (two n−t quorums overlap in
//	                 a correct processor), so each processor counts the
//	                 support of the unique correct anchor candidate: its
//	                 binary input is 1 iff some non-⊥ value has at least
//	                 n−2t support, and its candidate is the unique non-⊥
//	                 value with more than t support (if any).
//	rounds 4..3+2(t+1)  binary phase protocol on the bit.
//	decide           candidate if the common bit is 1, the default if 0.
//
// With n ≥ 4t+1 (the phase protocol's requirement), a 1-bit outcome
// guarantees every correct processor holds the same candidate: the bit can
// only win if some correct processor saw n−2t support, so at least
// n−3t ≥ t+1 correct processors sent that value, giving it more than t
// support everywhere, while any other value's support is at most t.
//
// This keeps every message after round 2 at one byte regardless of |V| —
// the large-domain cost collapses into the two reduction rounds, exactly
// the trade the paper points at. (Turpin and Coan's original achieves
// n ≥ 3t+1 with a subtler threshold scheme; this variant matches its
// binary engine's n ≥ 4t+1 requirement.)
type ReducerReplica struct {
	id      int
	n, t    int
	source  int
	initial eigtree.Value
	queens  []int
	log     *trace.Log

	adopted   eigtree.Value
	anchor    eigtree.Value
	hasAnchor bool
	candidate eigtree.Value
	bit       eigtree.Value
	maj       eigtree.Value
	cnt       int

	decided  bool
	decision eigtree.Value
}

var _ sim.Processor = (*ReducerReplica)(nil)

// reducerBottom encodes ⊥ on the wire for the anchor round. Anchors live in
// a two-byte frame [flag, value] so that every value of V remains usable.
const (
	anchorFrameLen = 2
	anchorPresent  = 1
)

// NewReducerReplica validates n ≥ 4t+1 and builds a participant.
func NewReducerReplica(n, t, source, id int, initial eigtree.Value, log *trace.Log) (*ReducerReplica, error) {
	if n < 4*t+1 {
		return nil, fmt.Errorf("extensions: multivalued reduction requires n ≥ 4t+1 (n=%d, t=%d)", n, t)
	}
	if t < 1 || source < 0 || source >= n || id < 0 || id >= n {
		return nil, fmt.Errorf("extensions: bad parameters n=%d t=%d source=%d id=%d", n, t, source, id)
	}
	queens := make([]int, 0, t+1)
	for p := 0; len(queens) < t+1; p++ {
		if p != source {
			queens = append(queens, p)
		}
	}
	return &ReducerReplica{
		id: id, n: n, t: t, source: source,
		initial: initial, queens: queens, log: log,
	}, nil
}

// Rounds returns the schedule length: 1 + 2 + 2(t+1).
func (r *ReducerReplica) Rounds() int { return 3 + 2*(r.t+1) }

// ID implements sim.Processor.
func (r *ReducerReplica) ID() int { return r.id }

// Decided returns the decision once made.
func (r *ReducerReplica) Decided() (eigtree.Value, bool) { return r.decision, r.decided }

// Err exists for interface parity.
func (r *ReducerReplica) Err() error { return nil }

// phase maps a binary-engine round (≥ 4) to its phase and half.
func (r *ReducerReplica) phase(round int) (int, bool) {
	k := round - 4
	return k / 2, k%2 == 0
}

// PrepareRound implements sim.Processor.
func (r *ReducerReplica) PrepareRound(round int) [][]byte {
	switch {
	case round == 1:
		if r.id != r.source {
			return nil
		}
		return sim.Broadcast(r.n, []byte{byte(r.initial)})
	case round == 2:
		return sim.Broadcast(r.n, []byte{byte(r.adopted)})
	case round == 3:
		frame := []byte{0, 0}
		if r.hasAnchor {
			frame[0], frame[1] = anchorPresent, byte(r.anchor)
		}
		return sim.Broadcast(r.n, frame)
	case round <= r.Rounds() && !r.decided:
		ph, exchange := r.phase(round)
		if exchange {
			return sim.Broadcast(r.n, []byte{byte(r.bit)})
		}
		if r.queens[ph] == r.id {
			return sim.Broadcast(r.n, []byte{byte(r.maj)})
		}
	}
	return nil
}

// DeliverRound implements sim.Processor.
func (r *ReducerReplica) DeliverRound(round int, inbox [][]byte) {
	if r.decided {
		return
	}
	switch {
	case round == 1:
		r.adopted = eigtree.Default
		if p := inbox[r.source]; len(p) == 1 {
			r.adopted = eigtree.Value(p[0])
		}
		if r.id == r.source {
			r.adopted = r.initial
		}
		r.log.Add(1, trace.KindRootStored, int(r.adopted), "reduce")

	case round == 2:
		var counts [256]int
		for q := 0; q < r.n; q++ {
			v := eigtree.Default
			if p := inbox[q]; len(p) == 1 {
				v = eigtree.Value(p[0])
			}
			counts[v]++
		}
		r.hasAnchor = false
		for v := 0; v < 256; v++ {
			if counts[v] >= r.n-r.t {
				r.anchor, r.hasAnchor = eigtree.Value(v), true
				break
			}
		}

	case round == 3:
		var counts [256]int
		for q := 0; q < r.n; q++ {
			if p := inbox[q]; len(p) == anchorFrameLen && p[0] == anchorPresent {
				counts[p[1]]++
			}
		}
		r.bit = 0
		r.candidate = eigtree.Default
		for v := 0; v < 256; v++ {
			if counts[v] >= r.n-2*r.t {
				r.bit = 1
			}
			if counts[v] > r.t {
				r.candidate = eigtree.Value(v)
			}
		}
		r.log.Add(3, trace.KindShift, int(r.bit), "reduced to bit")

	case round <= r.Rounds():
		ph, exchange := r.phase(round)
		if exchange {
			var counts [256]int
			for q := 0; q < r.n; q++ {
				v := eigtree.Default
				if p := inbox[q]; len(p) == 1 {
					v = eigtree.Value(p[0])
				}
				counts[v]++
			}
			r.maj, r.cnt = eigtree.Default, -1
			for v := 0; v < 256; v++ {
				if counts[v] > r.cnt {
					r.maj, r.cnt = eigtree.Value(v), counts[v]
				}
			}
			return
		}
		queenVal := eigtree.Default
		if p := inbox[r.queens[ph]]; len(p) == 1 {
			queenVal = eigtree.Value(p[0])
		}
		if 2*r.cnt > r.n+2*r.t {
			r.bit = r.maj
		} else {
			r.bit = queenVal
		}
		if round == r.Rounds() {
			r.decision = eigtree.Default
			if r.bit == 1 {
				r.decision = r.candidate
			}
			r.decided = true
			r.log.Add(round, trace.KindDecision, int(r.decision), "reduce")
		}
	}
}
