// Package consensus builds interactive consistency — the original goal of
// Pease, Shostak, and Lamport (1980), which the paper's introduction frames
// Byzantine agreement within — by running n simultaneous instances of a
// broadcast-agreement plan, one per source, multiplexed over the same
// synchronous rounds. All correct processors end up agreeing on the full
// vector of initial values, with the slot of every correct processor equal
// to that processor's input.
//
// Vector agreement immediately yields multi-valued consensus: apply any
// deterministic function to the agreed vector (Reduce picks the most
// frequent value, giving the standard validity property when all correct
// processors share an input).
package consensus

import (
	"encoding/binary"
	"fmt"

	"shiftgears/internal/core"
	"shiftgears/internal/eigtree"
	"shiftgears/internal/sim"
	"shiftgears/internal/trace"
)

// Vector is an agreed vector of initial values, indexed by processor id.
type Vector []eigtree.Value

// Reduce maps an agreed vector to a single consensus value: the most
// frequent value, ties broken toward the smallest. If all correct
// processors start with v, then v fills at least n−t > n/2 agreed slots
// (every correct source's instance decides its input), so Reduce returns v
// — the classical validity property of multi-valued consensus.
func (v Vector) Reduce() eigtree.Value {
	var counts [256]int
	for _, val := range v {
		counts[val]++
	}
	best := 0
	for val := 1; val < 256; val++ {
		if counts[val] > counts[best] {
			best = val
		}
	}
	return eigtree.Value(best)
}

// Env prepares the n per-source plans and their shared enumerations.
type Env struct {
	n     int
	plans []*core.Plan
	envs  []*core.Env
}

// NewEnv validates the configuration and compiles one plan per source. All
// instances share (algorithm, n, t, b) and therefore the same round count.
func NewEnv(alg core.Algorithm, n, t, b int) (*Env, error) {
	e := &Env{n: n}
	for s := 0; s < n; s++ {
		plan, err := core.NewPlan(alg, n, t, b, s)
		if err != nil {
			return nil, fmt.Errorf("consensus: instance %d: %w", s, err)
		}
		env, err := core.NewEnv(plan)
		if err != nil {
			return nil, fmt.Errorf("consensus: instance %d: %w", s, err)
		}
		e.plans = append(e.plans, plan)
		e.envs = append(e.envs, env)
	}
	return e, nil
}

// Rounds returns the shared schedule length.
func (e *Env) Rounds() int { return e.plans[0].TotalRounds }

// VectorReplica multiplexes one replica per instance over a single
// processor's rounds. It implements sim.Processor; its wire format frames
// each instance's payload with a uvarint length (0 = no message).
type VectorReplica struct {
	id    int
	env   *Env
	insts []*core.Replica
	log   *trace.Log
}

var _ sim.Processor = (*VectorReplica)(nil)

// NewVectorReplica creates processor id with the given input value (used by
// the instance it sources). log may be nil.
func NewVectorReplica(env *Env, id int, input eigtree.Value, log *trace.Log) (*VectorReplica, error) {
	vr := &VectorReplica{id: id, env: env, log: log}
	for s := 0; s < env.n; s++ {
		rep, err := core.NewReplica(env.envs[s], id, input, nil)
		if err != nil {
			return nil, err
		}
		vr.insts = append(vr.insts, rep)
	}
	return vr, nil
}

// ID implements sim.Processor.
func (vr *VectorReplica) ID() int { return vr.id }

// Err returns the first internal error across instances.
func (vr *VectorReplica) Err() error {
	for _, rep := range vr.insts {
		if err := rep.Err(); err != nil {
			return err
		}
	}
	return nil
}

// Decided returns the agreed vector once every instance has decided.
func (vr *VectorReplica) Decided() (Vector, bool) {
	out := make(Vector, len(vr.insts))
	for s, rep := range vr.insts {
		v, ok := rep.Decided()
		if !ok {
			return nil, false
		}
		out[s] = v
	}
	return out, true
}

// instancePayloads collects each instance's honest broadcast payload.
func (vr *VectorReplica) instancePayloads(round int) [][]byte {
	frames := make([][]byte, vr.env.n)
	for s, rep := range vr.insts {
		frames[s] = broadcastPayload(rep.PrepareRound(round))
	}
	return frames
}

// PrepareRound implements sim.Processor.
func (vr *VectorReplica) PrepareRound(round int) [][]byte {
	return sim.Broadcast(vr.env.n, EncodeFrames(vr.instancePayloads(round)))
}

// DeliverRound implements sim.Processor.
func (vr *VectorReplica) DeliverRound(round int, inbox [][]byte) {
	n := vr.env.n
	perInstance := make([][][]byte, n)
	for s := 0; s < n; s++ {
		perInstance[s] = make([][]byte, n)
	}
	for q := 0; q < n; q++ {
		frames := DecodeFrames(inbox[q], n)
		if frames == nil {
			continue // missing or malformed: all instances see silence from q
		}
		for s := 0; s < n; s++ {
			perInstance[s][q] = frames[s]
		}
	}
	for s, rep := range vr.insts {
		rep.DeliverRound(round, perInstance[s])
	}
}

// broadcastPayload extracts the (single) broadcast payload of an honest
// outbox.
func broadcastPayload(outbox [][]byte) []byte {
	if outbox == nil {
		return nil
	}
	for _, p := range outbox {
		if p != nil {
			return p
		}
	}
	return nil
}

// EncodeFrames packs per-instance payloads into one wire payload:
// uvarint(length) followed by the bytes, per instance in order; length 0
// encodes "no message". A payload with no frames at all is nil.
func EncodeFrames(frames [][]byte) []byte {
	out, ok := AppendFrames(nil, frames)
	if !ok {
		return nil
	}
	return out
}

// AppendFrames appends the EncodeFrames encoding of frames to dst and
// reports whether any frame was non-nil; when none is, nothing is
// appended and the encoded payload is "no message" (callers send nil).
// Appending into a caller-owned arena keeps the per-destination encode of
// a hot tick allocation-free once the arena has grown to steady state.
func AppendFrames(dst []byte, frames [][]byte) ([]byte, bool) {
	any := false
	for _, f := range frames {
		if f != nil {
			any = true
			break
		}
	}
	if !any {
		return dst, false
	}
	for _, f := range frames {
		dst = binary.AppendUvarint(dst, uint64(len(f)))
		dst = append(dst, f...)
	}
	return dst, true
}

// DecodeFrames unpacks a wire payload into n per-instance payloads. It
// returns nil when the payload is absent or malformed (wrong frame count,
// truncated frame, or trailing bytes), in which case the caller treats the
// sender as silent everywhere — the multiplexed analogue of the paper's
// "inappropriate message → default" rule.
func DecodeFrames(payload []byte, n int) [][]byte {
	out := make([][]byte, n)
	if !DecodeFramesInto(out, payload) {
		return nil
	}
	return out
}

// DecodeFramesInto is DecodeFrames into caller-owned scratch: it fills
// out (whose length is the expected frame count) with subslices of
// payload and reports whether the payload was well-formed. On a missing
// or malformed payload it returns false with every entry nil — the
// caller treats the sender as silent everywhere. The decoded frames
// alias payload; they live exactly as long as it does.
func DecodeFramesInto(out [][]byte, payload []byte) bool {
	for s := range out {
		out[s] = nil
	}
	if payload == nil {
		return false
	}
	rest := payload
	for s := range out {
		ln, k := binary.Uvarint(rest)
		if k <= 0 || uint64(len(rest)-k) < ln {
			for q := 0; q < s; q++ {
				out[q] = nil
			}
			return false
		}
		rest = rest[k:]
		if ln > 0 {
			out[s] = rest[:ln:ln]
			rest = rest[ln:]
		}
	}
	if len(rest) != 0 {
		for s := range out {
			out[s] = nil
		}
		return false
	}
	return true
}
