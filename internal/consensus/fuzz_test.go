package consensus

import "testing"

// FuzzDecodeFrames: the multiplexing decoder must never panic, and any
// accepted payload must re-encode to an equivalent frame set.
func FuzzDecodeFrames(f *testing.F) {
	f.Add([]byte{1, 5, 0, 2, 7, 7}, 3)
	f.Add([]byte{0, 0}, 2)
	f.Add([]byte{255, 255, 255}, 1)
	f.Fuzz(func(t *testing.T, payload []byte, n int) {
		if n < 1 || n > 64 {
			t.Skip()
		}
		frames := DecodeFrames(payload, n)
		if frames == nil {
			return // rejected: fine
		}
		if len(frames) != n {
			t.Fatalf("accepted payload decoded to %d frames, want %d", len(frames), n)
		}
		// Round-trip: re-encoding and re-decoding must reproduce the frames.
		re := DecodeFrames(EncodeFrames(frames), n)
		if (re == nil) != (EncodeFrames(frames) == nil) {
			t.Fatal("re-decode failed")
		}
		for i := range frames {
			a, b := frames[i], []byte(nil)
			if re != nil {
				b = re[i]
			}
			if len(a) != len(b) {
				// nil and empty both encode as "no message"; allow that.
				if len(a) == 0 && len(b) == 0 {
					continue
				}
				t.Fatalf("frame %d: %v vs %v", i, a, b)
			}
			for j := range a {
				if a[j] != b[j] {
					t.Fatalf("frame %d byte %d mangled", i, j)
				}
			}
		}
	})
}
