package consensus

import (
	"bytes"
	"testing"
	"testing/quick"

	"shiftgears/internal/adversary"
	"shiftgears/internal/core"
	"shiftgears/internal/eigtree"
	"shiftgears/internal/sim"
)

func TestEncodeDecodeFrames(t *testing.T) {
	frames := [][]byte{{1, 2, 3}, nil, {}, {9}}
	payload := EncodeFrames(frames)
	got := DecodeFrames(payload, 4)
	if got == nil {
		t.Fatal("decode failed")
	}
	if !bytes.Equal(got[0], []byte{1, 2, 3}) || got[1] != nil || got[2] != nil || !bytes.Equal(got[3], []byte{9}) {
		t.Fatalf("decoded %v", got)
	}
}

func TestEncodeFramesAllNil(t *testing.T) {
	if EncodeFrames([][]byte{nil, nil}) != nil {
		t.Fatal("all-nil frames must encode to nil (no message)")
	}
}

func TestDecodeFramesRejectsMalformed(t *testing.T) {
	if DecodeFrames(nil, 3) != nil {
		t.Error("nil payload")
	}
	if DecodeFrames([]byte{5, 1, 2}, 1) != nil {
		t.Error("truncated frame accepted")
	}
	good := EncodeFrames([][]byte{{1}, {2}})
	if DecodeFrames(good, 3) != nil {
		t.Error("frame-count mismatch accepted")
	}
	if DecodeFrames(append(good, 0xff), 2) != nil {
		t.Error("trailing bytes accepted")
	}
}

func TestFramesRoundTripProperty(t *testing.T) {
	f := func(a, b, c []byte, skipB bool) bool {
		frames := [][]byte{a, b, c}
		if skipB {
			frames[1] = nil
		}
		payload := EncodeFrames(frames)
		got := DecodeFrames(payload, 3)
		if payload == nil {
			// Only possible when every frame was nil/empty.
			for _, fr := range frames {
				if len(fr) > 0 {
					return false
				}
			}
			return got == nil
		}
		for i := range frames {
			want := frames[i]
			if len(want) == 0 {
				if got[i] != nil {
					return false
				}
				continue
			}
			if !bytes.Equal(got[i], want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func runVector(t *testing.T, alg core.Algorithm, n, tt, b int, inputs []eigtree.Value, faultyIDs []int, strat string, seed int64) []*VectorReplica {
	t.Helper()
	env, err := NewEnv(alg, n, tt, b)
	if err != nil {
		t.Fatal(err)
	}
	isFaulty := map[int]bool{}
	for _, f := range faultyIDs {
		isFaulty[f] = true
	}
	var st adversary.Strategy
	if len(faultyIDs) > 0 {
		st, err = adversary.New(strat, env.Rounds())
		if err != nil {
			t.Fatal(err)
		}
	}
	reps := make([]*VectorReplica, n)
	procs := make([]sim.Processor, n)
	for id := 0; id < n; id++ {
		rep, err := NewVectorReplica(env, id, inputs[id], nil)
		if err != nil {
			t.Fatal(err)
		}
		reps[id] = rep
		if isFaulty[id] {
			procs[id] = NewFaultyVector(rep, st, seed)
		} else {
			procs[id] = rep
		}
	}
	nw, err := sim.NewNetwork(procs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nw.Run(env.Rounds()); err != nil {
		t.Fatal(err)
	}
	for id, rep := range reps {
		if !isFaulty[id] {
			if err := rep.Err(); err != nil {
				t.Fatalf("replica %d: %v", id, err)
			}
		}
	}
	return reps
}

func checkVector(t *testing.T, reps []*VectorReplica, inputs []eigtree.Value, faultyIDs []int) Vector {
	t.Helper()
	isFaulty := map[int]bool{}
	for _, f := range faultyIDs {
		isFaulty[f] = true
	}
	var common Vector
	for id, rep := range reps {
		if isFaulty[id] {
			continue
		}
		vec, ok := rep.Decided()
		if !ok {
			t.Fatalf("replica %d undecided", id)
		}
		if common == nil {
			common = vec
			continue
		}
		for s := range vec {
			if vec[s] != common[s] {
				t.Fatalf("vector disagreement at slot %d: %d vs %d", s, vec[s], common[s])
			}
		}
	}
	for id := range reps {
		if !isFaulty[id] && common[id] != inputs[id] {
			t.Fatalf("slot %d = %d, want the correct processor's input %d", id, common[id], inputs[id])
		}
	}
	return common
}

func TestInteractiveConsistencyFaultFree(t *testing.T) {
	n := 7
	inputs := make([]eigtree.Value, n)
	for i := range inputs {
		inputs[i] = eigtree.Value(i)
	}
	reps := runVector(t, core.Exponential, n, 2, 0, inputs, nil, "", 0)
	vec := checkVector(t, reps, inputs, nil)
	for i := range vec {
		if vec[i] != eigtree.Value(i) {
			t.Fatalf("slot %d = %d", i, vec[i])
		}
	}
}

func TestInteractiveConsistencyUnderByzantineFaults(t *testing.T) {
	n := 7
	inputs := []eigtree.Value{3, 1, 4, 1, 5, 9, 2}
	for _, strat := range []string{"silent", "splitbrain", "garbage", "noise", "collude"} {
		reps := runVector(t, core.Exponential, n, 2, 0, inputs, []int{1, 4}, strat, 5)
		checkVector(t, reps, inputs, []int{1, 4})
	}
}

func TestInteractiveConsistencyWithAlgorithmB(t *testing.T) {
	n := 13
	inputs := make([]eigtree.Value, n)
	for i := range inputs {
		inputs[i] = eigtree.Value(i % 3)
	}
	reps := runVector(t, core.AlgorithmB, n, 3, 2, inputs, []int{0, 5, 10}, "splitbrain", 2)
	checkVector(t, reps, inputs, []int{0, 5, 10})
}

func TestReduceMajority(t *testing.T) {
	if v := (Vector{1, 1, 2, 1, 0}).Reduce(); v != 1 {
		t.Fatalf("Reduce = %d, want 1", v)
	}
	// Ties break toward the smaller value.
	if v := (Vector{2, 2, 1, 1}).Reduce(); v != 1 {
		t.Fatalf("tie Reduce = %d, want 1", v)
	}
}

func TestConsensusValidityViaReduce(t *testing.T) {
	// All correct processors share input 7: Reduce must return 7 no matter
	// what the faulty processors inject.
	n := 7
	inputs := make([]eigtree.Value, n)
	for i := range inputs {
		inputs[i] = 7
	}
	inputs[2], inputs[5] = 0, 1 // faulty processors' inputs are irrelevant
	reps := runVector(t, core.Exponential, n, 2, 0, inputs, []int{2, 5}, "splitbrain", 1)
	vec := checkVector(t, reps, inputs, []int{2, 5})
	if got := vec.Reduce(); got != 7 {
		t.Fatalf("consensus = %d, want 7", got)
	}
}

func TestVectorEnvValidation(t *testing.T) {
	if _, err := NewEnv(core.Exponential, 6, 2, 0); err == nil {
		t.Fatal("n < 3t+1 accepted")
	}
}
