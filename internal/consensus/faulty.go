package consensus

import (
	"math/rand"

	"shiftgears/internal/adversary"
	"shiftgears/internal/sim"
)

// FaultyVector is a Byzantine processor for interactive consistency runs.
// It keeps the multiplexing frames well-formed while lying about the
// content: the adversary strategy is applied to each instance's honest
// payload separately, and the (possibly per-destination, per-instance)
// results are re-framed. Corrupting the framing itself would only ever look
// like silence, so per-instance mutation is the strictly stronger
// adversary.
type FaultyVector struct {
	shadow *VectorReplica
	strat  adversary.Strategy
	rng    *rand.Rand
	n      int
}

var _ sim.Processor = (*FaultyVector)(nil)

// NewFaultyVector wraps a shadow vector replica with a strategy.
func NewFaultyVector(shadow *VectorReplica, strat adversary.Strategy, seed int64) *FaultyVector {
	return &FaultyVector{
		shadow: shadow,
		strat:  strat,
		rng:    rand.New(rand.NewSource(seed ^ int64(shadow.ID()+1)*0x517cc1b7)), //gearsvet:allow seed derives from the run seed and the shadow's ID, so faulty behavior replays identically per configuration
		n:      shadow.env.n,
	}
}

// ID implements sim.Processor.
func (f *FaultyVector) ID() int { return f.shadow.ID() }

// PrepareRound implements sim.Processor.
func (f *FaultyVector) PrepareRound(round int) [][]byte {
	honest := f.shadow.instancePayloads(round)
	// Per instance: mutate the honest broadcast into per-destination
	// payloads, then regroup by destination.
	perDest := make([][][]byte, f.n) // destination → instance → frame
	for j := 0; j < f.n; j++ {
		perDest[j] = make([][]byte, f.n)
	}
	anything := false
	for s := 0; s < f.n; s++ {
		var outbox [][]byte
		if honest[s] != nil {
			outbox = sim.Broadcast(f.n, honest[s])
		}
		mutated := f.strat.Mutate(round, f.shadow.ID(), f.n, outbox, f.rng)
		if mutated == nil {
			continue
		}
		for j := 0; j < f.n; j++ {
			if j < len(mutated) && mutated[j] != nil {
				perDest[j][s] = mutated[j]
				anything = true
			}
		}
	}
	if !anything {
		return nil
	}
	out := make([][]byte, f.n)
	for j := 0; j < f.n; j++ {
		out[j] = EncodeFrames(perDest[j])
	}
	return out
}

// DeliverRound implements sim.Processor.
func (f *FaultyVector) DeliverRound(round int, inbox [][]byte) {
	f.shadow.DeliverRound(round, inbox)
}
