package transport

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"shiftgears/internal/fabric"
	"shiftgears/internal/sim"
)

// floodInstance broadcasts a payload far larger than the shrunken kernel
// socket buffers every local round and checks what it receives.
type floodInstance struct {
	mu      sync.Mutex
	n       int
	payload []byte
	got     int // payload bytes received over the run
}

func (fi *floodInstance) PrepareRound(round int) [][]byte {
	return sim.Broadcast(fi.n, fi.payload)
}

func (fi *floodInstance) DeliverRound(round int, inbox [][]byte) {
	fi.mu.Lock()
	defer fi.mu.Unlock()
	for _, p := range inbox {
		fi.got += len(p)
	}
}

// TestMeshLargePayloadBackpressure is the send-all-then-read deadlock
// reproducer: every node broadcasts a per-tick payload that exceeds the
// deliberately shrunken kernel socket buffers, so an exchange that
// finishes all its sends before its first read wedges the whole mesh —
// each node blocked in Flush because its peers, also blocked in Flush,
// never drain it. The per-peer writer pool overlaps sends with reads
// and must complete the schedule.
func TestMeshLargePayloadBackpressure(t *testing.T) {
	floodMesh(t, WithWriteBufferSize(16<<10))
}

// TestMeshSmallReadBufferBackpressure re-runs the deadlock reproducer
// with the read side also squeezed: a 512-byte bufio layer under the
// shrunken kernel buffers, so every 1 MiB frame crosses the reader in
// thousands of short reads straight into the arena. The vectored writer
// must still overlap those reads with its own sends — buffer sizing on
// either side must never reintroduce the send-all-then-read wedge.
func TestMeshSmallReadBufferBackpressure(t *testing.T) {
	floodMesh(t, WithWriteBufferSize(16<<10), WithReadBufferSize(512))
}

func floodMesh(t *testing.T, opts ...Option) {
	t.Helper()
	const (
		n       = 3
		rounds  = 3
		payload = 1 << 20 // 1 MiB per destination per tick
	)
	big := bytes.Repeat([]byte{0xAB}, payload)

	muxes := make([]*sim.Mux, n)
	insts := make([]*floodInstance, n)
	for id := 0; id < n; id++ {
		id := id
		m, err := sim.NewMux(sim.MuxConfig{
			ID: id, N: n, Window: 1, Rounds: []int{rounds},
			Start: func(inst int) (sim.Instance, error) {
				fi := &floodInstance{n: n, payload: big}
				insts[id] = fi
				return fi, nil
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		muxes[id] = m
	}
	mesh, err := NewMesh(n, opts...)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = mesh.Close() }()

	type result struct {
		stats *sim.Stats
		err   error
	}
	done := make(chan result, 1)
	go func() {
		stats, err := fabric.Run(mesh, muxes)
		done <- result{stats, err}
	}()
	select {
	case res := <-done:
		if res.err != nil {
			t.Fatal(res.err)
		}
		if res.stats.Rounds != rounds {
			t.Fatalf("mesh ran %d ticks, want %d", res.stats.Rounds, rounds)
		}
		if len(res.stats.PerRound) != 0 {
			t.Fatalf("per-round stats recorded without WithPerRoundStats: %d entries", len(res.stats.PerRound))
		}
	case <-time.After(60 * time.Second):
		t.Fatal("mesh deadlocked under socket-buffer back-pressure (send half must not block the read half)")
	}
	for id, fi := range insts {
		if want := n * rounds * payload; fi.got != want {
			t.Fatalf("node %d received %d payload bytes, want %d", id, fi.got, want)
		}
	}
}

// TestRunLargePayloadBackpressure is the single-instance twin: Node.Run
// under the same shrunken-buffer regime must also overlap sends with
// reads.
func TestRunLargePayloadBackpressure(t *testing.T) {
	const (
		n       = 3
		rounds  = 2
		payload = 1 << 20
		sockBuf = 16 << 10
	)
	big := bytes.Repeat([]byte{0xCD}, payload)

	procs := make([]sim.Processor, n)
	insts := make([]*floodNode, n)
	for id := 0; id < n; id++ {
		fn := &floodNode{id: id, n: n, payload: big}
		insts[id] = fn
		procs[id] = fn
	}
	cluster, err := NewCluster(procs, WithWriteBufferSize(sockBuf))
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	done := make(chan error, 1)
	go func() {
		_, err := cluster.Run(rounds)
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("mesh deadlocked under socket-buffer back-pressure")
	}
	for id, fn := range insts {
		if want := n * rounds * payload; fn.got != want {
			t.Fatalf("node %d received %d payload bytes, want %d", id, fn.got, want)
		}
	}
}

// floodNode is floodInstance as a plain sim.Processor (for Node.Run).
type floodNode struct {
	mu      sync.Mutex
	id, n   int
	payload []byte
	got     int
}

func (fn *floodNode) ID() int { return fn.id }

func (fn *floodNode) PrepareRound(round int) [][]byte {
	return sim.Broadcast(fn.n, fn.payload)
}

func (fn *floodNode) DeliverRound(round int, inbox [][]byte) {
	fn.mu.Lock()
	defer fn.mu.Unlock()
	for _, p := range inbox {
		fn.got += len(p)
	}
}

// TestMeshTeardownUnderBackpressure: a node dies mid-tick (its
// connections close) while its peers are pushing payloads larger than
// the shrunken send buffers. The survivors' reads from the dead node
// fail while their writers to each other are still blocked in Flush —
// the error path must tear the tick down and return
// (writerPool.abortTick), not hang joining writers no one will ever
// drain.
func TestMeshTeardownUnderBackpressure(t *testing.T) {
	const (
		n       = 3
		payload = 1 << 20
		sockBuf = 16 << 10
	)
	big := bytes.Repeat([]byte{0xEF}, payload)

	muxes := make([]*sim.Mux, n)
	for id := 0; id < n; id++ {
		m, err := sim.NewMux(sim.MuxConfig{
			ID: id, N: n, Window: 1, Rounds: []int{64},
			Start: func(inst int) (sim.Instance, error) {
				return &floodInstance{n: n, payload: big}, nil
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		muxes[id] = m
	}
	mesh, err := NewMesh(n, WithWriteBufferSize(sockBuf))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = mesh.Close() }()

	done := make(chan error, 1)
	go func() {
		_, err := fabric.Run(mesh, muxes)
		done <- err
	}()
	// Sever node 0 a few ticks in, mid-flood.
	time.Sleep(150 * time.Millisecond)
	_ = mesh.nodes[0].Close()

	select {
	case err := <-done:
		if err == nil {
			t.Fatal("severed node not surfaced")
		}
	case <-time.After(60 * time.Second):
		t.Fatal("mesh hung joining writers after a read failure (error path must tear the tick down)")
	}
}
