package transport

import (
	"fmt"
	"sync"

	"shiftgears/internal/sim"
)

// Cluster runs a set of processors as transport Nodes over a real loopback
// TCP mesh — the same lockstep execution as sim.Network, but every message
// crosses an actual socket. It exists for tests, examples, and single-host
// demonstrations; for multi-host deployments use cmd/node with one process
// per processor.
type Cluster struct {
	nodes []*Node
}

// NewCluster listens on ephemeral loopback ports for every processor and
// connects the full mesh.
func NewCluster(procs []sim.Processor) (*Cluster, error) {
	n := len(procs)
	c := &Cluster{nodes: make([]*Node, n)}
	addrs := make([]string, n)
	for i, p := range procs {
		if p.ID() != i {
			c.Close()
			return nil, fmt.Errorf("transport: processor at index %d reports id %d", i, p.ID())
		}
		node, err := Listen(p, n, "127.0.0.1:0")
		if err != nil {
			c.Close()
			return nil, err
		}
		c.nodes[i] = node
		addrs[i] = node.Addr()
	}

	var wg sync.WaitGroup
	errs := make([]error, n)
	for i, node := range c.nodes {
		wg.Add(1)
		go func(i int, node *Node) {
			defer wg.Done()
			errs[i] = node.Connect(addrs)
		}(i, node)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			c.Close()
			return nil, err
		}
	}
	return c, nil
}

// Run drives all nodes through the given number of rounds concurrently and
// returns node 0's traffic statistics (all nodes see the same totals on a
// correct mesh up to per-destination payload differences).
func (c *Cluster) Run(rounds int) (*sim.Stats, error) {
	var wg sync.WaitGroup
	stats := make([]*sim.Stats, len(c.nodes))
	errs := make([]error, len(c.nodes))
	for i, node := range c.nodes {
		wg.Add(1)
		go func(i int, node *Node) {
			defer wg.Done()
			stats[i], errs[i] = node.Run(rounds)
		}(i, node)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("transport: node %d: %w", i, err)
		}
	}
	return stats[0], nil
}

// Close shuts every node down.
func (c *Cluster) Close() {
	for _, node := range c.nodes {
		if node != nil {
			_ = node.Close()
		}
	}
}
