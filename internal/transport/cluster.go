package transport

import (
	"fmt"
	"sync"

	"shiftgears/internal/sim"
)

// Cluster runs a set of processors as transport Nodes over a real loopback
// TCP mesh — the same lockstep execution as sim.Network, but every message
// crosses an actual socket. It exists for tests, examples, and single-host
// demonstrations; for multi-host deployments use cmd/node with one process
// per processor.
type Cluster struct {
	nodes []*Node
}

// NewCluster listens on ephemeral loopback ports for every processor and
// connects the full mesh.
func NewCluster(procs []sim.Processor, opts ...Option) (*Cluster, error) {
	n := len(procs)
	c := &Cluster{nodes: make([]*Node, n)}
	addrs := make([]string, n)
	for i, p := range procs {
		if p.ID() != i {
			c.Close()
			return nil, fmt.Errorf("transport: processor at index %d reports id %d", i, p.ID())
		}
		node, err := Listen(p, n, "127.0.0.1:0", opts...)
		if err != nil {
			c.Close()
			return nil, err
		}
		c.nodes[i] = node
		addrs[i] = node.Addr()
	}

	if err := connectAll(c.nodes, addrs); err != nil {
		c.Close()
		return nil, err
	}
	return c, nil
}

// connectAll establishes every node's full mesh concurrently (nodes dial
// smaller ids and accept larger ones, so they must connect in parallel).
func connectAll(nodes []*Node, addrs []string) error {
	var wg sync.WaitGroup
	errs := make([]error, len(nodes))
	for i, node := range nodes {
		wg.Add(1)
		go func(i int, node *Node) {
			defer wg.Done()
			errs[i] = node.Connect(addrs)
		}(i, node)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// runAll drives every node concurrently. The first node to fail tears
// the mesh down (closing all connections), which unblocks peers stuck in
// the lockstep barrier waiting for the failed node's frames; that first
// error is the one reported. A node that completes its schedule also
// closes its own connections: on an aligned mesh every node finishes the
// same tick and nothing is left to exchange, while on a divergent mesh —
// one node's (gear-resolved) schedule ending before the others' — the
// stragglers' pending reads fail with a teardown error instead of
// blocking forever on frames that will never come.
func (c *Cluster) runAll(run func(*Node) (*sim.Stats, error)) (*sim.Stats, error) {
	var wg sync.WaitGroup
	stats := make([]*sim.Stats, len(c.nodes))
	var once sync.Once
	var firstErr error
	var firstNode int
	for i, node := range c.nodes {
		wg.Add(1)
		go func(i int, node *Node) {
			defer wg.Done()
			var err error
			stats[i], err = run(node)
			if err != nil {
				once.Do(func() {
					firstNode, firstErr = i, err
					c.Close()
				})
			} else {
				_ = node.Close()
			}
		}(i, node)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, fmt.Errorf("transport: node %d: %w", firstNode, firstErr)
	}
	return stats[0], nil
}

// Run drives all nodes through the given number of rounds concurrently and
// returns node 0's traffic statistics: the frames node 0 received (all
// nodes see the same totals on a correct mesh up to per-destination
// payload differences). Multiplexed schedules are driven by the fabric
// runtime instead: fabric.Run over a NewMesh.
func (c *Cluster) Run(rounds int) (*sim.Stats, error) {
	return c.runAll(func(node *Node) (*sim.Stats, error) { return node.Run(rounds) })
}

// Close shuts every node down.
func (c *Cluster) Close() {
	for _, node := range c.nodes {
		if node != nil {
			_ = node.Close()
		}
	}
}
