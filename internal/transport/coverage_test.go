package transport

import (
	"testing"

	"shiftgears/internal/sim"
)

func TestConnectAddrCountMismatch(t *testing.T) {
	node, err := Listen(&echoNode{id: 0, n: 3}, 3, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = node.Close() }()
	if err := node.Connect([]string{"a", "b"}); err == nil {
		t.Fatal("addr count mismatch accepted")
	}
}

func TestNodeRunValidation(t *testing.T) {
	procs := []sim.Processor{&echoNode{id: 0, n: 2}, &echoNode{id: 1, n: 2}}
	cluster, err := NewCluster(procs)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	if _, err := cluster.nodes[0].Run(0); err == nil {
		t.Fatal("zero rounds accepted")
	}
}

func TestClusterRejectsMisnumberedProcessors(t *testing.T) {
	procs := []sim.Processor{&echoNode{id: 1, n: 2}, &echoNode{id: 0, n: 2}}
	if _, err := NewCluster(procs); err == nil {
		t.Fatal("misnumbered processors accepted")
	}
}

func TestNodeAddrReportsEphemeralPort(t *testing.T) {
	node, err := Listen(&echoNode{id: 0, n: 2}, 2, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = node.Close() }()
	if node.Addr() == "127.0.0.1:0" || node.Addr() == "" {
		t.Fatalf("Addr() = %q, want a concrete port", node.Addr())
	}
}

// TestSilentProtocolOverTCP: rounds where nobody sends still advance the
// lockstep barrier (nil frames flow).
func TestSilentProtocolOverTCP(t *testing.T) {
	procs := []sim.Processor{&muteNode{0}, &muteNode{1}, &muteNode{2}}
	cluster, err := NewCluster(procs)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	stats, err := cluster.Run(3)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rounds != 3 || stats.Messages != 0 {
		t.Fatalf("stats = %+v", stats)
	}
}

type muteNode struct{ id int }

func (p *muteNode) ID() int                    { return p.id }
func (p *muteNode) PrepareRound(int) [][]byte  { return nil }
func (p *muteNode) DeliverRound(int, [][]byte) {}
