package transport

import (
	"fmt"
	"sync"

	"shiftgears/internal/fabric"
	"shiftgears/internal/sim"
)

// Mesh adapts TCP mesh nodes to the fabric exchange contract, so the
// single drive loop (fabric.Run) pipelines multiplexed schedules over
// real sockets. Two shapes:
//
//   - NewMesh hosts every node of the cluster in one process over
//     loopback — the test/benchmark/single-host deployment, the
//     successor of the old Cluster.RunMux.
//   - JoinMesh hosts one already-connected node — the multi-process
//     deployment (cmd/logserver), every replica its own OS process,
//     each process running fabric.Run over its own single-node Mesh.
//
// Each hosted node exchanges its tick through a persistent goroutine
// (writer fan-out and peer reads overlap across nodes exactly as the
// old per-node drive loops did); the first node to fail tears every
// hosted node's connections down, so no sibling is left blocked in the
// lockstep barrier.
type Mesh struct {
	n     int
	local []int
	nodes []*Node
	pools []*writerPool
	reqs  []chan meshTick
	acks  []chan error

	closeOnce sync.Once
	failOnce  sync.Once
	failErr   error
}

var _ fabric.Fabric = (*Mesh)(nil)

// meshTick is one node's share of an Exchange.
type meshTick struct {
	tick   int
	frames []sim.MuxFrame
	ins    [][][]byte
}

// NewMesh listens on ephemeral loopback ports for every node of an
// n-node cluster and connects the full mesh.
func NewMesh(n int, opts ...Option) (*Mesh, error) {
	nodes := make([]*Node, n)
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		node, err := ListenNode(i, n, "127.0.0.1:0", opts...)
		if err != nil {
			closeNodes(nodes)
			return nil, err
		}
		nodes[i] = node
		addrs[i] = node.Addr()
	}
	if err := connectAll(nodes, addrs); err != nil {
		closeNodes(nodes)
		return nil, err
	}
	return newMesh(nodes), nil
}

// JoinMesh hosts one already-connected node (Listen or ListenNode, then
// Connect) — this process's share of a multi-process mesh.
func JoinMesh(node *Node) *Mesh {
	return newMesh([]*Node{node})
}

func newMesh(nodes []*Node) *Mesh {
	m := &Mesh{nodes: nodes, n: nodes[0].n}
	m.local = make([]int, len(nodes))
	m.pools = make([]*writerPool, len(nodes))
	m.reqs = make([]chan meshTick, len(nodes))
	m.acks = make([]chan error, len(nodes))
	for k, node := range nodes {
		m.local[k] = node.id
		m.pools[k] = newWriterPool(node)
		m.reqs[k] = make(chan meshTick)
		m.acks[k] = make(chan error, 1)
		go func(k int, node *Node, wp *writerPool) {
			for req := range m.reqs[k] {
				err := node.exchangeTick(wp, req.tick, req.frames, req.ins)
				if err != nil {
					// Tear the whole mesh down before acking: a sibling
					// may be blocked reading a peer this failure already
					// silenced, and only closed connections unblock it.
					m.fail(fmt.Errorf("transport: node %d: %w", node.id, err))
				}
				m.acks[k] <- err
			}
		}(k, node, m.pools[k])
	}
	return m
}

// N implements fabric.Fabric.
func (m *Mesh) N() int { return m.n }

// Local implements fabric.Fabric.
func (m *Mesh) Local() []int { return m.local }

// Exchange implements fabric.Fabric: every hosted node runs its tick
// concurrently (sends to one node's peers overlap its siblings' reads,
// which is what lets a loopback mesh of lockstep nodes make progress at
// all). The first failure wins and is reported once all nodes returned.
func (m *Mesh) Exchange(tick int, outs [][]sim.MuxFrame, ins [][][][]byte) error {
	for k, frames := range outs {
		if frames == nil {
			// A wedged node stops producing frames, but its peers block
			// reading them — a real mesh cannot carry a mute participant.
			return fmt.Errorf("transport: node %d produced no frames for tick %d: %w", m.local[k], tick, fabric.ErrWedged)
		}
	}
	if len(m.nodes) == 1 {
		return m.nodes[0].exchangeTick(m.pools[0], tick, outs[0], ins[0])
	}
	for k := range m.nodes {
		m.reqs[k] <- meshTick{tick: tick, frames: outs[k], ins: ins[k]}
	}
	failed := false
	for k := range m.nodes {
		if err := <-m.acks[k]; err != nil {
			failed = true
		}
	}
	if failed {
		return m.failErr
	}
	return nil
}

// fail records the mesh's first error and severs every hosted node.
func (m *Mesh) fail(err error) {
	m.failOnce.Do(func() {
		m.failErr = err
		closeNodes(m.nodes)
	})
}

// Close implements fabric.Fabric: it stops the exchange goroutines,
// closes the writer pools, and shuts every hosted node down. Safe to
// call twice; must not be called concurrently with Exchange.
func (m *Mesh) Close() error {
	m.closeOnce.Do(func() {
		for _, reqs := range m.reqs {
			close(reqs)
		}
		for _, wp := range m.pools {
			wp.close()
		}
		closeNodes(m.nodes)
	})
	return nil
}

func closeNodes(nodes []*Node) {
	for _, node := range nodes {
		if node != nil {
			_ = node.Close()
		}
	}
}
