package transport

import (
	"bytes"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"shiftgears/internal/fabric"
	"shiftgears/internal/sim"
)

// muxTag broadcasts [instance, round] per local round and records inboxes
// (the transport twin of the fabric package's test instance).
type muxTag struct {
	mu   sync.Mutex
	inst int
	n    int
	seen [][]byte
}

func (ti *muxTag) PrepareRound(round int) [][]byte {
	return sim.Broadcast(ti.n, []byte{byte(ti.inst), byte(round)})
}

func (ti *muxTag) DeliverRound(round int, inbox [][]byte) {
	ti.mu.Lock()
	defer ti.mu.Unlock()
	var flat []byte
	for _, p := range inbox {
		flat = append(flat, p...)
	}
	ti.seen = append(ti.seen, flat)
}

func buildTagMuxes(t *testing.T, n, window int, rounds []int) ([]*sim.Mux, [][]*muxTag) {
	t.Helper()
	muxes := make([]*sim.Mux, n)
	insts := make([][]*muxTag, n)
	for id := 0; id < n; id++ {
		id := id
		insts[id] = make([]*muxTag, len(rounds))
		m, err := sim.NewMux(sim.MuxConfig{
			ID: id, N: n, Window: window, Rounds: rounds,
			Start: func(inst int) (sim.Instance, error) {
				ti := &muxTag{inst: inst, n: n}
				insts[id][inst] = ti
				return ti, nil
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		muxes[id] = m
	}
	return muxes, insts
}

// TestMuxOverTCPMatchesSim pipelines the same multiplexed schedule over a
// loopback mesh and over the in-process fabric — the same drive loop,
// different substrate; every instance must see byte-identical inboxes.
func TestMuxOverTCPMatchesSim(t *testing.T) {
	const n, window = 4, 2
	rounds := []int{2, 3, 2, 3, 2}

	simMuxes, simInsts := buildTagMuxes(t, n, window, rounds)
	simFab, err := fabric.NewSim(n)
	if err != nil {
		t.Fatal(err)
	}
	ticks := sim.MuxTicks(rounds, window)
	if _, err := fabric.Run(simFab, simMuxes); err != nil {
		t.Fatal(err)
	}

	tcpMuxes, tcpInsts := buildTagMuxes(t, n, window, rounds)
	mesh, err := NewMesh(n)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = mesh.Close() }()
	stats, err := fabric.Run(mesh, tcpMuxes)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rounds != ticks {
		t.Fatalf("TCP mux ran %d ticks, want %d", stats.Rounds, ticks)
	}

	for id := 0; id < n; id++ {
		for inst := range rounds {
			a, b := simInsts[id][inst], tcpInsts[id][inst]
			if len(a.seen) != len(b.seen) {
				t.Fatalf("node %d instance %d: %d sim rounds vs %d TCP rounds", id, inst, len(a.seen), len(b.seen))
			}
			for r := range a.seen {
				if !bytes.Equal(a.seen[r], b.seen[r]) {
					t.Fatalf("node %d instance %d round %d: sim %v vs TCP %v", id, inst, r+1, a.seen[r], b.seen[r])
				}
			}
		}
	}
}

// TestMeshLazyRoundsMatchesStatic: a mesh whose round counts resolve
// lazily (RoundsFor) behaves identically to the static schedule — the
// wire format carries instance+round already, so nothing changes on the
// frames.
func TestMeshLazyRoundsMatchesStatic(t *testing.T) {
	const n, window = 3, 2
	rounds := []int{2, 1, 3}

	muxes := make([]*sim.Mux, n)
	insts := make([][]*muxTag, n)
	for id := 0; id < n; id++ {
		id := id
		insts[id] = make([]*muxTag, len(rounds))
		m, err := sim.NewMux(sim.MuxConfig{
			ID: id, N: n, Window: window,
			Instances: len(rounds),
			RoundsFor: func(inst int) int { return rounds[inst] },
			Start: func(inst int) (sim.Instance, error) {
				ti := &muxTag{inst: inst, n: n}
				insts[id][inst] = ti
				return ti, nil
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		muxes[id] = m
	}
	mesh, err := NewMesh(n)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = mesh.Close() }()
	stats, err := fabric.Run(mesh, muxes)
	if err != nil {
		t.Fatal(err)
	}
	if want := sim.MuxTicks(rounds, window); stats.Rounds != want {
		t.Fatalf("lazy mesh ran %d ticks, want %d", stats.Rounds, want)
	}
	for id := 0; id < n; id++ {
		for inst, ti := range insts[id] {
			if len(ti.seen) != rounds[inst] {
				t.Fatalf("node %d instance %d saw %d rounds, want %d", id, inst, len(ti.seen), rounds[inst])
			}
		}
	}
}

// TestMeshDivergentLazyRoundsFailsFast: nodes resolving different round
// counts for the same instance — a divergent gear policy — must fail the
// mesh loudly, not deadlock. On an in-process mesh the runtime's
// cross-node validation catches both shapes (mid-schedule mismatch and
// early finish) before a byte moves, uniformly with the other fabrics.
func TestMeshDivergentLazyRoundsFailsFast(t *testing.T) {
	cases := []struct {
		name string
		// divergent round count node 0 resolves for instance 1 (others use
		// 3); followup is the round count of a trailing third instance, 0
		// meaning no third instance.
		rounds, followup int
	}{
		{"mid-schedule mismatch", 1, 3},
		{"early finish", 1, 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			const n = 3
			instances := 2
			if c.followup > 0 {
				instances = 3
			}
			muxes := make([]*sim.Mux, n)
			for id := 0; id < n; id++ {
				id := id
				m, err := sim.NewMux(sim.MuxConfig{
					ID: id, N: n, Window: 1,
					Instances: instances,
					RoundsFor: func(inst int) int {
						switch {
						case inst == 1 && id == 0:
							return c.rounds
						case inst == 2:
							return c.followup
						default:
							return 3
						}
					},
					Start: func(inst int) (sim.Instance, error) {
						return &muxTag{inst: inst, n: n}, nil
					},
				})
				if err != nil {
					t.Fatal(err)
				}
				muxes[id] = m
			}
			mesh, err := NewMesh(n)
			if err != nil {
				t.Fatal(err)
			}
			defer func() { _ = mesh.Close() }()
			done := make(chan error, 1)
			go func() {
				_, err := fabric.Run(mesh, muxes)
				done <- err
			}()
			select {
			case err := <-done:
				if err == nil {
					t.Fatal("divergent schedules not surfaced")
				}
				if !errors.Is(err, fabric.ErrDiverged) {
					t.Fatalf("divergence error unclear: %v", err)
				}
			case <-time.After(30 * time.Second):
				t.Fatal("divergent schedules deadlocked the mesh")
			}
		})
	}
}

// TestJoinMeshWireDivergenceGuard: in a multi-process deployment no
// runtime sees more than its own schedule, so divergence must surface at
// the wire — the frame instance/round mismatch error — instead of
// deadlocking. Three single-node fabrics (one per "process") run
// divergent lazy schedules over one real mesh.
func TestJoinMeshWireDivergenceGuard(t *testing.T) {
	const n = 3
	nodes := make([]*Node, n)
	addrs := make([]string, n)
	for id := 0; id < n; id++ {
		node, err := ListenNode(id, n, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		nodes[id] = node
		addrs[id] = node.Addr()
	}
	if err := connectAll(nodes, addrs); err != nil {
		t.Fatal(err)
	}

	errs := make(chan error, n)
	for id := 0; id < n; id++ {
		id := id
		m, err := sim.NewMux(sim.MuxConfig{
			ID: id, N: n, Window: 1,
			Instances: 3,
			RoundsFor: func(inst int) int {
				if inst == 1 && id == 0 {
					return 1 // node 0's gear resolves short: divergence
				}
				return 3
			},
			Start: func(inst int) (sim.Instance, error) {
				return &muxTag{inst: inst, n: n}, nil
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		go func() {
			mesh := JoinMesh(nodes[id])
			defer func() { _ = mesh.Close() }()
			_, err := fabric.Run(mesh, []*sim.Mux{m})
			errs <- err
		}()
	}

	sawWireGuard := false
	for i := 0; i < n; i++ {
		select {
		case err := <-errs:
			if err != nil && strings.Contains(err.Error(), "sent frame") {
				sawWireGuard = true
			}
		case <-time.After(30 * time.Second):
			t.Fatal("divergent multi-process mesh deadlocked")
		}
	}
	if !sawWireGuard {
		t.Fatal("no node reported the frame instance/round mismatch wire guard")
	}
}

// TestMeshPerRoundStatsOptIn: the runtime's per-round trail over the
// mesh mirrors the other fabrics' — opt-in, aggregates always on.
func TestMeshPerRoundStatsOptIn(t *testing.T) {
	const n, window = 3, 2
	rounds := []int{2, 2, 2}
	muxes, _ := buildTagMuxes(t, n, window, rounds)
	mesh, err := NewMesh(n)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = mesh.Close() }()
	stats, err := fabric.Run(mesh, muxes, fabric.WithPerRoundStats())
	if err != nil {
		t.Fatal(err)
	}
	want := sim.MuxTicks(rounds, window)
	if len(stats.PerRound) != want {
		t.Fatalf("opt-in per-round stats carried %d entries, want %d", len(stats.PerRound), want)
	}
	if stats.Messages == 0 || stats.Bytes == 0 {
		t.Fatalf("aggregates missing: %+v", stats)
	}
}
