package transport

import (
	"bytes"
	"sync"
	"testing"

	"shiftgears/internal/sim"
)

// muxTag broadcasts [instance, round] per local round and records inboxes
// (the transport twin of the sim package's mux test instance).
type muxTag struct {
	mu   sync.Mutex
	inst int
	n    int
	seen [][]byte
}

func (ti *muxTag) PrepareRound(round int) [][]byte {
	return sim.Broadcast(ti.n, []byte{byte(ti.inst), byte(round)})
}

func (ti *muxTag) DeliverRound(round int, inbox [][]byte) {
	ti.mu.Lock()
	defer ti.mu.Unlock()
	var flat []byte
	for _, p := range inbox {
		flat = append(flat, p...)
	}
	ti.seen = append(ti.seen, flat)
}

func buildTagMuxes(t *testing.T, n, window int, rounds []int) ([]sim.Processor, [][]*muxTag) {
	t.Helper()
	procs := make([]sim.Processor, n)
	insts := make([][]*muxTag, n)
	for id := 0; id < n; id++ {
		id := id
		insts[id] = make([]*muxTag, len(rounds))
		m, err := sim.NewMux(sim.MuxConfig{
			ID: id, N: n, Window: window, Rounds: rounds,
			Start: func(inst int) (sim.Instance, error) {
				ti := &muxTag{inst: inst, n: n}
				insts[id][inst] = ti
				return ti, nil
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		procs[id] = m
	}
	return procs, insts
}

// TestMuxOverTCPMatchesSim pipelines the same multiplexed schedule over a
// loopback mesh and over the in-process network; every instance must see
// byte-identical inboxes in both modes.
func TestMuxOverTCPMatchesSim(t *testing.T) {
	const n, window = 4, 2
	rounds := []int{2, 3, 2, 3, 2}

	simProcs, simInsts := buildTagMuxes(t, n, window, rounds)
	nw, err := sim.NewNetwork(simProcs)
	if err != nil {
		t.Fatal(err)
	}
	ticks := sim.MuxTicks(rounds, window)
	if _, err := nw.Run(ticks); err != nil {
		t.Fatal(err)
	}

	tcpProcs, tcpInsts := buildTagMuxes(t, n, window, rounds)
	cluster, err := NewCluster(tcpProcs)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	stats, err := cluster.RunMux()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rounds != ticks {
		t.Fatalf("TCP mux ran %d ticks, want %d", stats.Rounds, ticks)
	}

	for id := 0; id < n; id++ {
		for inst := range rounds {
			a, b := simInsts[id][inst], tcpInsts[id][inst]
			if len(a.seen) != len(b.seen) {
				t.Fatalf("node %d instance %d: %d sim rounds vs %d TCP rounds", id, inst, len(a.seen), len(b.seen))
			}
			for r := range a.seen {
				if !bytes.Equal(a.seen[r], b.seen[r]) {
					t.Fatalf("node %d instance %d round %d: sim %v vs TCP %v", id, inst, r+1, a.seen[r], b.seen[r])
				}
			}
		}
	}
}

// TestRunMuxRequiresMuxProcessor: a plain processor cannot drive the
// multiplexed schedule.
func TestRunMuxRequiresMuxProcessor(t *testing.T) {
	procs := []sim.Processor{&echoNode{id: 0, n: 2}, &echoNode{id: 1, n: 2}}
	cluster, err := NewCluster(procs)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	if _, err := cluster.nodes[0].RunMux(); err == nil {
		t.Fatal("RunMux accepted a non-mux processor")
	}
}
