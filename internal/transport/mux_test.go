package transport

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"

	"shiftgears/internal/sim"
)

// muxTag broadcasts [instance, round] per local round and records inboxes
// (the transport twin of the sim package's mux test instance).
type muxTag struct {
	mu   sync.Mutex
	inst int
	n    int
	seen [][]byte
}

func (ti *muxTag) PrepareRound(round int) [][]byte {
	return sim.Broadcast(ti.n, []byte{byte(ti.inst), byte(round)})
}

func (ti *muxTag) DeliverRound(round int, inbox [][]byte) {
	ti.mu.Lock()
	defer ti.mu.Unlock()
	var flat []byte
	for _, p := range inbox {
		flat = append(flat, p...)
	}
	ti.seen = append(ti.seen, flat)
}

func buildTagMuxes(t *testing.T, n, window int, rounds []int) ([]sim.Processor, [][]*muxTag) {
	t.Helper()
	procs := make([]sim.Processor, n)
	insts := make([][]*muxTag, n)
	for id := 0; id < n; id++ {
		id := id
		insts[id] = make([]*muxTag, len(rounds))
		m, err := sim.NewMux(sim.MuxConfig{
			ID: id, N: n, Window: window, Rounds: rounds,
			Start: func(inst int) (sim.Instance, error) {
				ti := &muxTag{inst: inst, n: n}
				insts[id][inst] = ti
				return ti, nil
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		procs[id] = m
	}
	return procs, insts
}

// TestMuxOverTCPMatchesSim pipelines the same multiplexed schedule over a
// loopback mesh and over the in-process network; every instance must see
// byte-identical inboxes in both modes.
func TestMuxOverTCPMatchesSim(t *testing.T) {
	const n, window = 4, 2
	rounds := []int{2, 3, 2, 3, 2}

	simProcs, simInsts := buildTagMuxes(t, n, window, rounds)
	nw, err := sim.NewNetwork(simProcs)
	if err != nil {
		t.Fatal(err)
	}
	ticks := sim.MuxTicks(rounds, window)
	if _, err := nw.Run(ticks); err != nil {
		t.Fatal(err)
	}

	tcpProcs, tcpInsts := buildTagMuxes(t, n, window, rounds)
	cluster, err := NewCluster(tcpProcs)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	stats, err := cluster.RunMux()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rounds != ticks {
		t.Fatalf("TCP mux ran %d ticks, want %d", stats.Rounds, ticks)
	}

	for id := 0; id < n; id++ {
		for inst := range rounds {
			a, b := simInsts[id][inst], tcpInsts[id][inst]
			if len(a.seen) != len(b.seen) {
				t.Fatalf("node %d instance %d: %d sim rounds vs %d TCP rounds", id, inst, len(a.seen), len(b.seen))
			}
			for r := range a.seen {
				if !bytes.Equal(a.seen[r], b.seen[r]) {
					t.Fatalf("node %d instance %d round %d: sim %v vs TCP %v", id, inst, r+1, a.seen[r], b.seen[r])
				}
			}
		}
	}
}

// TestRunMuxRequiresMuxProcessor: a plain processor cannot drive the
// multiplexed schedule.
func TestRunMuxRequiresMuxProcessor(t *testing.T) {
	procs := []sim.Processor{&echoNode{id: 0, n: 2}, &echoNode{id: 1, n: 2}}
	cluster, err := NewCluster(procs)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	if _, err := cluster.nodes[0].RunMux(); err == nil {
		t.Fatal("RunMux accepted a non-mux processor")
	}
}

// TestRunMuxLazyRoundsMatchesStatic: a mesh whose round counts resolve
// lazily (RoundsFor) behaves identically to the static schedule — the
// wire format carries instance+round already, so nothing changes on the
// frames.
func TestRunMuxLazyRoundsMatchesStatic(t *testing.T) {
	const n, window = 3, 2
	rounds := []int{2, 1, 3}

	procs := make([]sim.Processor, n)
	insts := make([][]*muxTag, n)
	for id := 0; id < n; id++ {
		id := id
		insts[id] = make([]*muxTag, len(rounds))
		m, err := sim.NewMux(sim.MuxConfig{
			ID: id, N: n, Window: window,
			Instances: len(rounds),
			RoundsFor: func(inst int) int { return rounds[inst] },
			Start: func(inst int) (sim.Instance, error) {
				ti := &muxTag{inst: inst, n: n}
				insts[id][inst] = ti
				return ti, nil
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		procs[id] = m
	}
	cluster, err := NewCluster(procs)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	stats, err := cluster.RunMux()
	if err != nil {
		t.Fatal(err)
	}
	if want := sim.MuxTicks(rounds, window); stats.Rounds != want {
		t.Fatalf("lazy mesh ran %d ticks, want %d", stats.Rounds, want)
	}
	for id := 0; id < n; id++ {
		for inst, ti := range insts[id] {
			if len(ti.seen) != rounds[inst] {
				t.Fatalf("node %d instance %d saw %d rounds, want %d", id, inst, len(ti.seen), rounds[inst])
			}
		}
	}
}

// TestRunMuxDivergentLazyRoundsFailsFast: nodes resolving different round
// counts for the same instance — a divergent gear policy — must fail the
// mesh loudly, not deadlock. Mid-schedule divergence hits the frame
// instance/round mismatch check; divergence that ends one node's schedule
// early surfaces as a teardown error when the finished node closes its
// connections and the stragglers' reads fail.
func TestRunMuxDivergentLazyRoundsFailsFast(t *testing.T) {
	cases := []struct {
		name string
		// divergent round count node 0 resolves for instance 1 (others use
		// 3); followup is the round count of a trailing third instance, 0
		// meaning no third instance.
		rounds, followup int
	}{
		// Node 0 still has instance 2 after the mismatch: its frames for
		// instance 2 arrive while peers expect instance 1 → header check.
		{"mid-schedule mismatch", 1, 3},
		// Instance 1 is last: node 0 finishes early and closes; peers'
		// reads fail instead of blocking forever.
		{"early finish", 1, 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			const n = 3
			instances := 2
			if c.followup > 0 {
				instances = 3
			}
			procs := make([]sim.Processor, n)
			for id := 0; id < n; id++ {
				id := id
				m, err := sim.NewMux(sim.MuxConfig{
					ID: id, N: n, Window: 1,
					Instances: instances,
					RoundsFor: func(inst int) int {
						switch {
						case inst == 1 && id == 0:
							return c.rounds
						case inst == 2:
							return c.followup
						default:
							return 3
						}
					},
					Start: func(inst int) (sim.Instance, error) {
						return &muxTag{inst: inst, n: n}, nil
					},
				})
				if err != nil {
					t.Fatal(err)
				}
				procs[id] = m
			}
			cluster, err := NewCluster(procs)
			if err != nil {
				t.Fatal(err)
			}
			defer cluster.Close()
			done := make(chan error, 1)
			go func() {
				_, err := cluster.RunMux()
				done <- err
			}()
			select {
			case err := <-done:
				if err == nil {
					t.Fatal("divergent schedules not surfaced")
				}
				if !strings.Contains(err.Error(), "sent frame") &&
					!strings.Contains(err.Error(), "recv from") &&
					!strings.Contains(err.Error(), "send") {
					t.Fatalf("divergence error unclear: %v", err)
				}
			case <-time.After(30 * time.Second):
				t.Fatal("divergent schedules deadlocked the mesh")
			}
		})
	}
}

// TestRunMuxPerRoundStatsOptIn: the transport's per-round trail mirrors
// the sim network's — opt-in via WithPerRoundStats, aggregates always on.
func TestRunMuxPerRoundStatsOptIn(t *testing.T) {
	const n, window = 3, 2
	rounds := []int{2, 2, 2}
	procs, _ := buildTagMuxes(t, n, window, rounds)
	cluster, err := NewCluster(procs, WithPerRoundStats())
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	stats, err := cluster.RunMux()
	if err != nil {
		t.Fatal(err)
	}
	want := sim.MuxTicks(rounds, window)
	if len(stats.PerRound) != want {
		t.Fatalf("opt-in per-round stats carried %d entries, want %d", len(stats.PerRound), want)
	}
	if stats.Messages == 0 || stats.Bytes == 0 {
		t.Fatalf("aggregates missing: %+v", stats)
	}
}
