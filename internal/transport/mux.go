package transport

import (
	"fmt"

	"shiftgears/internal/sim"
)

// sendJob is one tick's worth of frames for one peer: the writer emits
// every frame in order, then flushes, so each peer connection carries one
// coalesced burst per tick.
type sendJob struct {
	frames []sim.MuxFrame
	peer   int
}

// writerPool runs one persistent writer goroutine per remote peer so the
// send and receive halves of a tick overlap. The old drive loop wrote all
// frames to every peer before reading any; once a tick's payload outgrew
// the kernel socket buffers every node of the mesh blocked in Flush while
// its peers blocked in Flush — a distributed deadlock the lockstep
// barrier could never escape. With per-peer writers each node's reads
// drain its peers' sockets while its own writes are in flight, so the
// cycle cannot form: a reader blocked on peer p waits only for p's
// dedicated writer, which writes regardless of what p's other
// connections are doing.
//
// Ordering guarantee: within a tick, frames to one peer are written in
// increasing instance order and flushed once; across ticks, tick t's
// writes complete (wait returns) before tick t+1's are dispatched. Each
// connection therefore carries exactly the byte stream of the sequential
// loop — receivers still read frames in instance order, tick by tick —
// only the interleaving across connections changed.
type writerPool struct {
	nd   *Node
	jobs []chan sendJob // per peer; nil at self
	errs []chan error   // per peer, cap 1; nil at self
}

func newWriterPool(nd *Node) *writerPool {
	wp := &writerPool{
		nd:   nd,
		jobs: make([]chan sendJob, nd.n),
		errs: make([]chan error, nd.n),
	}
	for id, p := range nd.peers {
		if id == nd.id {
			continue
		}
		jobs := make(chan sendJob)
		errs := make(chan error, 1)
		wp.jobs[id], wp.errs[id] = jobs, errs
		go func(p *peer) {
			for job := range jobs {
				errs <- wp.send(p, job)
			}
		}(p)
	}
	return wp
}

// send writes one tick's frames to one peer and flushes.
func (wp *writerPool) send(p *peer, job sendJob) error {
	for _, f := range job.frames {
		var payload []byte
		if f.Outbox != nil {
			payload = f.Outbox[job.peer]
		}
		if err := writeFrame(p.w, f.Instance, f.Round, payload); err != nil {
			return fmt.Errorf("send instance %d to %d: %w", f.Instance, job.peer, err)
		}
	}
	if err := p.w.Flush(); err != nil {
		return fmt.Errorf("send to %d: %w", job.peer, err)
	}
	return nil
}

// dispatch hands every writer its tick's frames. The job channels are
// unbuffered, but each writer is guaranteed idle here: wait consumed its
// previous error before the caller dispatched again.
func (wp *writerPool) dispatch(frames []sim.MuxFrame) {
	for id, jobs := range wp.jobs {
		if jobs != nil {
			jobs <- sendJob{frames: frames, peer: id}
		}
	}
}

// wait joins the tick: it collects every writer's result and returns the
// first failure.
func (wp *writerPool) wait() error {
	var first error
	for _, errs := range wp.errs {
		if errs == nil {
			continue
		}
		if err := <-errs; err != nil && first == nil {
			first = err
		}
	}
	return first
}

// close stops the writers. Any writer still mid-tick parks its result in
// its buffered error channel and exits; none can leak.
func (wp *writerPool) close() {
	for _, jobs := range wp.jobs {
		if jobs != nil {
			close(jobs)
		}
	}
}

// abortTick unblocks the tick after a read failure: a writer may be stuck
// in Flush toward a peer that stopped reading (mesh going down in the
// large-payload regime), and joining it would hang this node forever —
// with the cluster teardown that would free it only firing once this
// node returns its error. Closing the peer connections fails those
// writes promptly, so wait() is guaranteed to return.
func (wp *writerPool) abortTick() {
	for _, p := range wp.nd.peers {
		if p != nil {
			_ = p.conn.Close()
		}
	}
}

// exchange runs one tick's overlapped halves: it hands the writers the
// tick's frames, runs the read half concurrently in this goroutine, and
// joins the writers — tearing the connections down first when the read
// half failed, so the join cannot hang on a writer blocked in Flush
// toward a peer that stopped reading. The read error wins (it usually
// names the root cause: the mesh going down); label names the tick in a
// send error.
func (wp *writerPool) exchange(label string, frames []sim.MuxFrame, read func() error) error {
	wp.dispatch(frames)
	readErr := read()
	if readErr != nil {
		wp.abortTick()
	}
	sendErr := wp.wait()
	if readErr != nil {
		return readErr
	}
	if sendErr != nil {
		return fmt.Errorf("transport: %s: %w", label, sendErr)
	}
	return nil
}

// exchangeTick runs one lockstep tick of a multiplexed schedule over the
// mesh: the writers push one frame per active instance to every peer —
// each frame carrying its instance id and local round in the header, so
// one TCP mesh pipelines many concurrent agreement instances — while
// this goroutine reads every peer's frames for exactly the same active
// set, in instance order (TCP is FIFO, peers send in the same order).
// ins[sender][f] receives sender's payload for the f-th frame; the
// caller (fabric.Run) sized ins to the active set. A peer frame whose
// instance or round disagrees with the local schedule is a protocol
// error — the wire-level divergence guard of a multi-process mesh,
// where no runtime can compare the schedules directly.
func (nd *Node) exchangeTick(wp *writerPool, tick int, frames []sim.MuxFrame, ins [][][]byte) error {
	// Self-delivery is direct; the writers push to the peers while the
	// read closure below collects from them (writerPool.exchange).
	self := ins[nd.id]
	for f, fr := range frames {
		if fr.Outbox != nil {
			self[f] = fr.Outbox[nd.id]
		} else {
			self[f] = nil
		}
	}
	return wp.exchange(fmt.Sprintf("tick %d", tick), frames, func() error {
		for id, p := range nd.peers {
			if id == nd.id {
				continue
			}
			got := ins[id]
			for f, fr := range frames {
				instance, round, payload, err := readFrame(p.r)
				if err != nil {
					return fmt.Errorf("transport: tick %d: recv from %d: %w", tick, id, err)
				}
				if instance != fr.Instance || round != fr.Round {
					return fmt.Errorf("transport: peer %d sent frame (instance %d, round %d), want (instance %d, round %d)", id, instance, round, fr.Instance, fr.Round)
				}
				got[f] = payload
			}
		}
		return nil
	})
}
