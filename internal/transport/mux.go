package transport

import (
	"encoding/binary"
	"fmt"
	"net"

	"shiftgears/internal/sim"
)

// sendJob is one tick's worth of frames for one peer: the writer
// assembles every frame into a single vectored write, so each peer
// connection carries one coalesced burst per tick. kind/seq label the
// tick ("tick 7", "round 3") so a mid-tick send failure reports with
// tick context on its own, without waiting for exchange to wrap it.
type sendJob struct {
	kind   string
	seq    int
	frames []sim.MuxFrame
	peer   int
}

// writerPool runs one persistent writer goroutine per remote peer so the
// send and receive halves of a tick overlap. The old drive loop wrote all
// frames to every peer before reading any; once a tick's payload outgrew
// the kernel socket buffers every node of the mesh blocked in Flush while
// its peers blocked in Flush — a distributed deadlock the lockstep
// barrier could never escape. With per-peer writers each node's reads
// drain its peers' sockets while its own writes are in flight, so the
// cycle cannot form: a reader blocked on peer p waits only for p's
// dedicated writer, which writes regardless of what p's other
// connections are doing.
//
// Ordering guarantee: within a tick, frames to one peer are written in
// increasing instance order as one net.Buffers (writev) burst; across
// ticks, tick t's writes complete (wait returns) before tick t+1's are
// dispatched. Each connection therefore carries exactly the byte stream
// of the sequential loop — receivers still read frames in instance
// order, tick by tick — only the interleaving across connections
// changed.
type writerPool struct {
	nd   *Node
	jobs []chan sendJob // per peer; nil at self
	errs []chan error   // per peer, cap 1; nil at self
}

func newWriterPool(nd *Node) *writerPool {
	wp := &writerPool{
		nd:   nd,
		jobs: make([]chan sendJob, nd.n),
		errs: make([]chan error, nd.n),
	}
	for id, p := range nd.peers {
		if id == nd.id {
			continue
		}
		jobs := make(chan sendJob)
		errs := make(chan error, 1)
		wp.jobs[id], wp.errs[id] = jobs, errs
		go func(p *peer) {
			var w meshWriter // per-goroutine scratch, reused every tick
			for job := range jobs {
				errs <- w.send(p, job)
			}
		}(p)
	}
	return wp
}

// meshWriter is one writer goroutine's reusable scratch: the header bytes
// of a tick's frames packed contiguously, the vector of header/payload
// slices, and the net.Buffers view handed to writev. vecs keeps the
// backing array across sends — WriteTo consumes the Buffers it is called
// on (reslicing it forward as iovecs drain), which would otherwise leak
// the array's prefix every tick. All three are grow-only, so steady state
// assembles and issues a whole tick with zero allocations and a single
// writev call.
type meshWriter struct {
	hdr  []byte
	vecs [][]byte
	bufs net.Buffers
}

// send writes one tick's frames to one peer as a single vectored write.
// Headers are appended to the contiguous hdr scratch (capacity ensured up
// front, so the subslices handed to net.Buffers stay valid) and payloads
// are referenced in place — no per-frame copy, no intermediate buffer.
func (w *meshWriter) send(p *peer, job sendJob) error {
	need := len(job.frames) * 3 * binary.MaxVarintLen64
	if cap(w.hdr) < need {
		w.hdr = make([]byte, 0, need)
	}
	w.hdr = w.hdr[:0]
	vecs := w.vecs[:0]
	for _, f := range job.frames {
		var payload []byte
		if f.Outbox != nil {
			payload = f.Outbox[job.peer]
		}
		start := len(w.hdr)
		w.hdr = binary.AppendUvarint(w.hdr, uint64(f.Instance))
		w.hdr = binary.AppendUvarint(w.hdr, uint64(f.Round))
		ln := uint64(0)
		if payload != nil {
			ln = uint64(len(payload)) + 1
		}
		w.hdr = binary.AppendUvarint(w.hdr, ln)
		vecs = append(vecs, w.hdr[start:len(w.hdr):len(w.hdr)])
		if len(payload) > 0 {
			vecs = append(vecs, payload)
		}
	}
	w.vecs = vecs
	// WriteTo must go through the struct field: calling it on a local
	// net.Buffers forces the slice header to escape (pointer receiver),
	// one heap box per send.
	w.bufs = net.Buffers(vecs)
	if _, err := w.bufs.WriteTo(p.conn); err != nil {
		return fmt.Errorf("%s %d: send to %d: %w", job.kind, job.seq, job.peer, err)
	}
	return nil
}

// dispatch hands every writer its tick's frames. The job channels are
// unbuffered, but each writer is guaranteed idle here: wait consumed its
// previous error before the caller dispatched again.
func (wp *writerPool) dispatch(kind string, seq int, frames []sim.MuxFrame) {
	for id, jobs := range wp.jobs {
		if jobs != nil {
			jobs <- sendJob{kind: kind, seq: seq, frames: frames, peer: id}
		}
	}
}

// wait joins the tick: it collects every writer's result and returns the
// first failure.
func (wp *writerPool) wait() error {
	var first error
	for _, errs := range wp.errs {
		if errs == nil {
			continue
		}
		if err := <-errs; err != nil && first == nil {
			first = err
		}
	}
	return first
}

// close stops the writers. Any writer still mid-tick parks its result in
// its buffered error channel and exits; none can leak.
func (wp *writerPool) close() {
	for _, jobs := range wp.jobs {
		if jobs != nil {
			close(jobs)
		}
	}
}

// abortTick unblocks the tick after a read failure: a writer may be stuck
// in its vectored write toward a peer that stopped reading (mesh going
// down in the large-payload regime), and joining it would hang this node
// forever — with the cluster teardown that would free it only firing once
// this node returns its error. Closing the peer connections fails those
// writes promptly, so wait() is guaranteed to return.
func (wp *writerPool) abortTick() {
	for _, p := range wp.nd.peers {
		if p != nil {
			_ = p.conn.Close()
		}
	}
}

// exchange runs one tick's overlapped halves: it hands the writers the
// tick's frames, runs the read half concurrently in this goroutine, and
// joins the writers — tearing the connections down first when the read
// half failed, so the join cannot hang on a writer blocked mid-write
// toward a peer that stopped reading. The read error wins (it usually
// names the root cause: the mesh going down); send errors already carry
// the kind/seq tick label from the writer itself.
func (wp *writerPool) exchange(kind string, seq int, frames []sim.MuxFrame, read func() error) error {
	wp.dispatch(kind, seq, frames)
	readErr := read()
	if readErr != nil {
		wp.abortTick()
	}
	sendErr := wp.wait()
	if readErr != nil {
		return readErr
	}
	if sendErr != nil {
		return fmt.Errorf("transport: %w", sendErr)
	}
	return nil
}

// exchangeTick runs one lockstep tick of a multiplexed schedule over the
// mesh: the writers push one frame per active instance to every peer —
// each frame carrying its instance id and local round in the header, so
// one TCP mesh pipelines many concurrent agreement instances — while
// this goroutine reads every peer's frames for exactly the same active
// set, in instance order (TCP is FIFO, peers send in the same order).
// ins[sender][f] receives sender's payload for the f-th frame; the
// caller (fabric.Run) sized ins to the active set. A peer frame whose
// instance or round disagrees with the local schedule is a protocol
// error — the wire-level divergence guard of a multi-process mesh,
// where no runtime can compare the schedules directly.
//
// Received payloads slice into the per-peer read arenas (peer.readFrame)
// and are valid only until the next exchangeTick: consumers up the stack
// (fabric.Run → sim.Mux.Deliver → the instances' DeliverRound) must use
// or copy them within the tick, which the sim.Processor contract already
// requires.
func (nd *Node) exchangeTick(wp *writerPool, tick int, frames []sim.MuxFrame, ins [][][]byte) error {
	// Self-delivery is direct; the writers push to the peers while the
	// read closure below collects from them (writerPool.exchange).
	self := ins[nd.id]
	for f, fr := range frames {
		if fr.Outbox != nil {
			self[f] = fr.Outbox[nd.id]
		} else {
			self[f] = nil
		}
	}
	return wp.exchange("tick", tick, frames, func() error {
		for id, p := range nd.peers {
			if id == nd.id {
				continue
			}
			got := ins[id]
			p.beginTick()
			for f, fr := range frames {
				instance, round, payload, err := p.readFrame()
				if err != nil {
					return fmt.Errorf("transport: tick %d: recv from %d: %w", tick, id, err)
				}
				if instance != fr.Instance || round != fr.Round {
					return fmt.Errorf("transport: peer %d sent frame (instance %d, round %d), want (instance %d, round %d)", id, instance, round, fr.Instance, fr.Round)
				}
				got[f] = payload
			}
		}
		return nil
	})
}
