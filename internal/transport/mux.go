package transport

import (
	"fmt"

	"shiftgears/internal/sim"
)

// RunMux drives the node's processor — which must be a *sim.Mux — through
// its full multiplexed schedule: at every global tick the node exchanges
// one frame per active instance with every peer, each frame carrying the
// instance id and local round in its header, so one TCP mesh pipelines
// many concurrent agreement instances. All nodes of the mesh must run
// identical schedules (same Rounds and Window); a peer frame whose
// instance or round disagrees with the local schedule is a protocol error.
func (nd *Node) RunMux() (*sim.Stats, error) {
	m, ok := nd.proc.(*sim.Mux)
	if !ok {
		return nil, fmt.Errorf("transport: RunMux needs a *sim.Mux processor, have %T", nd.proc)
	}
	nd.stats = sim.Stats{}
	in := make([][][]byte, nd.n)

	for !m.Done() {
		frames, err := m.Outboxes()
		if err != nil {
			return nil, err
		}
		tick := m.Ticks() + 1

		// Send half: one frame per active instance per peer, one flush per
		// peer per tick; self-delivery is direct.
		for id, p := range nd.peers {
			if id == nd.id {
				self := make([][]byte, len(frames))
				for k, f := range frames {
					if f.Outbox != nil {
						self[k] = f.Outbox[id]
					}
				}
				in[id] = self
				continue
			}
			for _, f := range frames {
				var payload []byte
				if f.Outbox != nil {
					payload = f.Outbox[id]
				}
				if err := writeFrame(p.w, f.Instance, f.Round, payload); err != nil {
					return nil, fmt.Errorf("transport: tick %d: send instance %d to %d: %w", tick, f.Instance, id, err)
				}
			}
			if err := p.w.Flush(); err != nil {
				return nil, fmt.Errorf("transport: tick %d: send to %d: %w", tick, id, err)
			}
		}

		// Barrier: collect every peer's frames for exactly the active set,
		// in instance order (TCP is FIFO, peers send in the same order).
		rs := sim.RoundStats{Round: tick}
		for id, p := range nd.peers {
			if id == nd.id {
				for _, payload := range in[id] {
					countPayload(&rs, payload)
				}
				continue
			}
			got := make([][]byte, len(frames))
			for k, f := range frames {
				instance, round, payload, err := readFrame(p.r)
				if err != nil {
					return nil, fmt.Errorf("transport: tick %d: recv from %d: %w", tick, id, err)
				}
				if instance != f.Instance || round != f.Round {
					return nil, fmt.Errorf("transport: peer %d sent frame (instance %d, round %d), want (instance %d, round %d)", id, instance, round, f.Instance, f.Round)
				}
				got[k] = payload
				countPayload(&rs, payload)
			}
			in[id] = got
		}

		if err := m.Deliver(in); err != nil {
			return nil, err
		}
		nd.stats.Rounds = tick
		nd.stats.Messages += rs.Messages
		nd.stats.Bytes += rs.Bytes
		if rs.MaxPayload > nd.stats.MaxPayload {
			nd.stats.MaxPayload = rs.MaxPayload
		}
		nd.stats.PerRound = append(nd.stats.PerRound, rs)
	}
	if err := m.Err(); err != nil {
		return nil, err
	}
	out := nd.stats
	out.PerRound = append([]sim.RoundStats(nil), nd.stats.PerRound...)
	return &out, nil
}
