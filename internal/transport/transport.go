// Package transport runs the synchronous protocols over a real TCP mesh.
//
// internal/sim executes all processors inside one process; this package
// provides the deployment story: every processor is a Node owning a TCP
// listener, fully connected to its peers, exchanging one frame per peer per
// round. The synchronous model of the paper's Section 2 is realized as a
// lockstep barrier — a node finishes round r only after it holds the
// round-r frame of every peer — which is exactly the classical emulation of
// a synchronous network on reliable FIFO channels. Byzantine behavior stays
// at the payload layer (the same adversary wrappers work unchanged); the
// transport itself is reliable, as the model requires.
//
// Frames are length-prefixed on persistent connections:
//
//	uvarint(instance) uvarint(round) uvarint(len+1) payload...   // len+1 = 0 encodes "no message"
//
// The instance field lets one mesh carry a whole pipeline of concurrent
// agreement instances (see Mesh and sim.Mux — the fabric runtime drives
// multiplexed schedules over the mesh); single-instance runs use
// instance 0. Each ordered pair of nodes uses one direction of a
// dedicated connection, so per-destination (two-faced) payloads work
// naturally.
package transport

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"time"

	"shiftgears/internal/sim"
)

// defaultDialRetry caps how long a node keeps retrying a peer's listener
// at startup (peers may come up in any order); WithDialRetry overrides it.
const defaultDialRetry = 10 * time.Second

// maxFrame bounds a frame payload (16 MiB), protecting against corrupt
// length prefixes.
const maxFrame = 16 << 20

// Node runs one sim.Processor over the mesh.
type Node struct {
	proc      sim.Processor
	id        int
	n         int
	ln        net.Listener
	peers     []*peer // indexed by peer id; nil at self
	stats     sim.Stats
	dialRetry time.Duration
	sockBuf   int
	perRound  bool
}

// Option configures a Node.
type Option func(*Node)

// WithDialRetry sets how long Connect keeps retrying an unreachable peer
// listener before giving up (default 10s). Tests and fast-failing
// deployments use a short window instead of inheriting the fixed default.
func WithDialRetry(d time.Duration) Option {
	return func(nd *Node) { nd.dialRetry = d }
}

// WithWriteBufferSize clamps every peer connection's kernel send buffer
// (SO_SNDBUF) to the given byte count (0 keeps the OS default). Tests use
// tiny send buffers to reproduce back-pressure regimes — per-tick
// payloads larger than the kernel can absorb — without gigabyte
// payloads; the OS may round the value up to its floor. The receive
// buffer is left alone: shrinking SO_RCVBUF after the TCP window scale
// is negotiated can wedge a live connection at the kernel level.
func WithWriteBufferSize(bytes int) Option {
	return func(nd *Node) { nd.sockBuf = bytes }
}

// WithPerRoundStats records a RoundStats entry per round/tick in the
// run's Stats. Off by default: aggregate totals are always maintained,
// but the per-round trail grows with the schedule and is unbounded
// memory on long logs.
func WithPerRoundStats() Option {
	return func(nd *Node) { nd.perRound = true }
}

// peer is one bidirectional link.
type peer struct {
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
}

// Listen opens the node's listener on addr (e.g. "127.0.0.1:9001") for a
// processor driven by the node's own Run loop. The returned node must
// then Connect before Run.
func Listen(proc sim.Processor, n int, addr string, opts ...Option) (*Node, error) {
	nd, err := ListenNode(proc.ID(), n, addr, opts...)
	if err != nil {
		return nil, err
	}
	nd.proc = proc
	return nd, nil
}

// ListenNode opens a processor-less mesh node — the transport endpoint a
// fabric drives (JoinMesh, NewMesh): the schedule lives with the caller,
// the node only moves frames. The returned node must Connect before use.
func ListenNode(id, n int, addr string, opts ...Option) (*Node, error) {
	if id < 0 || id >= n || n < 2 || n > 255 {
		return nil, fmt.Errorf("transport: bad id/n: %d/%d", id, n)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	nd := &Node{id: id, n: n, ln: ln, peers: make([]*peer, n), dialRetry: defaultDialRetry}
	for _, opt := range opts {
		opt(nd)
	}
	return nd, nil
}

// Addr returns the listener's address (useful with ":0" ephemeral ports).
func (nd *Node) Addr() string { return nd.ln.Addr().String() }

// Connect establishes the full mesh: this node dials every peer with a
// smaller id and accepts connections from every peer with a larger id.
// addrs[i] is peer i's listen address (addrs[nd.id] is ignored).
func (nd *Node) Connect(addrs []string) error {
	if len(addrs) != nd.n {
		return fmt.Errorf("transport: %d addrs for %d nodes", len(addrs), nd.n)
	}
	errc := make(chan error, 1)

	// Accept side: peers with larger ids dial us; the first byte of a
	// connection is the dialer's id.
	expect := nd.n - 1 - nd.id
	go func() {
		for i := 0; i < expect; i++ {
			conn, err := nd.ln.Accept()
			if err != nil {
				errc <- fmt.Errorf("transport: accept: %w", err)
				return
			}
			var idb [1]byte
			if _, err := io.ReadFull(conn, idb[:]); err != nil {
				errc <- fmt.Errorf("transport: handshake read: %w", err)
				return
			}
			id := int(idb[0])
			if id <= nd.id || id >= nd.n || nd.peers[id] != nil {
				errc <- fmt.Errorf("transport: bad handshake id %d at node %d", id, nd.id)
				return
			}
			nd.peers[id] = newPeer(conn, nd.sockBuf)
		}
		errc <- nil
	}()

	// Dial side: we dial peers with smaller ids, announcing our id.
	for id := 0; id < nd.id; id++ {
		conn, err := dialWithRetry(addrs[id], nd.dialRetry)
		if err != nil {
			return fmt.Errorf("transport: dial peer %d: %w", id, err)
		}
		if _, err := conn.Write([]byte{byte(nd.id)}); err != nil {
			return fmt.Errorf("transport: handshake write to %d: %w", id, err)
		}
		nd.peers[id] = newPeer(conn, nd.sockBuf)
	}
	return <-errc
}

func newPeer(conn net.Conn, sockBuf int) *peer {
	if tc, ok := conn.(*net.TCPConn); ok {
		_ = tc.SetNoDelay(true) // round latency matters more than throughput
		if sockBuf > 0 {
			_ = tc.SetWriteBuffer(sockBuf)
		}
	}
	return &peer{conn: conn, r: bufio.NewReader(conn), w: bufio.NewWriter(conn)}
}

func dialWithRetry(addr string, retry time.Duration) (net.Conn, error) {
	deadline := time.Now().Add(retry)
	timeout := time.Second
	if timeout > retry {
		timeout = retry
	}
	// A non-positive per-attempt timeout would mean "no timeout" to
	// net.DialTimeout; clamp so tiny retry windows still fail fast.
	if timeout < 50*time.Millisecond {
		timeout = 50 * time.Millisecond
	}
	for {
		conn, err := net.DialTimeout("tcp", addr, timeout)
		if err == nil {
			return conn, nil
		}
		if time.Now().After(deadline) {
			return nil, err
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// Run executes rounds 1..rounds in lockstep with the mesh and returns
// traffic statistics (from this node's perspective: frames it received).
// Sends and receives overlap — one writer goroutine per peer (see
// writerPool) — so the mesh cannot deadlock when a round's payload
// exceeds the kernel socket buffers.
func (nd *Node) Run(rounds int) (*sim.Stats, error) {
	if nd.proc == nil {
		return nil, fmt.Errorf("transport: node %d has no processor (built with ListenNode; drive it through a fabric instead)", nd.id)
	}
	if rounds < 1 {
		return nil, fmt.Errorf("transport: round count %d must be positive", rounds)
	}
	inbox := make([][]byte, nd.n)
	nd.stats = sim.Stats{}
	frame := make([]sim.MuxFrame, 1)
	wp := newWriterPool(nd)
	defer wp.close()

	for r := 1; r <= rounds; r++ {
		outbox := nd.proc.PrepareRound(r)
		if outbox != nil && len(outbox) != nd.n {
			return nil, fmt.Errorf("transport: round %d: outbox has %d entries, want %d", r, len(outbox), nd.n)
		}

		// Our round-r frame rides as instance 0; self-delivery is direct,
		// the writers push to the peers while the read closure collects
		// from them (writerPool.exchange).
		frame[0] = sim.MuxFrame{Instance: 0, Round: r, Outbox: outbox}
		if outbox != nil {
			inbox[nd.id] = outbox[nd.id]
		} else {
			inbox[nd.id] = nil
		}

		// Barrier: collect every peer's round-r frame. TCP is FIFO and each
		// peer sends exactly one frame per round in order, so sequential
		// reads suffice.
		rs := sim.RoundStats{Round: r}
		err := wp.exchange(fmt.Sprintf("round %d", r), frame, func() error {
			for id, p := range nd.peers {
				if id == nd.id {
					countPayload(&rs, inbox[id])
					continue
				}
				instance, round, payload, err := readFrame(p.r)
				if err != nil {
					return fmt.Errorf("transport: round %d: recv from %d: %w", r, id, err)
				}
				if instance != 0 {
					return fmt.Errorf("transport: peer %d sent frame for instance %d in single-instance mode", id, instance)
				}
				if round != r {
					return fmt.Errorf("transport: peer %d sent frame for round %d during round %d", id, round, r)
				}
				inbox[id] = payload
				countPayload(&rs, payload)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}

		nd.proc.DeliverRound(r, inbox)
		nd.stats.Rounds = r
		nd.stats.Messages += rs.Messages
		nd.stats.Bytes += rs.Bytes
		if rs.MaxPayload > nd.stats.MaxPayload {
			nd.stats.MaxPayload = rs.MaxPayload
		}
		if nd.perRound {
			nd.stats.PerRound = append(nd.stats.PerRound, rs)
		}
	}
	out := nd.stats
	out.PerRound = append([]sim.RoundStats(nil), nd.stats.PerRound...)
	return &out, nil
}

func countPayload(rs *sim.RoundStats, payload []byte) {
	if payload == nil {
		return
	}
	rs.Messages++
	rs.Bytes += len(payload)
	if len(payload) > rs.MaxPayload {
		rs.MaxPayload = len(payload)
	}
}

// Close shuts down the listener and all connections.
func (nd *Node) Close() error {
	err := nd.ln.Close()
	for _, p := range nd.peers {
		if p != nil {
			if cerr := p.conn.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}
	}
	return err
}

// writeFrame emits one frame (without flushing the writer); len+1 = 0
// encodes a nil payload. Single-instance runs use instance 0.
func writeFrame(w *bufio.Writer, instance, round int, payload []byte) error {
	var tmp [binary.MaxVarintLen64]byte
	k := binary.PutUvarint(tmp[:], uint64(instance))
	if _, err := w.Write(tmp[:k]); err != nil {
		return err
	}
	k = binary.PutUvarint(tmp[:], uint64(round))
	if _, err := w.Write(tmp[:k]); err != nil {
		return err
	}
	ln := uint64(0)
	if payload != nil {
		ln = uint64(len(payload)) + 1
	}
	k = binary.PutUvarint(tmp[:], ln)
	if _, err := w.Write(tmp[:k]); err != nil {
		return err
	}
	if payload != nil {
		if _, err := w.Write(payload); err != nil {
			return err
		}
	}
	return nil
}

// readFrame reads one frame.
func readFrame(r *bufio.Reader) (instance, round int, payload []byte, err error) {
	iu, err := binary.ReadUvarint(r)
	if err != nil {
		return 0, 0, nil, err
	}
	ru, err := binary.ReadUvarint(r)
	if err != nil {
		return 0, 0, nil, err
	}
	ln, err := binary.ReadUvarint(r)
	if err != nil {
		return 0, 0, nil, err
	}
	if ln == 0 {
		return int(iu), int(ru), nil, nil
	}
	size := ln - 1
	if size > maxFrame {
		return 0, 0, nil, fmt.Errorf("frame of %d bytes exceeds limit", size)
	}
	payload = make([]byte, size)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, 0, nil, err
	}
	return int(iu), int(ru), payload, nil
}
