// Package transport runs the synchronous protocols over a real TCP mesh.
//
// internal/sim executes all processors inside one process; this package
// provides the deployment story: every processor is a Node owning a TCP
// listener, fully connected to its peers, exchanging one frame per peer per
// round. The synchronous model of the paper's Section 2 is realized as a
// lockstep barrier — a node finishes round r only after it holds the
// round-r frame of every peer — which is exactly the classical emulation of
// a synchronous network on reliable FIFO channels. Byzantine behavior stays
// at the payload layer (the same adversary wrappers work unchanged); the
// transport itself is reliable, as the model requires.
//
// Frames are length-prefixed on persistent connections:
//
//	uvarint(instance) uvarint(round) uvarint(len+1) payload...   // len+1 = 0 encodes "no message"
//
// The instance field lets one mesh carry a whole pipeline of concurrent
// agreement instances (see Mesh and sim.Mux — the fabric runtime drives
// multiplexed schedules over the mesh); single-instance runs use
// instance 0. Each ordered pair of nodes uses one direction of a
// dedicated connection, so per-destination (two-faced) payloads work
// naturally.
package transport

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"time"

	"shiftgears/internal/sim"
)

// defaultDialRetry caps how long a node keeps retrying a peer's listener
// at startup (peers may come up in any order); WithDialRetry overrides it.
const defaultDialRetry = 10 * time.Second

// maxFrame bounds a frame payload (16 MiB), protecting against corrupt
// length prefixes.
const maxFrame = 16 << 20

// defaultReadBuf sizes each connection's bufio read buffer; a tick's worth
// of frames usually fits, so the reader drains the socket in few syscalls.
// WithReadBufferSize overrides it.
const defaultReadBuf = 64 << 10

// minReadArena is the smallest read-arena block a peer allocates; typical
// ticks fit in one block, so steady state performs no allocation at all.
const minReadArena = 4 << 10

// Node runs one sim.Processor over the mesh.
type Node struct {
	proc      sim.Processor
	id        int
	n         int
	ln        net.Listener
	peers     []*peer // indexed by peer id; nil at self
	stats     sim.Stats
	dialRetry time.Duration
	sockBuf   int
	readBuf   int
	perRound  bool
}

// Option configures a Node.
type Option func(*Node)

// WithDialRetry sets how long Connect keeps retrying an unreachable peer
// listener before giving up (default 10s). Tests and fast-failing
// deployments use a short window instead of inheriting the fixed default.
func WithDialRetry(d time.Duration) Option {
	return func(nd *Node) { nd.dialRetry = d }
}

// WithWriteBufferSize clamps every peer connection's kernel send buffer
// (SO_SNDBUF) to the given byte count (0 keeps the OS default). Tests use
// tiny send buffers to reproduce back-pressure regimes — per-tick
// payloads larger than the kernel can absorb — without gigabyte
// payloads; the OS may round the value up to its floor. The receive
// buffer is left alone: shrinking SO_RCVBUF after the TCP window scale
// is negotiated can wedge a live connection at the kernel level.
func WithWriteBufferSize(bytes int) Option {
	return func(nd *Node) { nd.sockBuf = bytes }
}

// WithReadBufferSize sets each peer connection's user-space read buffer
// (the bufio layer between the socket and the frame decoder; default
// 64 KiB, 0 keeps the default). It pairs with WithWriteBufferSize for
// back-pressure tests: a tiny read buffer forces the decoder back to the
// socket every few bytes, exercising the overlapped send/receive halves
// at maximum interleaving. The kernel receive buffer (SO_RCVBUF) is
// deliberately not touched — see WithWriteBufferSize.
func WithReadBufferSize(bytes int) Option {
	return func(nd *Node) { nd.readBuf = bytes }
}

// WithPerRoundStats records a RoundStats entry per round/tick in the
// run's Stats. Off by default: aggregate totals are always maintained,
// but the per-round trail grows with the schedule and is unbounded
// memory on long logs.
func WithPerRoundStats() Option {
	return func(nd *Node) { nd.perRound = true }
}

// appendFrame appends one encoded frame to dst and returns it: the wire
// format is uvarint(instance) uvarint(round) uvarint(len+1) payload,
// where len+1 = 0 encodes a nil payload. The mesh hot path never builds
// frames contiguously — meshWriter.send hands headers and payloads to
// writev separately — but the encoding is the single source of truth for
// tests and any future non-vectored writer.
func appendFrame(dst []byte, instance, round int, payload []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(instance))
	dst = binary.AppendUvarint(dst, uint64(round))
	ln := uint64(0)
	if payload != nil {
		ln = uint64(len(payload)) + 1
	}
	dst = binary.AppendUvarint(dst, ln)
	return append(dst, payload...)
}

// peer is one bidirectional link. Inbound payloads are sliced out of a
// grow-only read arena whose lifetime is one tick (beginTick resets it),
// so the receive hot path performs no per-frame allocation; see the
// "Wire hot path" section of the package comment in doc.go.
type peer struct {
	conn  net.Conn
	r     *bufio.Reader
	arena []byte // current read-arena block
	off   int    // bytes of arena handed out this tick
}

// beginTick resets the peer's read arena: every payload readFrame returned
// before this call is dead. Callers (the per-tick read loops) invoke it
// once per peer per tick, which is exactly the ownership contract the
// stack above guarantees — payloads are consumed or copied before the
// next tick begins.
func (p *peer) beginTick() { p.off = 0 }

// readFrame reads one frame. The payload slices into the peer's read
// arena and is valid only until the peer's next beginTick. When a tick
// outgrows the current block, a fresh larger block is installed without
// copying — payloads already handed out keep referencing the old block,
// which stays alive (and untouched) until they die with the tick.
func (p *peer) readFrame() (instance, round int, payload []byte, err error) {
	iu, err := binary.ReadUvarint(p.r)
	if err != nil {
		return 0, 0, nil, err
	}
	ru, err := binary.ReadUvarint(p.r)
	if err != nil {
		return 0, 0, nil, err
	}
	ln, err := binary.ReadUvarint(p.r)
	if err != nil {
		return 0, 0, nil, err
	}
	if ln == 0 {
		return int(iu), int(ru), nil, nil
	}
	size := int(ln - 1)
	if ln-1 > maxFrame {
		return 0, 0, nil, fmt.Errorf("frame of %d bytes exceeds limit", ln-1)
	}
	if p.off+size > len(p.arena) {
		grow := 2 * len(p.arena)
		if grow < minReadArena {
			grow = minReadArena
		}
		if grow < size {
			grow = size
		}
		p.arena = make([]byte, grow)
		p.off = 0
	}
	payload = p.arena[p.off : p.off+size : p.off+size]
	p.off += size
	if _, err := io.ReadFull(p.r, payload); err != nil {
		return 0, 0, nil, err
	}
	return int(iu), int(ru), payload, nil
}

// Listen opens the node's listener on addr (e.g. "127.0.0.1:9001") for a
// processor driven by the node's own Run loop. The returned node must
// then Connect before Run.
func Listen(proc sim.Processor, n int, addr string, opts ...Option) (*Node, error) {
	nd, err := ListenNode(proc.ID(), n, addr, opts...)
	if err != nil {
		return nil, err
	}
	nd.proc = proc
	return nd, nil
}

// ListenNode opens a processor-less mesh node — the transport endpoint a
// fabric drives (JoinMesh, NewMesh): the schedule lives with the caller,
// the node only moves frames. The returned node must Connect before use.
func ListenNode(id, n int, addr string, opts ...Option) (*Node, error) {
	if id < 0 || id >= n || n < 2 || n > 255 {
		return nil, fmt.Errorf("transport: bad id/n: %d/%d", id, n)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	nd := &Node{id: id, n: n, ln: ln, peers: make([]*peer, n), dialRetry: defaultDialRetry}
	for _, opt := range opts {
		opt(nd)
	}
	return nd, nil
}

// Addr returns the listener's address (useful with ":0" ephemeral ports).
func (nd *Node) Addr() string { return nd.ln.Addr().String() }

// Connect establishes the full mesh: this node dials every peer with a
// smaller id and accepts connections from every peer with a larger id.
// addrs[i] is peer i's listen address (addrs[nd.id] is ignored).
func (nd *Node) Connect(addrs []string) error {
	if len(addrs) != nd.n {
		return fmt.Errorf("transport: %d addrs for %d nodes", len(addrs), nd.n)
	}
	errc := make(chan error, 1)

	// Accept side: peers with larger ids dial us; the first byte of a
	// connection is the dialer's id.
	expect := nd.n - 1 - nd.id
	go func() {
		for i := 0; i < expect; i++ {
			conn, err := nd.ln.Accept()
			if err != nil {
				errc <- fmt.Errorf("transport: accept: %w", err)
				return
			}
			var idb [1]byte
			if _, err := io.ReadFull(conn, idb[:]); err != nil {
				errc <- fmt.Errorf("transport: handshake read: %w", err)
				return
			}
			id := int(idb[0])
			if id <= nd.id || id >= nd.n || nd.peers[id] != nil {
				errc <- fmt.Errorf("transport: bad handshake id %d at node %d", id, nd.id)
				return
			}
			nd.peers[id] = nd.newPeer(conn)
		}
		errc <- nil
	}()

	// Dial side: we dial peers with smaller ids, announcing our id.
	for id := 0; id < nd.id; id++ {
		conn, err := dialWithRetry(addrs[id], nd.dialRetry)
		if err != nil {
			return fmt.Errorf("transport: dial peer %d: %w", id, err)
		}
		if _, err := conn.Write([]byte{byte(nd.id)}); err != nil {
			return fmt.Errorf("transport: handshake write to %d: %w", id, err)
		}
		nd.peers[id] = nd.newPeer(conn)
	}
	return <-errc
}

func (nd *Node) newPeer(conn net.Conn) *peer {
	if tc, ok := conn.(*net.TCPConn); ok {
		_ = tc.SetNoDelay(true) // round latency matters more than throughput
		if nd.sockBuf > 0 {
			_ = tc.SetWriteBuffer(nd.sockBuf)
		}
	}
	readBuf := nd.readBuf
	if readBuf <= 0 {
		readBuf = defaultReadBuf
	}
	return &peer{conn: conn, r: bufio.NewReaderSize(conn, readBuf)}
}

func dialWithRetry(addr string, retry time.Duration) (net.Conn, error) {
	deadline := time.Now().Add(retry) //gearsvet:allow wall-clock dial-retry deadline during connection setup, before the deterministic schedule starts
	timeout := time.Second
	if timeout > retry {
		timeout = retry
	}
	// A non-positive per-attempt timeout would mean "no timeout" to
	// net.DialTimeout; clamp so tiny retry windows still fail fast.
	if timeout < 50*time.Millisecond {
		timeout = 50 * time.Millisecond
	}
	for {
		conn, err := net.DialTimeout("tcp", addr, timeout)
		if err == nil {
			return conn, nil
		}
		if time.Now().After(deadline) { //gearsvet:allow wall-clock retry-window check during connection setup, off the deterministic schedule
			return nil, err
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// Run executes rounds 1..rounds in lockstep with the mesh and returns
// traffic statistics (from this node's perspective: frames it received).
// Sends and receives overlap — one writer goroutine per peer (see
// writerPool) — so the mesh cannot deadlock when a round's payload
// exceeds the kernel socket buffers.
func (nd *Node) Run(rounds int) (*sim.Stats, error) {
	if nd.proc == nil {
		return nil, fmt.Errorf("transport: node %d has no processor (built with ListenNode; drive it through a fabric instead)", nd.id)
	}
	if rounds < 1 {
		return nil, fmt.Errorf("transport: round count %d must be positive", rounds)
	}
	inbox := make([][]byte, nd.n)
	nd.stats = sim.Stats{}
	frame := make([]sim.MuxFrame, 1)
	wp := newWriterPool(nd)
	defer wp.close()

	for r := 1; r <= rounds; r++ {
		outbox := nd.proc.PrepareRound(r)
		if outbox != nil && len(outbox) != nd.n {
			return nil, fmt.Errorf("transport: round %d: outbox has %d entries, want %d", r, len(outbox), nd.n)
		}

		// Our round-r frame rides as instance 0; self-delivery is direct,
		// the writers push to the peers while the read closure collects
		// from them (writerPool.exchange).
		frame[0] = sim.MuxFrame{Instance: 0, Round: r, Outbox: outbox}
		if outbox != nil {
			inbox[nd.id] = outbox[nd.id]
		} else {
			inbox[nd.id] = nil
		}

		// Barrier: collect every peer's round-r frame. TCP is FIFO and each
		// peer sends exactly one frame per round in order, so sequential
		// reads suffice.
		rs := sim.RoundStats{Round: r}
		err := wp.exchange("round", r, frame, func() error {
			for id, p := range nd.peers {
				if id == nd.id {
					countPayload(&rs, inbox[id])
					continue
				}
				p.beginTick()
				instance, round, payload, err := p.readFrame()
				if err != nil {
					return fmt.Errorf("transport: round %d: recv from %d: %w", r, id, err)
				}
				if instance != 0 {
					return fmt.Errorf("transport: peer %d sent frame for instance %d in single-instance mode", id, instance)
				}
				if round != r {
					return fmt.Errorf("transport: peer %d sent frame for round %d during round %d", id, round, r)
				}
				inbox[id] = payload
				countPayload(&rs, payload)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}

		nd.proc.DeliverRound(r, inbox)
		nd.stats.Rounds = r
		nd.stats.Messages += rs.Messages
		nd.stats.Bytes += rs.Bytes
		if rs.MaxPayload > nd.stats.MaxPayload {
			nd.stats.MaxPayload = rs.MaxPayload
		}
		if nd.perRound {
			nd.stats.PerRound = append(nd.stats.PerRound, rs)
		}
	}
	out := nd.stats
	out.PerRound = append([]sim.RoundStats(nil), nd.stats.PerRound...)
	return &out, nil
}

func countPayload(rs *sim.RoundStats, payload []byte) {
	if payload == nil {
		return
	}
	rs.Messages++
	rs.Bytes += len(payload)
	if len(payload) > rs.MaxPayload {
		rs.MaxPayload = len(payload)
	}
}

// Close shuts down the listener and all connections.
func (nd *Node) Close() error {
	err := nd.ln.Close()
	for _, p := range nd.peers {
		if p != nil {
			if cerr := p.conn.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}
	}
	return err
}
