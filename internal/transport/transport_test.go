package transport

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"net"
	"testing"
	"time"

	"shiftgears/internal/adversary"
	"shiftgears/internal/core"
	"shiftgears/internal/eigtree"
	"shiftgears/internal/sim"
	"shiftgears/internal/trace"
)

// framePeer wraps raw bytes as a read-side peer for codec tests.
func framePeer(raw []byte) *peer {
	p := &peer{r: bufio.NewReader(bytes.NewReader(raw))}
	p.beginTick()
	return p
}

func TestFrameRoundTrip(t *testing.T) {
	raw := appendFrame(nil, 0, 7, []byte{1, 2, 3})
	raw = appendFrame(raw, 3, 8, nil)
	raw = appendFrame(raw, 300, 9, []byte{})
	p := framePeer(raw)
	instance, round, payload, err := p.readFrame()
	if err != nil || instance != 0 || round != 7 || !bytes.Equal(payload, []byte{1, 2, 3}) {
		t.Fatalf("frame 1: %d %d %v %v", instance, round, payload, err)
	}
	instance, round, payload, err = p.readFrame()
	if err != nil || instance != 3 || round != 8 || payload != nil {
		t.Fatalf("frame 2: %d %d %v %v (nil payload must survive)", instance, round, payload, err)
	}
	instance, round, payload, err = p.readFrame()
	if err != nil || instance != 300 || round != 9 || payload == nil || len(payload) != 0 {
		t.Fatalf("frame 3: %d %d %v %v (empty non-nil payload must survive)", instance, round, payload, err)
	}
}

func TestFrameArenaPreservesEarlierPayloads(t *testing.T) {
	// Frames of one tick slice into the peer's grow-only arena; when a
	// tick outgrows the current block, already-returned payloads must keep
	// their bytes (the old block is replaced, not recycled).
	big := bytes.Repeat([]byte{7}, minReadArena)
	raw := appendFrame(nil, 0, 1, []byte{1, 2, 3})
	raw = appendFrame(raw, 1, 1, big)
	raw = appendFrame(raw, 2, 1, big)
	p := framePeer(raw)
	_, _, first, err := p.readFrame()
	if err != nil {
		t.Fatal(err)
	}
	for f := 1; f <= 2; f++ {
		if _, _, payload, err := p.readFrame(); err != nil || !bytes.Equal(payload, big) {
			t.Fatalf("frame %d after arena growth: %v", f, err)
		}
	}
	if !bytes.Equal(first, []byte{1, 2, 3}) {
		t.Fatalf("arena growth corrupted an earlier payload: %v", first)
	}
}

func TestFrameRejectsOversize(t *testing.T) {
	// Hand-craft a frame header claiming a payload beyond maxFrame: the
	// reader must reject it before allocating, protecting against corrupt
	// length prefixes.
	raw := binary.AppendUvarint(nil, 0)                 // instance
	raw = binary.AppendUvarint(raw, 1)                  // round
	raw = binary.AppendUvarint(raw, uint64(maxFrame)+2) // len+1 → maxFrame+1 bytes
	_, _, _, err := framePeer(raw).readFrame()
	if err == nil {
		t.Fatal("oversize frame accepted")
	}
}

func TestFrameRejectsTruncation(t *testing.T) {
	raw := appendFrame(nil, 1, 2, []byte{9, 9, 9, 9})
	for cut := 1; cut < len(raw); cut++ {
		if _, _, _, err := framePeer(raw[:cut]).readFrame(); err == nil {
			t.Fatalf("frame truncated to %d bytes accepted", cut)
		}
	}
}

// echoNode broadcasts one byte per round and records inboxes.
type echoNode struct {
	id, n int
	seen  [][]byte
}

func (p *echoNode) ID() int { return p.id }
func (p *echoNode) PrepareRound(round int) [][]byte {
	if p.id == 2 {
		// Per-destination payloads (a two-faced node) exercise the
		// one-connection-per-pair property.
		out := make([][]byte, p.n)
		for j := range out {
			out[j] = []byte{byte(10*p.id + j), byte(round)}
		}
		return out
	}
	return sim.Broadcast(p.n, []byte{byte(10 * p.id), byte(round)})
}
func (p *echoNode) DeliverRound(round int, inbox [][]byte) {
	var flat []byte
	for _, payload := range inbox {
		flat = append(flat, payload...)
	}
	p.seen = append(p.seen, flat)
}

func TestClusterLockstepDelivery(t *testing.T) {
	n := 4
	procs := make([]sim.Processor, n)
	raw := make([]*echoNode, n)
	for i := range procs {
		raw[i] = &echoNode{id: i, n: n}
		procs[i] = raw[i]
	}
	cluster, err := NewCluster(procs)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	stats, err := cluster.Run(3)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rounds != 3 {
		t.Fatalf("rounds = %d", stats.Rounds)
	}
	for i, p := range raw {
		if len(p.seen) != 3 {
			t.Fatalf("node %d saw %d rounds", i, len(p.seen))
		}
		for r, flat := range p.seen {
			if len(flat) != 2*n {
				t.Fatalf("node %d round %d: %d bytes, want %d", i, r+1, len(flat), 2*n)
			}
			// Node 2's per-destination payload carries our id.
			if flat[2*2] != byte(10*2+i) {
				t.Fatalf("node %d got %d from the two-faced node, want %d", i, flat[4], 10*2+i)
			}
		}
	}
}

// TestByzantineAgreementOverTCP runs the paper's Algorithm B over real
// sockets with a split-brain adversary: same guarantees as in-process.
func TestByzantineAgreementOverTCP(t *testing.T) {
	plan, err := core.NewPlan(core.AlgorithmB, 13, 3, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	env, err := core.NewEnv(plan)
	if err != nil {
		t.Fatal(err)
	}
	strat, err := adversary.New("splitbrain", plan.TotalRounds)
	if err != nil {
		t.Fatal(err)
	}
	faulty := map[int]bool{0: true, 4: true, 8: true}
	procs := make([]sim.Processor, plan.N)
	reps := make([]*core.Replica, plan.N)
	for id := 0; id < plan.N; id++ {
		rep, err := core.NewReplica(env, id, 5, trace.NewLog(id))
		if err != nil {
			t.Fatal(err)
		}
		reps[id] = rep
		if faulty[id] {
			procs[id] = adversary.NewProcessor(rep, strat, 3, plan.N)
		} else {
			procs[id] = rep
		}
	}
	cluster, err := NewCluster(procs)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	if _, err := cluster.Run(plan.TotalRounds); err != nil {
		t.Fatal(err)
	}

	var common eigtree.Value
	first := true
	for id, rep := range reps {
		if faulty[id] {
			continue
		}
		if err := rep.Err(); err != nil {
			t.Fatalf("replica %d: %v", id, err)
		}
		v, ok := rep.Decided()
		if !ok {
			t.Fatalf("replica %d undecided", id)
		}
		if first {
			common, first = v, false
		} else if v != common {
			t.Fatalf("disagreement over TCP: %d vs %d", v, common)
		}
	}
}

// TestTCPMatchesInProcess runs the same configuration on both engines and
// compares decisions (transport must be behavior-preserving).
func TestTCPMatchesInProcess(t *testing.T) {
	build := func() ([]sim.Processor, []*core.Replica) {
		plan, err := core.NewPlan(core.Exponential, 7, 2, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		env, err := core.NewEnv(plan)
		if err != nil {
			t.Fatal(err)
		}
		strat, err := adversary.New("noise", plan.TotalRounds)
		if err != nil {
			t.Fatal(err)
		}
		procs := make([]sim.Processor, 7)
		reps := make([]*core.Replica, 7)
		for id := 0; id < 7; id++ {
			rep, err := core.NewReplica(env, id, 3, nil)
			if err != nil {
				t.Fatal(err)
			}
			reps[id] = rep
			if id == 2 || id == 5 {
				procs[id] = adversary.NewProcessor(rep, strat, 9, 7)
			} else {
				procs[id] = rep
			}
		}
		return procs, reps
	}

	procsA, repsA := build()
	nw, err := sim.NewNetwork(procsA)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nw.Run(3); err != nil {
		t.Fatal(err)
	}

	procsB, repsB := build()
	cluster, err := NewCluster(procsB)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	if _, err := cluster.Run(3); err != nil {
		t.Fatal(err)
	}

	for id := range repsA {
		va, oka := repsA[id].Decided()
		vb, okb := repsB[id].Decided()
		if oka != okb || va != vb {
			t.Fatalf("replica %d: in-process (%d,%v) vs TCP (%d,%v)", id, va, oka, vb, okb)
		}
	}
}

// rawPeerRun wires a 2-node mesh where peer 1 is a hand-driven socket, so
// tests can inject arbitrary frames into node 0's single-instance Run.
func rawPeerRun(t *testing.T, frame []byte) error {
	t.Helper()
	node, err := Listen(&echoNode{id: 0, n: 2}, 2, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = node.Close() }()

	conns := make(chan net.Conn, 1)
	done := make(chan error, 1)
	go func() {
		conn, err := net.Dial("tcp", node.Addr())
		if err != nil {
			done <- err
			return
		}
		conns <- conn                                    // closed by the test after Run returns
		if _, err := conn.Write([]byte{1}); err != nil { // handshake: we are id 1
			done <- err
			return
		}
		_, err = conn.Write(frame)
		done <- err
	}()
	defer func() {
		select {
		case conn := <-conns:
			_ = conn.Close()
		default:
		}
	}()

	if err := node.Connect([]string{node.Addr(), "unused"}); err != nil {
		t.Fatal(err)
	}
	_, runErr := node.Run(1)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	return runErr
}

// TestRunRejectsInstanceMismatch: a frame tagged with a non-zero instance
// id must fail a single-instance run (round/instance mismatch handling).
func TestRunRejectsInstanceMismatch(t *testing.T) {
	if err := rawPeerRun(t, appendFrame(nil, 5, 1, []byte{1, 1})); err == nil {
		t.Fatal("instance mismatch accepted")
	}
}

// TestRunRejectsRoundMismatch: a frame for the wrong round must fail the
// lockstep barrier.
func TestRunRejectsRoundMismatch(t *testing.T) {
	if err := rawPeerRun(t, appendFrame(nil, 0, 9, []byte{1, 1})); err == nil {
		t.Fatal("round mismatch accepted")
	}
}

// TestDialRetryOption: a short retry window fails fast instead of
// inheriting the 10s default startup window.
func TestDialRetryOption(t *testing.T) {
	// Reserve a port and close it so nothing is listening there.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := ln.Addr().String()
	_ = ln.Close()

	node, err := Listen(&echoNode{id: 1, n: 2}, 2, "127.0.0.1:0", WithDialRetry(50*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = node.Close() }()
	start := time.Now()
	if err := node.Connect([]string{dead, node.Addr()}); err == nil {
		t.Fatal("connect to dead peer succeeded")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("connect took %v despite a 50ms retry window", elapsed)
	}
}

func TestListenValidation(t *testing.T) {
	if _, err := Listen(&echoNode{id: 5, n: 4}, 4, "127.0.0.1:0"); err == nil {
		t.Error("id ≥ n accepted")
	}
	if _, err := Listen(&echoNode{id: 0, n: 1}, 1, "127.0.0.1:0"); err == nil {
		t.Error("n < 2 accepted")
	}
}

func TestNodeRejectsBadOutbox(t *testing.T) {
	procs := []sim.Processor{&badOutboxNode{0}, &badOutboxNode{1}}
	cluster, err := NewCluster(procs)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	if _, err := cluster.Run(1); err == nil {
		t.Fatal("malformed outbox accepted")
	}
}

type badOutboxNode struct{ id int }

func (p *badOutboxNode) ID() int                    { return p.id }
func (p *badOutboxNode) PrepareRound(int) [][]byte  { return [][]byte{{1}, {2}, {3}} }
func (p *badOutboxNode) DeliverRound(int, [][]byte) {}
