package transport

import (
	"bytes"
	"fmt"
	"testing"

	"shiftgears/internal/sim"
)

// BenchmarkMeshTick drives one lockstep tick of a loopback mesh per
// iteration — four active instances, 1KiB payloads to every destination —
// so allocs/op reads directly as allocs/tick for the wire hot path
// (arena reads, vectored writes, self-delivery). The bench -guard gate
// watches the full-stack number; this one isolates the transport's own
// contribution.
func BenchmarkMeshTick(b *testing.B) {
	for _, n := range []int{4, 7} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			mesh, err := NewMesh(n)
			if err != nil {
				b.Fatal(err)
			}
			defer func() { _ = mesh.Close() }()
			const insts = 4
			payload := bytes.Repeat([]byte{0xa5}, 1024)
			outs := make([][]sim.MuxFrame, n)
			ins := make([][][][]byte, n)
			for id := 0; id < n; id++ {
				frames := make([]sim.MuxFrame, insts)
				for f := range frames {
					out := make([][]byte, n)
					for j := range out {
						out[j] = payload
					}
					frames[f] = sim.MuxFrame{Instance: f, Round: 1, Outbox: out}
				}
				outs[id] = frames
				ins[id] = make([][][]byte, n)
				for s := range ins[id] {
					ins[id][s] = make([][]byte, insts)
				}
			}
			b.SetBytes(int64(insts * (n - 1) * len(payload)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := mesh.Exchange(i, outs, ins); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
