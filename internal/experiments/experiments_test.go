package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func TestIDsAndRegistry(t *testing.T) {
	ids := IDs()
	want := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "F1", "F2", "F3"}
	if len(ids) != len(want) {
		t.Fatalf("ids = %v", ids)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("ids[%d] = %s, want %s", i, ids[i], want[i])
		}
	}
	if _, err := RunByID("E99"); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestTableMarkdown(t *testing.T) {
	tab := &Table{
		ID: "EX", Title: "Example", PaperClaim: "claim",
		Headers: []string{"a", "b"},
		Rows:    [][]string{{"1", "2"}},
		Notes:   []string{"note"},
		Text:    "tree\n",
	}
	md := tab.Markdown()
	for _, want := range []string{"### EX — Example", "*Paper claim:* claim", "| a | b |", "| 1 | 2 |", "```\ntree\n```", "- note"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
}

func TestHumanize(t *testing.T) {
	for in, want := range map[int]string{5: "5", 999: "999", 1500: "1.5k", 25000: "25k", 3000000: "3.0M"} {
		if got := human(in); got != want {
			t.Errorf("human(%d) = %q, want %q", in, got, want)
		}
	}
	if humanF(2.5e9) != "2.5G" || humanF(1.5e13) != "15.0T" || humanF(12) != "12.0" {
		t.Error("humanF formats")
	}
	if okFail(true) != "ok" || okFail(false) != "FAIL" {
		t.Error("okFail")
	}
	if ks := sortedKeys(map[int]int{3: 1, 1: 1}); len(ks) != 2 || ks[0] != 1 {
		t.Errorf("sortedKeys = %v", ks)
	}
}

func TestFaultPlacements(t *testing.T) {
	for _, n := range []int{7, 13, 21} {
		for tt := 1; tt <= 5; tt++ {
			incl := faultsIncludingSource(n, tt)
			excl := faultsAvoidingSource(n, tt)
			if len(incl) != tt || len(excl) != tt {
				t.Fatalf("n=%d t=%d: sizes %d/%d", n, tt, len(incl), len(excl))
			}
			if incl[0] != 0 {
				t.Fatal("incl must contain the source")
			}
			if member(excl, 0) {
				t.Fatal("excl contains the source")
			}
			seen := map[int]bool{}
			for _, id := range append(append([]int{}, incl...), excl...) {
				if id < 0 || id >= n {
					t.Fatalf("id %d out of range", id)
				}
				_ = seen
			}
			for i, id := range incl {
				for _, other := range incl[i+1:] {
					if id == other {
						t.Fatalf("duplicate in %v", incl)
					}
				}
			}
		}
	}
}

// TestFigureExperiments runs the cheap figure generators fully.
func TestFigureExperiments(t *testing.T) {
	for _, id := range []string{"F1", "F2", "F3"} {
		tab, err := RunByID(id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if tab.ID != id {
			t.Fatalf("%s returned id %s", id, tab.ID)
		}
		md := tab.Markdown()
		if len(md) < 100 {
			t.Fatalf("%s markdown suspiciously short:\n%s", id, md)
		}
	}
}

func TestF1ContainsTreeRendering(t *testing.T) {
	tab, err := F1Tree()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"the source said", "a said", "z said"} {
		if !strings.Contains(tab.Text, want) {
			t.Fatalf("F1 text missing %q:\n%s", want, tab.Text)
		}
	}
}

func TestF3SchedulePhasesSumToTotal(t *testing.T) {
	tab, err := F3PlanHybrid()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		// columns: t, b, n, t_AB, t_AC, A phase "...= kab", B "...= kbc", C "...= c", total
		kab := trailingInt(t, row[5])
		kbc := trailingInt(t, row[6])
		c := trailingInt(t, row[7])
		total, _ := strconv.Atoi(row[8])
		if kab+kbc+c != total {
			t.Fatalf("row %v: %d+%d+%d ≠ %d", row, kab, kbc, c, total)
		}
	}
}

func trailingInt(t *testing.T, s string) int {
	t.Helper()
	parts := strings.Split(s, "=")
	v, err := strconv.Atoi(strings.TrimSpace(parts[len(parts)-1]))
	if err != nil {
		t.Fatalf("bad cell %q", s)
	}
	return v
}

// TestE1Exponential runs the cheapest theorem experiment end to end and
// checks its verdict columns.
func TestE1Exponential(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep")
	}
	tab, err := E1Exponential()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if row[2] != row[3] {
			t.Errorf("rounds %s ≠ t+1 %s", row[2], row[3])
		}
		if row[8] != "0" {
			t.Errorf("violations = %s", row[8])
		}
	}
}

// TestE8Dynamics validates the per-block accounting table's checks all pass.
func TestE8Dynamics(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep")
	}
	tab, err := E8FaultDetection()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		if row[len(row)-1] == "FAIL" {
			t.Errorf("block progress violated: %v", row)
		}
	}
}

// TestE10AblationShowsFailures checks that the paper variant never fails
// and that at least one ablated variant does fail somewhere (the mechanisms
// are load-bearing).
func TestE10AblationShowsFailures(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep")
	}
	tab, err := E10Ablation()
	if err != nil {
		t.Fatal(err)
	}
	ablatedFailures := 0
	for _, row := range tab.Rows {
		variant, agreeFail := row[3], row[5]
		if variant == "paper (full rules)" {
			if agreeFail != "0" {
				t.Errorf("full rules failed agreement: %v", row)
			}
		} else {
			n, _ := strconv.Atoi(agreeFail)
			ablatedFailures += n
		}
	}
	if ablatedFailures == 0 {
		t.Error("no ablated variant ever failed — ablation shows nothing")
	}
}
