package experiments

import (
	"fmt"
	"strings"

	"shiftgears/internal/core"
	"shiftgears/internal/eigtree"
)

// F1Tree reproduces Figure 1: the Information Gathering Tree, rendered from
// a real 3-round execution state.
func F1Tree() (*Table, error) {
	tab := &Table{
		ID:    "F1",
		Title: "The Information Gathering Tree (Figure 1)",
		PaperClaim: "Node s·…·q·r stores \"the value that r says q says … the source said\"; no label " +
			"repeats on a path (Section 3, Fig. 1).",
	}
	enum, err := eigtree.NewEnum(5, 0, false, 2)
	if err != nil {
		return nil, err
	}
	tr := eigtree.NewTree(enum)
	tr.SetRoot(1)
	if _, err := tr.AddLevel(); err != nil {
		return nil, err
	}
	for q := 1; q < 5; q++ {
		if err := tr.StoreFrom(q, []eigtree.Value{1}); err != nil {
			return nil, err
		}
	}
	if _, err := tr.AddLevel(); err != nil {
		return nil, err
	}
	claims := make([]eigtree.Value, enum.Size(1))
	for q := 1; q < 5; q++ {
		for i := range claims {
			claims[i] = 1
		}
		if q == 3 { // a lying processor relays zeros
			for i := range claims {
				claims[i] = 0
			}
		}
		if err := tr.StoreFrom(q, claims); err != nil {
			return nil, err
		}
	}
	names := []string{"the source", "a", "b", "z", "c"}
	tab.Text = tr.Render(eigtree.RenderOptions{
		Name:       func(id int) string { return names[id] },
		ShowValues: true,
	})
	tab.Notes = append(tab.Notes,
		"Rendered from a live 3-round gathering state (n=5): the root is what the source said; each deeper "+
			"node chains one more attribution, here with processor z relaying zeros.",
		"Regenerate with: go run ./cmd/treeviz -n 5 -t 2 -liar 3")
	return tab, nil
}

// F2PlanB reproduces Figure 2: Algorithm B's block schedule across (t, b).
func F2PlanB() (*Table, error) {
	tab := &Table{
		ID:    "F2",
		Title: "Algorithm B(b) schedule (Figure 2)",
		PaperClaim: "\"Execute the Exponential Algorithm for 1 round; DO ⌊(t−1)/(b−1)⌋ times: execute rounds 2 " +
			"through b+1; tree(s) = resolve(s) OD; [partial block]; decide resolve(s).\"",
		Headers: []string{"t", "b", "schedule (rounds per block)", "total rounds", "Thm 3 bound"},
	}
	for _, t := range []int{4, 5, 6, 7} {
		n := 4*t + 1
		for b := 2; b <= t && b <= 5; b++ {
			plan, err := core.NewPlan(core.AlgorithmB, n, t, b, 0)
			if err != nil {
				return nil, err
			}
			tab.Rows = append(tab.Rows, []string{
				itoa(t), itoa(b), scheduleString(plan), itoa(plan.TotalRounds), itoa(plan.PaperRoundBound()),
			})
		}
	}
	tab.Notes = append(tab.Notes,
		"Each block gathers for the listed rounds and ends with shift_{k→1} via resolve; "+
			"the optimized final block absorbs (t−1) mod (b−1).")
	return tab, nil
}

// F3PlanHybrid reproduces Figure 3: the hybrid's three-phase schedule.
func F3PlanHybrid() (*Table, error) {
	tab := &Table{
		ID:    "F3",
		Title: "Hybrid schedule (Figure 3)",
		PaperClaim: "\"Run Algorithm A for exactly k_AB rounds; tree(s)=resolve'(s); run Algorithm B for " +
			"exactly k_BC rounds beginning with round 2; tree(s)=resolve(s); run Algorithm C for exactly " +
			"t−t_AC+1 rounds beginning with round 2; decide resolve(s).\"",
		Headers: []string{"t", "b", "n", "t_AB", "t_AC", "A phase", "B phase", "C phase", "total"},
	}
	for _, tc := range []struct{ t, b int }{{4, 3}, {5, 3}, {6, 3}, {8, 3}, {10, 3}, {6, 4}, {10, 4}} {
		n := 3*tc.t + 1
		plan, err := core.NewPlan(core.Hybrid, n, tc.t, tc.b, 0)
		if err != nil {
			return nil, err
		}
		hp := plan.Hybrid
		var aSeg, bSeg, cSeg []string
		for _, seg := range plan.Segments {
			switch {
			case seg.Kind == core.SegGather && seg.Conv == eigtree.ResolveSupport:
				aSeg = append(aSeg, itoa(seg.Rounds))
			case seg.Kind == core.SegGather:
				bSeg = append(bSeg, itoa(seg.Rounds))
			default:
				cSeg = append(cSeg, itoa(seg.Rounds))
			}
		}
		tab.Rows = append(tab.Rows, []string{
			itoa(tc.t), itoa(tc.b), itoa(n), itoa(hp.TAB), itoa(hp.TAC),
			fmt.Sprintf("1+[%s] = %d", strings.Join(aSeg, ","), hp.KAB),
			fmt.Sprintf("[%s] = %d", strings.Join(bSeg, ","), hp.KBC),
			fmt.Sprintf("[%s] = %d", strings.Join(cSeg, ","), hp.CRounds),
			itoa(plan.TotalRounds),
		})
	}
	tab.Notes = append(tab.Notes,
		"A-phase blocks use resolve' (Algorithm A), B-phase blocks resolve (Algorithm B), the final phase "+
			"is Algorithm C's echo rounds; the shifts land exactly at k_AB and k_AB+k_BC.")
	return tab, nil
}

func scheduleString(plan *core.Plan) string {
	var parts []string
	for _, seg := range plan.Segments {
		parts = append(parts, itoa(seg.Rounds))
	}
	return "1+[" + strings.Join(parts, ",") + "]"
}
