// Package experiments regenerates every table and figure of the paper's
// evaluation, as indexed in DESIGN.md: the round/message/computation bounds
// of Theorems 1–4 and Proposition 1 (E1–E5), the Coan and PSL comparisons
// (E6, E7), the fault-detection dynamics behind the block-progress lemmas
// (E8), the Section 5 extension comparison (E9), an ablation of fault
// discovery/masking (E10), the interactive-consistency and large-domain
// extensions (E11, E12), and the paper's three figures (F1–F3).
//
// Each experiment produces a Table that renders to markdown;
// cmd/experiments prints them, and EXPERIMENTS.md records the results.
package experiments

import (
	"fmt"
	"sort"
	"strings"
)

// Table is one experiment's result: a captioned grid plus free-form notes.
type Table struct {
	ID         string
	Title      string
	PaperClaim string
	Headers    []string
	Rows       [][]string
	Notes      []string
	// Text holds preformatted content (used by the figure "tables").
	Text string
}

// Markdown renders the table.
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", t.ID, t.Title)
	if t.PaperClaim != "" {
		fmt.Fprintf(&b, "*Paper claim:* %s\n\n", t.PaperClaim)
	}
	if len(t.Headers) > 0 {
		b.WriteString("| " + strings.Join(t.Headers, " | ") + " |\n")
		b.WriteString("|" + strings.Repeat("---|", len(t.Headers)) + "\n")
		for _, row := range t.Rows {
			b.WriteString("| " + strings.Join(row, " | ") + " |\n")
		}
		b.WriteString("\n")
	}
	if t.Text != "" {
		b.WriteString("```\n" + t.Text + "```\n\n")
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "- %s\n", n)
	}
	if len(t.Notes) > 0 {
		b.WriteString("\n")
	}
	return b.String()
}

// Experiment pairs an id with its generator.
type Experiment struct {
	ID    string
	Title string
	Run   func() (*Table, error)
}

// All returns every experiment in DESIGN.md order.
func All() []Experiment {
	return []Experiment{
		{"E1", "Exponential Algorithm (Proposition 1)", E1Exponential},
		{"E2", "Algorithm B family (Theorem 3)", E2AlgorithmB},
		{"E3", "Algorithm A family (Theorem 2)", E3AlgorithmA},
		{"E4", "Algorithm C (Theorem 4)", E4AlgorithmC},
		{"E5", "Hybrid Algorithm (Theorem 1, Main Theorem)", E5Hybrid},
		{"E6", "Rounds vs message-length trade-off vs Coan", E6Tradeoff},
		{"E7", "Exponential Algorithm vs PSL baseline", E7PSL},
		{"E8", "Per-block fault-detection dynamics", E8FaultDetection},
		{"E9", "Algorithm C vs Phase Queen (Section 5)", E9PhaseQueen},
		{"E10", "Ablation: fault discovery and masking", E10Ablation},
		{"E11", "Interactive consistency extension", E11Vector},
		{"E12", "Large-domain reduction extension (Section 2 remark)", E12Multivalued},
		{"F1", "Information Gathering Tree (Figure 1)", F1Tree},
		{"F2", "Algorithm B block schedule (Figure 2)", F2PlanB},
		{"F3", "Hybrid shift schedule (Figure 3)", F3PlanHybrid},
	}
}

// RunByID runs one experiment.
func RunByID(id string) (*Table, error) {
	for _, e := range All() {
		if strings.EqualFold(e.ID, id) {
			return e.Run()
		}
	}
	return nil, fmt.Errorf("experiments: unknown id %q", id)
}

// IDs lists the known experiment ids.
func IDs() []string {
	var out []string
	for _, e := range All() {
		out = append(out, e.ID)
	}
	return out
}

// itoa is shorthand.
func itoa(v int) string { return fmt.Sprintf("%d", v) }

// human renders big counts compactly (12.3k, 4.5M).
func human(v int) string {
	switch {
	case v >= 1_000_000:
		return fmt.Sprintf("%.1fM", float64(v)/1e6)
	case v >= 10_000:
		return fmt.Sprintf("%.0fk", float64(v)/1e3)
	case v >= 1_000:
		return fmt.Sprintf("%.1fk", float64(v)/1e3)
	default:
		return itoa(v)
	}
}

// humanF renders float counts compactly.
func humanF(v float64) string {
	switch {
	case v >= 1e12:
		return fmt.Sprintf("%.1fT", v/1e12)
	case v >= 1e9:
		return fmt.Sprintf("%.1fG", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.1fM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1fk", v/1e3)
	default:
		return fmt.Sprintf("%.1f", v)
	}
}

// okFail renders a boolean check.
func okFail(ok bool) string {
	if ok {
		return "ok"
	}
	return "FAIL"
}

// sortedKeys returns a map's keys in order (for deterministic notes).
func sortedKeys(m map[int]int) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
