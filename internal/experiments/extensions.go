package experiments

import (
	"fmt"

	"shiftgears"
	"shiftgears/internal/consensus"
	"shiftgears/internal/core"
)

// E11Vector measures interactive consistency — the Pease–Shostak–Lamport
// goal the paper's problem statement descends from — built by multiplexing
// n broadcast instances of a paper algorithm over the same rounds.
func E11Vector() (*Table, error) {
	tab := &Table{
		ID:    "E11",
		Title: "Interactive consistency over the paper's algorithms (extension)",
		PaperClaim: "PSL 1980's interactive consistency (all correct processors agree on the vector of " +
			"every processor's value) reduces to n parallel Byzantine broadcasts; the reproduction " +
			"multiplexes n instances of a paper algorithm into the same synchronous rounds.",
		Headers: []string{"engine", "n", "t", "b", "rounds", "max msg (bytes)", "1-instance msg", "multiplex factor", "vector agreement", "slot validity"},
	}
	type cfgT struct {
		alg     shiftgears.Algorithm
		coreAlg core.Algorithm
		n, t, b int
	}
	for _, tc := range []cfgT{
		{shiftgears.Exponential, core.Exponential, 7, 2, 0},
		{shiftgears.Exponential, core.Exponential, 10, 3, 0},
		{shiftgears.AlgorithmB, core.AlgorithmB, 13, 3, 2},
		{shiftgears.Hybrid, core.Hybrid, 10, 3, 3},
	} {
		inputs := make([]shiftgears.Value, tc.n)
		for i := range inputs {
			inputs[i] = shiftgears.Value(i % 5)
		}
		res, err := shiftgears.RunVector(shiftgears.VectorConfig{
			Algorithm: tc.alg, N: tc.n, T: tc.t, B: tc.b,
			Inputs: inputs, Faulty: faultsIncludingSource(tc.n, tc.t), Strategy: "splitbrain",
		})
		if err != nil {
			return nil, err
		}
		single, err := shiftgears.Run(shiftgears.Config{
			Algorithm: tc.alg, N: tc.n, T: tc.t, B: tc.b, SourceValue: 1,
		})
		if err != nil {
			return nil, err
		}
		factor := float64(res.MaxMessageBytes) / float64(single.MaxMessageBytes)
		tab.Rows = append(tab.Rows, []string{
			tc.alg.String(), itoa(tc.n), itoa(tc.t), itoa(tc.b),
			itoa(res.Rounds), human(res.MaxMessageBytes), human(single.MaxMessageBytes),
			fmt.Sprintf("%.1f×", factor),
			okFail(res.Agreement), okFail(res.SlotValidity),
		})
	}
	tab.Notes = append(tab.Notes,
		"Same round count as a single instance; messages grow by roughly n× plus framing — the classical "+
			"cost of interactive consistency.",
		"Reduce() over the agreed vector yields multi-valued consensus with each processor contributing "+
			"its own input (see examples/vector).")
	return tab, nil
}

// E12Multivalued measures the paper's Section 2 remark: converting a large
// value domain to a binary agreement "at the cost of two rounds".
func E12Multivalued() (*Table, error) {
	tab := &Table{
		ID:    "E12",
		Title: "Large value domains: the two-round reduction (Section 2 remark)",
		PaperClaim: "\"If |V| is very large we may apply techniques of Coan (1987) to convert the set to two " +
			"elements, at the cost of two rounds.\" Implemented as a Turpin–Coan-style reduction feeding the " +
			"phase protocol (n ≥ 4t+1).",
		Headers: []string{"t", "n", "rounds", "binary engine rounds", "reduction cost", "max msg (bytes)", "adversarial runs", "violations"},
	}
	for _, t := range []int{2, 3, 4, 5} {
		n := 4*t + 1
		res, err := shiftgears.Run(shiftgears.Config{
			Algorithm: shiftgears.Multivalued, N: n, T: t, SourceValue: 201,
		})
		if err != nil {
			return nil, err
		}
		if !res.Agreement || res.DecisionValue != 201 {
			return nil, fmt.Errorf("E12: t=%d failed validity (decision %d)", t, res.DecisionValue)
		}
		binary, err := shiftgears.Run(shiftgears.Config{
			Algorithm: shiftgears.PhaseQueen, N: n, T: t, SourceValue: 1,
		})
		if err != nil {
			return nil, err
		}
		runs, viol, err := adversarySweep(shiftgears.Multivalued, n, t, 0, 1)
		if err != nil {
			return nil, err
		}
		tab.Rows = append(tab.Rows, []string{
			itoa(t), itoa(n), itoa(res.Rounds), itoa(binary.Rounds),
			itoa(res.Rounds - binary.Rounds),
			itoa(res.MaxMessageBytes), itoa(runs), itoa(viol),
		})
	}
	tab.Notes = append(tab.Notes,
		"The reduction costs exactly two rounds over the binary engine, as the remark promises, and keeps "+
			"every post-reduction message at one byte no matter how large the domain (here |V| = 256).",
		"This variant inherits the binary engine's n ≥ 4t+1; Turpin and Coan's original threshold scheme "+
			"achieves n ≥ 3t+1 (DESIGN.md).")
	return tab, nil
}

// vectorFrameOverhead is referenced by tests to document the framing cost.
func vectorFrameOverhead(n int, payloadLens []int) int {
	frames := make([][]byte, n)
	for i, ln := range payloadLens {
		if i < n && ln > 0 {
			frames[i] = make([]byte, ln)
		}
	}
	return len(consensus.EncodeFrames(frames))
}
