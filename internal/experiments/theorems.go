package experiments

import (
	"fmt"

	"shiftgears"
	"shiftgears/internal/core"
)

// adversarySweep runs every strategy over two fault placements (t faults
// including the source; t faults avoiding it) and seeds, returning total
// runs and violations of agreement∧validity.
func adversarySweep(alg shiftgears.Algorithm, n, t, b, seeds int) (runs, violations int, err error) {
	placements := [][]int{faultsIncludingSource(n, t), faultsAvoidingSource(n, t)}
	for _, strat := range []string{
		"silent", "crash", "omit", "garbage", "splitbrain",
		"flip", "noise", "sleeper", "seesaw", "collude",
	} {
		for _, faulty := range placements {
			for seed := int64(0); seed < int64(seeds); seed++ {
				res, rerr := shiftgears.Run(shiftgears.Config{
					Algorithm: alg, N: n, T: t, B: b,
					SourceValue: 1, Faulty: faulty, Strategy: strat, Seed: seed,
				})
				if rerr != nil {
					return runs, violations, fmt.Errorf("%v n=%d t=%d %s: %w", alg, n, t, strat, rerr)
				}
				runs++
				if !res.Agreement || !res.Validity {
					violations++
				}
			}
		}
	}
	return runs, violations, nil
}

func faultsIncludingSource(n, t int) []int {
	out := []int{0}
	for i := 1; len(out) < t; i++ {
		id := (3*i + 2) % n
		if id != 0 && !member(out, id) {
			out = append(out, id)
		}
	}
	return out
}

func faultsAvoidingSource(n, t int) []int {
	var out []int
	for i := 0; len(out) < t; i++ {
		id := (2*i + 1) % n
		if id != 0 && !member(out, id) {
			out = append(out, id)
		}
	}
	return out
}

func member(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// E1Exponential reproduces Proposition 1: agreement in t+1 rounds for
// n ≥ 3t+1, with message length growing as the leaf count of the t-round
// tree.
func E1Exponential() (*Table, error) {
	tab := &Table{
		ID:    "E1",
		Title: "Exponential Algorithm (Proposition 1)",
		PaperClaim: "Byzantine agreement in t+1 rounds for n ≥ 3t+1; " +
			"messages of size O(n^{h-1}) in round h+1 (Section 3).",
		Headers: []string{"t", "n", "rounds", "t+1", "max msg (bytes)", "paper bound (values)", "resolve ops", "adversarial runs", "violations"},
	}
	for t := 1; t <= 4; t++ {
		n := 3*t + 1
		clean, err := shiftgears.Run(shiftgears.Config{Algorithm: shiftgears.Exponential, N: n, T: t, SourceValue: 1})
		if err != nil {
			return nil, err
		}
		plan, err := core.NewPlan(core.Exponential, n, t, 0, 0)
		if err != nil {
			return nil, err
		}
		runs, viol, err := adversarySweep(shiftgears.Exponential, n, t, 0, 2)
		if err != nil {
			return nil, err
		}
		tab.Rows = append(tab.Rows, []string{
			itoa(t), itoa(n), itoa(clean.Rounds), itoa(t + 1),
			human(clean.MaxMessageBytes), human(plan.MessageBoundNodes()),
			human(clean.ResolveOps), itoa(runs), itoa(viol),
		})
	}
	tab.Notes = append(tab.Notes,
		"Rounds match t+1 exactly; max message bytes equal the paper bound (1 byte per tree node).",
		"Message size grows exponentially with t — the motivation for shifting (Section 4).")
	return tab, nil
}

// E2AlgorithmB reproduces Theorem 3's round/message/computation bounds.
func E2AlgorithmB() (*Table, error) {
	tab := &Table{
		ID:    "E2",
		Title: "Algorithm B family (Theorem 3)",
		PaperClaim: "t+1+⌊(t−1)/(b−1)⌋ rounds, messages O(n^b) bits, local computation " +
			"O(n^{b+1}(t−1)/(b−1)), for n ≥ 4t+1.",
		Headers: []string{"t", "b", "n", "rounds", "Thm 3 bound", "max msg (bytes)", "n^b cap (values)", "resolve+discovery ops", "adversarial runs", "violations"},
	}
	for _, t := range []int{3, 4, 5, 6} {
		n := 4*t + 1
		for b := 2; b <= t && b <= 4; b++ {
			clean, err := shiftgears.Run(shiftgears.Config{Algorithm: shiftgears.AlgorithmB, N: n, T: t, B: b, SourceValue: 1})
			if err != nil {
				return nil, err
			}
			runs, viol, err := adversarySweep(shiftgears.AlgorithmB, n, t, b, 1)
			if err != nil {
				return nil, err
			}
			nPowB := 1
			for i := 0; i < b; i++ {
				nPowB *= n
			}
			tab.Rows = append(tab.Rows, []string{
				itoa(t), itoa(b), itoa(n), itoa(clean.Rounds), itoa(clean.PaperRoundBound),
				human(clean.MaxMessageBytes), human(nPowB),
				human(clean.ResolveOps + clean.DiscoveryReads), itoa(runs), itoa(viol),
			})
		}
	}
	tab.Notes = append(tab.Notes,
		"Measured rounds equal the closed-form schedule (one fewer than the worst-case bound when (b−1)|(t−1)).",
		"Max message bytes stay below n^b while rounds shrink as b grows: the Coan trade-off without exponential local work.")
	return tab, nil
}

// E3AlgorithmA reproduces Theorem 2.
func E3AlgorithmA() (*Table, error) {
	tab := &Table{
		ID:    "E3",
		Title: "Algorithm A family (Theorem 2)",
		PaperClaim: "t+2+2⌊(t−1)/(b−2)⌋ rounds, messages O(n^b) bits, local computation " +
			"O(n^{b+1}(t−1)/(b−2)), for n ≥ 3t+1 — resolve' conversion with ⊥.",
		Headers: []string{"t", "b", "n", "rounds", "Thm 2 bound", "max msg (bytes)", "n^b cap (values)", "resolve+discovery ops", "adversarial runs", "violations"},
	}
	for _, t := range []int{3, 4, 5, 6} {
		n := 3*t + 1
		for b := 3; b <= t && b <= 4; b++ {
			clean, err := shiftgears.Run(shiftgears.Config{Algorithm: shiftgears.AlgorithmA, N: n, T: t, B: b, SourceValue: 1})
			if err != nil {
				return nil, err
			}
			runs, viol, err := adversarySweep(shiftgears.AlgorithmA, n, t, b, 1)
			if err != nil {
				return nil, err
			}
			nPowB := 1
			for i := 0; i < b; i++ {
				nPowB *= n
			}
			tab.Rows = append(tab.Rows, []string{
				itoa(t), itoa(b), itoa(n), itoa(clean.Rounds), itoa(clean.PaperRoundBound),
				human(clean.MaxMessageBytes), human(nPowB),
				human(clean.ResolveOps + clean.DiscoveryReads), itoa(runs), itoa(viol),
			})
		}
	}
	tab.Notes = append(tab.Notes,
		"Algorithm A pays roughly twice Algorithm B's extra rounds (2⌊(t−1)/(b−2)⌋ vs ⌊(t−1)/(b−1)⌋) "+
			"in exchange for optimal resilience n ≥ 3t+1.")
	return tab, nil
}

// E4AlgorithmC reproduces Theorem 4.
func E4AlgorithmC() (*Table, error) {
	tab := &Table{
		ID:    "E4",
		Title: "Algorithm C (Theorem 4, Dolev–Reischuk–Strong adaptation)",
		PaperClaim: "t+1 rounds, messages O(n) bits, local computation O(n^2.5), " +
			"for 2 < t ≤ ⌊√(n/2)⌋.",
		Headers: []string{"t", "n", "rounds", "t+1", "max msg (bytes)", "n", "ops/processor", "ops / n^2.5", "adversarial runs", "violations"},
	}
	for _, t := range []int{2, 3, 4, 5} {
		n := 2 * t * t
		if n <= 4*t {
			n = 4*t + 1
		}
		clean, err := shiftgears.Run(shiftgears.Config{Algorithm: shiftgears.AlgorithmC, N: n, T: t, SourceValue: 1})
		if err != nil {
			return nil, err
		}
		runs, viol, err := adversarySweep(shiftgears.AlgorithmC, n, t, 0, 2)
		if err != nil {
			return nil, err
		}
		n25 := float64(n) * float64(n) * isqrtF(n)
		perProc := float64(clean.ResolveOps) / float64(n-1)
		tab.Rows = append(tab.Rows, []string{
			itoa(t), itoa(n), itoa(clean.Rounds), itoa(t + 1),
			itoa(clean.MaxMessageBytes), itoa(n),
			human(int(perProc)), fmt.Sprintf("%.2f", perProc/n25),
			itoa(runs), itoa(viol),
		})
	}
	tab.Notes = append(tab.Notes,
		"Max message is exactly n bytes (the intermediate-vertex vector).",
		"Per-processor ops / n^2.5 stays bounded (≈1) as n grows 9→50 — local computation is O(n^2.5) "+
			"as claimed: O(n²) per round over t+1 ≈ √(n/2) rounds.")
	return tab, nil
}

func isqrtF(n int) float64 {
	lo := 0.0
	for (lo+1)*(lo+1) <= float64(n) {
		lo++
	}
	return lo
}

// E5Hybrid reproduces Theorem 1 (the Main Theorem).
func E5Hybrid() (*Table, error) {
	tab := &Table{
		ID:    "E5",
		Title: "Hybrid Algorithm (Theorem 1, Main Theorem)",
		PaperClaim: "t-resilient agreement (n ≥ 3t+1) in k_AB + k_BC + t − t_AC + 1 = " +
			"t + 2⌊(t_AB−1)/(b−2)⌋ + ⌊t_BC/(b−1)⌋ + 4 rounds with O(n^b)-bit messages.",
		Headers: []string{"t", "b", "n", "k_AB", "k_BC", "C rounds", "total", "Thm 1 formula", "A(b) rounds", "saved", "violations"},
	}
	for _, tc := range []struct{ t, b int }{
		{4, 3}, {5, 3}, {6, 3}, {7, 3}, {8, 3}, {10, 3},
		{5, 4}, {6, 4}, {8, 4}, {10, 4}, {6, 5},
	} {
		n := 3*tc.t + 1
		plan, err := core.NewPlan(core.Hybrid, n, tc.t, tc.b, 0)
		if err != nil {
			return nil, err
		}
		hp := plan.Hybrid
		clean, err := shiftgears.Run(shiftgears.Config{Algorithm: shiftgears.Hybrid, N: n, T: tc.t, B: tc.b, SourceValue: 1})
		if err != nil {
			return nil, err
		}
		aPlan, err := core.NewPlan(core.AlgorithmA, n, tc.t, tc.b, 0)
		if err != nil {
			return nil, err
		}
		formula := tc.t + 2*((hp.TAB-1)/(tc.b-2)) + hp.TBC/(tc.b-1) + 4
		// The adversarial sweep is bounded to t ≤ 6: larger instances take
		// minutes each (O(n^{b+1}) work per processor) without adding
		// coverage — the formula and dominance checks still run.
		violCol := "—"
		if tc.t <= 6 {
			_, viol, err := adversarySweep(shiftgears.Hybrid, n, tc.t, tc.b, 1)
			if err != nil {
				return nil, err
			}
			violCol = itoa(viol)
		}
		tab.Rows = append(tab.Rows, []string{
			itoa(tc.t), itoa(tc.b), itoa(n),
			itoa(hp.KAB), itoa(hp.KBC), itoa(hp.CRounds),
			itoa(clean.Rounds), itoa(formula), itoa(aPlan.TotalRounds),
			itoa(aPlan.TotalRounds - clean.Rounds), violCol,
		})
	}
	tab.Notes = append(tab.Notes,
		"Measured totals equal the Theorem 1 closed form; the saving over Algorithm A grows with t "+
			"(the hybrid \"dominates all our others\", Section 1).",
		"Rows with t ≤ 6 ran the 20-run adversarial sweep (strategies × fault placements) with the listed "+
			"violations (0); larger instances are validated by the integration test suite instead.")
	return tab, nil
}
