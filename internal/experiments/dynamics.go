package experiments

import (
	"fmt"

	"shiftgears/internal/adversary"
	"shiftgears/internal/core"
	"shiftgears/internal/eigtree"
	"shiftgears/internal/sim"
)

// runCore executes a plan directly on the core layer (the experiments that
// need round-boundary snapshots or ablation options bypass the public API).
func runCore(plan *core.Plan, opts core.Options, faulty []int, strat string, seed int64,
	hook func(round int, reps []*core.Replica)) ([]*core.Replica, error) {

	env, err := core.NewEnv(plan)
	if err != nil {
		return nil, err
	}
	env.Opts = opts
	isFaulty := map[int]bool{}
	for _, f := range faulty {
		isFaulty[f] = true
	}
	reps := make([]*core.Replica, plan.N)
	procs := make([]sim.Processor, plan.N)
	for id := 0; id < plan.N; id++ {
		rep, err := core.NewReplica(env, id, 1, nil)
		if err != nil {
			return nil, err
		}
		reps[id] = rep
		if isFaulty[id] {
			// One strategy instance per faulty processor: stateful
			// strategies (stutter) carry per-processor state, and sharing
			// one instance would mix the processors' payload histories.
			st, err := adversary.New(strat, plan.TotalRounds)
			if err != nil {
				return nil, err
			}
			procs[id] = adversary.NewProcessor(rep, st, seed, plan.N)
		} else {
			procs[id] = rep
		}
	}
	var simOpts []sim.Option
	if hook != nil {
		simOpts = append(simOpts, sim.WithRoundHook(func(r int) { hook(r, reps) }))
	}
	nw, err := sim.NewNetwork(procs, simOpts...)
	if err != nil {
		return nil, err
	}
	if _, err := nw.Run(plan.TotalRounds); err != nil {
		return nil, err
	}
	return reps, nil
}

// correctOf filters the correct non-source replicas.
func correctOf(plan *core.Plan, reps []*core.Replica, faulty []int) []*core.Replica {
	isFaulty := map[int]bool{}
	for _, f := range faulty {
		isFaulty[f] = true
	}
	var out []*core.Replica
	for id, rep := range reps {
		if !isFaulty[id] && id != plan.Source {
			out = append(out, rep)
		}
	}
	return out
}

// globalOf intersects the correct replicas' fault lists, minus the source.
func globalOf(plan *core.Plan, correct []*core.Replica) map[int]bool {
	out := map[int]bool{}
	if len(correct) == 0 {
		return out
	}
	for _, p := range correct[0].Faults().Members() {
		out[p] = true
	}
	for _, rep := range correct[1:] {
		for p := range out {
			if !rep.Faults().Contains(p) {
				delete(out, p)
			}
		}
	}
	delete(out, plan.Source)
	return out
}

// agreementOf checks whether all correct replicas decided one value.
func agreementOf(correct []*core.Replica) (eigtree.Value, bool) {
	var common eigtree.Value
	for i, rep := range correct {
		v, ok := rep.Decided()
		if !ok {
			return 0, false
		}
		if i == 0 {
			common = v
		} else if v != common {
			return 0, false
		}
	}
	return common, true
}

// RunCoreScenario executes one core-level run with ablation options and
// reports whether the correct replicas reached agreement. It is the entry
// point the benchmark harness uses for the E10 ablation.
func RunCoreScenario(plan *core.Plan, opts core.Options, faulty []int, strat string, seed int64) (bool, error) {
	reps, err := runCore(plan, opts, faulty, strat, seed, nil)
	if err != nil {
		return false, err
	}
	_, ok := agreementOf(correctOf(plan, reps, faulty))
	return ok, nil
}

// E8FaultDetection traces the per-block accounting behind Propositions 2
// and 3: a block that ends without a persistent value globally detects at
// least b−1 (Algorithm B) / b−2 (Algorithm A) new faults besides the source.
func E8FaultDetection() (*Table, error) {
	tab := &Table{
		ID:    "E8",
		Title: "Per-block fault detection (Propositions 2 and 3)",
		PaperClaim: "\"Each block of b rounds that produces trees without a common frontier results in the " +
			"global detection of at least b−1 [B] / b−2 [A] new faults besides the source.\" Detection + " +
			"masking launder equivocation into common subtree values; removing masking lets splits survive.",
		Headers: []string{"algorithm", "t", "b", "variant", "block (end round)", "unanimous pref?", "new global detections", "required", "check"},
	}
	type scenario struct {
		alg     core.Algorithm
		n, t, b int
		minNew  int
		strat   string
		opts    core.Options
		variant string
	}
	for _, sc := range []scenario{
		{core.AlgorithmB, 21, 5, 3, 2, "splitbrain", core.Options{}, "full rules"},
		{core.AlgorithmA, 16, 5, 4, 2, "splitbrain", core.Options{}, "full rules"},
		{core.AlgorithmA, 16, 5, 4, 2, "splitbrain", core.Options{DisableMasking: true}, "no masking"},
		{core.AlgorithmA, 13, 4, 3, 1, "splitbrain", core.Options{DisableMasking: true}, "no masking"},
	} {
		plan, err := core.NewPlan(sc.alg, sc.n, sc.t, sc.b, 0)
		if err != nil {
			return nil, err
		}
		faulty := faultsIncludingSource(sc.n, sc.t)

		boundaries := map[int]int{} // round → block index
		r, blk := 1, 0
		for _, seg := range plan.Segments {
			r += seg.Rounds
			boundaries[r] = blk
			blk++
		}

		type snap struct {
			round     int
			unanimous bool
			global    int
			fullBlock bool
		}
		var snaps []snap
		hook := func(round int, reps []*core.Replica) {
			bi, ok := boundaries[round]
			if !ok {
				return
			}
			correct := correctOf(plan, reps, faulty)
			prefs := map[eigtree.Value]bool{}
			for _, rep := range correct {
				prefs[rep.Preferred()] = true
			}
			snaps = append(snaps, snap{
				round:     round,
				unanimous: len(prefs) == 1,
				global:    len(globalOf(plan, correct)),
				fullBlock: plan.Segments[bi].Rounds == sc.b,
			})
		}
		reps, err := runCore(plan, sc.opts, faulty, sc.strat, 3, hook)
		if err != nil {
			return nil, err
		}
		fullRules := sc.variant == "full rules"
		if _, ok := agreementOf(correctOf(plan, reps, faulty)); !ok && fullRules {
			return nil, fmt.Errorf("E8: agreement lost in %v scenario", sc.alg)
		}

		prev := 0
		for _, s := range snaps {
			required := "-"
			check := "ok"
			switch {
			case !fullRules:
				required, check = "n/a", "-"
			case !s.unanimous && s.fullBlock:
				required = fmt.Sprintf("≥ %d", sc.minNew)
				check = okFail(s.global-prev >= sc.minNew)
			}
			tab.Rows = append(tab.Rows, []string{
				sc.alg.String(), itoa(sc.t), itoa(sc.b), sc.variant,
				itoa(s.round), fmt.Sprintf("%v", s.unanimous),
				itoa(s.global - prev), required, check,
			})
			prev = s.global
		}
	}
	tab.Notes = append(tab.Notes,
		"Under the full rules every split-brain equivocation is discovered inside its block, masked, and "+
			"laundered into a common subtree value, so a persistent value exists by the first boundary and the "+
			"quota never has to fire — the guarantee working as designed, not a vacuous check.",
		"With masking disabled (Algorithm A at n = 3t+1) the same adversary keeps correct preferences split "+
			"across block boundaries (unanimous=false rows) and agreement eventually fails (see E10): the "+
			"mechanisms, not redundancy, carry the block-progress guarantee at optimal resilience.")
	return tab, nil
}

// E10Ablation disables fault discovery or masking and measures how often
// Algorithm B then fails agreement under equivocating faults — showing both
// mechanisms are load-bearing for the block-progress guarantee.
func E10Ablation() (*Table, error) {
	tab := &Table{
		ID:    "E10",
		Title: "Ablation: fault discovery and fault masking",
		PaperClaim: "The proofs hang on discovery+masking: \"once a processor is globally detected, ... its " +
			"ability to prevent emergence of a persistent value is destroyed\" (Section 4.4). Removing either " +
			"mechanism forfeits the fixed-round guarantee.",
		Headers: []string{"algorithm", "t", "b", "variant", "runs", "agreement failures", "validity failures"},
	}
	type variant struct {
		name string
		opts core.Options
	}
	variants := []variant{
		{"paper (full rules)", core.Options{}},
		{"no discovery", core.Options{DisableDiscovery: true}},
		{"no masking", core.Options{DisableMasking: true}},
	}
	type scenario struct {
		alg     core.Algorithm
		n, t, b int
	}
	for _, sc := range []scenario{
		{core.AlgorithmB, 17, 4, 3},
		{core.AlgorithmA, 13, 4, 3},
	} {
		for _, v := range variants {
			runs, agreeFail, validFail := 0, 0, 0
			for _, strat := range []string{"splitbrain", "collude", "noise"} {
				for seed := int64(0); seed < 8; seed++ {
					plan, err := core.NewPlan(sc.alg, sc.n, sc.t, sc.b, 0)
					if err != nil {
						return nil, err
					}
					faulty := faultsIncludingSource(sc.n, sc.t)
					reps, err := runCore(plan, v.opts, faulty, strat, seed, nil)
					if err != nil {
						return nil, err
					}
					correct := correctOf(plan, reps, faulty)
					runs++
					val, ok := agreementOf(correct)
					if !ok {
						agreeFail++
					}
					_ = val
				}
			}
			// Validity scenario: correct source, sleeper faults.
			for seed := int64(0); seed < 8; seed++ {
				plan, err := core.NewPlan(sc.alg, sc.n, sc.t, sc.b, 0)
				if err != nil {
					return nil, err
				}
				faulty := faultsAvoidingSource(sc.n, sc.t)
				reps, err := runCore(plan, v.opts, faulty, "splitbrain", seed, nil)
				if err != nil {
					return nil, err
				}
				correct := correctOf(plan, reps, faulty)
				runs++
				val, ok := agreementOf(correct)
				if !ok {
					agreeFail++
				} else if val != 1 {
					validFail++
				}
			}
			tab.Rows = append(tab.Rows, []string{
				sc.alg.String(), itoa(sc.t), itoa(sc.b), v.name,
				itoa(runs), itoa(agreeFail), itoa(validFail),
			})
		}
	}
	tab.Notes = append(tab.Notes,
		"With the paper's full rules every run agrees. At optimal resilience (Algorithm A, n = 3t+1), "+
			"disabling discovery or masking lets equivocators keep correct preferences split block after "+
			"block and agreement fails within the fixed schedule.",
		"Algorithm B's extra redundancy (n = 4t+1) happens to absorb this strategy library even when "+
			"ablated — its majorities are too wide for generic equivocation — but the round bound's proof "+
			"still needs the mechanisms; the failures at n = 3t+1 show they are load-bearing exactly where "+
			"resilience is tight.")
	return tab, nil
}
