package experiments

import (
	"fmt"

	"shiftgears"
	"shiftgears/internal/baseline"
)

// E6Tradeoff compares the measured rounds/message/computation trade-off of
// Algorithms A and B against the analytic Coan model: equal trade-off
// curves, polynomial versus exponential local computation.
func E6Tradeoff() (*Table, error) {
	tab := &Table{
		ID:    "E6",
		Title: "Rounds vs message length: Algorithms A/B vs Coan's families",
		PaperClaim: "The families \"achieve the rounds versus number of message bits trade-off " +
			"exhibited by Coan's families, but avoid the exponential local computation of his algorithms\" (Section 1, 4).",
		Headers: []string{"family", "t", "b", "n", "rounds", "max msg (bytes)", "local ops (measured)", "Coan rounds", "Coan local ops (model)", "ours/Coan ops"},
	}
	type cfg struct {
		alg  shiftgears.Algorithm
		name string
		n, t int
	}
	// Part 1: trade-off curve at fixed t, sweeping b.
	families := []cfg{
		{shiftgears.AlgorithmA, "A", 16, 5},
		{shiftgears.AlgorithmB, "B", 21, 5},
	}
	for _, fam := range families {
		minB := 3
		if fam.alg == shiftgears.AlgorithmB {
			minB = 2
		}
		for b := minB; b <= fam.t; b++ {
			row, err := tradeoffRow(fam.alg, fam.name, fam.n, fam.t, b)
			if err != nil {
				return nil, err
			}
			tab.Rows = append(tab.Rows, row)
		}
	}
	// Part 2: scaling in t at fixed b = 3 — where Coan's exponential local
	// computation separates from the families' polynomial one.
	for _, t := range []int{4, 5, 6, 7, 8} {
		row, err := tradeoffRow(shiftgears.AlgorithmA, "A", 3*t+1, t, 3)
		if err != nil {
			return nil, err
		}
		tab.Rows = append(tab.Rows, row)
	}
	tab.Notes = append(tab.Notes,
		"Rounds fall and messages grow with b along the same curve as the Coan model (rows 1–7).",
		"At fixed b = 3 and growing t (last rows), our per-processor work grows polynomially while the "+
			"Coan model's O(n^t) column explodes — the ops ratio collapses from ~10⁻¹ to ~10⁻⁵, the paper's "+
			"claimed separation.")
	return tab, nil
}

// tradeoffRow measures one (algorithm, n, t, b) point. Local operations are
// reported per correct processor to match the per-processor Coan model.
func tradeoffRow(alg shiftgears.Algorithm, name string, n, t, b int) ([]string, error) {
	res, err := shiftgears.Run(shiftgears.Config{Algorithm: alg, N: n, T: t, B: b, SourceValue: 1})
	if err != nil {
		return nil, err
	}
	coan := baseline.CoanModel(n, t, b)
	perProc := float64(res.ResolveOps+res.DiscoveryReads) / float64(n-1)
	return []string{
		name, itoa(t), itoa(b), itoa(n),
		itoa(res.Rounds), human(res.MaxMessageBytes),
		humanF(perProc), itoa(coan.Rounds), humanF(coan.LocalOps),
		fmt.Sprintf("%.2e", perProc/coan.LocalOps),
	}, nil
}

// E7PSL compares the paper's Exponential Algorithm with the original
// Pease–Shostak–Lamport oral-messages algorithm it simplifies.
func E7PSL() (*Table, error) {
	tab := &Table{
		ID:    "E7",
		Title: "Exponential Algorithm vs Pease–Shostak–Lamport OM(t)",
		PaperClaim: "The Exponential Algorithm \"is a simplification of the original ... algorithm due to " +
			"Pease, Shostak, and Lamport, and is of comparable complexity\" (Section 1).",
		Headers: []string{"t", "n", "rounds (both)", "EIG max msg (bytes)", "PSL max msg (bytes)", "PSL/EIG msg ratio", "decisions agree (runs)"},
	}
	for t := 1; t <= 3; t++ {
		n := 3*t + 1
		eig, err := shiftgears.Run(shiftgears.Config{Algorithm: shiftgears.Exponential, N: n, T: t, SourceValue: 1})
		if err != nil {
			return nil, err
		}
		psl, err := shiftgears.Run(shiftgears.Config{Algorithm: shiftgears.PSL, N: n, T: t, SourceValue: 1})
		if err != nil {
			return nil, err
		}
		if eig.Rounds != psl.Rounds {
			return nil, fmt.Errorf("round mismatch: EIG %d, PSL %d", eig.Rounds, psl.Rounds)
		}
		// Cross-check decisions on identical benign-fault executions.
		match, total := 0, 0
		for _, strat := range []string{"silent", "crash", "sleeper"} {
			for seed := int64(0); seed < 3; seed++ {
				faulty := faultsAvoidingSource(n, t)
				a, err := shiftgears.Run(shiftgears.Config{
					Algorithm: shiftgears.Exponential, N: n, T: t, SourceValue: 1,
					Faulty: faulty, Strategy: strat, Seed: seed,
				})
				if err != nil {
					return nil, err
				}
				b, err := shiftgears.Run(shiftgears.Config{
					Algorithm: shiftgears.PSL, N: n, T: t, SourceValue: 1,
					Faulty: faulty, Strategy: strat, Seed: seed,
				})
				if err != nil {
					return nil, err
				}
				total++
				if a.DecisionValue == b.DecisionValue {
					match++
				}
			}
		}
		tab.Rows = append(tab.Rows, []string{
			itoa(t), itoa(n), itoa(eig.Rounds),
			human(eig.MaxMessageBytes), human(psl.MaxMessageBytes),
			fmt.Sprintf("%.1f×", float64(psl.MaxMessageBytes)/float64(eig.MaxMessageBytes)),
			fmt.Sprintf("%d/%d", match, total),
		})
	}
	tab.Notes = append(tab.Notes,
		"Same t+1 rounds and the same exponential tree; PSL's historical path-labelled wire format costs "+
			"(h+2) bytes per tree node versus 1 byte for the paper's canonical enumeration — comparable complexity, larger constant.",
		"On identical benign-fault executions the two algorithms decide identically (differential check).")
	return tab, nil
}

// E9PhaseQueen compares Algorithm C with the Section 5 era of constant-
// message protocols (Berman–Garay–Perry style Phase Queen).
func E9PhaseQueen() (*Table, error) {
	tab := &Table{
		ID:    "E9",
		Title: "Algorithm C vs Phase Queen (Section 5, Recent Results)",
		PaperClaim: "Section 5 surveys successors (Berman–Garay–Perry) that achieve constant-size messages " +
			"with more rounds; Algorithm C trades O(n)-byte messages for t+1 rounds at resilience √(n/2).",
		Headers: []string{"t", "C: n", "C rounds", "C max msg", "Queen: n", "Queen rounds", "Queen max msg", "violations (C+Queen sweep)"},
	}
	for _, t := range []int{2, 3, 4, 5} {
		nC := 2 * t * t
		if nC <= 4*t {
			nC = 4*t + 1
		}
		nQ := 4*t + 1
		c, err := shiftgears.Run(shiftgears.Config{Algorithm: shiftgears.AlgorithmC, N: nC, T: t, SourceValue: 1})
		if err != nil {
			return nil, err
		}
		q, err := shiftgears.Run(shiftgears.Config{Algorithm: shiftgears.PhaseQueen, N: nQ, T: t, SourceValue: 1})
		if err != nil {
			return nil, err
		}
		_, violC, err := adversarySweep(shiftgears.AlgorithmC, nC, t, 0, 1)
		if err != nil {
			return nil, err
		}
		_, violQ, err := adversarySweep(shiftgears.PhaseQueen, nQ, t, 0, 1)
		if err != nil {
			return nil, err
		}
		tab.Rows = append(tab.Rows, []string{
			itoa(t), itoa(nC), itoa(c.Rounds), fmt.Sprintf("%dB", c.MaxMessageBytes),
			itoa(nQ), itoa(q.Rounds), fmt.Sprintf("%dB", q.MaxMessageBytes),
			itoa(violC + violQ),
		})
	}
	tab.Notes = append(tab.Notes,
		"Algorithm C is round-optimal (t+1) but needs n ≥ 2t² processors; the phase protocol needs only "+
			"n ≥ 4t+1 and 1-byte messages but pays ≈2× the rounds — the trade the later literature explored.")
	return tab, nil
}
