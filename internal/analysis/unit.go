package analysis

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"log"
	"os"
	"path/filepath"
	"strings"
)

// Config mirrors the JSON compilation-unit description `go vet` hands a
// -vettool for each package (the unpublished but stable vet protocol;
// x/tools' unitchecker documents the same shape). Only the fields this
// driver consumes are declared.
type Config struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string // import path → package path
	PackageFile               map[string]string // package path → export data file
	Standard                  map[string]bool
	VetxOnly                  bool   // facts-only run for a dependency
	VetxOutput                string // where the driver must write its facts file
	SucceedOnTypecheckFailure bool
}

// Main is the entry point of a vet-compatible analysis tool built from
// this package's analyzers. The protocol `go vet -vettool=...` speaks:
//
//	tool -V=full     print an executable fingerprint (build caching)
//	tool -flags      print supported flags as JSON
//	tool foo.cfg     analyze the one compilation unit foo.cfg describes
//
// Diagnostics go to stderr as file:line:col lines; a nonzero exit says
// findings (or errors) occurred. The driver runs entirely on the
// standard library: types for dependencies come from the export-data
// files the build system lists in the config, facts are not used (an
// empty vetx file is written to satisfy the cache), and suppression is
// applied after all analyzers ran so one //gearsvet:allow covers its
// line regardless of which checker fired.
func Main(analyzers ...*Analyzer) {
	progname := filepath.Base(os.Args[0])
	log.SetFlags(0)
	log.SetPrefix(progname + ": ")

	for _, a := range analyzers {
		if a.Name == "" || a.Run == nil {
			log.Fatalf("invalid analyzer registration: %+v", a)
		}
	}

	fs := flag.NewFlagSet(progname, flag.ExitOnError)
	fs.Var(versionFlag{}, "V", "print version and exit (-V=full)")
	printflags := fs.Bool("flags", false, "print analyzer flags in JSON")
	jsonOut := fs.Bool("json", false, "emit JSON output")
	fs.Int("c", -1, "display offending line with this many lines of context (accepted, unused)")
	enabled := make(map[string]*string, len(analyzers))
	for _, a := range analyzers {
		doc := a.Doc
		if i := strings.IndexByte(doc, '\n'); i >= 0 {
			doc = doc[:i]
		}
		// Tri-state via string default "": "" unset, else ParseBool.
		enabled[a.Name] = fs.String(a.Name, "", "enable "+a.Name+" analysis: "+doc)
	}
	if err := fs.Parse(os.Args[1:]); err != nil {
		log.Fatal(err)
	}

	if *printflags {
		printFlags(fs)
		os.Exit(0)
	}

	args := fs.Args()
	if len(args) != 1 || !strings.HasSuffix(args[0], ".cfg") {
		log.Fatalf("usage: run via go vet -vettool=$(which %s); direct invocation takes a single .cfg file", progname)
	}

	// Honor -<analyzer>=true/false selection the way vet drivers do: any
	// explicit true runs only those; otherwise explicit falses are dropped.
	selected := analyzers
	anyTrue := false
	for _, a := range analyzers {
		if *enabled[a.Name] == "true" {
			anyTrue = true
		}
	}
	if anyTrue {
		selected = nil
		for _, a := range analyzers {
			if *enabled[a.Name] == "true" {
				selected = append(selected, a)
			}
		}
	} else {
		selected = nil
		for _, a := range analyzers {
			if *enabled[a.Name] != "false" {
				selected = append(selected, a)
			}
		}
	}

	code, err := runUnit(args[0], selected, *jsonOut)
	if err != nil {
		log.Fatal(err)
	}
	os.Exit(code)
}

// runUnit analyzes the compilation unit configFile describes and
// reports the process exit code: 0 clean, 1 findings.
func runUnit(configFile string, analyzers []*Analyzer, jsonOut bool) (int, error) {
	data, err := os.ReadFile(configFile)
	if err != nil {
		return 0, err
	}
	cfg := new(Config)
	if err := json.Unmarshal(data, cfg); err != nil {
		return 0, fmt.Errorf("cannot decode JSON config file %s: %v", configFile, err)
	}

	// The cache expects a facts file for every unit, dependencies
	// included; this suite defines no facts, so an empty one settles
	// the contract and lets facts-only dependency runs return at once.
	writeVetx := func() error {
		if cfg.VetxOutput == "" {
			return nil
		}
		return os.WriteFile(cfg.VetxOutput, nil, 0666)
	}
	if cfg.VetxOnly {
		return 0, writeVetx()
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0, writeVetx()
			}
			return 0, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return 0, fmt.Errorf("package has no files: %s", cfg.ImportPath)
	}

	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	tc := &types.Config{
		Importer: importerFunc(func(importPath string) (*types.Package, error) {
			path, ok := cfg.ImportMap[importPath]
			if !ok {
				return nil, fmt.Errorf("can't resolve import %q", importPath)
			}
			return compilerImporter.Import(path)
		}),
		Sizes:     types.SizesFor("gc", build.Default.GOARCH),
		GoVersion: cfg.GoVersion,
	}
	info := newInfo()
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0, writeVetx()
		}
		return 0, err
	}

	perAnalyzer, err := runAnalyzers(analyzers, fset, files, pkg, info, tc.Sizes)
	if err != nil {
		return 0, err
	}
	if err := writeVetx(); err != nil {
		return 0, err
	}

	if jsonOut {
		tree := map[string]map[string][]jsonDiagnostic{cfg.ID: {}}
		for name, diags := range perAnalyzer {
			for _, d := range diags {
				tree[cfg.ID][name] = append(tree[cfg.ID][name], jsonDiagnostic{
					Posn:    fset.Position(d.Pos).String(),
					Message: d.Message,
				})
			}
		}
		enc, err := json.MarshalIndent(tree, "", "\t")
		if err != nil {
			return 0, err
		}
		os.Stdout.Write(enc)
		os.Stdout.Write([]byte{'\n'})
		return 0, nil
	}

	exit := 0
	for _, name := range sortedKeys(perAnalyzer) {
		for _, d := range perAnalyzer[name] {
			fmt.Fprintf(os.Stderr, "%s: %s\n", fset.Position(d.Pos), d.Message)
			exit = 1
		}
	}
	return exit, nil
}

// runAnalyzers executes the analyzers over one loaded package and
// returns the per-analyzer diagnostics that survive //gearsvet:allow
// filtering; bare (reasonless) directives surface under the synthetic
// analyzer name "allow".
func runAnalyzers(analyzers []*Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, sizes types.Sizes) (map[string][]Diagnostic, error) {
	dirs := Directives(fset, files)
	out := make(map[string][]Diagnostic)
	for _, a := range analyzers {
		var diags []Diagnostic
		pass := &Pass{
			Analyzer:   a,
			Fset:       fset,
			Files:      files,
			Pkg:        pkg,
			TypesInfo:  info,
			TypesSizes: sizes,
			Report:     func(d Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %v", a.Name, err)
		}
		// A reasoned directive covers its line for whichever analyzer
		// fired there.
		out[a.Name] = Filter(fset, dirs, diags)
	}
	if bare := BareDirectives(dirs); len(bare) > 0 {
		out["allow"] = bare
	}
	return out, nil
}

// newInfo builds a fully-populated types.Info (analyzers rely on Uses,
// Selections, and Types being present).
func newInfo() *types.Info {
	return &types.Info{
		Types:        make(map[ast.Expr]types.TypeAndValue),
		Defs:         make(map[*ast.Ident]types.Object),
		Uses:         make(map[*ast.Ident]types.Object),
		Implicits:    make(map[ast.Node]types.Object),
		Instances:    make(map[*ast.Ident]types.Instance),
		Scopes:       make(map[ast.Node]*types.Scope),
		Selections:   make(map[*ast.SelectorExpr]*types.Selection),
		FileVersions: make(map[*ast.File]string),
	}
}

type jsonDiagnostic struct {
	Posn    string `json:"posn"`
	Message string `json:"message"`
}

func sortedKeys(m map[string][]Diagnostic) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

// printFlags emits the JSON flag inventory `go vet` requests with
// -flags before its first real invocation.
func printFlags(fs *flag.FlagSet) {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var flags []jsonFlag
	fs.VisitAll(func(f *flag.Flag) {
		b, ok := f.Value.(interface{ IsBoolFlag() bool })
		flags = append(flags, jsonFlag{f.Name, ok && b.IsBoolFlag(), f.Usage})
	})
	data, err := json.MarshalIndent(flags, "", "\t")
	if err != nil {
		log.Fatal(err)
	}
	os.Stdout.Write(data)
}

// versionFlag implements the -V=full fingerprint handshake: the go
// command hashes the response into its action cache key, so the
// fingerprint must change when the tool's behavior does — hashing the
// executable achieves that.
type versionFlag struct{}

func (versionFlag) IsBoolFlag() bool { return true }
func (versionFlag) String() string   { return "" }
func (versionFlag) Set(s string) error {
	if s != "full" {
		log.Fatalf("unsupported flag value: -V=%s (use -V=full)", s)
	}
	progname, err := os.Executable()
	if err != nil {
		return err
	}
	f, err := os.Open(progname)
	if err != nil {
		log.Fatal(err)
	}
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		log.Fatal(err)
	}
	f.Close()
	fmt.Printf("%s version devel gearsvet buildID=%02x\n", progname, string(h.Sum(nil)))
	os.Exit(0)
	return nil
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
