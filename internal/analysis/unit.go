package analysis

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Config mirrors the JSON compilation-unit description `go vet` hands a
// -vettool for each package (the unpublished but stable vet protocol;
// x/tools' unitchecker documents the same shape). Only the fields this
// driver consumes are declared.
type Config struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string // import path → package path
	PackageFile               map[string]string // package path → export data file
	PackageVetx               map[string]string // package path → dependency facts file
	Standard                  map[string]bool
	VetxOnly                  bool   // facts-only run for a dependency
	VetxOutput                string // where the driver must write its facts file
	SucceedOnTypecheckFailure bool
}

// Main is the entry point of a vet-compatible analysis tool built from
// this package's analyzers. The protocol `go vet -vettool=...` speaks:
//
//	tool -V=full     print an executable fingerprint (build caching)
//	tool -flags      print supported flags as JSON
//	tool foo.cfg     analyze the one compilation unit foo.cfg describes
//
// Diagnostics go to stderr as file:line:col lines; a nonzero exit says
// findings (or errors) occurred. The driver runs entirely on the
// standard library: types for dependencies come from the export-data
// files the build system lists in the config, facts come from the
// dependency vetx files the config names (and this unit's facts — plus
// its dependencies', transitively — are written back to VetxOutput),
// and suppression is applied after all analyzers ran so one
// //gearsvet:allow covers its statement regardless of which checker
// fired.
func Main(analyzers ...*Analyzer) {
	progname := filepath.Base(os.Args[0])
	log.SetFlags(0)
	log.SetPrefix(progname + ": ")

	for _, a := range analyzers {
		if a.Name == "" || a.Run == nil {
			log.Fatalf("invalid analyzer registration: %+v", a)
		}
	}
	registerFactTypes(analyzers)

	fs := flag.NewFlagSet(progname, flag.ExitOnError)
	fs.Var(versionFlag{}, "V", "print version and exit (-V=full)")
	printflags := fs.Bool("flags", false, "print analyzer flags in JSON")
	jsonOut := fs.Bool("json", false, "emit JSON output")
	fs.Int("c", -1, "display offending line with this many lines of context (accepted, unused)")
	enabled := make(map[string]*string, len(analyzers))
	for _, a := range analyzers {
		doc := a.Doc
		if i := strings.IndexByte(doc, '\n'); i >= 0 {
			doc = doc[:i]
		}
		// Tri-state via string default "": "" unset, else ParseBool.
		enabled[a.Name] = fs.String(a.Name, "", "enable "+a.Name+" analysis: "+doc)
	}
	if err := fs.Parse(os.Args[1:]); err != nil {
		log.Fatal(err)
	}

	if *printflags {
		printFlags(fs)
		os.Exit(0)
	}

	args := fs.Args()
	if len(args) != 1 || !strings.HasSuffix(args[0], ".cfg") {
		log.Fatalf("usage: run via go vet -vettool=$(which %s); direct invocation takes a single .cfg file", progname)
	}

	// Honor -<analyzer>=true/false selection the way vet drivers do: any
	// explicit true runs only those; otherwise explicit falses are dropped.
	selected := analyzers
	anyTrue := false
	for _, a := range analyzers {
		if *enabled[a.Name] == "true" {
			anyTrue = true
		}
	}
	if anyTrue {
		selected = nil
		for _, a := range analyzers {
			if *enabled[a.Name] == "true" {
				selected = append(selected, a)
			}
		}
	} else {
		selected = nil
		for _, a := range analyzers {
			if *enabled[a.Name] != "false" {
				selected = append(selected, a)
			}
		}
	}

	code, err := runUnit(args[0], selected, *jsonOut)
	if err != nil {
		log.Fatal(err)
	}
	os.Exit(code)
}

// runUnit analyzes the compilation unit configFile describes and
// reports the process exit code: 0 clean, 1 findings.
func runUnit(configFile string, analyzers []*Analyzer, jsonOut bool) (int, error) {
	data, err := os.ReadFile(configFile)
	if err != nil {
		return 0, err
	}
	cfg := new(Config)
	if err := json.Unmarshal(data, cfg); err != nil {
		return 0, fmt.Errorf("cannot decode JSON config file %s: %v", configFile, err)
	}

	// Merge the facts of every dependency vetx file the build system
	// hands us. go vet lists only direct imports here, so Encode writes
	// the whole merged store back out: each unit's vetx transitively
	// re-exports its dependencies' facts.
	store := NewFactStore()
	for path, vetx := range cfg.PackageVetx {
		data, err := os.ReadFile(vetx)
		if err != nil {
			return 0, fmt.Errorf("reading facts of %s: %v", path, err)
		}
		if err := store.Decode(data); err != nil {
			return 0, fmt.Errorf("facts of %s: %v", path, err)
		}
	}
	writeVetx := func() error {
		if cfg.VetxOutput == "" {
			return nil
		}
		data, err := store.Encode()
		if err != nil {
			return err
		}
		return os.WriteFile(cfg.VetxOutput, data, 0666)
	}

	// Fast path: when every analyzer declares this unit out of scope,
	// there are no diagnostics and no new facts to compute — pass the
	// dependencies' facts through without parsing or type-checking.
	// This is what keeps facts-only runs over the standard library free.
	outOfScope := true
	for _, a := range analyzers {
		if a.Scope == nil || a.Scope(cfg.ImportPath) {
			outOfScope = false
			break
		}
	}
	if outOfScope {
		return 0, writeVetx()
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0, writeVetx()
			}
			return 0, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return 0, fmt.Errorf("package has no files: %s", cfg.ImportPath)
	}

	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	tc := &types.Config{
		Importer: importerFunc(func(importPath string) (*types.Package, error) {
			path, ok := cfg.ImportMap[importPath]
			if !ok {
				return nil, fmt.Errorf("can't resolve import %q", importPath)
			}
			return compilerImporter.Import(path)
		}),
		Sizes:     types.SizesFor("gc", build.Default.GOARCH),
		GoVersion: cfg.GoVersion,
	}
	info := newInfo()
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0, writeVetx()
		}
		return 0, err
	}

	findings, err := runAnalyzers(analyzers, fset, files, pkg, info, tc.Sizes, store)
	if err != nil {
		return 0, err
	}
	if err := writeVetx(); err != nil {
		return 0, err
	}
	if cfg.VetxOnly {
		// Facts-only dependency run: the analyzers ran for their
		// exports; the diagnostics belong to the unit that will be
		// analyzed in its own right.
		return 0, nil
	}

	exit := 0
	for _, f := range findings {
		if !f.Suppressed {
			exit = 1
		}
	}
	if jsonOut {
		// NDJSON: one finding per line, suppressed ones included with
		// their allow reason, so CI can render the full allow-state of
		// the tree. The exit code is the same as in text mode.
		enc := json.NewEncoder(os.Stdout)
		for _, f := range findings {
			pos := fset.Position(f.Pos)
			if err := enc.Encode(jsonFinding{
				File:     pos.Filename,
				Line:     pos.Line,
				Col:      pos.Column,
				Analyzer: f.Analyzer,
				Message:  f.Message,
				Allow:    map[bool]string{false: "reported", true: "suppressed"}[f.Suppressed],
				Reason:   f.Reason,
			}); err != nil {
				return 0, err
			}
		}
		return exit, nil
	}

	for _, f := range findings {
		if !f.Suppressed {
			fmt.Fprintf(os.Stderr, "%s: %s\n", fset.Position(f.Pos), f.Message)
		}
	}
	return exit, nil
}

// Finding is one diagnostic with its analyzer and allow-state attached.
type Finding struct {
	Analyzer string
	Diagnostic
	// Suppressed marks a finding a reasoned //gearsvet:allow covers;
	// Reason carries the directive's justification.
	Suppressed bool
	Reason     string
}

// runAnalyzers executes the analyzers over one loaded package and
// returns every finding — suppressed ones included, tagged with their
// allow reason — in position order. Bare (reasonless) directives
// surface under the synthetic analyzer name "allow".
func runAnalyzers(analyzers []*Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, sizes types.Sizes, store *FactStore) ([]Finding, error) {
	sup := NewSuppressor(fset, files)
	var out []Finding
	for _, a := range analyzers {
		var diags []Diagnostic
		pass := &Pass{
			Analyzer:   a,
			Fset:       fset,
			Files:      files,
			Pkg:        pkg,
			TypesInfo:  info,
			TypesSizes: sizes,
			Report:     func(d Diagnostic) { diags = append(diags, d) },
		}
		pass.SetFacts(store)
		pass.SetSuppressor(sup)
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %v", a.Name, err)
		}
		kept, allowed := sup.Filter(diags)
		for _, d := range kept {
			out = append(out, Finding{Analyzer: a.Name, Diagnostic: d})
		}
		for _, d := range allowed {
			out = append(out, Finding{Analyzer: a.Name, Diagnostic: d.Diagnostic, Suppressed: true, Reason: d.Reason})
		}
	}
	for _, d := range sup.Bare() {
		out = append(out, Finding{Analyzer: "allow", Diagnostic: d})
	}
	sort.Slice(out, func(i, j int) bool {
		pi, pj := fset.Position(out[i].Pos), fset.Position(out[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out, nil
}

// newInfo builds a fully-populated types.Info (analyzers rely on Uses,
// Selections, and Types being present).
func newInfo() *types.Info {
	return &types.Info{
		Types:        make(map[ast.Expr]types.TypeAndValue),
		Defs:         make(map[*ast.Ident]types.Object),
		Uses:         make(map[*ast.Ident]types.Object),
		Implicits:    make(map[ast.Node]types.Object),
		Instances:    make(map[*ast.Ident]types.Instance),
		Scopes:       make(map[ast.Node]*types.Scope),
		Selections:   make(map[*ast.SelectorExpr]*types.Selection),
		FileVersions: make(map[*ast.File]string),
	}
}

// jsonFinding is the -json wire shape: one object per line (NDJSON),
// so CI shell steps can grep and jq without buffering a document.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
	Allow    string `json:"allow"` // "reported" | "suppressed"
	Reason   string `json:"reason,omitempty"`
}

// printFlags emits the JSON flag inventory `go vet` requests with
// -flags before its first real invocation.
func printFlags(fs *flag.FlagSet) {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var flags []jsonFlag
	fs.VisitAll(func(f *flag.Flag) {
		b, ok := f.Value.(interface{ IsBoolFlag() bool })
		flags = append(flags, jsonFlag{f.Name, ok && b.IsBoolFlag(), f.Usage})
	})
	data, err := json.MarshalIndent(flags, "", "\t")
	if err != nil {
		log.Fatal(err)
	}
	os.Stdout.Write(data)
}

// versionFlag implements the -V=full fingerprint handshake: the go
// command hashes the response into its action cache key, so the
// fingerprint must change when the tool's behavior does — hashing the
// executable achieves that.
type versionFlag struct{}

func (versionFlag) IsBoolFlag() bool { return true }
func (versionFlag) String() string   { return "" }
func (versionFlag) Set(s string) error {
	if s != "full" {
		log.Fatalf("unsupported flag value: -V=%s (use -V=full)", s)
	}
	progname, err := os.Executable()
	if err != nil {
		return err
	}
	f, err := os.Open(progname)
	if err != nil {
		log.Fatal(err)
	}
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		log.Fatal(err)
	}
	f.Close()
	fmt.Printf("%s version devel gearsvet buildID=%02x\n", progname, string(h.Sum(nil)))
	os.Exit(0)
	return nil
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
