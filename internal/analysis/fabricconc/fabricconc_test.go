package fabricconc_test

import (
	"testing"

	"shiftgears/internal/analysis/fabricconc"
	"shiftgears/internal/analysis/vettest"
)

func TestFabricConc(t *testing.T) {
	vettest.Run(t, "testdata", fabricconc.Analyzer,
		"shiftgears/internal/transport", // every join proof, the dispatch loop, the Close path
	)
}
