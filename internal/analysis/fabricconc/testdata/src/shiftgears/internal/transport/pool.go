// Package transport is the fabricconc fixture: every concurrency shape
// the analyzer rules on, good and bad, in the vocabulary of the real
// writer pool (workers draining a job channel, a tick dispatch loop, a
// Close path that tears the pool down).
package transport

import "sync"

// Pool mirrors the writer-pool shape: worker goroutines, a job
// channel drained by range, a stop channel nobody receives from (the
// deliberate deadlock bait), and an error channel the joiner drains.
type Pool struct {
	mu   sync.Mutex
	n    int
	jobs chan int
	stop chan struct{}
	errs chan error
}

func (p *Pool) poll() error { return nil }

// Leak: an anonymous goroutine with no WaitGroup, no closed-channel
// range, and no result send — nothing ever joins it.
func (p *Pool) Run() {
	go func() { // want `goroutine spawned without a provable bounded join`
		for {
			_ = p.poll()
		}
	}()
}

// Named spawn: the body is out of reach, so no proof is visible.
func (p *Pool) RunNamed() {
	go p.drain() // want `the body is a named function`
}

func (p *Pool) drain() {
	for range p.jobs {
	}
}

// Joined by WaitGroup: Done in the body, Wait on the same variable.
func (p *Pool) fanout(work []int) {
	var wg sync.WaitGroup
	for range work {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = p.poll()
		}()
	}
	wg.Wait()
}

// Joined by close: the worker ranges over jobs, and Close closes it.
func (p *Pool) workers() {
	go func() {
		for j := range p.jobs {
			_ = j
		}
	}()
}

// Joined by its result: the body parks its error in errs, which
// waitErr drains.
func (p *Pool) connect() {
	go func() {
		p.errs <- p.poll()
	}()
}

func (p *Pool) waitErr() error { return <-p.errs }

// The per-tick dispatch loop. jobs is fine — this package receives
// ints (the worker range). stop's element type is never received, so
// a bare send toward an absent consumer wedges the tick.
func (p *Pool) Exchange(ticks []int) {
	for _, t := range ticks {
		p.jobs <- t
		p.stop <- struct{}{} // want `unguarded channel send inside a loop with no receiver in this package`
	}
}

// Close holds the lock across a send: the writer-pool teardown
// deadlock. The close() builtin is fine under the lock — only sends
// can block.
func (p *Pool) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	close(p.jobs)
	p.stop <- struct{}{} // want `channel send on the Close path while p\.mu is held`
	return nil
}

// close releases the lock first and guards its sends with a select:
// both contracts satisfied.
func (p *Pool) close() {
	p.mu.Lock()
	n := p.n
	p.mu.Unlock()
	for i := 0; i < n; i++ {
		select {
		case p.stop <- struct{}{}:
		default:
		}
	}
}
