// Package fabricconc enforces the transport/fabric concurrency
// contract (doc.go "Concurrency contract of the fabric layer"): the
// wire layer runs persistent per-peer goroutines in lockstep with the
// tick barrier, and its three historical failure modes are all static
// shapes this analyzer flags before they ship.
//
// Checks:
//
//  1. Bounded join. Every goroutine spawned in a fabric package must
//     have a join the analyzer can see: the body Done()s a
//     sync.WaitGroup that is Wait()ed on, the body ranges over a
//     channel that this package close()s, or the body sends its result
//     on a channel this package receives from. A goroutine with none
//     of these outlives the tick and the fabric's teardown — the leak
//     only surfaces as a -race hit or a wedged shutdown much later.
//
//  2. Guarded loop sends. A channel send inside a loop (the per-tick
//     dispatch shape) must be a select comm clause or target a channel
//     whose element type this package provably receives. An unguarded
//     send toward a consumer that is gone blocks the tick forever —
//     the distributed-deadlock shape the writer pool was built to
//     break (see writerPool in internal/transport/mux.go).
//
//  3. No send under a lock on the Close path. A function named Close
//     or close must not send on a channel while a sync mutex is held:
//     if the receiver needs that lock to drain, neither side can make
//     progress. The sweep is linear over the body in source order
//     (deferred unlocks hold to the end), a deliberate approximation
//     that exactly matches how teardown code is actually written.
//
// The receive- and close-based proofs are keyed by channel element
// type, not channel identity — a weak liveness argument, chosen
// deliberately: the writer pool's error channel is received through a
// range-loop variable three bindings away from its make site, and any
// identity-precise analysis either misses it or needs the full
// points-to machinery this tree does not carry. Element types in the
// fabric layer are purpose-built (sendJob, meshTick), so the
// weakening is cheap in practice.
//
// Scope: the transport and fabric packages only — the contract is
// theirs; the deterministic core above them is single-goroutine by
// design and the sim layer has its own rules.
package fabricconc

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"shiftgears/internal/analysis"
)

// Analyzer is the fabric concurrency-contract checker.
var Analyzer = &analysis.Analyzer{
	Name: "fabricconc",
	Doc: "enforce the fabric layer's concurrency contract: bounded goroutine joins, guarded per-tick loop sends, no send under a lock on Close paths\n\n" +
		"Each check is the static shadow of a deadlock or leak the wire layer has actually hit; see the package doc for the proofs the analyzer accepts.",
	Run:   run,
	Scope: inScope,
}

// inScope restricts the contract to the packages that own long-lived
// goroutines: the transport and fabric packages (the wire layer) and
// the shard layer (whose Drive harness runs one goroutine per shard),
// with their subpackages.
func inScope(path string) bool {
	if !strings.HasPrefix(path, "shiftgears") {
		return false
	}
	for _, seg := range []string{"/transport", "/fabric", "/shard"} {
		if strings.HasSuffix(path, seg) || strings.Contains(path, seg+"/") {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) error {
	if !inScope(pass.Pkg.Path()) {
		return nil
	}
	c := &checker{
		pass:          pass,
		closedElems:   map[string]bool{},
		receivedElems: map[string]bool{},
		waitKeys:      map[types.Object]bool{},
		guarded:       map[*ast.SendStmt]bool{},
	}
	c.collect()
	for _, file := range pass.Files {
		if analysis.TestFile(pass.Fset, file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			c.checkFunc(fn)
			if fn.Name.Name == "Close" || fn.Name.Name == "close" {
				c.checkClosePath(fn)
			}
		}
	}
	return nil
}

type checker struct {
	pass *analysis.Pass

	// closedElems holds the element-type strings of every channel the
	// package close()s; receivedElems those of every channel it
	// receives from (unary receive or range). Both are the weak keys
	// of the join and liveness proofs.
	closedElems   map[string]bool
	receivedElems map[string]bool

	// waitKeys holds the variables (locals or fields) whose
	// sync.WaitGroup Wait method is called somewhere in the package.
	waitKeys map[types.Object]bool

	// guarded marks sends that are select comm clauses.
	guarded map[*ast.SendStmt]bool
}

// collect gathers the package-wide proof sets from non-test files.
func (c *checker) collect() {
	for _, file := range c.pass.Files {
		if analysis.TestFile(c.pass.Fset, file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if id, ok := n.Fun.(*ast.Ident); ok && len(n.Args) == 1 {
					if b, ok := c.pass.TypesInfo.Uses[id].(*types.Builtin); ok && b.Name() == "close" {
						if e := c.chanElem(n.Args[0]); e != "" {
							c.closedElems[e] = true
						}
					}
				}
				if c.isSyncMethod(n, "Wait", "WaitGroup") {
					if key := c.recvKey(n); key != nil {
						c.waitKeys[key] = true
					}
				}
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					if e := c.chanElem(n.X); e != "" {
						c.receivedElems[e] = true
					}
				}
			case *ast.RangeStmt:
				if e := c.chanElem(n.X); e != "" {
					c.receivedElems[e] = true
				}
			case *ast.SelectStmt:
				for _, cl := range n.Body.List {
					if comm, ok := cl.(*ast.CommClause); ok {
						if s, ok := comm.Comm.(*ast.SendStmt); ok {
							c.guarded[s] = true
						}
					}
				}
			}
			return true
		})
	}
}

// checkFunc walks one function, flagging unproven goroutine spawns and
// unguarded loop sends. The stack tracks whether a send sits inside a
// loop of its own function literal (loops outside a `go func` body do
// not make the goroutine's sends per-tick).
func (c *checker) checkFunc(fn *ast.FuncDecl) {
	var stack []ast.Node
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		switch s := n.(type) {
		case *ast.GoStmt:
			c.checkGo(s)
		case *ast.SendStmt:
			if !c.guarded[s] && inLoop(stack) {
				c.checkLoopSend(s)
			}
		}
		return true
	})
}

// inLoop reports whether the innermost node sits inside a for or range
// statement within its nearest enclosing function literal.
func inLoop(stack []ast.Node) bool {
	for i := len(stack) - 2; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			return true
		case *ast.FuncLit:
			return false
		}
	}
	return false
}

// checkGo verifies a spawned goroutine has a visible bounded join.
func (c *checker) checkGo(g *ast.GoStmt) {
	lit, ok := g.Call.Fun.(*ast.FuncLit)
	if !ok {
		// A named function's body is out of reach here; the spawn site
		// must carry the proof, and it cannot.
		c.pass.Reportf(g.Pos(), "goroutine spawned without a provable bounded join: the body is a named function, so no WaitGroup, closed-channel range, or result send is visible at the spawn site — inline the body or annotate //gearsvet:allow <how it is joined>")
		return
	}
	if c.hasWaitGroupJoin(lit) || c.rangesClosedChan(lit) || c.sendsReceivedChan(lit) {
		return
	}
	c.pass.Reportf(g.Pos(), "goroutine spawned without a provable bounded join: no Done on a Wait()ed sync.WaitGroup, no range over a channel this package closes, and no send on a channel this package receives — a leaked goroutine outlives the tick and the fabric's teardown (//gearsvet:allow <how it is joined> if the join lives elsewhere)")
}

// hasWaitGroupJoin reports whether the goroutine body calls Done on a
// sync.WaitGroup whose Wait is called somewhere in the package.
func (c *checker) hasWaitGroupJoin(lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !c.isSyncMethod(call, "Done", "WaitGroup") {
			return true
		}
		if key := c.recvKey(call); key != nil && c.waitKeys[key] {
			found = true
		}
		return !found
	})
	return found
}

// rangesClosedChan reports whether the goroutine body ranges over a
// channel whose element type the package closes — the worker-loop
// shape, joined by close().
func (c *checker) rangesClosedChan(lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if rng, ok := n.(*ast.RangeStmt); ok {
			if e := c.chanElem(rng.X); e != "" && c.closedElems[e] {
				found = true
			}
		}
		return !found
	})
	return found
}

// sendsReceivedChan reports whether the goroutine body sends on a
// channel whose element type the package receives — the result-channel
// shape, joined by the receive.
func (c *checker) sendsReceivedChan(lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if s, ok := n.(*ast.SendStmt); ok {
			if e := c.chanElem(s.Chan); e != "" && c.receivedElems[e] {
				found = true
			}
		}
		return !found
	})
	return found
}

// checkLoopSend flags an unguarded send inside a loop whose channel's
// element type is never received in this package.
func (c *checker) checkLoopSend(s *ast.SendStmt) {
	e := c.chanElem(s.Chan)
	if e == "" || c.receivedElems[e] {
		return
	}
	c.pass.Reportf(s.Pos(), "unguarded channel send inside a loop with no receiver in this package: if the consumer is gone the send blocks the tick forever (the distributed-deadlock shape writerPool exists to break) — guard it with a select, or keep the receive loop in this package")
}

// checkClosePath sweeps a Close function linearly, flagging channel
// sends issued while a sync lock is held. Deferred unlocks hold to the
// end of the function; nested function literals (e.g. a sync.Once.Do
// body) run synchronously on this path and are swept in place.
func (c *checker) checkClosePath(fn *ast.FuncDecl) {
	var held []string
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			// A deferred Unlock releases after the function body — the
			// lock is held for the rest of the sweep. Skip the call so
			// the Unlock below does not pop it.
			return false
		case *ast.CallExpr:
			switch {
			case c.isSyncMethod(n, "Lock", "Mutex", "RWMutex"),
				c.isSyncMethod(n, "RLock", "RWMutex"):
				held = append(held, types.ExprString(recvExpr(n)))
			case c.isSyncMethod(n, "Unlock", "Mutex", "RWMutex"),
				c.isSyncMethod(n, "RUnlock", "RWMutex"):
				name := types.ExprString(recvExpr(n))
				for i := len(held) - 1; i >= 0; i-- {
					if held[i] == name {
						held = append(held[:i], held[i+1:]...)
						break
					}
				}
			}
		case *ast.GoStmt:
			// A spawned goroutine's sends do not run under this lock.
			return false
		case *ast.SendStmt:
			if len(held) > 0 {
				c.pass.Reportf(n.Pos(), "channel send on the Close path while %s is held: a blocked send keeps the lock, and a receiver that needs the lock to drain deadlocks the teardown — release the lock before the send, or make the send nonblocking", held[len(held)-1])
			}
		}
		return true
	})
}

// chanElem returns the element-type string of a channel-typed
// expression, "" when e is not a channel.
func (c *checker) chanElem(e ast.Expr) string {
	tv, ok := c.pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return ""
	}
	ch, ok := tv.Type.Underlying().(*types.Chan)
	if !ok {
		return ""
	}
	return ch.Elem().String()
}

// isSyncMethod reports whether the call invokes the named method of
// one of the named sync types (sync.WaitGroup, sync.Mutex, ...).
func (c *checker) isSyncMethod(call *ast.CallExpr, method string, recvNames ...string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != method {
		return false
	}
	fn, ok := c.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	for _, name := range recvNames {
		if named.Obj().Name() == name {
			return true
		}
	}
	return false
}

// recvKey resolves the receiver expression of a method call to the
// variable that owns it: the field for p.wg.Done(), the local for
// wg.Done(). nil when the receiver is not a simple variable path —
// callers then have no key to match a Wait against.
func (c *checker) recvKey(call *ast.CallExpr) types.Object {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	switch x := sel.X.(type) {
	case *ast.Ident:
		return c.pass.TypesInfo.ObjectOf(x)
	case *ast.SelectorExpr:
		return c.pass.TypesInfo.ObjectOf(x.Sel)
	}
	return nil
}

// recvExpr returns the receiver expression of a method call for
// diagnostics ("p.mu" in p.mu.Lock()).
func recvExpr(call *ast.CallExpr) ast.Expr {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		return sel.X
	}
	return call.Fun
}
