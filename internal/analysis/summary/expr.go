package summary

import (
	"go/ast"
	"go/token"
	"go/types"

	"shiftgears/internal/analysis"
)

// exprTags computes the taint tags an expression's value may carry:
// which seeds it aliases or derives from without an intervening copy.
// A value whose static type cannot hold a reference (an int decoded
// out of a frame, a bool derived from it) is a copy by construction —
// it can never alias the arena, so its tags are dropped no matter how
// tainted its operands were.
func (w *walker) exprTags(e ast.Expr) uint64 {
	if tv, ok := w.in.pass.TypesInfo.Types[e]; ok && tv.Type != nil && !Aliasable(tv.Type) {
		return 0
	}
	switch x := e.(type) {
	case *ast.Ident:
		return w.taint[w.in.pass.TypesInfo.ObjectOf(x)]
	case *ast.ParenExpr:
		return w.exprTags(x.X)
	case *ast.IndexExpr:
		return w.exprTags(x.X)
	case *ast.SliceExpr:
		return w.exprTags(x.X)
	case *ast.SelectorExpr:
		return w.exprTags(x.X)
	case *ast.StarExpr:
		return w.exprTags(x.X)
	case *ast.TypeAssertExpr:
		return w.exprTags(x.X)
	case *ast.UnaryExpr:
		if x.Op == token.ARROW {
			// A receive's value is seeded at its binding site; the
			// expression itself introduces no channel-carried tags.
			return 0
		}
		return w.exprTags(x.X) // &x aliases x
	case *ast.CompositeLit:
		var tags uint64
		for _, el := range x.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			tags |= w.exprTags(el)
		}
		return tags
	case *ast.CallExpr:
		return w.callTags(x)
	}
	// Binary expressions, literals, and func literals produce fresh
	// scalar/closure values.
	return 0
}

// callTags computes the tags of a call expression's result: builtin
// aliasing rules, conversions, and Returned flows through known
// callees.
func (w *walker) callTags(call *ast.CallExpr) uint64 {
	info := w.in.pass.TypesInfo
	// Conversion: T(x). Conversions to string copy the bytes; slice,
	// pointer, and struct conversions alias the operand.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
			return 0
		}
		return w.exprTags(call.Args[0])
	}
	if id, ok := unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			return w.builtinTags(b.Name(), call)
		}
	}
	fn := StaticCallee(w.in.pass, call)
	if fn == nil {
		return 0 // unknown callee: a fresh result (documented philosophy)
	}
	sum := w.in.Of(fn)
	if sum == nil {
		return 0
	}
	var tags uint64
	idx := 0
	if sum.Recv {
		if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok && sum.Inputs[0].Returned {
			tags |= w.exprTags(sel.X)
		}
		idx = 1
	}
	sig, _ := fn.Type().(*types.Signature)
	for ai, arg := range call.Args {
		j := idx + ai
		if j >= len(sum.Inputs) {
			if sig != nil && sig.Variadic() && len(sum.Inputs) > 0 {
				j = len(sum.Inputs) - 1
			} else {
				break
			}
		}
		if sum.Inputs[j].Returned {
			tags |= w.exprTags(arg)
		}
	}
	return tags
}

// builtinTags applies the builtin aliasing rules.
func (w *walker) builtinTags(name string, call *ast.CallExpr) uint64 {
	switch name {
	case "append":
		if len(call.Args) == 0 {
			return 0
		}
		tags := w.exprTags(call.Args[0])
		for i, a := range call.Args[1:] {
			t := w.exprTags(a)
			if t == 0 {
				continue
			}
			// append(dst, p...) with byte elements copies the bytes:
			// the result aliases dst's backing array, not p. Spreading
			// a [][]byte still copies slice headers, which alias.
			if call.Ellipsis.IsValid() && i == len(call.Args)-2 {
				at := w.in.pass.TypesInfo.Types[a].Type
				if at != nil && ByteSliceDepth(at) <= 1 && !CarriesPayloadSlices(at) {
					continue
				}
			}
			tags |= t
		}
		return tags
	default:
		// len, cap, copy, make, new, delete, min, max: fresh values or
		// byte copies.
		return 0
	}
}

// StaticCallee resolves a call expression to the concrete *types.Func
// it invokes, or nil for interface methods, func values, builtins, and
// conversions.
func StaticCallee(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := pass.TypesInfo.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel := pass.TypesInfo.Selections[fun]; sel != nil {
			if sel.Kind() != types.MethodVal || types.IsInterface(sel.Recv()) {
				return nil
			}
			fn, _ := sel.Obj().(*types.Func)
			return fn
		}
		// Package-qualified: pkg.F.
		fn, _ := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// CalleeName renders a function for diagnostics: "dispatch" for a
// same-file-feeling plain name, "(meshWriter).send" for a method, with
// the package name prefixed for foreign functions.
func CalleeName(fn *types.Func) string {
	name := fn.Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if n := NamedOf(sig.Recv().Type()); n != "" {
			// Strip the package path down to the last element for
			// readability; the position already localizes the finding.
			if i := lastSlash(n); i >= 0 {
				n = n[i+1:]
			}
			return "(" + n + ")." + name
		}
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + name
	}
	return name
}

func lastSlash(s string) int {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '/' {
			return i
		}
	}
	return -1
}

// NamedOf renders a (possibly pointered) named type as pkgpath.Name.
func NamedOf(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := n.Obj()
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return obj.Pkg().Path() + "." + obj.Name()
}

// Aliasable reports whether a value of type t can hold a reference to
// memory it did not copy: slices, pointers, maps, channels, funcs,
// interfaces, and aggregates containing any of those. Basic values
// (including strings — safe Go cannot build a string that aliases a
// byte slice) and aggregates of basics are copies by construction.
func Aliasable(t types.Type) bool {
	return aliasable(t, make(map[*types.Named]bool))
}

func aliasable(t types.Type, seen map[*types.Named]bool) bool {
	if n, ok := t.(*types.Named); ok {
		if seen[n] {
			return false
		}
		seen[n] = true
	}
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return false
	case *types.Array:
		return aliasable(u.Elem(), seen)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if aliasable(u.Field(i).Type(), seen) {
				return true
			}
		}
		return false
	default:
		// Slice, pointer, map, chan, signature, interface, tuple.
		return true
	}
}

// ByteSliceDepth reports how many slice layers wrap a byte element:
// []byte → 1, [][]byte → 2, ... 0 when t is not a byte-slice shape.
func ByteSliceDepth(t types.Type) int {
	depth := 0
	for {
		s, ok := t.Underlying().(*types.Slice)
		if !ok {
			break
		}
		depth++
		t = s.Elem()
	}
	if depth == 0 {
		return 0
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok || b.Kind() != types.Byte && b.Kind() != types.Uint8 {
		return 0
	}
	return depth
}

// CarriesPayloadSlices reports whether t transitively contains []byte
// through slices of structs with a []byte-shaped field (the MuxFrame
// outbox shape an Exchange method receives).
func CarriesPayloadSlices(t types.Type) bool {
	seen := 0
	for {
		s, ok := t.Underlying().(*types.Slice)
		if !ok {
			break
		}
		seen++
		t = s.Elem()
	}
	if seen == 0 {
		return false
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if ByteSliceDepth(st.Field(i).Type()) > 0 {
			return true
		}
	}
	return false
}
