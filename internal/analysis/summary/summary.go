// Package summary computes parameter-to-sink escape summaries: for
// every function of a package, which of its inputs (receiver and
// parameters) may be stored into a struct field or global, sent on a
// channel, or returned. Summaries are computed bottom-up to a fixed
// point within the package — a helper's summary is consulted at each of
// its call sites, so taint crosses function boundaries — and exported
// as facts, so it crosses package boundaries too: the modular go vet
// model analyzes one package at a time, and the vetx facts files are
// the only channel between units.
//
// An unknown callee — an interface method, a func value, a function in
// a package that exported no summary — is treated as clean. That is a
// deliberate philosophy, not an accident: the analyzers built on this
// layer enforce repository-local contracts on repository-local code,
// and a conservative "unknown escapes everything" default would drown
// the hot path in false positives the moment it called fmt or net.
// The contract surface (Exchange/Deliver entry points, the transport
// and fabric packages) is fully in-repo, so every call that matters
// resolves to a summarized function.
//
// # Exemptions
//
// A store that the engine can prove stays within the tick is not a
// sink. Four proofs are implemented, mirroring the idioms the hot path
// actually uses:
//
//   - holder: fields of configured arena-owner types (Config.Holders)
//     hold payloads by design and are rewound at the tick boundary.
//   - tick-reset: a store into x.f is exempt when the function
//     unconditionally resets x.f (x.f = x.f[:0] or x.f = nil) as a
//     top-level statement before it — the field demonstrably lives one
//     call.
//   - scratch-reuse: a local rooted in x.f[:0] that is stored back
//     into a field of the same x is the truncate-refill idiom; the
//     backing array is overwritten on the next call.
//   - drain: a send is exempt when every receive of that element type
//     in the package provably consumes the value without re-escaping
//     it — ownership transfers to a reader that finishes with it.
//
// A store covered by a reasoned //gearsvet:allow is excluded from
// summaries too: the annotation is a reviewed claim that the site is
// safe, so callers of the annotated helper should not be flagged for
// reaching it. (The event is still surfaced to analyzers, which report
// it and let the driver's suppressor record it as allowed.)
//
// Config.Strict disables every exemption and the allow filter. The
// strict view answers a different question — "may this value reach the
// heap at all?" — which is what zeroalloc needs to prove a closure
// non-escaping; the arena exemptions above are contract arguments, not
// heap-escape proofs.
package summary

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"shiftgears/internal/analysis"
)

// Input is one function input's summary: Name for diagnostics, and
// whether the input may escape into a field or global, be sent on a
// channel, or flow to a return value.
type Input struct {
	Name     string
	Escapes  bool
	Sent     bool
	Returned bool
}

// Summary is the exported per-function fact: input 0 is the receiver
// when Recv is set, parameters follow in declaration order.
type Summary struct {
	Recv   bool
	Inputs []Input
}

// AFact marks Summary as a vetx-encodable fact.
func (*Summary) AFact() {}

// Clean reports whether no input reaches any sink.
func (s *Summary) Clean() bool {
	for _, in := range s.Inputs {
		if in.Escapes || in.Sent || in.Returned {
			return false
		}
	}
	return true
}

// String renders the summary compactly — "p(escapes,sent) q(returned)",
// or "clean" — which is also what fixture fact expectations match.
func (s *Summary) String() string {
	var parts []string
	for i, in := range s.Inputs {
		var flags []string
		if in.Escapes {
			flags = append(flags, "escapes")
		}
		if in.Sent {
			flags = append(flags, "sent")
		}
		if in.Returned {
			flags = append(flags, "returned")
		}
		if len(flags) == 0 {
			continue
		}
		name := in.Name
		if name == "" {
			name = fmt.Sprintf("#%d", i)
		}
		if s.Recv && i == 0 {
			name = "recv " + name
		}
		parts = append(parts, name+"("+strings.Join(flags, ",")+")")
	}
	if len(parts) == 0 {
		return "clean"
	}
	return strings.Join(parts, " ")
}

// Config selects the exemption regime.
type Config struct {
	// Holders names arena-owner types ("pkg/path.Type") whose field
	// stores are the design, not a leak.
	Holders map[string]bool
	// Strict disables all exemptions and the allow filter: the raw
	// may-reach-heap view.
	Strict bool
}

// Kind classifies a sink event.
type Kind int

const (
	// FieldStore is a store into a struct field.
	FieldStore Kind = iota
	// GlobalStore is a store into a package-level variable.
	GlobalStore
	// ChanSend is a send on a channel (not proven drained).
	ChanSend
	// ReturnSink is a flow into a return value.
	ReturnSink
	// CallEscape is a tainted argument passed to a callee whose
	// corresponding input escapes (per its summary).
	CallEscape
	// CallSend is a tainted argument passed to a callee whose
	// corresponding input is sent on a channel.
	CallSend
)

// Event is one sink occurrence: which inputs reach it (Tags is a
// bitmask over the function's seeds), where, and a human detail
// fragment for diagnostics. Allowed events are excluded from summaries
// but still handed to analyzers, so the suppressor can record them.
type Event struct {
	Kind    Kind
	Pos     token.Pos
	Tags    uint64
	Detail  string
	Allowed bool
}

// Info is the computed summary state of one package.
type Info struct {
	pass *analysis.Pass
	cfg  Config

	decls    []*ast.FuncDecl
	sums     map[*types.Func]*Summary
	inputs   map[*ast.FuncDecl][]types.Object
	events   map[*ast.FuncDecl][]Event
	seedBits map[*ast.FuncDecl]map[types.Object]uint64
	drained  map[string]bool
	received map[string]bool
}

// receiveSite is one channel receive: where, what element type, and
// the objects the received value binds to (empty for a pure drain).
type receiveSite struct {
	fn   *ast.FuncDecl
	elem string
	objs []types.Object
}

// Compute summarizes every function of the pass's package, exports the
// summaries as facts, and returns the package info for the analyzer to
// walk.
func Compute(pass *analysis.Pass, cfg Config) *Info {
	in := &Info{
		pass:     pass,
		cfg:      cfg,
		sums:     make(map[*types.Func]*Summary),
		inputs:   make(map[*ast.FuncDecl][]types.Object),
		events:   make(map[*ast.FuncDecl][]Event),
		seedBits: make(map[*ast.FuncDecl]map[types.Object]uint64),
		drained:  make(map[string]bool),
		received: make(map[string]bool),
	}
	for _, file := range pass.Files {
		if analysis.TestFile(pass.Fset, file.Pos()) {
			continue
		}
		for _, d := range file.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			in.decls = append(in.decls, fn)
			in.inputs[fn] = inputObjs(pass, fn)
		}
	}

	// Collect receives and start the drain analysis optimistic: every
	// element type with a receiver in the package is assumed drained,
	// then receives whose bound value re-escapes knock their type out
	// until the set is stable.
	var receives []receiveSite
	for _, fn := range in.decls {
		receives = append(receives, collectReceives(pass, fn)...)
	}
	for _, r := range receives {
		in.received[r.elem] = true
		if !cfg.Strict {
			in.drained[r.elem] = true
		}
	}

	for {
		// Summaries to a fixed point under the current drain set.
		// Flags only grow (taint and callee summaries are monotone),
		// so this terminates.
		for {
			changed := false
			for _, fn := range in.decls {
				w := in.walk(fn)
				in.events[fn] = w.events
				in.seedBits[fn] = w.seeds
				def, ok := pass.TypesInfo.Defs[fn.Name].(*types.Func)
				if !ok {
					continue
				}
				s := in.summaryFrom(fn, w)
				merged, grew := mergeSummary(in.sums[def], s)
				in.sums[def] = merged
				if grew {
					changed = true
				}
			}
			if !changed {
				break
			}
		}
		// Drain check: a receive whose bound value reaches a sink
		// voids the drain proof for its element type.
		drainChanged := false
		for _, r := range receives {
			if !in.drained[r.elem] || len(r.objs) == 0 {
				continue
			}
			var bits uint64
			for _, o := range r.objs {
				bits |= in.seedBits[r.fn][o]
			}
			for _, ev := range in.events[r.fn] {
				if !ev.Allowed && ev.Tags&bits != 0 {
					delete(in.drained, r.elem)
					drainChanged = true
					break
				}
			}
		}
		if !drainChanged {
			break
		}
	}

	for def, s := range in.sums {
		pass.ExportObjectFact(def, s)
	}
	return in
}

// Of returns fn's summary: from this package's computation, or imported
// from the fact store for foreign functions. nil means unknown (treated
// as clean by the engine).
func (in *Info) Of(fn *types.Func) *Summary {
	if fn == nil {
		return nil
	}
	if fn.Pkg() == in.pass.Pkg {
		return in.sums[fn]
	}
	var s Summary
	if in.pass.ImportObjectFact(fn, &s) {
		return &s
	}
	return nil
}

// Events returns the final sink events of one function declaration.
func (in *Info) Events(fn *ast.FuncDecl) []Event { return in.events[fn] }

// Decls lists the package's analyzed function declarations.
func (in *Info) Decls() []*ast.FuncDecl { return in.decls }

// InputTag returns the seed bit of one input object of fn (0 if obj is
// not an input).
func (in *Info) InputTag(fn *ast.FuncDecl, obj types.Object) uint64 {
	var i int
	var o types.Object
	for i, o = range in.inputs[fn] {
		if o != nil && o == obj {
			return bitOf(i)
		}
	}
	return 0
}

// Inputs returns fn's input objects, receiver first (entries may be nil
// for unnamed inputs).
func (in *Info) Inputs(fn *ast.FuncDecl) []types.Object { return in.inputs[fn] }

// Drained reports the strong drain proof for a channel element type:
// every receive of it in this package consumes the value without
// re-escaping it.
func (in *Info) Drained(elem types.Type) bool { return in.drained[elem.String()] }

// Received reports the weak liveness fact: at least one receive of the
// element type exists in this package.
func (in *Info) Received(elem types.Type) bool { return in.received[elem.String()] }

// bitOf maps seed index i to its tag bit, saturating at 63 so functions
// with pathological arity stay sound (extra seeds share the last bit).
func bitOf(i int) uint64 {
	if i > 63 {
		i = 63
	}
	return 1 << uint(i)
}

// inputObjs lists fn's inputs: receiver (if any) then parameters, nil
// for unnamed/blank slots so indexes align with Summary.Inputs.
func inputObjs(pass *analysis.Pass, fn *ast.FuncDecl) []types.Object {
	var out []types.Object
	if fn.Recv != nil {
		var o types.Object
		if len(fn.Recv.List) == 1 && len(fn.Recv.List[0].Names) == 1 {
			o = pass.TypesInfo.ObjectOf(fn.Recv.List[0].Names[0])
		}
		out = append(out, o)
	}
	if fn.Type.Params != nil {
		for _, f := range fn.Type.Params.List {
			if len(f.Names) == 0 {
				out = append(out, nil)
				continue
			}
			for _, n := range f.Names {
				out = append(out, pass.TypesInfo.ObjectOf(n))
			}
		}
	}
	return out
}

// chanElem returns the element type of a channel type, nil otherwise.
func chanElem(t types.Type) types.Type {
	if t == nil {
		return nil
	}
	ch, ok := t.Underlying().(*types.Chan)
	if !ok {
		return nil
	}
	return ch.Elem()
}

// collectReceives finds every channel receive in fn with the objects it
// binds.
func collectReceives(pass *analysis.Pass, fn *ast.FuncDecl) []receiveSite {
	var out []receiveSite
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Rhs) != 1 {
				return true
			}
			u, ok := unparen(n.Rhs[0]).(*ast.UnaryExpr)
			if !ok || u.Op != token.ARROW {
				return true
			}
			elem := chanElem(pass.TypesInfo.TypeOf(u.X))
			if elem == nil {
				return true
			}
			site := receiveSite{fn: fn, elem: elem.String()}
			if id, ok := n.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
				if o := pass.TypesInfo.ObjectOf(id); o != nil {
					site.objs = append(site.objs, o)
				}
			}
			out = append(out, site)
		case *ast.UnaryExpr:
			// Bare <-ch in expression position (ExprStmt, select case
			// without binding): a pure drain, no bound value.
			if n.Op == token.ARROW {
				if elem := chanElem(pass.TypesInfo.TypeOf(n.X)); elem != nil {
					out = append(out, receiveSite{fn: fn, elem: elem.String()})
				}
			}
		case *ast.RangeStmt:
			elem := chanElem(pass.TypesInfo.TypeOf(n.X))
			if elem == nil {
				return true
			}
			site := receiveSite{fn: fn, elem: elem.String()}
			if id, ok := n.Key.(*ast.Ident); ok && id.Name != "_" {
				if o := pass.TypesInfo.ObjectOf(id); o != nil {
					site.objs = append(site.objs, o)
				}
			}
			out = append(out, site)
		}
		return true
	})
	// Deduplicate the AssignStmt/UnaryExpr double-visit: a bound
	// receive's UnaryExpr is also walked. Pure-drain duplicates are
	// harmless (no objs), so no dedup needed beyond that.
	return out
}

// mergeSummary ors b into a and reports whether any flag grew — a
// first-time clean summary is stored but does not count as growth
// (callers already treat unknown as clean).
func mergeSummary(a, b *Summary) (*Summary, bool) {
	if a == nil {
		return b, !b.Clean()
	}
	grew := false
	for i := range a.Inputs {
		if i >= len(b.Inputs) {
			break
		}
		bi := b.Inputs[i]
		ai := &a.Inputs[i]
		if bi.Escapes && !ai.Escapes {
			ai.Escapes, grew = true, true
		}
		if bi.Sent && !ai.Sent {
			ai.Sent, grew = true, true
		}
		if bi.Returned && !ai.Returned {
			ai.Returned, grew = true, true
		}
	}
	return a, grew
}

// summaryFrom folds a walk's events into per-input flags.
func (in *Info) summaryFrom(fn *ast.FuncDecl, w *walker) *Summary {
	inputs := in.inputs[fn]
	s := &Summary{Recv: fn.Recv != nil, Inputs: make([]Input, len(inputs))}
	for i, o := range inputs {
		if o != nil {
			s.Inputs[i].Name = o.Name()
		}
	}
	for _, ev := range w.events {
		if ev.Allowed {
			continue
		}
		for i := range inputs {
			if ev.Tags&bitOf(i) == 0 || i > 63 {
				continue
			}
			switch ev.Kind {
			case FieldStore, GlobalStore, CallEscape:
				s.Inputs[i].Escapes = true
			case ChanSend, CallSend:
				s.Inputs[i].Sent = true
			case ReturnSink:
				s.Inputs[i].Returned = true
			}
		}
	}
	return s
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
