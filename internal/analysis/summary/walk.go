package summary

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"shiftgears/internal/analysis"
)

// resetKey addresses a field of a specific base object, for the
// tick-reset and scratch-reuse proofs.
type resetKey struct {
	root  types.Object
	field *types.Var
}

// walker is one taint pass over one function: seeds (inputs and
// receive-bound values) carry tag bits, tags propagate through locals
// to a fixed point, then a final scan emits sink events.
type walker struct {
	in     *Info
	fn     *ast.FuncDecl
	seeds  map[types.Object]uint64
	taint  map[types.Object]uint64
	events []Event
	// resets maps fields unconditionally reset by a top-level
	// statement to the reset's position; later stores into them are
	// within-tick by construction.
	resets map[resetKey]token.Pos
	// scratch maps locals initialized from base.field[:0] to that
	// field; storing such a local back into a field of the same base
	// is the truncate-refill idiom.
	scratch map[types.Object]resetKey
	nbits   int
	emit    bool
	changed bool
}

// walk runs the engine over one function with every input and every
// receive-bound value seeded.
func (in *Info) walk(fn *ast.FuncDecl) *walker {
	w := &walker{
		in:      in,
		fn:      fn,
		seeds:   make(map[types.Object]uint64),
		taint:   make(map[types.Object]uint64),
		resets:  make(map[resetKey]token.Pos),
		scratch: make(map[types.Object]resetKey),
	}
	inputs := in.inputs[fn]
	w.nbits = len(inputs)
	for i, o := range inputs {
		if o != nil {
			w.seeds[o] = bitOf(i)
		}
	}
	for _, r := range collectReceives(in.pass, fn) {
		for _, o := range r.objs {
			if _, ok := w.seeds[o]; !ok {
				w.seeds[o] = bitOf(w.nbits)
				w.nbits++
			}
		}
	}
	for o, bits := range w.seeds {
		w.taint[o] = bits
	}
	w.collectResets()

	for {
		w.changed = false
		w.scan()
		if !w.changed {
			break
		}
	}
	w.emit = true
	w.scan()
	// Named results that end up tainted count as returned.
	if fn.Type.Results != nil {
		for _, f := range fn.Type.Results.List {
			for _, n := range f.Names {
				if o := in.pass.TypesInfo.ObjectOf(n); o != nil && w.taint[o] != 0 {
					w.event(ReturnSink, fn.Name.Pos(), w.taint[o], "named result "+n.Name)
				}
			}
		}
	}
	return w
}

// collectResets records top-level `x.f = x.f[:0]` and `x.f = nil`
// statements: unconditional per-call resets that bound the lifetime of
// anything stored into x.f afterwards.
func (w *walker) collectResets() {
	for _, st := range w.fn.Body.List {
		as, ok := st.(*ast.AssignStmt)
		if !ok || as.Tok != token.ASSIGN || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			continue
		}
		key, ok := w.fieldKey(as.Lhs[0])
		if !ok {
			continue
		}
		rhs := unparen(as.Rhs[0])
		isReset := false
		if id, okID := rhs.(*ast.Ident); okID && id.Name == "nil" {
			isReset = true
		} else if src, okSrc := w.scratchSource(rhs); okSrc && src == key {
			isReset = true // x.f = x.f[:0]
		}
		if isReset {
			w.resets[key] = as.Pos()
		}
	}
}

// fieldKey resolves an expression of the form root.f (root an
// identifier chain) to its (root object, field) key.
func (w *walker) fieldKey(e ast.Expr) (resetKey, bool) {
	sel, ok := unparen(e).(*ast.SelectorExpr)
	if !ok {
		return resetKey{}, false
	}
	s := w.in.pass.TypesInfo.Selections[sel]
	if s == nil || s.Kind() != types.FieldVal {
		return resetKey{}, false
	}
	field, ok := s.Obj().(*types.Var)
	if !ok {
		return resetKey{}, false
	}
	root := w.rootObj(sel.X)
	if root == nil {
		return resetKey{}, false
	}
	return resetKey{root, field}, true
}

// scratchSource recognizes base.field[:0] (possibly parenthesized) and
// returns its field key.
func (w *walker) scratchSource(e ast.Expr) (resetKey, bool) {
	sl, ok := unparen(e).(*ast.SliceExpr)
	if !ok || sl.Low != nil || sl.Slice3 {
		return resetKey{}, false
	}
	lit, ok := sl.High.(*ast.BasicLit)
	if !ok || lit.Value != "0" {
		return resetKey{}, false
	}
	return w.fieldKey(sl.X)
}

// rootObj unwraps selectors, indexes, stars, and parens down to the
// base identifier's object.
func (w *walker) rootObj(e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return w.in.pass.TypesInfo.ObjectOf(x)
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// addTaint merges tags into obj's taint set.
func (w *walker) addTaint(obj types.Object, tags uint64) {
	if obj == nil || tags == 0 {
		return
	}
	if w.taint[obj]|tags != w.taint[obj] {
		w.taint[obj] |= tags
		w.changed = true
	}
}

// event records a sink occurrence (emit phase only).
func (w *walker) event(kind Kind, pos token.Pos, tags uint64, detail string) {
	if !w.emit || tags == 0 {
		return
	}
	allowed := !w.in.cfg.Strict && w.in.pass.AllowedAt(pos)
	w.events = append(w.events, Event{Kind: kind, Pos: pos, Tags: tags, Detail: detail, Allowed: allowed})
}

// scan makes one pass over the body: propagation always, events when
// w.emit is set.
func (w *walker) scan() {
	ast.Inspect(w.fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			w.assign(n)
		case *ast.ValueSpec:
			for i, name := range n.Names {
				if i < len(n.Values) {
					w.addTaint(w.in.pass.TypesInfo.ObjectOf(name), w.exprTags(n.Values[i]))
				}
			}
		case *ast.RangeStmt:
			if chanElem(w.in.pass.TypesInfo.TypeOf(n.X)) != nil {
				return true // receive: the key object is a seed already
			}
			tags := w.exprTags(n.X)
			if tags != 0 {
				if id, ok := n.Key.(*ast.Ident); ok {
					w.addTaint(w.in.pass.TypesInfo.ObjectOf(id), tags)
				}
				if id, ok := n.Value.(*ast.Ident); ok {
					w.addTaint(w.in.pass.TypesInfo.ObjectOf(id), tags)
				}
			}
		case *ast.SendStmt:
			w.send(n)
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				w.event(ReturnSink, r.Pos(), w.exprTags(r), "return value")
			}
		case *ast.CallExpr:
			w.bindFuncLit(n)
			w.callEvents(n)
		}
		return true
	})
}

// assign handles one assignment statement: taint propagation into
// locals, scratch-marker bookkeeping, and store events.
func (w *walker) assign(n *ast.AssignStmt) {
	for i, lhs := range n.Lhs {
		var rhs ast.Expr
		switch {
		case len(n.Rhs) == len(n.Lhs):
			rhs = n.Rhs[i]
		case len(n.Rhs) == 1:
			rhs = n.Rhs[0] // tuple: every lhs conservatively gets the rhs tags
		default:
			continue
		}
		tags := w.exprTags(rhs)
		switch l := unparen(lhs).(type) {
		case *ast.Ident:
			obj := w.in.pass.TypesInfo.ObjectOf(l)
			if obj == nil {
				continue
			}
			if isGlobal(obj) {
				w.event(GlobalStore, lhs.Pos(), tags, "package-level variable "+l.Name)
				continue
			}
			// Scratch bookkeeping: v := base.f[:0] marks v; any other
			// reassignment clears the mark unless it is append(v, ...).
			if src, ok := w.scratchSource(rhs); ok {
				w.scratch[obj] = src
			} else if !isAppendTo(w.in.pass, rhs, obj) {
				delete(w.scratch, obj)
			}
			w.addTaint(obj, tags)
		default:
			w.store(lhs, rhs, tags)
		}
	}
}

// store handles an assignment whose target is not a plain local:
// x.f = v, x.f[i] = v, x[i] = v, *p = v, g[i] = v.
func (w *walker) store(lhs, rhs ast.Expr, tags uint64) {
	// Unwrap element stores: x.f[i] = v stores into x.f.
	base := unparen(lhs)
	for {
		if ix, ok := base.(*ast.IndexExpr); ok {
			base = unparen(ix.X)
			continue
		}
		if st, ok := base.(*ast.StarExpr); ok {
			base = unparen(st.X)
			continue
		}
		break
	}
	if sel, ok := base.(*ast.SelectorExpr); ok {
		if key, ok := w.fieldKey(sel); ok {
			w.fieldStore(lhs, rhs, key, sel, tags)
			return
		}
		// Qualified global: pkg.Var = v.
		if id, ok := sel.X.(*ast.Ident); ok {
			if _, isPkg := w.in.pass.TypesInfo.ObjectOf(id).(*types.PkgName); isPkg {
				w.event(GlobalStore, lhs.Pos(), tags, "package-level variable "+sel.Sel.Name)
			}
		}
		return
	}
	if id, ok := base.(*ast.Ident); ok {
		obj := w.in.pass.TypesInfo.ObjectOf(id)
		if obj == nil {
			return
		}
		if isGlobal(obj) {
			w.event(GlobalStore, lhs.Pos(), tags, "package-level variable "+id.Name)
			return
		}
		// Element store into a local or parameter container: the
		// container now carries the tags. A store into an input
		// container (ins[q] = payload) is the delivery API, not a
		// sink — the caller's contract covers it.
		w.addTaint(obj, tags)
	}
}

// fieldStore applies the exemption proofs and emits a FieldStore event
// for what remains.
func (w *walker) fieldStore(lhs, rhs ast.Expr, key resetKey, sel *ast.SelectorExpr, tags uint64) {
	owner := NamedOf(w.in.pass.TypesInfo.Selections[sel].Recv())
	strict := w.in.cfg.Strict
	if !strict {
		if w.in.cfg.Holders[owner] {
			return // arena-owner type: within-tick by design
		}
		if reset, ok := w.resets[key]; ok && reset < lhs.Pos() {
			return // tick-reset: the field is truncated every call
		}
		if src := w.scratchRoot(rhs); src != nil && src == key.root {
			return // scratch-reuse: base.f[:0]-rooted local stored back
		}
	}
	// The base object itself now reaches the stored value.
	w.addTaint(key.root, tags)
	// Storing an input into the input's own base is containment, not
	// escape: w.buf = w.tmp does not leak w's caller anything new.
	escTags := tags &^ w.seeds[key.root]
	where := "struct field"
	if owner != "" {
		where = "field of " + owner
	}
	w.event(FieldStore, lhs.Pos(), escTags, where)
}

// scratchRoot reports the base object when rhs is (a conversion of) a
// scratch-marked local.
func (w *walker) scratchRoot(rhs ast.Expr) types.Object {
	e := unparen(rhs)
	for {
		call, ok := e.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			break
		}
		if tv, ok := w.in.pass.TypesInfo.Types[call.Fun]; !ok || !tv.IsType() {
			break
		}
		e = unparen(call.Args[0]) // net.Buffers(vecs) and friends
	}
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	obj := w.in.pass.TypesInfo.ObjectOf(id)
	if obj == nil {
		return nil
	}
	if src, ok := w.scratch[obj]; ok {
		return src.root
	}
	return nil
}

// send handles ch <- v: a ChanSend event unless the element type is
// proven drained.
func (w *walker) send(n *ast.SendStmt) {
	tags := w.exprTags(n.Value)
	if tags == 0 {
		return
	}
	elem := chanElem(w.in.pass.TypesInfo.TypeOf(n.Chan))
	if elem != nil && !w.in.cfg.Strict && w.in.drained[elem.String()] {
		return
	}
	w.event(ChanSend, n.Pos(), tags, "a channel")
}

// bindFuncLit propagates call-site argument tags into the parameters
// of a directly-invoked function literal (go fl(args), defer fl(args),
// fl(args)). The literal's body is scanned as part of the enclosing
// function, so its sinks are already this function's sinks; only the
// parameter binding needs help.
func (w *walker) bindFuncLit(call *ast.CallExpr) {
	fl, ok := unparen(call.Fun).(*ast.FuncLit)
	if !ok || fl.Type.Params == nil {
		return
	}
	var params []types.Object
	for _, f := range fl.Type.Params.List {
		if len(f.Names) == 0 {
			params = append(params, nil)
			continue
		}
		for _, nm := range f.Names {
			params = append(params, w.in.pass.TypesInfo.ObjectOf(nm))
		}
	}
	for i, arg := range call.Args {
		if i < len(params) {
			w.addTaint(params[i], w.exprTags(arg))
		} else if len(params) > 0 {
			w.addTaint(params[len(params)-1], w.exprTags(arg)) // variadic tail
		}
	}
}

// callEvents consults the callee's summary and emits call-site events
// for tainted arguments that reach the callee's sinks.
func (w *walker) callEvents(call *ast.CallExpr) {
	fn := StaticCallee(w.in.pass, call)
	if fn == nil {
		return
	}
	sum := w.in.Of(fn)
	if sum == nil || sum.Clean() {
		return
	}
	// Gather the call-site expression(s) feeding each callee input.
	exprs := make([][]ast.Expr, len(sum.Inputs))
	idx := 0
	if sum.Recv {
		if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
			exprs[0] = []ast.Expr{sel.X}
		}
		idx = 1
	}
	sig, _ := fn.Type().(*types.Signature)
	for ai, arg := range call.Args {
		j := idx + ai
		if j >= len(exprs) {
			if sig != nil && sig.Variadic() && len(exprs) > 0 {
				j = len(exprs) - 1 // extra args feed the variadic input
			} else {
				break
			}
		}
		exprs[j] = append(exprs[j], arg)
	}
	for j, inp := range sum.Inputs {
		if !inp.Escapes && !inp.Sent {
			continue
		}
		var tags uint64
		var pos token.Pos = call.Pos()
		for _, e := range exprs[j] {
			if t := w.exprTags(e); t != 0 {
				tags |= t
				pos = e.Pos()
			}
		}
		// As with direct field stores, an input flowing back into the
		// callee's own receiver argument is containment.
		if sum.Recv && j != 0 && len(exprs[0]) == 1 {
			if recvObj := w.rootObj(exprs[0][0]); recvObj != nil {
				tags &^= w.seeds[recvObj]
			}
		}
		if tags == 0 {
			continue
		}
		name := inp.Name
		if name == "" {
			name = fmt.Sprintf("#%d", j)
		}
		if inp.Escapes {
			w.event(CallEscape, pos, tags, fmt.Sprintf("%s, whose parameter %s is stored beyond the call", CalleeName(fn), name))
		}
		if inp.Sent {
			w.event(CallSend, pos, tags, fmt.Sprintf("%s, whose parameter %s is sent on a channel", CalleeName(fn), name))
		}
	}
}

// isGlobal reports whether obj is a package-level variable.
func isGlobal(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	return ok && !v.IsField() && v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

// isAppendTo reports whether rhs is append(obj, ...): the one
// reassignment shape that preserves a scratch marker.
func isAppendTo(pass *analysis.Pass, rhs ast.Expr, obj types.Object) bool {
	call, ok := unparen(rhs).(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); !ok || b.Name() != "append" {
		return false
	}
	first, ok := unparen(call.Args[0]).(*ast.Ident)
	return ok && pass.TypesInfo.ObjectOf(first) == obj
}
