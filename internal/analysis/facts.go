package analysis

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"go/types"
	"reflect"
	"sort"
	"strings"
)

// Fact is a datum one analysis of one package leaves behind for the
// analyses of the packages that import it — the modular go vet model's
// only cross-package channel. A fact type is a pointer to a
// gob-encodable struct carrying the AFact marker method; facts attach
// to package-level objects (or methods of package-level named types)
// and travel in the vetx files the vet protocol threads between
// compilation units.
type Fact interface {
	AFact() // marker method
}

// factKey addresses one fact: the analyzer that owns it (facts are
// namespaced per analyzer, so two checkers never read each other's
// state), the package, the object path within the package ("" for a
// package-level fact), and the concrete fact type.
type factKey struct {
	analyzer string
	pkg      string
	obj      string
	typ      string
}

// FactStore holds the facts visible to one analysis run: everything
// decoded from dependency vetx files plus everything exported while
// analyzing the current unit. The store is string-keyed (package path +
// object path), so facts decoded before their package's types.Package
// exists resolve lazily at import time.
type FactStore struct {
	m map[factKey]Fact
}

// NewFactStore builds an empty store.
func NewFactStore() *FactStore {
	return &FactStore{m: make(map[factKey]Fact)}
}

// factTypeName renders a fact's concrete type as its stable wire name.
func factTypeName(fact Fact) string {
	return reflect.TypeOf(fact).String()
}

// wireFact is the vetx file entry: one fact with its full address.
type wireFact struct {
	Analyzer string
	Pkg      string
	Obj      string
	Fact     Fact
}

// Encode serializes every fact in the store — imported facts included,
// so a unit's vetx file transitively re-exports its dependencies'
// facts (the driver may hand importers only their direct dependencies'
// files). The entry order is canonicalized so identical fact sets
// produce identical bytes.
func (s *FactStore) Encode() ([]byte, error) {
	facts := make([]wireFact, 0, len(s.m))
	for k, f := range s.m {
		facts = append(facts, wireFact{Analyzer: k.analyzer, Pkg: k.pkg, Obj: k.obj, Fact: f})
	}
	sort.Slice(facts, func(i, j int) bool {
		a, b := facts[i], facts[j]
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		if a.Pkg != b.Pkg {
			return a.Pkg < b.Pkg
		}
		if a.Obj != b.Obj {
			return a.Obj < b.Obj
		}
		return factTypeName(a.Fact) < factTypeName(b.Fact)
	})
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(facts); err != nil {
		return nil, fmt.Errorf("analysis: encoding facts: %v", err)
	}
	return buf.Bytes(), nil
}

// Decode merges a vetx file's facts into the store. An empty file is a
// valid empty fact set (the shape this driver wrote before facts
// existed, and what it still writes for out-of-scope units).
func (s *FactStore) Decode(data []byte) error {
	if len(data) == 0 {
		return nil
	}
	var facts []wireFact
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&facts); err != nil {
		return fmt.Errorf("analysis: decoding facts: %v", err)
	}
	for _, wf := range facts {
		s.m[factKey{wf.Analyzer, wf.Pkg, wf.Obj, factTypeName(wf.Fact)}] = wf.Fact
	}
	return nil
}

// ObjectFactRecord is one exported object fact, string-addressed — the
// enumeration shape the vettest harness matches want expectations
// against.
type ObjectFactRecord struct {
	Pkg  string
	Obj  string
	Fact Fact
}

// ObjectFacts lists the facts one analyzer holds about one package's
// objects, in canonical order.
func (s *FactStore) ObjectFacts(analyzer, pkg string) []ObjectFactRecord {
	var out []ObjectFactRecord
	for k, f := range s.m {
		if k.analyzer == analyzer && k.pkg == pkg && k.obj != "" {
			out = append(out, ObjectFactRecord{Pkg: k.pkg, Obj: k.obj, Fact: f})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Obj < out[j].Obj })
	return out
}

// ObjectPath names a fact-addressable object stably across
// compilations: "F" for a package-level func/var/type, "T.M" for method
// M of package-level named type T. Locals, struct fields, and methods
// of unnamed or foreign types have no path and are not
// fact-addressable.
func ObjectPath(obj types.Object) (string, bool) {
	if obj == nil || obj.Pkg() == nil {
		return "", false
	}
	if obj.Parent() == obj.Pkg().Scope() {
		return obj.Name(), true
	}
	if fn, ok := obj.(*types.Func); ok {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			t := sig.Recv().Type()
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			if n, ok := t.(*types.Named); ok && n.Obj().Pkg() == obj.Pkg() {
				return n.Obj().Name() + "." + fn.Name(), true
			}
		}
	}
	return "", false
}

// FindObject resolves an ObjectPath within a package: the inverse
// lookup the fixture harness needs to position facts decoded from the
// store.
func FindObject(pkg *types.Package, path string) types.Object {
	if tname, mname, ok := strings.Cut(path, "."); ok {
		tn, _ := pkg.Scope().Lookup(tname).(*types.TypeName)
		if tn == nil {
			return nil
		}
		named, _ := tn.Type().(*types.Named)
		if named == nil {
			return nil
		}
		for i := 0; i < named.NumMethods(); i++ {
			if m := named.Method(i); m.Name() == mname {
				return m
			}
		}
		return nil
	}
	return pkg.Scope().Lookup(path)
}

// registerFactTypes registers every analyzer's declared fact types with
// gob so interface-typed wireFact entries round-trip. Registration is
// idempotent for a given concrete type.
func registerFactTypes(analyzers []*Analyzer) {
	for _, a := range analyzers {
		for _, f := range a.FactTypes {
			gob.Register(f)
		}
	}
}

// ExportObjectFact associates fact with obj for importers of this
// package. obj must belong to the package under analysis and be
// fact-addressable (ObjectPath); other objects are silently skipped —
// facts on locals are meaningless to importers.
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) {
	if p.facts == nil || obj == nil || obj.Pkg() != p.Pkg {
		return
	}
	path, ok := ObjectPath(obj)
	if !ok {
		return
	}
	p.facts.m[factKey{p.Analyzer.Name, p.Pkg.Path(), path, factTypeName(fact)}] = fact
}

// ImportObjectFact copies into fact the fact of fact's concrete type
// previously exported for obj — by this unit or by the analysis of the
// package that declares obj — and reports whether one existed.
func (p *Pass) ImportObjectFact(obj types.Object, fact Fact) bool {
	if p.facts == nil || obj == nil || obj.Pkg() == nil {
		return false
	}
	path, ok := ObjectPath(obj)
	if !ok {
		return false
	}
	found, ok := p.facts.m[factKey{p.Analyzer.Name, obj.Pkg().Path(), path, factTypeName(fact)}]
	if !ok {
		return false
	}
	reflect.ValueOf(fact).Elem().Set(reflect.ValueOf(found).Elem())
	return true
}

// ExportPackageFact associates fact with the package under analysis.
func (p *Pass) ExportPackageFact(fact Fact) {
	if p.facts == nil {
		return
	}
	p.facts.m[factKey{p.Analyzer.Name, p.Pkg.Path(), "", factTypeName(fact)}] = fact
}

// ImportPackageFact copies into fact the package-level fact previously
// exported for pkg and reports whether one existed.
func (p *Pass) ImportPackageFact(pkg *types.Package, fact Fact) bool {
	if p.facts == nil || pkg == nil {
		return false
	}
	found, ok := p.facts.m[factKey{p.Analyzer.Name, pkg.Path(), "", factTypeName(fact)}]
	if !ok {
		return false
	}
	reflect.ValueOf(fact).Elem().Set(reflect.ValueOf(found).Elem())
	return true
}
