package analysis

import (
	"go/types"
	"strings"
	"testing"
)

// markFact is the object fact of the round-trip test: it carries a
// payload so the test can verify values, not just presence.
type markFact struct{ Tag string }

func (*markFact) AFact() {}

// originFact is the package fact of the round-trip test.
type originFact struct{ Pkg string }

func (*originFact) AFact() {}

// TestFactsRoundTrip drives the full modular-analysis fact path the
// way the vet protocol does: analyze the dependency, gob-encode its
// facts to vetx bytes, decode them into a fresh store (the importing
// unit's view), and analyze the dependent — which must see both the
// object facts (plain function and method paths) and the package fact,
// with payloads intact.
func TestFactsRoundTrip(t *testing.T) {
	probe := &Analyzer{
		Name:      "factprobe",
		Doc:       "export facts from lib, verify them from app (test analyzer)",
		FactTypes: []Fact{&markFact{}, &originFact{}},
		Run: func(pass *Pass) error {
			if pass.Pkg.Path() == "factpair/lib" {
				scope := pass.Pkg.Scope()
				pass.ExportObjectFact(scope.Lookup("Answer"), &markFact{Tag: "Answer"})
				box := scope.Lookup("Box").Type().(*types.Named)
				for i := 0; i < box.NumMethods(); i++ {
					m := box.Method(i)
					pass.ExportObjectFact(m, &markFact{Tag: "Box." + m.Name()})
				}
				pass.ExportPackageFact(&originFact{Pkg: pass.Pkg.Path()})
				return nil
			}
			// Importing side: report one diagnostic per fact found, so
			// the test asserts on ordinary findings.
			for _, imp := range pass.Pkg.Imports() {
				if imp.Path() != "factpair/lib" {
					continue
				}
				for _, path := range []string{"Answer", "Box.Get"} {
					var mark markFact
					if pass.ImportObjectFact(FindObject(imp, path), &mark) {
						pass.Reportf(pass.Files[0].Pos(), "object fact %s=%s", path, mark.Tag)
					}
				}
				var origin originFact
				if pass.ImportPackageFact(imp, &origin) {
					pass.Reportf(pass.Files[0].Pos(), "package fact from %s", origin.Pkg)
				}
			}
			return nil
		},
	}
	registerFactTypes([]*Analyzer{probe})

	loader := NewLoader("testdata/src")
	lib, err := loader.Load("factpair/lib")
	if err != nil {
		t.Fatal(err)
	}
	app, err := loader.Load("factpair/app")
	if err != nil {
		t.Fatal(err)
	}

	// Dependency unit: export, then serialize to vetx bytes.
	exportStore := NewFactStore()
	if _, err := runPass(probe, lib, exportStore); err != nil {
		t.Fatal(err)
	}
	data, err := exportStore.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("Encode returned no bytes for a store with facts")
	}

	// Importing unit: a fresh store seeded only from the wire bytes —
	// nothing may leak through shared memory.
	importStore := NewFactStore()
	if err := importStore.Decode(data); err != nil {
		t.Fatal(err)
	}
	if err := importStore.Decode(nil); err != nil {
		t.Fatalf("empty vetx must decode cleanly: %v", err)
	}
	if got := len(importStore.ObjectFacts("factprobe", "factpair/lib")); got != 2 {
		t.Fatalf("decoded store holds %d object facts for lib, want 2", got)
	}

	diags, err := runPass(probe, app, importStore)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, d := range diags {
		got = append(got, d.Message)
	}
	want := []string{
		"object fact Answer=Answer",
		"object fact Box.Get=Box.Get",
		"package fact from factpair/lib",
	}
	for _, w := range want {
		found := false
		for _, g := range got {
			if g == w {
				found = true
			}
		}
		if !found {
			t.Errorf("missing finding %q in %s", w, strings.Join(got, "; "))
		}
	}
	if len(got) != len(want) {
		t.Errorf("got %d findings (%s), want %d", len(got), strings.Join(got, "; "), len(want))
	}
}
