// Package gearsdeterminism enforces the determinism contract of the
// deterministic core (doc.go "Gear policies: shifting algorithms across
// the log"): every replica must compute the same gear schedule from the
// same committed prefix, adversary strategies must replay identically
// from their seeds, and the chaos fabric's fault decisions must be pure
// in (seed, tick, link, instance). A nondeterminism source anywhere in
// the library packages can leak into frames or gear decisions three
// layers away and surface only as a schedule divergence at runtime —
// this analyzer fails `go vet` instead.
//
// Flagged sources:
//   - wall-clock reads: time.Now, time.Since, time.Until
//   - the global math/rand source (rand.Intn and friends — shared,
//     unseeded state), for math/rand and math/rand/v2 alike
//   - PRNG construction (rand.New, rand.NewSource, rand.NewPCG,
//     rand.NewChaCha8): deterministic only when the seed derives from
//     configuration, which the analyzer cannot prove — so construction
//     sites must carry a //gearsvet:allow <reason> once verified
//   - map iteration whose order escapes: a range over a map that
//     appends to a slice never sorted in the same function, or sends
//     on a channel
//   - writes to package-level variables outside init (global mutable
//     state shared across replicas in-process)
//
// Scope: packages of this module outside cmd/ and examples/ (tools may
// use clocks freely), skipping _test.go files.
package gearsdeterminism

import (
	"go/ast"
	"go/types"
	"strings"

	"shiftgears/internal/analysis"
)

// Analyzer is the determinism-contract checker.
var Analyzer = &analysis.Analyzer{
	Name: "gearsdeterminism",
	Doc: "flag nondeterminism sources (clocks, global or unproven PRNGs, escaping map order, global state) in the deterministic core\n\n" +
		"The determinism contract requires gear policies, adversary strategies, and chaos decisions to be pure functions of configuration and committed state.",
	Run:       run,
	FactTypes: []analysis.Fact{&UsesClock{}},
	Scope:     inScope,
}

// UsesClock is exported for every function that reads the wall clock
// directly (time.Now/Since/Until) — whether or not the site carries an
// allow. It gives importing units (and future checks on the schedule
// path) a cross-package view of where real time enters the tree.
type UsesClock struct{}

// AFact marks UsesClock as a vetx-encodable fact.
func (*UsesClock) AFact() {}

func (*UsesClock) String() string { return "uses-clock" }

// inScope reports whether the package is part of the deterministic
// core: the module root or internal packages, not tools or examples.
func inScope(path string) bool {
	if strings.Contains(path, "/cmd/") || strings.HasPrefix(path, "cmd/") ||
		strings.Contains(path, "/examples/") {
		return false
	}
	// The analysis machinery itself is tooling, not core.
	if strings.Contains(path, "/analysis") {
		return false
	}
	return path == "shiftgears" || strings.HasPrefix(path, "shiftgears/")
}

func run(pass *analysis.Pass) error {
	if !inScope(pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		if analysis.TestFile(pass.Fset, file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			isInit := fn.Name.Name == "init" && fn.Recv == nil
			checkFunc(pass, fn, isInit)
		}
	}
	return nil
}

// checkFunc applies every determinism check to one function body.
func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl, isInit bool) {
	owner, _ := pass.TypesInfo.Defs[fn.Name].(*types.Func)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkCall(pass, owner, n)
		case *ast.RangeStmt:
			checkMapRange(pass, fn, n)
		case *ast.AssignStmt:
			if !isInit {
				for _, lhs := range n.Lhs {
					checkGlobalWrite(pass, lhs)
				}
			}
		case *ast.IncDecStmt:
			if !isInit {
				checkGlobalWrite(pass, n.X)
			}
		}
		return true
	})
}

// checkCall flags wall-clock reads and math/rand usage, and exports a
// UsesClock fact on owner when the call reads the wall clock.
func checkCall(pass *analysis.Pass, owner *types.Func, call *ast.CallExpr) {
	fn := calleeFunc(pass, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	switch fn.Pkg().Path() {
	case "time":
		switch fn.Name() {
		case "Now", "Since", "Until":
			if owner != nil {
				pass.ExportObjectFact(owner, &UsesClock{})
			}
			pass.Reportf(call.Pos(), "time.%s in the deterministic core: wall-clock reads differ across replicas, so they cannot feed frames or gear decisions (//gearsvet:allow <reason> if provably off the decision path)", fn.Name())
		}
	case "math/rand", "math/rand/v2":
		switch fn.Name() {
		case "New", "NewSource", "NewPCG", "NewChaCha8", "NewZipf":
			pass.Reportf(call.Pos(), "PRNG constructed in the deterministic core: deterministic only if the seed derives from configuration — verify and annotate //gearsvet:allow <how the seed is derived>")
		default:
			// Package-level rand functions draw from the shared global
			// source: unseeded (or racily shared) across replicas.
			// Methods (e.g. (*Rand).Intn) are fine — their source was
			// vetted at construction.
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() == nil {
				pass.Reportf(call.Pos(), "global math/rand source in the deterministic core: %s.%s draws from shared unseeded state and diverges across replicas — use a seeded *rand.Rand from the run's configuration", fn.Pkg().Name(), fn.Name())
			}
		}
	}
}

// calleeFunc resolves a call's static callee, nil for indirect calls.
func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch f := call.Fun.(type) {
	case *ast.Ident:
		id = f
	case *ast.SelectorExpr:
		id = f.Sel
	default:
		return nil
	}
	fn, _ := pass.TypesInfo.Uses[id].(*types.Func)
	return fn
}

// checkMapRange flags map iterations whose nondeterministic order can
// escape: appending to a slice that the function never sorts, or
// sending on a channel from inside the loop.
func checkMapRange(pass *analysis.Pass, fn *ast.FuncDecl, rng *ast.RangeStmt) {
	t := pass.TypesInfo.Types[rng.X].Type
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			pass.Reportf(n.Pos(), "channel send inside a map range: map iteration order is nondeterministic and escapes through the channel — iterate a sorted key slice instead")
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !isBuiltinAppend(pass, call) || i >= len(n.Lhs) {
					continue
				}
				target, ok := n.Lhs[i].(*ast.Ident)
				if !ok {
					pass.Reportf(n.Pos(), "append inside a map range stores iteration order into %s: map order is nondeterministic — collect and sort, or iterate sorted keys", types.ExprString(n.Lhs[i]))
					continue
				}
				obj := pass.TypesInfo.ObjectOf(target)
				if obj == nil || sortedLater(pass, fn, obj) {
					continue
				}
				pass.Reportf(n.Pos(), "map iteration order escapes into %s, which this function never sorts: append inside a map range is nondeterministic — sort %s before it is used, or iterate sorted keys", target.Name, target.Name)
			}
		}
		return true
	})
}

// isBuiltinAppend reports whether the call is the append builtin.
func isBuiltinAppend(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// sortedLater reports whether fn contains a sort/slices call whose
// first argument (or closure arguments) mention obj — the "collect
// then sort" idiom that makes a map range deterministic.
func sortedLater(pass *analysis.Pass, fn *ast.FuncDecl, obj types.Object) bool {
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := calleeFunc(pass, call)
		if callee == nil || callee.Pkg() == nil {
			return true
		}
		switch callee.Pkg().Path() {
		case "sort", "slices":
		default:
			return true
		}
		for _, arg := range call.Args {
			mentioned := false
			ast.Inspect(arg, func(a ast.Node) bool {
				if id, ok := a.(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == obj {
					mentioned = true
				}
				return !mentioned
			})
			if mentioned {
				found = true
				break
			}
		}
		return true
	})
	return found
}

// checkGlobalWrite flags assignments whose target is (or is reached
// through) a package-level variable.
func checkGlobalWrite(pass *analysis.Pass, lhs ast.Expr) {
	if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
		return
	}
	root := rootIdent(pass, lhs)
	if root == nil {
		return
	}
	obj, ok := pass.TypesInfo.ObjectOf(root).(*types.Var)
	if !ok || obj.IsField() {
		return
	}
	// Package-level: parented directly by its package's scope (the
	// variable may belong to another package, e.g. otherpkg.Var = x).
	if obj.Pkg() == nil || obj.Parent() != obj.Pkg().Scope() {
		return
	}
	pass.Reportf(lhs.Pos(), "write to package-level variable %s in the deterministic core: global mutable state is shared by every in-process replica and breaks schedule purity — thread state through the run's configuration instead", root.Name)
}

// rootIdent walks selector/index/star/paren chains to the base
// identifier, nil when the base is not an identifier (e.g. a call).
// A qualified reference (otherpkg.Var) resolves to the selected
// variable itself.
func rootIdent(pass *analysis.Pass, e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			if base, ok := x.X.(*ast.Ident); ok {
				if _, isPkg := pass.TypesInfo.ObjectOf(base).(*types.PkgName); isPkg {
					return x.Sel
				}
			}
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}
