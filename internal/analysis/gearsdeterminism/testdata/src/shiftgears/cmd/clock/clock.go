// Package clock is a scoping fixture: cmd/ packages are tools, outside
// the deterministic core, so wall clocks and global rand are fine here.
package clock

import (
	"math/rand"
	"time"
)

// Stamp may read the wall clock: tools are out of scope.
func Stamp() int64 {
	return time.Now().UnixNano() + int64(rand.Intn(10))
}
