// Package policy is a gearsdeterminism fixture: a deliberately broken
// gear policy plus the catalog of nondeterminism sources the analyzer
// must flag, and the deterministic idioms it must accept.
package policy

import (
	"math/rand"
	"sort"
	"time"
)

// LogEntry mirrors the shape a GearPolicy's committed prefix carries.
type LogEntry struct{ Slot int }

// Algorithm mirrors the gear identifier a policy returns.
type Algorithm int

// BrokenPolicy is the acceptance-criteria fixture: a GearPolicy whose
// Pick consults the wall clock, so two replicas computing the schedule
// for the same prefix can pick different gears.
type BrokenPolicy struct{}

// Pick violates the determinism contract.
func (BrokenPolicy) Pick(slot, source int, prefix []LogEntry) Algorithm {
	if time.Now().Unix()%2 == 0 { // want `time\.Now in the deterministic core`
		return 1
	}
	return 0
}

func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want `time\.Since in the deterministic core`
}

func globalSource() int {
	return rand.Intn(6) // want `global math/rand source`
}

func freshPRNG() *rand.Rand {
	return rand.New(rand.NewSource(42)) // want `PRNG constructed` `PRNG constructed`
}

// seededPRNG shows the accepted idiom: construction is suppressed with
// a reasoned directive once the seed's provenance is verified.
func seededPRNG(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed)) //gearsvet:allow seed is threaded from the run's configuration
}

// seededDraws shows that methods on a vetted *rand.Rand are fine: only
// package-level draws hit the shared global source.
func seededDraws(rng *rand.Rand) int {
	return rng.Intn(6)
}

var counter int

func bumpGlobal() {
	counter++ // want `write to package-level variable counter`
}

func assignGlobal(n int) {
	counter = n // want `write to package-level variable counter`
}

func localShadow() {
	counter := 0
	counter++
	_ = counter
}

func mapOrderEscapes(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `map iteration order escapes into keys`
	}
	return keys
}

func mapOrderSorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func mapSend(m map[string]int, ch chan string) {
	for k := range m {
		ch <- k // want `channel send inside a map range`
	}
}

func sliceRangeFine(s []string) []string {
	var out []string
	for _, v := range s {
		out = append(out, v)
	}
	return out
}
