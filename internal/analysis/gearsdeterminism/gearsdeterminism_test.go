package gearsdeterminism_test

import (
	"testing"

	"shiftgears/internal/analysis/gearsdeterminism"
	"shiftgears/internal/analysis/vettest"
)

func TestGearsDeterminism(t *testing.T) {
	vettest.Run(t, "testdata", gearsdeterminism.Analyzer,
		"shiftgears/internal/policy", // every flagged source + accepted idioms
		"shiftgears/cmd/clock",       // tools are out of scope: no findings
	)
}
