package analysis_test

import (
	"go/ast"
	"strings"
	"testing"

	"shiftgears/internal/analysis"
)

// callFlagger flags every call expression — a synthetic analyzer that
// lets the test pin the suppression semantics without depending on any
// real checker's logic.
var callFlagger = &analysis.Analyzer{
	Name: "callflagger",
	Doc:  "flag every call (test analyzer)",
	Run: func(pass *analysis.Pass) error {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					pass.Reportf(call.Pos(), "call")
				}
				return true
			})
		}
		return nil
	},
}

func TestAllowDirectives(t *testing.T) {
	loader := analysis.NewLoader("testdata/src")
	p, err := loader.Load("allowfix")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.RunOn(callFlagger, p)
	if err != nil {
		t.Fatal(err)
	}

	type finding struct {
		line int
		bare bool
	}
	var got []finding
	for _, d := range diags {
		got = append(got, finding{
			line: p.Fset.Position(d.Pos).Line,
			bare: strings.Contains(d.Message, "bare //gearsvet:allow"),
		})
	}

	// Fixture lines: 12 unsuppressed call, 13 reasoned trailing
	// (suppressed), 15 covered by the standalone directive on 14
	// (suppressed), 16 bare directive (call kept + bare finding),
	// 17-20 multi-line call fully covered by its trailing directive
	// (inner calls included — the statement-extent regression), 22-24
	// multi-line call covered by the standalone directive on 21, and
	// 25-27 an uncovered multi-line call (outer + inner findings kept).
	want := map[finding]int{
		{line: 12, bare: false}: 1,
		{line: 16, bare: false}: 1,
		{line: 16, bare: true}:  1,
		{line: 25, bare: false}: 1,
		{line: 26, bare: false}: 1,
	}
	gotCount := make(map[finding]int)
	for _, f := range got {
		gotCount[f]++
	}
	for f, n := range want {
		if gotCount[f] != n {
			t.Errorf("line %d (bare=%v): got %d findings, want %d", f.line, f.bare, gotCount[f], n)
		}
	}
	for f, n := range gotCount {
		if want[f] == 0 {
			t.Errorf("line %d (bare=%v): %d unexpected findings (suppression failed?)", f.line, f.bare, n)
		}
	}
}
