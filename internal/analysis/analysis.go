// Package analysis is the contract-checking substrate behind
// cmd/gearsvet: a minimal, dependency-free reimplementation of the
// go/analysis analyzer shape (golang.org/x/tools is deliberately not a
// dependency of this module) plus the driver glue that speaks the `go
// vet -vettool` protocol.
//
// The three contracts this tree documents in prose — the determinism
// contract on gear policies and adversary strategies (doc.go "Gear
// policies"), the one-tick payload lifetime of the wire hot path
// (doc.go "Wire hot path"), and the zero-overhead tracing contract
// (doc.go "The flight recorder") — are machine-checked by the analyzers
// in the subpackages gearsdeterminism, arenalifetime, and zeroalloc.
// Each analyzer inspects one typed package at a time (the modular model
// go vet imposes), reports Diagnostics, and is exercised by
// vettest-driven fixtures under its testdata directory.
//
// # Suppression
//
// A finding that is correct-by-construction rather than by mechanism —
// a PRNG seeded from the run's configuration, a wall-clock read on a
// connection-setup path that precedes the lockstep schedule — is
// suppressed in place with a reasoned directive:
//
//	rng: rand.New(rand.NewSource(seed)), //gearsvet:allow seeded from cfg: deterministic by construction
//
// The directive suppresses gearsvet diagnostics on its own line, or on
// the line directly below when it stands alone on a line. A bare
// //gearsvet:allow with no reason is itself a diagnostic: the point of
// the directive is the recorded justification, not the mute.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one contract checker: a name (the diagnostic
// prefix and the -<name> enable flag under go vet), documentation, and
// the Run function applied to each package.
type Analyzer struct {
	// Name identifies the analyzer; it must be a valid Go identifier
	// (go vet exposes it as the flag -<name>).
	Name string
	// Doc is the analyzer's documentation: a one-line summary, a blank
	// line, then detail.
	Doc string
	// Run inspects one package and reports findings through
	// pass.Report. The returned error aborts the whole vet run — it is
	// for broken invariants of the analyzer itself, not for findings.
	Run func(pass *Pass) error
	// FactTypes lists the concrete fact types (pointers to zero values)
	// this analyzer exports and imports; they are registered for the
	// vetx wire encoding before any unit runs.
	FactTypes []Fact
	// Scope, when non-nil, reports whether the analyzer has any work —
	// diagnostics or facts — in the package at importPath. When every
	// registered analyzer is out of scope the driver skips parsing and
	// type-checking the unit entirely (the fast path that keeps
	// facts-only runs over the standard library free).
	Scope func(importPath string) bool
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	// Analyzer is the checker being run.
	Analyzer *Analyzer
	// Fset resolves token positions for the package's files.
	Fset *token.FileSet
	// Files are the package's parsed syntax trees, comments included.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo maps syntax to types, objects, and selections.
	TypesInfo *types.Info
	// TypesSizes reports the compiler's type layout (fieldalignment-
	// style checks need sizes and offsets).
	TypesSizes types.Sizes
	// Report delivers one finding.
	Report func(Diagnostic)

	// facts backs the Export/Import fact methods; nil means facts are
	// disabled for this pass (exports vanish, imports find nothing).
	facts *FactStore
	// sup is the unit's //gearsvet:allow index; analyzers that derive
	// facts from flagged shapes consult it via AllowedAt so an allowed
	// sink reads as proven-safe to callers too.
	sup *Suppressor
}

// SetFacts attaches a fact store to the pass. Drivers call it before
// Run; a pass without a store still works, with facts disabled.
func (p *Pass) SetFacts(s *FactStore) { p.facts = s }

// SetSuppressor attaches the unit's directive index to the pass.
func (p *Pass) SetSuppressor(s *Suppressor) { p.sup = s }

// AllowedAt reports whether a reasoned //gearsvet:allow directive
// covers pos in this unit.
func (p *Pass) AllowedAt(pos token.Pos) bool {
	if p.sup == nil {
		return false
	}
	_, ok := p.sup.Covers(pos)
	return ok
}

// Reportf reports a formatted finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding: a position and a message. The driver
// prefixes the analyzer name when printing.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// TestFile reports whether the position's file is a _test.go file. The
// contracts govern library code; tests freely use clocks, randomness,
// and allocation, so every analyzer in this suite skips test files.
func TestFile(fset *token.FileSet, pos token.Pos) bool {
	f := fset.File(pos)
	if f == nil {
		return false
	}
	name := f.Name()
	const suffix = "_test.go"
	return len(name) >= len(suffix) && name[len(name)-len(suffix):] == suffix
}
