package zeroalloc_test

import (
	"testing"

	"shiftgears/internal/analysis/vettest"
	"shiftgears/internal/analysis/zeroalloc"
)

func TestZeroAlloc(t *testing.T) {
	vettest.Run(t, "testdata", zeroalloc.Analyzer,
		"shiftgears/internal/fabric", // emissions, helpers, hot-region allocators
	)
}
