// Package zeroalloc enforces the flight recorder's zero-overhead
// contract (doc.go "The flight recorder") on the hot-path packages:
// with no tracer attached, a tick must not pay for observability, and
// the per-tick loop must not allocate (BenchmarkFabricTick pins
// 0 allocs/op in CI).
//
// Two checks:
//
//  1. Tracer emissions. Every call to Emit on an obs.Tracer-typed
//     value must sit inside an `if <recv> != nil` guard on that same
//     receiver expression. Functions following the emit-helper idiom
//     (name starts with "emit") may keep the guard at their call
//     sites instead: the helper's own Emit calls go unchecked, and
//     every intra-package call of the helper must be guarded by a
//     tracer nil check. An unguarded helper call site is flagged.
//
//  2. Per-tick allocators. Inside hot regions — the full body of the
//     per-tick methods (Outboxes, Deliver, Exchange, PrepareRound,
//     DeliverRound, Tick) and the loop bodies of functions named Run —
//     the analyzer flags the obvious allocation idioms: fmt.Sprintf /
//     Sprint / Sprintln, string concatenation with +, function
//     literals (a closure allocated every tick — hoist it before the
//     loop), and append onto a freshly made slice. Code behind a
//     tracer nil guard or an `err != nil` branch is exempt: traced
//     runs and failure paths may allocate. A function literal passed
//     directly to a callee whose strict escape summary (see
//     internal/analysis/summary) proves the parameter reaches no sink
//     is exempt too: the closure never escapes, so the compiler keeps
//     it on the stack — its body is still walked as hot code.
//
// Scope: shiftgears/internal/{fabric,sim,transport,rsm,obs}, skipping
// _test.go files. A deliberate allocation in a hot region (e.g. a
// once-per-run warmup) carries //gearsvet:allow <reason>.
package zeroalloc

import (
	"go/ast"
	"go/types"
	"strings"

	"shiftgears/internal/analysis"
	"shiftgears/internal/analysis/summary"
)

// Analyzer is the zero-overhead / zero-alloc hot-path checker.
var Analyzer = &analysis.Analyzer{
	Name: "zeroalloc",
	Doc: "flag unguarded tracer emissions and per-tick allocation idioms in hot-path packages\n\n" +
		"The zero-overhead contract: a nil tracer costs one nil check, and the tick loop runs at 0 allocs/op.",
	Run:       run,
	FactTypes: []analysis.Fact{&summary.Summary{}},
	Scope:     inScope,
}

// hotPkgs are the package-path suffixes the contract covers.
var hotPkgs = []string{
	"internal/fabric",
	"internal/sim",
	"internal/transport",
	"internal/rsm",
	"internal/obs",
}

// hotMethods are per-tick entry points: their whole body is hot.
var hotMethods = map[string]bool{
	"Outboxes":     true,
	"Deliver":      true,
	"Exchange":     true,
	"PrepareRound": true,
	"DeliverRound": true,
	"Tick":         true,
}

func inScope(path string) bool {
	for _, s := range hotPkgs {
		if strings.HasSuffix(path, s) {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) error {
	if !inScope(pass.Pkg.Path()) {
		return nil
	}
	// Strict summaries (no arena exemptions, no allow filter): the raw
	// may-reach-heap view, used to prove closures non-escaping. An
	// arena annotation must not be able to hide a heap allocation.
	info := summary.Compute(pass, summary.Config{Strict: true})
	// First pass: find emit helpers (name "emit*" containing an Emit
	// call on a tracer) so their call sites can be checked instead.
	helpers := make(map[types.Object]bool)
	var fns []*ast.FuncDecl
	for _, file := range pass.Files {
		if analysis.TestFile(pass.Fset, file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			fns = append(fns, fn)
			if strings.HasPrefix(fn.Name.Name, "emit") && hasTracerEmit(pass, fn.Body) {
				if obj := pass.TypesInfo.ObjectOf(fn.Name); obj != nil {
					helpers[obj] = true
				}
			}
		}
	}
	for _, fn := range fns {
		isHelper := helpers[pass.TypesInfo.ObjectOf(fn.Name)]
		checkEmits(pass, fn, isHelper, helpers)
		checkAllocs(pass, fn, info)
	}
	return nil
}

// isTracerType reports whether t is the obs.Tracer interface.
func isTracerType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Name() != "Tracer" || obj.Pkg() == nil || !strings.HasSuffix(obj.Pkg().Path(), "obs") {
		return false
	}
	_, isIface := n.Underlying().(*types.Interface)
	return isIface
}

// tracerEmitRecv returns the receiver expression of an Emit call on an
// obs.Tracer value, nil otherwise.
func tracerEmitRecv(pass *analysis.Pass, call *ast.CallExpr) ast.Expr {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Emit" {
		return nil
	}
	t := pass.TypesInfo.Types[sel.X].Type
	if t == nil || !isTracerType(t) {
		return nil
	}
	return sel.X
}

// hasTracerEmit reports whether the body contains any tracer Emit call.
func hasTracerEmit(pass *analysis.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && tracerEmitRecv(pass, call) != nil {
			found = true
		}
		return !found
	})
	return found
}

// guardSet tracks the rendered expressions nil-guarded on the current
// path, plus whether any tracer guard or error branch encloses it.
type guardSet struct {
	exprs       map[string]bool
	tracerGuard bool
	errBranch   bool
}

func (g guardSet) with(expr string, tracer, err bool) guardSet {
	ng := guardSet{
		exprs:       make(map[string]bool, len(g.exprs)+1),
		tracerGuard: g.tracerGuard || tracer,
		errBranch:   g.errBranch || err,
	}
	for k := range g.exprs {
		ng.exprs[k] = true
	}
	if expr != "" {
		ng.exprs[expr] = true
	}
	return ng
}

// checkEmits walks fn flagging unguarded tracer emissions and
// unguarded emit-helper call sites. Inside an emit helper the Emit
// calls themselves are exempt (the guard lives at the call sites).
func checkEmits(pass *analysis.Pass, fn *ast.FuncDecl, isHelper bool, helpers map[types.Object]bool) {
	var walk func(n ast.Node, g guardSet)
	walk = func(n ast.Node, g guardSet) {
		if n == nil {
			return
		}
		if ifs, ok := n.(*ast.IfStmt); ok {
			if ifs.Init != nil {
				walk(ifs.Init, g)
			}
			walk(ifs.Cond, g)
			expr, tracer := nilGuardedExpr(pass, ifs.Cond)
			errB := errCond(ifs.Cond)
			walk(ifs.Body, g.with(expr, tracer, errB))
			if ifs.Else != nil {
				// The else branch inverts the guard: nothing gained.
				walk(ifs.Else, g)
			}
			return
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if recv := tracerEmitRecv(pass, call); recv != nil && !isHelper {
				if !g.exprs[types.ExprString(recv)] {
					pass.Reportf(call.Pos(), "tracer emission not behind a nil guard: %s.Emit runs even with no tracer attached, breaking the zero-overhead contract (doc.go \"The flight recorder\") — wrap in `if %s != nil { ... }`, move it into an emit* helper with guarded call sites, or annotate //gearsvet:allow <reason>", types.ExprString(recv), types.ExprString(recv))
				}
			}
			if callee := staticCallee(pass, call); callee != nil && helpers[callee] {
				if !g.tracerGuard {
					pass.Reportf(call.Pos(), "emit helper %s called without a tracer nil guard: the helper emits unconditionally, so every call site must sit inside `if <tracer> != nil` (zero-overhead contract) — guard the call or annotate //gearsvet:allow <reason>", callee.Name())
				}
			}
		}
		for _, c := range childNodes(n) {
			walk(c, g)
		}
	}
	walk(fn.Body, guardSet{exprs: make(map[string]bool)})
}

// nilGuardedExpr extracts from a condition the expression proven
// non-nil in the then-branch (`x != nil`, possibly conjoined with &&),
// and whether that expression is tracer-typed.
func nilGuardedExpr(pass *analysis.Pass, cond ast.Expr) (expr string, tracer bool) {
	switch c := cond.(type) {
	case *ast.BinaryExpr:
		switch c.Op.String() {
		case "&&":
			// Either conjunct's guard holds in the body; prefer a
			// tracer guard.
			le, lt := nilGuardedExpr(pass, c.X)
			re, rt := nilGuardedExpr(pass, c.Y)
			if lt {
				return le, true
			}
			if rt {
				return re, true
			}
			if le != "" {
				return le, false
			}
			return re, false
		case "!=":
			var guarded ast.Expr
			if isNilIdent(c.Y) {
				guarded = c.X
			} else if isNilIdent(c.X) {
				guarded = c.Y
			}
			if guarded == nil {
				return "", false
			}
			t := pass.TypesInfo.Types[guarded].Type
			return types.ExprString(guarded), t != nil && isTracerType(t)
		}
	case *ast.ParenExpr:
		return nilGuardedExpr(pass, c.X)
	}
	return "", false
}

// errCond reports whether the condition is (or conjoins) an
// `err != nil` style test — a failure branch allowed to allocate.
func errCond(cond ast.Expr) bool {
	switch c := cond.(type) {
	case *ast.BinaryExpr:
		if c.Op.String() == "&&" || c.Op.String() == "||" {
			return errCond(c.X) || errCond(c.Y)
		}
		if c.Op.String() != "!=" {
			return false
		}
		for _, side := range []ast.Expr{c.X, c.Y} {
			if id, ok := side.(*ast.Ident); ok && strings.Contains(strings.ToLower(id.Name), "err") {
				return true
			}
		}
	case *ast.ParenExpr:
		return errCond(c.X)
	}
	return false
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// staticCallee resolves a direct call target within the package.
func staticCallee(pass *analysis.Pass, call *ast.CallExpr) types.Object {
	switch f := call.Fun.(type) {
	case *ast.Ident:
		return pass.TypesInfo.Uses[f]
	case *ast.SelectorExpr:
		return pass.TypesInfo.Uses[f.Sel]
	}
	return nil
}

// checkAllocs flags allocation idioms inside hot regions.
func checkAllocs(pass *analysis.Pass, fn *ast.FuncDecl, info *summary.Info) {
	var regions []ast.Node
	if hotMethods[fn.Name.Name] && fn.Recv != nil {
		regions = append(regions, fn.Body)
	} else if fn.Name.Name == "Run" {
		// Only the tick loop is hot; setup before it may allocate.
		for _, stmt := range fn.Body.List {
			switch s := stmt.(type) {
			case *ast.ForStmt:
				regions = append(regions, s.Body)
			case *ast.RangeStmt:
				regions = append(regions, s.Body)
			}
		}
	}
	for _, region := range regions {
		checkAllocRegion(pass, region, info)
	}
}

// checkAllocRegion walks a hot region flagging allocators, honoring
// tracer-guard and error-branch exemptions.
func checkAllocRegion(pass *analysis.Pass, region ast.Node, info *summary.Info) {
	// proven marks function literals the summaries show non-escaping:
	// passed directly to a callee whose corresponding input reaches no
	// sink, so the compiler keeps the closure on the stack.
	proven := make(map[*ast.FuncLit]bool)
	var walk func(n ast.Node, exempt bool)
	walk = func(n ast.Node, exempt bool) {
		if n == nil {
			return
		}
		if ifs, ok := n.(*ast.IfStmt); ok {
			if ifs.Init != nil {
				walk(ifs.Init, exempt)
			}
			walk(ifs.Cond, exempt)
			_, tracer := nilGuardedExpr(pass, ifs.Cond)
			walk(ifs.Body, exempt || tracer || errCond(ifs.Cond))
			if ifs.Else != nil {
				walk(ifs.Else, exempt)
			}
			return
		}
		if !exempt {
			switch x := n.(type) {
			case *ast.CallExpr:
				if fn, ok := staticCallee(pass, x).(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
					switch fn.Name() {
					case "Sprintf", "Sprint", "Sprintln":
						pass.Reportf(x.Pos(), "fmt.%s in a hot region: formats and allocates every tick, breaking the 0 allocs/op contract — precompute the string, or move it behind a tracer guard (//gearsvet:allow <reason> if per-tick allocation is intended)", fn.Name())
					}
				}
				if isAppendToFresh(pass, x) {
					pass.Reportf(x.Pos(), "append onto a freshly allocated slice in a hot region: allocates every tick — reuse a scratch slice sized once (//gearsvet:allow <reason> if intended)")
				}
				markProvenClosures(pass, x, info, proven)
			case *ast.BinaryExpr:
				if x.Op.String() == "+" && isStringConcat(pass, x) {
					pass.Reportf(x.Pos(), "string concatenation in a hot region: allocates every tick — precompute the string or use a reused buffer (//gearsvet:allow <reason> if intended)")
				}
			case *ast.FuncLit:
				if proven[x] {
					// The callee's strict summary proves the func param
					// clean: the closure never escapes, so the compiler
					// stack-allocates it. Its body still runs in the hot
					// region — keep walking it.
					break
				}
				pass.Reportf(x.Pos(), "function literal in a hot region: the closure is allocated every tick — hoist it before the loop (//gearsvet:allow <reason> if intended)")
				// Don't descend: the closure body runs later, and its
				// contents were already implicitly flagged by the hoist
				// message.
				return
			}
		}
		for _, c := range childNodes(n) {
			walk(c, exempt)
		}
	}
	walk(region, false)
}

// markProvenClosures records the function-literal arguments of call
// whose callee summary shows the receiving parameter reaches no sink.
// The parent call is visited before its arguments, so the marks land
// before the walk reaches the literals.
func markProvenClosures(pass *analysis.Pass, call *ast.CallExpr, info *summary.Info, proven map[*ast.FuncLit]bool) {
	callee := summary.StaticCallee(pass, call)
	if callee == nil {
		return
	}
	sum := info.Of(callee)
	if sum == nil {
		return
	}
	idx := 0
	if sum.Recv {
		idx = 1
	}
	sig, _ := callee.Type().(*types.Signature)
	for ai, arg := range call.Args {
		lit, ok := arg.(*ast.FuncLit)
		if !ok {
			continue
		}
		j := idx + ai
		if j >= len(sum.Inputs) {
			if sig == nil || !sig.Variadic() || len(sum.Inputs) == 0 {
				continue
			}
			j = len(sum.Inputs) - 1
		}
		in := sum.Inputs[j]
		if !in.Escapes && !in.Sent && !in.Returned {
			proven[lit] = true
		}
	}
}

// isAppendToFresh reports append whose destination is allocated in
// place: append(make(...), ...) or append([]T{...}, ...).
func isAppendToFresh(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); !ok || b.Name() != "append" {
		return false
	}
	if len(call.Args) == 0 {
		return false
	}
	switch dst := call.Args[0].(type) {
	case *ast.CompositeLit:
		return true
	case *ast.CallExpr:
		if did, ok := dst.Fun.(*ast.Ident); ok {
			if b, ok := pass.TypesInfo.Uses[did].(*types.Builtin); ok && b.Name() == "make" {
				return true
			}
		}
	}
	return false
}

// isStringConcat reports a + whose result is a string and whose
// operands are not both constants (constant folding is free).
func isStringConcat(pass *analysis.Pass, bin *ast.BinaryExpr) bool {
	tv, ok := pass.TypesInfo.Types[bin]
	if !ok || tv.Type == nil {
		return false
	}
	if b, ok := tv.Type.Underlying().(*types.Basic); !ok || b.Info()&types.IsString == 0 {
		return false
	}
	return tv.Value == nil // non-constant result
}

// childNodes enumerates a node's direct children (ast.Inspect cannot
// carry per-path state down the walk).
func childNodes(n ast.Node) []ast.Node {
	var out []ast.Node
	first := true
	ast.Inspect(n, func(c ast.Node) bool {
		if first {
			first = false
			return true
		}
		if c != nil {
			out = append(out, c)
		}
		return false
	})
	return out
}
