// Package obs is a zeroalloc fixture dependency: the Tracer interface
// the analyzer recognizes by name and package suffix.
package obs

type Event struct {
	Tick int
	Note string
}

type Tracer interface {
	Emit(Event)
}
