// Package fabric is a zeroalloc fixture: unguarded and guarded tracer
// emissions, the emit-helper idiom, and every per-tick allocation
// idiom in hot regions alongside the exemptions (setup code, error
// branches, traced paths, suppressions).
package fabric

import (
	"fmt"

	"shiftgears/internal/obs"
)

type Mem struct {
	tr    obs.Tracer
	names []string
}

func (m *Mem) Exchange(tick int) {
	m.tr.Emit(obs.Event{Tick: tick}) // want `tracer emission not behind a nil guard`
	if m.tr != nil {
		m.tr.Emit(obs.Event{Tick: tick})
		m.emitFrame(tick)
	}
	m.emitFrame(tick) // want `emit helper emitFrame called without a tracer nil guard`
}

// emitFrame follows the emit-helper idiom: unguarded inside, so every
// call site must carry the guard.
func (m *Mem) emitFrame(tick int) {
	m.tr.Emit(obs.Event{Tick: tick, Note: "frame"})
}

func (m *Mem) Deliver(tick int, err error) {
	s := fmt.Sprintf("tick %d", tick) // want `fmt\.Sprintf in a hot region`
	name := "node-" + s               // want `string concatenation in a hot region`
	m.names = append(make([]string, 0, 4), name) // want `append onto a freshly allocated slice`
	f := func() {}                               // want `function literal in a hot region`
	f()
	if err != nil {
		_ = fmt.Sprintf("fail %d", tick) // error path: allocation allowed
	}
	if m.tr != nil {
		m.tr.Emit(obs.Event{Tick: tick, Note: fmt.Sprintf("traced %d", tick)}) // traced path: allocation allowed
	}
}

// Run's setup may allocate; only its loop bodies are hot.
func (m *Mem) Run(n int) {
	setup := fmt.Sprintf("setup %d", n)
	_ = setup
	for i := 0; i < n; i++ {
		_ = fmt.Sprintf("tick %d", i) // want `fmt\.Sprintf in a hot region`
	}
}

// Tick shows the reasoned-suppression path for a deliberate allocation.
func (m *Mem) Tick(n int) {
	_ = fmt.Sprintf("warm %d", n) //gearsvet:allow one-time warmup allocation, amortized across the run
}

// cold functions are not hot regions: allocation is fine.
func (m *Mem) report(n int) string {
	return fmt.Sprintf("ran %d ticks", n)
}
