package arenalifetime_test

import (
	"testing"

	"shiftgears/internal/analysis/arenalifetime"
	"shiftgears/internal/analysis/vettest"
)

func TestArenaLifetime(t *testing.T) {
	vettest.Run(t, "testdata", arenalifetime.Analyzer,
		"shiftgears/internal/rsm",       // documented slotScratch holder
		"shiftgears/internal/eigtree",   // documented Tree holder
		"shiftgears/internal/router",    // every escape kind + copies + suppression
		"shiftgears/internal/wirecache", // cross-package sink: facts only, no findings
		"shiftgears/internal/gateway",   // entry point flagged at call sites via imported facts
	)
}
