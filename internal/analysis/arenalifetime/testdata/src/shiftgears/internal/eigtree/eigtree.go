// Package eigtree is an arenalifetime fixture for the Tree holder:
// the tree owns within-tick payload storage by design.
package eigtree

type Tree struct {
	leaves [][]byte
}

func (t *Tree) StoreFromPayload(payload []byte) {
	t.leaves = append(t.leaves, payload) // documented holder: no finding
}
