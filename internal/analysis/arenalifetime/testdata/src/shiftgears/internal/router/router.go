// Package router is an arenalifetime fixture: a non-holder type that
// leaks inbound payloads every way the analyzer must catch, plus the
// copies and suppressions it must accept.
package router

var lastPayload []byte

type Frame struct {
	Round  int
	Outbox []byte
}

type Router struct {
	held   [][]byte
	frames []Frame
	out    chan []byte
}

func (r *Router) Deliver(tick int, payload []byte) {
	r.held = append(r.held, payload) // want `stored into field of shiftgears/internal/router\.Router`
	lastPayload = payload            // want `stored into package-level variable lastPayload`
	r.out <- payload                 // want `sent on a channel`
	sub := payload[4:]
	r.held[0] = sub // want `stored into field of shiftgears/internal/router\.Router`

	// Copies break the taint.
	cp := string(payload)
	_ = cp
	fresh := append([]byte(nil), payload...)
	r.held[0] = fresh
}

func (r *Router) DeliverRound(round int, inbox [][]byte) {
	for _, p := range inbox {
		r.held = append(r.held, p) // want `stored into field of shiftgears/internal/router\.Router`
	}
}

func (r *Router) Exchange(tick int, outs [][]Frame) {
	r.frames = outs[0] // want `stored into field of shiftgears/internal/router\.Router`
}

// delayedStore is the reasoned-suppression path: an intentional
// within-tick holder outside the built-in list.
func (r *Router) delayedStore(tick int, payload []byte) {
	r.held = append(r.held, payload) //gearsvet:allow held is drained and reset before this tick's barrier opens
}

// unrelated parameters with payload-free shapes are never tainted.
func (r *Router) Configure(names []string, payloadBudget int) {
	r.held = nil
	_ = names
	_ = payloadBudget
}
