// Package rsm is an arenalifetime fixture modeling the documented
// slotScratch holder: stores into it are the design, stores into any
// other field of the same package are still flagged.
package rsm

type slotScratch struct {
	per [][]byte
	dec []byte
}

type Machine struct {
	s     slotScratch
	stash []byte
}

func (m *Machine) DeliverRound(round int, inbox [][]byte) {
	m.s.per = append(m.s.per, inbox[0]) // documented holder: no finding
	m.s.dec = inbox[1]                  // documented holder: no finding
	m.stash = inbox[2]                  // want `stored into field of shiftgears/internal/rsm\.Machine`
	m.stash = append([]byte(nil), inbox[3]...)
}
