// Package wirecache is the sink half of the cross-package taint
// fixture: it exports no entry points, so arenalifetime reports
// nothing here — but the summary engine must export facts saying that
// Store retains its parameter, and the importing package's entry
// points must be flagged at their call sites.
package wirecache

// Cache retains payloads across ticks — the leak target.
type Cache struct {
	slots [][]byte
}

// Store retains p beyond the call: its exported summary carries the
// escape, asserted here as a fact expectation.
func (c *Cache) Store(p []byte) { // want Store:`p\(escapes\)`
	c.slots = append(c.slots, p)
}

// Discard copies p before retaining it, so its summary is clean and
// callers are never flagged.
func (c *Cache) Discard(p []byte) {
	c.slots = append(c.slots, append([]byte(nil), p...))
}
