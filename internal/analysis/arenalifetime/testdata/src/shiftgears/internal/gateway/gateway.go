// Package gateway is the source half of the cross-package taint
// fixture: its Deliver entry point receives an arena-backed payload
// and hands it to helpers — one in this package, one imported — whose
// summaries decide whether the call site is a leak.
package gateway

import "shiftgears/internal/wirecache"

var held []byte

// Gateway owns a cross-package cache.
type Gateway struct {
	cache wirecache.Cache
}

// keep retains p in a global: the same-package helper sink, reached
// purely through its summary (helpers are not entry-seeded).
func keep(p []byte) { // want keep:`p\(escapes\)`
	held = p
}

// Deliver is a contract entry point: p slices into the tick's arena.
// The leak is inside (*wirecache.Cache).Store — a different package —
// and must surface here, at the call site, via the imported fact.
func (g *Gateway) Deliver(p []byte) {
	g.cache.Store(p) // want `inbound frame payload passed to \(wirecache\.Cache\)\.Store`
	g.cache.Discard(p)
	keep(p) // want `inbound frame payload passed to gateway\.keep`
	keep(append([]byte(nil), p...))
}
