// Package arenalifetime enforces the wire hot path's one-tick payload
// rule (doc.go "Wire hot path"): an inbound frame payload slices into a
// per-connection read arena (or the router's per-tick scratch) and is
// rewound at the next tick's start, so retaining it — or any sub-slice
// of it — beyond the tick is a use-after-rewind that surfaces as data
// corruption under load and a race under -race.
//
// The analyzer taints the payload-carrying values a function receives —
// the inbox of a DeliverRound/Deliver method, an Exchange method's
// frame matrices, parameters named payload/inbox/sections/frames with
// byte-slice shapes — follows them through local assignments, index and
// slice expressions, range statements, and composite literals, and
// flags stores that give a tainted value a life beyond the tick:
//
//   - into a struct field (x.f = p, x.f[i] = p, x.f = append(x.f, p))
//   - into a package-level variable
//   - into a channel send
//
// Copies break the taint: append onto a fresh slice, string(p), or an
// explicit copy into an untainted destination are all fine.
//
// The documented holders are exempt: internal/eigtree.Tree and
// internal/rsm.slotScratch own within-tick storage by design (both are
// rewound/reset on the tick boundary). Any other intentional holder —
// e.g. the chaos fabric's delayed-frame list, cleared every Exchange —
// must carry a //gearsvet:allow <reason> stating why its lifetime is
// bounded by the tick.
//
// The check is intra-procedural (the modular go vet model sees one
// package at a time): a store through a helper call is out of reach,
// which is why the holder list is short and the hot path keeps payload
// handling inline.
package arenalifetime

import (
	"go/ast"
	"go/types"
	"strings"

	"shiftgears/internal/analysis"
)

// Analyzer is the one-tick payload-lifetime checker.
var Analyzer = &analysis.Analyzer{
	Name: "arenalifetime",
	Doc: "flag inbound frame payloads stored into holders that outlive the tick\n\n" +
		"Payloads slice into per-tick arenas; storing one into a struct field, global, or channel outside the documented holders is a use-after-rewind.",
	Run: run,
}

// holders are the documented within-tick payload owners: stores into
// fields of these types are the design, not a leak.
var holders = map[string]bool{
	"shiftgears/internal/eigtree.Tree":    true,
	"shiftgears/internal/rsm.slotScratch": true,
}

// inScope mirrors the deterministic-core scope: library packages only.
func inScope(path string) bool {
	if strings.Contains(path, "/cmd/") || strings.HasPrefix(path, "cmd/") ||
		strings.Contains(path, "/examples/") || strings.Contains(path, "/analysis") {
		return false
	}
	return path == "shiftgears" || strings.HasPrefix(path, "shiftgears/")
}

func run(pass *analysis.Pass) error {
	if !inScope(pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		if analysis.TestFile(pass.Fset, file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if tainted := taintSources(pass, fn); len(tainted) > 0 {
				checkFunc(pass, fn, tainted)
			}
		}
	}
	return nil
}

// byteSliceDepth reports how many slice layers wrap a byte element:
// []byte → 1, [][]byte → 2, ... 0 when t is not a byte-slice shape.
func byteSliceDepth(t types.Type) int {
	depth := 0
	for {
		s, ok := t.Underlying().(*types.Slice)
		if !ok {
			break
		}
		depth++
		t = s.Elem()
	}
	if depth == 0 {
		return 0
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok || b.Kind() != types.Byte && b.Kind() != types.Uint8 {
		return 0
	}
	return depth
}

// taintSources collects the function's payload-carrying parameters.
func taintSources(pass *analysis.Pass, fn *ast.FuncDecl) map[types.Object]bool {
	tainted := make(map[types.Object]bool)
	name := fn.Name.Name
	deliverLike := name == "DeliverRound" || name == "Deliver" || name == "Exchange" ||
		name == "StoreFromPayload" || name == "DecodeFramesInto"
	if fn.Type.Params == nil {
		return nil
	}
	for _, field := range fn.Type.Params.List {
		for _, pname := range field.Names {
			obj := pass.TypesInfo.ObjectOf(pname)
			if obj == nil {
				continue
			}
			byName := false
			switch pname.Name {
			case "payload", "inbox", "sections", "frames", "ins", "outs":
				byName = true
			}
			carriesBytes := byteSliceDepth(obj.Type()) > 0 || carriesPayloadSlices(obj.Type())
			if carriesBytes && (deliverLike || byName) {
				tainted[obj] = true
			}
		}
	}
	if len(tainted) == 0 {
		return nil
	}
	return tainted
}

// carriesPayloadSlices reports whether t transitively contains []byte
// through slices of structs with a []byte-shaped field (the MuxFrame
// outbox shape an Exchange method receives).
func carriesPayloadSlices(t types.Type) bool {
	seen := 0
	for {
		s, ok := t.Underlying().(*types.Slice)
		if !ok {
			break
		}
		seen++
		t = s.Elem()
	}
	if seen == 0 {
		return false
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if byteSliceDepth(st.Field(i).Type()) > 0 {
			return true
		}
	}
	return false
}

// checkFunc runs the flow-insensitive taint pass over one function:
// first propagate taint through local assignments (iterating to a
// fixed point), then flag escaping stores.
func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl, tainted map[types.Object]bool) {
	// Propagate: x := taintedExpr, including range over tainted.
	for changed := true; changed; {
		changed = false
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) == len(n.Rhs) {
					for i := range n.Lhs {
						id, ok := n.Lhs[i].(*ast.Ident)
						if !ok {
							continue
						}
						obj := pass.TypesInfo.ObjectOf(id)
						if obj == nil || tainted[obj] {
							continue
						}
						if exprTainted(pass, tainted, n.Rhs[i]) {
							tainted[obj] = true
							changed = true
						}
					}
				}
			case *ast.RangeStmt:
				if exprTainted(pass, tainted, n.X) {
					if id, ok := n.Value.(*ast.Ident); ok && id.Name != "_" {
						obj := pass.TypesInfo.ObjectOf(id)
						if obj != nil && !tainted[obj] {
							tainted[obj] = true
							changed = true
						}
					}
				}
			}
			return true
		})
	}

	// Flag escapes.
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			if exprTainted(pass, tainted, n.Value) {
				pass.Reportf(n.Pos(), "inbound frame payload sent on a channel: the receiver may read it after the tick's arena rewind (one-tick payload rule, doc.go \"Wire hot path\") — copy it first")
			}
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if i >= len(n.Rhs) && len(n.Rhs) != 1 {
					break
				}
				rhs := n.Rhs[0]
				if len(n.Rhs) == len(n.Lhs) {
					rhs = n.Rhs[i]
				}
				if !exprTainted(pass, tainted, rhs) {
					continue
				}
				checkStore(pass, lhs, rhs)
			}
		}
		return true
	})
}

// checkStore flags a tainted RHS stored into a field or global LHS.
func checkStore(pass *analysis.Pass, lhs, rhs ast.Expr) {
	// Unwrap element stores: x.f[i] = p stores into x.f.
	base := lhs
	for {
		if ix, ok := base.(*ast.IndexExpr); ok {
			base = ix.X
			continue
		}
		break
	}
	switch b := base.(type) {
	case *ast.SelectorExpr:
		sel := pass.TypesInfo.Selections[b]
		if sel == nil || sel.Kind() != types.FieldVal {
			return
		}
		owner := namedOf(sel.Recv())
		if owner != "" && holders[owner] {
			return
		}
		where := "struct field"
		if owner != "" {
			where = "field of " + owner
		}
		pass.Reportf(lhs.Pos(), "inbound frame payload stored into %s: the holder outlives the tick's arena rewind (one-tick payload rule, doc.go \"Wire hot path\") — copy the payload, or document the holder and annotate //gearsvet:allow <why its lifetime is within-tick>", where)
	case *ast.Ident:
		obj, ok := pass.TypesInfo.ObjectOf(b).(*types.Var)
		if !ok || obj.IsField() || obj.Pkg() == nil || obj.Parent() != obj.Pkg().Scope() {
			return
		}
		pass.Reportf(lhs.Pos(), "inbound frame payload stored into package-level variable %s: it outlives the tick's arena rewind (one-tick payload rule) — copy the payload first", b.Name)
	}
}

// exprTainted reports whether the expression's value derives from a
// tainted payload: the tainted object itself, or an index / slice /
// selector / paren chain rooted at one, or a composite literal or
// append carrying one.
func exprTainted(pass *analysis.Pass, tainted map[types.Object]bool, e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.Ident:
		return tainted[pass.TypesInfo.ObjectOf(x)]
	case *ast.IndexExpr:
		return exprTainted(pass, tainted, x.X)
	case *ast.SliceExpr:
		return exprTainted(pass, tainted, x.X)
	case *ast.SelectorExpr:
		return exprTainted(pass, tainted, x.X)
	case *ast.ParenExpr:
		return exprTainted(pass, tainted, x.X)
	case *ast.StarExpr:
		return exprTainted(pass, tainted, x.X)
	case *ast.UnaryExpr:
		return exprTainted(pass, tainted, x.X)
	case *ast.CompositeLit:
		for _, el := range x.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			if exprTainted(pass, tainted, el) {
				return true
			}
		}
	case *ast.CallExpr:
		if id, ok := x.Fun.(*ast.Ident); ok {
			if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok && b.Name() == "append" {
				if len(x.Args) > 0 && exprTainted(pass, tainted, x.Args[0]) {
					return true
				}
				// Appending a payload slice header aliases its bytes;
				// append(dst, p...) with byte elements copies them.
				// Spreading a [][]byte still copies headers, which alias.
				for i, a := range x.Args[1:] {
					if !exprTainted(pass, tainted, a) {
						continue
					}
					if x.Ellipsis.IsValid() && i == len(x.Args)-2 {
						t := pass.TypesInfo.Types[a].Type
						if t != nil && byteSliceDepth(t) <= 1 && !carriesPayloadSlices(t) {
							continue
						}
					}
					return true
				}
				return false
			}
		}
		// A conversion or call result is a new value (string(p) copies;
		// helper calls are out of intra-procedural reach).
		return false
	}
	return false
}

// namedOf renders a (possibly pointered) named type as pkgpath.Name.
func namedOf(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := n.Obj()
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return obj.Pkg().Path() + "." + obj.Name()
}
