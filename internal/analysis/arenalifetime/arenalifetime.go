// Package arenalifetime enforces the wire hot path's one-tick payload
// rule (doc.go "Wire hot path"): an inbound frame payload slices into a
// per-connection read arena (or the router's per-tick scratch) and is
// rewound at the next tick's start, so retaining it — or any sub-slice
// of it — beyond the tick is a use-after-rewind that surfaces as data
// corruption under load and a race under -race.
//
// The analyzer seeds the payload-carrying parameters of the contract's
// entry points — Exchange, Deliver, and DeliverRound methods, whose
// signatures carry byte-slice matrices or frame slices — and follows
// them through the summary engine (see internal/analysis/summary):
// taint propagates through local assignments, index and slice
// expressions, range statements, composite literals, and — the
// inter-procedural step — through calls, using the callee's
// parameter-to-sink summary whether the callee lives in this package
// or arrived as a fact from another unit's vetx file. A payload handed
// to a helper that stores it in a struct field is flagged at the call
// site, even when the helper is three packages away.
//
// Flagged sinks:
//
//   - a store into a struct field (x.f = p, x.f[i] = p, x.f = append(x.f, p))
//   - a store into a package-level variable
//   - a channel send
//   - a call whose argument reaches one of the above inside the callee
//
// Copies break the taint: append onto a fresh slice, string(p), or an
// explicit copy into an untainted destination are all fine. So do the
// engine's within-tick proofs — the documented holders
// (internal/eigtree.Tree, internal/rsm.slotScratch), fields
// unconditionally reset at the top of the function, scratch slices
// truncated and refilled in place, and sends on channels whose every
// receiver provably consumes the value within the tick. Anything else
// that is intentionally held must carry a //gearsvet:allow <reason>
// stating why its lifetime is bounded by the tick — though with the
// proofs above, prefer restructuring the code so the proof applies and
// the annotation can be deleted.
package arenalifetime

import (
	"go/ast"
	"strings"

	"shiftgears/internal/analysis"
	"shiftgears/internal/analysis/summary"
)

// Analyzer is the one-tick payload-lifetime checker.
var Analyzer = &analysis.Analyzer{
	Name: "arenalifetime",
	Doc: "flag inbound frame payloads stored into holders that outlive the tick\n\n" +
		"Payloads slice into per-tick arenas; storing one into a struct field, global, or channel outside the documented holders — directly or through any helper call, cross-package included — is a use-after-rewind.",
	Run:       run,
	FactTypes: []analysis.Fact{&summary.Summary{}},
	Scope:     inScope,
}

// holders are the documented within-tick payload owners: stores into
// fields of these types are the design, not a leak.
var holders = map[string]bool{
	"shiftgears/internal/eigtree.Tree":    true,
	"shiftgears/internal/rsm.slotScratch": true,
}

// inScope mirrors the deterministic-core scope: library packages only.
func inScope(path string) bool {
	if strings.Contains(path, "/cmd/") || strings.HasPrefix(path, "cmd/") ||
		strings.Contains(path, "/examples/") || strings.Contains(path, "/analysis") {
		return false
	}
	return path == "shiftgears" || strings.HasPrefix(path, "shiftgears/")
}

func run(pass *analysis.Pass) error {
	if !inScope(pass.Pkg.Path()) {
		return nil
	}
	info := summary.Compute(pass, summary.Config{Holders: holders})
	for _, fn := range info.Decls() {
		seeds := entrySeeds(info, fn)
		if seeds == 0 {
			continue
		}
		for _, ev := range info.Events(fn) {
			if ev.Tags&seeds == 0 {
				continue
			}
			switch ev.Kind {
			case summary.FieldStore:
				pass.Reportf(ev.Pos, "inbound frame payload stored into %s: the holder outlives the tick's arena rewind (one-tick payload rule, doc.go \"Wire hot path\") — copy the payload, or document the holder and annotate //gearsvet:allow <why its lifetime is within-tick>", ev.Detail)
			case summary.GlobalStore:
				pass.Reportf(ev.Pos, "inbound frame payload stored into %s: it outlives the tick's arena rewind (one-tick payload rule) — copy the payload first", ev.Detail)
			case summary.ChanSend:
				pass.Reportf(ev.Pos, "inbound frame payload sent on a channel: the receiver may read it after the tick's arena rewind (one-tick payload rule, doc.go \"Wire hot path\") — copy it first")
			case summary.CallEscape, summary.CallSend:
				pass.Reportf(ev.Pos, "inbound frame payload passed to %s: the payload outlives the tick's arena rewind (one-tick payload rule, doc.go \"Wire hot path\") — copy it before the call, or make the helper's handling provably within-tick", ev.Detail)
			}
		}
	}
	return nil
}

// entrySeeds returns the tag bits of fn's payload-carrying parameters
// when fn is a contract entry point (Exchange/Deliver/DeliverRound),
// 0 otherwise. Helpers are deliberately not seeded: their summaries
// carry the taint to the entry points' call sites, which is where the
// contract is stated and where the finding belongs.
func entrySeeds(info *summary.Info, fn *ast.FuncDecl) uint64 {
	switch fn.Name.Name {
	case "Exchange", "Deliver", "DeliverRound":
	default:
		return 0
	}
	var seeds uint64
	for _, obj := range info.Inputs(fn) {
		if obj == nil {
			continue
		}
		if summary.ByteSliceDepth(obj.Type()) > 0 || summary.CarriesPayloadSlices(obj.Type()) {
			seeds |= info.InputTag(fn, obj)
		}
	}
	return seeds
}
