// Package lib is the fact-exporting half of the facts round-trip
// fixture: the test analyzer attaches facts to its functions and
// methods, encodes them to vetx bytes, and re-imports them while
// analyzing package app.
package lib

// Answer is a package-level function the probe marks with a fact.
func Answer() int { return 42 }

// Box carries a method so the T.M object path is exercised too.
type Box struct{}

// Get is a method the probe marks with a fact.
func (Box) Get() int { return 1 }
