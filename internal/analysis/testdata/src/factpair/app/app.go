// Package app is the fact-importing half of the facts round-trip
// fixture.
package app

import "factpair/lib"

// Use depends on lib so the type checker records the import.
func Use() int { return lib.Answer() + lib.Box{}.Get() }
