// Package allowfix exercises //gearsvet:allow semantics: a reasoned
// directive suppresses the full extent of the statement ending on its
// line (trailing) or starting on the next (standalone); a bare
// directive suppresses nothing and is itself a finding.
package allowfix

func f() {}

func h(...int) int { return 0 }

func g() {
	f()
	f() //gearsvet:allow reasoned trailing suppression
	//gearsvet:allow reasoned standalone directive covers the next line
	f()
	f() //gearsvet:allow
	h(
		h(),
		h(),
	) //gearsvet:allow trailing directive covers the whole multi-line call
	//gearsvet:allow standalone directive covers the whole multi-line call
	h(
		h(),
	)
	h(
		h(),
	)
}
