// Package allowfix exercises //gearsvet:allow semantics: a reasoned
// directive suppresses its own line (trailing) or the next (standalone);
// a bare directive suppresses nothing and is itself a finding.
package allowfix

func f() {}

func g() {
	f()
	f() //gearsvet:allow reasoned trailing suppression
	//gearsvet:allow reasoned standalone directive covers the next line
	f()
	f() //gearsvet:allow
}
