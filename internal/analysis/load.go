package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// LoadedPackage is one type-checked package produced by Loader.Load —
// everything a Pass needs, plus the parse artifacts tests match
// diagnostics against.
type LoadedPackage struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
	Sizes types.Sizes
}

// Loader type-checks packages rooted at a GOPATH-style source tree:
// the import path "a/b" resolves to <Root>/a/b/*.go. Imports that do
// not exist under Root fall back to compiling the standard library
// from source, so fixtures may import fmt, time, or math/rand without
// any build cache. It exists for the vettest fixture harness and for
// driving analyzers in-process; the production path is the vet
// protocol in Main.
type Loader struct {
	// Root is the source tree root (testdata/src in fixtures).
	Root string

	fset  *token.FileSet
	std   types.Importer
	cache map[string]*LoadedPackage
}

// NewLoader builds a loader over root.
func NewLoader(root string) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Root:  root,
		fset:  fset,
		std:   importer.ForCompiler(fset, "source", nil),
		cache: make(map[string]*LoadedPackage),
	}
}

// Load type-checks the package at import path path (relative to Root).
func (l *Loader) Load(path string) (*LoadedPackage, error) {
	if p, ok := l.cache[path]; ok {
		if p == nil {
			return nil, fmt.Errorf("analysis: import cycle through %q", path)
		}
		return p, nil
	}
	l.cache[path] = nil // cycle marker

	dir := filepath.Join(l.Root, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	conf := types.Config{
		Importer: importerFunc(func(imp string) (*types.Package, error) {
			if _, err := os.Stat(filepath.Join(l.Root, filepath.FromSlash(imp))); err == nil {
				p, err := l.Load(imp)
				if err != nil {
					return nil, err
				}
				return p.Pkg, nil
			}
			return l.std.Import(imp)
		}),
		Sizes: types.SizesFor("gc", build.Default.GOARCH),
	}
	info := newInfo()
	pkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, err
	}
	lp := &LoadedPackage{Fset: l.fset, Files: files, Pkg: pkg, Info: info, Sizes: conf.Sizes}
	l.cache[path] = lp
	return lp, nil
}

// RunOn executes one analyzer over a loaded package and returns its
// findings after //gearsvet:allow filtering, with bare directives
// appended as findings — exactly the unit driver's semantics, so
// fixtures exercise the directive path end to end.
func RunOn(a *Analyzer, p *LoadedPackage) ([]Diagnostic, error) {
	var diags []Diagnostic
	pass := &Pass{
		Analyzer:   a,
		Fset:       p.Fset,
		Files:      p.Files,
		Pkg:        p.Pkg,
		TypesInfo:  p.Info,
		TypesSizes: p.Sizes,
		Report:     func(d Diagnostic) { diags = append(diags, d) },
	}
	if err := a.Run(pass); err != nil {
		return nil, err
	}
	dirs := Directives(p.Fset, p.Files)
	out := Filter(p.Fset, dirs, diags)
	out = append(out, BareDirectives(dirs)...)
	return out, nil
}
