package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// LoadedPackage is one type-checked package produced by Loader.Load —
// everything a Pass needs, plus the parse artifacts tests match
// diagnostics against.
type LoadedPackage struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
	Sizes types.Sizes
}

// Loader type-checks packages rooted at a GOPATH-style source tree:
// the import path "a/b" resolves to <Root>/a/b/*.go. Imports that do
// not exist under Root fall back to compiling the standard library
// from source, so fixtures may import fmt, time, or math/rand without
// any build cache. It exists for the vettest fixture harness and for
// driving analyzers in-process; the production path is the vet
// protocol in Main.
type Loader struct {
	// Root is the source tree root (testdata/src in fixtures).
	Root string

	fset  *token.FileSet
	std   types.Importer
	cache map[string]*LoadedPackage
}

// NewLoader builds a loader over root.
func NewLoader(root string) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Root:  root,
		fset:  fset,
		std:   importer.ForCompiler(fset, "source", nil),
		cache: make(map[string]*LoadedPackage),
	}
}

// Load type-checks the package at import path path (relative to Root).
func (l *Loader) Load(path string) (*LoadedPackage, error) {
	if p, ok := l.cache[path]; ok {
		if p == nil {
			return nil, fmt.Errorf("analysis: import cycle through %q", path)
		}
		return p, nil
	}
	l.cache[path] = nil // cycle marker

	dir := filepath.Join(l.Root, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	conf := types.Config{
		Importer: importerFunc(func(imp string) (*types.Package, error) {
			if _, err := os.Stat(filepath.Join(l.Root, filepath.FromSlash(imp))); err == nil {
				p, err := l.Load(imp)
				if err != nil {
					return nil, err
				}
				return p.Pkg, nil
			}
			return l.std.Import(imp)
		}),
		Sizes: types.SizesFor("gc", build.Default.GOARCH),
	}
	info := newInfo()
	pkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, err
	}
	lp := &LoadedPackage{Fset: l.fset, Files: files, Pkg: pkg, Info: info, Sizes: conf.Sizes}
	l.cache[path] = lp
	return lp, nil
}

// UnderRoot reports whether the import path resolves to a fixture
// directory under the loader's root (as opposed to the standard
// library).
func (l *Loader) UnderRoot(path string) bool {
	fi, err := os.Stat(filepath.Join(l.Root, filepath.FromSlash(path)))
	return err == nil && fi.IsDir()
}

// runPass executes one analyzer over one loaded package with the given
// fact store (nil disables facts) and returns the findings that survive
// //gearsvet:allow filtering, with bare directives appended — exactly
// the unit driver's semantics, so fixtures exercise the directive path
// end to end.
func runPass(a *Analyzer, p *LoadedPackage, store *FactStore) ([]Diagnostic, error) {
	sup := NewSuppressor(p.Fset, p.Files)
	var diags []Diagnostic
	pass := &Pass{
		Analyzer:   a,
		Fset:       p.Fset,
		Files:      p.Files,
		Pkg:        p.Pkg,
		TypesInfo:  p.Info,
		TypesSizes: p.Sizes,
		Report:     func(d Diagnostic) { diags = append(diags, d) },
	}
	pass.SetFacts(store)
	pass.SetSuppressor(sup)
	if err := a.Run(pass); err != nil {
		return nil, err
	}
	out, _ := sup.Filter(diags)
	out = append(out, sup.Bare()...)
	return out, nil
}

// RunOn executes one analyzer over a loaded package, facts disabled.
// Cross-package tests need a Runner; this entry point serves
// single-package fixtures and unit tests.
func RunOn(a *Analyzer, p *LoadedPackage) ([]Diagnostic, error) {
	return runPass(a, p, nil)
}

// Runner drives an analyzer over fixture packages the way the vet
// protocol does over real builds: every under-root dependency is
// analyzed first (facts-only, diagnostics discarded) in dependency
// order, against one shared fact store, so the target package's run
// imports exactly the facts a real `go vet` unit would.
type Runner struct {
	loader *Loader
	store  *FactStore
	done   map[string]bool // "<analyzer>\x00<pkg>" fact runs already performed
}

// NewRunner builds a runner over a GOPATH-style fixture root.
func NewRunner(root string) *Runner {
	return &Runner{loader: NewLoader(root), store: NewFactStore(), done: make(map[string]bool)}
}

// Store exposes the shared fact store, for asserting on exported facts.
func (r *Runner) Store() *FactStore { return r.store }

// Run analyzes the package at path with a, after fact-analyzing its
// under-root dependencies bottom-up, and returns the loaded package
// together with its surviving findings.
func (r *Runner) Run(a *Analyzer, path string) (*LoadedPackage, []Diagnostic, error) {
	registerFactTypes([]*Analyzer{a})
	p, err := r.loader.Load(path)
	if err != nil {
		return nil, nil, err
	}
	if err := r.factDeps(a, p.Pkg); err != nil {
		return nil, nil, err
	}
	r.done[a.Name+"\x00"+path] = true // the target's own run exports its facts
	diags, err := runPass(a, p, r.store)
	if err != nil {
		return nil, nil, err
	}
	return p, diags, nil
}

// factDeps runs a over every under-root dependency of pkg, deepest
// first, recording facts into the shared store.
func (r *Runner) factDeps(a *Analyzer, pkg *types.Package) error {
	for _, imp := range pkg.Imports() {
		if !r.loader.UnderRoot(imp.Path()) {
			continue
		}
		key := a.Name + "\x00" + imp.Path()
		if r.done[key] {
			continue
		}
		r.done[key] = true
		p, err := r.loader.Load(imp.Path())
		if err != nil {
			return err
		}
		if err := r.factDeps(a, p.Pkg); err != nil {
			return err
		}
		if _, err := runPass(a, p, r.store); err != nil {
			return err
		}
	}
	return nil
}
