package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// allowPrefix introduces a suppression directive. The canonical form is
//
//	//gearsvet:allow <reason>
//
// following the compiler's `//go:` directive convention: no space after
// the slashes, so gofmt leaves it alone and it reads as machinery, not
// prose.
const allowPrefix = "gearsvet:allow"

// Directive is one //gearsvet:allow occurrence.
type Directive struct {
	// Pos is the directive's position.
	Pos token.Pos
	// Line is the 1-based line the directive sits on.
	Line int
	// Alone reports whether the directive is the only thing on its
	// line; it then covers the following line instead.
	Alone bool
	// Reason is the justification text after the directive name.
	Reason string
}

// Directives collects every //gearsvet:allow directive in the files.
func Directives(fset *token.FileSet, files []*ast.File) []Directive {
	var out []Directive
	for _, f := range files {
		var occupied map[int]bool // lines on which code (not comments) appears
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//"+allowPrefix)
				if !ok {
					// Tolerate the spaced spelling so a hand-typed
					// "// gearsvet:allow ..." still counts (and still
					// demands a reason).
					text, ok = strings.CutPrefix(c.Text, "// "+allowPrefix)
				}
				if !ok {
					continue
				}
				if occupied == nil {
					occupied = codeLines(fset, f)
				}
				line := fset.Position(c.Pos()).Line
				out = append(out, Directive{
					Pos:    c.Pos(),
					Line:   line,
					Alone:  !occupied[line],
					Reason: strings.TrimSpace(text),
				})
			}
		}
	}
	return out
}

// codeLines reports the lines of f on which non-comment syntax appears,
// so a directive can tell "trailing after code" from "alone on its
// line".
func codeLines(fset *token.FileSet, f *ast.File) map[int]bool {
	lines := make(map[int]bool)
	ast.Inspect(f, func(n ast.Node) bool {
		switch n.(type) {
		case nil, *ast.Comment, *ast.CommentGroup, *ast.File:
			return true
		}
		lines[fset.Position(n.Pos()).Line] = true
		lines[fset.Position(n.End()).Line] = true
		return true
	})
	return lines
}

// Filter drops diagnostics covered by a reasoned directive: findings
// on a directive's line, or on the line after a standalone directive.
// Bare (reasonless) directives cover nothing — BareDirectives turns
// them into findings of their own.
func Filter(fset *token.FileSet, dirs []Directive, diags []Diagnostic) []Diagnostic {
	type key struct {
		file string
		line int
	}
	covered := make(map[key]bool)
	for _, d := range dirs {
		if d.Reason == "" {
			continue
		}
		p := fset.Position(d.Pos)
		covered[key{p.Filename, d.Line}] = true
		if d.Alone {
			covered[key{p.Filename, d.Line + 1}] = true
		}
	}
	out := diags[:0:0]
	for _, dg := range diags {
		p := fset.Position(dg.Pos)
		if covered[key{p.Filename, p.Line}] {
			continue
		}
		out = append(out, dg)
	}
	return out
}

// BareDirectives reports every directive that states no reason: an
// unexplained mute defeats the directive's purpose as a review record,
// so it is rejected rather than honored.
func BareDirectives(dirs []Directive) []Diagnostic {
	var out []Diagnostic
	for _, d := range dirs {
		if d.Reason == "" {
			out = append(out, Diagnostic{
				Pos:     d.Pos,
				Message: "bare //gearsvet:allow: a suppression must state its reason (//gearsvet:allow <why this is safe>)",
			})
		}
	}
	return out
}
