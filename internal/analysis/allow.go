package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// allowPrefix introduces a suppression directive. The canonical form is
//
//	//gearsvet:allow <reason>
//
// following the compiler's `//go:` directive convention: no space after
// the slashes, so gofmt leaves it alone and it reads as machinery, not
// prose.
const allowPrefix = "gearsvet:allow"

// Directive is one //gearsvet:allow occurrence.
type Directive struct {
	// Pos is the directive's position.
	Pos token.Pos
	// Line is the 1-based line the directive sits on.
	Line int
	// Alone reports whether the directive is the only thing on its
	// line; it then covers the following statement instead.
	Alone bool
	// Reason is the justification text after the directive name.
	Reason string
}

// Directives collects every //gearsvet:allow directive in the files.
func Directives(fset *token.FileSet, files []*ast.File) []Directive {
	var out []Directive
	for _, f := range files {
		var occupied map[int]bool // lines on which code (not comments) appears
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//"+allowPrefix)
				if !ok {
					// Tolerate the spaced spelling so a hand-typed
					// "// gearsvet:allow ..." still counts (and still
					// demands a reason).
					text, ok = strings.CutPrefix(c.Text, "// "+allowPrefix)
				}
				if !ok {
					continue
				}
				if occupied == nil {
					occupied = codeLines(fset, f)
				}
				line := fset.Position(c.Pos()).Line
				out = append(out, Directive{
					Pos:    c.Pos(),
					Line:   line,
					Alone:  !occupied[line],
					Reason: strings.TrimSpace(text),
				})
			}
		}
	}
	return out
}

// codeLines reports the lines of f on which non-comment syntax appears,
// so a directive can tell "trailing after code" from "alone on its
// line".
func codeLines(fset *token.FileSet, f *ast.File) map[int]bool {
	lines := make(map[int]bool)
	ast.Inspect(f, func(n ast.Node) bool {
		switch n.(type) {
		case nil, *ast.Comment, *ast.CommentGroup, *ast.File:
			return true
		}
		lines[fset.Position(n.Pos()).Line] = true
		lines[fset.Position(n.End()).Line] = true
		return true
	})
	return lines
}

// lineKey addresses one source line across the file set.
type lineKey struct {
	file string
	line int
}

// lineRange is a statement's line extent within one file.
type lineRange struct {
	start, end int
}

// Suppressor applies //gearsvet:allow directives to diagnostics. A
// directive attaches to the full extent of a statement, not just one
// line: a trailing directive covers the smallest statement that ends on
// its line (so the closing-paren line of a multi-line call suppresses
// the diagnostic reported at the call's opening line), and a standalone
// directive covers the whole statement beginning on the next line. Bare
// (reasonless) directives cover nothing and surface as findings of
// their own.
type Suppressor struct {
	fset *token.FileSet
	dirs []Directive
	// starts/ends index, per line, the smallest statement extent that
	// begins/ends there.
	starts map[lineKey]lineRange
	ends   map[lineKey]lineRange
	// covered maps every suppressed line to the reason of the directive
	// that covers it.
	covered map[lineKey]string
}

// NewSuppressor indexes the files' directives and statement extents.
func NewSuppressor(fset *token.FileSet, files []*ast.File) *Suppressor {
	s := &Suppressor{
		fset:    fset,
		dirs:    Directives(fset, files),
		starts:  make(map[lineKey]lineRange),
		ends:    make(map[lineKey]lineRange),
		covered: make(map[lineKey]string),
	}
	for _, f := range files {
		fname := fset.Position(f.Pos()).Filename
		ast.Inspect(f, func(n ast.Node) bool {
			switch n.(type) {
			case ast.Stmt, *ast.GenDecl:
				// Statements and non-func declarations anchor extents;
				// whole functions deliberately do not, so a directive
				// above a FuncDecl cannot mute its entire body.
			default:
				return true
			}
			ext := lineRange{fset.Position(n.Pos()).Line, fset.Position(n.End()).Line}
			s.index(lineKey{fname, ext.start}, ext, s.starts)
			s.index(lineKey{fname, ext.end}, ext, s.ends)
			return true
		})
	}
	for _, d := range s.dirs {
		if d.Reason == "" {
			continue
		}
		fname := fset.Position(d.Pos).Filename
		anchor := lineKey{fname, d.Line}
		ext := lineRange{d.Line, d.Line}
		if d.Alone {
			// Standalone: the directive covers the statement starting
			// on the next line (or just that line, when no statement
			// starts there).
			anchor = lineKey{fname, d.Line + 1}
			ext = lineRange{d.Line + 1, d.Line + 1}
			if e, ok := s.starts[anchor]; ok {
				ext = e
			}
		} else if e, ok := s.ends[anchor]; ok {
			// Trailing: the directive covers the statement ending on
			// its line — the whole extent, so multi-line statements are
			// suppressible at their closing line.
			ext = e
		}
		for line := ext.start; line <= ext.end; line++ {
			if _, dup := s.covered[lineKey{anchor.file, line}]; !dup {
				s.covered[lineKey{anchor.file, line}] = d.Reason
			}
		}
	}
	return s
}

// index records ext at key, keeping the smallest (fewest-lines) extent
// when several statements share a boundary line.
func (s *Suppressor) index(key lineKey, ext lineRange, m map[lineKey]lineRange) {
	if cur, ok := m[key]; ok && cur.end-cur.start <= ext.end-ext.start {
		return
	}
	m[key] = ext
}

// Covers reports whether a reasoned directive suppresses findings at
// pos, and with what reason. Analyzers that derive facts from flagged
// shapes consult it so an allowed site also reads as proven-safe to
// callers (the summary of a helper whose store is allowed is clean).
func (s *Suppressor) Covers(pos token.Pos) (string, bool) {
	p := s.fset.Position(pos)
	reason, ok := s.covered[lineKey{p.Filename, p.Line}]
	return reason, ok
}

// Allowed is one diagnostic a reasoned directive suppressed, with the
// recorded justification — surfaced by the -json output so CI can
// render the allow-state of every finding.
type Allowed struct {
	Diagnostic
	Reason string
}

// Filter splits diagnostics into those that survive and those a
// reasoned directive covers.
func (s *Suppressor) Filter(diags []Diagnostic) (kept []Diagnostic, allowed []Allowed) {
	for _, d := range diags {
		if reason, ok := s.Covers(d.Pos); ok {
			allowed = append(allowed, Allowed{Diagnostic: d, Reason: reason})
			continue
		}
		kept = append(kept, d)
	}
	return kept, allowed
}

// Bare reports every directive that states no reason: an unexplained
// mute defeats the directive's purpose as a review record, so it is
// rejected rather than honored.
func (s *Suppressor) Bare() []Diagnostic {
	var out []Diagnostic
	for _, d := range s.dirs {
		if d.Reason == "" {
			out = append(out, Diagnostic{
				Pos:     d.Pos,
				Message: "bare //gearsvet:allow: a suppression must state its reason (//gearsvet:allow <why this is safe>)",
			})
		}
	}
	return out
}
