// Package vettest runs a gearsvet analyzer over fixture packages and
// checks its findings against // want expectations in the fixture
// source — the analysistest workflow, reimplemented on the standard
// library so the suite stays dependency-free.
//
// Fixtures live in a GOPATH-style tree: <testdata>/src/<importpath>/.
// A line that should be flagged carries a trailing expectation whose
// quoted argument is a regular expression matched against the
// diagnostic message:
//
//	x := time.Now() // want `time\.Now`
//
// Several expectations on one line each consume one diagnostic. Lines
// with no expectation must produce no diagnostic. Because the harness
// routes findings through the same //gearsvet:allow filtering as the
// vet driver, fixtures also pin the suppression semantics: an allowed
// line wants nothing, a bare directive wants the bare-directive error.
//
// An expectation of the form name:"pattern" asserts a fact instead of
// a diagnostic: the analyzer must export, for the object called name
// declared on that line, a fact whose fmt.Sprint rendering matches the
// pattern:
//
//	func Sink(p []byte) { ... } // want Sink:`p escapes`
//
// Packages are analyzed through a Runner, so a fixture package's
// under-root imports are fact-analyzed first — fact expectations hold
// across package boundaries exactly as they do under `go vet`.
// Unexpected facts are not errors (summaries annotate liberally);
// unmatched fact expectations are.
package vettest

import (
	"fmt"
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"shiftgears/internal/analysis"
)

// Run loads each fixture package under dir/src, applies the analyzer
// (dependencies first, sharing one fact store), and reports every
// mismatch between findings and // want comments as a test error.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	runner := analysis.NewRunner(filepath.Join(dir, "src"))
	for _, pkg := range pkgs {
		p, diags, err := runner.Run(a, pkg)
		if err != nil {
			t.Errorf("%s: run on %s: %v", a.Name, pkg, err)
			continue
		}
		checkExpectations(t, a.Name, p, diags, runner.Store().ObjectFacts(a.Name, pkg))
	}
}

type lineKey struct {
	file string
	line int
}

// expectation is one parsed want argument: a diagnostic pattern when
// Name is empty, a fact assertion otherwise.
type expectation struct {
	Name    string
	Pattern string
}

// checkExpectations matches diagnostics and facts against want
// comments line-by-line.
func checkExpectations(t *testing.T, name string, p *analysis.LoadedPackage, diags []analysis.Diagnostic, facts []analysis.ObjectFactRecord) {
	t.Helper()
	diagWants := make(map[lineKey][]*regexp.Regexp)
	type factWant struct {
		obj string
		re  *regexp.Regexp
	}
	factWants := make(map[lineKey][]*factWant)
	for _, f := range p.Files {
		fname := p.Fset.Position(f.Pos()).Filename
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(strings.TrimSpace(strings.TrimPrefix(c.Text, "//")), "want ")
				if !ok {
					continue
				}
				key := lineKey{fname, p.Fset.Position(c.Pos()).Line}
				for _, exp := range parseWants(rest) {
					re, err := regexp.Compile(exp.Pattern)
					if err != nil {
						t.Errorf("%s: bad want pattern %q: %v", posn(p.Fset, c.Pos()), exp.Pattern, err)
						continue
					}
					if exp.Name == "" {
						diagWants[key] = append(diagWants[key], re)
					} else {
						factWants[key] = append(factWants[key], &factWant{exp.Name, re})
					}
				}
			}
		}
	}

	for _, d := range diags {
		pos := p.Fset.Position(d.Pos)
		key := lineKey{pos.Filename, pos.Line}
		matched := false
		for i, re := range diagWants[key] {
			if re != nil && re.MatchString(d.Message) {
				diagWants[key][i] = nil // consumed
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected %s diagnostic: %s", pos, name, d.Message)
		}
	}
	for key, res := range diagWants {
		for _, re := range res {
			if re != nil {
				t.Errorf("%s:%d: no %s diagnostic matched %q", key.file, key.line, name, re)
			}
		}
	}

	// Facts: every expectation must be met by some exported fact on the
	// named object declared at that line; facts without expectations
	// are fine.
	for _, rec := range facts {
		obj := analysis.FindObject(p.Pkg, rec.Obj)
		if obj == nil {
			continue
		}
		pos := p.Fset.Position(obj.Pos())
		key := lineKey{pos.Filename, pos.Line}
		for _, fw := range factWants[key] {
			if fw.re != nil && fw.obj == obj.Name() && fw.re.MatchString(fmt.Sprint(rec.Fact)) {
				fw.re = nil // consumed
			}
		}
	}
	for key, fws := range factWants {
		for _, fw := range fws {
			if fw.re != nil {
				t.Errorf("%s:%d: no %s fact on %q matched %q", key.file, key.line, name, fw.obj, fw.re)
			}
		}
	}
}

// parseWants parses the arguments of a want comment: a sequence of
// double-quoted or backquoted diagnostic patterns and name:"pattern"
// fact expectations.
func parseWants(s string) []expectation {
	var out []expectation
	s = strings.TrimSpace(s)
	for s != "" {
		name := ""
		if i := identEnd(s); i > 0 && i < len(s) && s[i] == ':' {
			name, s = s[:i], s[i+1:]
		}
		if s == "" || (s[0] != '"' && s[0] != '`') {
			// Unquoted tail: treat the rest as one pattern.
			return append(out, expectation{Name: name, Pattern: s})
		}
		var pat string
		pat, s = cutQuoted(s)
		out = append(out, expectation{Name: name, Pattern: pat})
		s = strings.TrimSpace(s)
	}
	return out
}

// identEnd reports the length of the leading Go identifier of s, 0 if
// none.
func identEnd(s string) int {
	i := 0
	for i < len(s) {
		c := s[i]
		if c == '_' || 'a' <= c|0x20 && c|0x20 <= 'z' || i > 0 && '0' <= c && c <= '9' {
			i++
			continue
		}
		break
	}
	return i
}

// cutQuoted splits one leading double-quoted or backquoted string off
// s, returning its unquoted value and the remainder.
func cutQuoted(s string) (pat, rest string) {
	switch s[0] {
	case '"':
		end := 1
		for end < len(s) {
			if s[end] == '\\' {
				end += 2
				continue
			}
			if s[end] == '"' {
				break
			}
			end++
		}
		if end >= len(s) {
			return s, "" // unterminated; surface as-is
		}
		unq, err := strconv.Unquote(s[:end+1])
		if err != nil {
			unq = s[1:end]
		}
		return unq, s[end+1:]
	default: // '`'
		end := strings.IndexByte(s[1:], '`')
		if end < 0 {
			return s[1:], ""
		}
		return s[1 : 1+end], s[2+end:]
	}
}

func posn(fset *token.FileSet, pos token.Pos) string {
	return fmt.Sprint(fset.Position(pos))
}
