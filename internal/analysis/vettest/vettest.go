// Package vettest runs a gearsvet analyzer over fixture packages and
// checks its findings against // want expectations in the fixture
// source — the analysistest workflow, reimplemented on the standard
// library so the suite stays dependency-free.
//
// Fixtures live in a GOPATH-style tree: <testdata>/src/<importpath>/.
// A line that should be flagged carries a trailing expectation whose
// quoted argument is a regular expression matched against the
// diagnostic message:
//
//	x := time.Now() // want `time\.Now`
//
// Several expectations on one line each consume one diagnostic. Lines
// with no expectation must produce no diagnostic. Because the harness
// routes findings through the same //gearsvet:allow filtering as the
// vet driver, fixtures also pin the suppression semantics: an allowed
// line wants nothing, a bare directive wants the bare-directive error.
package vettest

import (
	"fmt"
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"shiftgears/internal/analysis"
)

// Run loads each fixture package under dir/src, applies the analyzer,
// and reports every mismatch between findings and // want comments as
// a test error.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	loader := analysis.NewLoader(filepath.Join(dir, "src"))
	for _, pkg := range pkgs {
		p, err := loader.Load(pkg)
		if err != nil {
			t.Errorf("%s: load %s: %v", a.Name, pkg, err)
			continue
		}
		diags, err := analysis.RunOn(a, p)
		if err != nil {
			t.Errorf("%s: run on %s: %v", a.Name, pkg, err)
			continue
		}
		checkExpectations(t, a.Name, p, diags)
	}
}

type lineKey struct {
	file string
	line int
}

// checkExpectations matches diagnostics against want comments
// line-by-line.
func checkExpectations(t *testing.T, name string, p *analysis.LoadedPackage, diags []analysis.Diagnostic) {
	t.Helper()
	wants := make(map[lineKey][]*regexp.Regexp)
	for _, f := range p.Files {
		fname := p.Fset.Position(f.Pos()).Filename
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(strings.TrimSpace(strings.TrimPrefix(c.Text, "//")), "want ")
				if !ok {
					continue
				}
				key := lineKey{fname, p.Fset.Position(c.Pos()).Line}
				for _, pat := range splitQuoted(rest) {
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Errorf("%s: bad want pattern %q: %v", posn(p.Fset, c.Pos()), pat, err)
						continue
					}
					wants[key] = append(wants[key], re)
				}
			}
		}
	}

	for _, d := range diags {
		pos := p.Fset.Position(d.Pos)
		key := lineKey{pos.Filename, pos.Line}
		matched := false
		for i, re := range wants[key] {
			if re != nil && re.MatchString(d.Message) {
				wants[key][i] = nil // consumed
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected %s diagnostic: %s", pos, name, d.Message)
		}
	}
	for key, res := range wants {
		for _, re := range res {
			if re != nil {
				t.Errorf("%s:%d: no %s diagnostic matched %q", key.file, key.line, name, re)
			}
		}
	}
}

// splitQuoted parses the arguments of a want comment: a sequence of
// double-quoted or backquoted strings.
func splitQuoted(s string) []string {
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		switch s[0] {
		case '"':
			end := 1
			for end < len(s) {
				if s[end] == '\\' {
					end += 2
					continue
				}
				if s[end] == '"' {
					break
				}
				end++
			}
			if end >= len(s) {
				return append(out, s) // unterminated; surface as-is
			}
			unq, err := strconv.Unquote(s[:end+1])
			if err != nil {
				unq = s[1:end]
			}
			out = append(out, unq)
			s = strings.TrimSpace(s[end+1:])
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				return append(out, s[1:])
			}
			out = append(out, s[1:1+end])
			s = strings.TrimSpace(s[2+end:])
		default:
			// Unquoted tail: treat the rest as one pattern.
			return append(out, s)
		}
	}
	return out
}

func posn(fset *token.FileSet, pos token.Pos) string {
	return fmt.Sprint(fset.Position(pos))
}
