// Package trace records protocol events — shifts, fault discoveries,
// conversions, decisions — so that the experiment harness can reconstruct
// per-round timelines (which block detected which faults, when a persistent
// value emerged, where the hybrid shifted gears).
package trace

import (
	"fmt"
	"sort"
	"strings"
)

// Kind classifies an event.
type Kind int

const (
	// KindRootStored marks round 1: the value received from the source was
	// stored at the root.
	KindRootStored Kind = iota + 1
	// KindLevelStored marks the end of an Information Gathering round.
	KindLevelStored
	// KindDiscovery marks a processor entering L_p.
	KindDiscovery
	// KindShift marks a shift operator application (tree collapse).
	KindShift
	// KindPhase marks the hybrid moving to the next constituent algorithm.
	KindPhase
	// KindDecision marks the irreversible decision.
	KindDecision
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindRootStored:
		return "root"
	case KindLevelStored:
		return "level"
	case KindDiscovery:
		return "discover"
	case KindShift:
		return "shift"
	case KindPhase:
		return "phase"
	case KindDecision:
		return "decide"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Event is one protocol event at one processor.
type Event struct {
	Round  int
	PID    int
	Kind   Kind
	Target int    // discovered processor, or decided/shifted value
	Note   string // free-form detail ("resolve'", "A->B", ...)
}

// Log is an append-only per-processor event log. Each processor owns its
// log exclusively (no locking needed; the round engine barriers writes).
type Log struct {
	pid    int
	events []Event
}

// NewLog returns a log for one processor.
func NewLog(pid int) *Log { return &Log{pid: pid} }

// Add appends an event.
func (l *Log) Add(round int, kind Kind, target int, note string) {
	if l == nil {
		return
	}
	l.events = append(l.events, Event{Round: round, PID: l.pid, Kind: kind, Target: target, Note: note})
}

// Events returns a copy of the recorded events.
func (l *Log) Events() []Event {
	if l == nil {
		return nil
	}
	return append([]Event(nil), l.events...)
}

// Merge combines several logs into one chronologically sorted stream
// (round, then pid, then insertion order).
func Merge(logs ...*Log) []Event {
	var all []Event
	for _, l := range logs {
		if l != nil {
			all = append(all, l.events...)
		}
	}
	sort.SliceStable(all, func(i, j int) bool {
		if all[i].Round != all[j].Round {
			return all[i].Round < all[j].Round
		}
		return all[i].PID < all[j].PID
	})
	return all
}

// GlobalDetections returns, for each faulty processor that every log in
// `correct` has discovered, the round by which the discovery became global
// (the max over the individual discovery rounds). This is the paper's
// notion of global detection.
func GlobalDetections(correct []*Log) map[int]int {
	if len(correct) == 0 {
		return nil
	}
	counts := make(map[int]int)
	latest := make(map[int]int)
	for _, l := range correct {
		for _, ev := range l.events {
			if ev.Kind != KindDiscovery {
				continue
			}
			counts[ev.Target]++
			if ev.Round > latest[ev.Target] {
				latest[ev.Target] = ev.Round
			}
		}
	}
	out := make(map[int]int)
	for p, c := range counts {
		if c == len(correct) {
			out[p] = latest[p]
		}
	}
	return out
}

// Timeline renders a merged event stream as one line per event, for the
// CLI and the examples.
func Timeline(events []Event) string {
	var b strings.Builder
	for _, ev := range events {
		fmt.Fprintf(&b, "round %2d  p%-3d %-8s", ev.Round, ev.PID, ev.Kind)
		switch ev.Kind {
		case KindDiscovery:
			fmt.Fprintf(&b, " faulty=%d", ev.Target)
		case KindDecision, KindShift, KindRootStored:
			fmt.Fprintf(&b, " value=%d", ev.Target)
		}
		if ev.Note != "" {
			fmt.Fprintf(&b, "  (%s)", ev.Note)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
