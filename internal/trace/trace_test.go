package trace

import (
	"strings"
	"testing"
)

func TestKindString(t *testing.T) {
	names := map[Kind]string{
		KindRootStored: "root", KindLevelStored: "level", KindDiscovery: "discover",
		KindShift: "shift", KindPhase: "phase", KindDecision: "decide",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), want)
		}
	}
	if !strings.Contains(Kind(99).String(), "99") {
		t.Error("unknown kind should render its number")
	}
}

func TestNilLogIsSafe(t *testing.T) {
	var l *Log
	l.Add(1, KindDecision, 0, "") // must not panic
	if l.Events() != nil {
		t.Fatal("nil log has events")
	}
}

func TestLogAddAndEvents(t *testing.T) {
	l := NewLog(3)
	l.Add(1, KindRootStored, 5, "")
	l.Add(2, KindDiscovery, 1, "gathering")
	events := l.Events()
	if len(events) != 2 {
		t.Fatalf("%d events", len(events))
	}
	if events[0].PID != 3 || events[0].Round != 1 || events[0].Target != 5 {
		t.Fatalf("event 0 = %+v", events[0])
	}
	// Events returns a copy.
	events[0].Target = 99
	if l.Events()[0].Target == 99 {
		t.Fatal("Events aliases internal storage")
	}
}

func TestMergeSortsByRoundThenPID(t *testing.T) {
	a := NewLog(2)
	a.Add(2, KindShift, 1, "")
	a.Add(1, KindRootStored, 1, "")
	b := NewLog(1)
	b.Add(2, KindShift, 0, "")
	merged := Merge(a, b, nil)
	if len(merged) != 3 {
		t.Fatalf("%d merged events", len(merged))
	}
	if merged[0].Round != 1 || merged[1].PID != 1 || merged[2].PID != 2 {
		t.Fatalf("merge order: %+v", merged)
	}
}

func TestGlobalDetections(t *testing.T) {
	a := NewLog(1)
	a.Add(2, KindDiscovery, 7, "")
	a.Add(3, KindDiscovery, 8, "")
	b := NewLog(2)
	b.Add(4, KindDiscovery, 7, "")
	got := GlobalDetections([]*Log{a, b})
	if len(got) != 1 {
		t.Fatalf("global detections = %v, want only 7", got)
	}
	if got[7] != 4 {
		t.Fatalf("7 became global at round %d, want 4 (the last discovery)", got[7])
	}
	if GlobalDetections(nil) != nil {
		t.Fatal("no logs → nil")
	}
}

func TestTimelineRendering(t *testing.T) {
	l := NewLog(0)
	l.Add(1, KindRootStored, 4, "")
	l.Add(3, KindDiscovery, 2, "gathering")
	l.Add(5, KindDecision, 4, "")
	out := Timeline(l.Events())
	for _, want := range []string{"round  1", "faulty=2", "value=4", "(gathering)", "decide"} {
		if !strings.Contains(out, want) {
			t.Errorf("timeline missing %q:\n%s", want, out)
		}
	}
	if got := len(strings.Split(strings.TrimSpace(out), "\n")); got != 3 {
		t.Errorf("timeline has %d lines, want 3", got)
	}
}
