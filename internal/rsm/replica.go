package rsm

import (
	"fmt"
	"sync"

	"shiftgears/internal/adversary"
	"shiftgears/internal/sim"
)

// Replica is one node's replicated-log engine. It owns the node's command
// queue, schedules slots over a sim.Mux (window-pipelined), batches its
// queued commands into the slots it sources, and commits entries in strict
// slot order.
//
// A Replica is driven either by the in-process network (RunSim) or by a
// TCP mesh (RunTCP, cmd/logserver); Submit may be called concurrently with
// the run. Commands submitted after the node's last sourced slot has
// started stay queued and never commit (Pending reports them).
type Replica struct {
	cfg    Config
	id     int
	protos []Protocol // per slot; position instances share them
	mux    *sim.Mux
	wrap   func(slot int, proc sim.Processor) sim.Processor
	apply  func(Entry)

	byzStrategy string
	byzSeed     int64

	mu         sync.Mutex
	queue      []Value
	slots      map[int]*slotInstance
	pending    map[int]Entry // finished but waiting for in-order commit
	commitNext int
	entries    []Entry
	snapshot   []Value
	err        error

	committed chan Entry
}

// ReplicaOption configures a Replica.
type ReplicaOption func(*Replica)

// WithApply installs a callback invoked once per committed entry, in slot
// order, from the engine's driving goroutine.
func WithApply(f func(Entry)) ReplicaOption {
	return func(r *Replica) { r.apply = f }
}

// WithWrap installs a per-slot processor wrapper — the generic
// fault-injection hook. Most callers want WithByzantine instead.
func WithWrap(w func(slot int, proc sim.Processor) sim.Processor) ReplicaOption {
	return func(r *Replica) { r.wrap = w }
}

// WithByzantine makes the replica Byzantine in every slot — including the
// slots it sources — running the named adversary strategy (see
// adversary.Names). Strategies are constructed eagerly per distinct slot
// round count, so an unknown name fails NewReplica rather than the run.
func WithByzantine(strategy string, seed int64) ReplicaOption {
	return func(r *Replica) { r.byzStrategy, r.byzSeed = strategy, seed }
}

// NewReplica builds processor id's log engine. It eagerly compiles every
// slot's protocol (the round schedule must be known up front — it is the
// shared pipeline clock) but creates slot instances lazily, when a slot
// enters the window, so sourced slots capture the queue at proposal time.
func NewReplica(cfg Config, id int, opts ...ReplicaOption) (*Replica, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if id < 0 || id >= cfg.N {
		return nil, fmt.Errorf("rsm: replica id %d out of range [0, %d)", id, cfg.N)
	}
	r := &Replica{
		cfg:       cfg,
		id:        id,
		protos:    make([]Protocol, cfg.Slots),
		slots:     make(map[int]*slotInstance),
		pending:   make(map[int]Entry),
		committed: make(chan Entry, cfg.Slots),
	}
	for _, opt := range opts {
		opt(r)
	}
	rounds := make([]int, cfg.Slots)
	for slot := 0; slot < cfg.Slots; slot++ {
		proto, err := cfg.Protocol(slot, slot%cfg.N)
		if err != nil {
			return nil, fmt.Errorf("rsm: slot %d: %w", slot, err)
		}
		if proto.Rounds() < 1 {
			return nil, fmt.Errorf("rsm: slot %d: protocol reports %d rounds", slot, proto.Rounds())
		}
		r.protos[slot] = proto
		rounds[slot] = proto.Rounds()
	}
	if r.byzStrategy != "" {
		if r.wrap != nil {
			return nil, fmt.Errorf("rsm: WithByzantine and WithWrap are mutually exclusive")
		}
		strats := make(map[int]adversary.Strategy)
		for _, proto := range r.protos {
			rds := proto.Rounds()
			if _, ok := strats[rds]; !ok {
				strat, err := adversary.New(r.byzStrategy, rds)
				if err != nil {
					return nil, err
				}
				strats[rds] = strat
			}
		}
		seed := r.byzSeed
		r.wrap = func(slot int, proc sim.Processor) sim.Processor {
			strat := strats[r.protos[slot].Rounds()]
			return adversary.NewProcessor(proc, strat, seed+int64(slot), cfg.N)
		}
	}
	mux, err := sim.NewMux(sim.MuxConfig{
		ID: id, N: cfg.N, Window: cfg.Window, Rounds: rounds,
		Start:  r.startSlot,
		Finish: r.finishSlot,
	})
	if err != nil {
		return nil, err
	}
	r.mux = mux
	return r, nil
}

// ID returns the replica's processor id.
func (r *Replica) ID() int { return r.id }

// Mux returns the replica's multiplexed schedule — the sim.Processor to
// hand to sim.NewNetwork or transport.Listen.
func (r *Replica) Mux() *sim.Mux { return r.mux }

// TotalTicks returns the global tick count the full log needs.
func (r *Replica) TotalTicks() int { return r.mux.TotalTicks() }

// SlotRounds returns the round count of one slot's protocol.
func (r *Replica) SlotRounds(slot int) int { return r.protos[slot].Rounds() }

// Submit queues one command on this replica. The command rides in the next
// slot this replica sources with a free batch position. NoOp (0) is not
// submittable — it is the agreement default.
func (r *Replica) Submit(cmd Value) error {
	if cmd == NoOp {
		return fmt.Errorf("rsm: command 0 is the reserved no-op")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.queue = append(r.queue, cmd)
	return nil
}

// Pending returns the number of queued commands not yet proposed.
func (r *Replica) Pending() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.queue)
}

// Committed returns the channel of committed entries, in slot order. It is
// buffered for the full log and closed after the final slot commits.
func (r *Replica) Committed() <-chan Entry { return r.committed }

// Entries returns a copy of the committed log so far.
func (r *Replica) Entries() []Entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Entry(nil), r.entries...)
}

// Snapshot returns the applied state: every committed command, in commit
// order — the sequence a state machine fed by Apply has consumed.
func (r *Replica) Snapshot() []Value {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Value(nil), r.snapshot...)
}

// Err returns the first engine, schedule, or protocol error.
func (r *Replica) Err() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.err != nil {
		return r.err
	}
	return r.mux.Err()
}

// startSlot is the mux's lazy instance factory: it pops this replica's
// batch from the queue when it is the slot's source and builds the
// position replicas.
func (r *Replica) startSlot(slot int) (sim.Instance, error) {
	source := slot % r.cfg.N
	batch := make([]Value, r.cfg.BatchSize)
	if r.id == source {
		r.mu.Lock()
		take := len(r.queue)
		if take > r.cfg.BatchSize {
			take = r.cfg.BatchSize
		}
		copy(batch, r.queue[:take])
		r.queue = r.queue[take:]
		r.mu.Unlock()
	}
	si := &slotInstance{slot: slot, id: r.id, n: r.cfg.N, source: source}
	for pos := 0; pos < r.cfg.BatchSize; pos++ {
		rep, err := r.protos[slot].NewReplica(r.id, batch[pos])
		if err != nil {
			return nil, fmt.Errorf("rsm: slot %d position %d: %w", slot, pos, err)
		}
		si.reps = append(si.reps, rep)
	}
	r.mu.Lock()
	r.slots[slot] = si
	r.mu.Unlock()
	var proc sim.Processor = si
	if r.wrap != nil {
		proc = r.wrap(slot, si)
	}
	return proc, nil
}

// finishSlot runs when a slot completes its last round: it assembles the
// decided entry and flushes the in-order commit prefix.
func (r *Replica) finishSlot(slot int) {
	r.mu.Lock()
	si := r.slots[slot]
	delete(r.slots, slot)
	if si == nil {
		r.setErrLocked(fmt.Errorf("rsm: finished unknown slot %d", slot))
		r.mu.Unlock()
		return
	}
	if err := si.err(); err != nil {
		r.setErrLocked(err)
	}
	entry, ok := si.entry()
	if !ok {
		r.setErrLocked(fmt.Errorf("rsm: slot %d finished undecided", slot))
		r.mu.Unlock()
		return
	}
	r.pending[slot] = entry
	var ready []Entry
	for {
		e, have := r.pending[r.commitNext]
		if !have {
			break
		}
		delete(r.pending, r.commitNext)
		r.entries = append(r.entries, e)
		r.snapshot = append(r.snapshot, e.Commands...)
		ready = append(ready, e)
		r.commitNext++
	}
	final := r.commitNext == r.cfg.Slots
	r.mu.Unlock()

	// Callbacks and channel sends happen outside the lock; the channel is
	// buffered for the full log, so sends never block.
	for _, e := range ready {
		if r.apply != nil {
			r.apply(e)
		}
		r.committed <- e
	}
	if final {
		close(r.committed)
	}
}

func (r *Replica) setErrLocked(err error) {
	if r.err == nil {
		r.err = err
	}
}
