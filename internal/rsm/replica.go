package rsm

import (
	"fmt"
	"sync"

	"shiftgears/internal/adversary"
	"shiftgears/internal/obs"
	"shiftgears/internal/sim"
)

// Replica is one node's replicated-log engine. It owns the node's command
// queue, schedules slots over a sim.Mux (window-pipelined), batches its
// queued commands into the slots it sources, and commits entries in strict
// slot order.
//
// A Replica is driven over any fabric by Run — the in-process router
// (RunSim), the chaos network, or a TCP mesh (RunTCP, cmd/logserver);
// Submit may be called concurrently with the run. Commands submitted
// after the node's last sourced slot has started stay queued and never
// commit (Pending reports them).
type Replica struct {
	cfg   Config
	id    int
	mux   *sim.Mux
	wrap  func(slot int, proc sim.Processor) sim.Processor
	apply func(Entry)

	byzStrategy string
	byzSeed     int64

	mu         sync.Mutex
	protos     []Protocol    // per slot; static: filled at construction, gear: resolved lazily
	gearErrs   map[int]error // per-slot gear resolution failures, surfaced by startSlot
	queue      []Value
	queueTicks []int         // per queued command, the tick it was submitted at
	slotTicks  map[int][]int // per sourced slot, its batch's submit ticks
	slots      map[int]*slotInstance
	pending    map[int]Entry // finished but waiting for in-order commit
	commitNext int
	entries    []Entry
	snapshot   []Value
	scratches  []*slotScratch // free list; see slotScratch
	err        error
	lat        obs.Histogram // submit→commit latency of commands this replica sourced

	committed       chan Entry
	committedClosed bool
}

// ReplicaOption configures a Replica.
type ReplicaOption func(*Replica)

// WithApply installs a callback invoked once per committed entry, in slot
// order, from the engine's driving goroutine.
func WithApply(f func(Entry)) ReplicaOption {
	return func(r *Replica) { r.apply = f }
}

// WithWrap installs a per-slot processor wrapper — the generic
// fault-injection hook. Most callers want WithByzantine instead.
func WithWrap(w func(slot int, proc sim.Processor) sim.Processor) ReplicaOption {
	return func(r *Replica) { r.wrap = w }
}

// WithByzantine makes the replica Byzantine in every slot — including the
// slots it sources — running the named adversary strategy (see
// adversary.Names). The name is validated eagerly, so an unknown name
// fails NewReplica rather than the run; a fresh strategy instance is then
// constructed per slot, so stateful strategies never leak state across
// slots (or, with window > 1, across interleaved slots).
func WithByzantine(strategy string, seed int64) ReplicaOption {
	return func(r *Replica) { r.byzStrategy, r.byzSeed = strategy, seed }
}

// NewReplica builds processor id's log engine. It eagerly compiles every
// slot's protocol (the round schedule must be known up front — it is the
// shared pipeline clock) but creates slot instances lazily, when a slot
// enters the window, so sourced slots capture the queue at proposal time.
func NewReplica(cfg Config, id int, opts ...ReplicaOption) (*Replica, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if id < 0 || id >= cfg.N {
		return nil, fmt.Errorf("rsm: replica id %d out of range [0, %d)", id, cfg.N)
	}
	r := &Replica{
		cfg:       cfg,
		id:        id,
		protos:    make([]Protocol, cfg.Slots),
		gearErrs:  make(map[int]error),
		slotTicks: make(map[int][]int),
		slots:     make(map[int]*slotInstance),
		pending:   make(map[int]Entry),
		committed: make(chan Entry, cfg.Slots),
	}
	for _, opt := range opts {
		opt(r)
	}
	// Warm one window's worth of slot scratch up front: the free list
	// otherwise fills only as the first window's slots retire, charging
	// pool-warmup allocations to the run's first ticks instead of to
	// construction (which is where the alloc benches say it belongs).
	warm := cfg.Window
	if cfg.Slots < warm {
		warm = cfg.Slots
	}
	r.scratches = make([]*slotScratch, 0, warm)
	for i := 0; i < warm; i++ {
		r.scratches = append(r.scratches, newSlotScratch(cfg.BatchSize, cfg.N))
	}
	mcfg := sim.MuxConfig{
		ID: id, N: cfg.N, Window: cfg.Window, Workers: cfg.Workers,
		Start:  r.startSlot,
		Finish: r.finishSlot,
		Tracer: cfg.Tracer,
	}
	if cfg.GearProtocol != nil {
		mcfg.Instances = cfg.Slots
		mcfg.RoundsFor = r.resolveSlot
	} else {
		rounds := make([]int, cfg.Slots)
		for slot := 0; slot < cfg.Slots; slot++ {
			proto, err := cfg.Protocol(slot, slot%cfg.N)
			if err != nil {
				return nil, fmt.Errorf("rsm: slot %d: %w", slot, err)
			}
			if proto.Rounds() < 1 {
				return nil, fmt.Errorf("rsm: slot %d: protocol reports %d rounds", slot, proto.Rounds())
			}
			r.protos[slot] = proto
			rounds[slot] = proto.Rounds()
		}
		mcfg.Rounds = rounds
	}
	if r.byzStrategy != "" {
		if r.wrap != nil {
			return nil, fmt.Errorf("rsm: WithByzantine and WithWrap are mutually exclusive")
		}
		if _, err := adversary.New(r.byzStrategy, 1); err != nil {
			return nil, err
		}
	}
	mux, err := sim.NewMux(mcfg)
	if err != nil {
		return nil, err
	}
	r.mux = mux
	return r, nil
}

// resolveSlot is the mux's lazy round resolver for gear-scheduled logs: it
// invokes GearProtocol with the committed prefix at the slot's start tick
// and caches the resolved protocol. A resolution failure is recorded and
// surfaced by startSlot (which runs immediately after, in the same fill).
func (r *Replica) resolveSlot(slot int) int {
	r.mu.Lock()
	if p := r.protos[slot]; p != nil {
		r.mu.Unlock()
		return p.Rounds()
	}
	prefix := append([]Entry(nil), r.entries...)
	r.mu.Unlock()
	// The callback (and its protocol compilation) runs unlocked so user
	// code may consult the replica's public API (Pending, Entries,
	// SlotRounds) without deadlocking on r.mu. Each slot resolves from
	// its replica's single drive goroutine, so this cannot race with
	// itself — only with Submit and readers, which the copy handles.
	proto, err := r.cfg.GearProtocol(slot, slot%r.cfg.N, prefix)
	if err == nil && proto.Rounds() < 1 {
		err = fmt.Errorf("gear protocol reports %d rounds", proto.Rounds())
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if err != nil {
		r.gearErrs[slot] = err
		return 1
	}
	r.protos[slot] = proto
	return proto.Rounds()
}

// ID returns the replica's processor id.
func (r *Replica) ID() int { return r.id }

// Mux returns the replica's multiplexed schedule — what the fabric
// runtime (fabric.Run) drives over any substrate.
func (r *Replica) Mux() *sim.Mux { return r.mux }

// TotalTicks returns the global tick count the full log needs, or 0 when
// slot protocols resolve lazily (GearProtocol): the schedule is not known
// up front, so the log is driven until every slot commits instead.
func (r *Replica) TotalTicks() int { return r.mux.TotalTicks() }

// SlotRounds returns the round count of one slot's protocol, or 0 when a
// gear-scheduled slot has not been resolved yet (it resolves when the
// slot enters the pipeline window).
func (r *Replica) SlotRounds(slot int) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if p := r.protos[slot]; p != nil {
		return p.Rounds()
	}
	return 0
}

// faultInjected reports whether the replica runs a fault-injection
// wrapper — its errors are shadow-state artifacts, not engine failures.
func (r *Replica) faultInjected() bool { return r.wrap != nil || r.byzStrategy != "" }

// Submit queues one command on this replica. The command rides in the next
// slot this replica sources with a free batch position. NoOp (0) is not
// submittable — it is the agreement default.
func (r *Replica) Submit(cmd Value) error {
	if cmd == NoOp {
		return fmt.Errorf("rsm: command 0 is the reserved no-op")
	}
	// The submit tick anchors the command's latency sample: mux ticks are
	// 0 before the run starts, so commands queued up front measure
	// latency from the first tick — the queueing delay is part of the
	// number, which is what a service front end wants to know.
	tick := r.mux.Ticks()
	r.mu.Lock()
	defer r.mu.Unlock()
	r.queue = append(r.queue, cmd)
	r.queueTicks = append(r.queueTicks, tick)
	return nil
}

// Latency returns the replica's submit→commit latency histogram, in
// global ticks. Only the commands this replica sourced are sampled (the
// source is the one node that knows the submit tick); merge the correct
// replicas' histograms for the log-level view. Always on: the histogram
// is O(1) fixed-bucket state updated once per committed command.
func (r *Replica) Latency() *obs.Histogram { return &r.lat }

// Pending returns the number of queued commands not yet proposed.
func (r *Replica) Pending() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.queue)
}

// Committed returns the channel of committed entries, in slot order. It is
// buffered for the full log and closed after the final slot commits.
func (r *Replica) Committed() <-chan Entry { return r.committed }

// Entries returns a copy of the committed log so far.
func (r *Replica) Entries() []Entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Entry(nil), r.entries...)
}

// Snapshot returns the applied state: every committed command, in commit
// order — the sequence a state machine fed by Apply has consumed.
func (r *Replica) Snapshot() []Value {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Value(nil), r.snapshot...)
}

// Err returns the first engine, schedule, or protocol error.
func (r *Replica) Err() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.err != nil {
		return r.err
	}
	return r.mux.Err()
}

// startSlot is the mux's lazy instance factory: it pops this replica's
// batch from the queue when it is the slot's source and builds the
// position replicas.
func (r *Replica) startSlot(slot int) (sim.Instance, error) {
	r.mu.Lock()
	proto, gearErr := r.protos[slot], r.gearErrs[slot]
	r.mu.Unlock()
	if gearErr != nil {
		return nil, fmt.Errorf("rsm: slot %d: %w", slot, gearErr)
	}
	source := slot % r.cfg.N
	// The scratch carries the batch buffer and the position replica
	// slice along with the codec working memory; in steady state a slot
	// starts without touching the heap.
	scratch := r.takeScratch()
	batch := scratch.batch[:r.cfg.BatchSize]
	var noop Value
	for i := range batch {
		batch[i] = noop
	}
	// A fault-injected replica in a gear-scheduled log proposes no-op
	// batches for the slots it sources (its queue stays pending): its
	// shadow then commits all-no-op self-sourced entries, matching what
	// omission-class strategies (silent, crash, omit) make the correct
	// replicas commit, so its gear schedule stays in lockstep with
	// theirs. Value-inventing strategies can still diverge the shadow's
	// prefix; the drive loops detect and surface that.
	gearedFaulty := r.cfg.GearProtocol != nil && r.faultInjected()
	if r.id == source && !gearedFaulty {
		r.mu.Lock()
		take := len(r.queue)
		if take > r.cfg.BatchSize {
			take = r.cfg.BatchSize
		}
		copy(batch, r.queue[:take])
		if take > 0 {
			// Keep the taken commands' submit ticks until the slot commits:
			// the source is the only replica that can anchor latency.
			r.slotTicks[slot] = append([]int(nil), r.queueTicks[:take]...)
		}
		r.queue = r.queue[take:]
		r.queueTicks = r.queueTicks[take:]
		r.mu.Unlock()
	}
	if r.cfg.Tracer != nil {
		// GearResolved is emitted here — for static and gear-scheduled
		// logs alike — because this is the moment the slot's protocol is
		// irrevocably fixed on this replica.
		ev := obs.At(obs.GearResolved, r.mux.Ticks()+1)
		ev.Node, ev.Slot, ev.Round = r.id, slot, proto.Rounds()
		if gn, ok := proto.(GearNamer); ok {
			ev.Gear = gn.GearName()
		}
		r.cfg.Tracer.Emit(ev)
	}
	si := &slotInstance{slot: slot, id: r.id, n: r.cfg.N, source: source, scratch: scratch}
	si.reps = scratch.reps[:0]
	for pos := 0; pos < r.cfg.BatchSize; pos++ {
		rep, err := proto.NewReplica(r.id, batch[pos])
		if err != nil {
			return nil, fmt.Errorf("rsm: slot %d position %d: %w", slot, pos, err)
		}
		si.reps = append(si.reps, rep)
	}
	r.mu.Lock()
	r.slots[slot] = si
	r.mu.Unlock()
	var proc sim.Processor = si
	switch {
	case r.byzStrategy != "":
		// A fresh strategy per slot, so stateful strategies keep per-slot
		// state (and, with window > 1, never race across interleaved
		// slots). A strategy that rejects the slot's resolved round count
		// fails the slot — and with it the run — rather than silently
		// running the slot unwrapped: a "faulty" replica that quietly
		// behaves honestly would make fault-injection tests pass
		// vacuously.
		strat, err := newStrategy(r.byzStrategy, r.SlotRounds(slot))
		if err != nil {
			return nil, fmt.Errorf("rsm: slot %d: byzantine wrapper: %w", slot, err)
		}
		proc = adversary.NewProcessor(si, strat, r.byzSeed+int64(slot), r.cfg.N)
	case r.wrap != nil:
		proc = r.wrap(slot, si)
	}
	return proc, nil
}

// newStrategy constructs a slot's adversary strategy; a seam so tests can
// inject strategies that reject their resolved round count.
var newStrategy = adversary.New

// takeScratch pops a slot scratch off the free list (or builds one). The
// list holds at most Window entries — the retired scratches of finished
// slots — so after the first window fills, slot turnover allocates no
// codec working memory at all.
func (r *Replica) takeScratch() *slotScratch {
	r.mu.Lock()
	defer r.mu.Unlock()
	if n := len(r.scratches); n > 0 {
		s := r.scratches[n-1]
		r.scratches = r.scratches[:n-1]
		return s
	}
	return newSlotScratch(r.cfg.BatchSize, r.cfg.N)
}

// finishSlot runs when a slot completes its last round: it assembles the
// decided entry and flushes the in-order commit prefix.
func (r *Replica) finishSlot(slot int) {
	r.mu.Lock()
	si := r.slots[slot]
	delete(r.slots, slot)
	if si == nil {
		r.setErrLocked(fmt.Errorf("rsm: finished unknown slot %d", slot))
		r.mu.Unlock()
		return
	}
	if err := si.err(); err != nil {
		r.setErrLocked(err)
	}
	entry, ok := si.entry()
	// The entry holds copies of the decided values, so the position
	// replicas are done: hand poolable ones back to their protocol.
	for i, rep := range si.reps {
		if rel, can := rep.(interface{ Release() }); can {
			rel.Release()
		}
		si.reps[i] = nil
	}
	// Only now recycle the codec scratch — reps' backing array lives in
	// it, so the scratch must not reenter the free list while the
	// instance's replicas are still reachable through it.
	si.reps = nil
	r.scratches = append(r.scratches, si.scratch)
	si.scratch = nil
	if !ok {
		r.setErrLocked(fmt.Errorf("rsm: slot %d finished undecided", slot))
		r.mu.Unlock()
		return
	}
	r.pending[slot] = entry
	// Finish callbacks run during Deliver, before the mux advances its
	// tick counter, so the committing tick is Ticks()+1.
	commitTick := r.mux.Ticks() + 1
	var ready []Entry
	for {
		e, have := r.pending[r.commitNext]
		if !have {
			break
		}
		delete(r.pending, r.commitNext)
		r.entries = append(r.entries, e)
		r.snapshot = append(r.snapshot, e.Commands...)
		ready = append(ready, e)
		// Latency closes here — at the in-order commit, not the slot's
		// last round: an out-of-order finish is not yet a commit.
		if st, have := r.slotTicks[r.commitNext]; have {
			delete(r.slotTicks, r.commitNext)
			for _, t := range st {
				r.lat.Observe(commitTick - t)
			}
		}
		r.commitNext++
	}
	final := r.commitNext == r.cfg.Slots
	r.mu.Unlock()
	if r.cfg.Tracer != nil {
		for _, e := range ready {
			ev := obs.At(obs.SlotCommitted, commitTick)
			ev.Node, ev.Slot = r.id, e.Slot
			r.cfg.Tracer.Emit(ev)
		}
	}

	// Apply callbacks run outside the lock (they may consult the
	// replica's public API). Channel sends take the lock again so they
	// cannot race an Abort's close — they still never block, because the
	// channel is buffered for the full log.
	for _, e := range ready {
		if r.apply != nil {
			r.apply(e)
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.committedClosed {
		return
	}
	for _, e := range ready {
		r.committed <- e
	}
	if final {
		close(r.committed)
		r.committedClosed = true
	}
}

// Abort ends the replica's run: it records err (when non-nil, retrievable
// via Err) and closes the Committed channel, so consumers ranging over it
// observe end-of-log instead of hanging forever on a run that died short
// of its final slot. Run (and its RunSim/RunTCP wrappers) aborts every
// replica when a run ends, on every fabric; external drive loops
// (cmd/logserver-style deployments) should do the same when fabric.Run
// fails. Abort is idempotent and safe to call after a normal completion.
func (r *Replica) Abort(err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err != nil {
		r.setErrLocked(err)
	}
	if !r.committedClosed {
		close(r.committed)
		r.committedClosed = true
	}
}

func (r *Replica) setErrLocked(err error) {
	if r.err == nil {
		r.err = err
	}
}

func (r *Replica) setErr(err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.setErrLocked(err)
}

// scheduleKey fingerprints the configuration facts every replica of one
// log must share for the lockstep pipeline to stay aligned.
func (r *Replica) scheduleKey() string {
	if r.cfg.GearProtocol != nil {
		return fmt.Sprintf("n=%d slots=%d window=%d batch=%d rounds=gear",
			r.cfg.N, r.cfg.Slots, r.cfg.Window, r.cfg.BatchSize)
	}
	r.mu.Lock()
	rounds := make([]int, r.cfg.Slots)
	for slot, p := range r.protos {
		rounds[slot] = p.Rounds()
	}
	r.mu.Unlock()
	return fmt.Sprintf("n=%d slots=%d window=%d batch=%d rounds=%v",
		r.cfg.N, r.cfg.Slots, r.cfg.Window, r.cfg.BatchSize, rounds)
}
