package rsm

import (
	"testing"

	"shiftgears/internal/obs"
)

// TestLatencyHistogramMatchesCommitTicks: the submit→commit histogram is
// anchored at the source — a command submitted before the run starts
// (tick 0) measures exactly the commit tick of the slot that carried it,
// which the SlotCommitted trace independently records.
func TestLatencyHistogramMatchesCommitTicks(t *testing.T) {
	const n, slots, window, batch = 4, 8, 2, 2
	ring := obs.NewRing(1 << 16)
	cfg := Config{
		N: n, Slots: slots, Window: window, BatchSize: batch,
		Protocol: exponentialFactory(t, n, 1),
		Tracer:   ring,
	}
	replicas := make([]*Replica, n)
	for id := 0; id < n; id++ {
		r, err := NewReplica(cfg, id)
		if err != nil {
			t.Fatal(err)
		}
		replicas[id] = r
	}
	// Two commands on replica 0, batch size 2: both ride slot 0 (the
	// first slot replica 0 sources), submitted at tick 0.
	for _, cmd := range []Value{7, 8} {
		if err := replicas[0].Submit(cmd); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := RunSim(replicas, false); err != nil {
		t.Fatal(err)
	}
	for id, r := range replicas {
		if err := r.Err(); err != nil {
			t.Fatalf("replica %d: %v", id, err)
		}
	}

	// The trace knows when slot 0 committed at replica 0.
	commitTick := 0
	commits := 0
	for _, ev := range ring.Events() {
		if ev.Type == obs.SlotCommitted && ev.Node == 0 {
			commits++
			if ev.Slot == 0 {
				commitTick = ev.Tick
			}
		}
	}
	if commits != slots {
		t.Fatalf("replica 0 committed %d slots in the trace, want %d", commits, slots)
	}
	if commitTick < 1 {
		t.Fatalf("slot 0 commit tick %d, want ≥ 1", commitTick)
	}

	h := replicas[0].Latency()
	if got := h.Count(); got != 2 {
		t.Fatalf("replica 0 latency samples = %d, want 2", got)
	}
	s := h.Summarize()
	// Both samples are exactly commitTick; the quantile read is the
	// bucket upper bound, so check mean and max, which are exact.
	if s.Max != commitTick {
		t.Fatalf("latency max = %d, want commit tick %d", s.Max, commitTick)
	}
	if s.Mean != float64(commitTick) {
		t.Fatalf("latency mean = %v, want %d", s.Mean, commitTick)
	}

	// Replicas that sourced no commands sampled nothing.
	for id := 1; id < n; id++ {
		if got := replicas[id].Latency().Count(); got != 0 {
			t.Fatalf("replica %d sourced nothing but has %d samples", id, got)
		}
	}
}

// TestGearResolvedEventsNameEveryslot: a traced static log emits one
// GearResolved per slot per replica with the protocol's round count; the
// commit trail is strictly in slot order per node.
func TestGearResolvedEventsCoverSchedule(t *testing.T) {
	const n, slots = 4, 6
	ring := obs.NewRing(1 << 16)
	cfg := Config{
		N: n, Slots: slots, Window: 2, BatchSize: 1,
		Protocol: exponentialFactory(t, n, 1),
		Tracer:   ring,
	}
	replicas := make([]*Replica, n)
	for id := 0; id < n; id++ {
		r, err := NewReplica(cfg, id)
		if err != nil {
			t.Fatal(err)
		}
		replicas[id] = r
	}
	if _, err := RunSim(replicas, false); err != nil {
		t.Fatal(err)
	}

	resolved := map[int]map[int]int{} // node -> slot -> rounds
	lastSlot := map[int]int{}         // node -> last committed slot
	for _, ev := range ring.Events() {
		switch ev.Type {
		case obs.GearResolved:
			if resolved[ev.Node] == nil {
				resolved[ev.Node] = map[int]int{}
			}
			resolved[ev.Node][ev.Slot] = ev.Round
		case obs.SlotCommitted:
			if last, seen := lastSlot[ev.Node]; seen && ev.Slot != last+1 {
				t.Fatalf("node %d committed slot %d after slot %d: commits must be in order", ev.Node, ev.Slot, last)
			}
			lastSlot[ev.Node] = ev.Slot
		}
	}
	for id := 0; id < n; id++ {
		for slot := 0; slot < slots; slot++ {
			want := replicas[id].SlotRounds(slot)
			if got := resolved[id][slot]; got != want {
				t.Fatalf("node %d slot %d resolved %d rounds in trace, engine says %d", id, slot, got, want)
			}
		}
		if lastSlot[id] != slots-1 {
			t.Fatalf("node %d last committed slot %d, want %d", id, lastSlot[id], slots-1)
		}
	}
}
