// Package rsm turns single-shot Byzantine agreement into a replicated
// state machine: a log of slots, each slot one agreement on a batch of
// client commands, pipelined over a shared synchronous network.
//
// The classic construction (Pease–Shostak–Lamport's interactive
// consistency, DBFT-style slot sequencing) assigns every log slot a
// rotating source processor. The source batches the client commands it has
// received into the slot's agreement value; agreement guarantees every
// correct replica commits the same batch in the same slot — even when the
// source is Byzantine, in which case the slot commits some common batch
// (typically all no-ops). Silent sources and unfilled batch positions
// commit the default value 0, the no-op.
//
// Three amortizations make the log serve heavy traffic:
//
//   - Batching: one slot carries up to BatchSize commands, multiplexed as
//     parallel single-value broadcast instances of the same protocol that
//     share the slot's rounds, so the per-command round cost drops by the
//     batch factor (the bit-complexity concern of King–Saia motivates
//     keeping each instance's payload small).
//   - Pipelining: up to Window slots run concurrently over the same
//     network (sim.Mux); S equal-length slots of R rounds finish in
//     R·⌈S/W⌉ global ticks instead of the sequential S·R.
//   - One mesh: over TCP, the frame header's instance id lets a single
//     connection mesh carry the whole pipeline (transport.Mesh).
//
// The per-slot agreement protocol is pluggable (Protocol); the top-level
// shiftgears package wires any of the paper's algorithms per slot.
package rsm

import (
	"fmt"

	"shiftgears/internal/consensus"
	"shiftgears/internal/eigtree"
	"shiftgears/internal/obs"
	"shiftgears/internal/sim"
)

// Value is one client command; the agreement default 0 is the no-op.
type Value = eigtree.Value

// NoOp is the default value committed for unfilled batch positions and
// slots whose source proposed nothing coherent.
const NoOp = eigtree.Default

// Entry is one committed log slot.
type Entry struct {
	// Slot is the log position; Source the processor that proposed it.
	Slot, Source int
	// Batch holds the agreed value of every batch position (NoOp for
	// unfilled or burned positions).
	Batch []Value
	// Commands are the non-no-op values of Batch, in position order —
	// what a state machine actually applies.
	Commands []Value
}

// InstanceReplica is one processor's replica of a single-value agreement
// instance — every protocol in this repository implements it.
type InstanceReplica interface {
	sim.Processor
	// Decided returns the decision once the instance's rounds are done.
	Decided() (Value, bool)
	// Err reports an internal protocol error.
	Err() error
}

// Protocol supplies the agreement machinery for one slot: the shared round
// schedule and a replica factory. The BatchSize position instances of a
// slot share one Protocol (same source, same schedule).
type Protocol interface {
	// Rounds is the instance's synchronous round count.
	Rounds() int
	// NewReplica builds processor id's replica. initial is the proposed
	// value, used only when id is the slot's source.
	NewReplica(id int, initial Value) (InstanceReplica, error)
}

// Config describes a replicated log. All replicas of one log must use
// identical configurations or their slot schedules diverge.
type Config struct {
	// N is the number of replicas.
	N int
	// Slots is the total number of log slots the engine runs.
	Slots int
	// Window is the pipelining depth: how many slots run concurrently
	// (1 = strictly sequential single-shot execution).
	Window int
	// BatchSize is the number of commands one slot can carry.
	BatchSize int
	// Workers bounds the per-tick worker pool that runs the window's
	// active slots concurrently inside each replica (0 or 1 =
	// sequential). Purely an execution detail: the schedule and the wire
	// bytes are identical at any worker count, so replicas of one log may
	// even use different values.
	Workers int
	// Protocol builds slot's agreement protocol; source = slot mod N.
	// Exactly one of Protocol and GearProtocol must be set.
	Protocol func(slot, source int) (Protocol, error)
	// GearProtocol resolves slot's agreement protocol lazily, at the tick
	// the slot enters the pipeline window, from the committed log prefix
	// visible at that tick — the paper's gear shift applied to the log:
	// later slots may run a different (cheaper) algorithm once earlier
	// slots have exposed the adversary.
	//
	// Determinism contract: GearProtocol must be a pure function of its
	// arguments (no clocks, randomness, or per-replica state). Under the
	// lockstep schedule every correct replica holds an identical committed
	// prefix at a slot's start tick, so a pure GearProtocol yields
	// identical schedules. A divergent one is detected, not masked: over
	// TCP the mesh fails fast with the frame instance/round mismatch
	// protocol error, and RunSim stops with a schedule-divergence error as
	// soon as one replica's pipeline finishes while another's is running.
	GearProtocol func(slot, source int, prefix []Entry) (Protocol, error)
	// Tracer, if non-nil, receives the replica's flight-recorder events —
	// GearResolved when a slot's protocol is fixed (with the algorithm's
	// name when the protocol implements GearNamer), SlotCommitted per
	// in-order commit, and the mux's schedule events — and is forwarded
	// to the fabric runtime by the drive wrappers. Nil (the default) is
	// tracing off: every emission site skips its work entirely.
	Tracer obs.Tracer
}

// GearNamer is the optional Protocol extension the flight recorder uses
// to name a slot's resolved gear in GearResolved events. The public
// shiftgears protocol constructors all implement it.
type GearNamer interface {
	GearName() string
}

func (cfg Config) validate() error {
	if cfg.N < 2 {
		return fmt.Errorf("rsm: need at least 2 replicas, have %d", cfg.N)
	}
	if cfg.Slots < 1 {
		return fmt.Errorf("rsm: slot count %d must be ≥ 1", cfg.Slots)
	}
	if cfg.Window < 1 {
		return fmt.Errorf("rsm: window %d must be ≥ 1", cfg.Window)
	}
	if cfg.BatchSize < 1 {
		return fmt.Errorf("rsm: batch size %d must be ≥ 1", cfg.BatchSize)
	}
	if cfg.Protocol == nil && cfg.GearProtocol == nil {
		return fmt.Errorf("rsm: config needs a Protocol or GearProtocol factory")
	}
	if cfg.Protocol != nil && cfg.GearProtocol != nil {
		return fmt.Errorf("rsm: Protocol and GearProtocol are mutually exclusive")
	}
	return nil
}

// slotScratch is the reusable per-slot working memory of the codec hot
// path: PrepareRound's outbox gathering and arena-encoded payloads,
// DeliverRound's per-position routing matrix and decode row. A Replica
// keeps a free list of them (capacity bounded by the window): a slot
// takes one at startSlot and returns it at finishSlot, so steady-state
// ticks run the whole inner codec with zero allocations.
//
// Lifetime contract: the encode arena is reset at every PrepareRound, so
// payloads sliced from it are valid for exactly one tick — the same
// ownership rule the fabrics guarantee for inbound payloads (see
// fabric.Fabric and the transport read arena). Slots of one replica
// never share a scratch, so Workers > 1 stays race-free.
type slotScratch struct {
	outs   [][][]byte // per position: its outbox for the current round
	result [][]byte   // per destination: the encoded slot payload
	frames [][]byte   // per position: the inner frame for one destination
	per    [][][]byte // per position: inbox routed from each sender
	dec    [][]byte   // decode row, reused across senders
	arena  []byte     // encode arena; result[j] slices into it

	// startSlot working memory, reused with the rest of the scratch:
	// the batch drawn from the queue and the position replica slice the
	// slotInstance adopts (reps is abandoned to the instance and
	// re-sliced to zero length on reuse; its backing array only ever
	// holds k pointers).
	batch []Value
	reps  []InstanceReplica
}

func newSlotScratch(k, n int) *slotScratch {
	s := &slotScratch{
		outs:   make([][][]byte, k),
		result: make([][]byte, n),
		frames: make([][]byte, k),
		per:    make([][][]byte, k),
		dec:    make([][]byte, k),
		batch:  make([]Value, k),
		reps:   make([]InstanceReplica, 0, k),
	}
	for p := range s.per {
		s.per[p] = make([][]byte, n)
	}
	return s
}

// slotInstance is one replica's view of one slot: BatchSize position
// instances multiplexed over the slot's rounds with an inner frame per
// position (uvarint length-prefixed, the interactive-consistency codec).
// It implements sim.Processor, so adversary wrappers apply unchanged —
// a Byzantine replica mangles the whole slot payload and receivers read
// the malformed result as silence.
type slotInstance struct {
	slot, id, n, source int
	reps                []InstanceReplica
	scratch             *slotScratch
}

// ID implements sim.Processor.
func (si *slotInstance) ID() int { return si.id }

// PrepareRound implements sim.Processor: it gathers every position's
// outbox and packs one inner-framed payload per destination, encoding
// into the slot's reusable arena. The returned payloads are valid for
// one tick (until this slot's next PrepareRound) — exactly the window
// the fabrics need to copy them to the wire or route them in process.
func (si *slotInstance) PrepareRound(round int) [][]byte {
	s := si.scratch
	outs := s.outs[:len(si.reps)]
	for p, rep := range si.reps {
		outs[p] = rep.PrepareRound(round)
	}
	result := s.result[:si.n]
	frames := s.frames[:len(si.reps)]
	s.arena = s.arena[:0]
	any := false
	for j := 0; j < si.n; j++ {
		for p := range si.reps {
			if outs[p] == nil {
				frames[p] = nil
			} else {
				frames[p] = outs[p][j]
			}
		}
		// The arena may move as it grows; payloads already sliced out keep
		// referencing the retired block, which stays intact for the tick.
		start := len(s.arena)
		arena, ok := consensus.AppendFrames(s.arena, frames)
		s.arena = arena
		if !ok {
			result[j] = nil
			continue
		}
		result[j] = arena[start:len(arena):len(arena)]
		any = true
	}
	if !any {
		return nil
	}
	return result
}

// DeliverRound implements sim.Processor: it splits every sender's payload
// back into per-position payloads (malformed → silence everywhere) and
// delivers each position's inbox.
func (si *slotInstance) DeliverRound(round int, inbox [][]byte) {
	k := len(si.reps)
	s := si.scratch
	per := s.per[:k]
	for p := range per {
		row := per[p][:si.n]
		for q := range row {
			row[q] = nil
		}
	}
	dec := s.dec[:k]
	for q, payload := range inbox {
		if !consensus.DecodeFramesInto(dec, payload) {
			continue
		}
		for p := 0; p < k; p++ {
			per[p][q] = dec[p]
		}
	}
	for p, rep := range si.reps {
		rep.DeliverRound(round, per[p][:si.n])
	}
}

// entry assembles the committed entry once every position has decided.
func (si *slotInstance) entry() (Entry, bool) {
	batch := make([]Value, len(si.reps))
	for p, rep := range si.reps {
		v, ok := rep.Decided()
		if !ok {
			return Entry{}, false
		}
		batch[p] = v
	}
	e := Entry{Slot: si.slot, Source: si.source, Batch: batch}
	for _, v := range batch {
		if v != NoOp {
			e.Commands = append(e.Commands, v)
		}
	}
	return e, true
}

// err returns the first position's internal protocol error.
func (si *slotInstance) err() error {
	for p, rep := range si.reps {
		if err := rep.Err(); err != nil {
			return fmt.Errorf("rsm: slot %d position %d: %w", si.slot, p, err)
		}
	}
	return nil
}
