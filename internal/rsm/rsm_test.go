package rsm

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"shiftgears/internal/core"
	"shiftgears/internal/sim"
)

// coreProto adapts a compiled core plan to the slot Protocol.
type coreProto struct {
	env    *core.Env
	rounds int
}

func (p coreProto) Rounds() int { return p.rounds }
func (p coreProto) NewReplica(id int, initial Value) (InstanceReplica, error) {
	return core.NewReplica(p.env, id, initial, nil)
}

// exponentialFactory builds slot protocols for the paper's Exponential
// algorithm, caching the per-source plan (slots with the same source share
// their read-only environment, as interactive consistency does).
func exponentialFactory(t *testing.T, n, tt int) func(slot, source int) (Protocol, error) {
	t.Helper()
	cache := map[int]Protocol{}
	return func(slot, source int) (Protocol, error) {
		if p, ok := cache[source]; ok {
			return p, nil
		}
		plan, err := core.NewPlan(core.Exponential, n, tt, 0, source)
		if err != nil {
			return nil, err
		}
		env, err := core.NewEnv(plan)
		if err != nil {
			return nil, err
		}
		p := coreProto{env: env, rounds: plan.TotalRounds}
		cache[source] = p
		return p, nil
	}
}

// logSetup captures one whole-cluster test configuration.
type logSetup struct {
	cfg      Config
	byz      map[int]bool
	submit   map[int][]Value // per receiving replica, in order
	strategy string
}

// build constructs the full replica set with fault injection and queued
// submissions.
func (s logSetup) build(t *testing.T) []*Replica {
	t.Helper()
	replicas := make([]*Replica, s.cfg.N)
	for id := 0; id < s.cfg.N; id++ {
		var opts []ReplicaOption
		if s.byz[id] {
			opts = append(opts, WithByzantine(s.strategy, 42))
		}
		r, err := NewReplica(s.cfg, id, opts...)
		if err != nil {
			t.Fatal(err)
		}
		for _, cmd := range s.submit[id] {
			if err := r.Submit(cmd); err != nil {
				t.Fatal(err)
			}
		}
		replicas[id] = r
	}
	return replicas
}

// checkIdenticalLogs asserts the acceptance property: every correct
// replica committed the same full log, and slots sourced by correct
// replicas carry exactly the commands those replicas queued.
func checkIdenticalLogs(t *testing.T, s logSetup, replicas []*Replica) []Entry {
	t.Helper()
	var ref []Entry
	for id, r := range replicas {
		if s.byz[id] {
			continue
		}
		if err := r.Err(); err != nil {
			t.Fatalf("replica %d: %v", id, err)
		}
		entries := r.Entries()
		if len(entries) != s.cfg.Slots {
			t.Fatalf("replica %d committed %d slots, want %d", id, len(entries), s.cfg.Slots)
		}
		if ref == nil {
			ref = entries
			continue
		}
		if !reflect.DeepEqual(entries, ref) {
			t.Fatalf("replica %d log diverges:\n%v\nvs\n%v", id, entries, ref)
		}
	}

	// Slots sourced by a correct replica commit its queue, in order, with
	// no-op fill for unfilled positions (validity per batch position).
	for slot := 0; slot < s.cfg.Slots; slot++ {
		e := ref[slot]
		if e.Slot != slot || e.Source != slot%s.cfg.N {
			t.Fatalf("slot %d entry mislabeled: %+v", slot, e)
		}
		if s.byz[e.Source] {
			continue
		}
		turn := slot / s.cfg.N // how many earlier slots this source owned
		queue := s.submit[e.Source]
		lo := turn * s.cfg.BatchSize
		want := make([]Value, s.cfg.BatchSize)
		for p := range want {
			if lo+p < len(queue) {
				want[p] = queue[lo+p]
			}
		}
		if !reflect.DeepEqual(e.Batch, want) {
			t.Fatalf("slot %d (source %d): batch %v, want %v", slot, e.Source, e.Batch, want)
		}
	}

	// Committed channels drained and closed, snapshots identical.
	var snap []Value
	for id, r := range replicas {
		if s.byz[id] {
			continue
		}
		count := 0
		for range r.Committed() {
			count++
		}
		if count != s.cfg.Slots {
			t.Fatalf("replica %d committed channel carried %d entries, want %d", id, count, s.cfg.Slots)
		}
		if snap == nil {
			snap = r.Snapshot()
		} else if !reflect.DeepEqual(snap, r.Snapshot()) {
			t.Fatalf("replica %d snapshot diverges", id)
		}
	}
	return ref
}

// sevenNodeSetup: n=7, t=2, replicas 2 and 5 Byzantine (replica 2 sources
// slots 2 and 9 — the Byzantine-source case), replica 3 correct but
// silent (no-op fill), mixed queue depths elsewhere.
func sevenNodeSetup(t *testing.T, window int) logSetup {
	t.Helper()
	return logSetup{
		cfg: Config{
			N: 7, Slots: 14, Window: window, BatchSize: 3,
			Protocol: exponentialFactory(t, 7, 2),
		},
		byz:      map[int]bool{2: true, 5: true},
		strategy: "splitbrain",
		submit: map[int][]Value{
			0: {11, 12, 13, 14, 15, 16}, // both sourced slots full
			1: {21, 22, 23, 24},         // second slot half-filled
			2: {31, 32},                 // Byzantine receiver: may burn its slots
			4: {41},
			5: {51},
			6: {61, 62, 63},
		},
	}
}

func TestCommitsIdenticalLogsSim(t *testing.T) {
	s := sevenNodeSetup(t, 4)
	replicas := s.build(t)
	stats, err := RunSim(replicas, false)
	if err != nil {
		t.Fatal(err)
	}
	want := sim.MuxTicks([]int{3, 3, 3, 3, 3, 3, 3, 3, 3, 3, 3, 3, 3, 3}, 4)
	if stats.Rounds != want || stats.Rounds != replicas[0].TotalTicks() {
		t.Fatalf("ran %d ticks, want %d", stats.Rounds, want)
	}
	ref := checkIdenticalLogs(t, s, replicas)

	// Correct-but-silent replica 3: both its slots commit pure no-ops.
	for _, slot := range []int{3, 10} {
		if len(ref[slot].Commands) != 0 {
			t.Fatalf("silent source slot %d committed %v", slot, ref[slot].Commands)
		}
	}
	// Pipelining: 14 slots of 3 rounds in a window of 4 beat the
	// sequential 42 ticks.
	if seq := 14 * 3; stats.Rounds >= seq {
		t.Fatalf("pipeline used %d ticks, sequential needs %d", stats.Rounds, seq)
	}
}

func TestCommitsIdenticalLogsTCP(t *testing.T) {
	s := logSetup{
		cfg: Config{
			N: 4, Slots: 8, Window: 2, BatchSize: 2,
			Protocol: exponentialFactory(t, 4, 1),
		},
		byz:      map[int]bool{3: true}, // sources slots 3 and 7
		strategy: "splitbrain",
		submit: map[int][]Value{
			0: {101, 102, 103, 104},
			1: {111},
			3: {131, 132},
		},
	}

	tcpReplicas := s.build(t)
	tcpStats, err := RunTCP(tcpReplicas)
	if err != nil {
		t.Fatal(err)
	}
	tcpRef := checkIdenticalLogs(t, s, tcpReplicas)

	// The TCP pipeline must commit exactly the log the in-process engine
	// commits for the same configuration (transport is behavior-
	// preserving, adversaries included).
	simReplicas := s.build(t)
	simStats, err := RunSim(simReplicas, false)
	if err != nil {
		t.Fatal(err)
	}
	simRef := checkIdenticalLogs(t, s, simReplicas)
	if !reflect.DeepEqual(tcpRef, simRef) {
		t.Fatalf("TCP log diverges from sim log:\n%v\nvs\n%v", tcpRef, simRef)
	}
	if tcpStats.Rounds != simStats.Rounds {
		t.Fatalf("TCP ran %d ticks, sim %d", tcpStats.Rounds, simStats.Rounds)
	}
}

// TestPipeliningPreservesLog: the same workload commits the same log at
// window 1 (sequential single-shot) and window 4, in fewer ticks.
func TestPipeliningPreservesLog(t *testing.T) {
	seqSetup := sevenNodeSetup(t, 1)
	seqReplicas := seqSetup.build(t)
	seqStats, err := RunSim(seqReplicas, false)
	if err != nil {
		t.Fatal(err)
	}
	seqRef := checkIdenticalLogs(t, seqSetup, seqReplicas)

	pipeSetup := sevenNodeSetup(t, 4)
	pipeReplicas := pipeSetup.build(t)
	pipeStats, err := RunSim(pipeReplicas, true) // parallel engine, same result
	if err != nil {
		t.Fatal(err)
	}
	pipeRef := checkIdenticalLogs(t, pipeSetup, pipeReplicas)

	if !reflect.DeepEqual(seqRef, pipeRef) {
		t.Fatal("window changes the committed log")
	}
	if pipeStats.Rounds >= seqStats.Rounds {
		t.Fatalf("window 4 used %d ticks, window 1 used %d", pipeStats.Rounds, seqStats.Rounds)
	}
}

func TestSubmitRejectsNoOp(t *testing.T) {
	s := sevenNodeSetup(t, 2)
	r, err := NewReplica(s.cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Submit(NoOp); err == nil {
		t.Fatal("no-op accepted as a command")
	}
	if err := r.Submit(7); err != nil {
		t.Fatal(err)
	}
	if r.Pending() != 1 {
		t.Fatalf("pending = %d", r.Pending())
	}
}

func TestWithByzantineValidation(t *testing.T) {
	cfg := Config{N: 4, Slots: 2, Window: 1, BatchSize: 1, Protocol: exponentialFactory(t, 4, 1)}
	if _, err := NewReplica(cfg, 0, WithByzantine("bogus", 1)); err == nil {
		t.Error("unknown strategy accepted")
	}
	wrap := func(slot int, proc sim.Processor) sim.Processor { return proc }
	if _, err := NewReplica(cfg, 0, WithByzantine("splitbrain", 1), WithWrap(wrap)); err == nil {
		t.Error("WithByzantine combined with WithWrap accepted")
	}
	if _, err := NewReplica(cfg, 0, WithByzantine("crash", 1)); err != nil {
		t.Error(err)
	}
}

// brokenProto fails lazy position-replica construction — a mid-run
// failure, since instances are built when their slot enters the window.
type brokenProto struct{ Protocol }

func (b brokenProto) NewReplica(id int, initial Value) (InstanceReplica, error) {
	return nil, fmt.Errorf("boom")
}

// TestRunTCPSurfacesMidRunFailure: when one node dies mid-pipeline, the
// mesh must tear down and report the error rather than deadlock peers in
// the lockstep barrier.
func TestRunTCPSurfacesMidRunFailure(t *testing.T) {
	base := exponentialFactory(t, 4, 1)
	mkCfg := func(failSlot int) Config {
		return Config{
			N: 4, Slots: 6, Window: 1, BatchSize: 1,
			Protocol: func(slot, source int) (Protocol, error) {
				p, err := base(slot, source)
				if err != nil {
					return nil, err
				}
				if slot == failSlot {
					return brokenProto{p}, nil
				}
				return p, nil
			},
		}
	}
	replicas := make([]*Replica, 4)
	for id := 0; id < 4; id++ {
		failSlot := -1
		if id == 0 {
			failSlot = 3 // replica 0 dies when slot 3 enters its window
		}
		r, err := NewReplica(mkCfg(failSlot), id)
		if err != nil {
			t.Fatal(err)
		}
		replicas[id] = r
	}
	done := make(chan error, 1)
	go func() {
		_, err := RunTCP(replicas)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("mid-run failure not surfaced")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("RunTCP deadlocked on a mid-run node failure")
	}
}

func TestConfigValidation(t *testing.T) {
	proto := exponentialFactory(t, 4, 1)
	good := Config{N: 4, Slots: 2, Window: 1, BatchSize: 1, Protocol: proto}
	bad := []Config{
		{N: 1, Slots: 2, Window: 1, BatchSize: 1, Protocol: proto},
		{N: 4, Slots: 0, Window: 1, BatchSize: 1, Protocol: proto},
		{N: 4, Slots: 2, Window: 0, BatchSize: 1, Protocol: proto},
		{N: 4, Slots: 2, Window: 1, BatchSize: 0, Protocol: proto},
		{N: 4, Slots: 2, Window: 1, BatchSize: 1},
	}
	for i, cfg := range bad {
		if _, err := NewReplica(cfg, 0); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if _, err := NewReplica(good, 9); err == nil {
		t.Error("out-of-range id accepted")
	}
	if _, err := NewReplica(good, 0); err != nil {
		t.Error(err)
	}
}
